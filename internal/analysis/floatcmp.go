package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatCmp flags == and != between floating-point (or complex) operands.
// The detector's decision logic — proximity scores, deviation-energy
// thresholds, capability probabilities — must use epsilon comparisons
// (metrics.NearEqual / metrics.NearZero): exact float equality silently
// flips under reordering, FMA contraction, or a change of BLAS-style
// kernel. Comparisons where both operands are compile-time constants are
// allowed (they are evaluated exactly, once).
var FloatCmp = &Analyzer{
	Name: "floatcmp",
	Doc:  "flag ==/!= on floating-point operands; use epsilon compares",
	Run:  runFloatCmp,
}

func runFloatCmp(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			be, ok := n.(*ast.BinaryExpr)
			if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
				return true
			}
			if !isFloatish(pass.Info.TypeOf(be.X)) && !isFloatish(pass.Info.TypeOf(be.Y)) {
				return true
			}
			if isConstExpr(pass, be.X) && isConstExpr(pass, be.Y) {
				return true
			}
			p := "=="
			if be.Op == token.NEQ {
				p = "!="
			}
			pass.Report(be.OpPos, "floating-point %s comparison; use an epsilon compare (e.g. metrics.NearEqual/NearZero) or annotate why exact equality is intended", p)
			return true
		})
	}
	return nil
}

// isFloatish reports whether t is a floating-point or complex basic type
// (through named types).
func isFloatish(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}

// isConstExpr reports whether the expression has a compile-time value.
func isConstExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Info.Types[e]
	return ok && tv.Value != nil
}
