package httpserve

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/service"
)

func postDetect(t *testing.T, base string, req DetectRequest) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/detect", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, out
}

func getTraces(t *testing.T, base, query string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(base + "/debug/traces" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestTracingByteIdentity is the acceptance pin: the same detect
// request against a traced server and an untraced twin (same artifact)
// answers byte-identical bodies — tracing is observational only.
func TestTracingByteIdentity(t *testing.T) {
	m, err := pmuoutage.TrainModel(trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	_, tsOff := newModelServer(t, m, nil)
	svcOn, tsOn := newModelServer(t, m, func(cfg *service.Config) {
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{SampleEvery: 1})
	})
	sys := waitShardReady(t, svcOn, "east")
	samples := outageTrace(t, sys, 6)

	req := DetectRequest{Shard: "east", Samples: samples}
	respOff, bodyOff := postDetect(t, tsOff.URL, req)
	respOn, bodyOn := postDetect(t, tsOn.URL, req)
	if respOff.StatusCode != http.StatusOK || respOn.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200\noff: %s\non: %s",
			respOff.StatusCode, respOn.StatusCode, bodyOff, bodyOn)
	}
	if !bytes.Equal(bodyOff, bodyOn) {
		t.Fatalf("detect responses differ with tracing on vs off:\noff: %s\non:  %s", bodyOff, bodyOn)
	}
	if respOff.Header.Get(obs.SpanHeader) != "" {
		t.Fatal("untraced server must not emit X-Span-Id")
	}
	if respOn.Header.Get(obs.SpanHeader) == "" {
		t.Fatal("traced server must echo X-Span-Id")
	}
}

// TestDebugTracesEndpoint drives one traced request end to end and
// checks the retained trace: fetchable by list and by ID, spans cover
// the http/queue/coalesce/detect/encode stages, the root span is the
// one echoed in X-Span-Id, and unknown IDs answer a not_found envelope.
func TestDebugTracesEndpoint(t *testing.T) {
	m, err := pmuoutage.TrainModel(trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newModelServer(t, m, func(cfg *service.Config) {
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{SampleEvery: 1})
	})
	sys := waitShardReady(t, svc, "east")
	resp, body := postDetect(t, ts.URL, DetectRequest{Shard: "east", Samples: outageTrace(t, sys, 4)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(obs.TraceHeader)
	spanID := resp.Header.Get(obs.SpanHeader)

	// The trace finalizes when the root span ends, which races the
	// response write by a hair — poll briefly.
	var tr api.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		status, raw := getTraces(t, ts.URL, "?id="+traceID)
		if status == http.StatusOK {
			if err := json.Unmarshal(raw, &tr); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never retained: %d %s", traceID, status, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}

	stages := map[string]api.TraceSpan{}
	for _, s := range tr.Spans {
		stages[s.Stage] = s
	}
	for _, want := range []string{"http", "queue", "coalesce", "detect", "encode"} {
		if _, ok := stages[want]; !ok {
			t.Errorf("trace missing %q stage span; have %v", want, tr.Spans)
		}
	}
	root := stages["http"]
	if !root.Root || root.ID != spanID {
		t.Fatalf("root span %+v, want root with ID %s (the X-Span-Id echo)", root, spanID)
	}
	for _, stage := range []string{"queue", "coalesce", "detect", "encode"} {
		if got := stages[stage].Parent; got != root.ID {
			t.Errorf("%s span parent = %q, want root %q", stage, got, root.ID)
		}
	}

	// List form contains the same trace.
	status, raw := getTraces(t, ts.URL, "")
	if status != http.StatusOK {
		t.Fatalf("trace list: %d %s", status, raw)
	}
	var list api.TraceList
	if err := json.Unmarshal(raw, &list); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, item := range list.Traces {
		if item.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s absent from list of %d", traceID, len(list.Traces))
	}

	// Unknown IDs answer the not_found code.
	status, raw = getTraces(t, ts.URL, "?id=ffffffffffffffff")
	if status != http.StatusNotFound {
		t.Fatalf("unknown trace: %d %s, want 404", status, raw)
	}
	var env api.ErrorEnvelope
	if err := json.Unmarshal(raw, &env); err != nil || env.Code != api.CodeNotFound {
		t.Fatalf("unknown trace envelope = %s (err %v), want code not_found", raw, err)
	}
}
