package analysis

import (
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// goldenDirs maps each testdata/src package to the (comma-separated)
// analyzers exercised on it. The dimcheck package is named subspace
// inside (the analyzer keys on package name); suppress reuses floatcmp
// to exercise ignore directives; ignoreaudit runs alongside floatcmp so
// its directives have real findings to match or miss.
var goldenDirs = map[string]string{
	"apierr":        "apierr",
	"apierrfleet":   "apierr",
	"ctxflow":       "ctxflow",
	"floatcmp":      "floatcmp",
	"framewire":     "framewire",
	"errcheck":      "errcheck",
	"globalrand":    "globalrand",
	"goroutineleak": "goroutineleak",
	"locksmell":     "locksmell",
	"metricname":    "metricname",
	"dimcheck":      "dimcheck",
	"modelio":       "modelio",
	"modeliowire":   "modelio",
	"suppress":      "floatcmp",
	"units":         "units",
	"allocfree":     "allocfree",
	"ignoreaudit":   "ignoreaudit,floatcmp",
}

// wantRE pulls the backquoted regexps out of a `// want` comment.
var wantRE = regexp.MustCompile("`([^`]*)`")

func TestGolden(t *testing.T) {
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	for dir, names := range goldenDirs {
		t.Run(dir, func(t *testing.T) {
			var analyzers []*Analyzer
			for _, name := range strings.Split(names, ",") {
				a, err := ByName(name)
				if err != nil {
					t.Fatal(err)
				}
				analyzers = append(analyzers, a)
			}
			pkg, err := loader.LoadDir(filepath.Join("testdata", "src", dir))
			if err != nil {
				t.Fatal(err)
			}
			diags, err := RunPackage(analyzers, pkg, "")
			if err != nil {
				t.Fatal(err)
			}
			checkGolden(t, pkg.Dir, diags)
		})
	}
}

// checkGolden compares diagnostics against the `// want` annotations in
// every Go file under dir: each annotated line must produce exactly as
// many diagnostics as it has patterns, each pattern matching one, and no
// unannotated line may produce any.
func checkGolden(t *testing.T, dir string, diags []Diagnostic) {
	t.Helper()
	wants := map[string][]string{} // "file:line" -> patterns
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			_, rest, ok := strings.Cut(line, "// want ")
			if !ok {
				continue
			}
			key := fmt.Sprintf("%s:%d", path, i+1)
			for _, m := range wantRE.FindAllStringSubmatch(rest, -1) {
				wants[key] = append(wants[key], m[1])
			}
			if len(wants[key]) == 0 {
				t.Errorf("%s: // want comment without a backquoted pattern", key)
			}
		}
	}

	got := map[string][]string{} // "file:line" -> messages
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", d.Pos.Filename, d.Pos.Line)
		got[key] = append(got[key], d.Message)
	}
	for key, patterns := range wants {
		msgs := got[key]
		if len(msgs) != len(patterns) {
			t.Errorf("%s: got %d diagnostic(s) %q, want %d matching %q",
				key, len(msgs), msgs, len(patterns), patterns)
			continue
		}
		for _, pat := range patterns {
			re, err := regexp.Compile(pat)
			if err != nil {
				t.Errorf("%s: bad want pattern %q: %v", key, pat, err)
				continue
			}
			matched := false
			for _, msg := range msgs {
				if re.MatchString(msg) {
					matched = true
					break
				}
			}
			if !matched {
				t.Errorf("%s: no diagnostic matches %q; got %q", key, pat, msgs)
			}
		}
	}
	for key, msgs := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic(s) %q", key, msgs)
		}
	}
}

func TestMalformedIgnoreDirective(t *testing.T) {
	src := `package p

//gridlint:ignore floatcmp
var X = 1

//gridlint:ignore
var Y = 2

//gridlint:ignore floatcmp has a reason, so it parses
var Z = 3
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	dirs := parseIgnores(fset, f, &diags)
	if len(dirs) != 1 {
		t.Fatalf("parsed %d directives, want 1 (only the well-formed one): %+v", len(dirs), dirs)
	}
	if dirs[0].analyzer != "floatcmp" {
		t.Fatalf("directive analyzer = %q", dirs[0].analyzer)
	}
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 malformed-directive reports: %v", len(diags), diags)
	}
	for _, d := range diags {
		if d.Analyzer != "gridlint" || !strings.Contains(d.Message, "malformed ignore directive") {
			t.Fatalf("unexpected diagnostic: %v", d)
		}
	}
}

// TestIgnoreCannotSilenceMalformedReports pins the auditability rule:
// suppress never drops the framework's own "gridlint" diagnostics.
func TestIgnoreCannotSilenceMalformedReports(t *testing.T) {
	d := Diagnostic{
		Pos:      token.Position{Filename: "x.go", Line: 3},
		Analyzer: "gridlint",
		Message:  "malformed ignore directive",
	}
	ignores := map[string][]*ignoreDirective{
		"x.go": {{
			pos:      token.Position{Filename: "x.go", Line: 3},
			analyzer: "all",
			reason:   "trying to hide the audit trail",
		}},
	}
	diags := []Diagnostic{d}
	markSuppressed(diags, ignores)
	if diags[0].Suppressed {
		t.Fatal("a gridlint framework diagnostic was suppressed by an ignore directive")
	}
	if ignores["x.go"][0].matched {
		t.Fatal("the directive was credited with a match it did not make")
	}
}
