package mlr

import (
	"testing"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
)

func TestMarginSweepDiagnostic(t *testing.T) {
	train := trainData(t, 20, 11)
	test := trainData(t, 5, 999)
	for _, margin := range []float64{1.0001, 1.2, 1.5, 2} {
		c, err := Train(train, Config{NormalMargin: margin})
		if err != nil {
			t.Fatal(err)
		}
		var acc metrics.Accumulator
		for _, e := range test.ValidLines {
			truth := []grid.Line{e}
			for _, s := range test.OutageSet(e).Samples {
				acc.Add(truth, c.Classify(s))
			}
		}
		normRight := 0
		for _, s := range test.Normal.Samples {
			if len(c.Classify(s)) == 0 {
				normRight++
			}
		}
		t.Logf("margin %.2f: outage %s normal-right=%d/%d", margin, acc.String(), normRight, len(test.Normal.Samples))
	}
}
