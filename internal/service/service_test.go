package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"pmuoutage"
)

// quickOpts is a fast DC training configuration; seed varies per shard
// so the two shards are genuinely different systems.
func quickOpts(seed int64) pmuoutage.Options {
	return pmuoutage.Options{Case: "ieee14", TrainSteps: 12, Seed: seed, UseDC: true, Workers: 2}
}

func twoShardConfig() Config {
	return Config{
		Shards: []ShardSpec{
			{Name: "east", Opts: quickOpts(3)},
			{Name: "west", Opts: quickOpts(5)},
		},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 10 * time.Millisecond,
	}
}

// waitState polls until the named shard reaches the state or the
// deadline passes.
func waitState(t *testing.T, svc *Service, name, state string) {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		for _, st := range svc.Shards() {
			if st.Name == name && st.State == state {
				return
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shard %s never reached %s: %+v", name, state, svc.Shards())
}

// testSamples simulates a few outage samples on a reference system.
func testSamples(t *testing.T, sys *pmuoutage.System, n int) []pmuoutage.Sample {
	t.Helper()
	e := sys.ValidLines()[0]
	samples, err := sys.SimulateOutage([]int{e}, n)
	if err != nil {
		t.Fatal(err)
	}
	return samples
}

// TestDetectBatchMatchesDirect pins the core contract: responses routed
// through the service — including ones coalesced with concurrent
// traffic — are identical to System.DetectBatch on the same samples.
func TestDetectBatchMatchesDirect(t *testing.T) {
	svc, err := New(context.Background(), twoShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")
	waitState(t, svc, "west", "ready")

	// Reference systems trained directly with the same options.
	east, err := pmuoutage.NewSystem(quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	west, err := pmuoutage.NewSystem(quickOpts(5))
	if err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t, east, 4)
	wantEast, err := east.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	wantWest, err := west.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}

	// Hammer both shards concurrently with single-sample and
	// multi-sample requests so coalescing actually happens.
	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for round := 0; round < 8; round++ {
		for name, want := range map[string][]*pmuoutage.Report{"east": wantEast, "west": wantWest} {
			wg.Add(2)
			go func() {
				defer wg.Done()
				got, err := svc.DetectBatch(context.Background(), name, samples)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errc <- errors.New(name + ": batch response differs from direct DetectBatch")
				}
			}()
			go func() {
				defer wg.Done()
				got, err := svc.DetectBatch(context.Background(), name, samples[:1])
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, want[:1]) {
					errc <- errors.New(name + ": single-sample response differs from direct Detect")
				}
			}()
		}
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
	stats := svc.Stats()
	if stats["east"].Requests == 0 || stats["east"].Samples == 0 {
		t.Fatalf("stats did not record east traffic: %+v", stats["east"])
	}
}

func TestUnknownShardAndEmptyBatch(t *testing.T) {
	svc, err := New(context.Background(), twoShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.DetectBatch(context.Background(), "nope", nil); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard error = %v", err)
	}
	if Retryable(err) {
		t.Fatal("construction error must not be retryable")
	}
	got, err := svc.DetectBatch(context.Background(), "east", nil)
	if err != nil || got != nil {
		t.Fatalf("empty batch = %v, %v", got, err)
	}
}

// TestBadSampleIsolation: a malformed sample fails its own request with
// ErrBadSample while a concurrently coalesced healthy request still
// succeeds.
func TestBadSampleIsolation(t *testing.T) {
	svc, err := New(context.Background(), twoShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")
	sys, err := svc.System("east")
	if err != nil {
		t.Fatal(err)
	}
	good := testSamples(t, sys, 1)
	bad := []pmuoutage.Sample{{Vm: []float64{1}, Va: []float64{0}}}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(2)
		go func() {
			defer wg.Done()
			if _, err := svc.DetectBatch(context.Background(), "east", bad); !errors.Is(err, pmuoutage.ErrBadSample) {
				t.Errorf("bad sample error = %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			got, err := svc.DetectBatch(context.Background(), "east", good)
			if err != nil || len(got) != 1 {
				t.Errorf("healthy request failed next to bad one: %v", err)
			}
		}()
	}
	wg.Wait()
}

// TestKillAndRestart covers the degradation story: a killed shard
// answers with a retryable error while the other shard keeps serving,
// and the supervisor rebuilds it.
func TestKillAndRestart(t *testing.T) {
	svc, err := New(context.Background(), twoShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")
	waitState(t, svc, "west", "ready")
	sys, err := svc.System("east")
	if err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t, sys, 1)

	if err := svc.Kill("west"); err != nil {
		t.Fatal(err)
	}
	// The dead shard fails fast with a retryable error (it may already
	// be retraining under the 1ms test backoff — both are retryable).
	if _, err := svc.DetectBatch(context.Background(), "west", samples); !Retryable(err) {
		t.Fatalf("killed shard error = %v, want retryable", err)
	}
	// The surviving shard keeps answering.
	if _, err := svc.DetectBatch(context.Background(), "east", samples); err != nil {
		t.Fatalf("surviving shard failed: %v", err)
	}
	// The supervisor rebuilds the dead shard.
	waitState(t, svc, "west", "ready")
	if _, err := svc.DetectBatch(context.Background(), "west", samples); err != nil {
		t.Fatalf("restarted shard failed: %v", err)
	}
	if svc.Stats()["west"].Restarts == 0 {
		t.Fatal("restart not counted")
	}
}

// TestTrainingFailureBackoff: a shard whose options cannot train stays
// failed/retraining with a growing restart count, without taking the
// healthy shard down.
func TestTrainingFailureBackoff(t *testing.T) {
	cfg := Config{
		Shards: []ShardSpec{
			{Name: "good", Opts: quickOpts(3)},
			{Name: "bad", Opts: pmuoutage.Options{Case: "bogus"}},
		},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 4 * time.Millisecond,
	}
	svc, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "good", "ready")
	deadline := time.Now().Add(60 * time.Second)
	for svc.Stats()["bad"].Restarts < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if svc.Stats()["bad"].Restarts < 2 {
		t.Fatalf("bad shard restarts = %d, want >= 2", svc.Stats()["bad"].Restarts)
	}
	if _, err := svc.DetectBatch(context.Background(), "bad", testSamples(t, mustSystem(t, svc, "good"), 1)); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("untrainable shard error = %v", err)
	}
	if !svc.Ready() {
		t.Fatal("service with one healthy shard must report ready")
	}
}

func mustSystem(t *testing.T, svc *Service, name string) *pmuoutage.System {
	t.Helper()
	sys, err := svc.System(name)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestQueueShedding: with the batcher deterministically parked inside a
// batch, a request beyond QueueDepth is rejected with ErrOverloaded.
func TestQueueShedding(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := Config{
		Shards:         []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		QueueDepth:     1,
		RestartBackoff: time.Millisecond,
		batchHook: func(string, int) {
			once.Do(func() { close(entered) })
			<-release
		},
	}
	svc, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer close(release)
	waitState(t, svc, "east", "ready")
	samples := testSamples(t, mustSystem(t, svc, "east"), 1)

	first := make(chan error, 1)
	go func() {
		_, err := svc.DetectBatch(context.Background(), "east", samples)
		first <- err
	}()
	<-entered // the one admitted request is now mid-batch, depth still 1

	_, err = svc.DetectBatch(context.Background(), "east", samples)
	if !errors.Is(err, ErrOverloaded) || !Retryable(err) {
		t.Fatalf("over-bound request error = %v, want retryable ErrOverloaded", err)
	}
	if svc.Stats()["east"].Shed != 1 {
		t.Fatalf("shed count = %d, want 1", svc.Stats()["east"].Shed)
	}

	release <- struct{}{} // let the parked batch finish
	if err := <-first; err != nil {
		t.Fatalf("admitted request failed: %v", err)
	}
}

// TestDeadlines: an expired request never waits on the queue, and a
// request that expires while queued behind a stuck batch is answered
// with its context error rather than detector output.
func TestDeadlines(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	cfg := Config{
		Shards:         []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		RestartBackoff: time.Millisecond,
		batchHook: func(string, int) {
			once.Do(func() {
				close(entered)
				<-release
			})
		},
	}
	svc, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	defer close(release)
	waitState(t, svc, "east", "ready")
	samples := testSamples(t, mustSystem(t, svc, "east"), 1)

	expired, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	if _, err := svc.DetectBatch(expired, "east", samples); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired request error = %v", err)
	}

	// Park the batcher, then queue a request with a short deadline
	// behind it: the caller gets the deadline error, and the batcher's
	// pre-run expiry check answers the queued request without detector
	// work.
	stuck := make(chan error, 1)
	go func() {
		_, err := svc.DetectBatch(context.Background(), "east", samples)
		stuck <- err
	}()
	<-entered
	short, cancel2 := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel2()
	if _, err := svc.DetectBatch(short, "east", samples); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued request past deadline = %v", err)
	}
	release <- struct{}{}
	if err := <-stuck; err != nil {
		t.Fatalf("parked request failed: %v", err)
	}
}

// TestIngestStream drives the streaming path: persistent outage samples
// confirm an event, and an unready shard refuses ingestion.
func TestIngestStream(t *testing.T) {
	cfg := twoShardConfig()
	cfg.Confirm = 2
	svc, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")
	sys := mustSystem(t, svc, "east")
	e := sys.ValidLines()[0]
	outage, err := sys.SimulateOutage([]int{e}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var event *pmuoutage.Event
	for _, smp := range outage {
		ev, err := svc.Ingest(context.Background(), "east", smp)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			event = ev
			break
		}
	}
	if event == nil {
		t.Fatal("persistent outage not confirmed through service ingest")
	}
	found := false
	for _, l := range event.Lines {
		if l.Index == e {
			found = true
		}
	}
	if !found {
		t.Fatalf("event lines %v missing true line %d", event.Lines, e)
	}
	if svc.Stats()["east"].Ingests == 0 {
		t.Fatal("ingest not counted")
	}

	if err := svc.Kill("east"); err != nil {
		t.Fatal(err)
	}
	if _, err := svc.Ingest(context.Background(), "east", outage[0]); !Retryable(err) {
		t.Fatalf("ingest on killed shard = %v, want retryable", err)
	}
}

func TestCloseRejectsAndConfigValidation(t *testing.T) {
	svc, err := New(context.Background(), twoShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	svc.Close()
	if _, err := svc.DetectBatch(context.Background(), "east", nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("closed service error = %v", err)
	}
	svc.Close() // idempotent

	for _, cfg := range []Config{
		{},
		{Shards: []ShardSpec{{Name: ""}}},
		{Shards: []ShardSpec{{Name: "a"}, {Name: "a"}}},
	} {
		if _, err := New(context.Background(), cfg); !errors.Is(err, ErrConfig) {
			t.Fatalf("config %+v error = %v", cfg, err)
		}
	}
}

// TestContextCancelClosesService: cancelling the context passed to New
// behaves like Close.
func TestContextCancelClosesService(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	svc, err := New(ctx, twoShardConfig())
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, "east", "ready")
	cancel()
	waitState(t, svc, "east", "stopped")
	if _, err := svc.DetectBatch(context.Background(), "east", []pmuoutage.Sample{{}}); err == nil {
		t.Fatal("cancelled service must refuse requests")
	}
	svc.Close()
}
