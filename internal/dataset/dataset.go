// Package dataset synthesises and organises the PMU measurement data the
// detector learns from, mirroring §V-A of the paper: Ornstein–Uhlenbeck
// load variations over a 24-hour window, AC power flows solved per time
// step (our MATPOWER substitute), Gaussian measurement noise, and one
// data set per valid single-line-outage scenario plus the normal case.
package dataset

import (
	"fmt"
	"math/rand"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/mat"
	"pmuoutage/internal/pmunet"
)

// Channel selects which scalar series feeds vector-space methods. The
// paper's X holds "either voltage magnitude or phase measurements"; the
// stacked channel concatenates both.
type Channel int

const (
	// Angle uses voltage angles in radians (N values per sample). It is
	// the zero value and therefore the default everywhere: topology
	// changes redistribute line flows, and flows live in the angles, so
	// the angle channel carries the strongest outage signature (and is
	// the only informative one for DC-generated data).
	Angle Channel = iota
	// Magnitude uses per-unit voltage magnitudes (N values per sample).
	Magnitude
	// Stacked concatenates magnitudes then angles (2N values).
	Stacked
)

// String names the channel.
func (c Channel) String() string {
	switch c {
	case Magnitude:
		return "magnitude"
	case Angle:
		return "angle"
	case Stacked:
		return "stacked"
	default:
		return fmt.Sprintf("Channel(%d)", int(c))
	}
}

// Dim returns the feature dimension of the channel for an n-bus grid.
func (c Channel) Dim(n int) int {
	if c == Stacked {
		return 2 * n
	}
	return n
}

// Sample is one time instant of PMU data: the column X_{:,t} of the
// paper's data matrix, with an optional missing-data mask.
type Sample struct {
	Vm []float64 //gridlint:unit pu
	Va []float64 //gridlint:unit rad
	// Mask marks buses whose measurements are missing; nil = complete.
	Mask pmunet.Mask
}

// N returns the number of buses in the sample.
func (s *Sample) N() int { return len(s.Vm) }

// Complete reports whether the sample has no missing measurements.
func (s *Sample) Complete() bool { return s.Mask == nil || !s.Mask.AnyMissing() }

// Missing reports whether bus i's measurement is missing.
func (s *Sample) Missing(i int) bool { return s.Mask != nil && s.Mask[i] }

// Vector returns the sample as a flat feature vector for the channel.
// Missing entries are still present numerically; consumers that care
// must consult the mask (the detector's whole point is to pick rows
// that are available rather than impute).
func (s *Sample) Vector(ch Channel) []float64 {
	switch ch {
	case Magnitude:
		out := make([]float64, len(s.Vm))
		copy(out, s.Vm)
		return out
	case Angle:
		out := make([]float64, len(s.Va))
		copy(out, s.Va)
		return out
	case Stacked:
		out := make([]float64, 0, len(s.Vm)+len(s.Va))
		out = append(out, s.Vm...)
		return append(out, s.Va...)
	default:
		panic(fmt.Sprintf("dataset: unknown channel %d", ch))
	}
}

// MaskFor expands the bus-level mask to the channel's feature indices.
func (s *Sample) MaskFor(ch Channel) pmunet.Mask {
	n := s.N()
	out := make(pmunet.Mask, ch.Dim(n))
	if s.Mask == nil {
		return out
	}
	for i, m := range s.Mask {
		if !m {
			continue
		}
		switch ch {
		case Magnitude, Angle:
			out[i] = true
		case Stacked:
			out[i] = true
			out[i+n] = true
		}
	}
	return out
}

// Phasor2D returns bus i's measurement as the 2-D point (Vm, Va) used by
// the normal-operation ellipses of Eq. (4).
func (s *Sample) Phasor2D(i int) (float64, float64) { return s.Vm[i], s.Va[i] }

// WithMask returns a shallow copy of the sample carrying the given mask.
func (s *Sample) WithMask(m pmunet.Mask) Sample {
	return Sample{Vm: s.Vm, Va: s.Va, Mask: m}
}

// Scenario identifies a failure case F: the set of outaged lines. An
// empty scenario is normal operation.
type Scenario []grid.Line

// Normal reports whether the scenario has no outages.
func (sc Scenario) Normal() bool { return len(sc) == 0 }

// Involves reports whether the scenario outages any line of bus i in g —
// the paper's "case F involving node i".
func (sc Scenario) Involves(g *grid.Grid, i int) bool {
	for _, e := range sc {
		a, b := g.Endpoints(e)
		if a == i || b == i {
			return true
		}
	}
	return false
}

// Key returns a canonical string for map keys and logs.
func (sc Scenario) Key() string {
	if sc.Normal() {
		return "normal"
	}
	s := "lines"
	for _, e := range sc {
		s += fmt.Sprintf("-%d", e)
	}
	return s
}

// Set holds the samples generated for one scenario — the paper's X^0 or
// X^{\e_{i,j}} matrices.
type Set struct {
	Case    Scenario
	Samples []Sample
}

// T returns the number of samples (time window length).
func (s *Set) T() int { return len(s.Samples) }

// Matrix returns the d-by-T data matrix X whose columns are the samples'
// channel vectors (rows = features, columns = time, as in the paper).
func (s *Set) Matrix(ch Channel) *mat.Dense {
	if s.T() == 0 {
		return mat.NewDense(0, 0)
	}
	d := ch.Dim(s.Samples[0].N())
	x := mat.NewDense(d, s.T())
	for t := range s.Samples {
		x.SetCol(t, s.Samples[t].Vector(ch))
	}
	return x
}

// Split partitions the set into train and test subsets with the given
// training fraction, shuffled deterministically by seed (the paper
// follows the split procedure of [14]).
func (s *Set) Split(trainFrac float64, seed int64) (train, test *Set) {
	if trainFrac < 0 {
		trainFrac = 0
	}
	if trainFrac > 1 {
		trainFrac = 1
	}
	idx := make([]int, s.T())
	for i := range idx {
		idx[i] = i
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
	cut := int(trainFrac * float64(len(idx)))
	train = &Set{Case: s.Case}
	test = &Set{Case: s.Case}
	for k, i := range idx {
		if k < cut {
			train.Samples = append(train.Samples, s.Samples[i])
		} else {
			test.Samples = append(test.Samples, s.Samples[i])
		}
	}
	return train, test
}

// Data bundles everything generated for one grid: the normal-operation
// set and one set per valid single-line outage.
type Data struct {
	G          *grid.Grid
	Normal     *Set
	Outages    map[grid.Line]*Set
	ValidLines []grid.Line // lines whose outage converged without islanding
}

// OutageSet returns the set for line e or nil.
func (d *Data) OutageSet(e grid.Line) *Set { return d.Outages[e] }
