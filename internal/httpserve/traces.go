package httpserve

import (
	"net/http"

	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

// handleTraces serves the tail-sampled trace store: the full retained
// list (newest first) by default, or one trace by ?id=. With tracing
// disabled the list is empty rather than an error — the endpoint's
// shape does not depend on configuration.
func (s *Server) handleTraces(w http.ResponseWriter, r *http.Request) {
	tr := s.svc.Tracer()
	if id := r.URL.Query().Get("id"); id != "" {
		t, ok := tr.TraceByID(id)
		if !ok {
			writeJSON(w, http.StatusNotFound, api.ErrorEnvelope{
				Code:    api.CodeNotFound,
				Error:   "trace not retained (dropped by tail sampling, evicted, or never seen)",
				TraceID: obs.TraceID(r.Context()),
			})
			return
		}
		writeJSON(w, http.StatusOK, t)
		return
	}
	traces := tr.Traces()
	if traces == nil {
		traces = []api.Trace{}
	}
	writeJSON(w, http.StatusOK, api.TraceList{Traces: traces})
}
