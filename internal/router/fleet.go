package router

import (
	"context"
	"sync"
	"time"

	"pmuoutage/api"
)

// fleetAggregator is the router's fleet-health view: riding the probe
// loop, it scrapes every backend's /v1/stats, merges the per-shard
// counters and stage histograms into per-backend points, and keeps a
// rolling window of points per backend. SLO signals (availability, p99
// detect latency, shed rate) are computed over the window by
// differencing the cumulative histograms at its edges — counter resets
// (a restarted backend) fold in as "everything is new" rather than as
// negative rates.
type fleetAggregator struct {
	window time.Duration
	views  []*backendView
}

// backendView is one backend's scrape history.
type backendView struct {
	b    *Backend
	pool string

	mu      sync.Mutex
	points  []scrapePoint
	lastErr string
	lastAt  time.Time
}

// scrapePoint is one merged /v1/stats observation.
type scrapePoint struct {
	at      time.Time
	ok      bool // scrape succeeded
	healthy bool // prober's verdict at scrape time

	requests    uint64
	samples     uint64
	shed        uint64
	unavailable uint64
	stages      map[string]api.Hist // cumulative, merged across shards
}

func newFleetAggregator(window time.Duration, pools []*Pool) *fleetAggregator {
	if window <= 0 {
		window = time.Minute
	}
	f := &fleetAggregator{window: window}
	for _, p := range pools {
		if p == nil {
			continue
		}
		for _, b := range p.backends {
			f.views = append(f.views, &backendView{b: b, pool: p.name})
		}
	}
	return f
}

// scrape collects one stats point from every backend. Runs on the
// probe goroutine right after the health pass.
func (f *fleetAggregator) scrape(ctx context.Context, now time.Time) {
	for _, v := range f.views {
		pt := scrapePoint{at: now, healthy: v.b.healthy.Load()}
		var errMsg string
		if stats, err := v.b.cli.Stats(ctx); err != nil {
			errMsg = err.Error()
		} else {
			pt.ok = true
			pt.stages = map[string]api.Hist{}
			for _, snap := range stats {
				pt.requests += snap.Requests
				pt.samples += snap.Samples
				pt.shed += snap.Shed
				pt.unavailable += snap.Unavailable
				for stage, h := range snap.Stages {
					merged := pt.stages[stage]
					// Mismatched bounds cannot happen between shards of
					// one process (shared LatencyBuckets); if a foreign
					// backend ever disagrees, skip its histogram rather
					// than corrupt the merge.
					if err := merged.Merge(h); err == nil {
						pt.stages[stage] = merged
					}
				}
			}
		}
		v.record(now, errMsg, pt, f.window)
	}
}

// record appends one scrape point and trims the window (keeping one
// point past the edge so deltas cover a full window's worth of traffic).
func (v *backendView) record(now time.Time, errMsg string, pt scrapePoint, window time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	v.lastAt = now
	v.lastErr = errMsg
	v.points = append(v.points, pt)
	cut := now.Add(-window)
	drop := 0
	for drop < len(v.points)-1 && v.points[drop+1].at.Before(cut) {
		drop++
	}
	v.points = v.points[drop:]
}

// windowDelta returns the backend's first and last scrape points in the
// window and whether it holds at least one successful scrape.
func (v *backendView) windowDelta() (first, last scrapePoint, lastErr string, ok bool) {
	v.mu.Lock()
	defer v.mu.Unlock()
	lastErr = v.lastErr
	var haveFirst bool
	for _, pt := range v.points {
		if !pt.ok {
			continue
		}
		if !haveFirst {
			first, haveFirst = pt, true
		}
		last, ok = pt, true
	}
	return first, last, lastErr, ok
}

// availability returns the healthy fraction of this backend's scrape
// points (0 when no points).
func (v *backendView) availability() (healthy, total int) {
	v.mu.Lock()
	defer v.mu.Unlock()
	for _, pt := range v.points {
		total++
		if pt.healthy {
			healthy++
		}
	}
	return healthy, total
}

// health assembles the GET /v1/fleet report. desperate is the router's
// cumulative desperate-pass count.
func (f *fleetAggregator) health(desperate uint64) api.FleetHealth {
	out := api.FleetHealth{
		WindowMS:      f.window.Milliseconds(),
		DesperateUses: desperate,
		Stages:        map[string]api.Hist{},
	}
	var healthyPts, totalPts int
	var winRequests, winShed uint64
	for _, v := range f.views {
		first, last, lastErr, ok := v.windowDelta()
		fb := api.FleetBackend{
			URL:            v.b.url,
			Pool:           v.pool,
			Healthy:        v.b.healthy.Load(),
			Ejections:      v.b.ejections.Load(),
			Readmissions:   v.b.readmits.Load(),
			LastEjectionMS: v.b.lastEject.Load(),
			ScrapeError:    lastErr,
		}
		if ok {
			fb.Requests = last.requests
			fb.Samples = last.samples
			fb.Shed = last.shed
			fb.Unavailable = last.unavailable
			fb.LastScrapeMS = last.at.UnixMilli()
			if det, have := last.stages[stageDetect]; have {
				fb.P99DetectMS = det.Quantile(0.99) * 1e3
			}
			out.Requests += last.requests
			out.Samples += last.samples
			out.Shed += last.shed
			out.Errors += last.unavailable
		}
		if v.pool == poolNamePrimary {
			h, t := v.availability()
			healthyPts += h
			totalPts += t
			if ok {
				// Windowed deltas feed the SLO signals; differencing the
				// window edges keeps a long-running fleet's p99 current
				// instead of diluted by hours-old observations.
				winRequests += last.requests - min(first.requests, last.requests)
				winShed += last.shed - min(first.shed, last.shed)
				for stage, cur := range last.stages {
					d := cur.Delta(first.stages[stage])
					merged := out.Stages[stage]
					if err := merged.Merge(d); err == nil {
						out.Stages[stage] = merged
					}
				}
			}
		}
		out.Backends = append(out.Backends, fb)
	}
	if totalPts > 0 {
		out.Availability = float64(healthyPts) / float64(totalPts)
	}
	if det, have := out.Stages[stageDetect]; have {
		out.P99DetectMS = det.Quantile(0.99) * 1e3
	}
	if winRequests > 0 {
		out.ShedRate = float64(winShed) / float64(winRequests)
	}
	out.SortBackends()
	return out
}

// sloP99Seconds returns the windowed primary-pool detect p99 in
// seconds (the pmu_fleet gauge the /metrics page exports).
func (f *fleetAggregator) sloP99Seconds() float64 {
	var merged api.Hist
	for _, v := range f.views {
		if v.pool != poolNamePrimary {
			continue
		}
		first, last, _, ok := v.windowDelta()
		if !ok {
			continue
		}
		if det, have := last.stages[stageDetect]; have {
			_ = merged.Merge(det.Delta(first.stages[stageDetect]))
		}
	}
	return merged.Quantile(0.99)
}

// sloAvailability returns the healthy fraction of primary scrape points
// in the window.
func (f *fleetAggregator) sloAvailability() float64 {
	var healthy, total int
	for _, v := range f.views {
		if v.pool != poolNamePrimary {
			continue
		}
		h, t := v.availability()
		healthy += h
		total += t
	}
	if total == 0 {
		return 0
	}
	return float64(healthy) / float64(total)
}

// sloShedRate returns shed/requests over the window, primary pool.
func (f *fleetAggregator) sloShedRate() float64 {
	var reqs, shed uint64
	for _, v := range f.views {
		if v.pool != poolNamePrimary {
			continue
		}
		first, last, _, ok := v.windowDelta()
		if !ok {
			continue
		}
		reqs += last.requests - min(first.requests, last.requests)
		shed += last.shed - min(first.shed, last.shed)
	}
	if reqs == 0 {
		return 0
	}
	return float64(shed) / float64(reqs)
}

// view finds one backend's view (per-backend gauge callbacks).
func (f *fleetAggregator) view(b *Backend) *backendView {
	for _, v := range f.views {
		if v.b == b {
			return v
		}
	}
	return nil
}

// lastPoint returns the newest successful scrape point ({} when none).
func (v *backendView) lastPoint() scrapePoint {
	if v == nil {
		return scrapePoint{}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i := len(v.points) - 1; i >= 0; i-- {
		if v.points[i].ok {
			return v.points[i]
		}
	}
	return scrapePoint{}
}
