package metrics

import (
	"math"
	"strings"
	"testing"

	"pmuoutage/internal/grid"
)

func lines(es ...int) []grid.Line {
	out := make([]grid.Line, len(es))
	for i, e := range es {
		out[i] = grid.Line(e)
	}
	return out
}

func TestEvalExactMatch(t *testing.T) {
	ia, fa := Eval(lines(3), lines(3))
	if ia != 1 || fa != 0 {
		t.Fatalf("ia=%v fa=%v", ia, fa)
	}
}

func TestEvalMiss(t *testing.T) {
	ia, fa := Eval(lines(3), lines(7))
	if ia != 0 || fa != 1 {
		t.Fatalf("ia=%v fa=%v", ia, fa)
	}
}

func TestEvalPartial(t *testing.T) {
	// Two true outages, detector finds one of them plus one wrong line.
	ia, fa := Eval(lines(1, 2), lines(2, 9))
	if math.Abs(ia-0.5) > 1e-15 || math.Abs(fa-0.5) > 1e-15 {
		t.Fatalf("ia=%v fa=%v", ia, fa)
	}
}

func TestEvalEmptyDetection(t *testing.T) {
	ia, fa := Eval(lines(1), nil)
	if ia != 0 || fa != 0 {
		t.Fatalf("ia=%v fa=%v (missed detection has no false alarm)", ia, fa)
	}
}

func TestEvalNormalConventions(t *testing.T) {
	// §V-C2: |F| = 0 and nothing detected -> IA 1, FA 0.
	ia, fa := Eval(nil, nil)
	if ia != 1 || fa != 0 {
		t.Fatalf("ia=%v fa=%v", ia, fa)
	}
	// |F| = 0 but something detected -> IA 0, FA 1.
	ia, fa = Eval(nil, lines(4))
	if ia != 0 || fa != 1 {
		t.Fatalf("ia=%v fa=%v", ia, fa)
	}
}

func TestEvalDuplicatesInDetection(t *testing.T) {
	// Duplicated detections must not double-count the intersection.
	ia, fa := Eval(lines(1), lines(1, 1))
	if ia != 1 {
		t.Fatalf("ia=%v", ia)
	}
	if fa != 0.5 {
		t.Fatalf("fa=%v (two reported, one distinct hit)", fa)
	}
}

func TestCorrect(t *testing.T) {
	if !Correct(lines(1, 2), lines(1)) {
		t.Fatal("subset detection must be correct")
	}
	if Correct(lines(1, 2), lines(1, 9)) {
		t.Fatal("superset with wrong line is not correct")
	}
	if Correct(lines(1), nil) {
		t.Fatal("empty detection is not correct")
	}
}

func TestAccumulator(t *testing.T) {
	var a Accumulator
	if a.IA() != 0 || a.FA() != 0 || a.N() != 0 {
		t.Fatal("fresh accumulator not zero")
	}
	a.Add(lines(1), lines(1)) // ia 1 fa 0
	a.Add(lines(1), lines(2)) // ia 0 fa 1
	if a.N() != 2 {
		t.Fatalf("N = %d", a.N())
	}
	if math.Abs(a.IA()-0.5) > 1e-15 || math.Abs(a.FA()-0.5) > 1e-15 {
		t.Fatalf("IA=%v FA=%v", a.IA(), a.FA())
	}
	a.AddScores(1, 0)
	if math.Abs(a.IA()-2.0/3) > 1e-15 {
		t.Fatalf("IA=%v", a.IA())
	}
	if !strings.Contains(a.String(), "IA=") {
		t.Fatal("String output malformed")
	}
}

// TestMerge: folding partial accumulators equals accumulating the same
// scores into one — the invariant EvaluateContext's parallel reduction
// rests on.
func TestMerge(t *testing.T) {
	var whole, left, right Accumulator
	scores := [][2]float64{{1, 0}, {0.5, 0.25}, {0, 1}, {0.75, 0.5}}
	for i, s := range scores {
		whole.AddScores(s[0], s[1])
		if i < 2 {
			left.AddScores(s[0], s[1])
		} else {
			right.AddScores(s[0], s[1])
		}
	}
	var merged Accumulator
	merged.Merge(left)
	merged.Merge(right)
	if merged.N() != whole.N() || merged.IA() != whole.IA() || merged.FA() != whole.FA() {
		t.Fatalf("merged %v != whole %v", &merged, &whole)
	}
	// Merging an empty accumulator is a no-op.
	merged.Merge(Accumulator{})
	if merged.N() != whole.N() || merged.IA() != whole.IA() {
		t.Fatal("merging an empty accumulator changed the result")
	}
}
