package pmuoutage

import "errors"

// Sentinel errors of the public facade. Every error the facade itself
// mints wraps exactly one of these (enforced by gridlint's apierr
// analyzer), so callers branch with errors.Is instead of matching
// message strings, and the service layer (internal/service,
// cmd/outaged) maps them onto transport status codes.
var (
	// ErrUnknownCase reports an Options.Case that names no built-in
	// test system. The wrapped detail lists the available names.
	ErrUnknownCase = errors.New("pmuoutage: unknown case")

	// ErrBadSample reports a malformed Sample: Vm/Va lengths that do
	// not match the grid, or a missing-bus index out of range. Detect,
	// DetectBatch, and Monitor.Ingest all validate through one shared
	// path, so the same defect produces the identical error from every
	// entry point.
	ErrBadSample = errors.New("pmuoutage: bad sample")

	// ErrBadLine reports a line index outside [0, number of lines).
	ErrBadLine = errors.New("pmuoutage: bad line index")

	// ErrBadScores reports a Scores vector that cannot be decoded from
	// its JSON wire form.
	ErrBadScores = errors.New("pmuoutage: bad score vector")

	// ErrBadModel reports a model artifact that cannot be decoded or
	// served: unparsable content, a failed fingerprint check, missing
	// facade metadata, or structural inconsistency in the learned state.
	ErrBadModel = errors.New("pmuoutage: bad model artifact")

	// ErrModelVersion reports a model artifact written under a different
	// (newer or older) format version than this build understands.
	ErrModelVersion = errors.New("pmuoutage: model format version mismatch")

	// ErrBadPatch reports a model patch that cannot be built, decoded, or
	// applied: unparsable content, a failed fingerprint check, or a splice
	// whose result does not hash to the fingerprint the trainer sealed in.
	ErrBadPatch = errors.New("pmuoutage: bad model patch")

	// ErrPatchVersion reports a patch artifact written under a different
	// format version than this build understands.
	ErrPatchVersion = errors.New("pmuoutage: patch format version mismatch")

	// ErrPatchBase reports a patch applied to a model other than the one
	// it was trained against. Patches are fingerprint-pinned to exactly
	// one base.
	ErrPatchBase = errors.New("pmuoutage: patch base model mismatch")
)
