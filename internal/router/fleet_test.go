package router

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil {
		if err := json.Unmarshal(body, out); err != nil {
			t.Fatalf("decoding %s: %v\n%s", url, err, body)
		}
	}
	return resp.StatusCode
}

// TestFleetHealthReport drives detect traffic at a two-backend fleet
// and checks the aggregated /v1/fleet view: per-backend rows with
// scraped counters, the merged windowed detect histogram, and the SLO
// signals, plus the pmu_fleet_* gauges on /metrics.
func TestFleetHealthReport(t *testing.T) {
	b1 := newStubBackend(t, nil)
	b2 := newStubBackend(t, nil)
	rt, ts := newTestRouter(t, Config{Backends: []string{b1.ts.URL, b2.ts.URL}, ProbeEvery: 5 * time.Millisecond})

	// Wait for a pre-traffic baseline scrape of both backends, so the
	// detects below land inside the SLO window's delta.
	var fh api.FleetHealth
	deadline := time.Now().Add(5 * time.Second)
	for scraped := 0; scraped < 2; {
		if status := getJSON(t, ts.URL+"/v1/fleet", &fh); status != http.StatusOK {
			t.Fatalf("/v1/fleet: %d", status)
		}
		scraped = 0
		for _, fb := range fh.Backends {
			if fb.LastScrapeMS > 0 {
				scraped++
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("backends never scraped: %+v", fh)
		}
		time.Sleep(5 * time.Millisecond)
	}

	for i := 0; i < 4; i++ {
		if resp, body := postDetect(t, ts.URL, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("detect %d: %d %s", i, resp.StatusCode, body)
		}
	}

	for {
		if status := getJSON(t, ts.URL+"/v1/fleet", &fh); status != http.StatusOK {
			t.Fatalf("/v1/fleet: %d", status)
		}
		if fh.Requests >= 4 && len(fh.Backends) == 2 && fh.Stages["detect"].Count >= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never aggregated 4 requests across 2 backends: %+v", fh)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if fh.WindowMS != time.Minute.Milliseconds() {
		t.Errorf("WindowMS = %d, want default 60000", fh.WindowMS)
	}
	if fh.Availability != 1 {
		t.Errorf("Availability = %v, want 1 (no backend ever ejected)", fh.Availability)
	}
	if fh.Samples != fh.Requests {
		t.Errorf("Samples = %d, want %d (stub reports one sample per request)", fh.Samples, fh.Requests)
	}
	det, ok := fh.Stages["detect"]
	if !ok || det.Count == 0 {
		t.Fatalf("windowed detect histogram missing or empty: %+v", fh.Stages)
	}
	for _, fb := range fh.Backends {
		if fb.Pool != poolNamePrimary || !fb.Healthy {
			t.Errorf("backend %s: pool %q healthy %v, want healthy primary", fb.URL, fb.Pool, fb.Healthy)
		}
		if fb.Requests > 0 && fb.P99DetectMS <= 0 {
			t.Errorf("backend %s: P99DetectMS = %v with %d requests", fb.URL, fb.P99DetectMS, fb.Requests)
		}
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	page, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	for _, want := range []string{metricFleetUp, metricFleetAvail, metricFleetSloP99, metricFleetShedRate, metricFleetHealthy, metricEjections, metricReadmissions, metricDesperate} {
		if !strings.Contains(string(page), want) {
			t.Errorf("/metrics missing %s", want)
		}
	}
	if got := rt.reg.GaugeValue(metricFleetHealthy); got != 2 {
		t.Errorf("%s = %v, want 2", metricFleetHealthy, got)
	}
}

// TestEjectionCountersAndFleetHistory covers the ejection bookkeeping:
// a probe-detected death bumps pmu_router_ejections_total{reason=probe}
// and stamps the last-ejection time; recovery bumps readmissions. Both
// land in the /v1/fleet backend rows.
func TestEjectionCountersAndFleetHistory(t *testing.T) {
	mux := http.NewServeMux()
	var down atomic.Bool
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode([]api.ShardStatus{})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode(map[string]api.ShardSnapshot{})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rt, rts := newTestRouter(t, Config{Backends: []string{ts.URL}, ProbeEvery: 5 * time.Millisecond})
	b := rt.primary.backends[0]
	waitHealthy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if b.healthy.Load() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("backend healthy != %v within deadline", want)
	}
	waitHealthy(true)
	down.Store(true)
	waitHealthy(false)
	down.Store(false)
	waitHealthy(true)

	ejections := rt.reg.CounterValue(metricEjections, labelRouterPool, poolNamePrimary, labelBackend, b.url, labelReason, reasonProbe)
	if ejections == 0 {
		t.Error("probe ejection not counted in registry")
	}
	readmits := rt.reg.CounterValue(metricReadmissions, labelRouterPool, poolNamePrimary, labelBackend, b.url)
	if readmits == 0 {
		t.Error("readmission not counted in registry")
	}

	var fh api.FleetHealth
	if status := getJSON(t, rts.URL+"/v1/fleet", &fh); status != http.StatusOK {
		t.Fatalf("/v1/fleet: %d", status)
	}
	if len(fh.Backends) != 1 {
		t.Fatalf("backends = %d, want 1", len(fh.Backends))
	}
	fb := fh.Backends[0]
	if fb.Ejections == 0 || fb.Readmissions == 0 || fb.LastEjectionMS == 0 {
		t.Errorf("fleet row %+v, want nonzero ejections, readmissions, last_ejection_ms", fb)
	}
	if fh.Availability >= 1 {
		t.Errorf("Availability = %v, want < 1 after an ejection", fh.Availability)
	}
}

// TestDesperatePassCounted ejects the only backend (health probe fails)
// while its data plane still answers: the desperate pass serves the
// request and is counted, both on /metrics and in /v1/fleet.
func TestDesperatePassCounted(t *testing.T) {
	b := newStubBackend(t, nil)
	rt, ts := newTestRouter(t, Config{Backends: []string{b.ts.URL}, ProbeEvery: 5 * time.Millisecond})
	// Eject by hand (the stub's healthz stays green, so this tests the
	// desperate data plane, not the prober).
	be := rt.primary.backends[0]
	deadline := time.Now().Add(3 * time.Second)
	for be.inflight.Load() != 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	be.healthy.Store(false)
	resp, body := postDetect(t, ts.URL, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("desperate detect: %d %s", resp.StatusCode, body)
	}
	if rt.desperate.Load() == 0 {
		t.Error("desperate pass not counted")
	}
	var fh api.FleetHealth
	if status := getJSON(t, ts.URL+"/v1/fleet", &fh); status != http.StatusOK {
		t.Fatalf("/v1/fleet: %d", status)
	}
	if fh.DesperateUses == 0 {
		t.Error("desperate_uses = 0 in /v1/fleet")
	}
}

// TestRouterTraceMergeMultiHop is the distributed half of the tracing
// acceptance: a traced detect through the router retains a route span
// and a proxy child naming the backend, the backend's Traceparent
// parent IS that proxy span, and GET /debug/traces?id= on the router
// stitches both halves into one tree.
func TestRouterTraceMergeMultiHop(t *testing.T) {
	b := newStubBackend(t, nil)
	rt, ts := newTestRouter(t, Config{
		Backends: []string{b.ts.URL},
		Tracer:   obs.NewTracer(obs.TracerConfig{SampleEvery: 1}),
	})
	backendURL := rt.primary.backends[0].url
	resp, body := postDetect(t, ts.URL, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("detect: %d %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(obs.TraceHeader)
	rootSpan := resp.Header.Get(obs.SpanHeader)
	if traceID == "" || rootSpan == "" {
		t.Fatalf("missing trace/span echo: trace %q span %q", traceID, rootSpan)
	}

	// The root span finalizes a hair after the response; poll.
	var tr api.Trace
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/debug/traces?id=" + traceID)
		if err != nil {
			t.Fatal(err)
		}
		raw, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			if err := json.Unmarshal(raw, &tr); err != nil {
				t.Fatal(err)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %s never retained: %d %s", traceID, resp.StatusCode, raw)
		}
		time.Sleep(5 * time.Millisecond)
	}

	stages := map[string]api.TraceSpan{}
	for _, s := range tr.Spans {
		stages[s.Stage] = s
	}
	route, ok := stages[stageRoute]
	if !ok || !route.Root || route.ID != rootSpan {
		t.Fatalf("route span %+v, want root with ID %s", route, rootSpan)
	}
	proxy, ok := stages[stageProxy]
	if !ok || proxy.Parent != route.ID {
		t.Fatalf("proxy span %+v, want child of route %s", proxy, route.ID)
	}
	if proxy.Attrs[labelBackend] != backendURL {
		t.Errorf("proxy span backend attr = %q, want %q", proxy.Attrs[labelBackend], backendURL)
	}
	// The backend's root span (merged in from the stub) hangs off the
	// proxy span — cross-process propagation worked end to end.
	backendRoot, ok := stages["http"]
	if !ok {
		t.Fatalf("merged trace missing backend http span: %+v", tr.Spans)
	}
	if backendRoot.Parent != proxy.ID {
		t.Errorf("backend span parent = %q, want proxy span %q", backendRoot.Parent, proxy.ID)
	}

	// List form serves the router's own ring.
	var list api.TraceList
	if status := getJSON(t, ts.URL+"/debug/traces", &list); status != http.StatusOK {
		t.Fatalf("/debug/traces list: %d", status)
	}
	found := false
	for _, item := range list.Traces {
		if item.TraceID == traceID {
			found = true
		}
	}
	if !found {
		t.Fatalf("trace %s absent from router list of %d", traceID, len(list.Traces))
	}
}
