package detect

import (
	"math"
	"math/rand"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/pmunet"
)

// trainIEEE14 builds a detector on IEEE-14 with fresh train data and
// returns independent test data generated with a different seed.
func trainIEEE14(t *testing.T, cfg Config) (*Detector, *dataset.Data) {
	t.Helper()
	g := cases.IEEE14()
	train, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(train, nw, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Generate(g, dataset.GenConfig{Steps: 6, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	return det, test
}

func TestTrainValidation(t *testing.T) {
	g := cases.IEEE14()
	nw, _ := pmunet.Build(g, 3)
	if _, err := Train(&dataset.Data{G: g, Normal: &dataset.Set{}}, nw, Config{}); err == nil {
		t.Fatal("expected error for empty normal set")
	}
	other, _ := pmunet.Build(cases.IEEE30(), 3)
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 3, Seed: 1, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Train(d, other, Config{}); err == nil {
		t.Fatal("expected grid mismatch error")
	}
}

func TestDetectNormalSampleIsQuiet(t *testing.T) {
	det, test := trainIEEE14(t, Config{})
	for _, s := range test.Normal.Samples {
		r, err := det.Detect(s)
		if err != nil {
			t.Fatal(err)
		}
		if r.Outage {
			t.Fatalf("normal sample flagged as outage (energy %.3g thresh %.3g)",
				r.DeviationEnergy, det.NoOutageThreshold())
		}
		if len(r.Lines) != 0 {
			t.Fatal("normal sample must yield empty line set")
		}
	}
}

// TestDetectThresholdBoundary straddles the outage/no-outage gate with
// controlled deviation energy. The S⁰-filtered residual is linear in the
// deviation from the training mean, so energy is exactly quadratic in a
// scale factor alpha, and alpha* = sqrt(thresh/E(1)) sits on the gate:
// samples just inside must stay quiet, just outside must trip it.
func TestDetectThresholdBoundary(t *testing.T) {
	det, test := trainIEEE14(t, Config{})
	base := test.OutageSet(test.ValidLines[0]).Samples[0]
	e1 := det.deviationEnergy(base)
	if e1 <= 0 {
		t.Fatalf("outage sample has no deviation energy (%v)", e1)
	}
	// sample(alpha) = mean + alpha*(base - mean) on the angle channel.
	mk := func(alpha float64) dataset.Sample {
		va := make([]float64, len(base.Va))
		for i := range va {
			va[i] = det.mean[i] + alpha*(base.Va[i]-det.mean[i])
		}
		return dataset.Sample{Vm: base.Vm, Va: va}
	}
	// Sanity: the quadratic scaling law the boundary construction relies on.
	if e4 := det.deviationEnergy(mk(2)); !metrics.NearEqual(e4, 4*e1, 1e-9) {
		t.Fatalf("energy not quadratic in scale: E(2)=%v, 4*E(1)=%v", e4, 4*e1)
	}
	alpha := math.Sqrt(det.NoOutageThreshold() / e1)
	below, err := det.Detect(mk(0.99 * alpha))
	if err != nil {
		t.Fatal(err)
	}
	if below.Outage {
		t.Fatalf("energy %.6g just below threshold %.6g flagged as outage",
			below.DeviationEnergy, det.NoOutageThreshold())
	}
	above, err := det.Detect(mk(1.01 * alpha))
	if err != nil {
		t.Fatal(err)
	}
	if !above.Outage {
		t.Fatalf("energy %.6g just above threshold %.6g not flagged",
			above.DeviationEnergy, det.NoOutageThreshold())
	}
}

func TestDetectCompleteDataIdentifiesOutages(t *testing.T) {
	det, test := trainIEEE14(t, Config{})
	var acc metrics.Accumulator
	flagged, total := 0, 0
	for _, e := range test.ValidLines {
		truth := []grid.Line{e}
		for _, s := range test.OutageSet(e).Samples {
			r, err := det.Detect(s)
			if err != nil {
				t.Fatal(err)
			}
			total++
			if r.Outage {
				flagged++
			}
			acc.Add(truth, r.Lines)
		}
	}
	// A few lightly-loaded lines have signatures below the load-noise
	// floor — the paper's IA is not 1.0 either — but the vast majority
	// of outages must be flagged.
	if frac := float64(flagged) / float64(total); frac < 0.9 {
		t.Errorf("only %.0f%% of outage samples flagged", 100*frac)
	}
	if acc.IA() < 0.85 {
		t.Errorf("complete-data IA = %.3f, want >= 0.85", acc.IA())
	}
	if acc.FA() > 0.15 {
		t.Errorf("complete-data FA = %.3f, want <= 0.15", acc.FA())
	}
	t.Logf("complete data: %s", acc.String())
}

func TestDetectMissingOutageData(t *testing.T) {
	// Figure 7's pattern: endpoints of the outaged line are missing.
	det, test := trainIEEE14(t, Config{})
	var acc metrics.Accumulator
	for _, e := range test.ValidLines {
		truth := []grid.Line{e}
		mask := det.Network().OutageLocationMask(e)
		for _, s := range test.OutageSet(e).Samples {
			r, err := det.Detect(s.WithMask(mask))
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(truth, r.Lines)
		}
	}
	if acc.IA() < 0.6 {
		t.Errorf("missing-outage-data IA = %.3f, want >= 0.6", acc.IA())
	}
	t.Logf("missing outage data: %s", acc.String())
}

func TestDetectRandomMissingOnNormalSamples(t *testing.T) {
	// Figure 8: normal samples with random missing entries must NOT be
	// classified as outages.
	det, test := trainIEEE14(t, Config{})
	rng := rand.New(rand.NewSource(4))
	var acc metrics.Accumulator
	for _, s := range test.Normal.Samples {
		for k := 1; k <= 3; k++ {
			mask := det.Network().RandomMask(k, nil, rng)
			r, err := det.Detect(s.WithMask(mask))
			if err != nil {
				t.Fatal(err)
			}
			acc.Add(nil, r.Lines)
		}
	}
	if acc.FA() > 0.1 {
		t.Errorf("missing-data-on-normal FA = %.3f, want ~0", acc.FA())
	}
	t.Logf("random missing on normal: %s", acc.String())
}

func TestDetectSampleSizeMismatch(t *testing.T) {
	det, _ := trainIEEE14(t, Config{})
	if _, err := det.Detect(dataset.Sample{Vm: []float64{1}, Va: []float64{0}}); err == nil {
		t.Fatal("expected size mismatch error")
	}
}

func TestDetectAccessors(t *testing.T) {
	det, _ := trainIEEE14(t, Config{})
	if det.Grid().Name != "ieee14" {
		t.Fatal("Grid accessor wrong")
	}
	if det.Network().NumClusters() != 3 {
		t.Fatal("Network accessor wrong")
	}
	if det.Capabilities() == nil || len(det.DetectionGroups()) != 3 {
		t.Fatal("capability/group accessors wrong")
	}
	if len(det.ValidLines()) == 0 {
		t.Fatal("no valid lines")
	}
	if det.NoOutageThreshold() <= 0 {
		t.Fatal("threshold not calibrated")
	}
}

func TestGroupSelect(t *testing.T) {
	g := Group{InCluster: []int{1, 2}, OutCluster: []int{7, 8}}
	if got := g.Select(false); got[0] != 1 {
		t.Fatal("intact cluster must use in-cluster members")
	}
	if got := g.Select(true); got[0] != 7 {
		t.Fatal("missing cluster must use out-of-cluster members")
	}
}

func TestBuildGroupsMixZeroNeedsLoadings(t *testing.T) {
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 6, Seed: 2, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := pmunet.Build(g, 3)
	caps, err := LearnCapabilities(d, 1.1, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildGroups(nw, caps, nil, GroupConfig{Mix: 0.5}); err == nil {
		t.Fatal("expected loadings-required error")
	}
	groups, err := BuildGroups(nw, caps, nil, GroupConfig{Mix: 1})
	if err != nil {
		t.Fatal(err)
	}
	for c, gr := range groups {
		if len(gr.InCluster) == 0 || len(gr.OutCluster) == 0 {
			t.Fatalf("cluster %d has empty group side", c)
		}
		// Out-of-cluster members must be outside the cluster.
		in := map[int]bool{}
		for _, v := range nw.Clusters[c] {
			in[v] = true
		}
		for _, v := range gr.OutCluster {
			if in[v] {
				t.Fatalf("cluster %d: out-group member %d is inside", c, v)
			}
		}
	}
}

func TestDetectorAblationVariantsRun(t *testing.T) {
	// Regressor proximity and unscaled variants must at least run and
	// flag outages (quality is compared in the benches).
	for _, cfg := range []Config{
		{UseRegressorProximity: true},
		{DisableScaling: true},
		{UseMVEE: true},
	} {
		det, test := trainIEEE14(t, cfg)
		e := test.ValidLines[0]
		r, err := det.Detect(test.OutageSet(e).Samples[0])
		if err != nil {
			t.Fatal(err)
		}
		if !r.Outage {
			t.Error("ablation variant missed an obvious outage")
		}
	}
}

func TestDetectChannelMagnitude(t *testing.T) {
	det, test := trainIEEE14(t, Config{Channel: dataset.Magnitude})
	e := test.ValidLines[0]
	r, err := det.Detect(test.OutageSet(e).Samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if !r.Outage {
		t.Error("magnitude channel missed an obvious outage")
	}
}
