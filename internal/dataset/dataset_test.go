package dataset

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/pmunet"
)

func smallConfig() GenConfig {
	return GenConfig{Steps: 6, Seed: 1}
}

func TestChannelStringAndDim(t *testing.T) {
	if Magnitude.String() != "magnitude" || Angle.String() != "angle" || Stacked.String() != "stacked" {
		t.Fatal("channel names wrong")
	}
	if Magnitude.Dim(14) != 14 || Stacked.Dim(14) != 28 {
		t.Fatal("channel dims wrong")
	}
	if Channel(9).String() == "" {
		t.Fatal("unknown channel must format")
	}
}

func TestSampleVectorAndMask(t *testing.T) {
	s := Sample{Vm: []float64{1, 1.02}, Va: []float64{0, -0.1}}
	if !s.Complete() || s.Missing(0) {
		t.Fatal("unmasked sample must be complete")
	}
	v := s.Vector(Stacked)
	if len(v) != 4 || v[0] != 1 || v[3] != -0.1 {
		t.Fatalf("stacked vector = %v", v)
	}
	// Vector returns copies.
	v[0] = 99
	if s.Vm[0] == 99 {
		t.Fatal("Vector must copy")
	}
	m := pmunet.Mask{true, false}
	ms := s.WithMask(m)
	if ms.Complete() || !ms.Missing(0) || ms.Missing(1) {
		t.Fatal("mask not applied")
	}
	fm := ms.MaskFor(Stacked)
	if !fm[0] || fm[1] || !fm[2] || fm[3] {
		t.Fatalf("MaskFor(Stacked) = %v", fm)
	}
	fa := ms.MaskFor(Angle)
	if !fa[0] || fa[1] {
		t.Fatalf("MaskFor(Angle) = %v", fa)
	}
	vm, va := s.Phasor2D(1)
	if vm != 1.02 || va != -0.1 {
		t.Fatal("Phasor2D wrong")
	}
}

func TestScenarioBasics(t *testing.T) {
	g := cases.IEEE14()
	var sc Scenario
	if !sc.Normal() || sc.Key() != "normal" {
		t.Fatal("empty scenario must be normal")
	}
	e := grid.Line(0) // connects buses 0 and 1
	sc = Scenario{e}
	if sc.Normal() {
		t.Fatal("non-empty scenario is not normal")
	}
	a, b := g.Endpoints(e)
	if !sc.Involves(g, a) || !sc.Involves(g, b) {
		t.Fatal("scenario must involve its endpoints")
	}
	if sc.Involves(g, 13) {
		t.Fatal("scenario must not involve far bus")
	}
	if sc.Key() != "lines-0" {
		t.Fatalf("Key = %q", sc.Key())
	}
}

func TestGenerateScenarioNormal(t *testing.T) {
	g := cases.IEEE14()
	set, err := GenerateScenario(g, nil, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if set.T() != 6 {
		t.Fatalf("T = %d", set.T())
	}
	for _, s := range set.Samples {
		if s.N() != 14 {
			t.Fatalf("sample has %d buses", s.N())
		}
		for i, vm := range s.Vm {
			if vm < 0.8 || vm > 1.2 {
				t.Fatalf("bus %d implausible Vm %v", i, vm)
			}
		}
	}
	// Samples vary over time (OU + noise).
	if set.Samples[0].Va[5] == set.Samples[1].Va[5] {
		t.Fatal("no temporal variation")
	}
}

func TestGenerateScenarioDeterministic(t *testing.T) {
	g := cases.IEEE14()
	a, err := GenerateScenario(g, Scenario{3}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := GenerateScenario(g, Scenario{3}, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for t0 := range a.Samples {
		for i := range a.Samples[t0].Vm {
			if a.Samples[t0].Vm[i] != b.Samples[t0].Vm[i] {
				t.Fatal("generation not deterministic")
			}
		}
	}
}

func TestGenerateFullDeterministic(t *testing.T) {
	// The whole pipeline — load process, noise, per-scenario seeds — must
	// be a pure function of (grid, config): no global rand anywhere.
	g := cases.IEEE14()
	a, err := Generate(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a.ValidLines, b.ValidLines) {
		t.Fatalf("valid lines differ: %v vs %v", a.ValidLines, b.ValidLines)
	}
	if !reflect.DeepEqual(a.Normal.Samples, b.Normal.Samples) {
		t.Fatal("normal sets differ between identically-seeded runs")
	}
	for _, e := range a.ValidLines {
		if !reflect.DeepEqual(a.OutageSet(e).Samples, b.OutageSet(e).Samples) {
			t.Fatalf("line %d outage sets differ between identically-seeded runs", e)
		}
	}
}

func TestGenerateScenarioIslanding(t *testing.T) {
	g := cases.IEEE14()
	// Line 13 (7-8) is bus 8's only connection in IEEE-14: removal islands.
	e := g.FindLine(6, 7)
	if e < 0 {
		t.Fatal("line 7-8 not found")
	}
	_, err := GenerateScenario(g, Scenario{e}, smallConfig())
	if !errors.Is(err, ErrInvalidScenario) {
		t.Fatalf("expected ErrInvalidScenario, got %v", err)
	}
}

func TestGenerateFull(t *testing.T) {
	g := cases.IEEE14()
	d, err := Generate(g, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if d.Normal.T() != 6 {
		t.Fatal("normal set wrong length")
	}
	// IEEE-14 has exactly one islanding line (7-8), so 19 valid cases.
	if len(d.ValidLines) != 19 {
		t.Fatalf("valid lines = %d, want 19", len(d.ValidLines))
	}
	for _, e := range d.ValidLines {
		if d.OutageSet(e) == nil || d.OutageSet(e).T() != 6 {
			t.Fatalf("line %d set missing or short", e)
		}
	}
	if d.OutageSet(g.FindLine(6, 7)) != nil {
		t.Fatal("islanding line must be excluded")
	}
}

func TestOutageSignatureVisibleInData(t *testing.T) {
	// The angle profile under an outage must differ from normal by much
	// more than the noise floor — otherwise nothing is learnable.
	g := cases.IEEE14()
	cfg := smallConfig()
	normal, err := GenerateScenario(g, nil, cfg)
	if err != nil {
		t.Fatal(err)
	}
	out, err := GenerateScenario(g, Scenario{0}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var maxDiff float64
	for i := 0; i < g.N(); i++ {
		d := math.Abs(normal.Samples[0].Va[i] - out.Samples[0].Va[i])
		if d > maxDiff {
			maxDiff = d
		}
	}
	if maxDiff < 0.01 {
		t.Fatalf("outage signature %.4f rad too small vs 1e-3 noise", maxDiff)
	}
}

func TestMatrixShape(t *testing.T) {
	g := cases.IEEE14()
	set, err := GenerateScenario(g, nil, smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	x := set.Matrix(Angle)
	if r, c := x.Dims(); r != 14 || c != 6 {
		t.Fatalf("Matrix dims = %dx%d", r, c)
	}
	xs := set.Matrix(Stacked)
	if r, _ := xs.Dims(); r != 28 {
		t.Fatalf("stacked rows = %d", r)
	}
	if x.At(3, 2) != set.Samples[2].Va[3] {
		t.Fatal("matrix layout wrong: columns must be time instants")
	}
	empty := &Set{}
	if r, c := empty.Matrix(Angle).Dims(); r != 0 || c != 0 {
		t.Fatal("empty set must give empty matrix")
	}
}

func TestSplit(t *testing.T) {
	set := &Set{}
	for i := 0; i < 10; i++ {
		set.Samples = append(set.Samples, Sample{Vm: []float64{float64(i)}, Va: []float64{0}})
	}
	train, test := set.Split(0.7, 3)
	if train.T() != 7 || test.T() != 3 {
		t.Fatalf("split sizes %d/%d", train.T(), test.T())
	}
	// No overlap, full coverage.
	seen := map[float64]int{}
	for _, s := range train.Samples {
		seen[s.Vm[0]]++
	}
	for _, s := range test.Samples {
		seen[s.Vm[0]]++
	}
	if len(seen) != 10 {
		t.Fatalf("split lost samples: %d unique", len(seen))
	}
	for v, n := range seen {
		if n != 1 {
			t.Fatalf("sample %v appears %d times", v, n)
		}
	}
	// Degenerate fractions clamp.
	tr, te := set.Split(-1, 1)
	if tr.T() != 0 || te.T() != 10 {
		t.Fatal("negative fraction must clamp to 0")
	}
	tr, te = set.Split(2, 1)
	if tr.T() != 10 || te.T() != 0 {
		t.Fatal("fraction >1 must clamp to 1")
	}
}

func TestDCGeneration(t *testing.T) {
	g := cases.IEEE14()
	cfg := smallConfig()
	cfg.UseDC = true
	d, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// DC magnitudes are 1.0 plus noise only.
	for _, s := range d.Normal.Samples {
		for _, vm := range s.Vm {
			if math.Abs(vm-1) > 0.01 {
				t.Fatalf("DC magnitude %v, want ~1", vm)
			}
		}
	}
	if len(d.ValidLines) == 0 {
		t.Fatal("no valid DC outage cases")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	g := cases.IEEE14()
	cfg := smallConfig()
	cfg.UseDC = true
	d, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Attach a mask to one sample to exercise that path.
	d.Normal.Samples[0].Mask = pmunet.Mask(make([]bool, g.N()))
	d.Normal.Samples[0].Mask[3] = true

	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	name, err := SystemName(bytes.NewReader(raw))
	if err != nil || name != "ieee14" {
		t.Fatalf("SystemName = %q, %v", name, err)
	}

	d2, err := ReadJSON(bytes.NewReader(raw), g)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Normal.T() != d.Normal.T() || len(d2.ValidLines) != len(d.ValidLines) {
		t.Fatal("round trip lost sets")
	}
	if !d2.Normal.Samples[0].Missing(3) || d2.Normal.Samples[0].Missing(2) {
		t.Fatal("mask not preserved")
	}
	for i := range d.Normal.Samples[1].Vm {
		if d.Normal.Samples[1].Vm[i] != d2.Normal.Samples[1].Vm[i] {
			t.Fatal("values not preserved")
		}
	}
}

func TestReadJSONRejectsMismatchedGrid(t *testing.T) {
	g := cases.IEEE14()
	cfg := smallConfig()
	cfg.UseDC = true
	cfg.Steps = 2
	d, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSON(bytes.NewReader(buf.Bytes()), cases.IEEE30()); err == nil {
		t.Fatal("expected system mismatch error")
	}
	if _, err := ReadJSON(bytes.NewReader([]byte("{bad")), g); err == nil {
		t.Fatal("expected decode error")
	}
}
