// Package modelio is golden-test input for the modelio analyzer: it
// declares a struct named Model, which makes every module-internal
// struct reachable through its fields part of the serialized artifact
// surface. With Module unset in golden tests, "module-internal" means
// this package only.
package modelio

import "time"

// Model is the serialization root the analyzer keys on. Its embedded
// Extra field is exempt (encoding/json inlines embedded structs), but
// Extra's own fields are still checked.
type Model struct {
	Extra
	Version int    `json:"format_version"`
	Name    string // want `exported field Model\.Name is serialized via modelio\.Model but has no json tag`
	Ignored string `json:"-"`
	Grid    *Topology     `json:"grid"`
	Bases   []Basis       `json:"bases"`
	ByLine  map[int]Basis `json:"by_line"`
	Stamp   time.Time     // want `exported field Model\.Stamp is serialized via modelio\.Model but has no json tag`
	hidden  internalState // unexported: no tag needed, but the type is still traversed
}

// Extra is reached by embedding.
type Extra struct {
	Note string // want `exported field Extra\.Note is serialized via modelio\.Model but has no json tag`
}

// Topology is reachable via a pointer field. time.Time fields above are
// flagged at the Model field, but time.Time's own internals are outside
// the module and never traversed.
type Topology struct {
	Buses []Bus `json:"buses"`
	N     int   // want `exported field Topology\.N is serialized via modelio\.Model but has no json tag`
}

// Bus is reachable via a slice inside a reachable struct; fully tagged,
// no findings.
type Bus struct {
	ID   int     `json:"id"`
	Load float64 `json:"load"`
}

// Basis is reachable both via a slice and as a map value; the analyzer
// must report its untagged field exactly once.
type Basis struct {
	Cols [][]float64 `json:"cols"`
	Rank int         // want `exported field Basis\.Rank is serialized via modelio\.Model but has no json tag`
}

// internalState is reached only through an unexported field of Model;
// its exported fields still hit the wire when the artifact round-trips
// through a marshal of the containing representation.
type internalState struct {
	Epoch uint64 // want `exported field internalState\.Epoch is serialized via modelio\.Model but has no json tag`
	count int
}

// Unreachable never appears in Model's closure: untagged exported
// fields here are not findings.
type Unreachable struct {
	Whatever string
}
