// Package router is golden-test input pinning that the apierr typed-
// error contract extends to the fleet-serving packages (api, registry,
// router key on their package names like the facade does).
package router

import (
	"errors"
	"fmt"
)

// ErrNoBackends is a proper package-level sentinel: clean.
var ErrNoBackends = errors.New("router: no backend available")

// Forward wraps the sentinel: clean.
func Forward() error {
	return fmt.Errorf("%w: pool empty", ErrNoBackends)
}

// Promote builds an unmatchable error on the exported surface.
func Promote() error {
	return fmt.Errorf("promotion blocked") // want `exported function Promote returns fmt.Errorf without wrapping a sentinel`
}

// probe may build bare detail freely, but one-off dynamic errors are
// still flagged anywhere.
func probe() error {
	if true {
		return errors.New("probe failed") // want `errors.New inside function probe builds a one-off error`
	}
	return fmt.Errorf("probe detail %d", 1)
}
