package analysis

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestCacheSecondRunIdentical pins the cache's one invariant: caching
// must never change results, only skip work. A second run over an
// unchanged tree serves every package from the cache and reports the
// exact same findings and tallies.
func TestCacheSecondRunIdentical(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "gridlint-cache.json")

	cold := reportFixture(t, cache)
	if cold.CacheHits != 0 {
		t.Fatalf("cold run reports %d cache hits, want 0", cold.CacheHits)
	}
	if _, err := os.Stat(cache); err != nil {
		t.Fatalf("cold run did not write the cache file: %v", err)
	}

	warm := reportFixture(t, cache)
	if warm.CacheHits != warm.Packages {
		t.Fatalf("warm run reports %d cache hits, want %d (every package)", warm.CacheHits, warm.Packages)
	}
	if !reflect.DeepEqual(cold.Findings, warm.Findings) {
		t.Fatal("cached findings differ from freshly computed findings")
	}
	if cold.Errors != warm.Errors || cold.Warnings != warm.Warnings {
		t.Fatalf("tallies changed across cache: %d/%d vs %d/%d",
			cold.Errors, cold.Warnings, warm.Errors, warm.Warnings)
	}
}

// TestCacheCorruptionIsHarmless pins the failure mode: a corrupt cache
// file degrades to a full re-analysis with identical results.
func TestCacheCorruptionIsHarmless(t *testing.T) {
	cache := filepath.Join(t.TempDir(), "gridlint-cache.json")
	cold := reportFixture(t, cache)
	if err := os.WriteFile(cache, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	redo := reportFixture(t, cache)
	if redo.CacheHits != 0 {
		t.Fatalf("corrupt cache yielded %d hits, want 0", redo.CacheHits)
	}
	if !reflect.DeepEqual(cold.Findings, redo.Findings) {
		t.Fatal("findings differ after cache corruption")
	}
}

// TestCacheInvalidatesOnSourceChange pins the package key: editing a
// source file in the analyzed package re-analyzes it (and only it).
func TestCacheInvalidatesOnSourceChange(t *testing.T) {
	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpcache\n\ngo 1.21\n")
	write("a/a.go", "package a\n\nfunc Eq(x, y float64) bool { return x == y }\n")
	write("b/b.go", "package b\n\nfunc Twice(x int) int { return 2 * x }\n")
	cache := filepath.Join(mod, ".gridlint-cache.json")

	run := func() *Report {
		t.Helper()
		loader, err := NewLoader(mod)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := RunDirsReport(loader, []*Analyzer{FloatCmp},
			[]string{filepath.Join(mod, "a"), filepath.Join(mod, "b")}, cache)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	cold := run()
	if cold.Errors != 1 {
		t.Fatalf("cold run found %d errors, want 1 (the float compare)", cold.Errors)
	}
	if warm := run(); warm.CacheHits != 2 {
		t.Fatalf("warm run: %d hits, want 2", warm.CacheHits)
	}

	// Fix the float compare; package a must be re-analyzed, b stays cached.
	write("a/a.go", "package a\n\nfunc Eq(x, y float64) bool { return x < y }\n")
	edited := run()
	if edited.CacheHits != 1 {
		t.Fatalf("after edit: %d hits, want 1 (only the untouched package)", edited.CacheHits)
	}
	if edited.Errors != 0 {
		t.Fatalf("after fix: %d errors, want 0", edited.Errors)
	}
}
