// Package mat implements the dense linear algebra needed by the outage
// detector: real and complex matrices, LU and QR factorizations, a
// one-sided Jacobi singular value decomposition, and Moore–Penrose
// pseudo-inverses. It is self-contained (standard library only) and tuned
// for the moderate dimensions of power-grid phasor data (tens to a few
// hundred rows).
package mat

import (
	"fmt"
	"math"
	"strings"
)

// Dense is a row-major dense matrix of float64 values.
type Dense struct {
	rows, cols int
	data       []float64
}

// NewDense returns an r-by-c zero matrix.
func NewDense(r, c int) *Dense {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	return &Dense{rows: r, cols: c, data: make([]float64, r*c)}
}

// NewDenseData returns an r-by-c matrix backed by data (row major). The
// slice is used directly, not copied. len(data) must equal r*c.
func NewDenseData(r, c int, data []float64) *Dense {
	if len(data) != r*c {
		panic(fmt.Sprintf("mat: data length %d does not match %dx%d", len(data), r, c))
	}
	return &Dense{rows: r, cols: c, data: data}
}

// Identity returns the n-by-n identity matrix.
func Identity(n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, 1)
	}
	return m
}

// Rows returns the number of rows.
func (m *Dense) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Dense) Cols() int { return m.cols }

// Dims returns (rows, cols).
func (m *Dense) Dims() (int, int) { return m.rows, m.cols }

// At returns the element at row i, column j.
func (m *Dense) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Dense) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

// Add adds v to the element at row i, column j.
func (m *Dense) Add(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] += v
}

func (m *Dense) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Dense) Clone() *Dense {
	d := make([]float64, len(m.data))
	copy(d, m.data)
	return &Dense{rows: m.rows, cols: m.cols, data: d}
}

// Row returns a copy of row i.
func (m *Dense) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("mat: row %d out of range %d", i, m.rows))
	}
	out := make([]float64, m.cols)
	copy(out, m.data[i*m.cols:(i+1)*m.cols])
	return out
}

// Col returns a copy of column j.
func (m *Dense) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: col %d out of range %d", j, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// SetRow copies v into row i. len(v) must equal Cols.
func (m *Dense) SetRow(i int, v []float64) {
	if len(v) != m.cols {
		panic(fmt.Sprintf("mat: SetRow length %d != cols %d", len(v), m.cols))
	}
	copy(m.data[i*m.cols:(i+1)*m.cols], v)
}

// SetCol copies v into column j. len(v) must equal Rows.
func (m *Dense) SetCol(j int, v []float64) {
	if len(v) != m.rows {
		panic(fmt.Sprintf("mat: SetCol length %d != rows %d", len(v), m.rows))
	}
	for i := 0; i < m.rows; i++ {
		m.data[i*m.cols+j] = v[i]
	}
}

// RawRow returns row i without copying. The caller must not resize it.
func (m *Dense) RawRow(i int) []float64 {
	return m.data[i*m.cols : (i+1)*m.cols]
}

// T returns the transpose of m as a new matrix.
func (m *Dense) T() *Dense {
	t := NewDense(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		for j, v := range row {
			t.data[j*t.cols+i] = v
		}
	}
	return t
}

// Mul returns the matrix product m*b.
func (m *Dense) Mul(b *Dense) *Dense {
	if m.cols != b.rows {
		panic(fmt.Sprintf("mat: Mul dimension mismatch %dx%d * %dx%d", m.rows, m.cols, b.rows, b.cols))
	}
	out := NewDense(m.rows, b.cols)
	for i := 0; i < m.rows; i++ {
		arow := m.data[i*m.cols : (i+1)*m.cols]
		orow := out.data[i*out.cols : (i+1)*out.cols]
		for k, a := range arow {
			if a == 0 { //gridlint:ignore floatcmp sparse multiply skips exact structural zeros only
				continue
			}
			brow := b.data[k*b.cols : (k+1)*b.cols]
			for j, bv := range brow {
				orow[j] += a * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m*x.
func (m *Dense) MulVec(x []float64) []float64 {
	if m.cols != len(x) {
		panic(fmt.Sprintf("mat: MulVec dimension mismatch %dx%d * %d", m.rows, m.cols, len(x)))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			s += v * x[j]
		}
		out[i] = s
	}
	return out
}

// AddMat returns m + b as a new matrix.
func (m *Dense) AddMat(b *Dense) *Dense {
	m.sameDims(b, "AddMat")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] += v
	}
	return out
}

// SubMat returns m - b as a new matrix.
func (m *Dense) SubMat(b *Dense) *Dense {
	m.sameDims(b, "SubMat")
	out := m.Clone()
	for i, v := range b.data {
		out.data[i] -= v
	}
	return out
}

// Scale returns s*m as a new matrix.
func (m *Dense) Scale(s float64) *Dense {
	out := m.Clone()
	for i := range out.data {
		out.data[i] *= s
	}
	return out
}

func (m *Dense) sameDims(b *Dense, op string) {
	if m.rows != b.rows || m.cols != b.cols {
		panic(fmt.Sprintf("mat: %s dimension mismatch %dx%d vs %dx%d", op, m.rows, m.cols, b.rows, b.cols))
	}
}

// SelectRows returns the submatrix with the given rows, in order.
func (m *Dense) SelectRows(idx []int) *Dense {
	out := NewDense(len(idx), m.cols)
	for k, i := range idx {
		if i < 0 || i >= m.rows {
			panic(fmt.Sprintf("mat: SelectRows index %d out of range %d", i, m.rows))
		}
		copy(out.data[k*out.cols:(k+1)*out.cols], m.data[i*m.cols:(i+1)*m.cols])
	}
	return out
}

// SelectCols returns the submatrix with the given columns, in order.
func (m *Dense) SelectCols(idx []int) *Dense {
	out := NewDense(m.rows, len(idx))
	for i := 0; i < m.rows; i++ {
		src := m.data[i*m.cols : (i+1)*m.cols]
		dst := out.data[i*out.cols : (i+1)*out.cols]
		for k, j := range idx {
			if j < 0 || j >= m.cols {
				panic(fmt.Sprintf("mat: SelectCols index %d out of range %d", j, m.cols))
			}
			dst[k] = src[j]
		}
	}
	return out
}

// FrobeniusNorm returns the Frobenius norm of m.
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.data {
		s += v * v
	}
	return math.Sqrt(s)
}

// MaxAbs returns the largest absolute element value.
func (m *Dense) MaxAbs() float64 {
	var mx float64
	for _, v := range m.data {
		if a := math.Abs(v); a > mx {
			mx = a
		}
	}
	return mx
}

// Equalf reports whether m and b have the same shape and all elements
// within tol of each other.
func (m *Dense) Equalf(b *Dense, tol float64) bool {
	if m.rows != b.rows || m.cols != b.cols {
		return false
	}
	for i, v := range m.data {
		if math.Abs(v-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String formats the matrix for debugging.
func (m *Dense) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%dx%d[", m.rows, m.cols)
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			sb.WriteString("; ")
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				sb.WriteByte(' ')
			}
			fmt.Fprintf(&sb, "%.4g", m.At(i, j))
		}
	}
	sb.WriteByte(']')
	return sb.String()
}
