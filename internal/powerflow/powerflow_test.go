package powerflow

import (
	"errors"
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"pmuoutage/internal/grid"
)

// twoBus returns the textbook two-bus system: slack feeding a load over a
// single line. It has a closed-form solution to validate against.
func twoBus(pd, qd, r, x float64) *grid.Grid {
	return &grid.Grid{
		Name: "twobus", BaseMVA: 100,
		Buses: []grid.Bus{
			{ID: 1, Type: grid.Slack, Vm: 1, Va: 0},
			{ID: 2, Type: grid.PQ, Pd: pd, Qd: qd, Vm: 1, Va: 0},
		},
		Branches: []grid.Branch{
			{From: 0, To: 1, R: r, X: x, Status: true},
		},
	}
}

func TestTwoBusAgainstClosedForm(t *testing.T) {
	pd, qd := 0.5, 0.2
	r, x := 0.02, 0.1
	g := twoBus(pd, qd, r, x)
	sol, err := SolveAC(g, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	// Verify the power balance at bus 2 directly: S2 = V2 * conj(I2)
	// where I2 = (V2 - V1)/Z must equal -(pd + j qd).
	v1 := cmplx.Rect(sol.Vm[0], sol.Va[0])
	v2 := cmplx.Rect(sol.Vm[1], sol.Va[1])
	z := complex(r, x)
	i2 := (v2 - v1) / z
	s2 := v2 * cmplx.Conj(i2)
	if cmplx.Abs(s2-complex(-pd, -qd)) > 1e-7 {
		t.Fatalf("bus-2 injection = %v, want %v", s2, complex(-pd, -qd))
	}
	// Load bus voltage must sag below the slack's.
	if sol.Vm[1] >= sol.Vm[0] {
		t.Fatalf("load bus Vm %.4f must sag below slack %.4f", sol.Vm[1], sol.Vm[0])
	}
	if sol.Va[1] >= 0 {
		t.Fatalf("load bus angle %.4f must lag", sol.Va[1])
	}
}

func TestPowerBalanceAtEveryBus(t *testing.T) {
	// On a meshed grid, verify S_i = V_i * conj((Ybus*V)_i) matches the
	// scheduled injection at every PQ bus and the P injection at PV buses.
	g := mesh()
	sol, err := SolveAC(g, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	n := g.N()
	v := make([]complex128, n)
	for i := range v {
		v[i] = cmplx.Rect(sol.Vm[i], sol.Va[i])
	}
	iv := g.Ybus().MulVec(v)
	for i := 0; i < n; i++ {
		s := v[i] * cmplx.Conj(iv[i])
		sched := complex(g.Buses[i].Pg-g.Buses[i].Pd, g.Buses[i].Qg-g.Buses[i].Qd)
		switch g.Buses[i].Type {
		case grid.PQ:
			if cmplx.Abs(s-sched) > 1e-6 {
				t.Errorf("PQ bus %d: S=%v, sched=%v", i, s, sched)
			}
		case grid.PV:
			if math.Abs(real(s)-real(sched)) > 1e-6 {
				t.Errorf("PV bus %d: P=%v, sched=%v", i, real(s), real(sched))
			}
			if math.Abs(sol.Vm[i]-g.Buses[i].Vm) > 1e-12 {
				t.Errorf("PV bus %d: Vm moved to %v", i, sol.Vm[i])
			}
		case grid.Slack:
			if sol.Vm[i] != g.Buses[i].Vm || sol.Va[i] != g.Buses[i].Va {
				t.Errorf("slack voltage moved")
			}
		}
	}
}

// mesh returns a 6-bus meshed system with a PV bus.
func mesh() *grid.Grid {
	g := &grid.Grid{
		Name: "mesh6", BaseMVA: 100,
		Buses: []grid.Bus{
			{ID: 1, Type: grid.Slack, Vm: 1.05, Va: 0},
			{ID: 2, Type: grid.PV, Pg: 0.5, Vm: 1.02},
			{ID: 3, Type: grid.PQ, Pd: 0.45, Qd: 0.15, Vm: 1},
			{ID: 4, Type: grid.PQ, Pd: 0.4, Qd: 0.05, Vm: 1},
			{ID: 5, Type: grid.PQ, Pd: 0.6, Qd: 0.1, Vm: 1},
			{ID: 6, Type: grid.PQ, Pd: 0.2, Qd: 0.05, Vm: 1},
		},
	}
	add := func(a, b int, r, x float64) {
		g.Branches = append(g.Branches, grid.Branch{From: a, To: b, R: r, X: x, Status: true})
	}
	add(0, 1, 0.02, 0.1)
	add(0, 2, 0.03, 0.12)
	add(1, 3, 0.02, 0.09)
	add(2, 3, 0.015, 0.08)
	add(3, 4, 0.02, 0.1)
	add(2, 4, 0.03, 0.14)
	add(4, 5, 0.01, 0.06)
	add(1, 5, 0.04, 0.16)
	return g
}

func TestWarmStartFewerIterations(t *testing.T) {
	g := mesh()
	cold, err := SolveAC(g, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	// Warm start from the solution: should converge almost immediately.
	wg := g.Clone()
	for i := range wg.Buses {
		wg.Buses[i].Vm = cold.Vm[i]
		wg.Buses[i].Va = cold.Va[i]
	}
	warm, err := SolveAC(wg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Iterations > 1 {
		t.Fatalf("warm start took %d iterations, want <= 1", warm.Iterations)
	}
	if cold.Iterations < 2 {
		t.Fatalf("cold start suspiciously fast: %d iterations", cold.Iterations)
	}
}

func TestNoConvergenceOnOverload(t *testing.T) {
	// An absurd load has no AC solution; the solver must say so rather
	// than return garbage.
	g := twoBus(50, 20, 0.02, 0.1)
	_, err := SolveAC(g, Options{FlatStart: true, MaxIter: 25})
	if err == nil {
		t.Fatal("expected failure for infeasible loading")
	}
	if !errors.Is(err, ErrNoConvergence) {
		// A singular Jacobian near collapse is also acceptable; both
		// signal infeasibility. Only a nil error is wrong.
		t.Logf("non-convergence reported as: %v", err)
	}
}

func TestNoSlackError(t *testing.T) {
	g := twoBus(0.1, 0.05, 0.02, 0.1)
	g.Buses[0].Type = grid.PQ
	if _, err := SolveAC(g, Options{}); err == nil {
		t.Fatal("expected error without slack bus")
	}
	if _, err := SolveDC(g); err == nil {
		t.Fatal("expected DC error without slack bus")
	}
}

func TestSolutionPhasor(t *testing.T) {
	s := &Solution{Vm: []float64{2}, Va: []float64{math.Pi / 2}}
	p := s.Phasor(0)
	if cmplx.Abs(p-2i) > 1e-12 {
		t.Fatalf("Phasor = %v, want 2i", p)
	}
}

func TestDCMatchesACAnglesApproximately(t *testing.T) {
	// Light loading, low R/X: DC angles should approximate AC angles.
	g := mesh()
	for i := range g.Buses {
		g.Buses[i].Pd *= 0.3
		g.Buses[i].Qd = 0
		g.Buses[i].Pg *= 0.3
		if g.Buses[i].Type != grid.PQ {
			g.Buses[i].Vm = 1
		}
	}
	for e := range g.Branches {
		g.Branches[e].R = 0
	}
	ac, err := SolveAC(g, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	dc, err := SolveDC(g)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ac.Va {
		if math.Abs(ac.Va[i]-dc.Va[i]) > 0.01 {
			t.Errorf("bus %d: AC angle %.5f vs DC %.5f", i, ac.Va[i], dc.Va[i])
		}
	}
}

func TestDCPowerBalance(t *testing.T) {
	g := mesh()
	dc, err := SolveDC(g)
	if err != nil {
		t.Fatal(err)
	}
	// B' * theta must reproduce the injections at non-slack buses.
	lap := g.Laplacian()
	p := lap.MulVec(dc.Va)
	for i := 1; i < g.N(); i++ {
		want := g.Buses[i].Pg - g.Buses[i].Pd
		if math.Abs(p[i]-want) > 1e-9 {
			t.Errorf("bus %d: DC injection %.6f, want %.6f", i, p[i], want)
		}
	}
}

func TestDispatchBalancesGeneration(t *testing.T) {
	g := mesh()
	// Unbalance generation, then re-dispatch.
	g.Buses[1].Pg = 10
	ng := Dispatch(g, 0.03)
	var gen float64
	for i := range ng.Buses {
		if ng.Buses[i].Type != grid.PQ {
			gen += ng.Buses[i].Pg
		}
	}
	want := ng.TotalLoad() * 1.03
	if math.Abs(gen-want) > 1e-9 {
		t.Fatalf("dispatched generation %.6f, want %.6f", gen, want)
	}
	// Original untouched.
	if g.Buses[1].Pg != 10 {
		t.Fatal("Dispatch mutated its input")
	}
}

func TestDispatchNoGenerators(t *testing.T) {
	g := twoBus(0.1, 0, 0.01, 0.1)
	g.Buses[0].Pg = 0
	ng := Dispatch(g, 0)
	if ng.Buses[0].Pg != 0 {
		t.Fatal("Dispatch with zero generation must be a no-op")
	}
}

func TestOutageShiftsPhasors(t *testing.T) {
	// Removing a line must change the voltage profile — this is the
	// physical signal the whole detector is built on.
	g := mesh()
	base, err := SolveAC(g, Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	out, err := SolveAC(g.WithoutLine(3), Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	var maxShift float64
	for i := range base.Va {
		if d := math.Abs(base.Va[i] - out.Va[i]); d > maxShift {
			maxShift = d
		}
	}
	if maxShift < 1e-4 {
		t.Fatalf("outage signature too small: %.2e", maxShift)
	}
}

func BenchmarkSolveACMesh6(b *testing.B) {
	g := mesh()
	for i := 0; i < b.N; i++ {
		if _, err := SolveAC(g, Options{FlatStart: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestACConvergesOnRandomFeasibleGrids(t *testing.T) {
	// Property: randomly generated light-load meshed grids admit an AC
	// solution from flat start, and solving twice is deterministic.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(10)
		g := &grid.Grid{Name: "rand", BaseMVA: 100}
		for i := 0; i < n; i++ {
			b := grid.Bus{ID: i + 1, Type: grid.PQ, Vm: 1}
			if i == 0 {
				b.Type = grid.Slack
				b.Vm = 1.02
			}
			g.Buses = append(g.Buses, b)
		}
		for i := 1; i < n; i++ {
			parent := rng.Intn(i)
			g.Branches = append(g.Branches, grid.Branch{
				From: parent, To: i, R: 0.01 + 0.02*rng.Float64(),
				X: 0.05 + 0.1*rng.Float64(), Status: true,
			})
		}
		for k := 0; k < n/2; k++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a == b {
				continue
			}
			g.Branches = append(g.Branches, grid.Branch{
				From: a, To: b, R: 0.01, X: 0.05 + 0.2*rng.Float64(), Status: true,
			})
		}
		var load float64
		for i := 1; i < n; i++ {
			pd := 0.02 + 0.06*rng.Float64()
			g.Buses[i].Pd = pd
			g.Buses[i].Qd = pd * 0.3
			load += pd
		}
		s1, err := SolveAC(g, Options{FlatStart: true})
		if err != nil {
			return false
		}
		s2, err := SolveAC(g, Options{FlatStart: true})
		if err != nil {
			return false
		}
		for i := range s1.Vm {
			if s1.Vm[i] != s2.Vm[i] || s1.Va[i] != s2.Va[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
