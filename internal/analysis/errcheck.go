package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ErrCheck flags call statements that silently drop an error result when
// the callee is repo-internal (pmuoutage/...) or one of the stdlib I/O
// packages whose errors carry the unreliable-network semantics this
// system is built around. Deliberate drops must be spelled `_ = f()` (or
// annotated), so a reviewer can see the decision. defer/go statements
// are exempt — the conventional `defer f.Close()` stays idiomatic.
var ErrCheck = &Analyzer{
	Name: "errcheck",
	Doc:  "flag dropped error returns from repo-internal and stdlib I/O calls",
	Run:  runErrCheck,
}

// errcheckStdlib is the set of stdlib packages whose dropped errors are
// flagged. fmt is deliberately absent: fmt.Printf-to-stdout noise would
// drown the real findings.
var errcheckStdlib = map[string]bool{
	"io":            true,
	"io/fs":         true,
	"os":            true,
	"net":           true,
	"bufio":         true,
	"encoding/json": true,
	"encoding/csv":  true,
	"compress/gzip": true,
}

func runErrCheck(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			stmt, ok := n.(*ast.ExprStmt)
			if !ok {
				return true
			}
			call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := callee(pass, call)
			if fn == nil || !returnsError(fn) || !errcheckTarget(pass, fn) {
				return true
			}
			pass.Report(call.Pos(), "error result of %s is dropped; handle it or assign to _ explicitly", calleeName(fn))
			return true
		})
	}
	return nil
}

// callee resolves the static *types.Func a call dispatches to, or nil
// for builtins, conversions, and calls through function values.
func callee(pass *Pass, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := pass.Info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := pass.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// returnsError reports whether any result of fn is of type error.
func returnsError(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	errType := types.Universe.Lookup("error").Type()
	for i := 0; i < sig.Results().Len(); i++ {
		if types.Identical(sig.Results().At(i).Type(), errType) {
			return true
		}
	}
	return false
}

// errcheckTarget reports whether fn belongs to a package whose dropped
// errors this analyzer polices: the package under analysis itself, the
// repo module, or the stdlib I/O set.
func errcheckTarget(pass *Pass, fn *types.Func) bool {
	pkg := fn.Pkg()
	if pkg == nil {
		return false
	}
	if pkg == pass.Pkg {
		return true
	}
	path := pkg.Path()
	if pass.Module != "" && (path == pass.Module || strings.HasPrefix(path, pass.Module+"/")) {
		return true
	}
	return errcheckStdlib[path]
}

func calleeName(fn *types.Func) string {
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
