package service

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stats is the service's counters/gauges hook: one atomic cell per
// shard, updated on the request path without locks and snapshotted for
// the /v1/stats endpoint. Counters are observational only — they never
// influence routing or batching, so the detector output stays
// bit-identical to direct library calls.
type Stats struct {
	mu     sync.Mutex
	shards map[string]*ShardCounters
}

func newStats() *Stats {
	return &Stats{shards: map[string]*ShardCounters{}}
}

// shard returns (creating on first use) the named shard's counter cell.
func (s *Stats) shard(name string) *ShardCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.shards[name]
	if c == nil {
		c = &ShardCounters{}
		s.shards[name] = c
	}
	return c
}

// snapshot copies every cell into plain values.
func (s *Stats) snapshot() map[string]ShardSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ShardSnapshot, len(s.shards))
	for name, c := range s.shards {
		out[name] = c.snapshot()
	}
	return out
}

// ShardCounters are one shard's live counters. All fields are safe for
// concurrent update.
type ShardCounters struct {
	Requests    atomic.Uint64 // detect requests routed to the shard
	Ingests     atomic.Uint64 // streaming samples routed to the shard
	Samples     atomic.Uint64 // samples actually run through the detector
	Batches     atomic.Uint64 // coalesced detector calls
	Shed        atomic.Uint64 // requests rejected by load-shedding
	Unavailable atomic.Uint64 // requests refused while not ready
	Restarts    atomic.Uint64 // supervisor rebuilds (failures and kills)
	Reloads     atomic.Uint64 // successful hot model swaps

	latencyNS atomic.Int64 // total detector wall time
	maxBatch  atomic.Int64 // largest coalesced batch seen
}

// observeBatch records one detector call.
func (c *ShardCounters) observeBatch(samples int, d time.Duration) {
	c.Batches.Add(1)
	c.Samples.Add(uint64(samples))
	c.latencyNS.Add(d.Nanoseconds())
	for {
		cur := c.maxBatch.Load()
		if int64(samples) <= cur || c.maxBatch.CompareAndSwap(cur, int64(samples)) {
			return
		}
	}
}

// ShardSnapshot is a point-in-time copy of one shard's counters, shaped
// for JSON.
type ShardSnapshot struct {
	Requests     uint64  `json:"requests"`
	Ingests      uint64  `json:"ingests"`
	Samples      uint64  `json:"samples"`
	Batches      uint64  `json:"batches"`
	Shed         uint64  `json:"shed"`
	Unavailable  uint64  `json:"unavailable"`
	Restarts     uint64  `json:"restarts"`
	Reloads      uint64  `json:"reloads"`
	MaxBatch     int     `json:"max_batch"`
	AvgBatch     float64 `json:"avg_batch"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	QueueDepth   int     `json:"queue_depth"`
}

func (c *ShardCounters) snapshot() ShardSnapshot {
	snap := ShardSnapshot{
		Requests:    c.Requests.Load(),
		Ingests:     c.Ingests.Load(),
		Samples:     c.Samples.Load(),
		Batches:     c.Batches.Load(),
		Shed:        c.Shed.Load(),
		Unavailable: c.Unavailable.Load(),
		Restarts:    c.Restarts.Load(),
		Reloads:     c.Reloads.Load(),
		MaxBatch:    int(c.maxBatch.Load()),
	}
	if snap.Batches > 0 {
		snap.AvgBatch = float64(snap.Samples) / float64(snap.Batches)
		snap.AvgLatencyMS = float64(c.latencyNS.Load()) / float64(snap.Batches) / 1e6
	}
	return snap
}
