// Package pmuoutage is a robust power-line outage detector for PMU
// (phasor measurement unit) data streams, reproducing Cordova-Garcia &
// Wang, "Robust Power Line Outage Detection with Unreliable Phasor
// Measurements" (ICDE 2017).
//
// The library detects and localises transmission-line outages from bus
// voltage phasors even when arbitrary subsets of the measurements are
// missing — PMU dropouts, PDC failures, or data lost at the outage
// location itself. It learns per-node subspace signatures from
// historical (or simulated) data rather than per-scenario classifiers,
// which is what makes it robust to missing entries.
//
// A complete round trip:
//
//	sys, err := pmuoutage.NewSystem(pmuoutage.Options{Case: "ieee14"})
//	if err != nil { ... }
//	samples, err := sys.SimulateOutage([]int{4}, 3) // 3 samples of line-4 outage
//	report, err := sys.Detect(samples[0])
//	// report.Outage == true, report.Lines == [{buses of line 4}]
//
// Everything is deterministic in Options.Seed. The heavy machinery —
// Newton–Raphson AC power flow, SVD subspace learning, detection-group
// formation — lives in internal packages; this package is the stable
// surface.
//
// # Conventions
//
// Context first: every operation that does non-trivial work has a
// Context variant — NewSystemContext, DetectContext, DetectBatchContext,
// SimulateOutageContext, EvaluateContext — which honours cancellation
// and deadlines and bounds its parallelism by Options.Workers. The
// short names are thin wrappers over context.Background, kept for
// callers that do not need cancellation; new API is added in the
// Context form first.
//
// Typed errors: every failure the facade itself produces wraps one of
// the exported sentinels ErrUnknownCase, ErrBadSample, ErrBadLine, or
// ErrBadScores, so callers test with errors.Is rather than matching
// strings. Sample
// validation runs through one shared path, so Detect, DetectBatch, and
// Monitor.Ingest report byte-identical errors for the same defect.
//
// Serving: internal/service and cmd/outaged expose this same API as a
// sharded JSON-over-HTTP detection service — one trained System per
// shard, request coalescing, deadlines, and load-shedding on top of the
// methods below, with the sentinels mapped to HTTP status codes.
package pmuoutage

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/par"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/stream"
)

// Options configures NewSystem and TrainModel. Options are embedded in
// serialized Model artifacts (so a decoded model simulates and
// evaluates exactly as the original), hence the codec tags.
type Options struct {
	// Case names a built-in test system: "ieee14", "ieee30", "ieee57"
	// or "ieee118" (default "ieee14"). See Cases.
	Case string `json:"case"`
	// Clusters is the number of PDC clusters the PMU network is grouped
	// into; 0 derives max(3, buses/10).
	Clusters int `json:"clusters"`
	// TrainSteps is the length of the simulated training window per
	// scenario (default 40).
	TrainSteps int `json:"train_steps"`
	// Seed makes data generation and training deterministic (default 1).
	Seed int64 `json:"seed"`
	// UseDC switches the power-flow substrate to the fast linear DC
	// approximation. The default is the full Newton–Raphson AC solver.
	UseDC bool `json:"use_dc"`
	// Detector overrides the detector configuration (advanced use).
	Detector detect.Config `json:"detector"`
	// Workers bounds the worker pool used by data generation, training,
	// DetectBatch, and Evaluate (0 = GOMAXPROCS). Results are identical
	// for every worker count: the pipeline derives independent seeds per
	// scenario and assigns results by index.
	Workers int `json:"workers"`
}

func (o Options) withDefaults() Options {
	if o.Case == "" {
		o.Case = "ieee14"
	}
	if o.TrainSteps <= 0 {
		o.TrainSteps = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Cases lists the built-in test system names.
func Cases() []string { return cases.Names() }

// Sample is one time instant of PMU data for all buses: per-unit voltage
// magnitudes, angles in radians, and the indices of buses whose
// measurements are missing.
type Sample struct {
	Vm      []float64 `json:"vm"` //gridlint:unit pu
	Va      []float64 `json:"va"` //gridlint:unit rad
	Missing []int     `json:"missing,omitempty"`
}

// Line describes one power line by its internal index and its endpoint
// bus numbers (1-based, as in the IEEE case data).
type Line struct {
	Index   int `json:"index"`
	FromBus int `json:"from_bus"`
	ToBus   int `json:"to_bus"`
}

// Report is the outcome of one detection.
type Report struct {
	// Outage reports whether the sample contains at least one line outage.
	Outage bool `json:"outage"`
	// Lines is the identified outage set F̂.
	Lines []Line `json:"lines,omitempty"`
	// NodeScores are the scaled subspace proximities per bus (lower =
	// closer to that bus's outage signatures). A bus with no outage
	// signature scores +Inf, which Scores keeps representable in JSON.
	NodeScores Scores `json:"node_scores,omitempty"`
	// DeviationEnergy is the anomaly energy behind the outage decision.
	DeviationEnergy float64 `json:"deviation_energy"`
}

// System is a trained outage-detection system bound to one grid. It is
// a serving view over an immutable Model: training happens once (in
// NewSystem or TrainModel) and any number of Systems can serve the
// resulting artifact via NewSystemFromModel.
type System struct {
	opts  Options
	g     *grid.Grid
	nw    *pmunet.Network
	det   *detect.Detector
	model *Model
}

// NewSystem builds the grid, simulates training data (normal operation
// plus every valid single-line outage), and trains the detector. It is
// NewSystemContext with a background context.
func NewSystem(opts Options) (*System, error) {
	return NewSystemContext(context.Background(), opts)
}

// NewSystemContext is NewSystem with cancellation: the simulation and
// training pipeline checks ctx between scenarios and returns its error
// early when cancelled. Parallelism is bounded by Options.Workers.
// An Options.Case naming no built-in system fails with ErrUnknownCase.
// It is TrainModelContext followed by NewSystemFromModel; callers that
// want to persist or share the trained state call those directly.
func NewSystemContext(ctx context.Context, opts Options) (*System, error) {
	m, err := TrainModelContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	return NewSystemFromModel(m)
}

// Model returns the immutable trained artifact this system serves.
func (s *System) Model() *Model { return s.model }

// Buses returns the number of buses in the system.
func (s *System) Buses() int { return s.g.N() }

// Lines returns every line of the system with its endpoints.
func (s *System) Lines() []Line {
	out := make([]Line, s.g.E())
	for e := range out {
		out[e] = s.lineAt(grid.Line(e))
	}
	return out
}

// lineAt converts an internal line handle to the public endpoint view.
func (s *System) lineAt(e grid.Line) Line {
	a, b := s.g.Endpoints(e)
	return Line{Index: int(e), FromBus: s.g.Buses[a].ID, ToBus: s.g.Buses[b].ID}
}

// ValidLines returns the indices of lines whose outage is detectable
// (removal neither islands the grid nor diverges the power flow).
func (s *System) ValidLines() []int {
	var out []int
	for _, e := range s.det.ValidLines() {
		out = append(out, int(e))
	}
	return out
}

// Clusters returns the PDC cluster partition as bus-index groups.
func (s *System) Clusters() [][]int {
	out := make([][]int, len(s.nw.Clusters))
	for i, c := range s.nw.Clusters {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// datasetSample validates a facade Sample against the grid and converts
// it to the internal representation. It is the one shared validation
// path under Detect, DetectBatch, and Monitor.Ingest, so every entry
// point reports identical ErrBadSample errors for the same defect.
func (s *System) datasetSample(sample Sample) (dataset.Sample, error) {
	n := s.g.N()
	if len(sample.Vm) != n || len(sample.Va) != n {
		return dataset.Sample{}, fmt.Errorf("%w: sample has %d/%d values, grid has %d buses",
			ErrBadSample, len(sample.Vm), len(sample.Va), n)
	}
	ds := dataset.Sample{Vm: sample.Vm, Va: sample.Va}
	if len(sample.Missing) > 0 {
		m := pmunet.NoneMissing(n)
		for _, i := range sample.Missing {
			if i < 0 || i >= n {
				return dataset.Sample{}, fmt.Errorf("%w: missing index %d out of range %d", ErrBadSample, i, n)
			}
			m[i] = true
		}
		ds.Mask = m
	}
	return ds, nil
}

// Scores is a per-bus score vector. Scores can legitimately be
// non-finite (+Inf marks a bus with no outage signatures), which plain
// JSON numbers cannot carry, so Scores marshals non-finite entries as
// the strings "+Inf", "-Inf", and "NaN" and reads them back losslessly.
type Scores []float64

// MarshalJSON implements json.Marshaler.
func (s Scores) MarshalJSON() ([]byte, error) {
	vals := make([]any, len(s))
	for i, v := range s {
		switch {
		case math.IsInf(v, 1):
			vals[i] = "+Inf"
		case math.IsInf(v, -1):
			vals[i] = "-Inf"
		case math.IsNaN(v):
			vals[i] = "NaN"
		default:
			vals[i] = v
		}
	}
	return json.Marshal(vals)
}

// UnmarshalJSON implements json.Unmarshaler.
func (s *Scores) UnmarshalJSON(b []byte) error {
	var vals []any
	if err := json.Unmarshal(b, &vals); err != nil {
		return err
	}
	out := make(Scores, len(vals))
	for i, v := range vals {
		switch x := v.(type) {
		case float64:
			out[i] = x
		case string:
			switch x {
			case "+Inf":
				out[i] = math.Inf(1)
			case "-Inf":
				out[i] = math.Inf(-1)
			case "NaN":
				out[i] = math.NaN()
			default:
				return fmt.Errorf("%w: score %d: unknown value %q", ErrBadScores, i, x)
			}
		default:
			return fmt.Errorf("%w: score %d: neither number nor string", ErrBadScores, i)
		}
	}
	*s = out
	return nil
}

// report converts an internal detection result to the public view.
func (s *System) report(r *detect.Result) *Report {
	rep := &Report{
		Outage:          r.Outage,
		NodeScores:      Scores(r.NodeScores),
		DeviationEnergy: r.DeviationEnergy,
	}
	for _, e := range r.Lines {
		rep.Lines = append(rep.Lines, s.lineAt(e))
	}
	return rep
}

// Detect classifies one sample, which may have missing measurements. It
// is DetectContext with a background context.
func (s *System) Detect(sample Sample) (*Report, error) {
	return s.DetectContext(context.Background(), sample)
}

// DetectContext is Detect with cancellation. Classifying one sample is
// short and runs to completion once started; the context is checked on
// entry, which is what lets batch layers abort cheaply between samples.
// Malformed samples fail with an error wrapping ErrBadSample.
func (s *System) DetectContext(ctx context.Context, sample Sample) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	ds, err := s.datasetSample(sample)
	if err != nil {
		return nil, err
	}
	r, err := s.det.Detect(ds)
	if err != nil {
		return nil, err
	}
	return s.report(r), nil
}

// DetectBatch classifies many samples over the worker pool configured by
// Options.Workers and returns one report per sample, in input order.
// The trained detector is read-only during detection, so the batch
// result is identical to calling Detect in a loop.
func (s *System) DetectBatch(samples []Sample) ([]*Report, error) {
	return s.DetectBatchContext(context.Background(), samples)
}

// DetectBatchContext is DetectBatch with cancellation: a cancelled
// context aborts the remaining samples and returns the context error.
func (s *System) DetectBatchContext(ctx context.Context, samples []Sample) ([]*Report, error) {
	return par.Map(ctx, s.opts.Workers, len(samples), func(ctx context.Context, i int) (*Report, error) {
		return s.DetectContext(ctx, samples[i])
	})
}

// SimulateOutage generates n fresh test samples with the given lines out
// of service, using an independent random seed stream from training.
// Pass no lines for normal-operation samples. It is
// SimulateOutageContext with a background context.
func (s *System) SimulateOutage(lineIdx []int, n int) ([]Sample, error) {
	return s.SimulateOutageContext(context.Background(), lineIdx, n)
}

// SimulateOutageContext is SimulateOutage with cancellation: the
// per-step power-flow loop stops at the first context error. Line
// indices outside the grid fail with an error wrapping ErrBadLine.
func (s *System) SimulateOutageContext(ctx context.Context, lineIdx []int, n int) ([]Sample, error) {
	if n <= 0 {
		n = 1
	}
	var sc dataset.Scenario
	for _, e := range lineIdx {
		if e < 0 || e >= s.g.E() {
			return nil, fmt.Errorf("%w: line %d out of range %d", ErrBadLine, e, s.g.E())
		}
		sc = append(sc, grid.Line(e))
	}
	set, err := dataset.GenerateScenarioContext(ctx, s.g, sc, dataset.GenConfig{
		Steps: n, Seed: s.opts.Seed + 99991, UseDC: s.opts.UseDC,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Sample, set.T())
	for i, smp := range set.Samples {
		out[i] = Sample{Vm: smp.Vm, Va: smp.Va}
	}
	return out, nil
}

// Evaluate scores the detector on fresh samples of every valid
// single-line outage and returns the mean identification accuracy and
// false-alarm rate (Eq. 12 of the paper). perCase controls how many
// samples are drawn per outage case. It is EvaluateContext with a
// background context.
func (s *System) Evaluate(perCase int) (ia, fa float64, err error) {
	return s.EvaluateContext(context.Background(), perCase)
}

// EvaluateContext is Evaluate with cancellation. The outage cases fan
// out over the Options.Workers pool: each case simulates and scores its
// samples independently (its seed stream derives from the scenario, not
// from shared state) and the per-case accumulators merge in line order,
// so the result is identical for every worker count.
func (s *System) EvaluateContext(ctx context.Context, perCase int) (ia, fa float64, err error) {
	if perCase <= 0 {
		perCase = 5
	}
	lines := s.det.ValidLines()
	accs, err := par.Map(ctx, s.opts.Workers, len(lines), func(ctx context.Context, i int) (metrics.Accumulator, error) {
		e := lines[i]
		var acc metrics.Accumulator
		samples, err := s.SimulateOutageContext(ctx, []int{int(e)}, perCase)
		if err != nil {
			return acc, err
		}
		for _, smp := range samples {
			r, err := s.DetectContext(ctx, smp)
			if err != nil {
				return acc, err
			}
			var got []grid.Line
			for _, l := range r.Lines {
				got = append(got, grid.Line(l.Index))
			}
			acc.Add([]grid.Line{e}, got)
		}
		return acc, nil
	})
	if err != nil {
		return 0, 0, err
	}
	var total metrics.Accumulator
	for _, acc := range accs { // fixed line order: deterministic float sums
		total.Merge(acc)
	}
	return total.IA(), total.FA(), nil
}

// DrawMissing samples a missing-data pattern from the PMU-network
// reliability model of the paper (Eqs. 13–15): given a target
// system-wide reliability level r in (0, 1], every PMU (and its link to
// the PDC) fails independently with probability 1 − r^(1/L). It returns
// the missing bus indices; draws are deterministic in seed.
func (s *System) DrawMissing(systemReliability float64, seed int64) ([]int, error) {
	rel, err := pmunet.FromSystemReliability(systemReliability, s.g.N())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	mask := s.nw.SampleMask(rel, rng)
	var out []int
	for i, missing := range mask {
		if missing {
			out = append(out, i)
		}
	}
	return out, nil
}

// WithMissing returns a copy of the sample with the given bus indices
// marked missing — convenient for building unreliable-data scenarios.
// Indices already marked missing are preserved, first-appearance order
// is kept, and duplicates collapse to a single entry.
func (smp Sample) WithMissing(buses ...int) Sample {
	out := Sample{Vm: smp.Vm, Va: smp.Va}
	seen := make(map[int]bool, len(smp.Missing)+len(buses))
	for _, set := range [][]int{smp.Missing, buses} {
		for _, b := range set {
			if !seen[b] {
				seen[b] = true
				out.Missing = append(out.Missing, b)
			}
		}
	}
	return out
}

// Monitor wraps the online detection layer: feed samples as they arrive
// and receive debounced, confirmed outage events. Create one with
// System.NewMonitor. A Monitor is not safe for concurrent use; callers
// that share one across goroutines must serialise Ingest (the service
// layer does this per shard).
type Monitor struct {
	sys *System
	mon *stream.Monitor
}

// Event is a confirmed outage event from a Monitor.
type Event struct {
	// Seq is the 1-based index of the confirming sample.
	Seq int `json:"seq"`
	// Latency is the number of samples from onset to confirmation.
	Latency int `json:"latency"`
	// Lines is the identified outage set at confirmation time.
	Lines []Line `json:"lines,omitempty"`
}

// NewMonitor creates an online monitor over the trained detector.
// confirm is the number of consecutive positive samples needed before an
// event fires (default 3); cooldown suppresses duplicate events after a
// confirmation (default 10 samples).
func (s *System) NewMonitor(confirm, cooldown int) (*Monitor, error) {
	m, err := stream.NewMonitor(s.det, stream.Config{Confirm: confirm, Cooldown: cooldown})
	if err != nil {
		return nil, err
	}
	return &Monitor{sys: s, mon: m}, nil
}

// Ingest scores one sample; it returns a non-nil Event exactly when the
// sample confirms a new outage. Malformed samples fail with the same
// ErrBadSample errors Detect reports.
func (m *Monitor) Ingest(sample Sample) (*Event, error) {
	ds, err := m.sys.datasetSample(sample)
	if err != nil {
		return nil, err
	}
	ev, err := m.mon.Ingest(ds)
	if err != nil {
		return nil, err
	}
	if ev == nil {
		return nil, nil
	}
	out := &Event{Seq: ev.Seq, Latency: ev.Latency()}
	for _, e := range ev.Lines {
		out.Lines = append(out.Lines, m.sys.lineAt(e))
	}
	return out, nil
}

// Seq returns the number of samples ingested so far.
func (m *Monitor) Seq() int { return m.mon.Seq() }

// Reset clears the monitor's streak and cooldown state.
func (m *Monitor) Reset() { m.mon.Reset() }
