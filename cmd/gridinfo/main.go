// Command gridinfo inspects a built-in power-system test case: buses,
// lines, PDC clusters, and which single-line outages form valid
// detection scenarios (removal neither islands the grid nor diverges
// the power flow).
//
// Usage:
//
//	gridinfo [-clusters N] [-lines] <case>
//	gridinfo -list
package main

import (
	"flag"
	"fmt"
	"os"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/powerflow"
)

func main() {
	list := flag.Bool("list", false, "list available cases and exit")
	clusters := flag.Int("clusters", 0, "PDC cluster count (default max(3, N/10))")
	showLines := flag.Bool("lines", false, "print every line with its outage validity")
	exportCDF := flag.String("export-cdf", "", "write the system as an IEEE Common Data Format file and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: gridinfo [-clusters N] [-lines] <case-name | file.cdf>\n")
		fmt.Fprintf(os.Stderr, "       gridinfo -list\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, name := range cases.Names() {
			fmt.Println(name)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}
	if *exportCDF != "" {
		if err := export(flag.Arg(0), *exportCDF); err != nil {
			fmt.Fprintln(os.Stderr, "gridinfo:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(flag.Arg(0), *clusters, *showLines); err != nil {
		fmt.Fprintln(os.Stderr, "gridinfo:", err)
		os.Exit(1)
	}
}

// export writes the named system as CDF text.
func export(name, path string) error {
	g, err := loadGrid(name)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := cases.WriteCDF(f, g); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "gridinfo: wrote %s (%d buses, %d lines) to %s\n", g.Name, g.N(), g.E(), path)
	return nil
}

func run(name string, clusters int, showLines bool) error {
	g, err := loadGrid(name)
	if err != nil {
		return err
	}
	if clusters <= 0 {
		clusters = g.N() / 10
		if clusters < 3 {
			clusters = 3
		}
	}
	nw, err := pmunet.Build(g, clusters)
	if err != nil {
		return err
	}
	sol, err := powerflow.SolveAC(g, powerflow.Options{})
	if err != nil {
		return fmt.Errorf("base power flow: %w", err)
	}

	var gens, loads int
	for i := range g.Buses {
		if g.Buses[i].Type != grid.PQ {
			gens++
		}
		if g.Buses[i].Pd > 0 {
			loads++
		}
	}
	valid := 0
	for e := 0; e < g.E(); e++ {
		if g.ConnectedWithout(grid.Line(e)) {
			valid++
		}
	}

	fmt.Printf("system        %s\n", g.Name)
	fmt.Printf("buses         %d (%d generator/slack, %d load)\n", g.N(), gens, loads)
	fmt.Printf("lines         %d (%d keep connectivity when removed)\n", g.E(), valid)
	fmt.Printf("total load    %.1f MW\n", g.TotalLoad()*g.BaseMVA)
	fmt.Printf("power flow    converged in %d iterations (mismatch %.2e)\n", sol.Iterations, sol.Mismatch)
	fmt.Printf("PDC clusters  %d\n", nw.NumClusters())
	for c, members := range nw.Clusters {
		fmt.Printf("  cluster %d: %d buses %v\n", c, len(members), oneBased(members))
	}
	if showLines {
		fmt.Println("lines (1-based endpoints):")
		for e := 0; e < g.E(); e++ {
			a, b := g.Endpoints(grid.Line(e))
			status := "ok"
			if !g.ConnectedWithout(grid.Line(e)) {
				status = "islands grid"
			}
			fmt.Printf("  %3d: %3d-%-3d x=%.4f  %s\n", e, g.Buses[a].ID, g.Buses[b].ID, g.Branches[e].X, status)
		}
	}
	return nil
}

// loadGrid resolves the argument: a registered case name, or a path to
// an IEEE Common Data Format file.
func loadGrid(name string) (*grid.Grid, error) {
	if g, err := cases.Load(name); err == nil {
		return g, nil
	}
	f, err := os.Open(name)
	if err != nil {
		return nil, fmt.Errorf("not a case name (%v) and not a readable file (%v)", cases.Names(), err)
	}
	defer f.Close()
	return cases.ParseCDF(f)
}

func oneBased(v []int) []int {
	out := make([]int, len(v))
	for i, x := range v {
		out[i] = x + 1
	}
	return out
}
