// Missing data: the paper's headline scenario (Fig. 7). The PMUs at the
// outage location stop reporting — killed by the very failure we need to
// find — and the detector must localise the outage from the remaining
// buses. A per-scenario classifier (MLR) collapses here; the subspace
// method barely notices.
package main

import (
	"fmt"
	"log"

	"pmuoutage"
)

func main() {
	sys, err := pmuoutage.NewSystem(pmuoutage.Options{
		Case:       "ieee30",
		TrainSteps: 40,
		Seed:       7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("IEEE 30-bus system: outage detection with data missing at the outage location")
	fmt.Println()

	hits, total := 0, 0
	for _, target := range sys.ValidLines() {
		line := sys.Lines()[target]
		samples, err := sys.SimulateOutage([]int{target}, 1)
		if err != nil {
			log.Fatal(err)
		}
		// The failure takes down both endpoint PMUs: their measurements
		// never reach the control center.
		smp := samples[0].WithMissing(line.FromBus-1, line.ToBus-1)
		rep, err := sys.Detect(smp)
		if err != nil {
			log.Fatal(err)
		}
		total++
		found := false
		for _, l := range rep.Lines {
			if l.Index == target {
				found = true
			}
		}
		if found {
			hits++
		} else {
			got := "nothing"
			if len(rep.Lines) > 0 {
				got = fmt.Sprintf("line %d-%d", rep.Lines[0].FromBus, rep.Lines[0].ToBus)
			} else if !rep.Outage {
				got = "no outage"
			}
			fmt.Printf("  missed line %2d (bus %2d - bus %2d): detected %s\n",
				target, line.FromBus, line.ToBus, got)
		}
	}
	fmt.Println()
	fmt.Printf("localised %d/%d outages with both endpoint PMUs dark (%.0f%%)\n",
		hits, total, 100*float64(hits)/float64(total))
	fmt.Println()
	fmt.Println("Compare: run `go run ./cmd/experiments fig7` for the full")
	fmt.Println("subspace-vs-MLR comparison across all four IEEE systems.")
}
