package router

import (
	"context"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"pmuoutage/api"
	"pmuoutage/client"
	"pmuoutage/internal/obs"
)

// Backend is one outaged process as the router tracks it: a raw-mode
// client (no internal retries — the router fails over instead), a
// local in-flight counter bounding concurrent proxied requests, and
// the health/depth state the prober maintains.
type Backend struct {
	url         string
	cli         *client.Client
	maxInFlight int64

	inflight   atomic.Int64
	healthy    atomic.Bool
	ejections  atomic.Uint64
	queueDepth atomic.Int64 // summed shard queue depth, last probe
	lastEject  atomic.Int64 // unix ms of the latest ejection; 0 = never

	// Registry cells the router wires in after the pool is built; nil
	// (a pool used without a router) records nothing.
	ejectProxy *obs.Counter // ejections from data-plane faults
	ejectProbe *obs.Counter // ejections from failed health probes
	readmits   *obs.Counter // recoveries back to healthy

	mu      sync.Mutex
	lastErr string
	shards  []api.ShardStatus

	// Prober-goroutine state: readmission backoff after ejection.
	backoff   time.Duration
	nextProbe time.Time
}

func newBackend(url string, maxInFlight int64, hc *http.Client) (*Backend, error) {
	cli, err := client.New(client.Config{BaseURL: url, MaxRetries: -1, HTTPClient: hc})
	if err != nil {
		return nil, err
	}
	b := &Backend{url: cli.BaseURL(), cli: cli, maxInFlight: maxInFlight}
	// Optimistic admission: the backend counts as healthy until the
	// first probe or proxy attempt says otherwise, so the router can
	// serve the moment it starts.
	b.healthy.Store(true)
	return b, nil
}

// markFault records a data-plane failure and ejects the backend
// immediately — the prober readmits it once /healthz answers again.
func (b *Backend) markFault(err error) {
	b.setErr(err.Error())
	if b.healthy.CompareAndSwap(true, false) {
		b.ejections.Add(1)
		b.ejectProxy.Inc()
		b.lastEject.Store(time.Now().UnixMilli())
	}
}

func (b *Backend) setErr(msg string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = msg
}

// setServing records a successful probe's view of the backend.
func (b *Backend) setServing(shards []api.ShardStatus) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lastErr = ""
	b.shards = shards
}

// snapshot reads the probe-maintained state.
func (b *Backend) snapshot() (lastErr string, shards []api.ShardStatus) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.lastErr, b.shards
}

// URL returns the backend's base URL.
func (b *Backend) URL() string { return b.url }

// Client returns the backend's raw-mode client (control-plane calls:
// reload, promote).
func (b *Backend) Client() *client.Client { return b.cli }

// Status snapshots the backend for GET /v1/backends.
func (b *Backend) Status() api.BackendStatus {
	lastErr, shards := b.snapshot()
	return api.BackendStatus{
		URL:        b.url,
		Healthy:    b.healthy.Load(),
		Ejections:  b.ejections.Load(),
		InFlight:   int(b.inflight.Load()),
		QueueDepth: int(b.queueDepth.Load()),
		LastError:  lastErr,
		Shards:     shards,
	}
}

// Pool is one set of interchangeable backends (the primary fleet or
// the canary fleet) with health-aware least-loaded selection.
type Pool struct {
	name     string
	backends []*Backend
}

// NewPool builds a pool over the given backend base URLs. maxInFlight
// bounds concurrent proxied requests per backend (≤0: 256). hc
// overrides the HTTP transport (nil: http.DefaultClient).
func NewPool(name string, urls []string, maxInFlight int, hc *http.Client) (*Pool, error) {
	if maxInFlight <= 0 {
		maxInFlight = 256
	}
	p := &Pool{name: name}
	for _, u := range urls {
		b, err := newBackend(u, int64(maxInFlight), hc)
		if err != nil {
			return nil, err
		}
		p.backends = append(p.backends, b)
	}
	return p, nil
}

// Backends returns the pool's members in configuration order.
func (p *Pool) Backends() []*Backend {
	if p == nil {
		return nil
	}
	return p.backends
}

// Statuses snapshots every backend.
func (p *Pool) Statuses() []api.BackendStatus {
	if p == nil {
		return nil
	}
	out := make([]api.BackendStatus, len(p.backends))
	for i, b := range p.backends {
		out[i] = b.Status()
	}
	return out
}

// acquire picks the least-loaded backend not in tried, reserves an
// in-flight slot on it, and returns a release func. The load key is
// the router's own in-flight count; ties break on the backend's probed
// queue depth, then configuration order. When desperate, ejected
// backends are admissible too — the last-resort pass a caller makes
// once every healthy member has failed it, so an over-eager ejection
// (a slow probe, not a dead process) cannot black-hole traffic. ok is
// false when no admissible backend remains.
func (p *Pool) acquire(tried map[*Backend]bool, desperate bool) (b *Backend, release func(), ok bool) {
	if p == nil {
		return nil, nil, false
	}
	for {
		var best *Backend
		for _, c := range p.backends {
			if tried[c] || (!desperate && !c.healthy.Load()) || c.inflight.Load() >= c.maxInFlight {
				continue
			}
			if best == nil || lessLoaded(c, best) {
				best = c
			}
		}
		if best == nil {
			return nil, nil, false
		}
		// Reserve; the count may have raced past the bound between the
		// scan and the increment, in which case undo and rescan.
		if n := best.inflight.Add(1); n > best.maxInFlight {
			best.inflight.Add(-1)
			tried[best] = true // full this instant; skip it this pass
			continue
		}
		return best, func() { best.inflight.Add(-1) }, true
	}
}

func lessLoaded(a, b *Backend) bool {
	ai, bi := a.inflight.Load(), b.inflight.Load()
	if ai != bi {
		return ai < bi
	}
	return a.queueDepth.Load() < b.queueDepth.Load()
}

// probe refreshes one backend's health and depth state. Healthy
// backends are probed every tick; ejected ones wait out an exponential
// readmission backoff (base→32× base) so a dead process is not
// hammered.
func (p *Pool) probe(ctx context.Context, b *Backend, now time.Time, base time.Duration) {
	if !b.healthy.Load() && now.Before(b.nextProbe) {
		return
	}
	err := b.cli.Health(ctx)
	var shards []api.ShardStatus
	if err == nil {
		shards, err = b.cli.Shards(ctx)
	}
	if err != nil {
		b.setErr(err.Error())
		if b.healthy.CompareAndSwap(true, false) {
			b.ejections.Add(1)
			b.ejectProbe.Inc()
			b.lastEject.Store(now.UnixMilli())
			b.backoff = 0
		}
		if b.backoff < base {
			b.backoff = base
		} else if b.backoff < 32*base {
			b.backoff *= 2
		}
		b.nextProbe = now.Add(b.backoff)
		return
	}
	depth := 0
	for _, st := range shards {
		depth += st.QueueDepth
	}
	b.queueDepth.Store(int64(depth))
	b.setServing(shards)
	b.backoff = 0
	if !b.healthy.Swap(true) {
		b.readmits.Inc()
	}
}
