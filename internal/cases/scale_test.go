package cases

import (
	"strings"
	"testing"

	"pmuoutage/internal/powerflow"
)

// TestChordGuardTrips: asking for the complete graph on 200 buses makes
// rejection sampling need ~E·ln E ≈ 197k draws — past the 100k guard —
// so the builder must refuse with an explicit error instead of looping
// forever or returning an under-connected grid.
func TestChordGuardTrips(t *testing.T) {
	maxBr := 200 * 199 / 2
	_, err := Synthetic(SynthConfig{
		Name: "dense200", Buses: 200, Branches: maxBr,
		Regions: 1, Gens: 4, LoadMW: 100, Seed: 1,
	})
	if err == nil {
		t.Fatal("complete-graph request built without tripping the chord guard")
	}
	if !strings.Contains(err.Error(), "chord guard tripped") {
		t.Fatalf("wrong error for guard trip: %v", err)
	}
}

// TestSynth300 pins the 300-bus scale grid: size, registry access,
// clone isolation, and a warm-start solve on the sparse path (300 ≥
// powerflow.SparseBusThreshold, so the auto dispatch goes sparse).
// Skipped under the race detector like TestSynth1000: the builder's
// feasibility loop is all tight numeric kernels, and instrumentation
// stretches the ~3 s build past the race suite's budget. `make
// smoke-scale` covers synth300 end to end without instrumentation.
func TestSynth300(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping 300-bus build under the race detector")
	}
	g := Synth300()
	if g.N() != 300 || g.E() != 475 {
		t.Fatalf("synth300: %d buses / %d branches, want 300 / 475", g.N(), g.E())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load("synth300")
	if err != nil {
		t.Fatal(err)
	}
	// The builder caches and clones; mutating one copy must not leak.
	loaded.Buses[0].Vm = 99
	if again := Synth300(); again.Buses[0].Vm == 99 {
		t.Fatal("Synth300 returned a shared grid; clones must be independent")
	}
	sol, err := powerflow.SolveAC(g, powerflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Mismatch >= 1e-8 {
		t.Fatalf("warm-start mismatch %v not below tolerance", sol.Mismatch)
	}
	for i, vm := range sol.Vm {
		if vm < 0.93 {
			t.Fatalf("bus %d voltage %.3f below the builder's 0.93 floor", i, vm)
		}
	}
}

// TestSynth1000 exercises the scaling target end to end. Skipped under
// the race detector and -short: the instrumented build takes minutes
// for identical numerics.
func TestSynth1000(t *testing.T) {
	if raceEnabled {
		t.Skip("skipping 1000-bus build under the race detector")
	}
	if testing.Short() {
		t.Skip("skipping 1000-bus build in short mode")
	}
	g := Synth1000()
	if g.N() != 1000 || g.E() != 1580 {
		t.Fatalf("synth1000: %d buses / %d branches, want 1000 / 1580", g.N(), g.E())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	sol, err := powerflow.SolveAC(g, powerflow.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Mismatch >= 1e-8 {
		t.Fatalf("warm-start mismatch %v not below tolerance", sol.Mismatch)
	}
}
