package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestQRReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(6)
		m := n + rng.Intn(6)
		a := randDense(rng, m, n)
		qr, err := FactorQR(a)
		if err != nil {
			return false
		}
		return qr.Q().Mul(qr.R()).Equalf(a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQROrthonormalQ(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	a := randDense(rng, 9, 4)
	qr, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	if !isOrthonormalCols(qr.Q(), 1e-10) {
		t.Fatal("Q columns not orthonormal")
	}
}

func TestQRUpperTriangularR(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	a := randDense(rng, 7, 5)
	qr, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	r := qr.R()
	for i := 1; i < 5; i++ {
		for j := 0; j < i; j++ {
			if r.At(i, j) != 0 {
				t.Fatalf("R[%d,%d] = %v, want 0", i, j, r.At(i, j))
			}
		}
	}
}

func TestQRWideRejected(t *testing.T) {
	if _, err := FactorQR(NewDense(2, 5)); err == nil {
		t.Fatal("expected error for wide matrix")
	}
}

func TestQRLeastSquares(t *testing.T) {
	// Overdetermined system with known exact solution plus orthogonal
	// residual: fit y = 2x + 1 through exact points.
	xs := []float64{0, 1, 2, 3, 4}
	a := NewDense(len(xs), 2)
	b := make([]float64, len(xs))
	for i, x := range xs {
		a.Set(i, 0, x)
		a.Set(i, 1, 1)
		b[i] = 2*x + 1
	}
	qr, err := FactorQR(a)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := qr.SolveLeastSquares(b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(sol[0]-2) > 1e-10 || math.Abs(sol[1]-1) > 1e-10 {
		t.Fatalf("least squares = %v, want [2 1]", sol)
	}
}

func TestQRLeastSquaresResidualOrthogonal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, n := 8, 3
		a := randDense(rng, m, n)
		b := make([]float64, m)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		qr, err := FactorQR(a)
		if err != nil {
			return false
		}
		x, err := qr.SolveLeastSquares(b)
		if err != nil {
			return false
		}
		// Residual must be orthogonal to the column space.
		r := Sub(b, a.MulVec(x))
		at := a.T()
		for i := 0; i < n; i++ {
			if math.Abs(Dot(at.Row(i), r)) > 1e-8 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestOrthonormalizeBasis(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	a := randDense(rng, 8, 4)
	q := Orthonormalize(a)
	if q.Cols() != 4 {
		t.Fatalf("Orthonormalize dropped independent columns: %d", q.Cols())
	}
	if !isOrthonormalCols(q, 1e-10) {
		t.Fatal("result not orthonormal")
	}
}

func TestOrthonormalizeDropsDependent(t *testing.T) {
	a := NewDense(4, 3)
	v := []float64{1, 2, 3, 4}
	a.SetCol(0, v)
	a.SetCol(1, ScaleVec(2, v)) // dependent
	a.SetCol(2, []float64{0, 1, 0, 0})
	q := Orthonormalize(a)
	if q.Cols() != 2 {
		t.Fatalf("got %d basis vectors, want 2", q.Cols())
	}
}

func TestOrthonormalizeSpanPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	a := randDense(rng, 6, 3)
	q := Orthonormalize(a)
	// Every original column must be reproduced by projection onto q.
	for j := 0; j < a.Cols(); j++ {
		c := a.Col(j)
		proj := make([]float64, len(c))
		for k := 0; k < q.Cols(); k++ {
			u := q.Col(k)
			alpha := Dot(u, c)
			for i := range proj {
				proj[i] += alpha * u[i]
			}
		}
		if Norm2(Sub(c, proj)) > 1e-9 {
			t.Fatalf("column %d not in span of basis", j)
		}
	}
}
