// Package errcheck is golden-test input for the errcheck analyzer.
package errcheck

import (
	"encoding/json"
	"fmt"
	"os"
)

func apply() error { return nil }

func drops(f *os.File, data []byte) {
	apply()                   // want `error result of errcheck.apply is dropped`
	os.Remove("stale")        // want `error result of os.Remove is dropped`
	f.Close()                 // want `error result of File.Close is dropped`
	json.Unmarshal(data, nil) // want `error result of json.Unmarshal is dropped`
	fmt.Println("fmt is exempt by design; CLI output noise would drown real findings")
	_ = apply() // explicit drop is visible to reviewers: not a finding
	defer f.Close()
	if err := apply(); err != nil {
		_ = err
	}
}
