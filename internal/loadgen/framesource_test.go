package loadgen

import (
	"testing"

	"pmuoutage/internal/wire"
)

// TestFrameSourceRoundTrip: every emitted frame decodes back to the
// vectors Sample reports, with the missing-bus bitmap landing exactly on
// the missEvery cadence.
func TestFrameSourceRoundTrip(t *testing.T) {
	const n, missEvery = 14, 3
	fs, err := NewFrameSource(n, 96, 42, missEvery)
	if err != nil {
		t.Fatal(err)
	}
	defer fs.Close()
	f := wire.GetFrame()
	defer wire.PutFrame(f)
	for step := 1; step <= 20; step++ {
		enc, err := fs.Next()
		if err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		used, err := wire.DecodeFrame(enc, f)
		if err != nil {
			t.Fatalf("step %d: emitted frame does not decode: %v", step, err)
		}
		if used != len(enc) {
			t.Fatalf("step %d: decode consumed %d of %d bytes", step, used, len(enc))
		}
		if f.Seq != uint32(step) || f.Seq != fs.Seq() {
			t.Fatalf("step %d: frame seq %d (source reports %d)", step, f.Seq, fs.Seq())
		}
		vm, va, missing := fs.Sample()
		if f.N() != n || len(vm) != n || len(va) != n {
			t.Fatalf("step %d: bus counts diverge: frame %d, vm %d, va %d", step, f.N(), len(vm), len(va))
		}
		for i := 0; i < n; i++ {
			if f.Vm[i] != vm[i] || f.Va[i] != va[i] {
				t.Fatalf("step %d bus %d: decoded (%v,%v) != sample (%v,%v)",
					step, i, f.Vm[i], f.Va[i], vm[i], va[i])
			}
		}
		wantMiss := step%missEvery == 0
		if gotMiss := f.IsMissing(0); gotMiss != wantMiss {
			t.Fatalf("step %d: bus 0 missing = %v, want %v", step, gotMiss, wantMiss)
		}
		if wantMiss != (len(missing) == 1 && missing[0] == 0) {
			t.Fatalf("step %d: Sample missing set %v disagrees with cadence", step, missing)
		}
		for i := 1; i < n; i++ {
			if f.IsMissing(i) {
				t.Fatalf("step %d: unexpected missing bus %d", step, i)
			}
		}
	}
}

// TestFrameSourceDeterminism: two sources with one seed emit identical
// byte streams — benchmark runs are reproducible.
func TestFrameSourceDeterminism(t *testing.T) {
	a, err := NewFrameSource(5, 24, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := NewFrameSource(5, 24, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()
	for step := 0; step < 10; step++ {
		ea, err := a.Next()
		if err != nil {
			t.Fatal(err)
		}
		eb, err := b.Next()
		if err != nil {
			t.Fatal(err)
		}
		if string(ea) != string(eb) {
			t.Fatalf("step %d: same seed, different frames", step)
		}
	}
}

func TestFrameSourceRejectsBadConfig(t *testing.T) {
	if _, err := NewFrameSource(0, 96, 1, 0); err == nil {
		t.Fatal("zero buses accepted")
	}
	if _, err := NewFrameSource(3, 96, 1, -1); err == nil {
		t.Fatal("negative missEvery accepted")
	}
}
