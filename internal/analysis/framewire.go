package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strconv"
	"strings"
)

// FrameWire guards the binary wire codec's frame structs (DESIGN.md
// "Streaming ingest"): a struct annotated //gridlint:wireframe is
// encoded field-by-field in declaration order, so its layout IS the
// wire format. The analyzer checks the whole annotated closure:
//
//	//gridlint:wireframe
//	type Frame struct {
//		Seq uint32 `wire:"0"`
//		...
//	}
//
// Every field must be a fixed-width scalar (sized integer or float),
// a flat slice/array of one, or another wireframe-annotated struct in
// the same package; platform-width ints, strings, bools, maps, nested
// slices, pointers, and interfaces have no defined wire encoding and
// are flagged. Each field must carry a wire:"N" tag equal to its
// declaration index — the tag makes reorderings show up as a diff on
// the line being moved, so a refactor cannot silently renumber the
// format that deployed devices speak.
var FrameWire = &Analyzer{
	Name: "framewire",
	Doc:  "wireframe-annotated structs must keep fixed-width fields and declaration-order wire tags",
	Run:  runFrameWire,
}

// WireframePrefix marks a struct as a binary wire frame.
const WireframePrefix = "//gridlint:wireframe"

func hasWireframe(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, WireframePrefix) {
			return true
		}
	}
	return false
}

func runFrameWire(pass *Pass) error {
	specs := wireframeSpecs(pass)
	annotated := map[string]bool{}
	for _, ts := range specs {
		annotated[ts.Name.Name] = true
	}
	for _, ts := range specs {
		obj, ok := pass.Info.Defs[ts.Name].(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := obj.Type().Underlying().(*types.Struct)
		if !ok {
			pass.Report(ts.Pos(), "type %s is marked wireframe but is not a struct", ts.Name.Name)
			continue
		}
		checkWireStruct(pass, ts.Name.Name, st, annotated)
	}
	return nil
}

// wireframeSpecs collects the annotated type specs in declaration
// order. The directive may sit on the type group or the spec itself.
func wireframeSpecs(pass *Pass) []*ast.TypeSpec {
	var out []*ast.TypeSpec
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			groupMarked := hasWireframe(gd.Doc)
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if groupMarked || hasWireframe(ts.Doc) {
					out = append(out, ts)
				}
			}
		}
	}
	return out
}

func checkWireStruct(pass *Pass, name string, st *types.Struct, annotated map[string]bool) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if f.Embedded() {
			pass.Report(f.Pos(), "wireframe struct %s embeds %s; embedded fields hide the wire layout — declare explicit fields", name, f.Name())
			continue
		}
		want := strconv.Itoa(i)
		tag, ok := reflect.StructTag(st.Tag(i)).Lookup("wire")
		if !ok {
			pass.Report(f.Pos(), "wireframe field %s.%s has no wire order tag; declared order is wire order — tag it wire:%q", name, f.Name(), want)
		} else if tag != want {
			pass.Report(f.Pos(), "wireframe field %s.%s has wire tag %q but is declared at position %s; declared order is wire order", name, f.Name(), tag, want)
		}
		checkWireType(pass, name, f, f.Type(), annotated, false)
	}
}

// checkWireType verifies one field type encodes to a fixed, portable
// layout. nested marks types already inside a slice or array, where a
// further slice would make the element size variable.
func checkWireType(pass *Pass, structName string, f *types.Var, t types.Type, annotated map[string]bool, nested bool) {
	switch t := t.(type) {
	case *types.Basic:
		switch t.Kind() {
		case types.Int8, types.Int16, types.Int32, types.Int64,
			types.Uint8, types.Uint16, types.Uint32, types.Uint64,
			types.Float32, types.Float64:
		default:
			pass.Report(f.Pos(), "wireframe field %s.%s has type %s with no fixed wire width; use a sized integer or float", structName, f.Name(), t.String())
		}
	case *types.Slice:
		if nested {
			pass.Report(f.Pos(), "wireframe field %s.%s nests a slice inside %s; wire payloads are flat vectors of fixed-width scalars", structName, f.Name(), f.Type().String())
			return
		}
		checkWireType(pass, structName, f, t.Elem(), annotated, true)
	case *types.Array:
		checkWireType(pass, structName, f, t.Elem(), annotated, true)
	case *types.Named:
		if _, isStruct := t.Underlying().(*types.Struct); isStruct {
			if t.Obj().Pkg() != pass.Pkg || !annotated[t.Obj().Name()] {
				pass.Report(f.Pos(), "wireframe field %s.%s has struct type %s that is not wireframe-annotated in this package; the closure must be checkable end to end", structName, f.Name(), t.Obj().Name())
			}
			return
		}
		checkWireType(pass, structName, f, t.Underlying(), annotated, nested)
	case *types.Map:
		pass.Report(f.Pos(), "wireframe field %s.%s has map type %s, which has no defined wire encoding", structName, f.Name(), t.String())
	case *types.Interface:
		pass.Report(f.Pos(), "wireframe field %s.%s has interface type; wire frames carry concrete fixed-width data only", structName, f.Name())
	case *types.Pointer:
		pass.Report(f.Pos(), "wireframe field %s.%s has pointer type %s; wire frames are value layouts", structName, f.Name(), t.String())
	default:
		pass.Report(f.Pos(), "wireframe field %s.%s has type %s, which cannot be encoded on the wire", structName, f.Name(), t.String())
	}
}
