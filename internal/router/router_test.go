package router

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

// stubBackend mimics outaged's HTTP surface with a canned detect
// answer, so router behavior is tested without training models.
type stubBackend struct {
	ts      *httptest.Server
	detects atomic.Uint64
	reply   func() (int, []byte) // nil: the default healthy answer

	mu          sync.Mutex
	reloads     []api.ReloadRequest // every /v1/reload body, in order
	traceparent string              // Traceparent header of the last detect
}

// reloadLog snapshots the reload requests the backend has served.
func (b *stubBackend) reloadLog() []api.ReloadRequest {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]api.ReloadRequest(nil), b.reloads...)
}

// stubReports is the canned detect payload every healthy stub serves.
func stubReports(energy float64) []byte {
	body, err := json.Marshal(api.DetectResponse{
		Shard: "east",
		Reports: []*pmuoutage.Report{{
			Outage:          true,
			Lines:           []pmuoutage.Line{{Index: 3, FromBus: 1, ToBus: 4}},
			DeviationEnergy: energy,
		}},
	})
	if err != nil {
		panic(err)
	}
	return body
}

func newStubBackend(t *testing.T, reply func() (int, []byte)) *stubBackend {
	t.Helper()
	b := &stubBackend{reply: reply}
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode([]api.ShardStatus{{Name: "east", State: "ready", QueueDepth: 0}})
	})
	mux.HandleFunc("POST /v1/detect", func(w http.ResponseWriter, r *http.Request) {
		b.detects.Add(1)
		b.mu.Lock()
		b.traceparent = r.Header.Get(obs.TraceParentHeader)
		b.mu.Unlock()
		status, body := http.StatusOK, stubReports(1.5)
		if b.reply != nil {
			status, body = b.reply()
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(body)
	})
	mux.HandleFunc("POST /v1/reload", func(w http.ResponseWriter, r *http.Request) {
		var rr api.ReloadRequest
		if err := json.NewDecoder(r.Body).Decode(&rr); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		b.mu.Lock()
		b.reloads = append(b.reloads, rr)
		b.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(api.ReloadResult{Shard: rr.Shard, Generation: 2, Model: rr.Fingerprint})
	})
	mux.HandleFunc("POST /v1/ingest", func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]string{
			"query": r.URL.RawQuery,
			"ct":    r.Header.Get("Content-Type"),
			"len":   string(rune('0' + len(body)%10)),
		})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, _ *http.Request) {
		n := b.detects.Load()
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(map[string]api.ShardSnapshot{"east": {
			Requests: n,
			Samples:  n,
			Stages: map[string]api.Hist{"detect": {
				Bounds: []float64{0.001, 0.01},
				Counts: []uint64{n, n},
				Count:  n,
				Sum:    float64(n) * 0.0005,
			}},
		}})
	})
	// The backend's half of a distributed trace: one root span whose
	// parent is whatever span ID the router's Traceparent named on the
	// last detect — the shape a real outaged process retains.
	mux.HandleFunc("GET /debug/traces", func(w http.ResponseWriter, r *http.Request) {
		b.mu.Lock()
		tp := b.traceparent
		b.mu.Unlock()
		tid, parent, ok := obs.ParseTraceParent(tp)
		if id := r.URL.Query().Get("id"); !ok || id != tid {
			w.WriteHeader(http.StatusNotFound)
			_, _ = w.Write([]byte(`{"code":"not_found","error":"trace not retained"}`))
			return
		}
		now := time.Now().UnixNano()
		_ = json.NewEncoder(w).Encode(api.Trace{
			TraceID: tid,
			Kept:    api.TraceKeptSampled,
			Spans: []api.TraceSpan{{
				ID:          "feedfacefeedface",
				Parent:      fmt.Sprintf("%016x", parent),
				Root:        true,
				Stage:       "http",
				StartUnixNS: now,
				DurationNS:  1000,
			}},
		})
	})
	b.ts = httptest.NewServer(mux)
	t.Cleanup(b.ts.Close)
	return b
}

func newTestRouter(t *testing.T, cfg Config) (*Router, *httptest.Server) {
	t.Helper()
	if cfg.ProbeEvery == 0 {
		cfg.ProbeEvery = 10 * time.Millisecond
	}
	rt, err := New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(rt.Close)
	ts := httptest.NewServer(rt.Routes())
	t.Cleanup(ts.Close)
	return rt, ts
}

func postDetect(t *testing.T, base string, headers map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, base+"/v1/detect",
		strings.NewReader(`{"shard":"east","samples":[{"vm":[1],"va":[0]}]}`))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range headers {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, body
}

// TestFailoverMidStream is the acceptance case: a fleet of two
// backends, one killed while detect traffic is in flight, and not one
// request is dropped — the router retries transport failures on the
// surviving backend.
func TestFailoverMidStream(t *testing.T) {
	b1 := newStubBackend(t, nil)
	b2 := newStubBackend(t, nil)
	_, ts := newTestRouter(t, Config{Backends: []string{b1.ts.URL, b2.ts.URL}})

	want := stubReports(1.5)
	wantLF := append(append([]byte(nil), want...), '\n')
	var wg sync.WaitGroup
	var failed atomic.Uint64
	start := make(chan struct{})
	for i := 0; i < 40; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			resp, body := postDetect(t, ts.URL, nil)
			if resp.StatusCode != http.StatusOK || !bytes.Equal(body, wantLF) && !bytes.Equal(body, want) {
				failed.Add(1)
			}
		}()
	}
	close(start)
	// Kill b1 abruptly while requests are in flight: open connections are
	// dropped, which the router must absorb as fail-over, not errors.
	b1.ts.CloseClientConnections()
	b1.ts.Close()
	wg.Wait()
	if n := failed.Load(); n != 0 {
		t.Fatalf("%d of 40 in-flight detects dropped during backend kill", n)
	}
	if b2.detects.Load() == 0 {
		t.Fatal("surviving backend served no traffic")
	}
}

// TestShadowByteIdentical pins the canary contract: with an identical
// candidate every shadow pair compares byte-identical, the scenario
// deltas are zero, and the report is promotable.
func TestShadowByteIdentical(t *testing.T) {
	prim := newStubBackend(t, nil)
	can := newStubBackend(t, nil)
	rt, ts := newTestRouter(t, Config{
		Backends:       []string{prim.ts.URL},
		CanaryBackends: []string{can.ts.URL},
		Candidate:      "cafe",
		CanaryPercent:  100,
		MinPairs:       5,
	})

	headers := map[string]string{
		api.EvalScenarioHeader: "outage-3",
		api.EvalTruthHeader:    "3",
	}
	for i := 0; i < 8; i++ {
		resp, _ := postDetect(t, ts.URL, headers)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("detect %d: HTTP %d", i, resp.StatusCode)
		}
	}
	rt.Differ().DrainShadow()
	rep := rt.Differ().Report()
	if rep.Pairs != 8 || rep.Identical != 8 || rep.Mismatched != 0 {
		t.Fatalf("pairs=%d identical=%d mismatched=%d, want 8/8/0", rep.Pairs, rep.Identical, rep.Mismatched)
	}
	if len(rep.Scenarios) != 1 {
		t.Fatalf("got %d scenarios, want 1", len(rep.Scenarios))
	}
	sd := rep.Scenarios[0]
	if sd.Scenario != "outage-3" || sd.DeltaIA != 0 || sd.DeltaFA != 0 {
		t.Fatalf("scenario diff = %+v, want zero deltas for outage-3", sd)
	}
	if sd.Primary.IA != 1 {
		t.Fatalf("primary IA = %v, want 1 (stub always identifies line 3)", sd.Primary.IA)
	}
	if !rep.Promotable {
		t.Fatalf("identical candidate not promotable: %v", rep.Reasons)
	}
	if can.detects.Load() != 8 {
		t.Fatalf("canary served %d detects, want 8 (full shadow)", can.detects.Load())
	}
}

// TestCanaryGatesBlockPromotion drives a canary that misidentifies the
// outage (IA regression) and asserts both the report verdict and the
// promote endpoint's 409 with the stable promotion_blocked code.
func TestCanaryGatesBlockPromotion(t *testing.T) {
	prim := newStubBackend(t, nil)
	wrong := func() (int, []byte) {
		body, _ := json.Marshal(api.DetectResponse{
			Shard:   "east",
			Reports: []*pmuoutage.Report{{Outage: true, Lines: []pmuoutage.Line{{Index: 9}}, DeviationEnergy: 1.5}},
		})
		return http.StatusOK, body
	}
	can := newStubBackend(t, wrong)
	_, ts := newTestRouter(t, Config{
		Backends:       []string{prim.ts.URL},
		CanaryBackends: []string{can.ts.URL},
		Candidate:      "cafe",
		CanaryPercent:  100,
		MinPairs:       1,
	})

	headers := map[string]string{api.EvalScenarioHeader: "outage-3", api.EvalTruthHeader: "3"}
	for i := 0; i < 4; i++ {
		postDetect(t, ts.URL, headers)
	}
	resp, err := http.Post(ts.URL+"/v1/canary/promote", "application/json", strings.NewReader(`{}`))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("promote of regressing canary: HTTP %d, want 409", resp.StatusCode)
	}
	body, _ := io.ReadAll(resp.Body)
	env, ok := api.DecodeError(body)
	if !ok || env.Code != api.CodePromotionBlocked {
		t.Fatalf("promote error code = %q (ok=%v), want %q", env.Code, ok, api.CodePromotionBlocked)
	}
}

// TestIngestProxyPreservesQuery pins the binary-ingest contract: the
// router forwards the query string and content type untouched.
func TestIngestProxyPreservesQuery(t *testing.T) {
	b := newStubBackend(t, nil)
	_, ts := newTestRouter(t, Config{Backends: []string{b.ts.URL}})

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/ingest?shard=east", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/x-pmu-frame")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var got map[string]string
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if got["query"] != "shard=east" {
		t.Fatalf("backend saw query %q, want shard=east", got["query"])
	}
	if got["ct"] != "application/x-pmu-frame" {
		t.Fatalf("backend saw content type %q", got["ct"])
	}
}

// TestErrorRelayedByteIdentical pins that a terminal backend error —
// status, code, body — reaches the caller exactly as the backend wrote
// it, so router and backend are indistinguishable to clients.
func TestErrorRelayedByteIdentical(t *testing.T) {
	errBody, _ := json.Marshal(api.ErrorEnvelope{Code: api.CodeUnknownShard, Error: "no shard west"})
	b := newStubBackend(t, func() (int, []byte) { return http.StatusNotFound, errBody })
	_, ts := newTestRouter(t, Config{Backends: []string{b.ts.URL}})

	resp, body := postDetect(t, ts.URL, nil)
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("HTTP %d, want 404 relayed", resp.StatusCode)
	}
	if !bytes.Equal(body, errBody) {
		t.Fatalf("relayed error body %q differs from backend's %q", body, errBody)
	}
	env, ok := api.DecodeError(body)
	if !ok || env.Code != api.CodeUnknownShard {
		t.Fatalf("relayed code = %q, want unknown_shard", env.Code)
	}
	// A terminal error must not trip fail-over accounting: one backend,
	// one attempt.
	if n := b.detects.Load(); n != 1 {
		t.Fatalf("backend saw %d detect calls, want 1 (no retry on terminal error)", n)
	}
}

// TestReloadFingerprintSingleCall pins the fleet-reload fan-out: a
// fingerprint reload reaches each backend as exactly one
// fingerprint-only call — never a preceding empty-path reload, which
// the backend would take as "retrain a fresh model" and transiently
// serve before the requested artifact — and a request naming both
// sources is rejected at the router without touching any backend.
func TestReloadFingerprintSingleCall(t *testing.T) {
	b := newStubBackend(t, nil)
	_, ts := newTestRouter(t, Config{Backends: []string{b.ts.URL}})

	resp, err := http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(`{"shard":"east","fingerprint":"cafe"}`))
	if err != nil {
		t.Fatal(err)
	}
	var out api.FleetReload
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Failed {
		t.Fatalf("fingerprint reload: HTTP %d failed=%v, want clean 200", resp.StatusCode, out.Failed)
	}
	calls := b.reloadLog()
	if len(calls) != 1 {
		t.Fatalf("backend saw %d reload calls, want exactly 1", len(calls))
	}
	if calls[0].Fingerprint != "cafe" || calls[0].Path != "" {
		t.Fatalf("backend saw reload %+v, want fingerprint-only", calls[0])
	}

	resp, err = http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(`{"shard":"east","path":"a.json","fingerprint":"cafe"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload with both sources: HTTP %d, want 400", resp.StatusCode)
	}
	if env, ok := api.DecodeError(body); !ok || env.Code != api.CodeBadRequest {
		t.Fatalf("reload with both sources: code %q, want bad_request", env.Code)
	}
	if n := len(b.reloadLog()); n != 1 {
		t.Fatalf("ambiguous reload reached the backend (%d calls)", n)
	}
}

// TestReloadPatchBroadcast pins the patch fan-out: a patch_path reload
// reaches each backend as exactly one patch-only call, and a request
// mixing a patch with a model source is rejected at the router.
func TestReloadPatchBroadcast(t *testing.T) {
	b1 := newStubBackend(t, nil)
	b2 := newStubBackend(t, nil)
	_, ts := newTestRouter(t, Config{Backends: []string{b1.ts.URL, b2.ts.URL}})

	resp, err := http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(`{"shard":"east","patch_path":"delta.patch.json"}`))
	if err != nil {
		t.Fatal(err)
	}
	var out api.FleetReload
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out.Failed {
		t.Fatalf("patch reload: HTTP %d failed=%v, want clean 200", resp.StatusCode, out.Failed)
	}
	if len(out.Results) != 2 {
		t.Fatalf("fleet reload returned %d results, want 2", len(out.Results))
	}
	for _, b := range []*stubBackend{b1, b2} {
		calls := b.reloadLog()
		if len(calls) != 1 {
			t.Fatalf("backend saw %d reload calls, want exactly 1", len(calls))
		}
		if calls[0].PatchPath != "delta.patch.json" || calls[0].Path != "" || calls[0].Fingerprint != "" {
			t.Fatalf("backend saw reload %+v, want patch-only", calls[0])
		}
	}

	resp, err = http.Post(ts.URL+"/v1/reload", "application/json",
		strings.NewReader(`{"shard":"east","patch_path":"delta.patch.json","fingerprint":"cafe"}`))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("reload mixing patch and fingerprint: HTTP %d, want 400", resp.StatusCode)
	}
	if env, ok := api.DecodeError(body); !ok || env.Code != api.CodeBadRequest {
		t.Fatalf("reload mixing patch and fingerprint: code %q, want bad_request", env.Code)
	}
	if n := len(b1.reloadLog()) + len(b2.reloadLog()); n != 2 {
		t.Fatalf("ambiguous reload reached a backend (%d total calls)", n)
	}
}

// TestPromotePartialFailureSurfaced pins that a promotion which cannot
// reach every backend is never a silent success: the response carries a
// top-level failed flag (200 while at least one backend took the
// model; 502 when none did), with the per-backend error embedded.
func TestPromotePartialFailureSurfaced(t *testing.T) {
	alive := newStubBackend(t, nil)
	dead := newStubBackend(t, nil)
	_, ts := newTestRouter(t, Config{Backends: []string{alive.ts.URL, dead.ts.URL}})
	dead.ts.CloseClientConnections()
	dead.ts.Close()

	promote := func(base string) (int, api.PromoteResponse) {
		t.Helper()
		resp, err := http.Post(base+"/v1/canary/promote", "application/json",
			strings.NewReader(`{"fingerprint":"cafe","shards":["east"],"force":true}`))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		var out api.PromoteResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, out
	}

	status, out := promote(ts.URL)
	if status != http.StatusOK {
		t.Fatalf("partial promotion: HTTP %d, want 200 (one backend succeeded)", status)
	}
	if !out.Failed {
		t.Fatal("partial promotion did not set the top-level failed flag")
	}
	var okResults, errResults int
	for _, br := range out.Results {
		switch {
		case br.Error != "":
			errResults++
		case len(br.Results) == 1 && br.Results[0].Model == "cafe":
			okResults++
		}
	}
	if okResults != 1 || errResults != 1 {
		t.Fatalf("results = %+v, want one reloaded backend and one errored", out.Results)
	}

	// With every backend unreachable the promotion answers non-200.
	_, tsAllDead := newTestRouter(t, Config{Backends: []string{dead.ts.URL}})
	status, out = promote(tsAllDead.URL)
	if status != http.StatusBadGateway || !out.Failed {
		t.Fatalf("all-dead promotion: HTTP %d failed=%v, want 502 with failed set", status, out.Failed)
	}
}

// TestShadowTimeoutUnwedgesDrain pins the shadow deadline: a canary
// backend that accepts the request and never answers must resolve as a
// canary error within Config.ShadowTimeout, not pin the shadow
// goroutine and wedge DrainShadow (report, promote, Close).
func TestShadowTimeoutUnwedgesDrain(t *testing.T) {
	prim := newStubBackend(t, nil)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode([]api.ShardStatus{{Name: "east", State: "ready"}})
	})
	// The handler hangs until the test ends (the server cannot observe
	// the client-side shadow-deadline abort while the request body sits
	// unread, so an explicit stop channel unblocks it for Close).
	stop := make(chan struct{})
	mux.HandleFunc("POST /v1/detect", func(w http.ResponseWriter, r *http.Request) {
		select {
		case <-r.Context().Done():
		case <-stop:
		}
	})
	hung := httptest.NewServer(mux)
	t.Cleanup(hung.Close)
	t.Cleanup(func() { close(stop) })

	rt, ts := newTestRouter(t, Config{
		Backends:       []string{prim.ts.URL},
		CanaryBackends: []string{hung.URL},
		Candidate:      "cafe",
		CanaryPercent:  100,
		ShadowTimeout:  50 * time.Millisecond,
	})
	resp, _ := postDetect(t, ts.URL, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("primary detect: HTTP %d", resp.StatusCode)
	}
	done := make(chan struct{})
	go func() {
		rt.Differ().DrainShadow()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("DrainShadow wedged on a hung canary backend")
	}
	if rep := rt.Differ().Report(); rep.CanaryErrors != 1 {
		t.Fatalf("canary errors = %d, want 1 (timed-out shadow copy)", rep.CanaryErrors)
	}
}

// endlessZeros is a body that never ends — the oversize-rejection probe.
type endlessZeros struct{}

func (endlessZeros) Read(p []byte) (int, error) {
	for i := range p {
		p[i] = 0
	}
	return len(p), nil
}

// TestOversizeBodyRejected pins that a body past the 64 MiB bound is
// rejected whole with the too_large code (413), never truncated and
// forwarded.
func TestOversizeBodyRejected(t *testing.T) {
	req := httptest.NewRequest(http.MethodPost, "/v1/detect", endlessZeros{})
	_, err := readBody(req)
	if !errors.Is(err, ErrBodyTooLarge) {
		t.Fatalf("readBody(oversized) = %v, want ErrBodyTooLarge", err)
	}
	if code := bodyCode(err); code != api.CodeTooLarge {
		t.Fatalf("bodyCode = %q, want too_large", code)
	}
}

// TestEjectionAndReadmission watches the prober's lifecycle: a backend
// that dies is ejected (healthz flips), and readmitted once it
// answers again.
func TestEjectionAndReadmission(t *testing.T) {
	mux := http.NewServeMux()
	var down atomic.Bool
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if down.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		w.WriteHeader(http.StatusOK)
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		_ = json.NewEncoder(w).Encode([]api.ShardStatus{})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)

	rt, _ := newTestRouter(t, Config{Backends: []string{ts.URL}, ProbeEvery: 5 * time.Millisecond})
	waitHealthy := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(3 * time.Second)
		for time.Now().Before(deadline) {
			if rt.primary.backends[0].healthy.Load() == want {
				return
			}
			time.Sleep(2 * time.Millisecond)
		}
		t.Fatalf("backend healthy != %v within deadline", want)
	}
	waitHealthy(true)
	down.Store(true)
	waitHealthy(false)
	if rt.primary.backends[0].ejections.Load() == 0 {
		t.Fatal("ejection not counted")
	}
	down.Store(false)
	waitHealthy(true)
}
