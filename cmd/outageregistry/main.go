// Command outageregistry serves the content-addressed model-artifact
// registry over HTTP.
//
// Artifacts are keyed by their hex SHA-256 content fingerprint; an
// artifact under a key can never change, so GETs carry an immutable
// Cache-Control and answer If-None-Match revalidations with 304 Not
// Modified. With -dir set, artifacts persist across restarts.
//
// Endpoints:
//
//	GET  /v1/models                 list artifacts, publish order
//	GET  /v1/models/{fingerprint}   the artifact; ETag = fingerprint
//	POST /v1/models                 publish an encoded artifact
//	GET  /healthz                   liveness
//
// Example:
//
//	outageregistry -addr :8090 -dir /var/lib/pmu/models
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"pmuoutage/internal/obs"
	"pmuoutage/internal/registry"
)

func main() {
	var (
		addr     = flag.String("addr", ":8090", "listen address")
		dir      = flag.String("dir", "", "artifact directory (empty: in-memory only)")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn, error")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := obs.NewTextLogger(os.Stderr, level)

	store, err := registry.NewStore(*dir)
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Addr: *addr, Handler: registry.NewServer(store, logger).Routes()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("outageregistry listening", "addr", *addr, "dir", *dir, "artifacts", store.Len())

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(sdCtx); err != nil {
		log.Fatal(fmt.Errorf("shutdown: %w", err))
	}
}
