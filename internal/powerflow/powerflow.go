// Package powerflow solves the steady-state AC power-flow problem with a
// Newton–Raphson iteration in polar form, plus a linear DC approximation.
// It substitutes for MATPOWER in the paper's data-generation pipeline:
// given a grid and a load/generation profile it produces the bus voltage
// phasors that play the role of PMU measurements.
package powerflow

import (
	"errors"
	"fmt"
	"math"
	"math/cmplx"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/mat"
)

// ErrNoConvergence is returned when Newton–Raphson fails to reach the
// mismatch tolerance within the iteration limit.
var ErrNoConvergence = errors.New("powerflow: Newton-Raphson did not converge")

// Options configures the AC solver.
type Options struct {
	Tol     float64 //gridlint:unit pu // max power mismatch in p.u.; default 1e-8
	MaxIter int     // iteration cap; default 30
	// FlatStart forces the initial guess to Vm=1, Va=0 instead of the
	// voltages stored in the grid (which allow warm starts).
	FlatStart bool
	// Solver selects the linear-algebra backend: SolverAuto (default)
	// dispatches on grid size — dense below SparseBusThreshold buses,
	// CSR operators with iterative solves at or above it.
	Solver Solver
}

func (o Options) withDefaults() Options {
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 30
	}
	return o
}

// Solution holds a converged power-flow state.
type Solution struct {
	Vm         []float64 //gridlint:unit pu // voltage magnitude per bus (p.u.)
	Va         []float64 //gridlint:unit rad // voltage angle per bus (radians)
	Iterations int
	Mismatch   float64 //gridlint:unit pu // final max power mismatch
}

// Phasor returns the complex voltage at bus i.
func (s *Solution) Phasor(i int) complex128 {
	return cmplx.Rect(s.Vm[i], s.Va[i])
}

// SolveAC runs Newton–Raphson on the grid's AC power-flow equations.
// Injections are taken from the grid's bus records: P_i = Pg_i - Pd_i,
// Q_i = Qg_i - Qd_i (per unit).
func SolveAC(g *grid.Grid, opts Options) (*Solution, error) {
	opts = opts.withDefaults()
	if opts.Solver.sparse(g.N()) {
		return solveACSparse(g, opts)
	}
	n := g.N()
	slack, err := g.SlackIndex()
	if err != nil {
		return nil, err
	}
	ybus := g.Ybus()
	gm := mat.NewDense(n, n) // conductance
	bm := mat.NewDense(n, n) // susceptance
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			y := ybus.At(i, j)
			gm.Set(i, j, real(y))
			bm.Set(i, j, imag(y))
		}
	}

	// State: angles for all non-slack buses, magnitudes for PQ buses.
	var pvpq, pq []int
	for i := 0; i < n; i++ {
		if i == slack {
			continue
		}
		if g.Buses[i].Type == PQint {
			pq = append(pq, i)
		}
		pvpq = append(pvpq, i)
	}

	vm := make([]float64, n)
	va := make([]float64, n)
	for i := 0; i < n; i++ {
		if opts.FlatStart {
			vm[i], va[i] = 1, 0
		} else {
			vm[i], va[i] = g.Buses[i].Vm, g.Buses[i].Va
			if vm[i] <= 0 {
				vm[i] = 1
			}
		}
		// PV and slack magnitudes are fixed at their set points.
		if g.Buses[i].Type != PQint {
			vm[i] = g.Buses[i].Vm
			if vm[i] <= 0 {
				vm[i] = 1
			}
		}
	}
	va[slack] = g.Buses[slack].Va

	pSched := make([]float64, n)
	qSched := make([]float64, n)
	for i := 0; i < n; i++ {
		pSched[i] = g.Buses[i].Pg - g.Buses[i].Pd
		qSched[i] = g.Buses[i].Qg - g.Buses[i].Qd
	}

	nb := len(pvpq)
	nq := len(pq)
	dim := nb + nq
	if dim == 0 {
		return &Solution{Vm: vm, Va: va}, nil
	}

	pcalc := make([]float64, n)
	qcalc := make([]float64, n)
	calc := func() {
		for i := 0; i < n; i++ {
			var pi, qi float64
			gr := gm.RawRow(i)
			br := bm.RawRow(i)
			for j := 0; j < n; j++ {
				if gr[j] == 0 && br[j] == 0 { //gridlint:ignore floatcmp structural sparsity skip: admittance entries are exactly zero off the graph
					continue
				}
				d := va[i] - va[j]
				c, s := math.Cos(d), math.Sin(d)
				pi += vm[j] * (gr[j]*c + br[j]*s)
				qi += vm[j] * (gr[j]*s - br[j]*c)
			}
			pcalc[i] = vm[i] * pi
			qcalc[i] = vm[i] * qi
		}
	}

	mismatch := func() ([]float64, float64) {
		f := make([]float64, dim)
		var mx float64
		for k, i := range pvpq {
			f[k] = pcalc[i] - pSched[i]
			if a := math.Abs(f[k]); a > mx {
				mx = a
			}
		}
		for k, i := range pq {
			f[nb+k] = qcalc[i] - qSched[i]
			if a := math.Abs(f[nb+k]); a > mx {
				mx = a
			}
		}
		return f, mx
	}

	var iter int
	for iter = 0; iter <= opts.MaxIter; iter++ {
		calc()
		f, mx := mismatch()
		if mx < opts.Tol {
			return &Solution{Vm: vm, Va: va, Iterations: iter, Mismatch: mx}, nil
		}
		if iter == opts.MaxIter {
			break
		}
		j := jacobian(n, gm, bm, vm, va, pcalc, qcalc, pvpq, pq)
		lu, err := mat.FactorLU(j)
		if err != nil {
			return nil, fmt.Errorf("powerflow: singular Jacobian at iteration %d: %w", iter, err)
		}
		dx, err := lu.Solve(f)
		if err != nil {
			return nil, fmt.Errorf("powerflow: Jacobian solve failed: %w", err)
		}
		for k, i := range pvpq {
			va[i] -= dx[k]
		}
		for k, i := range pq {
			vm[i] -= dx[nb+k]
			if vm[i] < 0.2 {
				vm[i] = 0.2 // keep the iteration away from voltage collapse
			}
		}
	}
	return nil, fmt.Errorf("%w after %d iterations", ErrNoConvergence, opts.MaxIter)
}

// PQint mirrors grid.PQ; aliased locally to keep call sites short.
const PQint = grid.PQ

// jacobian builds the polar Newton-Raphson Jacobian
//
//	[ dP/dVa  dP/dVm ]
//	[ dQ/dVa  dQ/dVm ]
//
// restricted to the free variables (angles of pvpq, magnitudes of pq).
//
//gridlint:unit vm pu
//gridlint:unit va rad
func jacobian(n int, gm, bm *mat.Dense, vm, va, pcalc, qcalc []float64, pvpq, pq []int) *mat.Dense {
	nb, nq := len(pvpq), len(pq)
	j := mat.NewDense(nb+nq, nb+nq)
	// Position lookups.
	posA := make([]int, n)
	posM := make([]int, n)
	for i := range posA {
		posA[i], posM[i] = -1, -1
	}
	for k, i := range pvpq {
		posA[i] = k
	}
	for k, i := range pq {
		posM[i] = nb + k
	}
	for _, i := range pvpq {
		ri := posA[i]
		gi := gm.RawRow(i)
		bi := bm.RawRow(i)
		for k := 0; k < n; k++ {
			if gi[k] == 0 && bi[k] == 0 && k != i { //gridlint:ignore floatcmp structural sparsity skip: admittance entries are exactly zero off the graph
				continue
			}
			d := va[i] - va[k]
			c, s := math.Cos(d), math.Sin(d)
			if k == i {
				// dP_i/dVa_i and dQ_i/dVa_i etc. use the standard
				// textbook identities in terms of P_calc and Q_calc.
				j.Set(ri, ri, -qcalc[i]-bi[i]*vm[i]*vm[i])
				if posM[i] >= 0 {
					j.Set(ri, posM[i], pcalc[i]/vm[i]+gi[i]*vm[i])
				}
				if qi := posM[i]; qi >= 0 {
					j.Set(qi, ri, pcalc[i]-gi[i]*vm[i]*vm[i])
					j.Set(qi, qi, qcalc[i]/vm[i]-bi[i]*vm[i])
				}
				continue
			}
			// Off-diagonal terms.
			vivk := vm[i] * vm[k]
			dpdva := vivk * (gi[k]*s - bi[k]*c)
			dqdva := -vivk * (gi[k]*c + bi[k]*s)
			dpdvm := vm[i] * (gi[k]*c + bi[k]*s)
			dqdvm := vm[i] * (gi[k]*s - bi[k]*c)
			if ck := posA[k]; ck >= 0 {
				j.Set(ri, ck, dpdva)
				if qi := posM[i]; qi >= 0 {
					j.Set(qi, ck, dqdva)
				}
			}
			if ck := posM[k]; ck >= 0 {
				j.Set(ri, ck, dpdvm)
				if qi := posM[i]; qi >= 0 {
					j.Set(qi, ck, dqdvm)
				}
			}
		}
	}
	return j
}

// SolveDC computes the linear DC power-flow angles: B' * theta = P,
// with the slack angle fixed at zero and magnitudes all 1. Used as the
// fast approximate fallback and by baseline studies. Grids at or above
// SparseBusThreshold buses solve on the sparse CG path; use
// SolveDCWith to force a backend.
func SolveDC(g *grid.Grid) (*Solution, error) {
	return SolveDCWith(g, SolverAuto)
}

// SolveDCWith is SolveDC with an explicit solver backend selection.
func SolveDCWith(g *grid.Grid, solver Solver) (*Solution, error) {
	if solver.sparse(g.N()) {
		return solveDCSparse(g)
	}
	n := g.N()
	slack, err := g.SlackIndex()
	if err != nil {
		return nil, err
	}
	lap := g.Laplacian()
	// Reduce out the slack row/column.
	idx := make([]int, 0, n-1)
	for i := 0; i < n; i++ {
		if i != slack {
			idx = append(idx, i)
		}
	}
	b := lap.SelectRows(idx).SelectCols(idx)
	p := make([]float64, len(idx))
	for k, i := range idx {
		p[k] = g.Buses[i].Pg - g.Buses[i].Pd
	}
	th, err := mat.Solve(b, p)
	if err != nil {
		return nil, fmt.Errorf("powerflow: DC solve failed (islanded grid?): %w", err)
	}
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := range vm {
		vm[i] = 1
	}
	for k, i := range idx {
		va[i] = th[k]
	}
	return &Solution{Vm: vm, Va: va, Iterations: 1}, nil
}

// Dispatch scales every generator's active output by the same factor so
// that total generation matches total load plus the given loss fraction.
// It returns a modified copy of the grid. The paper's data generator
// "adjusts power output accordingly" when loads vary; proportional
// re-dispatch is the standard way to do that.
func Dispatch(g *grid.Grid, lossFrac float64) *grid.Grid {
	ng := g.Clone()
	var totalLoad, totalGen float64
	for i := range ng.Buses {
		totalLoad += ng.Buses[i].Pd
		if ng.Buses[i].Type != grid.PQ {
			totalGen += ng.Buses[i].Pg
		}
	}
	if totalGen <= 0 {
		return ng
	}
	scale := totalLoad * (1 + lossFrac) / totalGen
	for i := range ng.Buses {
		if ng.Buses[i].Type != grid.PQ {
			ng.Buses[i].Pg *= scale
		}
	}
	return ng
}
