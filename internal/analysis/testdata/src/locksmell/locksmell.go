// Package locksmell is golden-test input for the locksmell analyzer.
package locksmell

import "sync"

type counter struct {
	mu sync.Mutex
	n  int
}

func byValue(c counter) int { // want `parameter c passes .*counter by value`
	return c.n
}

func (c counter) read() int { // want `receiver c passes .*counter by value`
	return c.n
}

func groupByValue(wg sync.WaitGroup) { // want `parameter wg passes sync.WaitGroup by value`
	wg.Wait()
}

func (c *counter) bad() int {
	c.mu.Lock() // want `c.mu.Lock\(\) is released by a plain c.mu.Unlock\(\)`
	n := c.n
	c.mu.Unlock()
	return n
}

func (c *counter) good() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}

func pointerParam(c *counter) int { // pointers share the lock: not a finding
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.n
}
