package httpserve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"path/filepath"
	"testing"

	"pmuoutage"
	"pmuoutage/api"
)

// postReload posts one reload body and decodes the response.
func postReload(t *testing.T, base string, req api.ReloadRequest) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/reload", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, buf.Bytes()
}

// TestReloadByPatch drives the incremental-update path over the wire:
// POST /v1/reload with patch_path swaps the shard onto the patched
// model, a second apply is refused with the patch_base code (the base
// is gone), and ambiguous or unreadable requests answer 400.
func TestReloadByPatch(t *testing.T) {
	m, err := pmuoutage.TrainModel(trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newModelServer(t, m, nil)

	baseSys, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pmuoutage.TrainModelPatch(m, pmuoutage.PatchSpec{Lines: baseSys.ValidLines()[:2], Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "delta.patch.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	status, body := postReload(t, ts.URL, api.ReloadRequest{Shard: "east", PatchPath: path})
	if status != http.StatusOK {
		t.Fatalf("patch reload: status %d, body %s", status, body)
	}
	var res api.ReloadResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatal(err)
	}
	if res.Model != p.ResultFingerprint() {
		t.Fatalf("shard serves %s after patch reload, want %s", res.Model, p.ResultFingerprint())
	}

	t.Run("base gone", func(t *testing.T) {
		status, body := postReload(t, ts.URL, api.ReloadRequest{Shard: "east", PatchPath: path})
		if status != http.StatusConflict {
			t.Fatalf("status %d, body %s", status, body)
		}
		if env, ok := api.DecodeError(body); !ok || env.Code != api.CodePatchBase {
			t.Fatalf("error envelope %s, want code %s", body, api.CodePatchBase)
		}
	})
	t.Run("ambiguous sources", func(t *testing.T) {
		status, body := postReload(t, ts.URL,
			api.ReloadRequest{Shard: "east", PatchPath: path, Path: "m.json"})
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, body %s", status, body)
		}
	})
	t.Run("missing file", func(t *testing.T) {
		status, body := postReload(t, ts.URL,
			api.ReloadRequest{Shard: "east", PatchPath: filepath.Join(t.TempDir(), "nope.json")})
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, body %s", status, body)
		}
	})
	t.Run("corrupt patch", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "bad.patch.json")
		if err := os.WriteFile(bad, []byte(`{"format_version":1}`), 0o600); err != nil {
			t.Fatal(err)
		}
		status, body := postReload(t, ts.URL, api.ReloadRequest{Shard: "east", PatchPath: bad})
		if status != http.StatusBadRequest {
			t.Fatalf("status %d, body %s", status, body)
		}
		if env, ok := api.DecodeError(body); !ok || env.Code != api.CodeBadPatch {
			t.Fatalf("error envelope %s, want code %s", body, api.CodeBadPatch)
		}
	})
}
