// Package grid models the transmission level of a power system as the
// graph P(N, E) of the paper: buses (power nodes) connected by branches
// (power lines), with the electrical parameters needed to build the bus
// admittance matrix Ybus and to run power flows.
package grid

import (
	"fmt"
	"math"

	"pmuoutage/internal/mat"
)

// BusType classifies a bus for power-flow purposes.
type BusType int

const (
	// PQ buses (loads) specify active and reactive power injections.
	PQ BusType = iota
	// PV buses (generators) specify active power and voltage magnitude.
	PV
	// Slack is the reference bus: fixed voltage magnitude and angle.
	Slack
)

// String returns the conventional short name of the bus type.
func (t BusType) String() string {
	switch t {
	case PQ:
		return "PQ"
	case PV:
		return "PV"
	case Slack:
		return "slack"
	default:
		return fmt.Sprintf("BusType(%d)", int(t))
	}
}

// Bus is one power node. Power values are in per-unit on the system MVA
// base; voltages are per-unit magnitudes and radian angles.
type Bus struct {
	ID   int     `json:"id"`   // external bus number (1-based in IEEE cases)
	Type BusType `json:"type"` // PQ, PV or slack
	Pd   float64 `json:"pd"`   //gridlint:unit pu // active demand (load)
	Qd   float64 `json:"qd"`   //gridlint:unit pu // reactive demand
	Pg   float64 `json:"pg"`   //gridlint:unit pu // active generation
	Qg   float64 `json:"qg"`   //gridlint:unit pu // reactive generation
	Gs   float64 `json:"gs"`   //gridlint:unit pu // shunt conductance
	Bs   float64 `json:"bs"`   //gridlint:unit pu // shunt susceptance
	Vm   float64 `json:"vm"`   //gridlint:unit pu // voltage magnitude set point / initial guess
	Va   float64 `json:"va"`   //gridlint:unit rad // voltage angle (radians) initial guess
}

// Branch is one power line (or transformer) between two buses, indexed by
// internal (0-based) bus positions.
type Branch struct {
	From   int     `json:"from"`   // internal bus index
	To     int     `json:"to"`     // internal bus index
	R      float64 `json:"r"`      //gridlint:unit pu // series resistance (p.u.)
	X      float64 `json:"x"`      //gridlint:unit pu // series reactance (p.u.)
	B      float64 `json:"b"`      //gridlint:unit pu // total line charging susceptance (p.u.)
	Tap    float64 `json:"tap"`    // off-nominal turns ratio; 0 or 1 means none
	Shift  float64 `json:"shift"`  //gridlint:unit rad // phase shift angle (radians)
	Status bool    `json:"status"` // in service?
}

// Admittance returns the series admittance of the branch.
func (br *Branch) Admittance() complex128 {
	d := br.R*br.R + br.X*br.X
	if d == 0 { //gridlint:ignore floatcmp zero-impedance sentinel from the case file; Validate rejects it for live grids
		return 0
	}
	return complex(br.R/d, -br.X/d)
}

// Grid is a complete power network description.
type Grid struct {
	Name     string   `json:"name"`
	BaseMVA  float64  `json:"base_mva"`
	Buses    []Bus    `json:"buses"`
	Branches []Branch `json:"branches"`
}

// Line identifies a power line e_{i,j} by its internal branch index.
// The paper's edge set E maps one-to-one onto Grid.Branches.
type Line int

// N returns the number of buses |N|.
func (g *Grid) N() int { return len(g.Buses) }

// E returns the number of branches |E|.
func (g *Grid) E() int { return len(g.Branches) }

// Clone returns a deep copy of the grid.
func (g *Grid) Clone() *Grid {
	ng := &Grid{Name: g.Name, BaseMVA: g.BaseMVA}
	ng.Buses = append([]Bus(nil), g.Buses...)
	ng.Branches = append([]Branch(nil), g.Branches...)
	return ng
}

// WithoutLine returns a copy of the grid with branch e switched out of
// service, modelling the outage P(N, E \ {e}).
func (g *Grid) WithoutLine(e Line) *Grid {
	if int(e) < 0 || int(e) >= len(g.Branches) {
		panic(fmt.Sprintf("grid: line %d out of range %d", e, len(g.Branches)))
	}
	ng := g.Clone()
	ng.Branches[e].Status = false
	return ng
}

// WithoutLines returns a copy with all listed branches out of service.
func (g *Grid) WithoutLines(es []Line) *Grid {
	ng := g.Clone()
	for _, e := range es {
		if int(e) < 0 || int(e) >= len(g.Branches) {
			panic(fmt.Sprintf("grid: line %d out of range %d", e, len(g.Branches)))
		}
		ng.Branches[e].Status = false
	}
	return ng
}

// SlackIndex returns the internal index of the slack bus, or an error if
// the grid does not have exactly one.
func (g *Grid) SlackIndex() (int, error) {
	idx := -1
	for i := range g.Buses {
		if g.Buses[i].Type == Slack {
			if idx >= 0 {
				return -1, fmt.Errorf("grid %q: multiple slack buses (%d and %d)", g.Name, idx, i)
			}
			idx = i
		}
	}
	if idx < 0 {
		return -1, fmt.Errorf("grid %q: no slack bus", g.Name)
	}
	return idx, nil
}

// Neighbors returns the internal indices of buses directly connected to
// bus i by an in-service branch, without duplicates, in ascending order.
func (g *Grid) Neighbors(i int) []int {
	seen := map[int]bool{}
	var out []int
	for _, br := range g.Branches {
		if !br.Status {
			continue
		}
		var other int
		switch i {
		case br.From:
			other = br.To
		case br.To:
			other = br.From
		default:
			continue
		}
		if !seen[other] {
			seen[other] = true
			out = append(out, other)
		}
	}
	sortInts(out)
	return out
}

// LinesOf returns the indices of all in-service branches incident to bus
// i — the paper's E_i, the lines whose outage "involves node i".
func (g *Grid) LinesOf(i int) []Line {
	var out []Line
	for e, br := range g.Branches {
		if br.Status && (br.From == i || br.To == i) {
			out = append(out, Line(e))
		}
	}
	return out
}

// Degree returns the number of in-service branches at bus i.
func (g *Grid) Degree(i int) int { return len(g.LinesOf(i)) }

// Connected reports whether all buses are reachable from bus 0 using
// in-service branches.
func (g *Grid) Connected() bool {
	n := g.N()
	if n == 0 {
		return true
	}
	return len(g.component(0)) == n
}

// ConnectedWithout reports whether the grid stays connected after
// removing branch e — i.e. whether the outage of e islands the grid.
func (g *Grid) ConnectedWithout(e Line) bool {
	ng := g.WithoutLine(e)
	return ng.Connected()
}

// component returns the set of buses reachable from start via in-service
// branches (BFS).
func (g *Grid) component(start int) []int {
	n := g.N()
	adj := g.adjacency()
	visited := make([]bool, n)
	queue := []int{start}
	visited[start] = true
	var out []int
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		out = append(out, u)
		for _, v := range adj[u] {
			if !visited[v] {
				visited[v] = true
				queue = append(queue, v)
			}
		}
	}
	return out
}

func (g *Grid) adjacency() [][]int {
	adj := make([][]int, g.N())
	for _, br := range g.Branches {
		if !br.Status {
			continue
		}
		adj[br.From] = append(adj[br.From], br.To)
		adj[br.To] = append(adj[br.To], br.From)
	}
	return adj
}

// SubgraphConnected reports whether the given bus set induces a connected
// subgraph of the in-service grid. An empty or single-node set is
// connected. Used by the detector's proximity rule: candidate outage
// nodes must form a connected sub-component.
func (g *Grid) SubgraphConnected(nodes []int) bool {
	if len(nodes) <= 1 {
		return true
	}
	in := map[int]bool{}
	for _, v := range nodes {
		in[v] = true
	}
	adj := g.adjacency()
	visited := map[int]bool{nodes[0]: true}
	queue := []int{nodes[0]}
	count := 1
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if in[v] && !visited[v] {
				visited[v] = true
				count++
				queue = append(queue, v)
			}
		}
	}
	return count == len(nodes)
}

// HopDistances returns the BFS hop distance from bus src to every bus
// over in-service branches; unreachable buses get -1.
func (g *Grid) HopDistances(src int) []int {
	n := g.N()
	dist := make([]int, n)
	for i := range dist {
		dist[i] = -1
	}
	adj := g.adjacency()
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, v := range adj[u] {
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Ybus builds the bus admittance matrix from in-service branches,
// including line charging, transformer taps/shifts, and bus shunts.
func (g *Grid) Ybus() *mat.CDense {
	n := g.N()
	y := mat.NewCDense(n, n)
	for _, br := range g.Branches {
		if !br.Status {
			continue
		}
		ys := br.Admittance()
		bc := complex(0, br.B/2)
		tap := br.Tap
		if tap == 0 { //gridlint:ignore floatcmp tap==0 is the case-file sentinel for unity ratio
			tap = 1
		}
		// Complex tap ratio a = tap * e^{j*shift}.
		a := complex(tap*math.Cos(br.Shift), tap*math.Sin(br.Shift))
		aconj := complex(real(a), -imag(a))
		amag2 := complex(tap*tap, 0)
		f, to := br.From, br.To
		y.Add(f, f, (ys+bc)/amag2)
		y.Add(to, to, ys+bc)
		y.Add(f, to, -ys/aconj)
		y.Add(to, f, -ys/a)
	}
	for i := range g.Buses {
		y.Add(i, i, complex(g.Buses[i].Gs, g.Buses[i].Bs))
	}
	return y
}

// Laplacian returns the weighted Laplacian of the in-service topology,
// weighted by 1/X (the DC-approximation susceptance). This is the
// admittance-matrix view Y of Eq. (1) in the paper.
func (g *Grid) Laplacian() *mat.Dense {
	n := g.N()
	l := mat.NewDense(n, n)
	for _, br := range g.Branches {
		if !br.Status || br.X == 0 { //gridlint:ignore floatcmp X==0 marks an unmodelled branch sentinel, never a computed reactance
			continue
		}
		w := 1 / br.X
		l.Add(br.From, br.From, w)
		l.Add(br.To, br.To, w)
		l.Add(br.From, br.To, -w)
		l.Add(br.To, br.From, -w)
	}
	return l
}

// FindLine returns the branch index connecting internal buses i and j
// (either direction), preferring in-service branches, or -1 if none.
func (g *Grid) FindLine(i, j int) Line {
	best := Line(-1)
	for e, br := range g.Branches {
		if (br.From == i && br.To == j) || (br.From == j && br.To == i) {
			if br.Status {
				return Line(e)
			}
			if best < 0 {
				best = Line(e)
			}
		}
	}
	return best
}

// Endpoints returns the internal bus indices of line e.
func (g *Grid) Endpoints(e Line) (int, int) {
	br := g.Branches[e]
	return br.From, br.To
}

// TotalLoad returns the total active demand in per unit.
func (g *Grid) TotalLoad() float64 {
	var s float64
	for i := range g.Buses {
		s += g.Buses[i].Pd
	}
	return s
}

// Validate performs structural sanity checks and returns the first
// problem found, or nil.
func (g *Grid) Validate() error {
	if g.N() == 0 {
		return fmt.Errorf("grid %q: no buses", g.Name)
	}
	if _, err := g.SlackIndex(); err != nil {
		return err
	}
	for e, br := range g.Branches {
		if br.From < 0 || br.From >= g.N() || br.To < 0 || br.To >= g.N() {
			return fmt.Errorf("grid %q: branch %d endpoints (%d,%d) out of range", g.Name, e, br.From, br.To)
		}
		if br.From == br.To {
			return fmt.Errorf("grid %q: branch %d is a self loop at %d", g.Name, e, br.From)
		}
		if br.R == 0 && br.X == 0 { //gridlint:ignore floatcmp validating literal zeros read from the case file
			return fmt.Errorf("grid %q: branch %d has zero impedance", g.Name, e)
		}
	}
	if !g.Connected() {
		return fmt.Errorf("grid %q: not connected", g.Name)
	}
	return nil
}

func sortInts(v []int) {
	for i := 1; i < len(v); i++ {
		for j := i; j > 0 && v[j-1] > v[j]; j-- {
			v[j-1], v[j] = v[j], v[j-1]
		}
	}
}

// AlgebraicConnectivity returns the Fiedler value — the second-smallest
// eigenvalue of the weighted Laplacian. It is positive exactly when the
// in-service grid is connected, and its magnitude measures how far the
// topology is from splitting: a spectral early-warning companion to the
// boolean Connected check.
func (g *Grid) AlgebraicConnectivity() (float64, error) {
	n := g.N()
	if n < 2 {
		return 0, fmt.Errorf("grid %q: need at least 2 buses for connectivity spectrum", g.Name)
	}
	e, err := mat.FactorEigenSym(g.Laplacian(), 0)
	if err != nil {
		return 0, fmt.Errorf("grid %q: %w", g.Name, err)
	}
	// Values are sorted decreasing; the Fiedler value is the second
	// smallest.
	return e.Values[n-2], nil
}
