package cases

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"

	"pmuoutage/internal/grid"
)

func TestCDFRoundTripAllCases(t *testing.T) {
	for _, g := range All() {
		var buf bytes.Buffer
		if err := WriteCDF(&buf, g); err != nil {
			t.Fatalf("%s: write: %v", g.Name, err)
		}
		back, err := ParseCDF(&buf)
		if err != nil {
			t.Fatalf("%s: parse: %v", g.Name, err)
		}
		if back.Name != g.Name {
			t.Errorf("%s: name = %q", g.Name, back.Name)
		}
		if back.N() != g.N() || back.E() != g.E() {
			t.Fatalf("%s: %d buses / %d lines, want %d / %d",
				g.Name, back.N(), back.E(), g.N(), g.E())
		}
		if back.BaseMVA != g.BaseMVA {
			t.Errorf("%s: base MVA %v, want %v", g.Name, back.BaseMVA, g.BaseMVA)
		}
		for i := range g.Buses {
			a, b := &g.Buses[i], &back.Buses[i]
			if a.ID != b.ID || a.Type != b.Type {
				t.Fatalf("%s bus %d: id/type mismatch", g.Name, i)
			}
			// Power values survive at the format's centi-MW resolution.
			if math.Abs(a.Pd-b.Pd) > 1e-4 || math.Abs(a.Qd-b.Qd) > 1e-4 {
				t.Errorf("%s bus %d: load %v/%v vs %v/%v", g.Name, i, a.Pd, a.Qd, b.Pd, b.Qd)
			}
			if math.Abs(a.Vm-b.Vm) > 1e-4 || math.Abs(a.Va-b.Va) > 1e-4 {
				t.Errorf("%s bus %d: voltage mismatch", g.Name, i)
			}
			if math.Abs(a.Bs-b.Bs) > 1e-5 {
				t.Errorf("%s bus %d: shunt mismatch %v vs %v", g.Name, i, a.Bs, b.Bs)
			}
		}
		for e := range g.Branches {
			a, b := &g.Branches[e], &back.Branches[e]
			if a.From != b.From || a.To != b.To {
				t.Fatalf("%s branch %d: endpoints mismatch", g.Name, e)
			}
			if math.Abs(a.R-b.R) > 1e-6 || math.Abs(a.X-b.X) > 1e-6 || math.Abs(a.B-b.B) > 1e-6 {
				t.Errorf("%s branch %d: impedance mismatch", g.Name, e)
			}
			if math.Abs(a.Tap-b.Tap) > 1e-4 {
				t.Errorf("%s branch %d: tap %v vs %v", g.Name, e, a.Tap, b.Tap)
			}
		}
		if err := back.Validate(); err != nil {
			t.Errorf("%s: round-tripped grid invalid: %v", g.Name, err)
		}
	}
}

// archiveSnippet is a hand-written fragment following the published
// archive formatting (3-bus toy): exercises the parser against input we
// did not generate ourselves.
const archiveSnippet = ` 08/20/93 UW ARCHIVE           100.0  1993 W IEEE 3 Bus Test Case
BUS DATA FOLLOWS                            3 ITEMS
   1 Bus 1     HV  1  1  3 1.060    0.0      0.0      0.0    232.4   -16.9     0.0  1.060     0.0     0.0   0.0    0.0        0
   2 Bus 2     HV  1  1  2 1.045   -4.98    21.7     12.7     40.0    42.4     0.0  1.045    50.0   -40.0   0.0    0.0        0
   3 Bus 3     HV  1  1  0 1.010  -12.72    94.2     19.0      0.0     0.0     0.0  0.0       0.0     0.0   0.0    0.0        0
-999
BRANCH DATA FOLLOWS                         3 ITEMS
   1    2  1  1 1 0  0.01938    0.05917    0.0528     0     0     0    0 0  0.0    0.0
   1    3  1  1 1 0  0.05403    0.22304    0.0492     0     0     0    0 0  0.978  0.0
   2    3  1  1 1 0  0.04699    0.19797    0.0438     0     0     0    0 0  0.0    0.0
-999
END OF DATA
`

func TestParseArchiveStyleSnippet(t *testing.T) {
	g, err := ParseCDF(strings.NewReader(archiveSnippet))
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 3 || g.E() != 3 {
		t.Fatalf("parsed %d buses / %d branches", g.N(), g.E())
	}
	if g.BaseMVA != 100 {
		t.Fatalf("base MVA = %v", g.BaseMVA)
	}
	if !strings.Contains(g.Name, "IEEE 3 Bus") {
		t.Fatalf("name = %q", g.Name)
	}
	if g.Buses[0].Type != grid.Slack {
		t.Fatalf("bus 1 type = %v, want slack", g.Buses[0].Type)
	}
	if math.Abs(g.Buses[1].Pd-0.217) > 1e-9 {
		t.Fatalf("bus 2 Pd = %v, want 0.217 p.u.", g.Buses[1].Pd)
	}
	if math.Abs(g.Branches[0].X-0.05917) > 1e-9 {
		t.Fatalf("branch 1 X = %v", g.Branches[0].X)
	}
	if math.Abs(g.Branches[1].Tap-0.978) > 1e-9 {
		t.Fatalf("branch 2 tap = %v", g.Branches[1].Tap)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
}

// busCard builds a minimal fixed-column bus record with the given bus
// number and CDF type code at the spec columns.
func busCard(num, typ int) string {
	c := []byte(strings.Repeat(" ", 80))
	place := func(lo, hi int, val string) {
		copy(c[hi-len(val):hi], val)
	}
	place(0, 4, "1")
	_ = num
	place(24, 26, fmt.Sprintf("%d", typ))
	place(27, 33, "1.0")
	place(33, 40, "0.0")
	place(40, 49, "0.0")
	place(49, 59, "0.0")
	place(59, 67, "0.0")
	place(67, 75, "0.0")
	return string(c)
}

func TestParseCDFErrors(t *testing.T) {
	cases := map[string]string{
		"empty":        "",
		"no buses":     "title\nEND OF DATA\n",
		"bad bus":      "title\nBUS DATA FOLLOWS\nabcd\n-999\nEND OF DATA\n",
		"unknown type": "title\nBUS DATA FOLLOWS\n" + busCard(1, 9) + "\n-999\nEND OF DATA\n",
		"orphan branch": "title\nBUS DATA FOLLOWS\n" +
			"   1 B           1  1  3 1.0     0.0     0.0      0.0       0.0     0.0\n-999\n" +
			"BRANCH DATA FOLLOWS\n   1    9  1  1 1 0  0.1        0.2        0.0\n-999\nEND OF DATA\n",
		"dup bus": "title\nBUS DATA FOLLOWS\n" +
			"   1 B           1  1  3 1.0     0.0     0.0      0.0       0.0     0.0\n" +
			"   1 B           1  1  0 1.0     0.0     0.0      0.0       0.0     0.0\n-999\nEND OF DATA\n",
	}
	for name, input := range cases {
		if _, err := ParseCDF(strings.NewReader(input)); err == nil {
			t.Errorf("%s: expected parse error", name)
		} else {
			t.Logf("%s: %v", name, err)
		}
	}
}
