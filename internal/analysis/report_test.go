package analysis

import (
	"encoding/json"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

// reportFixture runs a fixed analyzer set over two testdata packages —
// one with matching ignore directives (suppress), one with plain
// findings (units) — and returns the report.
func reportFixture(t *testing.T, cachePath string) *Report {
	t.Helper()
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	dirs := []string{
		filepath.Join("testdata", "src", "suppress"),
		filepath.Join("testdata", "src", "units"),
	}
	rep, err := RunDirsReport(loader, []*Analyzer{FloatCmp, Units, IgnoreAudit}, dirs, cachePath)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

// TestReportRoundTrip pins the machine-readable contract: the report
// survives encoding/json round-trips unchanged, repeated runs are
// byte-identical (stable ordering), paths are module-root-relative
// with forward slashes, and suppressed findings are present with the
// suppressing reason.
func TestReportRoundTrip(t *testing.T) {
	rep := reportFixture(t, "")
	if len(rep.Findings) == 0 {
		t.Fatal("fixture produced no findings")
	}
	if got := len(rep.Analyzers); got != 3 {
		t.Fatalf("report lists %d analyzers, want 3", got)
	}

	data, err := rep.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatal("report does not survive a JSON round-trip")
	}

	again := reportFixture(t, "")
	data2, err := again.MarshalIndent()
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != string(data2) {
		t.Fatal("two identical runs produced different JSON reports")
	}

	suppressed := 0
	for _, f := range rep.Findings {
		if strings.Contains(f.File, `\`) || filepath.IsAbs(f.File) {
			t.Fatalf("finding path %q is not module-root-relative with forward slashes", f.File)
		}
		if f.Suppressed {
			suppressed++
			if f.SuppressedBy == "" {
				t.Fatalf("suppressed finding %+v carries no suppressing reason", f)
			}
		}
	}
	if suppressed == 0 {
		t.Fatal("suppress fixture produced no suppressed findings in the report")
	}
	if rep.Errors == 0 {
		t.Fatal("units fixture should contribute unsuppressed error findings")
	}

	// The tallies must agree with the findings they summarize.
	errs, warns := 0, 0
	for _, f := range rep.Findings {
		if f.Suppressed {
			continue
		}
		if f.Severity == SeverityWarn {
			warns++
		} else {
			errs++
		}
	}
	if errs != rep.Errors || warns != rep.Warnings {
		t.Fatalf("tally mismatch: report says %d/%d, findings say %d/%d",
			rep.Errors, rep.Warnings, errs, warns)
	}
}

// TestSeverityTiers pins the severity plumbing: analyzers default to
// the error tier, an explicit warn-tier analyzer reports warn findings,
// and warn findings count as warnings, not errors.
func TestSeverityTiers(t *testing.T) {
	for _, a := range All() {
		if a.severity() != SeverityError {
			t.Fatalf("analyzer %s has severity %s; every registered analyzer is error-tier", a.Name, a.severity())
		}
	}
	w := &Analyzer{Name: "stylehint", Severity: SeverityWarn, Run: func(pass *Pass) error {
		pass.Report(pass.Files[0].Pos(), "advisory only")
		return nil
	}}
	loader, err := NewLoader("../..")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := RunDirsReport(loader, []*Analyzer{w},
		[]string{filepath.Join("testdata", "src", "units")}, "")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Errors != 0 || rep.Warnings != 1 {
		t.Fatalf("warn-tier analyzer tallied as %d error(s), %d warning(s); want 0, 1", rep.Errors, rep.Warnings)
	}
	if rep.Findings[0].Severity != SeverityWarn {
		t.Fatalf("finding severity = %q, want warn", rep.Findings[0].Severity)
	}
}
