package comm

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"time"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/pmunet"
)

// Metric names the collector exports when registered on an
// obs.Registry — package-level snake_case consts, one registration
// site each (enforced by the gridlint metricname analyzer).
const (
	metricEmitted    = "pmu_collector_emitted_total"
	metricIncomplete = "pmu_collector_incomplete_total"
	metricDropped    = "pmu_collector_dropped_total"
	metricEvicted    = "pmu_collector_evicted_total"
	metricPending    = "pmu_collector_pending"
)

// Assembled is one control-center sample: the merged measurements of a
// time step with a missing-data mask for buses that never arrived.
type Assembled struct {
	Seq    int
	Sample dataset.Sample
}

// Collector is the control-center endpoint: it accepts PDC connections,
// merges cluster frames per sequence number, and emits assembled samples
// after a deadline — late or lost data become missing entries rather
// than blocking the application, matching the paper's online-detection
// requirement.
type Collector struct {
	n        int
	deadline time.Duration
	out      chan Assembled

	ln net.Listener

	// Emission counters: always-on lock-free cells, shared verbatim with
	// any registry the collector is Registered on, so CollectorStats and
	// /metrics can never disagree.
	emitted, incomplete, droppedFull, evicted obs.Counter

	logger *slog.Logger // nil disables network-event logs

	mu      sync.Mutex
	conns   map[net.Conn]struct{} // accepted PDC conns, so Close can unblock readers
	pending map[int]*assembly
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup
}

// CollectorStats counts the collector's emission outcomes — the
// observability hook the serving layer's dashboards read alongside the
// detection service's shard counters.
type CollectorStats struct {
	// Emitted counts samples delivered on Samples(), complete or not.
	Emitted uint64
	// Incomplete counts emitted samples that carried missing entries.
	Incomplete uint64
	// DroppedFull counts samples discarded because the consumer stalled
	// and the output channel was full.
	DroppedFull uint64
	// Evicted counts assemblies force-emitted early by the maxPending
	// memory bound (a subset of Emitted or DroppedFull).
	Evicted uint64
	// Pending is the number of partially assembled time steps held now.
	Pending int
}

// Stats snapshots the collector's counters.
func (c *Collector) Stats() CollectorStats {
	pending := c.pendingNow()
	return CollectorStats{
		Emitted:     c.emitted.Load(),
		Incomplete:  c.incomplete.Load(),
		DroppedFull: c.droppedFull.Load(),
		Evicted:     c.evicted.Load(),
		Pending:     pending,
	}
}

// Register exports the collector's counters on r, next to whatever else
// the process serves at /metrics. The registry attaches to the
// collector's own cells — Stats and the exposition read the same
// atomics. Call at most once per registry.
func (c *Collector) Register(r *obs.Registry) {
	r.AttachCounter(metricEmitted, "assembled samples delivered, complete or not", &c.emitted)
	r.AttachCounter(metricIncomplete, "emitted samples that carried missing entries", &c.incomplete)
	r.AttachCounter(metricDropped, "samples discarded because the consumer stalled", &c.droppedFull)
	r.AttachCounter(metricEvicted, "assemblies force-emitted by the memory bound", &c.evicted)
	r.GaugeFunc(metricPending, "partially assembled time steps held now", func() float64 {
		return float64(c.pendingNow())
	})
}

// pendingNow reads the size of the in-flight assembly table.
func (c *Collector) pendingNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// SetLogger attaches a structured logger for network events (evictions,
// drops, incomplete emissions). Call before traffic flows; nil (the
// default) disables logging.
func (c *Collector) SetLogger(lg *slog.Logger) {
	if lg != nil {
		lg = lg.With(slog.String(obs.AttrComponent, "comm"))
	}
	c.logger = lg
}

type assembly struct {
	vm, va  []float64
	have    pmunet.Mask // true = received
	got     int         // buses received so far; == n means complete
	started time.Time
}

// maxPending bounds the number of partially-assembled time steps the
// collector holds. A PDC that keeps opening new sequence numbers without
// ever completing them (clock skew, replay, a stuck upstream) would
// otherwise grow the pending map without limit faster than the deadline
// sweep can drain it. At the bound, the stalest assembly is force-emitted
// with its gaps as missing data — the same treatment the deadline gives
// stragglers, applied early under memory pressure.
const maxPending = 256

// NewCollector starts the control-center server for an n-bus grid on
// listenAddr ("127.0.0.1:0" for ephemeral). deadline is how long a time
// step waits for stragglers before being emitted with missing entries
// (default 100ms). Assembled samples arrive on Samples().
func NewCollector(n int, listenAddr string, deadline time.Duration) (*Collector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: collector needs positive bus count, got %d", n)
	}
	if deadline <= 0 {
		deadline = 100 * time.Millisecond
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("comm: collector listen: %w", err)
	}
	c := &Collector{
		n: n, deadline: deadline,
		out:     make(chan Assembled, 64),
		ln:      ln,
		conns:   map[net.Conn]struct{}{},
		pending: map[int]*assembly{},
		done:    make(chan struct{}),
	}
	c.wg.Add(2)
	//gridlint:ignore ctxflow server lifetime is bound by Close, not a per-call context
	go c.acceptLoop()
	go c.deadlineLoop()
	return c, nil
}

// Addr returns the address PDCs should dial.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Samples returns the stream of assembled samples. The channel closes
// when the collector is closed.
func (c *Collector) Samples() <-chan Assembled { return c.out }

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		if !c.track(conn) {
			_ = conn.Close() // accept raced with Close
			continue
		}
		c.wg.Add(1)
		go c.readPDC(conn)
	}
}

// track registers an accepted connection so Close can unblock its
// reader; it refuses connections that race with shutdown.
func (c *Collector) track(conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.conns[conn] = struct{}{}
	return true
}

func (c *Collector) untrack(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.conns, conn)
}

func (c *Collector) readPDC(conn net.Conn) {
	defer c.wg.Done()
	defer c.untrack(conn)
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var cf ClusterFrame
		if err := json.Unmarshal(sc.Bytes(), &cf); err != nil {
			continue
		}
		c.ingest(cf)
	}
}

func (c *Collector) ingest(cf ClusterFrame) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return
	}
	a := c.pending[cf.Seq]
	if a == nil {
		if len(c.pending) >= maxPending {
			c.evictStalestLocked()
		}
		a = &assembly{
			vm:      make([]float64, c.n),
			va:      make([]float64, c.n),
			have:    make(pmunet.Mask, c.n),
			started: time.Now(),
		}
		c.pending[cf.Seq] = a
	}
	for i, bus := range cf.Buses {
		if bus < 0 || bus >= c.n || i >= len(cf.Vm) || i >= len(cf.Va) {
			continue // malformed aggregate entry
		}
		a.vm[bus] = cf.Vm[i]
		a.va[bus] = cf.Va[i]
		if !a.have[bus] {
			a.have[bus] = true
			a.got++
		}
	}
	// Complete time steps are emitted immediately — no waiting when all
	// data arrived. (have is inverse-sense relative to Mask — true means
	// received — so count arrivals instead of calling MissingCount, whose
	// reading of this mask would be backwards.)
	if a.got == c.n {
		c.emitLocked(cf.Seq, a)
	}
}

// evictStalestLocked force-emits the oldest pending assembly to make
// room for a new sequence; callers hold c.mu.
func (c *Collector) evictStalestLocked() {
	stalest := -1
	var oldest time.Time
	for seq, a := range c.pending {
		if stalest < 0 || a.started.Before(oldest) {
			stalest, oldest = seq, a.started
		}
	}
	if stalest >= 0 {
		c.evicted.Inc()
		if lg := c.logger; lg != nil {
			lg.LogAttrs(context.Background(), slog.LevelWarn, "assembly evicted under memory pressure",
				slog.Int("seq", stalest), slog.Int("pending", len(c.pending)))
		}
		c.emitLocked(stalest, c.pending[stalest])
	}
}

// emitLocked sends an assembly out; callers hold c.mu.
func (c *Collector) emitLocked(seq int, a *assembly) {
	delete(c.pending, seq)
	missing := make(pmunet.Mask, c.n)
	for i, got := range a.have {
		missing[i] = !got
	}
	s := dataset.Sample{Vm: a.vm, Va: a.va}
	if missing.AnyMissing() {
		s.Mask = missing
	}
	select {
	case c.out <- Assembled{Seq: seq, Sample: s}:
		c.emitted.Inc()
		if s.Mask != nil {
			c.incomplete.Inc()
			if lg := c.logger; lg != nil && lg.Enabled(context.Background(), slog.LevelDebug) {
				lg.LogAttrs(context.Background(), slog.LevelDebug, "incomplete sample emitted",
					slog.Int("seq", seq), slog.Int("missing", missing.MissingCount()))
			}
		}
	default:
		// A stalled consumer must not deadlock the network path; the
		// sample is dropped like any other late data.
		c.droppedFull.Inc()
		if lg := c.logger; lg != nil {
			lg.LogAttrs(context.Background(), slog.LevelWarn, "sample dropped: consumer stalled",
				slog.Int("seq", seq))
		}
	}
}

func (c *Collector) deadlineLoop() {
	defer c.wg.Done()
	tick := time.NewTicker(c.deadline / 4)
	defer tick.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-tick.C:
			c.sweep()
		}
	}
}

// sweep emits every assembly past its deadline.
func (c *Collector) sweep() {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	for seq, a := range c.pending {
		if now.Sub(a.started) >= c.deadline {
			c.emitLocked(seq, a)
		}
	}
}

// Flush force-emits every pending assembly (used at shutdown and by
// tests to avoid waiting for deadlines).
func (c *Collector) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for seq, a := range c.pending {
		c.emitLocked(seq, a)
	}
}

// Close flushes, stops the server, and closes the Samples channel. It is
// idempotent, and it closes accepted PDC connections so reader
// goroutines parked in Scan cannot deadlock the final Wait.
func (c *Collector) Close() error {
	conns, ok := c.shutdown()
	if !ok {
		return nil // already closed
	}
	err := c.ln.Close()
	for _, conn := range conns {
		_ = conn.Close() // unblocks the conn's readPDC goroutine
	}
	c.wg.Wait()
	close(c.out)
	return err
}

// shutdown drains pending assemblies, marks the collector closed, and
// hands back the tracked connections; it reports false if Close already
// ran.
func (c *Collector) shutdown() ([]net.Conn, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, false
	}
	for seq, a := range c.pending {
		c.emitLocked(seq, a)
	}
	c.closed = true
	close(c.done)
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	return conns, true
}
