package service

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"pmuoutage"
)

// TestReloadUnderTraffic is the hot-swap acceptance test: while many
// goroutines hammer a shard, a reload with the same training options
// swaps in a freshly trained (identical) model. Every request — before,
// during, and after the swap — must return exactly the reference
// reports; no request may be dropped or see a torn model. Run with
// -race this also proves the swap itself is data-race free.
func TestReloadUnderTraffic(t *testing.T) {
	svc, err := New(context.Background(), Config{
		Shards:            []ShardSpec{{Name: "east", Opts: quickOpts(3), Replicas: 2}},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")

	ref, err := pmuoutage.NewSystem(quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t, ref, 3)
	want, err := ref.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	genBefore := svc.Shards()[0].Generation

	ctx := context.Background()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errc := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := svc.DetectBatch(ctx, "east", samples)
				if err != nil {
					errc <- err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errc <- errors.New("reports diverged from reference during reload")
					return
				}
			}
		}()
	}
	// Retrain-reload twice while traffic flows. Same options => the new
	// model is byte-identical, so any divergence above is a swap bug.
	for i := 0; i < 2; i++ {
		if err := svc.Reload(ctx, "east", nil); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errc:
		t.Fatal(err)
	default:
	}

	st := svc.Shards()[0]
	if st.Generation != genBefore+2 {
		t.Fatalf("generation = %d after 2 reloads of gen %d", st.Generation, genBefore)
	}
	if st.Model != ref.Model().Fingerprint() {
		t.Fatalf("served model fingerprint %s differs from reference %s", st.Model, ref.Model().Fingerprint())
	}
	if got := svc.Stats()["east"].Reloads; got != 2 {
		t.Fatalf("Reloads counter = %d, want 2", got)
	}
}

// TestReloadSwapsBehavior: a reload onto a model with genuinely
// different learned state (different seed) changes the served results
// to exactly that model's, and pins the artifact for supervisor
// rebuilds after a kill.
func TestReloadSwapsBehavior(t *testing.T) {
	svc, err := New(context.Background(), Config{
		Shards:            []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")

	m, err := pmuoutage.TrainModel(quickOpts(7))
	if err != nil {
		t.Fatal(err)
	}
	ref, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Reload(context.Background(), "east", m); err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t, ref, 2)
	want, err := ref.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.DetectBatch(context.Background(), "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("served reports differ from the reloaded model's")
	}

	// A kill + rebuild must come back serving the reloaded artifact,
	// not retrain from the original spec.
	if err := svc.Kill("east"); err != nil {
		t.Fatal(err)
	}
	waitState(t, svc, "east", "ready")
	st := svc.Shards()[0]
	if st.Model != m.Fingerprint() {
		t.Fatalf("rebuilt shard serves %s, want pinned reload artifact %s", st.Model, m.Fingerprint())
	}
}

// TestReloadValidation: reloads of unknown shards, not-ready shards,
// and grid-incompatible models are all refused with typed errors.
func TestReloadValidation(t *testing.T) {
	svc, err := New(context.Background(), Config{
		Shards:            []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		RestartBackoff:    time.Minute,
		MaxRestartBackoff: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")

	if err := svc.Reload(context.Background(), "nope", nil); !errors.Is(err, ErrUnknownShard) {
		t.Fatalf("unknown shard: got %v", err)
	}
	bigger, err := pmuoutage.TrainModel(pmuoutage.Options{Case: "ieee30", TrainSteps: 12, Seed: 3, UseDC: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Reload(context.Background(), "east", bigger); !errors.Is(err, ErrConfig) {
		t.Fatalf("grid-incompatible model: got %v", err)
	}
	if err := svc.Kill("east"); err != nil {
		t.Fatal(err)
	}
	m, err := pmuoutage.TrainModel(quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Reload(context.Background(), "east", m); !errors.Is(err, ErrUnavailable) {
		t.Fatalf("reload of killed shard: got %v", err)
	}
}

// TestReplicasMatchSingleShard: the same traffic answered by a
// replicated shard and by a single-replica shard (and by the library
// directly) yields identical reports — replicas change throughput,
// never results.
func TestReplicasMatchSingleShard(t *testing.T) {
	svc, err := New(context.Background(), Config{
		Shards: []ShardSpec{
			{Name: "single", Opts: quickOpts(3)},
			{Name: "wide", Opts: quickOpts(3), Replicas: 4},
		},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "single", "ready")
	waitState(t, svc, "wide", "ready")

	if st := svc.Shards(); st[0].Replicas != 1 || st[1].Replicas != 4 {
		t.Fatalf("replica counts = %d/%d, want 1/4", st[0].Replicas, st[1].Replicas)
	}

	ref, err := pmuoutage.NewSystem(quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	var wg sync.WaitGroup
	errs := make([]error, 16)
	batches := make([][]pmuoutage.Sample, len(errs))
	wants := make([][]*pmuoutage.Report, len(errs))
	for g := range errs {
		batches[g] = testSamples(t, ref, 1+g%3)
		want, err := ref.DetectBatch(batches[g])
		if err != nil {
			t.Fatal(err)
		}
		wants[g] = want
	}
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			samples, want := batches[g], wants[g]
			for _, shard := range []string{"single", "wide"} {
				got, err := svc.DetectBatch(ctx, shard, samples)
				if err != nil {
					errs[g] = err
					return
				}
				if !reflect.DeepEqual(got, want) {
					errs[g] = errors.New("shard " + shard + " diverged from direct DetectBatch")
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestBootFromModel: a shard specced with a pre-trained artifact serves
// it without retraining and reports its fingerprint immediately.
func TestBootFromModel(t *testing.T) {
	m, err := pmuoutage.TrainModel(quickOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	svc, err := New(context.Background(), Config{
		Shards:            []ShardSpec{{Name: "east", Opts: quickOpts(11), Model: m}},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")
	if st := svc.Shards()[0]; st.Model != m.Fingerprint() {
		t.Fatalf("boot-from-model shard serves %s, want %s", st.Model, m.Fingerprint())
	}
	ref, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t, ref, 2)
	want, err := ref.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := svc.DetectBatch(context.Background(), "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("boot-from-model shard detects differently from the artifact")
	}
}
