package router

import (
	"encoding/json"
	"net/http"

	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

// handleFleet serves the aggregated fleet-health report: per-backend
// cumulative counters and ejection history plus primary-pool SLO
// signals over the rolling window.
func (r *Router) handleFleet(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.fleet.health(r.desperate.Load()))
}

// handleTraces serves the router's retained traces. The list form is
// the router's own ring; the by-ID form additionally asks every backend
// for its half of the trace and merges the spans, so one fetch shows
// the full route→proxy→backend-stage tree. Backend misses are fine —
// tail sampling decides independently per process, so the merged view
// is "everything anyone retained".
func (r *Router) handleTraces(w http.ResponseWriter, req *http.Request) {
	id := req.URL.Query().Get("id")
	if id == "" {
		traces := r.tracer.Traces()
		if traces == nil {
			traces = []api.Trace{}
		}
		writeJSON(w, http.StatusOK, api.TraceList{Traces: traces})
		return
	}
	tr, found := r.tracer.TraceByID(id)
	seen := map[string]bool{}
	for _, s := range tr.Spans {
		seen[s.ID] = true
	}
	for _, p := range []*Pool{r.primary, r.canary} {
		if p == nil {
			continue
		}
		for _, b := range p.backends {
			raw, err := b.cli.GetRaw(req.Context(), "/debug/traces?id="+id)
			if err != nil || raw.Status != http.StatusOK {
				continue
			}
			var bt api.Trace
			if json.Unmarshal(raw.Body, &bt) != nil || bt.TraceID != id {
				continue
			}
			if !found {
				// The router dropped its half (or restarted); adopt the
				// backend's keep verdict so the merged trace reports one.
				tr.TraceID, tr.Kept, found = bt.TraceID, bt.Kept, true
			}
			tr.DroppedSpans += bt.DroppedSpans
			for _, s := range bt.Spans {
				if seen[s.ID] {
					continue
				}
				seen[s.ID] = true
				tr.Spans = append(tr.Spans, s)
			}
		}
	}
	if !found {
		writeJSON(w, http.StatusNotFound, api.ErrorEnvelope{
			Code:    api.CodeNotFound,
			Error:   "trace not retained by the router or any backend",
			TraceID: obs.TraceID(req.Context()),
		})
		return
	}
	// Re-derive the envelope over the merged span set: the trace now
	// starts at the earliest span anywhere and ends at the latest.
	var first, last int64
	for i, s := range tr.Spans {
		end := s.StartUnixNS + s.DurationNS
		if i == 0 || s.StartUnixNS < first {
			first = s.StartUnixNS
		}
		if end > last {
			last = end
		}
	}
	tr.StartUnixNS, tr.DurationNS = first, last-first
	writeJSON(w, http.StatusOK, tr)
}
