package obs

import (
	"fmt"
	"io"
	"log/slog"
)

// Shared slog attribute keys, so every component's structured logs join
// on the same fields.
const (
	// AttrTraceID carries the request trace ID on every span log line.
	AttrTraceID = "trace_id"
	// AttrComponent names the emitting subsystem (http, service, client,
	// comm, ...).
	AttrComponent = "component"
	// AttrShard names the shard a span crossed.
	AttrShard = "shard"
	// AttrGeneration is the shard's model incarnation counter.
	AttrGeneration = "generation"
	// AttrStage names the pipeline stage a span measures (queue,
	// coalesce, detect, encode).
	AttrStage = "stage"
)

// NewTextLogger builds the stack's standard logger: slog text handler on
// w at the given level.
func NewTextLogger(w io.Writer, level slog.Leveler) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// ParseLevel parses a -log-level flag value ("debug", "info", "warn",
// "error", case-insensitive; slog's "INFO-4" offsets also work).
func ParseLevel(s string) (slog.Level, error) {
	var l slog.Level
	if err := l.UnmarshalText([]byte(s)); err != nil {
		return 0, fmt.Errorf("obs: bad log level %q: %v", s, err)
	}
	return l, nil
}
