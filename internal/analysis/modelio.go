package analysis

import (
	"go/types"
	"reflect"
	"strings"
)

// ModelIO guards the serialized model-artifact format (DESIGN.md "Model
// artifacts & hot reload"): in any package that declares a struct type
// named Model, every exported field of every module-internal struct
// reachable from it through field types must carry an explicit json
// codec tag. The artifact's byte-identity guarantee — and its SHA-256
// fingerprint — hinge on stable wire field names; an untagged exported
// field silently serializes under its Go identifier, so a later rename
// breaks every saved artifact without any compile error. `json:"-"` is
// an acceptable tag: it records the exclusion decision explicitly.
var ModelIO = &Analyzer{
	Name: "modelio",
	Doc:  "exported fields reachable from a serialized Model struct must carry json codec tags",
	Run:  runModelIO,
}

// wireTagPackages are packages whose entire exported struct surface is
// wire format: every exported struct is an HTTP request/response body,
// so every exported field must pin its wire name with a json tag — the
// same rename-safety argument as the Model closure, applied to the
// serving API instead of the artifact file.
var wireTagPackages = map[string]bool{
	"api": true,
}

func runModelIO(pass *Pass) error {
	if wireTagPackages[pass.Pkg.Name()] {
		runWireTags(pass)
	}
	tn, ok := pass.Pkg.Scope().Lookup("Model").(*types.TypeName)
	if !ok || tn.IsAlias() {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	w := &modelWalker{pass: pass, root: tn, seen: map[*types.Named]bool{}}
	w.visit(named)
	return nil
}

// runWireTags checks every package-level exported struct of a wire-type
// package: exported, non-embedded fields must carry a json tag.
func runWireTags(pass *Pass) {
	scope := pass.Pkg.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() || !tn.Exported() {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			f := st.Field(i)
			if !f.Exported() || f.Embedded() {
				continue
			}
			if _, ok := reflect.StructTag(st.Tag(i)).Lookup("json"); ok {
				continue
			}
			pass.Report(f.Pos(), "exported field %s.%s is a wire type of package %s but has no json tag; untagged fields pin the wire name to the Go identifier, so a rename silently breaks deployed clients",
				name, f.Name(), pass.Pkg.Name())
		}
	}
}

// modelWalker traverses the type closure of one Model declaration.
type modelWalker struct {
	pass *Pass
	root *types.TypeName
	seen map[*types.Named]bool
}

// visit descends through composite types until it reaches named structs,
// checking each module-internal one exactly once. Traversal covers
// unexported fields too: the facade embeds its options inside an
// unexported detect.Model reference, and those still hit the wire.
func (w *modelWalker) visit(t types.Type) {
	switch t := t.(type) {
	case *types.Pointer:
		w.visit(t.Elem())
	case *types.Slice:
		w.visit(t.Elem())
	case *types.Array:
		w.visit(t.Elem())
	case *types.Map:
		w.visit(t.Key())
		w.visit(t.Elem())
	case *types.Named:
		if w.seen[t] || !w.inModule(t) {
			return
		}
		w.seen[t] = true
		st, ok := t.Underlying().(*types.Struct)
		if !ok {
			return
		}
		w.checkStruct(t, st)
		for i := 0; i < st.NumFields(); i++ {
			w.visit(st.Field(i).Type())
		}
	}
}

// inModule reports whether the named type is declared in this module
// (its serialization is ours to pin). With Module unset (golden tests)
// only the package under analysis qualifies.
func (w *modelWalker) inModule(named *types.Named) bool {
	pkg := named.Obj().Pkg()
	if pkg == nil {
		return false
	}
	if pkg == w.pass.Pkg {
		return true
	}
	m := w.pass.Module
	return m != "" && (pkg.Path() == m || strings.HasPrefix(pkg.Path(), m+"/"))
}

// checkStruct reports exported, non-embedded fields without a json tag.
// Embedded fields are exempt — encoding/json inlines them, and their own
// fields are checked when the walker reaches the embedded type. Findings
// in the analyzed package anchor to the field; findings in an imported
// package anchor to the Model declaration that reaches them, so the
// diagnostic (and any ignore directive) stays in the package being
// linted.
func (w *modelWalker) checkStruct(named *types.Named, st *types.Struct) {
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if !f.Exported() || f.Embedded() {
			continue
		}
		if _, ok := reflect.StructTag(st.Tag(i)).Lookup("json"); ok {
			continue
		}
		pos := f.Pos()
		if f.Pkg() != w.pass.Pkg {
			pos = w.root.Pos()
		}
		w.pass.Report(pos, "exported field %s.%s is serialized via %s.Model but has no json tag; untagged fields pin the wire name to the Go identifier, so a rename corrupts saved artifacts",
			named.Obj().Name(), f.Name(), w.pass.Pkg.Name())
	}
}
