package allocfree

import "testing"

// TestHotPathAllocs pins the clean zeroalloc functions the way
// internal/obs does: table-driven closures measured by AllocsPerRun.
func TestHotPathAllocs(t *testing.T) {
	var c Counter
	cases := []struct {
		name string
		fn   func()
	}{
		{"Counter.Inc", func() { c.Inc() }},
		{"ZeroKey", func() { ZeroKey() }},
	}
	for _, tc := range cases {
		if n := testing.AllocsPerRun(100, tc.fn); n != 0 {
			t.Errorf("%s allocates %v per run", tc.name, n)
		}
	}
}
