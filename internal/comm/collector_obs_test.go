package comm

import (
	"bytes"
	"log/slog"
	"strings"
	"testing"
	"time"

	"pmuoutage/internal/obs"
)

// TestCollectorStatsRegistryParity: Stats() and a registry the collector
// is Registered on read the same cells, so the JSON snapshot and the
// Prometheus exposition agree after any traffic pattern.
func TestCollectorStatsRegistryParity(t *testing.T) {
	c, err := NewCollector(2, "127.0.0.1:0", time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var logBuf bytes.Buffer
	c.SetLogger(obs.NewTextLogger(&logBuf, slog.LevelDebug))
	r := obs.NewRegistry()
	c.Register(r)

	// Two complete emissions, then one incomplete via Flush.
	for seq := 0; seq < 2; seq++ {
		c.ingest(ClusterFrame{PDC: 0, Seq: seq, Buses: []int{0, 1}, Vm: []float64{1, 1}, Va: []float64{0, 0}})
	}
	c.ingest(ClusterFrame{PDC: 0, Seq: 9, Buses: []int{0}, Vm: []float64{1}, Va: []float64{0}})
	if got := r.GaugeValue(metricPending); got != 1 {
		t.Fatalf("pending gauge = %v, want 1", got)
	}
	c.Flush()
	// A straggler for an already-emitted sequence is dropped as late.
	c.ingest(ClusterFrame{PDC: 1, Seq: 0, Buses: []int{1}, Vm: []float64{1}, Va: []float64{0}})

	st := c.Stats()
	if st.Emitted != 3 || st.Incomplete != 1 || st.Pending != 0 || st.Late != 1 {
		t.Fatalf("unexpected stats: %+v", st)
	}
	for metric, want := range map[string]uint64{
		metricEmitted:    st.Emitted,
		metricIncomplete: st.Incomplete,
		metricDropped:    st.DroppedFull,
		metricEvicted:    st.Evicted,
		metricLate:       st.Late,
	} {
		if got := r.CounterValue(metric); got != want {
			t.Errorf("%s = %d, Stats says %d", metric, got, want)
		}
	}
	if got := r.GaugeValue(metricPending); got != float64(st.Pending) {
		t.Fatalf("pending gauge = %v, Stats says %d", got, st.Pending)
	}
	// PDC 0 was heard from, so its deadline gauge is exported; with no
	// latency history it sits at the configured maximum.
	if got := r.GaugeValue(metricPDCDeadline, labelPDC, "0"); got != time.Hour.Seconds() {
		t.Fatalf("pdc deadline gauge = %v, want %v", got, time.Hour.Seconds())
	}

	// The incomplete emission logged a structured event.
	logs := logBuf.String()
	if !strings.Contains(logs, "incomplete sample emitted") || !strings.Contains(logs, "component=comm") {
		t.Fatalf("missing incomplete-emission log:\n%s", logs)
	}
}
