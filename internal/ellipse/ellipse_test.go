package ellipse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFitValidation(t *testing.T) {
	if _, err := Fit([]float64{1}, []float64{1}, 1); err != ErrTooFewPoints {
		t.Fatalf("err = %v", err)
	}
	if _, err := Fit([]float64{1, 2}, []float64{1}, 1); err != ErrTooFewPoints {
		t.Fatalf("mismatched lengths: err = %v", err)
	}
}

func TestAllTrainingPointsInside(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		vm := make([]float64, n)
		va := make([]float64, n)
		for i := range vm {
			vm[i] = 1 + 0.02*rng.NormFloat64()
			va[i] = -0.2 + 0.05*rng.NormFloat64()
		}
		e, err := Fit(vm, va, 1.1)
		if err != nil {
			return false
		}
		for i := range vm {
			if !e.Contains(vm[i], va[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestFarPointsOutside(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 200
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := range vm {
		vm[i] = 1 + 0.001*rng.NormFloat64()
		va[i] = 0.1 + 0.002*rng.NormFloat64()
	}
	e, err := Fit(vm, va, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	// A point 50 sigma away must be outside.
	if e.Contains(1+0.05, 0.1) {
		t.Fatal("far point inside ellipse")
	}
	if e.Contains(1, 0.3) {
		t.Fatal("far angle point inside ellipse")
	}
	// The mean is inside.
	if !e.Contains(1, 0.1) {
		t.Fatal("center not inside")
	}
}

func TestDegenerateDirectionHandled(t *testing.T) {
	// Constant angle (like the slack bus): ellipse must still fit and
	// classify sanely.
	vm := []float64{0.99, 1.0, 1.01, 1.0}
	va := []float64{0, 0, 0, 0}
	e, err := Fit(vm, va, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vm {
		if !e.Contains(vm[i], va[i]) {
			t.Fatal("training point outside degenerate-fit ellipse")
		}
	}
	// Any nonzero angle deviation is far outside given zero variance.
	if e.Contains(1.0, 0.05) {
		t.Fatal("large angle deviation must be outside")
	}
}

func TestQuadAtBoundary(t *testing.T) {
	// With margin exactly 1, the farthest point must sit on the boundary.
	vm := []float64{1, 1.02, 0.98, 1}
	va := []float64{0, 0.01, -0.01, 0.02}
	e, err := Fit(vm, va, 1)
	if err != nil {
		t.Fatal(err)
	}
	var maxQ float64
	for i := range vm {
		if q := e.Quad(vm[i], va[i]); q > maxQ {
			maxQ = q
		}
	}
	if math.Abs(maxQ-1) > 1e-9 {
		t.Fatalf("max quad = %v, want 1", maxQ)
	}
}

func TestMarginDefault(t *testing.T) {
	vm := []float64{1, 1.01, 0.99}
	va := []float64{0, 0.01, -0.01}
	e, err := Fit(vm, va, 0) // non-positive -> default 1.1
	if err != nil {
		t.Fatal(err)
	}
	for i := range vm {
		if q := e.Quad(vm[i], va[i]); q > 1/(1.1*1.1)+1e-9 {
			t.Fatalf("default margin not applied: quad = %v", q)
		}
	}
}

func TestAxesOrdered(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(50)
		vm := make([]float64, n)
		va := make([]float64, n)
		for i := range vm {
			vm[i] = rng.NormFloat64()
			va[i] = 3 * rng.NormFloat64()
		}
		e, err := Fit(vm, va, 1.1)
		if err != nil {
			return false
		}
		major, minor := e.Axes()
		return major >= minor && minor > 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestAxesCircle(t *testing.T) {
	// Unit-ish isotropic cloud: axes nearly equal.
	rng := rand.New(rand.NewSource(6))
	n := 5000
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := range vm {
		vm[i] = rng.NormFloat64()
		va[i] = rng.NormFloat64()
	}
	e, err := Fit(vm, va, 1)
	if err != nil {
		t.Fatal(err)
	}
	major, minor := e.Axes()
	if major/minor > 1.2 {
		t.Fatalf("isotropic cloud gave axes ratio %.2f", major/minor)
	}
}

func TestCorrelatedCloud(t *testing.T) {
	// Strongly correlated data: points along the correlation direction
	// stay inside, perpendicular outliers fall outside.
	rng := rand.New(rand.NewSource(7))
	n := 500
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := range vm {
		u := rng.NormFloat64()
		vm[i] = u + 0.01*rng.NormFloat64()
		va[i] = u + 0.01*rng.NormFloat64()
	}
	e, err := Fit(vm, va, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	// On-axis point at moderate distance: inside.
	if !e.Contains(0.5, 0.5) {
		t.Fatal("correlated direction point should be inside")
	}
	// Perpendicular point at the same Euclidean distance: far outside.
	if e.Contains(0.5, -0.5) {
		t.Fatal("anti-correlated point should be outside")
	}
}
