package cases

import (
	"fmt"
	"math/rand"
	"sync"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/powerflow"
)

// SynthConfig controls the deterministic synthetic grid builder used for
// the 57- and 118-bus stand-ins (see DESIGN.md: the offline module cannot
// download the archive files, and the detector is topology-agnostic, so a
// realistic meshed grid of the right size preserves the experiments).
type SynthConfig struct {
	Name     string
	Buses    int
	Branches int // must be >= Buses-1 and <= Buses*(Buses-1)/2
	Regions  int // backbone regions (roughly PDC areas)
	Gens     int // number of PV buses (plus one slack)
	LoadMW   float64
	Seed     int64
}

// Synthetic builds a connected, AC-feasible grid per cfg. The builder is
// deterministic in the seed, and it verifies the base case solves with
// Newton–Raphson, progressively shedding load if a draw is infeasible.
func Synthetic(cfg SynthConfig) (*grid.Grid, error) {
	if cfg.Branches < cfg.Buses-1 {
		return nil, fmt.Errorf("cases: %d branches cannot connect %d buses", cfg.Branches, cfg.Buses)
	}
	maxBr := cfg.Buses * (cfg.Buses - 1) / 2
	if cfg.Branches > maxBr {
		return nil, fmt.Errorf("cases: %d branches exceeds simple-graph limit %d", cfg.Branches, maxBr)
	}
	if cfg.Regions <= 0 {
		cfg.Regions = 1 + cfg.Buses/12
	}
	if cfg.Gens <= 0 {
		cfg.Gens = 1 + cfg.Buses/10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	n := cfg.Buses
	g := &grid.Grid{Name: cfg.Name, BaseMVA: baseMVA}
	g.Buses = make([]grid.Bus, n)
	for i := range g.Buses {
		g.Buses[i] = grid.Bus{ID: i + 1, Type: grid.PQ, Vm: 1, Va: 0}
	}

	// Assign buses to regions contiguously; bus 0 of each region is its hub.
	region := make([]int, n)
	hubs := make([]int, cfg.Regions)
	per := n / cfg.Regions
	for r := 0; r < cfg.Regions; r++ {
		lo := r * per
		hi := lo + per
		if r == cfg.Regions-1 {
			hi = n
		}
		hubs[r] = lo
		for i := lo; i < hi; i++ {
			region[i] = r
		}
	}

	type edge struct{ a, b int }
	have := map[edge]bool{}
	addBranch := func(a, b int) bool {
		if a == b {
			return false
		}
		if a > b {
			a, b = b, a
		}
		e := edge{a, b}
		if have[e] {
			return false
		}
		have[e] = true
		// Electrical parameters drawn to match the embedded IEEE cases:
		// reactance 0.03–0.30 p.u., R/X ratio 0.1–0.35, light charging.
		x := 0.03 + 0.27*rng.Float64()
		r := x * (0.1 + 0.25*rng.Float64())
		var ch float64
		if rng.Float64() < 0.4 {
			ch = 0.05 * rng.Float64()
		}
		g.Branches = append(g.Branches, grid.Branch{
			From: a, To: b, R: r, X: x, B: ch, Status: true,
		})
		return true
	}

	// 1) Local spanning trees: attach each bus to a random earlier bus in
	//    its region (random recursive tree → realistic degree skew).
	for i := 0; i < n; i++ {
		r := region[i]
		if i == hubs[r] {
			continue
		}
		lo := hubs[r]
		parent := lo + rng.Intn(i-lo)
		addBranch(parent, i)
	}
	// 2) Backbone ring across region hubs keeps inter-region transfer
	//    paths redundant, like real transmission backbones.
	for r := 0; r < cfg.Regions; r++ {
		addBranch(hubs[r], hubs[(r+1)%cfg.Regions])
	}
	// 3) Chords up to the branch budget: mostly intra-region shortcuts,
	//    occasionally inter-region ties. The draw guard bounds rejection
	//    sampling on dense graphs; when it trips, fail loudly — an
	//    under-connected grid would silently skew every experiment run
	//    on it.
	const chordGuard = 100000
	for guard := 0; len(g.Branches) < cfg.Branches; guard++ {
		if guard >= chordGuard {
			return nil, fmt.Errorf("cases: chord guard tripped after %d draws with %d of %d branches — refusing to emit an under-connected grid",
				chordGuard, len(g.Branches), cfg.Branches)
		}
		var a, b int
		if rng.Float64() < 0.75 {
			r := rng.Intn(cfg.Regions)
			lo := hubs[r]
			hi := n
			if r < cfg.Regions-1 {
				hi = hubs[r+1]
			}
			if hi-lo < 2 {
				continue
			}
			a = lo + rng.Intn(hi-lo)
			b = lo + rng.Intn(hi-lo)
		} else {
			a = rng.Intn(n)
			b = rng.Intn(n)
		}
		addBranch(a, b)
	}

	// Generators: slack at bus 0 plus cfg.Gens PV buses spread over regions.
	g.Buses[0].Type = grid.Slack
	g.Buses[0].Vm = 1.05
	pv := 0
	for pv < cfg.Gens {
		i := rng.Intn(n)
		if g.Buses[i].Type != grid.PQ {
			continue
		}
		g.Buses[i].Type = grid.PV
		g.Buses[i].Vm = 1.0 + 0.05*rng.Float64()
		pv++
	}
	// Loads on ~75% of PQ buses, lognormal-ish sizes normalised to LoadMW.
	weights := make([]float64, n)
	var wsum float64
	for i := range g.Buses {
		if g.Buses[i].Type == grid.PQ && rng.Float64() < 0.75 {
			w := 0.2 + rng.ExpFloat64()
			weights[i] = w
			wsum += w
		}
	}
	if wsum == 0 { //gridlint:ignore floatcmp wsum is exactly zero iff no load bus was drawn; draws are >= 0.2
		return nil, fmt.Errorf("cases: no load buses drawn")
	}
	for i, w := range weights {
		if w == 0 { //gridlint:ignore floatcmp weights are exactly zero or >= 0.2 by construction
			continue
		}
		pd := cfg.LoadMW * w / wsum / baseMVA
		g.Buses[i].Pd = pd
		g.Buses[i].Qd = pd * (0.2 + 0.3*rng.Float64())
	}
	// Generation shares proportional to random capacities.
	var gsum float64
	gw := make([]float64, n)
	for i := range g.Buses {
		if g.Buses[i].Type == grid.PV {
			gw[i] = 0.5 + rng.Float64()
			gsum += gw[i]
		}
	}
	totalPd := g.TotalLoad()
	for i, w := range gw {
		if w > 0 {
			// PV buses carry ~70% of load; the slack picks up the rest.
			g.Buses[i].Pg = 0.7 * totalPd * w / gsum
		}
	}

	// Feasibility: shed load until the AC base case converges with a
	// healthy voltage profile (real planning cases keep Vm >= ~0.94).
	for attempt := 0; attempt < 12; attempt++ {
		sol, err := powerflow.SolveAC(g, powerflow.Options{FlatStart: true})
		if err == nil {
			minVm := sol.Vm[0]
			for _, vm := range sol.Vm {
				if vm < minVm {
					minVm = vm
				}
			}
			if minVm < 0.93 {
				err = fmt.Errorf("weak voltage %.3f", minVm)
			}
		}
		if err == nil {
			// Store the solved state as the warm start for outage runs.
			for i := range g.Buses {
				g.Buses[i].Vm = sol.Vm[i]
				g.Buses[i].Va = sol.Va[i]
			}
			return g, nil
		}
		for i := range g.Buses {
			g.Buses[i].Pd *= 0.8
			g.Buses[i].Qd *= 0.7 // reactive stress drives the weak voltages
			g.Buses[i].Pg *= 0.8
		}
	}
	return nil, fmt.Errorf("cases: synthetic grid %q infeasible after load shedding", cfg.Name)
}

// IEEE57 returns the 57-bus stand-in: 57 buses, 80 branches (the paper's
// "80 power lines available for outage evaluation").
func IEEE57() *grid.Grid {
	g, err := Synthetic(SynthConfig{
		Name: "ieee57", Buses: 57, Branches: 80,
		Regions: 4, Gens: 6, LoadMW: 1250, Seed: 57,
	})
	if err != nil {
		panic(err) // deterministic build; failure is a programming error
	}
	return g
}

// IEEE118 returns the 118-bus stand-in: 118 buses, 186 branches (the
// paper's "186 power lines available for outage evaluation").
func IEEE118() *grid.Grid {
	g, err := Synthetic(SynthConfig{
		Name: "ieee118", Buses: 118, Branches: 186,
		Regions: 8, Gens: 18, LoadMW: 4240, Seed: 118,
	})
	if err != nil {
		panic(err)
	}
	return g
}

// The scale grids take seconds to build (the feasibility loop solves
// AC power flows during construction), so each builds once per process
// and hands out clones, matching the fresh-grid semantics of the small
// builders at amortised cost.
var (
	synth300Once  sync.Once
	synth300Grid  *grid.Grid
	synth1000Once sync.Once
	synth1000Grid *grid.Grid
)

// Synth300 returns a 300-bus synthetic system scaled from the 118-bus
// stand-in's density (≈1.6 branches and ≈36 MW of load per bus, one PV
// bus per ~6.5). It is the smallest grid that exercises the sparse
// powerflow path (≥ powerflow.SparseBusThreshold buses) end to end.
func Synth300() *grid.Grid {
	synth300Once.Do(func() {
		g, err := Synthetic(SynthConfig{
			Name: "synth300", Buses: 300, Branches: 475,
			Regions: 20, Gens: 46, LoadMW: 10800, Seed: 300,
		})
		if err != nil {
			panic(err) // deterministic build; failure is a programming error
		}
		synth300Grid = g
	})
	return synth300Grid.Clone()
}

// Synth1000 returns a 1000-bus synthetic system at the same density,
// the scaling target of the sparse numerics core (ROADMAP: "bigger
// grids, faster math").
func Synth1000() *grid.Grid {
	synth1000Once.Do(func() {
		g, err := Synthetic(SynthConfig{
			Name: "synth1000", Buses: 1000, Branches: 1580,
			Regions: 66, Gens: 150, LoadMW: 36000, Seed: 1000,
		})
		if err != nil {
			panic(err)
		}
		synth1000Grid = g
	})
	return synth1000Grid.Clone()
}
