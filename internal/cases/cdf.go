package cases

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"

	"pmuoutage/internal/grid"
)

// This file implements the IEEE Common Data Format (CDF) — the exchange
// format of the UW power-systems test case archive the paper cites
// ([15]) — so real archive files can be loaded at runtime and grids can
// be exported for other tools. The column layout follows the 1973 IEEE
// "Common Format for Exchange of Solved Load Flow Data" spec.

// cdf bus types.
const (
	cdfPQ      = 0
	cdfPQLimit = 1
	cdfPV      = 2
	cdfSlack   = 3
)

// ParseCDF reads a grid from IEEE Common Data Format text. Bus numbers
// may be non-contiguous (the archive's 57- and 118-bus files are); they
// are remapped to dense internal indices while the original numbers are
// kept as Bus.ID.
func ParseCDF(r io.Reader) (*grid.Grid, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)

	g := &grid.Grid{BaseMVA: 100}
	if !sc.Scan() {
		return nil, fmt.Errorf("cases: empty CDF input")
	}
	title := sc.Text()
	if base, err := cdfFloat(title, 31, 37); err == nil && base > 0 {
		g.BaseMVA = base
	}
	if len(title) >= 45 {
		g.Name = strings.TrimSpace(title[45:])
	}
	if g.Name == "" {
		g.Name = "cdf"
	}

	idOf := map[int]int{} // external bus number -> internal index
	section := ""
	lineNo := 1
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		switch {
		case trimmed == "":
			continue
		case strings.HasPrefix(trimmed, "BUS DATA"):
			section = "bus"
			continue
		case strings.HasPrefix(trimmed, "BRANCH DATA"):
			section = "branch"
			continue
		case strings.HasPrefix(trimmed, "-999"):
			section = ""
			continue
		case strings.HasPrefix(trimmed, "END OF DATA"):
			section = ""
			continue
		}
		switch section {
		case "bus":
			if err := parseBusCard(g, idOf, line); err != nil {
				return nil, fmt.Errorf("cases: CDF line %d: %w", lineNo, err)
			}
		case "branch":
			if err := parseBranchCard(g, idOf, line); err != nil {
				return nil, fmt.Errorf("cases: CDF line %d: %w", lineNo, err)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("cases: CDF read: %w", err)
	}
	if g.N() == 0 {
		return nil, fmt.Errorf("cases: CDF input has no bus data")
	}
	return g, nil
}

// parseBusCard decodes one fixed-column bus record.
func parseBusCard(g *grid.Grid, idOf map[int]int, line string) error {
	num, err := cdfInt(line, 0, 4)
	if err != nil {
		return fmt.Errorf("bus number: %w", err)
	}
	typ, err := cdfInt(line, 24, 26)
	if err != nil {
		return fmt.Errorf("bus %d type: %w", num, err)
	}
	vm, _ := cdfFloat(line, 27, 33)
	vaDeg, _ := cdfFloat(line, 33, 40)
	pd, _ := cdfFloat(line, 40, 49)
	qd, _ := cdfFloat(line, 49, 59)
	pg, _ := cdfFloat(line, 59, 67)
	qg, _ := cdfFloat(line, 67, 75)
	gs, _ := cdfFloat(line, 106, 114)
	bs, _ := cdfFloat(line, 114, 122)

	var bt grid.BusType
	switch typ {
	case cdfPQ, cdfPQLimit:
		bt = grid.PQ
	case cdfPV:
		bt = grid.PV
	case cdfSlack:
		bt = grid.Slack
	default:
		return fmt.Errorf("bus %d: unknown type %d", num, typ)
	}
	if vm <= 0 {
		vm = 1
	}
	if _, dup := idOf[num]; dup {
		return fmt.Errorf("bus %d: duplicate record", num)
	}
	idOf[num] = g.N()
	g.Buses = append(g.Buses, grid.Bus{
		ID:   num,
		Type: bt,
		Pd:   pd / g.BaseMVA, Qd: qd / g.BaseMVA,
		Pg: pg / g.BaseMVA, Qg: qg / g.BaseMVA,
		Gs: gs, Bs: bs, // shunts are already per unit in CDF
		Vm: vm, Va: vaDeg * math.Pi / 180,
	})
	return nil
}

// parseBranchCard decodes one fixed-column branch record.
func parseBranchCard(g *grid.Grid, idOf map[int]int, line string) error {
	from, err := cdfInt(line, 0, 4)
	if err != nil {
		return fmt.Errorf("branch from-bus: %w", err)
	}
	to, err := cdfInt(line, 5, 9)
	if err != nil {
		return fmt.Errorf("branch to-bus: %w", err)
	}
	fi, ok := idOf[from]
	if !ok {
		return fmt.Errorf("branch references unknown bus %d", from)
	}
	ti, ok := idOf[to]
	if !ok {
		return fmt.Errorf("branch references unknown bus %d", to)
	}
	r, _ := cdfFloat(line, 19, 29)
	x, err := cdfFloat(line, 29, 40)
	if err != nil {
		return fmt.Errorf("branch %d-%d reactance: %w", from, to, err)
	}
	b, _ := cdfFloat(line, 40, 50)
	tap, _ := cdfFloat(line, 76, 82)
	shiftDeg, _ := cdfFloat(line, 83, 90)
	g.Branches = append(g.Branches, grid.Branch{
		From: fi, To: ti,
		R: r, X: x, B: b,
		Tap: tap, Shift: shiftDeg * math.Pi / 180,
		Status: true,
	})
	return nil
}

// cdfInt parses an integer from fixed columns [lo, hi).
func cdfInt(line string, lo, hi int) (int, error) {
	s, err := cdfField(line, lo, hi)
	if err != nil {
		return 0, err
	}
	return strconv.Atoi(s)
}

// cdfFloat parses a float from fixed columns [lo, hi).
func cdfFloat(line string, lo, hi int) (float64, error) {
	s, err := cdfField(line, lo, hi)
	if err != nil {
		return 0, err
	}
	return strconv.ParseFloat(s, 64)
}

func cdfField(line string, lo, hi int) (string, error) {
	if lo >= len(line) {
		return "", fmt.Errorf("columns %d-%d past end of card", lo+1, hi)
	}
	if hi > len(line) {
		hi = len(line)
	}
	s := strings.TrimSpace(line[lo:hi])
	if s == "" {
		return "", fmt.Errorf("columns %d-%d empty", lo+1, hi)
	}
	return s, nil
}

// card builds one fixed-column record: fields are placed right-justified
// at the exact column ranges the parser (and the CDF spec) expects.
type card []byte

func newCard(width int) card {
	c := make(card, width)
	for i := range c {
		c[i] = ' '
	}
	return c
}

func (c card) place(lo, hi int, s string) {
	if len(s) > hi-lo {
		s = s[:hi-lo] // truncate rather than corrupt neighbouring fields
	}
	copy(c[hi-len(s):hi], s)
}

func (c card) placeLeft(lo, hi int, s string) {
	if len(s) > hi-lo {
		s = s[:hi-lo]
	}
	copy(c[lo:lo+len(s)], s)
}

func (c card) String() string { return strings.TrimRight(string(c), " ") }

// WriteCDF exports a grid as IEEE Common Data Format text that ParseCDF
// (and other CDF consumers) can read back.
func WriteCDF(w io.Writer, g *grid.Grid) error {
	bw := bufio.NewWriter(w)
	title := newCard(75)
	title.placeLeft(1, 9, "01/01/70")
	title.placeLeft(10, 30, "pmuoutage")
	title.place(31, 37, fmt.Sprintf("%.1f", g.BaseMVA))
	title.place(38, 42, "1970")
	title.placeLeft(43, 44, "S")
	title.placeLeft(45, 75, g.Name)
	fmt.Fprintln(bw, title.String())

	fmt.Fprintf(bw, "BUS DATA FOLLOWS %32d ITEMS\n", g.N())
	for i := range g.Buses {
		b := &g.Buses[i]
		typ := cdfPQ
		switch b.Type {
		case grid.PV:
			typ = cdfPV
		case grid.Slack:
			typ = cdfSlack
		}
		c := newCard(124)
		c.place(0, 4, strconv.Itoa(b.ID))
		c.placeLeft(5, 17, fmt.Sprintf("BUS%d", b.ID))
		c.place(18, 20, "1") // area
		c.place(20, 23, "1") // zone
		c.place(24, 26, strconv.Itoa(typ))
		c.place(27, 33, fmt.Sprintf("%.4f", b.Vm))
		c.place(33, 40, fmt.Sprintf("%.2f", b.Va*180/math.Pi))
		c.place(40, 49, fmt.Sprintf("%.2f", b.Pd*g.BaseMVA))
		c.place(49, 59, fmt.Sprintf("%.2f", b.Qd*g.BaseMVA))
		c.place(59, 67, fmt.Sprintf("%.2f", b.Pg*g.BaseMVA))
		c.place(67, 75, fmt.Sprintf("%.2f", b.Qg*g.BaseMVA))
		c.place(76, 83, "0.0") // base kV
		c.place(84, 90, fmt.Sprintf("%.4f", b.Vm))
		c.place(90, 98, "0.0")  // max MVAR
		c.place(98, 106, "0.0") // min MVAR
		c.place(106, 114, fmt.Sprintf("%.5f", b.Gs))
		c.place(114, 122, fmt.Sprintf("%.5f", b.Bs))
		fmt.Fprintln(bw, c.String())
	}
	fmt.Fprintln(bw, "-999")

	inService := 0
	for e := range g.Branches {
		if g.Branches[e].Status {
			inService++
		}
	}
	fmt.Fprintf(bw, "BRANCH DATA FOLLOWS %29d ITEMS\n", inService)
	for e := range g.Branches {
		br := &g.Branches[e]
		if !br.Status {
			continue
		}
		c := newCard(92)
		c.place(0, 4, strconv.Itoa(g.Buses[br.From].ID))
		c.place(5, 9, strconv.Itoa(g.Buses[br.To].ID))
		c.place(10, 12, "1") // area
		c.place(12, 15, "1") // zone
		c.place(16, 17, "1") // circuit
		c.place(18, 19, "0") // type
		c.place(19, 29, fmt.Sprintf("%.6f", br.R))
		c.place(29, 40, fmt.Sprintf("%.6f", br.X))
		c.place(40, 50, fmt.Sprintf("%.6f", br.B))
		c.place(76, 82, fmt.Sprintf("%.4f", br.Tap))
		c.place(83, 90, fmt.Sprintf("%.2f", br.Shift*180/math.Pi))
		fmt.Fprintln(bw, c.String())
	}
	fmt.Fprintln(bw, "-999")
	fmt.Fprintln(bw, "END OF DATA")
	return bw.Flush()
}
