// Package router is the fleet front-end for outaged: it spreads
// detect and ingest traffic across N backend processes with
// health-aware least-loaded balancing, fails requests over when a
// backend dies mid-stream, and runs canary/shadow evaluation of a
// candidate model with a structured diff report gating promotion.
//
// The data plane is byte-transparent: request bodies are forwarded
// verbatim and the chosen backend's response — status, Content-Type,
// Retry-After, trace ID, body — is relayed byte-identically, so a
// caller cannot distinguish the router from the backend it picked.
// Wire types are the shared api package; the proxy primitive is
// client.PostRaw (transport retries only, every HTTP response returned
// whole).
package router

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"pmuoutage/api"
	"pmuoutage/client"
	"pmuoutage/internal/obs"
)

// Typed errors of the router.
var (
	// ErrConfig reports an invalid Config.
	ErrConfig = errors.New("router: invalid config")
	// ErrBadRequest reports a request the router itself rejects before
	// proxying (conflicting reload sources, unreadable body).
	ErrBadRequest = errors.New("router: bad request")
	// ErrBodyTooLarge reports a request body over the router's 64 MiB
	// bound — rejected with 413 Payload Too Large, never truncated.
	ErrBodyTooLarge = errors.New("router: request body too large")
	// ErrNoBackends reports that no healthy backend could take the
	// request — every pool member is ejected or at its in-flight bound.
	ErrNoBackends = errors.New("router: no backend available")
	// ErrPromotionBlocked reports a promotion whose canary report gates
	// failed.
	ErrPromotionBlocked = errors.New("router: promotion blocked")
	// ErrWorker reports an experiments-fleet job a worker answered with
	// an error or an undecodable reply.
	ErrWorker = errors.New("router: experiment worker failed")
)

// Metric names of the router's registry.
const (
	metricProxied        = "router_requests_total"
	metricFailovers      = "router_failovers_total"
	metricNoBackend      = "router_no_backend_total"
	metricShadow         = "router_shadow_total"
	metricDivergence     = "router_score_divergence"
	metricProxySecs      = "router_proxy_seconds"
	metricTracesKept     = "router_traces_kept_total"
	metricTracesDropped  = "router_traces_dropped_total"
	labelRoute           = "route"
	labelRouterPool      = "pool"
	routeDetect          = "detect"
	routeIngest          = "ingest"
	poolNamePrimary      = "primary"
	poolNameCanary       = "canary"
	defaultMaxBody       = 64 << 20
	defaultProbeEvery    = 250 * time.Millisecond
	defaultShadowTimeout = 30 * time.Second
	defaultFleetWindow   = time.Minute

	// Ejection/readmission accounting and the fleet-health aggregates
	// scraped from backend /v1/stats pages.
	metricEjections     = "pmu_router_ejections_total"
	metricReadmissions  = "pmu_router_readmissions_total"
	metricDesperate     = "pmu_router_desperate_total"
	metricFleetUp       = "pmu_fleet_up"
	metricFleetRequests = "pmu_fleet_requests_total"
	metricFleetSamples  = "pmu_fleet_samples_total"
	metricFleetShed     = "pmu_fleet_shed_total"
	metricFleetP99      = "pmu_fleet_detect_p99_seconds"
	metricFleetAvail    = "pmu_fleet_availability"
	metricFleetSloP99   = "pmu_fleet_slo_detect_p99_seconds"
	metricFleetShedRate = "pmu_fleet_shed_rate"
	metricFleetHealthy  = "pmu_fleet_healthy_backends"
	labelBackend        = "backend"
	labelReason         = "reason"
	reasonProxy         = "proxy"
	reasonProbe         = "probe"

	// Span stage labels owned by the router: the root span covering the
	// whole routed exchange, and one proxy child per backend attempt.
	// stageDetect names the backend-side detect stage the fleet SLOs
	// read out of scraped histograms.
	stageRoute  = "route"
	stageProxy  = "proxy"
	stageDetect = "detect"
)

// Config configures New.
type Config struct {
	// Backends are the primary pool's base URLs (at least one).
	Backends []string
	// CanaryBackends are the candidate pool's base URLs (empty disables
	// canary evaluation).
	CanaryBackends []string
	// Candidate is the fingerprint under evaluation; it labels the
	// canary report and is the default artifact POST /v1/canary/promote
	// reloads onto.
	Candidate string
	// CanaryPercent is the percentage (0–100) of detect traffic mirrored
	// to the canary pool. Shadow mode is CanaryPercent = 100.
	CanaryPercent int
	// MinPairs is the promotion gate's minimum shadow-pair count
	// (default 1).
	MinPairs int
	// Tolerance bounds acceptable per-scenario quality regression:
	// promotion needs ΔIA ≥ −Tolerance and ΔFA ≤ Tolerance (default 0 —
	// byte-identical models always pass; quality must not regress at
	// all).
	Tolerance float64
	// MaxInFlight bounds concurrent proxied requests per backend
	// (default 256).
	MaxInFlight int
	// ProbeEvery is the health-probe period (default 250ms).
	ProbeEvery time.Duration
	// ShadowTimeout bounds each mirrored shadow copy (default 30s), so a
	// canary backend that accepts a connection and never answers cannot
	// wedge report/promote draining or Close.
	ShadowTimeout time.Duration
	// HTTPClient overrides the transport to the backends.
	HTTPClient *http.Client
	// Logger receives structured ejection/readmission/promotion logs;
	// nil disables logging.
	Logger *slog.Logger
	// Tracer, when non-nil, records route/proxy spans with tail
	// sampling and serves retained traces at GET /debug/traces. Span
	// context propagates to the backends in the Traceparent header, so
	// a router trace and the backend traces it caused share one ID.
	Tracer *obs.Tracer
	// FleetWindow is the rolling window the fleet-health SLOs cover
	// (default 1 minute).
	FleetWindow time.Duration
}

// Router is the fleet front-end. Create with New, serve Routes, stop
// with Close.
type Router struct {
	cfg     Config
	primary *Pool
	canary  *Pool
	differ  *Differ
	reg     *obs.Registry
	log     *slog.Logger
	tracer  *obs.Tracer
	fleet   *fleetAggregator

	proxied   map[string]*obs.Counter
	failovers *obs.Counter
	noBackend *obs.Counter
	shadowed  *obs.Counter
	desperate *obs.Counter
	proxyLat  map[string]*obs.Histogram

	stop   context.CancelFunc
	probes sync.WaitGroup
}

// New validates cfg, builds the pools, and starts the health prober.
// The prober stops when ctx ends or Close is called, whichever first.
func New(ctx context.Context, cfg Config) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("%w: no backends", ErrConfig)
	}
	if cfg.ProbeEvery <= 0 {
		cfg.ProbeEvery = defaultProbeEvery
	}
	if cfg.ShadowTimeout <= 0 {
		cfg.ShadowTimeout = defaultShadowTimeout
	}
	primary, err := NewPool(poolNamePrimary, cfg.Backends, cfg.MaxInFlight, cfg.HTTPClient)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	var canary *Pool
	if len(cfg.CanaryBackends) > 0 {
		if canary, err = NewPool(poolNameCanary, cfg.CanaryBackends, cfg.MaxInFlight, cfg.HTTPClient); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrConfig, err)
		}
	}
	reg := obs.NewRegistry()
	r := &Router{
		cfg:       cfg,
		primary:   primary,
		canary:    canary,
		reg:       reg,
		log:       cfg.Logger,
		proxied:   map[string]*obs.Counter{},
		proxyLat:  map[string]*obs.Histogram{},
		failovers: reg.Counter(metricFailovers, "proxied requests retried on another backend"),
		noBackend: reg.Counter(metricNoBackend, "requests refused with no backend available"),
		shadowed:  reg.Counter(metricShadow, "detect requests mirrored to the canary pool"),
	}
	for _, route := range []string{routeDetect, routeIngest} {
		r.proxied[route] = reg.Counter(metricProxied, "requests proxied per route", labelRoute, route)
		r.proxyLat[route] = reg.Histogram(metricProxySecs, "proxy latency per route", labelRoute, route)
	}
	r.desperate = reg.Counter(metricDesperate, "desperate-pass acquisitions: every healthy backend exhausted, ejected ones tried")
	r.differ = newDiffer(cfg.Candidate, cfg.CanaryPercent, cfg.MinPairs, cfg.Tolerance, reg)
	if cfg.Tracer != nil {
		r.tracer = cfg.Tracer
		reg.AttachCounter(metricTracesKept, "traces retained by tail sampling", r.tracer.KeptCounter())
		reg.AttachCounter(metricTracesDropped, "traces dropped by tail sampling", r.tracer.DroppedCounter())
	}
	r.fleet = newFleetAggregator(cfg.FleetWindow, []*Pool{primary, canary})
	r.wireFleetMetrics()

	pctx, stop := context.WithCancel(ctx)
	r.stop = stop
	r.probes.Add(1)
	go r.probeLoop(pctx)
	return r, nil
}

// wireFleetMetrics registers the ejection/readmission counters and the
// pmu_fleet_* gauges. Per-backend series carry pool+backend labels; the
// SLO gauges summarize the primary pool over the rolling window. Each
// metric name has exactly one registration site (labels fan the series
// out), which keeps the /metrics page's help strings single-sourced.
func (r *Router) wireFleetMetrics() {
	reg := r.reg
	for _, p := range []*Pool{r.primary, r.canary} {
		if p == nil {
			continue
		}
		pool := p.name
		for _, b := range p.backends {
			for _, reason := range []string{reasonProxy, reasonProbe} {
				c := reg.Counter(metricEjections, "backend ejections per reason (proxy fault vs failed probe)",
					labelRouterPool, pool, labelBackend, b.url, labelReason, reason)
				if reason == reasonProxy {
					b.ejectProxy = c
				} else {
					b.ejectProbe = c
				}
			}
			b.readmits = reg.Counter(metricReadmissions, "backends readmitted to the healthy set",
				labelRouterPool, pool, labelBackend, b.url)
			bb, v := b, r.fleet.view(b)
			reg.GaugeFunc(metricFleetUp, "1 when the prober holds the backend healthy", func() float64 {
				if bb.healthy.Load() {
					return 1
				}
				return 0
			}, labelRouterPool, pool, labelBackend, b.url)
			reg.GaugeFunc(metricFleetRequests, "cumulative requests per backend, scraped from /v1/stats", func() float64 {
				return float64(v.lastPoint().requests)
			}, labelRouterPool, pool, labelBackend, b.url)
			reg.GaugeFunc(metricFleetSamples, "cumulative ingested samples per backend, scraped from /v1/stats", func() float64 {
				return float64(v.lastPoint().samples)
			}, labelRouterPool, pool, labelBackend, b.url)
			reg.GaugeFunc(metricFleetShed, "cumulative shed requests per backend, scraped from /v1/stats", func() float64 {
				return float64(v.lastPoint().shed)
			}, labelRouterPool, pool, labelBackend, b.url)
			reg.GaugeFunc(metricFleetP99, "detect p99 seconds per backend, cumulative histogram", func() float64 {
				return v.lastPoint().stages[stageDetect].Quantile(0.99)
			}, labelRouterPool, pool, labelBackend, b.url)
		}
	}
	reg.GaugeFunc(metricFleetAvail, "healthy fraction of primary probe points over the SLO window", r.fleet.sloAvailability)
	reg.GaugeFunc(metricFleetSloP99, "windowed primary-pool detect p99 seconds", r.fleet.sloP99Seconds)
	reg.GaugeFunc(metricFleetShedRate, "windowed primary-pool shed/requests ratio", r.fleet.sloShedRate)
	reg.GaugeFunc(metricFleetHealthy, "primary backends currently healthy", func() float64 {
		n := 0
		for _, b := range r.primary.backends {
			if b.healthy.Load() {
				n++
			}
		}
		return float64(n)
	})
}

// Close stops the prober and waits for outstanding shadow copies.
func (r *Router) Close() {
	r.stop()
	r.probes.Wait()
	r.differ.DrainShadow()
}

// Differ exposes the canary evaluation (tests and the promote path
// drain and read it).
func (r *Router) Differ() *Differ { return r.differ }

// Registry exposes the router's metrics registry (/metrics).
func (r *Router) Registry() *obs.Registry { return r.reg }

// probeLoop refreshes every backend's health each period.
func (r *Router) probeLoop(ctx context.Context) {
	defer r.probes.Done()
	t := time.NewTicker(r.cfg.ProbeEvery)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case now := <-t.C:
			r.probeAll(ctx, now)
		}
	}
}

func (r *Router) probeAll(ctx context.Context, now time.Time) {
	// Probes get at least a second regardless of the probe period: a
	// busy backend answering slowly must not read as a dead one.
	pctx, cancel := context.WithTimeout(ctx, max(4*r.cfg.ProbeEvery, time.Second))
	defer cancel()
	for _, p := range []*Pool{r.primary, r.canary} {
		if p == nil {
			continue
		}
		for _, b := range p.backends {
			was := b.healthy.Load()
			p.probe(pctx, b, now, r.cfg.ProbeEvery)
			if is := b.healthy.Load(); is != was && r.log != nil {
				verb := "backend readmitted"
				if !is {
					verb = "backend ejected"
				}
				r.log.LogAttrs(ctx, slog.LevelWarn, verb,
					slog.String(obs.AttrComponent, "router"),
					slog.String(labelRouterPool, p.name),
					slog.String("backend", b.url),
					slog.Uint64("ejections", b.ejections.Load()))
			}
		}
	}
	// Ride the probe pass with a stats scrape: the fleet aggregator's
	// rolling window advances at probe cadence.
	r.fleet.scrape(pctx, now)
}

// Routes builds the router's handler.
func (r *Router) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", r.handleDetect)
	mux.HandleFunc("POST /v1/ingest", r.handleIngest)
	mux.HandleFunc("POST /v1/reload", r.handleReload)
	mux.HandleFunc("GET /v1/backends", r.handleBackends)
	mux.HandleFunc("GET /v1/fleet", r.handleFleet)
	mux.HandleFunc("GET /v1/canary/report", r.handleCanaryReport)
	mux.HandleFunc("POST /v1/canary/promote", r.handlePromote)
	mux.HandleFunc("GET /debug/traces", r.handleTraces)
	mux.HandleFunc("GET /healthz", r.handleHealth)
	mux.Handle("GET /metrics", r.reg)
	return r.traceMiddleware(mux)
}

// statusWriter observes the relayed status so the root span can record
// server-class failures.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// traceMiddleware resolves each request's trace context (a caller's
// Traceparent or X-Trace-Id is kept so traces span caller, router, and
// backend; an ID is minted otherwise), opens the root route span, and
// echoes trace and span IDs on the response. With no Tracer configured
// the span calls are nil receivers — zero allocation, ID echo only.
func (r *Router) traceMiddleware(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		id, remoteParent, ok := obs.ParseTraceParent(req.Header.Get(obs.TraceParentHeader))
		if !ok {
			id = req.Header.Get(obs.TraceHeader)
		}
		if id == "" {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)
		ctx := obs.WithTraceID(req.Context(), id)
		ctx = obs.WithRemoteParent(ctx, remoteParent)
		ctx, span := r.tracer.StartSpan(ctx, stageRoute)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		if span != nil {
			span.SetAttr("path", req.URL.Path)
			w.Header().Set(obs.SpanHeader, span.ID())
		}
		next.ServeHTTP(sw, req.WithContext(ctx))
		if sw.status >= http.StatusInternalServerError {
			span.SetErrorString(http.StatusText(sw.status))
		}
		span.End()
	})
}

// forward sends the body to the pool's least-loaded backend, failing
// over to the next-best member on transport errors and retryable-coded
// responses. Healthy backends are tried first; once they are exhausted
// a desperate pass tries ejected ones too, so a transient mass
// ejection cannot black-hole traffic. The final response — success or
// a terminal error from the backend — is returned whole for
// byte-identical relay. A fully exhausted pool returns the last
// retryable response if any backend produced one, else ErrNoBackends.
func (r *Router) forward(ctx context.Context, pool *Pool, pathAndQuery, contentType string, body []byte) (*client.RawResponse, *Backend, error) {
	tried := map[*Backend]bool{}
	var lastShed *client.RawResponse
	var lastShedBackend *Backend
	first := true
	for _, desperate := range []bool{false, true} {
		for {
			b, release, ok := pool.acquire(tried, desperate)
			if !ok {
				break
			}
			if desperate {
				r.desperate.Inc()
			}
			if !first {
				r.failovers.Inc()
			}
			first = false
			tried[b] = true
			// One proxy child span per attempt: a failover leaves a failed
			// proxy span beside the successful one, so the retained trace
			// shows which backend was tried first and why it lost.
			spanCtx, span := r.tracer.StartSpan(ctx, stageProxy)
			if span != nil {
				span.SetAttr(labelBackend, b.url)
				span.SetAttr(labelRouterPool, pool.name)
			}
			raw, err := b.cli.PostRaw(spanCtx, pathAndQuery, contentType, body)
			release()
			if err != nil {
				span.SetError(err)
				span.End()
				if ctx.Err() != nil {
					return nil, nil, ctx.Err()
				}
				b.markFault(err)
				continue
			}
			if raw.Status >= http.StatusInternalServerError {
				span.SetErrorString(http.StatusText(raw.Status))
			}
			span.End()
			if raw.Retryable() {
				// The backend answered but is shedding or not ready;
				// remember its answer (it carries Retry-After) and try a
				// peer.
				lastShed, lastShedBackend = raw, b
				continue
			}
			return raw, b, nil
		}
	}
	if lastShed != nil {
		return lastShed, lastShedBackend, nil
	}
	r.noBackend.Inc()
	return nil, nil, fmt.Errorf("%w: pool %s has no admissible backend", ErrNoBackends, pool.name)
}

func (r *Router) handleDetect(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	body, err := readBody(req)
	if err != nil {
		r.writeError(w, req, bodyCode(err), err)
		return
	}
	r.proxied[routeDetect].Inc()
	r.differ.noteRequest()
	raw, _, err := r.forward(req.Context(), r.primary, "/v1/detect", contentTypeOf(req), body)
	if err != nil {
		r.writeError(w, req, api.CodeUnavailable, err)
		return
	}
	if r.canary != nil && raw.Status == http.StatusOK && r.differ.selects() {
		r.shadowed.Inc()
		r.differ.shadow(req.Context(), r, "/v1/detect", contentTypeOf(req), body,
			req.Header.Get(api.EvalScenarioHeader), req.Header.Get(api.EvalTruthHeader), raw)
	}
	relay(w, raw)
	r.proxyLat[routeDetect].Observe(time.Since(start))
}

// handleIngest proxies both JSON and binary-frame ingest bodies
// verbatim, preserving the query string (binary frames carry the shard
// in ?shard=).
func (r *Router) handleIngest(w http.ResponseWriter, req *http.Request) {
	start := time.Now()
	body, err := readBody(req)
	if err != nil {
		r.writeError(w, req, bodyCode(err), err)
		return
	}
	r.proxied[routeIngest].Inc()
	path := "/v1/ingest"
	if q := req.URL.RawQuery; q != "" {
		path += "?" + q
	}
	raw, _, err := r.forward(req.Context(), r.primary, path, contentTypeOf(req), body)
	if err != nil {
		r.writeError(w, req, api.CodeUnavailable, err)
		return
	}
	relay(w, raw)
	r.proxyLat[routeIngest].Observe(time.Since(start))
}

// handleReload broadcasts one reload to every primary backend. The
// model source is exactly one of fingerprint or path (or neither:
// retrain) — the same contract the backend enforces, checked here so
// an ambiguous request is rejected once instead of fanning out.
func (r *Router) handleReload(w http.ResponseWriter, req *http.Request) {
	var rr api.ReloadRequest
	if err := json.NewDecoder(req.Body).Decode(&rr); err != nil {
		r.writeError(w, req, api.CodeBadRequest, err)
		return
	}
	sources := 0
	for _, src := range []string{rr.Path, rr.Fingerprint, rr.PatchPath} {
		if src != "" {
			sources++
		}
	}
	if sources > 1 {
		r.writeError(w, req, api.CodeBadRequest,
			fmt.Errorf("%w: reload names more than one of path, fingerprint, patch_path; pick one", ErrBadRequest))
		return
	}
	out := api.FleetReload{}
	for _, b := range r.primary.backends {
		var res *client.ReloadResult
		var err error
		switch {
		case rr.Fingerprint != "":
			res, err = b.cli.ReloadModel(req.Context(), rr.Shard, rr.Fingerprint)
		case rr.PatchPath != "":
			res, err = b.cli.ReloadPatch(req.Context(), rr.Shard, rr.PatchPath)
		default:
			res, err = b.cli.Reload(req.Context(), rr.Shard, rr.Path)
		}
		br := api.BackendReload{Backend: b.url}
		if err != nil {
			br.Error = err.Error()
			out.Failed = true
		} else {
			br.Results = []api.ReloadResult{*res}
		}
		out.Results = append(out.Results, br)
	}
	if out.Failed && r.log != nil {
		r.log.LogAttrs(req.Context(), slog.LevelWarn, "fleet reload incomplete",
			slog.String(obs.AttrComponent, "router"),
			slog.String("shard", rr.Shard),
			slog.Int("backends", len(out.Results)))
	}
	writeJSON(w, http.StatusOK, out)
}

func (r *Router) handleBackends(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, api.FleetStatus{
		Primary: r.primary.Statuses(),
		Canary:  r.canary.Statuses(),
	})
}

func (r *Router) handleCanaryReport(w http.ResponseWriter, req *http.Request) {
	r.differ.DrainShadow()
	writeJSON(w, http.StatusOK, r.differ.Report())
}

// handlePromote reloads every primary backend onto the candidate
// artifact, gated on the canary report unless forced. The canary
// evidence must exist and pass; a blocked promotion answers 409 with
// the failed gates.
func (r *Router) handlePromote(w http.ResponseWriter, req *http.Request) {
	var pr api.PromoteRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		r.writeError(w, req, api.CodeBadRequest, err)
		return
	}
	fp := pr.Fingerprint
	if fp == "" {
		fp = r.cfg.Candidate
	}
	if fp == "" {
		r.writeError(w, req, api.CodeBadRequest, fmt.Errorf("%w: no candidate fingerprint", ErrConfig))
		return
	}
	r.differ.DrainShadow()
	report := r.differ.Report()
	if !report.Promotable && !pr.Force {
		r.writeError(w, req, api.CodePromotionBlocked,
			fmt.Errorf("%w: %v", ErrPromotionBlocked, report.Reasons))
		return
	}
	resp := api.PromoteResponse{Report: report}
	okBackends := 0
	for _, b := range r.primary.backends {
		br := api.BackendReload{Backend: b.url}
		shards := pr.Shards
		if len(shards) == 0 {
			shards = readyShards(b)
		}
		// Every shard is attempted even after one fails: stopping early
		// would widen the split, not contain it.
		var errs []string
		if len(shards) == 0 && !b.healthy.Load() {
			// No shard set was ever probed (or given) and the backend is
			// ejected: nothing can be promoted onto it, and counting the
			// no-op as success would hide a fleet split behind a 200.
			errs = append(errs, "backend unreachable, shard set unknown")
		}
		for _, shard := range shards {
			res, err := b.cli.ReloadModel(req.Context(), shard, fp)
			if err != nil {
				errs = append(errs, fmt.Sprintf("shard %s: %v", shard, err))
				continue
			}
			br.Results = append(br.Results, *res)
		}
		if len(errs) > 0 {
			br.Error = strings.Join(errs, "; ")
			resp.Failed = true
		} else {
			okBackends++
		}
		resp.Results = append(resp.Results, br)
	}
	if r.log != nil {
		level, verb := slog.LevelInfo, "candidate promoted"
		if resp.Failed {
			// A partial promotion leaves the fleet split across models —
			// operators must notice.
			level, verb = slog.LevelWarn, "promotion incomplete, fleet split across models"
		}
		r.log.LogAttrs(req.Context(), level, verb,
			slog.String(obs.AttrComponent, "router"),
			slog.String("fingerprint", fp),
			slog.Bool("forced", pr.Force),
			slog.Bool("failed", resp.Failed),
			slog.Int("backends", len(resp.Results)))
	}
	status := http.StatusOK
	if resp.Failed && okBackends == 0 {
		status = http.StatusBadGateway
	}
	writeJSON(w, status, resp)
}

// readyShards lists the shards the backend's last probe saw serving.
func readyShards(b *Backend) []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []string
	for _, st := range b.shards {
		if st.State == "ready" || st.Model != "" {
			out = append(out, st.Name)
		}
	}
	return out
}

func (r *Router) handleHealth(w http.ResponseWriter, req *http.Request) {
	for _, b := range r.primary.backends {
		if b.healthy.Load() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
	}
	r.writeError(w, req, api.CodeUnavailable, fmt.Errorf("%w: every primary backend is ejected", ErrNoBackends))
}

// relay writes the backend's response byte-identically.
func relay(w http.ResponseWriter, raw *client.RawResponse) {
	if raw.ContentType != "" {
		w.Header().Set("Content-Type", raw.ContentType)
	}
	if raw.RetryAfter != "" {
		w.Header().Set("Retry-After", raw.RetryAfter)
	}
	if raw.TraceID != "" {
		w.Header().Set(obs.TraceHeader, raw.TraceID)
	}
	w.WriteHeader(raw.Status)
	_, _ = w.Write(raw.Body)
}

func (r *Router) writeError(w http.ResponseWriter, req *http.Request, code api.Code, err error) {
	env := api.ErrorEnvelope{
		Code:      code,
		Error:     err.Error(),
		Retryable: code.Retryable(),
		TraceID:   obs.TraceID(req.Context()),
	}
	if code == api.CodeUnavailable || code == api.CodeOverloaded {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, code.HTTPStatus(), env)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// readBody reads a proxied request body, rejecting — never silently
// truncating — anything over the 64 MiB bound: one byte past the limit
// proves the body is oversized, and forwarding a truncated payload
// would surface as a confusing decode error on the backend (or worse,
// silently dropped trailing data).
func readBody(req *http.Request) ([]byte, error) {
	data, err := io.ReadAll(io.LimitReader(req.Body, defaultMaxBody+1))
	if err != nil {
		return nil, fmt.Errorf("%w: reading body: %v", ErrBadRequest, err)
	}
	if len(data) > defaultMaxBody {
		return nil, fmt.Errorf("%w: body exceeds %d bytes", ErrBodyTooLarge, defaultMaxBody)
	}
	return data, nil
}

// bodyCode maps a readBody failure onto its wire code.
func bodyCode(err error) api.Code {
	if errors.Is(err, ErrBodyTooLarge) {
		return api.CodeTooLarge
	}
	return api.CodeBadRequest
}

func contentTypeOf(req *http.Request) string {
	if ct := req.Header.Get("Content-Type"); ct != "" {
		return ct
	}
	return "application/json"
}
