package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a request's trace ID in
// both directions: accepted at ingress (a caller-supplied ID is kept so
// traces span services) and echoed on every response, success or error.
const TraceHeader = "X-Trace-Id"

// traceCtxKey keys the trace ID in a context.
type traceCtxKey struct{}

// WithTraceID returns ctx carrying id; an empty id returns ctx
// unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// TraceID returns the trace ID carried by ctx ("" if none). Reading is
// allocation-free — the lookup stops at the stored string.
//
//gridlint:zeroalloc
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// traceSeq is the trace-ID state: seeded once from crypto/rand, then
// advanced by a large odd constant per ID (a Weyl sequence), so every
// process mints a distinct, never-repeating stream without syscalls or
// locks on the request path.
var traceSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		traceSeq.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		// No entropy source: fall back to the clock. IDs stay unique
		// within the process, which is all tracing needs.
		traceSeq.Store(uint64(time.Now().UnixNano()))
	}
}

// mintID draws the next well-distributed 64-bit ID from the Weyl
// sequence. Shared by trace IDs and span IDs: both live in the same
// process-unique stream, so a span ID never collides with a trace ID
// either.
func mintID() uint64 {
	z := traceSeq.Add(0x9e3779b97f4a7c15) // golden-ratio Weyl increment
	// splitmix64 finalizer: consecutive sequence values become
	// well-distributed IDs.
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

const hexdigits = "0123456789abcdef"

// formatID renders an ID as 16 lowercase hex characters (one string
// allocation).
func formatID(z uint64) string {
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[z&0xf]
		z >>= 4
	}
	return string(buf[:])
}

// parseID is the inverse of formatID: exactly 16 lowercase hex digits.
func parseID(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var z uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			z = z<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			z = z<<4 | uint64(c-'a'+10)
		default:
			return 0, false
		}
	}
	return z, true
}

// NewTraceID mints a 16-hex-character trace ID: unique within the
// process, collision-resistant across processes via the random seed.
// One string allocation, minted only at request ingress — never on the
// per-sample hot path.
func NewTraceID() string {
	return formatID(mintID())
}
