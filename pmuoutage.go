// Package pmuoutage is a robust power-line outage detector for PMU
// (phasor measurement unit) data streams, reproducing Cordova-Garcia &
// Wang, "Robust Power Line Outage Detection with Unreliable Phasor
// Measurements" (ICDE 2017).
//
// The library detects and localises transmission-line outages from bus
// voltage phasors even when arbitrary subsets of the measurements are
// missing — PMU dropouts, PDC failures, or data lost at the outage
// location itself. It learns per-node subspace signatures from
// historical (or simulated) data rather than per-scenario classifiers,
// which is what makes it robust to missing entries.
//
// A complete round trip:
//
//	sys, err := pmuoutage.NewSystem(pmuoutage.Options{Case: "ieee14"})
//	if err != nil { ... }
//	samples, err := sys.SimulateOutage([]int{4}, 3) // 3 samples of line-4 outage
//	report, err := sys.Detect(samples[0])
//	// report.Outage == true, report.Lines == [{buses of line 4}]
//
// Everything is deterministic in Options.Seed. The heavy machinery —
// Newton–Raphson AC power flow, SVD subspace learning, detection-group
// formation — lives in internal packages; this package is the stable
// surface.
package pmuoutage

import (
	"context"
	"fmt"
	"math/rand"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/par"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/stream"
)

// Options configures NewSystem.
type Options struct {
	// Case names a built-in test system: "ieee14", "ieee30", "ieee57"
	// or "ieee118" (default "ieee14"). See Cases.
	Case string
	// Clusters is the number of PDC clusters the PMU network is grouped
	// into; 0 derives max(3, buses/10).
	Clusters int
	// TrainSteps is the length of the simulated training window per
	// scenario (default 40).
	TrainSteps int
	// Seed makes data generation and training deterministic (default 1).
	Seed int64
	// UseDC switches the power-flow substrate to the fast linear DC
	// approximation. The default is the full Newton–Raphson AC solver.
	UseDC bool
	// Detector overrides the detector configuration (advanced use).
	Detector detect.Config
	// Workers bounds the worker pool used by data generation, training
	// and DetectBatch (0 = GOMAXPROCS). Results are identical for every
	// worker count: the pipeline derives independent seeds per scenario
	// and assigns results by index.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.Case == "" {
		o.Case = "ieee14"
	}
	if o.TrainSteps <= 0 {
		o.TrainSteps = 40
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	return o
}

// Cases lists the built-in test system names.
func Cases() []string { return cases.Names() }

// Sample is one time instant of PMU data for all buses: per-unit voltage
// magnitudes, angles in radians, and the indices of buses whose
// measurements are missing.
type Sample struct {
	Vm, Va  []float64
	Missing []int
}

// Line describes one power line by its internal index and its endpoint
// bus numbers (1-based, as in the IEEE case data).
type Line struct {
	Index   int
	FromBus int
	ToBus   int
}

// Report is the outcome of one detection.
type Report struct {
	// Outage reports whether the sample contains at least one line outage.
	Outage bool
	// Lines is the identified outage set F̂.
	Lines []Line
	// NodeScores are the scaled subspace proximities per bus (lower =
	// closer to that bus's outage signatures).
	NodeScores []float64
	// DeviationEnergy is the anomaly energy behind the outage decision.
	DeviationEnergy float64
}

// System is a trained outage-detection system bound to one grid.
type System struct {
	opts Options
	g    *grid.Grid
	nw   *pmunet.Network
	data *dataset.Data
	det  *detect.Detector
}

// NewSystem builds the grid, simulates training data (normal operation
// plus every valid single-line outage), and trains the detector. It is
// NewSystemContext with a background context.
func NewSystem(opts Options) (*System, error) {
	return NewSystemContext(context.Background(), opts)
}

// NewSystemContext is NewSystem with cancellation: the simulation and
// training pipeline checks ctx between scenarios and returns its error
// early when cancelled. Parallelism is bounded by Options.Workers.
func NewSystemContext(ctx context.Context, opts Options) (*System, error) {
	opts = opts.withDefaults()
	g, err := cases.Load(opts.Case)
	if err != nil {
		return nil, err
	}
	clusters := opts.Clusters
	if clusters <= 0 {
		clusters = g.N() / 10
		if clusters < 3 {
			clusters = 3
		}
	}
	nw, err := pmunet.Build(g, clusters)
	if err != nil {
		return nil, err
	}
	data, err := dataset.GenerateContext(ctx, g, dataset.GenConfig{
		Steps: opts.TrainSteps, Seed: opts.Seed, UseDC: opts.UseDC, Workers: opts.Workers,
	})
	if err != nil {
		return nil, err
	}
	dcfg := opts.Detector
	dcfg.Workers = opts.Workers
	det, err := detect.TrainContext(ctx, data, nw, dcfg)
	if err != nil {
		return nil, err
	}
	return &System{opts: opts, g: g, nw: nw, data: data, det: det}, nil
}

// Buses returns the number of buses in the system.
func (s *System) Buses() int { return s.g.N() }

// Lines returns every line of the system with its endpoints.
func (s *System) Lines() []Line {
	out := make([]Line, s.g.E())
	for e := range out {
		a, b := s.g.Endpoints(grid.Line(e))
		out[e] = Line{Index: e, FromBus: s.g.Buses[a].ID, ToBus: s.g.Buses[b].ID}
	}
	return out
}

// ValidLines returns the indices of lines whose outage is detectable
// (removal neither islands the grid nor diverges the power flow).
func (s *System) ValidLines() []int {
	var out []int
	for _, e := range s.det.ValidLines() {
		out = append(out, int(e))
	}
	return out
}

// Clusters returns the PDC cluster partition as bus-index groups.
func (s *System) Clusters() [][]int {
	out := make([][]int, len(s.nw.Clusters))
	for i, c := range s.nw.Clusters {
		out[i] = append([]int(nil), c...)
	}
	return out
}

// Detect classifies one sample, which may have missing measurements.
func (s *System) Detect(sample Sample) (*Report, error) {
	if len(sample.Vm) != s.g.N() || len(sample.Va) != s.g.N() {
		return nil, fmt.Errorf("pmuoutage: sample has %d/%d values, grid has %d buses",
			len(sample.Vm), len(sample.Va), s.g.N())
	}
	ds := dataset.Sample{Vm: sample.Vm, Va: sample.Va}
	if len(sample.Missing) > 0 {
		m := pmunet.NoneMissing(s.g.N())
		for _, i := range sample.Missing {
			if i < 0 || i >= s.g.N() {
				return nil, fmt.Errorf("pmuoutage: missing index %d out of range %d", i, s.g.N())
			}
			m[i] = true
		}
		ds.Mask = m
	}
	r, err := s.det.Detect(ds)
	if err != nil {
		return nil, err
	}
	rep := &Report{
		Outage:          r.Outage,
		NodeScores:      r.NodeScores,
		DeviationEnergy: r.DeviationEnergy,
	}
	for _, e := range r.Lines {
		a, b := s.g.Endpoints(e)
		rep.Lines = append(rep.Lines, Line{Index: int(e), FromBus: s.g.Buses[a].ID, ToBus: s.g.Buses[b].ID})
	}
	return rep, nil
}

// DetectBatch classifies many samples over the worker pool configured by
// Options.Workers and returns one report per sample, in input order.
// The trained detector is read-only during detection, so the batch
// result is identical to calling Detect in a loop.
func (s *System) DetectBatch(samples []Sample) ([]*Report, error) {
	return s.DetectBatchContext(context.Background(), samples)
}

// DetectBatchContext is DetectBatch with cancellation: a cancelled
// context aborts the remaining samples and returns the context error.
func (s *System) DetectBatchContext(ctx context.Context, samples []Sample) ([]*Report, error) {
	return par.Map(ctx, s.opts.Workers, len(samples), func(_ context.Context, i int) (*Report, error) {
		return s.Detect(samples[i])
	})
}

// SimulateOutage generates n fresh test samples with the given lines out
// of service, using an independent random seed stream from training.
// Pass no lines for normal-operation samples.
func (s *System) SimulateOutage(lineIdx []int, n int) ([]Sample, error) {
	if n <= 0 {
		n = 1
	}
	var sc dataset.Scenario
	for _, e := range lineIdx {
		if e < 0 || e >= s.g.E() {
			return nil, fmt.Errorf("pmuoutage: line %d out of range %d", e, s.g.E())
		}
		sc = append(sc, grid.Line(e))
	}
	set, err := dataset.GenerateScenario(s.g, sc, dataset.GenConfig{
		Steps: n, Seed: s.opts.Seed + 99991, UseDC: s.opts.UseDC,
	})
	if err != nil {
		return nil, err
	}
	out := make([]Sample, set.T())
	for i, smp := range set.Samples {
		out[i] = Sample{Vm: smp.Vm, Va: smp.Va}
	}
	return out, nil
}

// Evaluate scores the detector on fresh samples of every valid
// single-line outage and returns the mean identification accuracy and
// false-alarm rate (Eq. 12 of the paper). perCase controls how many
// samples are drawn per outage case.
func (s *System) Evaluate(perCase int) (ia, fa float64, err error) {
	if perCase <= 0 {
		perCase = 5
	}
	var acc metrics.Accumulator
	for _, e := range s.det.ValidLines() {
		samples, err := s.SimulateOutage([]int{int(e)}, perCase)
		if err != nil {
			return 0, 0, err
		}
		for _, smp := range samples {
			r, err := s.Detect(smp)
			if err != nil {
				return 0, 0, err
			}
			var got []grid.Line
			for _, l := range r.Lines {
				got = append(got, grid.Line(l.Index))
			}
			acc.Add([]grid.Line{e}, got)
		}
	}
	return acc.IA(), acc.FA(), nil
}

// DrawMissing samples a missing-data pattern from the PMU-network
// reliability model of the paper (Eqs. 13–15): given a target
// system-wide reliability level r in (0, 1], every PMU (and its link to
// the PDC) fails independently with probability 1 − r^(1/L). It returns
// the missing bus indices; draws are deterministic in seed.
func (s *System) DrawMissing(systemReliability float64, seed int64) ([]int, error) {
	rel, err := pmunet.FromSystemReliability(systemReliability, s.g.N())
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(seed))
	mask := s.nw.SampleMask(rel, rng)
	var out []int
	for i, missing := range mask {
		if missing {
			out = append(out, i)
		}
	}
	return out, nil
}

// WithMissing returns a copy of the sample with the given bus indices
// marked missing — convenient for building unreliable-data scenarios.
func (smp Sample) WithMissing(buses ...int) Sample {
	out := Sample{Vm: smp.Vm, Va: smp.Va}
	out.Missing = append(append([]int(nil), smp.Missing...), buses...)
	return out
}

// Monitor wraps the online detection layer: feed samples as they arrive
// and receive debounced, confirmed outage events. Create one with
// System.NewMonitor.
type Monitor struct {
	sys *System
	mon *stream.Monitor
}

// Event is a confirmed outage event from a Monitor.
type Event struct {
	// Seq is the 1-based index of the confirming sample.
	Seq int
	// Latency is the number of samples from onset to confirmation.
	Latency int
	// Lines is the identified outage set at confirmation time.
	Lines []Line
}

// NewMonitor creates an online monitor over the trained detector.
// confirm is the number of consecutive positive samples needed before an
// event fires (default 3); cooldown suppresses duplicate events after a
// confirmation (default 10 samples).
func (s *System) NewMonitor(confirm, cooldown int) (*Monitor, error) {
	m, err := stream.NewMonitor(s.det, stream.Config{Confirm: confirm, Cooldown: cooldown})
	if err != nil {
		return nil, err
	}
	return &Monitor{sys: s, mon: m}, nil
}

// Ingest scores one sample; it returns a non-nil Event exactly when the
// sample confirms a new outage.
func (m *Monitor) Ingest(sample Sample) (*Event, error) {
	ds := dataset.Sample{Vm: sample.Vm, Va: sample.Va}
	if len(sample.Missing) > 0 {
		mask := pmunet.NoneMissing(m.sys.g.N())
		for _, i := range sample.Missing {
			if i < 0 || i >= m.sys.g.N() {
				return nil, fmt.Errorf("pmuoutage: missing index %d out of range %d", i, m.sys.g.N())
			}
			mask[i] = true
		}
		ds.Mask = mask
	}
	ev, err := m.mon.Ingest(ds)
	if err != nil {
		return nil, err
	}
	if ev == nil {
		return nil, nil
	}
	out := &Event{Seq: ev.Seq, Latency: ev.Latency()}
	for _, e := range ev.Lines {
		a, b := m.sys.g.Endpoints(e)
		out.Lines = append(out.Lines, Line{Index: int(e), FromBus: m.sys.g.Buses[a].ID, ToBus: m.sys.g.Buses[b].ID})
	}
	return out, nil
}

// Reset clears the monitor's streak and cooldown state.
func (m *Monitor) Reset() { m.mon.Reset() }
