// Package subspace implements the subspace machinery of §IV: learning a
// signature subspace per outage case from the SVD of its data matrix
// (Eq. 2), composing them into node-based union and intersection
// subspaces (Eq. 3), and estimating the proximity of a (possibly
// incomplete) test sample to a subspace using only the rows of a
// detection group (Eq. 9) with the ratio scaling of Eq. (11).
//
// All data are handled as deviations from the normal-operation mean:
// with the linear model X = Y⁺P of Eq. (1), a topology change rotates
// the operating point, so the deviation of an outage sample from the
// normal mean concentrates along a case-specific direction. Those
// directions are exactly what the SVD extracts. The normal-operation
// subspace S⁰ is the zero subspace in deviation space — proximity to it
// is simply the squared deviation magnitude — which makes Eq. (11) a
// well-defined ratio.
package subspace

import (
	"errors"
	"fmt"

	"pmuoutage/internal/mat"
)

// Subspace is a linear subspace of the feature space with an orthonormal
// basis stored column-wise (d rows, k columns). An empty basis (k = 0)
// is the zero subspace, used for S⁰.
type Subspace struct {
	basis *mat.Dense
}

// ErrNoData is returned when learning from an empty matrix.
var ErrNoData = errors.New("subspace: no data")

// Zero returns the zero subspace of dimension d — the paper's S⁰ in
// deviation coordinates.
func Zero(d int) *Subspace {
	return &Subspace{basis: mat.NewDense(d, 0)}
}

// FromBasis wraps an already-orthonormal basis. The matrix is used
// directly; callers must not mutate it afterwards.
func FromBasis(b *mat.Dense) *Subspace { return &Subspace{basis: b} }

// Dim returns the ambient dimension d.
func (s *Subspace) Dim() int { return s.basis.Rows() }

// Rank returns the subspace dimension k.
func (s *Subspace) Rank() int { return s.basis.Cols() }

// Basis returns the orthonormal basis (d x k). Callers must not mutate.
func (s *Subspace) Basis() *mat.Dense { return s.basis }

// Learn extracts the k-dimensional signature subspace from a data matrix
// X (features x time) of deviation samples via the SVD of Eq. (2),
// keeping the left singular vectors with the largest singular values.
// k is clamped to the numerical rank of X.
func Learn(x *mat.Dense, k int) (*Subspace, error) {
	d, t := x.Dims()
	if d == 0 || t == 0 {
		return nil, ErrNoData
	}
	if k <= 0 {
		k = 1
	}
	svd := mat.FactorSVD(x)
	r := svd.Rank(0)
	if k > r {
		k = r
	}
	if k == 0 {
		return Zero(d), nil
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return &Subspace{basis: svd.U.SelectCols(idx)}, nil
}

// Extend returns the smallest subspace containing s and the columns of
// x — the rank-one update primitive of incremental training. Each
// column of x is orthogonalised against the basis accumulated so far
// (s's columns first, kept verbatim) and appended as one new direction
// when independent, with the same two-pass modified Gram–Schmidt and
// dependence tolerance as mat.Orthonormalize. Extending the zero
// subspace is therefore exactly Orthonormalize, which is how Union is
// built; extending a trained signature subspace with fresh deviation
// directions is how model patches grow it without re-running the SVD
// over the historical data. s is not mutated.
func (s *Subspace) Extend(x *mat.Dense) (*Subspace, error) {
	if x.Rows() != s.Dim() {
		return nil, fmt.Errorf("subspace: Extend dimension mismatch %d vs %d", x.Rows(), s.Dim())
	}
	return &Subspace{basis: mat.ExtendOrthonormal(s.basis, x)}, nil
}

// Union returns the smallest subspace containing all the given
// subspaces: the paper's S_i^∪ over the outage subspaces of node i's
// lines. Bases are concatenated and absorbed into an empty basis by
// rank-one Extend updates — bit-identical to re-orthonormalising the
// concatenation, which is what earlier revisions did directly.
func Union(subs ...*Subspace) (*Subspace, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("subspace: Union of nothing")
	}
	d := subs[0].Dim()
	total := 0
	for _, s := range subs {
		if s.Dim() != d {
			return nil, fmt.Errorf("subspace: Union dimension mismatch %d vs %d", s.Dim(), d)
		}
		total += s.Rank()
	}
	if total == 0 {
		return Zero(d), nil
	}
	cat := mat.NewDense(d, total)
	j := 0
	for _, s := range subs {
		for c := 0; c < s.Rank(); c++ {
			cat.SetCol(j, s.basis.Col(c))
			j++
		}
	}
	return Zero(d).Extend(cat)
}

// Intersection returns the directions shared by all the given subspaces
// — the paper's S_i^∩. Exact intersections of generic signature
// subspaces are empty, so the implementation returns the near-common
// directions: eigenvectors of the averaged projector P̄ = (1/m) Σ U_j U_jᵀ
// with eigenvalue at least minShare (1.0 demands exact membership in all
// subspaces; the detector uses ~0.6). If no direction qualifies, the
// single most-shared direction is returned, matching the paper's intent
// that S_i^∩ captures "the impact of node i and all its possible
// outages".
func Intersection(minShare float64, subs ...*Subspace) (*Subspace, error) {
	if len(subs) == 0 {
		return nil, fmt.Errorf("subspace: Intersection of nothing")
	}
	d := subs[0].Dim()
	if minShare <= 0 || minShare > 1 {
		minShare = 0.6
	}
	for _, s := range subs {
		if s.Dim() != d {
			return nil, fmt.Errorf("subspace: Intersection dimension mismatch %d vs %d", s.Dim(), d)
		}
	}
	// The averaged projector P̄ = (1/m) Σ U_j U_jᵀ has its range inside
	// the span W of the union of the subspaces, so its eigenproblem can
	// be solved in W's coordinates: M = Wᵀ P̄ W is r×r with r = rank(W),
	// typically a handful, instead of the d×d ambient problem.
	w, err := Union(subs...)
	if err != nil {
		return nil, err
	}
	r := w.Rank()
	if r == 0 {
		return Zero(d), nil
	}
	wt := w.basis.T()
	m := mat.NewDense(r, r)
	nonzero := 0
	for _, s := range subs {
		if s.Rank() == 0 {
			continue
		}
		nonzero++
		c := wt.Mul(s.basis) // r x k
		m = m.AddMat(c.Mul(c.T()))
	}
	if nonzero == 0 {
		return Zero(d), nil
	}
	m = m.Scale(1 / float64(nonzero))
	svd := mat.FactorSVD(m)
	// M is symmetric PSD: singular values are its eigenvalues, in [0,1].
	var keep []int
	for i, v := range svd.S {
		if v >= minShare-1e-12 {
			keep = append(keep, i)
		}
	}
	if len(keep) == 0 {
		keep = []int{0} // most-shared direction fallback
	}
	return &Subspace{basis: w.basis.Mul(svd.U.SelectCols(keep))}, nil
}

// ResidualD projects a restricted vector xd (already indexed by the
// detection group) onto the row-restricted basis U_D and returns the
// residual xd − U_D (U_D)⁺ xd. For the zero subspace it returns a copy
// of xd. This is the building block detectors chain: first remove the
// normal-operation (load-variation) component, then measure the residual
// against an outage subspace.
func (s *Subspace) ResidualD(xd []float64, group []int) ([]float64, error) {
	if len(xd) != len(group) {
		return nil, fmt.Errorf("subspace: restricted vector length %d != group %d", len(xd), len(group))
	}
	out := make([]float64, len(xd))
	copy(out, xd)
	if s.Rank() == 0 {
		return out, nil
	}
	for _, i := range group {
		if i < 0 || i >= s.Dim() {
			return nil, fmt.Errorf("subspace: group index %d out of range %d", i, s.Dim())
		}
	}
	ud := s.basis.SelectRows(group)
	alpha := mat.PseudoInverse(ud).MulVec(out)
	fit := ud.MulVec(alpha)
	for i := range out {
		out[i] -= fit[i]
	}
	return out, nil
}

// ProjectOut returns the matrix whose columns are x's columns with their
// component in s removed (full-dimension projection, complete data).
// Used at training time to strip load variation from outage signatures.
func (s *Subspace) ProjectOut(x *mat.Dense) *mat.Dense {
	if s.Rank() == 0 {
		return x.Clone()
	}
	u := s.basis
	// x - U (Uᵀ x): basis is orthonormal in full dimension.
	ut := u.T()
	return x.SubMat(u.Mul(ut.Mul(x)))
}

// Proximity computes the Eq. (9) proximity of a deviation sample to the
// subspace using only the feature rows listed in group (the detection
// group D): the squared residual of projecting x_D onto the row-restricted
// basis U_D,
//
//	prox_S(x) = || x_D − U_D (U_D)⁺ x_D ||²₂ .
//
// For the zero subspace this degenerates to ||x_D||², the deviation
// energy — proximity to normal operation. group indexes features (not
// buses); callers map bus-level detection groups through the channel.
func (s *Subspace) Proximity(x []float64, group []int) (float64, error) {
	if len(x) != s.Dim() {
		return 0, fmt.Errorf("subspace: sample dim %d != %d", len(x), s.Dim())
	}
	if len(group) == 0 {
		return 0, fmt.Errorf("subspace: empty detection group")
	}
	xd := make([]float64, len(group))
	for k, i := range group {
		if i < 0 || i >= len(x) {
			return 0, fmt.Errorf("subspace: group index %d out of range %d", i, len(x))
		}
		xd[k] = x[i]
	}
	if s.Rank() == 0 {
		n := mat.Norm2(xd)
		return n * n, nil
	}
	ud := s.basis.SelectRows(group)
	// Least-squares coefficients alpha = U_D⁺ x_D via the pseudo-inverse
	// (U_D is not orthonormal after row selection).
	alpha := mat.PseudoInverse(ud).MulVec(xd)
	res := mat.Sub(xd, ud.MulVec(alpha))
	n := mat.Norm2(res)
	return n * n, nil
}

// Regressor returns the Eq. (9) regressor matrix
// Φ(S) = −(S(D)ᵀ)⁺ S(N\D)ᵀ, mapping detection-group coordinates to the
// complement rows, per the model-identification construction of [12].
// It is exposed for the ablation study comparing the literal regressor
// formulation against the projection residual used by Proximity.
func (s *Subspace) Regressor(group []int) (*mat.Dense, error) {
	if s.Rank() == 0 {
		return nil, fmt.Errorf("subspace: zero subspace has no regressor")
	}
	d := s.Dim()
	in := make([]bool, d)
	for _, i := range group {
		if i < 0 || i >= d {
			return nil, fmt.Errorf("subspace: group index %d out of range %d", i, d)
		}
		in[i] = true
	}
	var rest []int
	for i := 0; i < d; i++ {
		if !in[i] {
			rest = append(rest, i)
		}
	}
	sd := s.basis.SelectRows(group) // S(D): |D| x k
	sr := s.basis.SelectRows(rest)  // S(N\D): |rest| x k
	phi := mat.PseudoInverse(sd.T()).Mul(sr.T()).Scale(-1)
	return phi, nil
}

// RegressorProximity is the ablation variant of Proximity: it first
// reconstructs the complement rows with the Eq. (9) regressor, then
// measures the full-vector projection residual of the completed sample.
func (s *Subspace) RegressorProximity(x []float64, group []int) (float64, error) {
	if s.Rank() == 0 {
		return s.Proximity(x, group)
	}
	d := s.Dim()
	phi, err := s.Regressor(group)
	if err != nil {
		return 0, err
	}
	in := make([]bool, d)
	for _, i := range group {
		in[i] = true
	}
	var rest []int
	for i := 0; i < d; i++ {
		if !in[i] {
			rest = append(rest, i)
		}
	}
	xd := make([]float64, len(group))
	for k, i := range group {
		xd[k] = x[i]
	}
	full := make([]float64, d)
	for k, i := range group {
		full[i] = xd[k]
	}
	if len(rest) > 0 {
		// Φ has shape k x |rest| after the transposes; reconstruct via
		// xr = -Φᵀ ... the construction keeps x in the subspace's row
		// relation: S(rest)ᵀ xr ≈ -S(D)ᵀ xd, i.e. xr = Φᵀ xd.
		xr := phi.T().MulVec(xd)
		for k, i := range rest {
			full[i] = xr[k]
		}
	}
	// Full-dimension projection residual with the orthonormal basis.
	u := s.basis
	alpha := u.T().MulVec(full)
	res := mat.Sub(full, u.MulVec(alpha))
	n := mat.Norm2(res)
	return n * n, nil
}

// ScaledProximity applies Eq. (11): the union proximity scaled by the
// intersection/normal ratio,
//
//	p̂rox_{S_i^∪}(x) = prox_{S_i^∪}(x) · prox_{S_i^∩}(x) / prox_{S⁰}(x).
//
// A tiny floor keeps the ratio finite when the sample sits exactly on
// the normal operating point.
func ScaledProximity(union, inter, normal float64) float64 {
	const floor = 1e-18
	if normal < floor {
		normal = floor
	}
	return union * inter / normal
}
