package registry

import (
	"encoding/json"
	"errors"
	"io"
	"log/slog"
	"net/http"
	"strings"

	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

// maxArtifactBytes bounds a published artifact body (the IEEE test
// cases encode to well under a megabyte; 64 MiB leaves room for large
// grids without letting a bad client exhaust memory).
const maxArtifactBytes = 64 << 20

// Server serves a Store over HTTP:
//
//	GET  /healthz                   liveness
//	GET  /v1/models                 api.ModelList, publish order
//	GET  /v1/models/{fingerprint}   the artifact bytes; ETag is the
//	                                fingerprint, If-None-Match → 304
//	POST /v1/models                 publish an encoded artifact
type Server struct {
	store *Store
	log   *slog.Logger
}

// NewServer wraps the store. A nil logger disables logging.
func NewServer(store *Store, logger *slog.Logger) *Server {
	return &Server{store: store, log: logger}
}

// Routes builds the registry's handler.
func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/models", s.handleList)
	mux.HandleFunc("GET /v1/models/{fingerprint}", s.handleGet)
	mux.HandleFunc("POST /v1/models", s.handlePublish)
	return mux
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.List())
}

// handleGet serves one artifact. The ETag is the content fingerprint —
// identical to the path key — so a client that already holds the bytes
// revalidates for free: If-None-Match with the fingerprint's ETag (or
// "*") answers 304 with no body. Content under a fingerprint is
// immutable, which the Cache-Control header states outright.
func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	fp := r.PathValue("fingerprint")
	data, info, err := s.store.Get(fp)
	if err != nil {
		s.writeError(w, r, api.CodeUnknownModel, err)
		return
	}
	etag := `"` + info.Fingerprint + `"`
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "public, max-age=31536000, immutable")
	if match := r.Header.Get("If-None-Match"); matchesETag(match, etag) {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
}

func (s *Server) handlePublish(w http.ResponseWriter, r *http.Request) {
	data, err := io.ReadAll(io.LimitReader(r.Body, maxArtifactBytes+1))
	if err != nil {
		s.writeError(w, r, api.CodeBadRequest, err)
		return
	}
	if len(data) > maxArtifactBytes {
		s.writeError(w, r, api.CodeBadRequest, errTooLarge)
		return
	}
	info, err := s.store.PublishBytes(data)
	if err != nil {
		code := api.CodeBadModel
		if !errors.Is(err, ErrBadArtifact) {
			code = api.CodeInternal
		}
		s.writeError(w, r, code, err)
		return
	}
	if s.log != nil {
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "artifact published",
			slog.String(obs.AttrComponent, "registry"),
			slog.String("fingerprint", info.Fingerprint),
			slog.String("case", info.Case),
			slog.Int64("bytes", info.Bytes))
	}
	writeJSON(w, http.StatusCreated, info)
}

// errTooLarge rejects oversized publish bodies.
var errTooLarge = errors.New("registry: artifact exceeds size limit")

// matchesETag implements the subset of If-None-Match the registry's
// own client sends: "*" or a comma-separated list of (possibly weak)
// entity tags.
func matchesETag(header, etag string) bool {
	if header == "" {
		return false
	}
	if header == "*" {
		return true
	}
	for _, part := range strings.Split(header, ",") {
		part = strings.TrimSpace(part)
		part = strings.TrimPrefix(part, "W/")
		if part == etag {
			return true
		}
	}
	return false
}

// writeError emits the shared error envelope with the code's status.
func (s *Server) writeError(w http.ResponseWriter, r *http.Request, code api.Code, err error) {
	env := api.ErrorEnvelope{
		Code:      code,
		Error:     err.Error(),
		Retryable: code.Retryable(),
		TraceID:   r.Header.Get(obs.TraceHeader),
	}
	writeJSON(w, code.HTTPStatus(), env)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}
