// Command outagetrain trains an outage-detection model and writes it as
// an immutable, versioned artifact: the train half of the
// train-once/serve-many split. The artifact carries a format version, a
// SHA-256 content fingerprint, and every piece of learned state, so
// cmd/outaged can boot from it (-models), hot-swap onto it
// (POST /v1/reload), and any Go program can serve it via
// pmuoutage.DecodeModel + NewSystemFromModel — all without repeating
// the power-flow simulation or SVD training.
//
// Usage:
//
//	outagetrain -case ieee14 -o ieee14.model.json [-dc] [-steps 40] [-seed 1]
//	outagetrain -describe ieee14.model.json
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"

	"pmuoutage"
)

func main() {
	var (
		caseName = flag.String("case", "ieee14", "built-in test system to train on")
		out      = flag.String("o", "", "output artifact path (required unless -describe)")
		clusters = flag.Int("clusters", 0, "PDC clusters (0 = max(3, buses/10))")
		steps    = flag.Int("steps", 0, "training window length per scenario (0 = library default)")
		seed     = flag.Int64("seed", 1, "training seed")
		dc       = flag.Bool("dc", false, "use the linear DC power-flow substrate (faster)")
		workers  = flag.Int("workers", 0, "training worker pool (0 = GOMAXPROCS)")
		describe = flag.String("describe", "", "print a saved artifact's metadata and exit")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var err error
	switch {
	case *describe != "":
		err = runDescribe(os.Stdout, *describe)
	case *out == "":
		flag.Usage()
		os.Exit(2)
	default:
		opts := pmuoutage.Options{
			Case: *caseName, Clusters: *clusters, TrainSteps: *steps,
			Seed: *seed, UseDC: *dc, Workers: *workers,
		}
		err = runTrain(ctx, os.Stdout, opts, *out)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "outagetrain:", err)
		os.Exit(1)
	}
}

// runTrain trains the model and writes the sealed artifact.
func runTrain(ctx context.Context, w io.Writer, opts pmuoutage.Options, path string) error {
	m, err := pmuoutage.TrainModelContext(ctx, opts)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		_ = f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(w, "trained  %s (seed %d)\n", m.Case(), m.Options().Seed)
	fmt.Fprintf(w, "saved    %s\n", path)
	return describeModel(w, m)
}

// runDescribe prints a saved artifact's metadata after a full decode —
// so describing also verifies version, fingerprint, and structure.
func runDescribe(w io.Writer, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	m, err := pmuoutage.DecodeModel(f)
	if err != nil {
		return err
	}
	return describeModel(w, m)
}

func describeModel(w io.Writer, m *pmuoutage.Model) error {
	sys, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "case     %s\n", m.Case())
	fmt.Fprintf(w, "version  %d\n", m.FormatVersion())
	fmt.Fprintf(w, "model    %s\n", m.Fingerprint())
	fmt.Fprintf(w, "buses    %d\n", sys.Buses())
	fmt.Fprintf(w, "lines    %d (%d with detectable outages)\n", len(sys.Lines()), len(sys.ValidLines()))
	fmt.Fprintf(w, "clusters %d\n", len(sys.Clusters()))
	return nil
}
