package analysis

import (
	"go/ast"
	"go/types"
)

// LockSmell combines two sync-hygiene checks over the concurrent
// ingestion layer:
//
//  1. lock-by-value: receivers and parameters whose (non-pointer) type
//     contains a sync primitive — copying a struct with a mutex forks
//     the lock, so two goroutines can hold "the same" critical section.
//  2. defer-less unlock: a mutex locked in a function whose matching
//     Unlock is a plain statement rather than deferred. Any early
//     return or panic between the pair leaves the mutex held forever —
//     exactly the shape of bug fault-injection tests trip over.
var LockSmell = &Analyzer{
	Name: "locksmell",
	Doc:  "flag by-value sync copies and defer-less Lock/Unlock pairs",
	Run:  runLockSmell,
}

var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Pool": true, "Map": true,
}

func runLockSmell(pass *Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkLockByValue(pass, n)
				if n.Body != nil {
					checkDeferlessUnlock(pass, n.Body)
				}
				return true
			case *ast.FuncLit:
				checkDeferlessUnlock(pass, n.Body)
				return true
			}
			return true
		})
	}
	return nil
}

// checkLockByValue flags receiver and parameter declarations that copy
// sync primitives by value.
func checkLockByValue(pass *Pass, fd *ast.FuncDecl) {
	report := func(field *ast.Field, what string) {
		for _, name := range field.Names {
			t := pass.Info.TypeOf(name)
			if containsLock(t, nil) {
				pass.Report(field.Pos(), "%s %s passes %s by value; it contains a sync primitive — use a pointer", what, name.Name, t)
			}
		}
	}
	if fd.Recv != nil {
		for _, field := range fd.Recv.List {
			report(field, "receiver")
		}
	}
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			report(field, "parameter")
		}
	}
}

// containsLock reports whether a value of type t carries a sync
// primitive by value (pointers, slices, maps, and channels indirect and
// are therefore safe to copy).
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil {
		return false
	}
	if seen[t] {
		return false
	}
	if seen == nil {
		seen = map[types.Type]bool{}
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLock(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(u.Elem(), seen)
	}
	return false
}

// lockOp is one Lock/Unlock-family call found in a function body.
type lockOp struct {
	recv     string // rendered receiver expression, e.g. "c.mu"
	name     string // Lock, RLock, Unlock, RUnlock
	deferred bool
	pos      ast.Node
}

// checkDeferlessUnlock flags Lock/RLock calls whose pairing Unlock in
// the same function is a plain statement instead of a defer. Nested
// function literals are their own scopes and are skipped here (they are
// visited separately), except literals invoked directly by a defer —
// their unlocks count as deferred for the enclosing function.
func checkDeferlessUnlock(pass *Pass, body *ast.BlockStmt) {
	var ops []lockOp
	collectLockOps(pass, body, false, &ops)

	deferUnlocked := map[string]bool{}
	plainUnlocked := map[string]bool{}
	for _, op := range ops {
		if op.name == "Unlock" || op.name == "RUnlock" {
			if op.deferred {
				deferUnlocked[op.recv] = true
			} else {
				plainUnlocked[op.recv] = true
			}
		}
	}
	for _, op := range ops {
		if op.name != "Lock" && op.name != "RLock" {
			continue
		}
		if deferUnlocked[op.recv] || !plainUnlocked[op.recv] {
			continue
		}
		pass.Report(op.pos.Pos(), "%s.%s() is released by a plain %s.Unlock(); an early return or panic between them leaks the lock — defer the unlock or extract the critical section", op.recv, op.name, op.recv)
	}
}

func collectLockOps(pass *Pass, n ast.Node, deferred bool, ops *[]lockOp) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch node := node.(type) {
		case *ast.FuncLit:
			return false // separate scope, visited on its own
		case *ast.DeferStmt:
			if lit, ok := ast.Unparen(node.Call.Fun).(*ast.FuncLit); ok {
				collectLockOps(pass, lit.Body, true, ops)
				return false
			}
			if op, ok := asLockOp(pass, node.Call); ok {
				op.deferred = true
				*ops = append(*ops, op)
				return false
			}
			return true
		case *ast.CallExpr:
			if op, ok := asLockOp(pass, node); ok {
				op.deferred = deferred
				*ops = append(*ops, op)
			}
			return true
		}
		return true
	})
}

// asLockOp recognises a call to a sync.Mutex / sync.RWMutex locking
// method (including through embedding) and renders its receiver.
func asLockOp(pass *Pass, call *ast.CallExpr) (lockOp, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return lockOp{}, false
	}
	fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return lockOp{}, false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return lockOp{}, false
	}
	return lockOp{recv: types.ExprString(sel.X), name: fn.Name(), pos: call}, true
}
