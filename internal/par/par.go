// Package par is the deterministic parallel-execution layer behind the
// detector's offline pipeline: data generation fans out per scenario,
// training fans out per line and per node, and the reliability sweep
// shards its Monte Carlo trials (see DESIGN.md "Parallel execution").
//
// The package is stdlib-only and deliberately small. Its one structural
// guarantee is determinism: Map and ForEach assign results by input
// index, so the output of a parallel run is byte-identical to the
// sequential one as long as the per-item work is itself deterministic —
// which the pipeline arranges by splitting RNG seeds per item instead of
// sharing one stream. Worker counts therefore change wall-clock time,
// never results.
//
// Error semantics are "first error wins": the first failure is
// returned, remaining unstarted items are skipped, and the shared
// context is cancelled so in-flight items can stop early. A panicking item does not vanish into its worker
// goroutine: the panic is captured, transported back, and re-raised on
// the calling goroutine wrapped in a Panic value that records the item
// index and original payload.
package par

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Workers resolves a worker-count option: n itself when positive,
// otherwise GOMAXPROCS (the "0 = use every core" convention shared by
// every Workers field in the pipeline).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// Panic wraps a panic captured inside a worker so it can be re-raised on
// the calling goroutine without losing where it came from.
type Panic struct {
	// Index is the input index of the item whose function panicked.
	Index int
	// Value is the original panic payload.
	Value any
	// Stack is the worker goroutine's stack at recovery time.
	Stack []byte
}

// String formats the transported panic for the re-raise.
func (p Panic) String() string {
	return fmt.Sprintf("par: item %d panicked: %v\n%s", p.Index, p.Value, p.Stack)
}

// ForEach runs fn(ctx, i) for every i in [0, n) on at most workers
// goroutines (workers <= 0 selects GOMAXPROCS). The first error wins
// and is returned; if ctx is cancelled first, the context's error is.
// Scheduling stops at the first failure or cancellation; items already
// running are left to finish (their fn sees the cancelled context). A
// panic inside fn is re-raised on the caller's goroutine as a Panic
// value carrying the item index and the worker's stack.
func ForEach(ctx context.Context, workers, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return ctx.Err()
	}
	if err := ctx.Err(); err != nil {
		return err // pre-cancelled: schedule nothing
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		return forEachSeq(ctx, n, fn)
	}
	wctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		once     sync.Once
		firstErr error
		panics   []Panic
	)
	fail := func(err error) {
		// First error wins; the errors that in-flight items return after
		// they observe our own cancellation never displace it.
		once.Do(func() {
			firstErr = err
			cancel() // stop scheduling; in-flight items observe wctx
		})
	}

	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				func() {
					defer func() {
						if r := recover(); r != nil {
							mu.Lock()
							defer mu.Unlock()
							panics = append(panics, Panic{Index: i, Value: r, Stack: stack()})
							cancel()
						}
					}()
					if err := fn(wctx, i); err != nil {
						fail(err)
					}
				}()
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case next <- i:
		case <-wctx.Done():
			break feed
		}
	}
	close(next)
	wg.Wait()
	if len(panics) > 0 {
		// Re-raise the lowest-indexed panic so the failure is stable
		// across worker counts.
		min := panics[0]
		for _, p := range panics[1:] {
			if p.Index < min.Index {
				min = p
			}
		}
		panic(min)
	}
	if firstErr != nil {
		return firstErr
	}
	return ctx.Err()
}

// forEachSeq is the workers == 1 path: a plain loop on the calling
// goroutine — same semantics, no goroutines, and the reference order the
// equivalence tests compare parallel runs against.
func forEachSeq(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	for i := 0; i < n; i++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := runItem(ctx, i, fn); err != nil {
			return err
		}
	}
	return nil
}

// runItem calls fn for one item, normalising any panic into the same
// Panic wrapper the parallel path raises.
func runItem(ctx context.Context, i int, fn func(ctx context.Context, i int) error) error {
	defer func() {
		if r := recover(); r != nil {
			if p, ok := r.(Panic); ok {
				panic(p)
			}
			panic(Panic{Index: i, Value: r, Stack: stack()})
		}
	}()
	return fn(ctx, i)
}

// Map runs fn over [0, n) like ForEach and collects the results in input
// order: out[i] is fn's value for item i regardless of which worker
// finished first. On error the partial results are discarded.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEach(ctx, workers, n, func(ctx context.Context, i int) error {
		v, err := fn(ctx, i)
		if err != nil {
			return err
		}
		out[i] = v // exclusive index: no two items share i
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

func stack() []byte {
	buf := make([]byte, 16<<10)
	return buf[:runtime.Stack(buf, false)]
}
