// Package subspace is golden-test input for the dimcheck analyzer; the
// package is named subspace because dimcheck only engages on the
// numeric-core package names (subspace, mlr, ellipse).
package subspace

func unguarded(m [][]float64, i int) float64 {
	var s float64
	for _, v := range m[i] { // want `index into matrix m without a len\(\) guard`
		s += v
	}
	return s
}

func guarded(m [][]float64, i int) float64 {
	if i < 0 || i >= len(m) {
		return 0
	}
	var s float64
	for _, v := range m[i] {
		s += v
	}
	return s
}

func ranged(m [][]float64) float64 {
	var s float64
	for i := range m {
		s += m[i][0]
	}
	return s
}

func constIndex(m [][]float64) float64 {
	return m[0][0] // constant indices are compile-visible: not a finding
}
