// Cascade demo: why timely outage detection matters (§I of the paper).
// An initial line outage overloads its neighbours; if the operator never
// learns where the fault is, the failure propagates. The sooner the
// detector confirms and localises the outage, the sooner load shedding
// stops the cascade — this demo measures served load as a function of
// intervention delay, with the detection latency of the subspace
// detector (under missing data!) marked on the curve.
package main

import (
	"fmt"
	"log"

	"pmuoutage/internal/cascade"
	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/stream"
)

func main() {
	g := cases.IEEE14()

	// Tight N-1 margins: the grid is stressed, as in cascade studies.
	ratings, err := cascade.Derive(g, 1.2, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	// Trigger: the valid single-line outage with the deepest unmitigated
	// cascade — the scenario where detection speed matters most.
	trigger, depth := grid.Line(-1), 0
	for e := 0; e < g.E(); e++ {
		if !g.ConnectedWithout(grid.Line(e)) {
			continue
		}
		res, err := cascade.Run(g, ratings, []grid.Line{grid.Line(e)}, cascade.Options{})
		if err != nil {
			continue
		}
		if res.Depth() > depth {
			trigger, depth = grid.Line(e), res.Depth()
		}
	}
	if trigger < 0 {
		log.Fatal("no cascading trigger found")
	}
	a, b := g.Endpoints(trigger)
	fmt.Printf("stressed IEEE-14 grid (20%% N-1 margins), trigger: line %d (bus %d - bus %d), unmitigated cascade depth %d\n\n",
		trigger, g.Buses[a].ID, g.Buses[b].ID, depth)

	// How fast does the detector localise this outage when the failure
	// also silences the endpoint PMUs?
	train, err := dataset.Generate(g, dataset.GenConfig{Steps: 40, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		log.Fatal(err)
	}
	det, err := detect.Train(train, nw, detect.Config{})
	if err != nil {
		log.Fatal(err)
	}
	mon, err := stream.NewMonitor(det, stream.Config{Confirm: 3})
	if err != nil {
		log.Fatal(err)
	}
	outageStream, err := dataset.GenerateScenario(g, dataset.Scenario{trigger}, dataset.GenConfig{Steps: 20, Seed: 77})
	if err != nil {
		log.Fatal(err)
	}
	mask := nw.OutageLocationMask(trigger)
	latency := -1
	for _, s := range outageStream.Samples {
		ev, err := mon.Ingest(s.WithMask(mask))
		if err != nil {
			log.Fatal(err)
		}
		if ev != nil {
			latency = ev.Latency()
			var named []string
			correct := false
			for _, l := range ev.Lines {
				la, lb := g.Endpoints(l)
				named = append(named, fmt.Sprintf("%d(%d-%d)", l, g.Buses[la].ID, g.Buses[lb].ID))
				if l == trigger {
					correct = true
				}
			}
			fmt.Printf("detector (endpoint PMUs dark): confirmed after %d samples, identified %v (exact line named: %v)\n\n",
				latency, named, correct)
			break
		}
	}
	if latency < 0 {
		fmt.Println("detector did not confirm within the window")
		latency = 10
	}

	// Cascade outcome as a function of when the operator intervenes.
	fmt.Printf("%-22s %-14s %-12s %-10s\n", "intervention", "lines lost", "rounds", "load served")
	run := func(label string, intervene cascade.Intervention) *cascade.Result {
		res, err := cascade.Run(g, ratings, []grid.Line{trigger}, cascade.Options{Intervene: intervene})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s %-14d %-12d %.1f%%\n", label, len(res.Failed)-1, res.Depth(), 100*res.ServedFraction)
		return res
	}
	run("none (undetected)", nil)
	for _, delay := range []int{1, 2, 4} {
		d := delay
		run(fmt.Sprintf("after round %d", d), func(round int, gg *grid.Grid) bool {
			if round < d {
				return false
			}
			return cascade.ShedLoad(0.3, ratings)(round, gg)
		})
	}
	// At PMU rates (30-60 samples/s) the detector's confirmation latency
	// is a fraction of a second — well inside the first cascade round of
	// real systems (tens of seconds between trips). Note the operator
	// action itself sheds 30% of load, so "load served" mixes cascade
	// losses with deliberate shedding; the equipment saved (lines lost)
	// is the cleaner signal of early action.
	fmt.Printf("\ndetection latency was %d samples (~%.0f ms at 30 samples/s):\n", latency, float64(latency)/30*1000)
	fmt.Println("confirmation lands well inside cascade round 1, when intervention")
	fmt.Println("keeps the most lines in service and stops the spread earliest.")
}
