package dataset

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"sort"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/grid"
)

// fingerprint hashes every float of the generated data bit-exactly, in
// sequential order: the normal set, each outage set ascending by line,
// then the valid-line list. The golden constants below were produced by
// the pre-parallel (PR 1) sequential Generate, so these tests pin the
// refactor to the historical output, not just to itself.
func fingerprint(d *Data) string {
	h := sha256.New()
	add := func(set *Set) {
		for _, s := range set.Samples {
			for _, v := range s.Vm {
				binary.Write(h, binary.LittleEndian, math.Float64bits(v))
			}
			for _, v := range s.Va {
				binary.Write(h, binary.LittleEndian, math.Float64bits(v))
			}
		}
	}
	add(d.Normal)
	var lines []int
	for e := range d.Outages {
		lines = append(lines, int(e))
	}
	sort.Ints(lines)
	for _, e := range lines {
		binary.Write(h, binary.LittleEndian, int64(e))
		add(d.Outages[grid.Line(e)])
	}
	for _, e := range d.ValidLines {
		binary.Write(h, binary.LittleEndian, int64(e))
	}
	return fmt.Sprintf("%x", h.Sum(nil))[:16]
}

func TestGenerateGoldenFingerprint(t *testing.T) {
	if testing.Short() {
		t.Skip("AC generation in -short")
	}
	for _, tc := range []struct {
		name   string
		cfg    GenConfig
		golden string
	}{
		{"ieee14-ac-6", GenConfig{Steps: 6, Seed: 1}, "bade84976607297d"},
		{"ieee14-dc-10", GenConfig{Steps: 10, Seed: 1, UseDC: true}, "cb671e8c79319266"},
	} {
		for _, workers := range []int{0, 1, 8} {
			cfg := tc.cfg
			cfg.Workers = workers
			d, err := Generate(cases.IEEE14(), cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got := fingerprint(d); got != tc.golden {
				t.Errorf("%s workers=%d: fingerprint %s, want pre-refactor golden %s",
					tc.name, workers, got, tc.golden)
			}
		}
	}
}

func TestGenerateWorkersEquivalence(t *testing.T) {
	g := cases.IEEE14()
	cfg := smallConfig()
	cfg.Workers = 1
	seq, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Workers = 8
	parl, err := Generate(g, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seq.ValidLines, parl.ValidLines) {
		t.Fatalf("valid lines differ: %v vs %v", seq.ValidLines, parl.ValidLines)
	}
	if !reflect.DeepEqual(seq.Normal, parl.Normal) {
		t.Fatal("normal sets differ between worker counts")
	}
	for _, e := range seq.ValidLines {
		if !reflect.DeepEqual(seq.OutageSet(e), parl.OutageSet(e)) {
			t.Fatalf("line %d sets differ between worker counts", e)
		}
	}
}

func TestGenerateContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := GenerateContext(ctx, cases.IEEE14(), smallConfig()); err == nil {
		t.Fatal("cancelled context must fail generation")
	}
	if _, err := GenerateScenarioContext(ctx, cases.IEEE14(), nil, smallConfig()); err == nil {
		t.Fatal("cancelled context must fail scenario generation")
	}
}
