package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestUnitsCrossPackage pins the dependency-annotation path: frames
// declared on fields and functions in package a (read through
// Pass.PkgAST, never type-checked as the current package) constrain
// uses in package b.
func TestUnitsCrossPackage(t *testing.T) {
	mod := t.TempDir()
	write := func(rel, content string) {
		t.Helper()
		path := filepath.Join(mod, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module tmpunits\n\ngo 1.21\n")
	write("a/a.go", `package a

// Phasor is one measurement.
type Phasor struct {
	Vm float64 //gridlint:unit pu
	Va float64 //gridlint:unit rad
}

// Wrap normalizes an angle.
//
//gridlint:unit va rad
//gridlint:unit return rad
func Wrap(va float64) float64 { return va }
`)
	write("b/b.go", `package b

import "tmpunits/a"

// Mixup feeds the wrong frames across the package boundary.
//
//gridlint:unit deg deg
func Mixup(p *a.Phasor, deg float64) float64 {
	p.Va = deg        // deg into a rad field
	_ = a.Wrap(p.Vm)  // pu into a rad parameter
	return a.Wrap(deg) // deg into a rad parameter
}
`)
	loader, err := NewLoader(mod)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(filepath.Join(mod, "b"))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := RunPackage([]*Analyzer{Units}, pkg, "tmpunits")
	if err != nil {
		t.Fatal(err)
	}
	var msgs []string
	for _, d := range diags {
		msgs = append(msgs, d.Message)
	}
	joined := strings.Join(msgs, "\n")
	for _, want := range []string{
		"assigning deg value to a field declared rad",
		"passing pu value as parameter va, declared rad",
		"passing deg value as parameter va, declared rad",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("missing cross-package diagnostic %q; got:\n%s", want, joined)
		}
	}
	if len(diags) != 3 {
		t.Errorf("got %d diagnostics, want 3:\n%s", len(diags), joined)
	}
}
