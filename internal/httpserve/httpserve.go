// Package httpserve adapts the service layer to HTTP. Control-plane
// calls (detect, reload, shards, stats, health) speak JSON; streaming
// ingest speaks either JSON or the compact binary frame codec from
// internal/wire — POST /v1/ingest with Content-Type
// application/x-pmu-frame and ?shard= carries one encoded frame and
// skips the JSON hop entirely. Both transports land on the same
// service.Ingest path, so detection events are byte-identical across
// them (pinned by TestBinaryIngestMatchesJSON).
//
// The package exists so cmd/outaged, cmd/benchserve, and tests share
// one handler implementation instead of re-wiring routes per binary.
package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"strings"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/registry"
	"pmuoutage/internal/service"
	"pmuoutage/internal/wire"
)

// FrameContentType marks a POST /v1/ingest body as one binary wire
// frame (internal/wire layout); the shard is named by the ?shard=
// query parameter.
const FrameContentType = "application/x-pmu-frame"

// HTTP-layer metric names, registered on the service's registry so one
// /metrics page carries both views. Package-level snake_case consts
// with one registration site each (gridlint metricname).
const (
	metricHTTPRequests  = "pmu_http_requests_total"
	metricHTTPErrors    = "pmu_http_errors_total"
	metricHTTPSeconds   = "pmu_http_seconds"
	metricFrameDecode   = "pmu_frame_decode_seconds"
	metricTracesKept    = "pmu_traces_kept_total"
	metricTracesDropped = "pmu_traces_dropped_total"

	labelPath = "path"

	// Span stage labels owned by the HTTP layer: the root span covering
	// the whole exchange, and the response-encode child the detect
	// handler records (the shard pipeline owns queue/coalesce/detect).
	stageHTTP   = "http"
	stageEncode = "encode"
)

// routePaths are the daemon's endpoints; per-route HTTP series are
// pre-registered for exactly these, and requests to anything else
// record nothing (nil cells are no-ops).
var routePaths = []string{
	"/v1/detect", "/v1/ingest", "/v1/reload",
	"/v1/shards", "/v1/stats", "/healthz", "/metrics",
	"/debug/traces",
}

// ModelFetcher resolves a model artifact by content fingerprint — the
// seam the registry client plugs into so POST /v1/reload can name
// artifacts by fingerprint instead of daemon-local file paths.
// Implementations must verify the decoded model's fingerprint matches
// the requested one.
type ModelFetcher interface {
	Model(ctx context.Context, fingerprint string) (*pmuoutage.Model, error)
}

// Server adapts the service layer to HTTP.
type Server struct {
	svc     *service.Service
	timeout time.Duration // per-request deadline applied to detect/ingest
	logger  *slog.Logger  // nil disables access logs
	models  ModelFetcher  // nil: reload-by-fingerprint is rejected

	httpReqs    map[string]*obs.Counter
	httpErrs    map[string]*obs.Counter
	httpLat     map[string]*obs.Histogram
	frameDecode *obs.Histogram
}

// New builds a server over svc. timeout bounds each detect/ingest call;
// a nil logger disables access logs.
func New(svc *service.Service, timeout time.Duration, logger *slog.Logger) *Server {
	s := &Server{
		svc:      svc,
		timeout:  timeout,
		httpReqs: map[string]*obs.Counter{},
		httpErrs: map[string]*obs.Counter{},
		httpLat:  map[string]*obs.Histogram{},
	}
	if logger != nil {
		s.logger = logger.With(slog.String(obs.AttrComponent, "http"))
	}
	reg := svc.Metrics()
	for _, p := range routePaths {
		s.httpReqs[p] = reg.Counter(metricHTTPRequests, "HTTP requests served", labelPath, p)
		s.httpErrs[p] = reg.Counter(metricHTTPErrors, "HTTP requests answered with status >= 400", labelPath, p)
		s.httpLat[p] = reg.Histogram(metricHTTPSeconds, "request latency, ingress to last byte", labelPath, p)
	}
	s.frameDecode = reg.Histogram(metricFrameDecode, "binary ingest frame decode latency")
	if tr := svc.Tracer(); tr != nil {
		reg.AttachCounter(metricTracesKept, "traces retained by tail sampling", tr.KeptCounter())
		reg.AttachCounter(metricTracesDropped, "traces dropped by tail sampling", tr.DroppedCounter())
	}
	return s
}

// Routes builds the daemon's mux, wrapped in the telemetry middleware.
func (s *Server) Routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/detect", s.handleDetect)
	mux.HandleFunc("POST /v1/ingest", s.handleIngest)
	mux.HandleFunc("POST /v1/reload", s.handleReload)
	mux.HandleFunc("GET /v1/shards", s.handleShards)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.svc.Metrics())
	mux.HandleFunc("GET /debug/traces", s.handleTraces)
	return s.instrument(mux)
}

// instrument is the telemetry middleware: it resolves the request's
// trace ID (a caller's X-Trace-Id is kept so traces span services, one
// is minted otherwise), carries it on the context through every layer,
// echoes it on the response — success or error — and records the
// per-route counter, error counter, latency histogram, and one
// structured access line.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		// Traceparent (trace ID + caller's span) wins over the plain
		// X-Trace-Id; either way a caller-supplied ID is kept so
		// traces span services, and one is minted otherwise.
		var remoteParent uint64
		id := r.Header.Get(obs.TraceHeader)
		if tp, parent, ok := obs.ParseTraceParent(r.Header.Get(obs.TraceParentHeader)); ok {
			id, remoteParent = tp, parent
		}
		if id == "" {
			id = obs.NewTraceID()
		}
		w.Header().Set(obs.TraceHeader, id)
		ctx := obs.WithTraceID(r.Context(), id)
		ctx = obs.WithRemoteParent(ctx, remoteParent)
		ctx, span := s.svc.Tracer().StartSpan(ctx, stageHTTP)
		if span != nil {
			span.SetAttr(labelPath, r.URL.Path)
			w.Header().Set(obs.SpanHeader, span.ID())
		}
		r = r.WithContext(ctx)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		if sw.status >= 500 {
			span.SetErrorString(http.StatusText(sw.status))
		}
		span.End()
		elapsed := time.Since(start)
		path := r.URL.Path
		s.httpReqs[path].Inc()
		s.httpLat[path].Observe(elapsed)
		if sw.status >= 400 {
			s.httpErrs[path].Inc()
		}
		if lg := s.logger; lg != nil && lg.Enabled(r.Context(), slog.LevelInfo) {
			lg.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String(obs.AttrTraceID, id),
				slog.String("method", r.Method),
				slog.String("path", path),
				slog.Int("status", sw.status),
				slog.Duration("elapsed", elapsed))
		}
	})
}

// statusWriter captures the response status for metrics and logs.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// DebugMux serves the opt-in -debug-addr endpoints: pprof profiles and
// expvar counters on an explicit mux (never the default one, so the
// serving port exposes nothing extra).
func DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}

// The wire types are shared with every other transport participant
// through the public api package — the aliases below keep this
// package's identifiers working while guaranteeing there is exactly one
// definition of each body.
type (
	// DetectRequest is the body of POST /v1/detect.
	DetectRequest = api.DetectRequest
	// DetectResponse is its reply: one report per sample, in order.
	DetectResponse = api.DetectResponse
	// IngestRequest is the JSON body of POST /v1/ingest.
	IngestRequest = api.IngestRequest
	// IngestResponse carries the confirmed event, if the sample
	// triggered one. Binary-mode ingest answers with the same shape.
	IngestResponse = api.IngestResponse
	// ReloadRequest is the body of POST /v1/reload.
	ReloadRequest = api.ReloadRequest
	// ReloadResponse reports the shard's new incarnation after the swap.
	ReloadResponse = api.ReloadResult
	// ErrorResponse is the uniform error body, carrying the stable
	// machine-readable code clients branch on.
	ErrorResponse = api.ErrorEnvelope
)

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	var req DetectRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	reports, err := s.svc.DetectBatch(ctx, req.Shard, req.Samples)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	encStart := time.Now()
	writeJSON(w, http.StatusOK, DetectResponse{Shard: req.Shard, Reports: reports})
	encEnd := time.Now()
	s.svc.Counters(req.Shard).StageSeconds(service.StageEncode).Observe(encEnd.Sub(encStart))
	s.svc.Tracer().RecordSpan(r.Context(), stageEncode, encStart, encEnd, nil)
}

func (s *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	if strings.HasPrefix(r.Header.Get("Content-Type"), FrameContentType) {
		s.handleIngestFrame(w, r)
		return
	}
	var req IngestRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ev, err := s.svc.Ingest(ctx, req.Shard, req.Sample)
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.svc.Counters(req.Shard).Frames(service.IngestJSON).Inc()
	writeJSON(w, http.StatusOK, IngestResponse{Shard: req.Shard, Event: ev})
}

// handleIngestFrame is the binary ingest mode: the body is one encoded
// wire frame, the shard comes from ?shard=. Decode reuses pooled
// buffers and frames; the sample is scored synchronously on the same
// monitor path as JSON ingest.
func (s *Server) handleIngestFrame(w http.ResponseWriter, r *http.Request) {
	shard := r.URL.Query().Get("shard")
	buf := wire.GetBuffer()
	defer wire.PutBuffer(buf)
	if _, err := buf.ReadFrom(io.LimitReader(r.Body, int64(wire.MaxFrameBytes)+1)); err != nil {
		s.writeError(w, r, fmt.Errorf("%w: reading frame: %v", ErrBadRequest, err))
		return
	}
	f := wire.GetFrame()
	defer wire.PutFrame(f)
	decStart := time.Now()
	_, err := wire.DecodeFrame(buf.B, f)
	s.frameDecode.Observe(time.Since(decStart))
	if err != nil {
		s.writeError(w, r, fmt.Errorf("%w: %v", ErrBadRequest, err))
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	ev, err := s.svc.Ingest(ctx, shard, frameSample(f))
	if err != nil {
		s.writeError(w, r, err)
		return
	}
	s.svc.Counters(shard).Frames(service.IngestBinary).Inc()
	writeJSON(w, http.StatusOK, IngestResponse{Shard: shard, Event: ev})
}

// frameSample converts a decoded frame into a facade sample. The slices
// are shared with the frame — safe because Ingest is synchronous and
// the detector copies the channels it keeps.
func frameSample(f *wire.Frame) pmuoutage.Sample {
	s := pmuoutage.Sample{Vm: f.Vm, Va: f.Va}
	if f.Flags&wire.FlagMissing != 0 {
		for i := 0; i < f.N(); i++ {
			if f.IsMissing(i) {
				s.Missing = append(s.Missing, i)
			}
		}
	}
	return s
}

// SetModelSource wires a registry-backed artifact resolver into the
// reload path. Call before Routes; a nil fetcher (the default) makes
// reload-by-fingerprint answer a config error.
func (s *Server) SetModelSource(f ModelFetcher) { s.models = f }

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	var req ReloadRequest
	if err := decodeJSON(r.Body, &req); err != nil {
		s.writeError(w, r, err)
		return
	}
	ctx, cancel := s.requestCtx(r)
	defer cancel()
	if req.PatchPath != "" {
		if req.Path != "" || req.Fingerprint != "" {
			s.writeError(w, r, fmt.Errorf("%w: reload names a patch alongside a model source; pick one", ErrBadRequest))
			return
		}
		p, err := LoadPatch(req.PatchPath)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		if err := s.svc.ApplyPatch(ctx, req.Shard, p); err != nil {
			s.writeError(w, r, err)
			return
		}
	} else {
		m, err := s.resolveModel(ctx, req)
		if err != nil {
			s.writeError(w, r, err)
			return
		}
		if err := s.svc.Reload(ctx, req.Shard, m); err != nil {
			s.writeError(w, r, err)
			return
		}
	}
	for _, st := range s.svc.Shards() {
		if st.Name == req.Shard {
			writeJSON(w, http.StatusOK, ReloadResponse{Shard: st.Name, Generation: st.Generation, Model: st.Model})
			return
		}
	}
	s.writeError(w, r, fmt.Errorf("%w: %q vanished after reload", service.ErrUnknownShard, req.Shard))
}

// resolveModel turns a reload request into the model to swap in: nil
// (retrain from the shard's options), a file artifact, or a registry
// artifact pulled by fingerprint.
func (s *Server) resolveModel(ctx context.Context, req ReloadRequest) (*pmuoutage.Model, error) {
	switch {
	case req.Path != "" && req.Fingerprint != "":
		return nil, fmt.Errorf("%w: reload names both path and fingerprint; pick one", ErrBadRequest)
	case req.Path != "":
		return LoadModel(req.Path)
	case req.Fingerprint != "":
		if s.models == nil {
			return nil, fmt.Errorf("%w: reload by fingerprint needs a registry (-registry)", service.ErrConfig)
		}
		return s.models.Model(ctx, req.Fingerprint)
	default:
		return nil, nil
	}
}

// LoadModel reads one model artifact from disk.
func LoadModel(path string) (*pmuoutage.Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	defer func() { _ = f.Close() }()
	return pmuoutage.DecodeModel(f)
}

// LoadPatch reads one model patch artifact from disk.
func LoadPatch(path string) (*pmuoutage.Patch, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	defer func() { _ = f.Close() }()
	return pmuoutage.DecodePatch(f)
}

func (s *Server) handleShards(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Shards())
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.svc.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	if s.svc.Ready() {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
		return
	}
	writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no shard ready"})
}

// requestCtx applies the server's per-request deadline on top of the
// connection context.
func (s *Server) requestCtx(r *http.Request) (context.Context, context.CancelFunc) {
	if s.timeout <= 0 {
		return r.Context(), func() {}
	}
	return context.WithTimeout(r.Context(), s.timeout)
}

// ErrBadRequest wraps malformed request bodies (unparseable JSON,
// corrupt frames) so statusOf maps them to 400 without conflating them
// with facade sample validation.
var ErrBadRequest = errors.New("bad request")

func decodeJSON(body io.Reader, v any) error {
	dec := json.NewDecoder(body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return nil
}

// CodeOf maps the typed error taxonomy onto the stable wire codes the
// error envelope carries — the single classification both the HTTP
// status (via Code.HTTPStatus) and the clients' branch decisions derive
// from.
func CodeOf(err error) api.Code {
	switch {
	case errors.Is(err, service.ErrUnknownShard):
		return api.CodeUnknownShard
	case errors.Is(err, pmuoutage.ErrBadSample):
		return api.CodeBadSample
	case errors.Is(err, pmuoutage.ErrBadLine):
		return api.CodeBadLine
	case errors.Is(err, pmuoutage.ErrUnknownCase):
		return api.CodeUnknownCase
	case errors.Is(err, pmuoutage.ErrModelVersion):
		return api.CodeModelVersion
	case errors.Is(err, pmuoutage.ErrPatchBase):
		return api.CodePatchBase
	case errors.Is(err, pmuoutage.ErrBadPatch), errors.Is(err, pmuoutage.ErrPatchVersion):
		return api.CodeBadPatch
	case errors.Is(err, pmuoutage.ErrBadModel):
		return api.CodeBadModel
	case errors.Is(err, registry.ErrUnknownModel):
		return api.CodeUnknownModel
	case errors.Is(err, registry.ErrBadArtifact), errors.Is(err, registry.ErrMismatch):
		return api.CodeBadModel
	case errors.Is(err, registry.ErrFetch):
		return api.CodeUnavailable
	case errors.Is(err, service.ErrConfig):
		return api.CodeConfig
	case errors.Is(err, ErrBadRequest):
		return api.CodeBadRequest
	case errors.Is(err, service.ErrOverloaded):
		return api.CodeOverloaded
	case errors.Is(err, service.ErrUnavailable):
		return api.CodeUnavailable
	case errors.Is(err, service.ErrClosed):
		return api.CodeClosed
	case errors.Is(err, context.DeadlineExceeded):
		return api.CodeDeadline
	default:
		return api.CodeInternal
	}
}

// statusOf maps the typed error taxonomy onto HTTP statuses.
func statusOf(err error) int {
	return CodeOf(err).HTTPStatus()
}

func (s *Server) writeError(w http.ResponseWriter, r *http.Request, err error) {
	retry := service.Retryable(err)
	if retry {
		w.Header().Set("Retry-After", "1")
	}
	if lg := s.logger; lg != nil {
		lg.LogAttrs(r.Context(), slog.LevelWarn, "request failed",
			slog.String(obs.AttrTraceID, obs.TraceID(r.Context())),
			slog.String("path", r.URL.Path),
			slog.Bool("retryable", retry),
			slog.String("cause", err.Error()))
	}
	code := CodeOf(err)
	writeJSON(w, code.HTTPStatus(), ErrorResponse{Code: code, Error: err.Error(), Retryable: retry, TraceID: obs.TraceID(r.Context())})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	// The response status is already committed; an encode error here
	// only means the client went away.
	_ = json.NewEncoder(w).Encode(v)
}

// CompareReports asserts the served reports are identical to the
// library's, through the same JSON encoding the wire uses.
func CompareReports(got, want []*pmuoutage.Report) error {
	g, err := json.Marshal(got)
	if err != nil {
		return err
	}
	w, err := json.Marshal(want)
	if err != nil {
		return err
	}
	if !bytes.Equal(g, w) {
		return fmt.Errorf("served reports differ from direct DetectBatch:\n got %s\nwant %s", g, w)
	}
	return nil
}
