// Package ctxflow is golden-test input for the ctxflow analyzer.
package ctxflow

import (
	"context"
	"sync"

	"pmuoutage/internal/par"
)

func work() {}

// SpawnNoCtx fans out without a context: flagged.
func SpawnNoCtx() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // want `exported function SpawnNoCtx launches goroutines but has no context.Context parameter`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

// SpawnWithCtx fans out but takes a context: clean.
func SpawnWithCtx(ctx context.Context) {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	select {
	case <-done:
	case <-ctx.Done():
	}
}

// PoolNoCtx calls the worker pool without a context of its own: flagged
// even though it forwards a background context.
func PoolNoCtx(n int) error {
	return par.ForEach(context.Background(), 0, n, func(context.Context, int) error { // want `exported function PoolNoCtx fans out over the par worker pool`
		return nil
	})
}

// PoolWithCtx forwards its caller's context: clean.
func PoolWithCtx(ctx context.Context, n int) error {
	return par.ForEach(ctx, 0, n, func(context.Context, int) error { return nil })
}

// spawnUnexported is unexported: the contract applies to the API
// surface only.
func spawnUnexported() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}

// NestedLiteralSpawn hides the go statement inside a function literal;
// the literal shares the enclosing scope, so the exported function is
// still the one fanning out.
func NestedLiteralSpawn() {
	fn := func() {
		done := make(chan struct{})
		go func() { close(done) }() // want `exported function NestedLiteralSpawn launches goroutines`
		<-done
	}
	fn()
}

// Wrapper merely delegates to its Context variant: clean, the fan-out
// lives in the callee.
func Wrapper(n int) error {
	return PoolWithCtx(context.Background(), n)
}

const fixedBuf = 16

// BufferBounds exercises the channel-capacity check.
func BufferBounds(n int, ctx context.Context) {
	_ = make(chan int)           // unbuffered: clean
	_ = make(chan int, 8)        // literal constant: clean
	_ = make(chan int, fixedBuf) // named constant: clean
	_ = make(chan int, n)        // want `channel buffer capacity is not a compile-time constant`
	_ = make([]int, n)           // a slice, not a channel: clean
}

// SuppressedSpawn shows the audited escape hatch.
func SuppressedSpawn() {
	done := make(chan struct{})
	//gridlint:ignore ctxflow fixture: lifetime bound by the done channel
	go func() { close(done) }()
	<-done
}
