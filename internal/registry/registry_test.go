package registry

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"pmuoutage"
)

// testModel trains one small model per process and shares it — training
// dominates test time and the artifact is immutable.
var (
	modelOnce sync.Once
	model     *pmuoutage.Model
	modelErr  error
)

func testModel(t *testing.T) *pmuoutage.Model {
	t.Helper()
	modelOnce.Do(func() {
		model, modelErr = pmuoutage.TrainModel(pmuoutage.Options{
			Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true, Workers: 4,
		})
	})
	if modelErr != nil {
		t.Fatal(modelErr)
	}
	return model
}

func testServer(t *testing.T, dir string) (*Store, *httptest.Server) {
	t.Helper()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(NewServer(store, nil).Routes())
	t.Cleanup(ts.Close)
	return store, ts
}

// TestPublishGetRoundTrip: a published artifact comes back byte-exact
// under its fingerprint, and the list reports it.
func TestPublishGetRoundTrip(t *testing.T) {
	m := testModel(t)
	store, ts := testServer(t, "")
	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	info, err := c.Publish(context.Background(), m)
	if err != nil {
		t.Fatal(err)
	}
	if info.Fingerprint != m.Fingerprint() || info.Case != "ieee14" || info.Bytes <= 0 {
		t.Fatalf("publish info = %+v", info)
	}
	var want bytes.Buffer
	if err := m.Encode(&want); err != nil {
		t.Fatal(err)
	}
	data, _, err := store.Get(m.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, want.Bytes()) {
		t.Fatal("stored bytes differ from the encoded artifact")
	}
	list, err := c.List(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(list.Models) != 1 || list.Models[0].Fingerprint != m.Fingerprint() {
		t.Fatalf("list = %+v", list)
	}
	// Publishing the same content again is a no-op, not a duplicate.
	if _, err := c.Publish(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if store.Len() != 1 {
		t.Fatalf("store holds %d artifacts after duplicate publish, want 1", store.Len())
	}
}

// TestConditionalPull304: the first pull transfers the artifact; the
// repeat pull revalidates with If-None-Match and the server answers 304
// with no body.
func TestConditionalPull304(t *testing.T) {
	m := testModel(t)
	store, ts := testServer(t, "")
	if _, err := store.Publish(m); err != nil {
		t.Fatal(err)
	}
	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := c.Model(context.Background(), m.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fetched fingerprint %s, want %s", got.Fingerprint(), m.Fingerprint())
	}
	again, err := c.Model(context.Background(), m.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if again != got {
		t.Fatal("repeat pull did not return the cached model")
	}
	pulls, notModified := c.Stats()
	if pulls != 1 || notModified != 1 {
		t.Fatalf("pulls=%d notModified=%d, want 1 and 1", pulls, notModified)
	}

	// The raw HTTP exchange: If-None-Match with the ETag → 304, empty body.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/models/"+m.Fingerprint(), nil)
	req.Header.Set("If-None-Match", `"`+m.Fingerprint()+`"`)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotModified {
		t.Fatalf("status = %d, want 304", resp.StatusCode)
	}
	if resp.Header.Get("ETag") != `"`+m.Fingerprint()+`"` {
		t.Fatalf("ETag = %q", resp.Header.Get("ETag"))
	}
}

// TestFingerprintVerifiedOnReceipt: a registry that serves different
// content under a fingerprint is caught by the client.
func TestFingerprintVerifiedOnReceipt(t *testing.T) {
	m := testModel(t)
	var good bytes.Buffer
	if err := m.Encode(&good); err != nil {
		t.Fatal(err)
	}
	// A lying server: valid artifact bytes, but served under a wrong key.
	wrongKey := "0000000000000000000000000000000000000000000000000000000000000000"
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write(good.Bytes())
	}))
	defer ts.Close()
	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Model(context.Background(), wrongKey); !errors.Is(err, ErrMismatch) {
		t.Fatalf("got %v, want ErrMismatch", err)
	}
}

// TestUnknownModel404: fetching a missing fingerprint maps to
// ErrUnknownModel via the server's 404.
func TestUnknownModel404(t *testing.T) {
	_, ts := testServer(t, "")
	c, err := NewClient(ts.URL, nil)
	if err != nil {
		t.Fatal(err)
	}
	fp := "ffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffffff"
	if _, err := c.Model(context.Background(), fp); !errors.Is(err, ErrUnknownModel) {
		t.Fatalf("got %v, want ErrUnknownModel", err)
	}
}

// TestPublishRejectsGarbage: non-artifact bytes answer 400 with the
// bad_model code and do not enter the store.
func TestPublishRejectsGarbage(t *testing.T) {
	store, ts := testServer(t, "")
	resp, err := http.Post(ts.URL+"/v1/models", "application/json", bytes.NewReader([]byte(`{"not":"a model"}`)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", resp.StatusCode)
	}
	if store.Len() != 0 {
		t.Fatal("garbage entered the store")
	}
}

// TestDirPersistence: artifacts published into a directory-backed store
// survive a restart, loaded and re-verified from disk.
func TestDirPersistence(t *testing.T) {
	m := testModel(t)
	dir := t.TempDir()
	store, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	info, err := store.Publish(m)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, info.Fingerprint+artifactSuffix)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("artifact not persisted: %v", err)
	}

	reopened, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if reopened.Len() != 1 {
		t.Fatalf("reopened store holds %d artifacts, want 1", reopened.Len())
	}
	if _, _, err := reopened.Get(info.Fingerprint); err != nil {
		t.Fatal(err)
	}

	// A tampered file fails the reload verification loudly.
	if err := os.WriteFile(path, []byte(`{"broken":true}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := NewStore(dir); !errors.Is(err, ErrBadArtifact) {
		t.Fatalf("tampered artifact: got %v, want ErrBadArtifact", err)
	}
}
