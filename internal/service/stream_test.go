package service

import (
	"context"
	"encoding/json"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/internal/wire"
)

// sampleFrame packs a facade sample into a pooled wire frame.
func sampleFrame(t *testing.T, seq uint32, s pmuoutage.Sample) *wire.Frame {
	t.Helper()
	f := wire.GetFrame()
	if err := f.Pack(seq, s.Vm, s.Va, missingMask(s)); err != nil {
		wire.PutFrame(f)
		t.Fatal(err)
	}
	return f
}

// missingMask converts the facade's missing-index form into the codec's
// per-bus bitmap form.
func missingMask(s pmuoutage.Sample) []bool {
	if len(s.Missing) == 0 {
		return nil
	}
	m := make([]bool, len(s.Vm))
	for _, i := range s.Missing {
		m[i] = true
	}
	return m
}

// waitIngests polls until the shard's monitor has scored n samples —
// stream frames are consumed asynchronously.
func waitIngests(t *testing.T, svc *Service, shard string, n uint64) {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for svc.Stats()[shard].Ingests < n {
		if time.Now().After(deadline) {
			t.Fatalf("shard %q scored %d samples, want %d", shard, svc.Stats()[shard].Ingests, n)
		}
		time.Sleep(time.Millisecond)
	}
}

// streamEvent pairs a confirmed event with the wire sequence number of
// the frame that confirmed it, for byte-level comparison across
// transports.
type streamEvent struct {
	WireSeq uint32           `json:"wire_seq"`
	Event   *pmuoutage.Event `json:"event"`
}

// TestStreamIngestMatchesDirectIngest pins the tentpole contract: the
// same samples pushed as binary frames through StreamIngest and as
// plain values through Ingest yield byte-identical detection events.
// Both services boot from one trained artifact; the stream run's events
// arrive through Config.OnEvent, the direct run's as return values.
func TestStreamIngestMatchesDirectIngest(t *testing.T) {
	m, err := pmuoutage.TrainModel(quickOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var streamed []streamEvent
	cfgStream := Config{
		Shards:         []ShardSpec{{Name: "east", Model: m}},
		RestartBackoff: time.Millisecond,
		OnEvent: func(shard string, seq uint32, ev *pmuoutage.Event) {
			if shard != "east" {
				return
			}
			mu.Lock()
			streamed = append(streamed, streamEvent{WireSeq: seq, Event: ev})
			mu.Unlock()
		},
	}
	svcStream, err := New(context.Background(), cfgStream)
	if err != nil {
		t.Fatal(err)
	}
	defer svcStream.Close()
	svcDirect, err := New(context.Background(), Config{
		Shards:         []ShardSpec{{Name: "east", Model: m}},
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svcDirect.Close()
	waitState(t, svcStream, "east", "ready")
	waitState(t, svcDirect, "east", "ready")

	// An outage trace with missing measurements injected on every third
	// sample — the bitmap path must not perturb detection.
	sys := mustSystem(t, svcStream, "east")
	samples := testSamples(t, sys, 30)
	for i := range samples {
		if i%3 == 0 {
			samples[i] = samples[i].WithMissing(0, len(samples[i].Vm)-1)
		}
	}

	var direct []streamEvent
	for i, s := range samples {
		ev, err := svcDirect.Ingest(context.Background(), "east", s)
		if err != nil {
			t.Fatalf("direct ingest of sample %d: %v", i, err)
		}
		if ev != nil {
			direct = append(direct, streamEvent{WireSeq: uint32(i), Event: ev})
		}
	}
	if len(direct) == 0 {
		t.Fatal("outage trace confirmed no events; the equivalence check is vacuous")
	}

	for i, s := range samples {
		if err := svcStream.StreamIngest("east", sampleFrame(t, uint32(i), s)); err != nil {
			t.Fatalf("stream ingest of sample %d: %v", i, err)
		}
	}
	waitIngests(t, svcStream, "east", uint64(len(samples)))

	wantJSON, err := json.Marshal(direct)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	gotJSON, err := json.Marshal(streamed)
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if string(gotJSON) != string(wantJSON) {
		t.Fatalf("stream events diverge from direct ingest:\nstream: %s\ndirect: %s", gotJSON, wantJSON)
	}
	if shed := svcStream.Stats()["east"].Shed; shed != 0 {
		t.Fatalf("stream run shed %d frames", shed)
	}
}

// TestStreamIngestRejectsBadFrames: nil frames and frames sized for a
// different grid are refused as ErrBadSample before touching the queue.
func TestStreamIngestRejectsBadFrames(t *testing.T) {
	svc, err := New(context.Background(), Config{
		Shards:         []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")

	if err := svc.StreamIngest("east", nil); !isBadSample(err) {
		t.Fatalf("nil frame error = %v, want ErrBadSample", err)
	}
	f := wire.GetFrame()
	defer wire.PutFrame(f)
	f.Reset(3) // ieee14 serves 14 buses
	if err := svc.StreamIngest("east", f); !isBadSample(err) {
		t.Fatalf("wrong-size frame error = %v, want ErrBadSample", err)
	}
	if err := svc.StreamIngest("west", f); err == nil {
		t.Fatal("unknown shard accepted a frame")
	}
	if snap := svc.Stats()["east"]; snap.FramesStream != 0 {
		t.Fatalf("rejected frames were counted as admitted: %+v", snap)
	}
}

func isBadSample(err error) bool {
	return errors.Is(err, pmuoutage.ErrBadSample)
}

// TestStreamIngestAllocs pins the zero-allocation contract on the
// steady-state hot path: decoding a wire frame into a warm Frame and
// admitting it with StreamIngest allocates nothing. The stream consumer
// is parked on the streamHook seam so concurrent scoring cannot perturb
// the global allocation counter testing.AllocsPerRun reads.
func TestStreamIngestAllocs(t *testing.T) {
	var consumed atomic.Int64
	svc, err := New(context.Background(), Config{
		Shards:         []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		RestartBackoff: time.Millisecond,
		streamHook:     func(string, *wire.Frame) { consumed.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")
	sample := testSamples(t, mustSystem(t, svc, "east"), 1)[0]

	// AllocsPerRun invokes the body runs+1 times (one warmup). Each
	// invocation consumes a distinct pre-sized frame: ownership moves to
	// the service on admission, and decoding into a warm frame reuses
	// its slices.
	const runs = 100
	encs := make([][]byte, runs+1)
	frames := make([]*wire.Frame, runs+1)
	for i := range frames {
		f := sampleFrame(t, uint32(i), sample)
		enc, err := wire.AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		encs[i] = enc
		frames[i] = f
		if _, err := wire.DecodeFrame(enc, f); err != nil {
			t.Fatal(err)
		}
	}
	var i int
	var failed error
	allocs := testing.AllocsPerRun(runs, func() {
		f := frames[i]
		if _, err := wire.DecodeFrame(encs[i], f); err != nil {
			failed = err
			return
		}
		if err := svc.StreamIngest("east", f); err != nil {
			failed = err
			return
		}
		i++
	})
	if failed != nil {
		t.Fatal(failed)
	}
	if allocs != 0 {
		t.Fatalf("frame decode + StreamIngest allocated %.1f/op, want 0", allocs)
	}
	deadline := time.Now().Add(10 * time.Second)
	for consumed.Load() < runs+1 {
		if time.Now().After(deadline) {
			t.Fatalf("stream consumer saw %d of %d admitted frames", consumed.Load(), runs+1)
		}
		time.Sleep(time.Millisecond)
	}
}

// BenchmarkStreamIngest measures the decode+admit hot path with the
// consumer recycling frames — the per-sample cost of the collector
// transport without detector time.
func BenchmarkStreamIngest(b *testing.B) {
	svc, err := New(context.Background(), Config{
		Shards:         []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		RestartBackoff: time.Millisecond,
		streamHook:     func(_ string, f *wire.Frame) { wire.PutFrame(f) },
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	deadline := time.Now().Add(time.Minute)
	for !svc.Ready() {
		if time.Now().After(deadline) {
			b.Fatal("shard never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	sys, err := svc.System("east")
	if err != nil {
		b.Fatal(err)
	}
	samples, err := sys.SimulateOutage([]int{sys.ValidLines()[0]}, 1)
	if err != nil {
		b.Fatal(err)
	}
	proto := wire.GetFrame()
	defer wire.PutFrame(proto)
	if err := proto.Pack(7, samples[0].Vm, samples[0].Va, nil); err != nil {
		b.Fatal(err)
	}
	enc, err := wire.AppendFrame(nil, proto)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := wire.GetFrame()
		if _, err := wire.DecodeFrame(enc, f); err != nil {
			b.Fatal(err)
		}
		for {
			err := svc.StreamIngest("east", f)
			if err == nil {
				break
			}
			if err != ErrOverloaded {
				b.Fatal(err)
			}
		}
	}
}
