package service

import (
	"fmt"

	"pmuoutage"
	"pmuoutage/internal/comm"
	"pmuoutage/internal/wire"
)

// Stream-ingest validation errors. Minted once at package level so the
// zero-allocation admission path below returns bare sentinels.
var (
	errNilFrame   = fmt.Errorf("%w: nil frame", pmuoutage.ErrBadSample)
	errFrameBuses = fmt.Errorf("%w: frame bus count differs from the serving grid", pmuoutage.ErrBadSample)
)

// StreamIngest admits one decoded wire frame into the named shard's
// streaming monitor — the collector path: no HTTP, no JSON, no copy.
// On a nil return the service owns the frame and recycles it after
// scoring; on any error the caller keeps ownership (recycle or retry).
// Admission is non-blocking: a full stream queue sheds the frame with
// ErrOverloaded exactly like the detect path sheds batches. Scoring is
// asynchronous; confirmed events surface through Config.OnEvent. The
// monitor behind this is the same one Ingest drives, so detection
// events are byte-identical across transports.
//
//gridlint:zeroalloc
func (s *Service) StreamIngest(shardName string, f *wire.Frame) error {
	if f == nil {
		return errNilFrame
	}
	sh, err := s.shard(shardName)
	if err != nil {
		return err
	}
	st := sh.counters()
	if err := sh.availErr(); err != nil {
		st.Unavailable.Add(1)
		return err
	}
	if want := sh.buses.Load(); want != 0 && int32(f.N()) != want {
		return errFrameBuses
	}
	select {
	case sh.streamq <- f:
		st.Frames(IngestStream).Inc()
		return nil
	default:
		st.Shed.Add(1)
		return ErrOverloaded
	}
}

// CollectorSink adapts StreamIngest to the comm.Collector's sink
// signature: attach it with Collector.SetSink and every assembled
// sample flows device→PDC→collector→detector with no JSON hop. Frames
// are pooled; samples a shard cannot accept (not ready, shed, wrong
// size) are dropped — the collector's at-most-once emission contract
// has no retry lane, and the shard's Unavailable/Shed counters record
// every drop.
func (s *Service) CollectorSink(shardName string) func(comm.Assembled) {
	return func(a comm.Assembled) {
		f := wire.GetFrame()
		if err := f.Pack(uint32(a.Seq), a.Sample.Vm, a.Sample.Va, a.Sample.Mask); err != nil {
			wire.PutFrame(f)
			return
		}
		if err := s.StreamIngest(shardName, f); err != nil {
			wire.PutFrame(f)
		}
	}
}
