// Package recovery implements the missing-data recovery approaches the
// paper positions itself against (§II, [8]): exploiting the
// low-dimensionality of synchrophasor data to impute missing entries
// before running a complete-data application. Two tools are provided:
//
//   - SubspaceImpute: fill one sample's missing entries from the column
//     space of historical data (the online form used by recover-then-
//     classify pipelines);
//   - Complete: alternating-least-squares low-rank matrix completion of
//     a whole measurement window.
//
// The experiments use these to build the "recover, then classify"
// comparator whose latency and residual error motivate the paper's
// recovery-free design.
package recovery

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"pmuoutage/internal/mat"
)

// ErrNoObservations is returned when nothing is observed to recover from.
var ErrNoObservations = errors.New("recovery: no observed entries")

// Basis learns a rank-k orthonormal basis for the column space of the
// historical window X (features x time), the "low-dimensionality" prior
// of [8]. k is clamped to the numerical rank.
func Basis(x *mat.Dense, k int) (*mat.Dense, error) {
	d, t := x.Dims()
	if d == 0 || t == 0 {
		return nil, fmt.Errorf("recovery: empty history matrix")
	}
	if k <= 0 {
		k = 1
	}
	svd := mat.FactorSVD(x)
	if r := svd.Rank(0); k > r {
		k = r
	}
	if k == 0 {
		return nil, fmt.Errorf("recovery: history matrix is zero")
	}
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	return svd.U.SelectCols(idx), nil
}

// SubspaceImpute fills the missing entries of sample x (missing[i] true)
// by least-squares fitting the observed entries to the basis and reading
// the fit at the missing rows. The observed entries are returned
// unchanged. Returns ErrNoObservations if everything is missing.
func SubspaceImpute(basis *mat.Dense, x []float64, missing []bool) ([]float64, error) {
	d, k := basis.Dims()
	if len(x) != d || len(missing) != d {
		return nil, fmt.Errorf("recovery: sample/mask length %d/%d != basis rows %d", len(x), len(missing), d)
	}
	var obs []int
	for i, m := range missing {
		if !m {
			obs = append(obs, i)
		}
	}
	if len(obs) == 0 {
		return nil, ErrNoObservations
	}
	out := make([]float64, d)
	copy(out, x)
	if len(obs) == d {
		return out, nil
	}
	ub := basis.SelectRows(obs)
	xo := make([]float64, len(obs))
	for i, j := range obs {
		xo[i] = x[j]
	}
	// alpha = U_obs⁺ x_obs; rank deficiency (fewer observations than k)
	// is handled by the pseudo-inverse's minimum-norm solution.
	alpha := mat.PseudoInverse(ub).MulVec(xo)
	fit := basis.MulVec(alpha)
	for i, m := range missing {
		if m {
			out[i] = fit[i]
		}
	}
	_ = k
	return out, nil
}

// ImputeError returns the root-mean-square error of imputed entries
// against the ground truth, and the count of imputed entries.
func ImputeError(truth, imputed []float64, missing []bool) (float64, int) {
	var sum float64
	n := 0
	for i, m := range missing {
		if !m {
			continue
		}
		d := truth[i] - imputed[i]
		sum += d * d
		n++
	}
	if n == 0 {
		return 0, 0
	}
	return math.Sqrt(sum / float64(n)), n
}

// CompleteOptions configures the ALS matrix completion.
type CompleteOptions struct {
	Rank   int     // target rank (default 3)
	Iters  int     // ALS sweeps (default 50)
	Lambda float64 // ridge regularisation (default 1e-6)
	Seed   int64   // factor initialisation
	Tol    float64 // relative observed-residual stop (default 1e-8)
}

func (o CompleteOptions) withDefaults() CompleteOptions {
	if o.Rank <= 0 {
		o.Rank = 3
	}
	if o.Iters <= 0 {
		o.Iters = 50
	}
	if o.Lambda <= 0 {
		o.Lambda = 1e-6
	}
	if o.Tol <= 0 {
		o.Tol = 1e-8
	}
	return o
}

// Complete fills the missing entries of an observation matrix X
// (missing[i][j] true means X[i,j] was not observed) with a rank-r
// alternating-least-squares factorisation X ≈ U Vᵀ fitted to the
// observed entries. Observed entries are returned unchanged.
func Complete(x *mat.Dense, missing [][]bool, opts CompleteOptions) (*mat.Dense, error) {
	opts = opts.withDefaults()
	d, t := x.Dims()
	if len(missing) != d {
		return nil, fmt.Errorf("recovery: mask rows %d != %d", len(missing), d)
	}
	obsCount := 0
	for i := range missing {
		if len(missing[i]) != t {
			return nil, fmt.Errorf("recovery: mask row %d has %d cols, want %d", i, len(missing[i]), t)
		}
		for j := range missing[i] {
			if !missing[i][j] {
				obsCount++
			}
		}
	}
	if obsCount == 0 {
		return nil, ErrNoObservations
	}
	r := opts.Rank
	if r > d {
		r = d
	}
	if r > t {
		r = t
	}

	// Spectral initialisation: the SVD of the zero-filled matrix lands
	// the factors in the right basin — random initialisation makes ALS
	// stall in local minima on a sizeable fraction of instances. A dash
	// of seeded noise breaks exact ties in degenerate spectra.
	rng := rand.New(rand.NewSource(opts.Seed + 1))
	zf := x.Clone()
	for i := 0; i < d; i++ {
		for j := 0; j < t; j++ {
			if missing[i][j] {
				zf.Set(i, j, 0)
			}
		}
	}
	svd := mat.FactorSVD(zf)
	u := mat.NewDense(d, r)
	v := mat.NewDense(t, r)
	for k := 0; k < r; k++ {
		scale := math.Sqrt(svd.S[k])
		for i := 0; i < d; i++ {
			u.Set(i, k, svd.U.At(i, k)*scale+1e-6*rng.NormFloat64())
		}
		for j := 0; j < t; j++ {
			v.Set(j, k, svd.V.At(j, k)*scale+1e-6*rng.NormFloat64())
		}
	}

	// ALS is a biconvex method: each start can land on a different
	// stationary point. Run the spectral start plus a few random
	// restarts and keep the factors with the smallest observed
	// residual.
	bestU, bestV := u, v
	bestRes := math.Inf(1)
	for start := 0; start < 4; start++ {
		if start > 0 {
			for i := 0; i < d; i++ {
				for k := 0; k < r; k++ {
					u.Set(i, k, rng.NormFloat64())
				}
			}
			for j := 0; j < t; j++ {
				for k := 0; k < r; k++ {
					v.Set(j, k, rng.NormFloat64())
				}
			}
		}
		prev := math.Inf(1)
		for iter := 0; iter < opts.Iters; iter++ {
			// Fix V, solve each row of U on its observed columns, then
			// the transpose sweep.
			if err := alsSweepRows(x, missing, u, v, opts.Lambda); err != nil {
				return nil, err
			}
			if err := alsSweepCols(x, missing, u, v, opts.Lambda); err != nil {
				return nil, err
			}
			res := observedResidual(x, missing, u, v)
			if prev-res <= opts.Tol*(1+prev) {
				break
			}
			prev = res
		}
		res := observedResidual(x, missing, u, v)
		if res < bestRes {
			bestRes = res
			bestU = u.Clone()
			bestV = v.Clone()
		}
	}
	u, v = bestU, bestV

	out := x.Clone()
	for i := 0; i < d; i++ {
		for j := 0; j < t; j++ {
			if missing[i][j] {
				var s float64
				for k := 0; k < r; k++ {
					s += u.At(i, k) * v.At(j, k)
				}
				out.Set(i, j, s)
			}
		}
	}
	return out, nil
}

// alsSweepRows updates U row by row: u_i = argmin Σ_j∈obs (x_ij − u_i·v_j)².
func alsSweepRows(x *mat.Dense, missing [][]bool, u, v *mat.Dense, lambda float64) error {
	d, _ := x.Dims()
	_, r := u.Dims()
	for i := 0; i < d; i++ {
		a := mat.NewDense(r, r)
		b := make([]float64, r)
		cnt := 0
		for j := 0; j < x.Cols(); j++ {
			if missing[i][j] {
				continue
			}
			cnt++
			vj := v.RawRow(j)
			for p := 0; p < r; p++ {
				for q := 0; q < r; q++ {
					a.Add(p, q, vj[p]*vj[q])
				}
				b[p] += vj[p] * x.At(i, j)
			}
		}
		if cnt == 0 {
			continue // fully unobserved row: keep current factor
		}
		for p := 0; p < r; p++ {
			a.Add(p, p, lambda)
		}
		sol, err := mat.Solve(a, b)
		if err != nil {
			return fmt.Errorf("recovery: ALS row solve: %w", err)
		}
		u.SetRow(i, sol)
	}
	return nil
}

// alsSweepCols updates V row by row (one row per time column of X).
func alsSweepCols(x *mat.Dense, missing [][]bool, u, v *mat.Dense, lambda float64) error {
	_, t := x.Dims()
	_, r := u.Dims()
	for j := 0; j < t; j++ {
		a := mat.NewDense(r, r)
		b := make([]float64, r)
		cnt := 0
		for i := 0; i < x.Rows(); i++ {
			if missing[i][j] {
				continue
			}
			cnt++
			ui := u.RawRow(i)
			for p := 0; p < r; p++ {
				for q := 0; q < r; q++ {
					a.Add(p, q, ui[p]*ui[q])
				}
				b[p] += ui[p] * x.At(i, j)
			}
		}
		if cnt == 0 {
			continue
		}
		for p := 0; p < r; p++ {
			a.Add(p, p, lambda)
		}
		sol, err := mat.Solve(a, b)
		if err != nil {
			return fmt.Errorf("recovery: ALS column solve: %w", err)
		}
		v.SetRow(j, sol)
	}
	return nil
}

func observedResidual(x *mat.Dense, missing [][]bool, u, v *mat.Dense) float64 {
	var sum float64
	_, r := u.Dims()
	for i := 0; i < x.Rows(); i++ {
		for j := 0; j < x.Cols(); j++ {
			if missing[i][j] {
				continue
			}
			var s float64
			ui := u.RawRow(i)
			vj := v.RawRow(j)
			for k := 0; k < r; k++ {
				s += ui[k] * vj[k]
			}
			d := x.At(i, j) - s
			sum += d * d
		}
	}
	return sum
}
