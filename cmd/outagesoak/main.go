// Command outagesoak is the churn soak harness: it boots a full
// in-process fleet — model registry, N traced outaged backends, the
// router front-end — drives labelled detect and binary-frame ingest
// traffic at it, and injects churn mid-stream: rolling reloads, an
// incremental patch apply, an abrupt backend kill, a restart, and (with
// -canary) a gated canary promotion. Throughout, it samples per-stage
// latency quantiles and SLO signals from GET /v1/fleet and classifies
// every detect answer against locally computed truth.
//
// The run emits a structured report (default SOAK_report.json):
// the churn event log, a time series of isolation accuracy,
// false-alarm rate, per-hop p50/p95/p99 latencies, shed/error counts
// and availability, plus the slowest traces the router's tail sampler
// retained. In -smoke mode (wired to `make soak-smoke`) the run is
// short and the harness asserts its own acceptance: no dropped
// detects across a kill, accuracy held, and at least one retained
// multi-hop trace stitching route → proxy → backend stages.
//
// Example:
//
//	outagesoak -duration 60s -backends 3 -canary -out SOAK_report.json
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"math"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"sync"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/client"
	"pmuoutage/internal/httpserve"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/registry"
	"pmuoutage/internal/router"
	"pmuoutage/internal/service"
	"pmuoutage/internal/wire"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "traffic phase length")
		tick     = flag.Duration("tick", 2*time.Second, "report time-series resolution")
		nback    = flag.Int("backends", 2, "primary backend count (at least 2: one gets killed)")
		canary   = flag.Bool("canary", false, "add a canary backend and promote the candidate near the end")
		caseName = flag.String("case", "ieee14", "grid case every shard trains on")
		steps    = flag.Int("train-steps", 12, "training window length")
		seed     = flag.Int64("seed", 7, "training seed")
		out      = flag.String("out", "SOAK_report.json", "report output path")
		smoke    = flag.Bool("smoke", false, "short self-asserting run wired to `make soak-smoke`")
	)
	flag.Parse()
	cfg := soakConfig{
		Case:       *caseName,
		Backends:   *nback,
		Canary:     *canary,
		DurationMS: duration.Milliseconds(),
		TickMS:     tick.Milliseconds(),
		TrainSteps: *steps,
		Seed:       *seed,
		Smoke:      *smoke,
	}
	if *smoke {
		cfg.DurationMS = (6 * time.Second).Milliseconds()
		cfg.TickMS = time.Second.Milliseconds()
		cfg.Backends = 2
	}
	if cfg.Backends < 2 {
		log.Fatal("outagesoak: -backends must be at least 2 (the churn schedule kills one)")
	}
	rep, err := run(cfg)
	if rep != nil {
		if werr := writeReport(*out, rep); werr != nil {
			log.Fatalf("outagesoak: writing report: %v", werr)
		}
		fmt.Printf("outagesoak: report written to %s (%d ticks, %d events)\n", *out, len(rep.Series), len(rep.Events))
	}
	if err != nil {
		log.Fatalf("outagesoak: %v", err)
	}
	if *smoke {
		if err := assertSmoke(rep); err != nil {
			log.Fatalf("soak-smoke: %v", err)
		}
		fmt.Println("soak-smoke ok")
	}
}

// soakConfig is the run's shape, echoed into the report so a stored
// SOAK_report.json is self-describing.
type soakConfig struct {
	Case       string `json:"case"`
	Backends   int    `json:"backends"`
	Canary     bool   `json:"canary"`
	DurationMS int64  `json:"duration_ms"`
	TickMS     int64  `json:"tick_ms"`
	TrainSteps int    `json:"train_steps"`
	Seed       int64  `json:"seed"`
	Smoke      bool   `json:"smoke"`
}

// soakEvent is one churn action and its outcome.
type soakEvent struct {
	AtMS   int64  `json:"at_ms"`
	Kind   string `json:"kind"` // reload | patch | kill | restart | promote
	Detail string `json:"detail,omitempty"`
	Err    string `json:"error,omitempty"`
}

// stageRow is one hop's latency quantiles over the SLO window at a
// tick, read from the router's /v1/fleet stage histograms.
type stageRow struct {
	Count uint64  `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// tickRow is one time-series sample of the soak.
type tickRow struct {
	AtMS              int64               `json:"at_ms"`
	Detects           uint64              `json:"detects"`
	Errors            uint64              `json:"errors"`
	Shed              uint64              `json:"shed"`
	IngestFrames      uint64              `json:"ingest_frames"`
	IsolationAccuracy float64             `json:"isolation_accuracy"`
	FalseAlarmRate    float64             `json:"false_alarm_rate"`
	P50MS             float64             `json:"p50_ms"`
	P95MS             float64             `json:"p95_ms"`
	P99MS             float64             `json:"p99_ms"`
	Availability      float64             `json:"availability"`
	Stages            map[string]stageRow `json:"stages,omitempty"`
}

// soakTotals summarizes the whole run.
type soakTotals struct {
	Detects           uint64  `json:"detects"`
	Errors            uint64  `json:"errors"`
	Shed              uint64  `json:"shed"`
	IngestFrames      uint64  `json:"ingest_frames"`
	OutageRequests    uint64  `json:"outage_requests"`
	CorrectIsolations uint64  `json:"correct_isolations"`
	NormalRequests    uint64  `json:"normal_requests"`
	FalseAlarms       uint64  `json:"false_alarms"`
	IsolationAccuracy float64 `json:"isolation_accuracy"`
	FalseAlarmRate    float64 `json:"false_alarm_rate"`
	TracesKept        uint64  `json:"traces_kept"`
	TracesDropped     uint64  `json:"traces_dropped"`
}

// soakReport is the SOAK_report.json document.
type soakReport struct {
	Config        soakConfig  `json:"config"`
	StartMS       int64       `json:"start_ms"`
	DurationMS    int64       `json:"duration_ms"`
	Events        []soakEvent `json:"events"`
	Series        []tickRow   `json:"series"`
	Totals        soakTotals  `json:"totals"`
	SlowestTraces []api.Trace `json:"slowest_traces"`
	MultiHopTrace *api.Trace  `json:"multi_hop_trace,omitempty"`
}

// bucket accumulates one tick's observations.
type bucket struct {
	detects, errors, shed, frames uint64
	outage, outageOK              uint64
	normal, falseAlarm            uint64
	latMS                         []float64
	fleet                         *api.FleetHealth
}

// stats is the run-wide collector the traffic goroutines feed.
type stats struct {
	mu    sync.Mutex
	start time.Time
	tick  time.Duration
	ticks []*bucket
}

func (s *stats) at(now time.Time) *bucket {
	i := int(now.Sub(s.start) / s.tick)
	if i < 0 {
		i = 0
	}
	for len(s.ticks) <= i {
		s.ticks = append(s.ticks, &bucket{})
	}
	return s.ticks[i]
}

func (s *stats) detect(now time.Time, latency time.Duration, status int, outage, correct, alarmed bool, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.at(now)
	b.detects++
	b.latMS = append(b.latMS, float64(latency)/float64(time.Millisecond))
	switch {
	case err != nil || status >= http.StatusInternalServerError:
		b.errors++
		return
	case status == http.StatusTooManyRequests:
		b.shed++
		return
	}
	if outage {
		b.outage++
		if correct {
			b.outageOK++
		}
	} else {
		b.normal++
		if alarmed {
			b.falseAlarm++
		}
	}
}

func (s *stats) frame(now time.Time, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.at(now)
	if ok {
		b.frames++
	} else {
		b.errors++
	}
}

func (s *stats) fleetSnapshot(now time.Time, fh *api.FleetHealth) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.at(now).fleet = fh
}

func run(cfg soakConfig) (*soakReport, error) {
	soakDur := time.Duration(cfg.DurationMS) * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), soakDur+4*time.Minute)
	defer cancel()
	quiet := obs.NewTextLogger(io.Discard, slog.LevelDebug)

	// One trained artifact published once; every backend boots from the
	// registry by fingerprint. Reload and patch churn resolve to the
	// same weights (the patch is trained under the base seed, so it
	// reproduces the original signatures), keeping the local truth
	// valid across every churn event.
	fmt.Printf("outagesoak: training %s (%d steps)...\n", cfg.Case, cfg.TrainSteps)
	opts := pmuoutage.Options{Case: cfg.Case, TrainSteps: cfg.TrainSteps, UseDC: true, Seed: cfg.Seed, Workers: 2}
	model, err := pmuoutage.TrainModelContext(ctx, opts)
	if err != nil {
		return nil, err
	}
	fp := model.Fingerprint()

	regDir, err := os.MkdirTemp("", "outagesoak-registry-")
	if err != nil {
		return nil, err
	}
	defer func() { _ = os.RemoveAll(regDir) }()
	store, err := registry.NewStore(regDir)
	if err != nil {
		return nil, err
	}
	if _, err := store.Publish(model); err != nil {
		return nil, err
	}
	regSrv, err := newSoakServer("", registry.NewServer(store, quiet).Routes())
	if err != nil {
		return nil, err
	}
	defer regSrv.stop()

	patchPath, err := buildPatch(ctx, model, regDir, opts.Seed)
	if err != nil {
		return nil, err
	}

	// Backends, every one traced: tail sampling keeps slow and
	// erroneous traces plus a deterministic 1-in-1 sample so the
	// post-run trace assertions never race the sampler.
	total := cfg.Backends
	if cfg.Canary {
		total++
	}
	backends := make([]*soakBackend, 0, total)
	defer func() {
		for _, b := range backends {
			b.stop()
		}
	}()
	for i := 0; i < total; i++ {
		b, err := newSoakBackend(ctx, "", regSrv.base, fp, opts, quiet)
		if err != nil {
			return nil, err
		}
		backends = append(backends, b)
	}
	primaries := backends[:cfg.Backends]
	primaryURLs := make([]string, len(primaries))
	for i, b := range primaries {
		primaryURLs[i] = b.srv.base
	}
	rcfg := router.Config{
		Backends:    primaryURLs,
		ProbeEvery:  20 * time.Millisecond,
		FleetWindow: 3 * time.Duration(cfg.TickMS) * time.Millisecond,
		Logger:      quiet,
		Tracer:      obs.NewTracer(obs.TracerConfig{Capacity: 512, SlowThreshold: 50 * time.Millisecond, SampleEvery: 1}),
	}
	if cfg.Canary {
		rcfg.CanaryBackends = []string{backends[total-1].srv.base}
		rcfg.Candidate = fp
		rcfg.CanaryPercent = 50
		rcfg.MinPairs = 1
	}
	rt, err := router.New(ctx, rcfg)
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	rtSrv, err := newSoakServer("", rt.Routes())
	if err != nil {
		return nil, err
	}
	defer rtSrv.stop()

	// Known-truth traffic: one outage scenario and one normal-operation
	// scenario against the same model the fleet serves.
	sys, err := pmuoutage.NewSystemFromModel(model)
	if err != nil {
		return nil, err
	}
	line := sys.ValidLines()[0]
	outageSamples, err := sys.SimulateOutageContext(ctx, []int{line}, 2)
	if err != nil {
		return nil, err
	}
	normalSamples, err := sys.SimulateOutageContext(ctx, nil, 2)
	if err != nil {
		return nil, err
	}
	outageBody, err := json.Marshal(api.DetectRequest{Shard: "soak", Samples: outageSamples})
	if err != nil {
		return nil, err
	}
	normalBody, err := json.Marshal(api.DetectRequest{Shard: "soak", Samples: normalSamples})
	if err != nil {
		return nil, err
	}

	start := time.Now()
	st := &stats{start: start, tick: time.Duration(cfg.TickMS) * time.Millisecond}
	rep := &soakReport{Config: cfg, StartMS: start.UnixMilli()}
	tctx, tcancel := context.WithDeadline(ctx, start.Add(soakDur))
	defer tcancel()

	var wg sync.WaitGroup
	// Two detect drivers alternating outage/normal scenarios, one
	// binary-frame ingest streamer — all through the router.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; tctx.Err() == nil; i += 2 {
				outage := i%4 < 2 // alternate scenario pairs per driver
				body, scenario := normalBody, "normal"
				if outage {
					body, scenario = outageBody, "outage-line-"+strconv.Itoa(line)
				}
				t0 := time.Now()
				status, correct, alarmed, err := detectOnce(tctx, rtSrv.base, body, scenario, line, outage)
				if tctx.Err() != nil {
					return
				}
				st.detect(t0, time.Since(t0), status, outage, correct, alarmed, err)
				sleepCtx(tctx, 5*time.Millisecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		streamFrames(tctx, rtSrv.base, outageSamples[0], st)
	}()

	// The fleet sampler: one /v1/fleet snapshot per tick feeds the
	// per-hop latency series.
	wg.Add(1)
	go func() {
		defer wg.Done()
		tk := time.NewTicker(st.tick)
		defer tk.Stop()
		for {
			select {
			case <-tctx.Done():
				return
			case now := <-tk.C:
				var fh api.FleetHealth
				if err := getJSON(tctx, rtSrv.base+"/v1/fleet", &fh); err == nil {
					st.fleetSnapshot(now.Add(-st.tick/2), &fh)
				}
			}
		}
	}()

	// The churn schedule, as fractions of the traffic phase.
	note := func(kind, detail string, err error) {
		ev := soakEvent{AtMS: time.Since(start).Milliseconds(), Kind: kind, Detail: detail}
		if err != nil {
			ev.Err = err.Error()
		}
		rep.Events = append(rep.Events, ev)
		fmt.Printf("outagesoak: %6dms %-8s %s err=%v\n", ev.AtMS, kind, detail, err)
	}
	churn := func() {
		frac := func(f float64) bool {
			return sleepCtx(tctx, time.Duration(f*float64(soakDur))-time.Since(start))
		}
		// Rolling reload: one backend at a time, by fingerprint, via the
		// backend's own control plane (the router's /v1/reload is a
		// broadcast — rolling is the operator's safer cadence).
		if !frac(0.25) {
			return
		}
		for i, b := range primaries {
			_, err := b.cli.ReloadModel(tctx, "soak", fp)
			note("reload", fmt.Sprintf("backend %d by fingerprint", i), err)
		}
		// Patch apply, broadcast through the router.
		if !frac(0.45) {
			return
		}
		var fr api.FleetReload
		err := postJSON(tctx, rtSrv.base+"/v1/reload", api.ReloadRequest{Shard: "soak", PatchPath: patchPath}, &fr)
		if err == nil && fr.Failed {
			err = errors.New("patch reload incomplete on some backend")
		}
		note("patch", filepath.Base(patchPath), err)
		// Abrupt kill mid-traffic; the router must fail in-flight
		// requests over.
		if !frac(0.6) {
			return
		}
		addr := primaries[0].srv.addr
		note("kill", "backend 0 "+addr, primaries[0].kill())
		// Restart on the same address; the prober readmits it.
		if !frac(0.8) {
			return
		}
		nb, err := newSoakBackend(tctx, addr, regSrv.base, fp, opts, quiet)
		if err == nil {
			backends = append(backends, nb)
		}
		note("restart", "backend 0 "+addr, err)
		if cfg.Canary {
			if !frac(0.9) {
				return
			}
			var pr api.PromoteResponse
			err := postJSON(tctx, rtSrv.base+"/v1/canary/promote", api.PromoteRequest{}, &pr)
			if err == nil && pr.Failed {
				err = errors.New("promotion incomplete on some backend")
			}
			note("promote", fp[:12], err)
		}
	}
	churn()
	<-tctx.Done()
	wg.Wait()
	rep.DurationMS = time.Since(start).Milliseconds()

	buildSeries(st, rep)
	kept, dropped := rcfg.Tracer.KeptCounter().Load(), rcfg.Tracer.DroppedCounter().Load()
	rep.Totals.TracesKept, rep.Totals.TracesDropped = kept, dropped
	rep.SlowestTraces = slowestTraces(rcfg.Tracer.Traces(), 5)
	rep.MultiHopTrace = findMultiHop(ctx, rtSrv.base, rcfg.Tracer.Traces())
	return rep, nil
}

// detectOnce posts one labelled detect through the router and
// classifies the answer: for outage traffic, correct means the
// response confirms an outage naming the true line; for normal
// traffic, alarmed means any report claims an outage.
func detectOnce(ctx context.Context, base string, body []byte, scenario string, line int, outage bool) (status int, correct, alarmed bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/detect", bytes.NewReader(body))
	if err != nil {
		return 0, false, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(api.EvalScenarioHeader, scenario)
	if outage {
		req.Header.Set(api.EvalTruthHeader, strconv.Itoa(line))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, false, false, err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, false, false, err
	}
	if resp.StatusCode != http.StatusOK {
		return resp.StatusCode, false, false, nil
	}
	var out api.DetectResponse
	if err := json.Unmarshal(data, &out); err != nil {
		return resp.StatusCode, false, false, err
	}
	for _, r := range out.Reports {
		if r == nil || !r.Outage {
			continue
		}
		alarmed = true
		for _, l := range r.Lines {
			if l.Index == line {
				correct = true
			}
		}
	}
	return resp.StatusCode, correct, alarmed, nil
}

// streamFrames pushes binary wire frames through the router's ingest
// route at a steady cadence — the collector-stream side of the soak.
func streamFrames(ctx context.Context, base string, sample pmuoutage.Sample, st *stats) {
	seq := uint32(1)
	for ctx.Err() == nil {
		f := wire.GetFrame()
		err := f.Pack(seq, sample.Vm, sample.Va, nil)
		var enc []byte
		if err == nil {
			enc, err = wire.AppendFrame(nil, f)
		}
		wire.PutFrame(f)
		if err != nil {
			st.frame(time.Now(), false)
			return
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ingest?shard=soak", bytes.NewReader(enc))
		if err != nil {
			return
		}
		req.Header.Set("Content-Type", httpserve.FrameContentType)
		t0 := time.Now()
		resp, err := http.DefaultClient.Do(req)
		if ctx.Err() != nil {
			return
		}
		ok := err == nil && resp.StatusCode == http.StatusOK
		if err == nil {
			_, _ = io.Copy(io.Discard, resp.Body)
			_ = resp.Body.Close()
		}
		st.frame(t0, ok)
		seq++
		sleepCtx(ctx, 10*time.Millisecond)
	}
}

// buildPatch trains an identity patch (base seed reproduces the
// original signatures) for the first valid line and encodes it next to
// the registry dir, so the patch-apply churn exercises the real reload
// path without changing the model the truth was computed against.
func buildPatch(ctx context.Context, model *pmuoutage.Model, dir string, seed int64) (string, error) {
	sys, err := pmuoutage.NewSystemFromModel(model)
	if err != nil {
		return "", err
	}
	p, err := pmuoutage.TrainModelPatchContext(ctx, model, pmuoutage.PatchSpec{
		Lines: []int{sys.ValidLines()[0]},
		Seed:  seed,
	})
	if err != nil {
		return "", err
	}
	path := filepath.Join(dir, "soak-patch.bin")
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := p.Encode(f); err != nil {
		_ = f.Close()
		return "", err
	}
	return path, f.Close()
}

// buildSeries folds the tick buckets into the report's time series and
// totals.
func buildSeries(st *stats, rep *soakReport) {
	st.mu.Lock()
	defer st.mu.Unlock()
	tot := &rep.Totals
	for i, b := range st.ticks {
		row := tickRow{
			AtMS:         int64(i+1) * rep.Config.TickMS,
			Detects:      b.detects,
			Errors:       b.errors,
			Shed:         b.shed,
			IngestFrames: b.frames,
		}
		if b.outage > 0 {
			row.IsolationAccuracy = float64(b.outageOK) / float64(b.outage)
		}
		if b.normal > 0 {
			row.FalseAlarmRate = float64(b.falseAlarm) / float64(b.normal)
		}
		row.P50MS, row.P95MS, row.P99MS = quantiles(b.latMS)
		if b.fleet != nil {
			row.Availability = b.fleet.Availability
			row.Stages = map[string]stageRow{}
			for stage, h := range b.fleet.Stages {
				row.Stages[stage] = stageRow{
					Count: h.Count,
					P50MS: h.Quantile(0.50) * 1e3,
					P95MS: h.Quantile(0.95) * 1e3,
					P99MS: h.Quantile(0.99) * 1e3,
				}
			}
		}
		rep.Series = append(rep.Series, row)
		tot.Detects += b.detects
		tot.Errors += b.errors
		tot.Shed += b.shed
		tot.IngestFrames += b.frames
		tot.OutageRequests += b.outage
		tot.CorrectIsolations += b.outageOK
		tot.NormalRequests += b.normal
		tot.FalseAlarms += b.falseAlarm
	}
	if tot.OutageRequests > 0 {
		tot.IsolationAccuracy = float64(tot.CorrectIsolations) / float64(tot.OutageRequests)
	}
	if tot.NormalRequests > 0 {
		tot.FalseAlarmRate = float64(tot.FalseAlarms) / float64(tot.NormalRequests)
	}
}

// quantiles returns p50/p95/p99 of the sample set in place.
func quantiles(xs []float64) (p50, p95, p99 float64) {
	if len(xs) == 0 {
		return 0, 0, 0
	}
	sort.Float64s(xs)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(xs)))) - 1
		if i < 0 {
			i = 0
		}
		return xs[i]
	}
	return at(0.50), at(0.95), at(0.99)
}

// slowestTraces returns the n longest retained traces.
func slowestTraces(traces []api.Trace, n int) []api.Trace {
	sort.Slice(traces, func(i, j int) bool { return traces[i].DurationNS > traces[j].DurationNS })
	if len(traces) > n {
		traces = traces[:n]
	}
	return traces
}

// findMultiHop hunts the router's retained ring for a trace whose
// merged view (GET /debug/traces?id=) spans the route, proxy, and
// backend stages — the cross-process acceptance artifact.
func findMultiHop(ctx context.Context, base string, traces []api.Trace) *api.Trace {
	for i, tr := range traces {
		if i >= 25 {
			break
		}
		var merged api.Trace
		if err := getJSON(ctx, base+"/debug/traces?id="+tr.TraceID, &merged); err != nil {
			continue
		}
		stages := map[string]bool{}
		for _, s := range merged.Spans {
			stages[s.Stage] = true
		}
		if stages["route"] && stages["proxy"] && stages["http"] && stages["detect"] {
			return &merged
		}
	}
	return nil
}

// assertSmoke is the acceptance gate `make soak-smoke` runs.
func assertSmoke(rep *soakReport) error {
	kinds := map[string]int{}
	for _, ev := range rep.Events {
		if ev.Err == "" {
			kinds[ev.Kind]++
		}
	}
	if kinds["reload"] == 0 {
		return errors.New("no successful reload event")
	}
	if kinds["kill"] == 0 {
		return errors.New("no backend kill event")
	}
	if len(rep.Series) < 3 {
		return fmt.Errorf("only %d time-series ticks", len(rep.Series))
	}
	staged := 0
	for _, row := range rep.Series {
		if len(row.Stages) > 0 {
			staged++
		}
	}
	if staged == 0 {
		return errors.New("no tick carries per-stage latency quantiles")
	}
	if rep.Totals.OutageRequests == 0 || rep.Totals.NormalRequests == 0 {
		return errors.New("labelled traffic missing an arm (outage or normal)")
	}
	if rep.Totals.IsolationAccuracy < 0.9 {
		return fmt.Errorf("isolation accuracy %.3f under churn, want >= 0.9", rep.Totals.IsolationAccuracy)
	}
	if rep.Totals.Errors > 0 {
		return fmt.Errorf("%d detect/ingest errors; a kill mid-traffic must not drop requests", rep.Totals.Errors)
	}
	if rep.Totals.IngestFrames == 0 {
		return errors.New("no binary ingest frames made it through")
	}
	if rep.MultiHopTrace == nil {
		return errors.New("no retained multi-hop trace stitching route, proxy, and backend stages")
	}
	return nil
}

func writeReport(path string, rep *soakReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// soakBackend is one in-process outaged with its shard booted from the
// registry by fingerprint and span tracing on.
type soakBackend struct {
	svc *service.Service
	cli *client.Client
	srv *soakServer
}

func newSoakBackend(ctx context.Context, addr, regURL, fp string, opts pmuoutage.Options, logger *slog.Logger) (*soakBackend, error) {
	reg, err := registry.NewClient(regURL, nil)
	if err != nil {
		return nil, err
	}
	model, err := reg.Model(ctx, fp)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(ctx, service.Config{
		Shards: []service.ShardSpec{{Name: "soak", Opts: opts, Model: model}},
		Tracer: obs.NewTracer(obs.TracerConfig{Capacity: 1024, SlowThreshold: 50 * time.Millisecond, SampleEvery: 1}),
		Logger: logger,
	})
	if err != nil {
		return nil, err
	}
	hs := httpserve.New(svc, 30*time.Second, logger)
	hs.SetModelSource(reg)
	srv, err := newSoakServer(addr, hs.Routes())
	if err != nil {
		svc.Close()
		return nil, err
	}
	cli, err := client.New(client.Config{BaseURL: srv.base})
	if err != nil {
		srv.stop()
		svc.Close()
		return nil, err
	}
	return &soakBackend{svc: svc, cli: cli, srv: srv}, nil
}

// kill tears the backend down abruptly: in-flight proxied requests see
// transport errors — the fail-over case the soak is probing.
func (b *soakBackend) kill() error {
	err := b.srv.httpSrv.Close()
	b.svc.Close()
	return err
}

func (b *soakBackend) stop() {
	b.srv.stop()
	b.svc.Close()
}

// soakServer serves a handler on a localhost port — ephemeral when addr
// is empty, or a specific freed address on restart (retried briefly
// while the OS releases it).
type soakServer struct {
	base    string
	addr    string
	httpSrv *http.Server
	done    chan error
}

func newSoakServer(addr string, h http.Handler) (*soakServer, error) {
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	var ln net.Listener
	var err error
	for i := 0; i < 40; i++ {
		if ln, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if err != nil {
		return nil, err
	}
	s := &soakServer{
		base:    "http://" + ln.Addr().String(),
		addr:    ln.Addr().String(),
		httpSrv: &http.Server{Handler: h},
		done:    make(chan error, 1),
	}
	go func() { s.done <- s.httpSrv.Serve(ln) }()
	return s, nil
}

func (s *soakServer) stop() {
	_ = s.httpSrv.Close()
	<-s.done
}

func getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(req, out)
}

func postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(req, out)
}

func doJSON(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: HTTP %d: %s", req.Method, req.URL.Path, resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}

func sleepCtx(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return ctx.Err() == nil
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
