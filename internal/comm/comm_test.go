package comm

import (
	"sort"
	"testing"
	"time"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/pmunet"
)

// network spins up a collector, one PDC per cluster, and one PMU per bus
// on the loopback interface.
type network struct {
	col  *Collector
	pdcs []*PDC
	pmus []*PMU
}

func buildNetwork(t *testing.T, n int, clusters [][]int, loss float64) *network {
	t.Helper()
	col, err := NewCollector(n, "127.0.0.1:0", 80*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	nw := &network{col: col, pmus: make([]*PMU, n)}
	for ci, members := range clusters {
		pdc, err := NewPDC(ci, "127.0.0.1:0", col.Addr(), 20*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		nw.pdcs = append(nw.pdcs, pdc)
		for _, bus := range members {
			pmu, err := NewPMU(bus, pdc.Addr(), loss, int64(bus)+1)
			if err != nil {
				t.Fatal(err)
			}
			nw.pmus[bus] = pmu
		}
	}
	t.Cleanup(func() {
		for _, p := range nw.pmus {
			if p != nil {
				p.Close()
			}
		}
		for _, p := range nw.pdcs {
			p.Close()
		}
		col.Close()
	})
	return nw
}

// broadcast sends one synthetic time step from every PMU.
func (nw *network) broadcast(t *testing.T, seq int) {
	t.Helper()
	for bus, p := range nw.pmus {
		if p == nil {
			continue
		}
		if err := p.Send(seq, 1+float64(bus)/100, -float64(bus)/100); err != nil {
			t.Fatal(err)
		}
	}
}

// collect waits for one assembled sample or times out.
func collect(t *testing.T, col *Collector, timeout time.Duration) Assembled {
	t.Helper()
	select {
	case a, ok := <-col.Samples():
		if !ok {
			t.Fatal("collector closed early")
		}
		return a
	case <-time.After(timeout):
		t.Fatal("timed out waiting for assembled sample")
	}
	panic("unreachable")
}

func smallClusters() [][]int {
	return [][]int{{0, 1, 2}, {3, 4}, {5, 6, 7}}
}

func TestCompleteAssembly(t *testing.T) {
	nw := buildNetwork(t, 8, smallClusters(), 0)
	nw.broadcast(t, 1)
	a := collect(t, nw.col, 2*time.Second)
	if a.Seq != 1 {
		t.Fatalf("Seq = %d", a.Seq)
	}
	if !a.Sample.Complete() {
		t.Fatalf("expected complete sample, mask = %v", a.Sample.Mask)
	}
	for bus := 0; bus < 8; bus++ {
		if a.Sample.Vm[bus] != 1+float64(bus)/100 {
			t.Fatalf("bus %d Vm = %v", bus, a.Sample.Vm[bus])
		}
	}
}

func TestDeadPMUBecomesMissing(t *testing.T) {
	nw := buildNetwork(t, 8, smallClusters(), 0)
	nw.pmus[4].SetDown(true)
	nw.broadcast(t, 7)
	a := collect(t, nw.col, 2*time.Second)
	if a.Sample.Complete() {
		t.Fatal("expected missing entry for dead PMU")
	}
	if !a.Sample.Missing(4) {
		t.Fatalf("bus 4 should be missing, mask = %v", a.Sample.Mask)
	}
	if a.Sample.Missing(3) {
		t.Fatal("bus 3 arrived but is marked missing")
	}
}

func TestDarkPDCDropsWholeCluster(t *testing.T) {
	nw := buildNetwork(t, 8, smallClusters(), 0)
	nw.pdcs[2].SetDown(true) // cluster {5,6,7} goes dark
	nw.broadcast(t, 3)
	a := collect(t, nw.col, 2*time.Second)
	var missing []int
	for bus := 0; bus < 8; bus++ {
		if a.Sample.Missing(bus) {
			missing = append(missing, bus)
		}
	}
	sort.Ints(missing)
	want := []int{5, 6, 7}
	if len(missing) != 3 || missing[0] != want[0] || missing[1] != want[1] || missing[2] != want[2] {
		t.Fatalf("missing = %v, want %v", missing, want)
	}
}

func TestLossyLinkEventuallyDrops(t *testing.T) {
	nw := buildNetwork(t, 8, smallClusters(), 0.5)
	sawMissing := false
	for seq := 1; seq <= 10 && !sawMissing; seq++ {
		nw.broadcast(t, seq)
		a := collect(t, nw.col, 2*time.Second)
		if a.Sample.Mask != nil && a.Sample.Mask.AnyMissing() {
			sawMissing = true
		}
	}
	if !sawMissing {
		t.Fatal("50% loss never produced a missing entry in 10 steps")
	}
}

func TestMultipleSequencesInterleaved(t *testing.T) {
	nw := buildNetwork(t, 8, smallClusters(), 0)
	nw.broadcast(t, 1)
	nw.broadcast(t, 2)
	seen := map[int]bool{}
	for i := 0; i < 2; i++ {
		a := collect(t, nw.col, 2*time.Second)
		seen[a.Seq] = true
		if !a.Sample.Complete() {
			t.Fatalf("seq %d incomplete", a.Seq)
		}
	}
	if !seen[1] || !seen[2] {
		t.Fatalf("assembled seqs = %v", seen)
	}
}

func TestPMUValidation(t *testing.T) {
	if _, err := NewPMU(0, "127.0.0.1:1", -0.1, 1); err == nil {
		t.Fatal("expected loss-range error")
	}
	if _, err := NewPMU(0, "127.0.0.1:0", 0, 1); err == nil {
		t.Fatal("expected dial error for port 0")
	}
}

func TestCollectorValidation(t *testing.T) {
	if _, err := NewCollector(0, "127.0.0.1:0", 0); err == nil {
		t.Fatal("expected bus-count error")
	}
}

func TestCollectorCloseIdempotent(t *testing.T) {
	col, err := NewCollector(4, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}
}

// closeWithin fails the test if fn does not return within d — the
// regression guard for Close calls that used to deadlock in wg.Wait
// while reader goroutines sat in Scan on still-open connections.
func closeWithin(t *testing.T, d time.Duration, what string, fn func() error) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- fn() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("%s: %v", what, err)
		}
	case <-time.After(d):
		t.Fatalf("%s did not return within %v", what, d)
	}
}

func TestPDCCloseIdempotent(t *testing.T) {
	col, err := NewCollector(4, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	pdc, err := NewPDC(0, "127.0.0.1:0", col.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := pdc.Close(); err != nil {
		t.Fatal(err)
	}
	// Second close must neither panic (done was closed once already) nor
	// report the already-closed sockets.
	if err := pdc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestPDCCloseWithConnectedPMUs(t *testing.T) {
	col, err := NewCollector(4, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	pdc, err := NewPDC(0, "127.0.0.1:0", col.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	var pmus []*PMU
	for bus := 0; bus < 2; bus++ {
		pmu, err := NewPMU(bus, pdc.Addr(), 0, int64(bus)+1)
		if err != nil {
			t.Fatal(err)
		}
		defer pmu.Close()
		pmus = append(pmus, pmu)
	}
	// Make sure the PDC has actually accepted the connections and its
	// readers are parked in Scan before closing it out from under them.
	for _, pmu := range pmus {
		if err := pmu.Send(1, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	time.Sleep(50 * time.Millisecond)
	closeWithin(t, 2*time.Second, "PDC.Close with live PMU conns", pdc.Close)
}

func TestCollectorCloseWithConnectedPDCs(t *testing.T) {
	col, err := NewCollector(4, "127.0.0.1:0", 0)
	if err != nil {
		t.Fatal(err)
	}
	pdc, err := NewPDC(0, "127.0.0.1:0", col.Addr(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer pdc.Close()
	time.Sleep(50 * time.Millisecond) // let the collector accept the PDC conn
	closeWithin(t, 2*time.Second, "Collector.Close with live PDC conn", col.Close)
}

func TestEndToEndWithRealGridTopology(t *testing.T) {
	// Use the IEEE-14 PDC partition for the network layout, dropping the
	// outage-location PMUs, and check the assembled mask matches the
	// pmunet outage mask.
	g := cases.IEEE14()
	p, err := pmunet.Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	nw := buildNetwork(t, g.N(), p.Clusters, 0)
	e := 0
	a, b := g.Endpoints(0)
	nw.pmus[a].SetDown(true)
	nw.pmus[b].SetDown(true)
	nw.broadcast(t, 5)
	got := collect(t, nw.col, 2*time.Second)
	want := p.OutageLocationMask(0)
	for bus := 0; bus < g.N(); bus++ {
		if got.Sample.Missing(bus) != want[bus] {
			t.Fatalf("bus %d: missing=%v, want %v (line %d endpoints %d,%d)",
				bus, got.Sample.Missing(bus), want[bus], e, a, b)
		}
	}
}

// TestCollectorStats: emission outcomes are counted — complete and
// incomplete emissions, and the live pending gauge.
func TestCollectorStats(t *testing.T) {
	nw := buildNetwork(t, 8, smallClusters(), 0)
	nw.broadcast(t, 1)
	collect(t, nw.col, 2*time.Second)
	st := nw.col.Stats()
	if st.Emitted != 1 || st.Incomplete != 0 || st.DroppedFull != 0 {
		t.Fatalf("after complete step: %+v", st)
	}

	// A partial step (one PMU silent) sits pending until the deadline
	// sweep emits it with gaps.
	for bus, p := range nw.pmus {
		if bus == 3 {
			continue
		}
		if err := p.Send(2, 1, 0); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for nw.col.Stats().Pending == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if nw.col.Stats().Pending == 0 {
		t.Fatal("partial step never became pending")
	}
	a := collect(t, nw.col, 2*time.Second)
	if a.Sample.Complete() {
		t.Fatal("partial step emitted without missing entries")
	}
	st = nw.col.Stats()
	if st.Emitted != 2 || st.Incomplete != 1 {
		t.Fatalf("after partial step: %+v", st)
	}
}
