package dataset

import (
	"context"
	"errors"
	"fmt"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/loadgen"
	"pmuoutage/internal/par"
	"pmuoutage/internal/powerflow"
)

// GenConfig controls data generation.
type GenConfig struct {
	// Steps is the number of time samples T per scenario. The paper uses
	// a 24-hour window; Steps divides that day.
	Steps int
	// Seed makes the whole pipeline deterministic.
	Seed int64
	// SigmaVm/SigmaVa are the PMU noise levels (p.u. / radians);
	// non-positive values select the loadgen defaults.
	SigmaVm float64 //gridlint:unit pu
	SigmaVa float64 //gridlint:unit rad
	// OU overrides the load process; zero value selects DefaultOU(Steps).
	OU loadgen.OUParams
	// UseDC switches to the linear DC power flow — an order of magnitude
	// faster, used by quick tests and large sweeps. Magnitudes are then
	// flat 1.0 plus noise, so detection must use the angle channel.
	UseDC bool
	// LossFrac is the dispatch margin for system losses (default 2%).
	LossFrac float64
	// MaxIter caps Newton iterations per solve (default 30).
	MaxIter int
	// Workers bounds the scenario-level parallelism of Generate
	// (0 = GOMAXPROCS). Results are byte-identical for every worker
	// count: each scenario derives its own RNG seeds from Seed and the
	// scenario itself, so no random stream is shared across scenarios.
	Workers int
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Steps <= 0 {
		c.Steps = 24
	}
	if c.OU == (loadgen.OUParams{}) {
		c.OU = loadgen.DefaultOU(c.Steps)
	}
	if c.LossFrac <= 0 {
		c.LossFrac = 0.02
	}
	return c
}

// ErrInvalidScenario marks an outage case excluded per §V-A: the line
// removal islands the grid or the power flow fails to converge.
var ErrInvalidScenario = errors.New("dataset: scenario islanded or did not converge")

// GenerateScenario produces the sample set for one scenario on grid g.
// It returns ErrInvalidScenario (wrapped) for islanding/non-convergence.
func GenerateScenario(g *grid.Grid, sc Scenario, cfg GenConfig) (*Set, error) {
	return GenerateScenarioContext(context.Background(), g, sc, cfg)
}

// GenerateScenarioContext is GenerateScenario with cancellation: the
// per-step solve loop stops at the first context error. The work of one
// scenario is inherently sequential (each step warm-starts from the
// last), so there is no Workers option at this level.
func GenerateScenarioContext(ctx context.Context, g *grid.Grid, sc Scenario, cfg GenConfig) (*Set, error) {
	cfg = cfg.withDefaults()
	work := g.WithoutLines(sc)
	if !work.Connected() {
		return nil, fmt.Errorf("%w: %s islands %s", ErrInvalidScenario, sc.Key(), g.Name)
	}
	// Seeds derive from the scenario so different cases get independent
	// load noise while the whole pipeline stays reproducible.
	seed := cfg.Seed
	for _, e := range sc {
		seed = seed*1000003 + int64(e) + 1
	}
	proc, err := loadgen.NewProcess(g.N(), cfg.OU, seed)
	if err != nil {
		return nil, err
	}
	noise := loadgen.NewNoiseModel(cfg.SigmaVm, cfg.SigmaVa, seed+1)

	set := &Set{Case: sc}
	warm := work.Clone()
	for t := 0; t < cfg.Steps; t++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mult := proc.Step()
		step := warm.Clone()
		for i := range step.Buses {
			step.Buses[i].Pd = work.Buses[i].Pd * mult[i]
			step.Buses[i].Qd = work.Buses[i].Qd * mult[i]
		}
		step = powerflow.Dispatch(step, cfg.LossFrac)

		var vm, va []float64
		if cfg.UseDC {
			sol, err := powerflow.SolveDC(step)
			if err != nil {
				return nil, fmt.Errorf("%w: %s step %d: %v", ErrInvalidScenario, sc.Key(), t, err)
			}
			vm, va = sol.Vm, sol.Va
		} else {
			sol, err := powerflow.SolveAC(step, powerflow.Options{MaxIter: cfg.MaxIter})
			if err != nil {
				// One retry from flat start; warm starts can stray after
				// a big topology change.
				sol, err = powerflow.SolveAC(step, powerflow.Options{FlatStart: true, MaxIter: cfg.MaxIter})
				if err != nil {
					return nil, fmt.Errorf("%w: %s step %d: %v", ErrInvalidScenario, sc.Key(), t, err)
				}
			}
			vm, va = sol.Vm, sol.Va
			// Warm-start the next step from this solution.
			for i := range warm.Buses {
				warm.Buses[i].Vm = vm[i]
				warm.Buses[i].Va = va[i]
			}
		}
		nvm, nva := noise.Perturb(vm, va)
		set.Samples = append(set.Samples, Sample{Vm: nvm, Va: nva})
	}
	return set, nil
}

// Generate runs the full §V-A pipeline: the normal-operation set plus one
// set per valid single-line outage. Lines whose removal islands the grid
// or whose power flow diverges are skipped (E <= |E| in the paper).
func Generate(g *grid.Grid, cfg GenConfig) (*Data, error) {
	return GenerateContext(context.Background(), g, cfg)
}

// GenerateContext is Generate with cancellation and bounded parallelism:
// the per-scenario simulations fan out over cfg.Workers workers. Every
// scenario seeds its own load process and noise model from (Seed,
// scenario), so the assembled Data is byte-identical whatever the worker
// count — including the sequential Workers = 1 order.
func GenerateContext(ctx context.Context, g *grid.Grid, cfg GenConfig) (*Data, error) {
	cfg = cfg.withDefaults()
	normal, err := GenerateScenarioContext(ctx, g, nil, cfg)
	if err != nil {
		return nil, fmt.Errorf("dataset: normal case failed for %s: %w", g.Name, err)
	}
	// One slot per line; invalid scenarios (islanding/divergence) stay
	// nil. Slots are index-exclusive, so the fan-out is data-race-free
	// and the assembly below sees sequential order.
	sets, err := par.Map(ctx, cfg.Workers, g.E(), func(ctx context.Context, e int) (*Set, error) {
		set, err := GenerateScenarioContext(ctx, g, Scenario{grid.Line(e)}, cfg)
		if err != nil {
			if errors.Is(err, ErrInvalidScenario) {
				return nil, nil // skipped per §V-A, not a failure
			}
			return nil, err
		}
		return set, nil
	})
	if err != nil {
		return nil, err
	}
	d := &Data{G: g, Normal: normal, Outages: map[grid.Line]*Set{}}
	for e, set := range sets {
		if set == nil {
			continue
		}
		d.Outages[grid.Line(e)] = set
		d.ValidLines = append(d.ValidLines, grid.Line(e))
	}
	if len(d.ValidLines) == 0 {
		return nil, fmt.Errorf("dataset: no valid outage cases for %s", g.Name)
	}
	return d, nil
}
