package api

// Trace wire types: the JSON shape served by GET /debug/traces on
// backends and the router. Traces are retained by tail-based sampling
// (see internal/obs), so every trace in a list was kept for a reason —
// the Kept field names it.

// Reasons a trace survives tail sampling. The values appear verbatim
// in Trace.Kept.
const (
	TraceKeptSlow    = "slow"    // root span exceeded the latency threshold
	TraceKeptError   = "error"   // some span recorded an error
	TraceKeptSampled = "sampled" // random low-rate sample
)

// TraceSpan is one completed span inside a retained trace. IDs are
// 16-hex-character strings, matching the traceparent-style wire header.
type TraceSpan struct {
	ID     string `json:"id"`
	Parent string `json:"parent,omitempty"` // empty for a span with no local or remote parent
	// Root marks the span whose End finalized the trace on this
	// process; its parent, if any, lives on the caller's side of the
	// wire.
	Root        bool              `json:"root,omitempty"`
	Stage       string            `json:"stage"`
	StartUnixNS int64             `json:"start_unix_ns"`
	DurationNS  int64             `json:"duration_ns"`
	Err         string            `json:"err,omitempty"`
	Attrs       map[string]string `json:"attrs,omitempty"`
}

// Trace is one retained trace: every span recorded locally under a
// single trace ID, finalized when its root span ended.
type Trace struct {
	TraceID     string `json:"trace_id"`
	Kept        string `json:"kept"` // one of the TraceKept* reasons
	StartUnixNS int64  `json:"start_unix_ns"`
	DurationNS  int64  `json:"duration_ns"`
	// DroppedSpans counts spans discarded because the trace hit its
	// per-trace span cap; the retained spans are still coherent.
	DroppedSpans int         `json:"dropped_spans,omitempty"`
	Spans        []TraceSpan `json:"spans"`
}

// TraceList is the list form of GET /debug/traces, newest first.
type TraceList struct {
	Traces []Trace `json:"traces"`
}
