package comm

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"log/slog"
	"math"
	"net"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/pmunet"
)

// Metric names the collector exports when registered on an
// obs.Registry — package-level snake_case consts, one registration
// site each (enforced by the gridlint metricname analyzer).
const (
	metricEmitted     = "pmu_collector_emitted_total"
	metricIncomplete  = "pmu_collector_incomplete_total"
	metricDropped     = "pmu_collector_dropped_total"
	metricEvicted     = "pmu_collector_evicted_total"
	metricLate        = "pmu_collector_late_total"
	metricPending     = "pmu_collector_pending"
	metricPDCDeadline = "pmu_pdc_deadline_seconds"

	labelPDC = "pdc"
)

// Assembled is one control-center sample: the merged measurements of a
// time step with a missing-data mask for buses that never arrived.
type Assembled struct {
	Seq    int
	Sample dataset.Sample
}

// Adaptive-deadline tuning. Each PDC's assembly latency — how long
// after a time step opens its cluster frame lands — is tracked as an
// EWMA; the emission deadline in force is the worst PDC's EWMA scaled
// by deadlineFactor, clamped into [maxDeadline/8, maxDeadline]. Fast
// fleets emit stragglers in a few milliseconds instead of waiting out
// the configured worst case; a slow or flapping PDC stretches the
// deadline back toward it.
const (
	ewmaAlpha      = 0.25
	deadlineFactor = 2.0
)

// emitWindow bounds the emitted-sequence guard: frames for a sequence
// emitted within the last emitWindow emissions are dropped as late
// instead of resurrecting the assembly (and double-reporting the time
// step). Older sequences than that fall out of the window — devices
// reusing a sequence number after 4× the pending bound are treated as
// a new epoch.
const emitWindow = 4 * maxPending

// pdcEstimator tracks one PDC's EWMA assembly latency in seconds,
// stored as float64 bits so metric gauges read it lock-free.
type pdcEstimator struct{ bits atomic.Uint64 }

func (e *pdcEstimator) observe(lat time.Duration) {
	s := lat.Seconds()
	if s <= 0 {
		s = 0
	}
	for {
		old := e.bits.Load()
		next := s
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*s
		}
		if e.bits.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func (e *pdcEstimator) ewma() float64 { return math.Float64frombits(e.bits.Load()) }

// deadlineFor clamps an estimator-driven deadline into [lo, hi]; a PDC
// with no latency history gets the configured maximum.
func deadlineFor(ewmaSeconds float64, lo, hi time.Duration) time.Duration {
	if ewmaSeconds <= 0 {
		return hi
	}
	d := time.Duration(deadlineFactor * ewmaSeconds * float64(time.Second))
	if d < lo {
		return lo
	}
	if d > hi {
		return hi
	}
	return d
}

// Collector is the control-center endpoint: it accepts PDC connections,
// merges cluster frames per sequence number, and emits assembled samples
// once complete or past the adaptive deadline — late or lost data become
// missing entries rather than blocking the application, matching the
// paper's online-detection requirement. Emissions go to the Samples
// channel, or straight into a consumer attached with SetSink (the
// device→detector stream the service layer uses).
type Collector struct {
	n           int
	maxDeadline time.Duration
	minDeadline time.Duration
	out         chan Assembled
	wake        chan struct{}

	// sink, when set, replaces the Samples channel; sinkMu serializes
	// its invocations across the delivery goroutines.
	sink   atomic.Pointer[func(Assembled)]
	sinkMu sync.Mutex

	ln net.Listener

	// Emission counters: always-on lock-free cells, shared verbatim with
	// any registry the collector is Registered on, so CollectorStats and
	// /metrics can never disagree.
	emitted, incomplete, droppedFull, evicted, late obs.Counter

	logger *slog.Logger // nil disables network-event logs

	mu          sync.Mutex
	reg         *obs.Registry // set by Register; gates per-PDC gauge export
	conns       map[net.Conn]struct{}
	pending     map[int]*assembly
	pdcLat      map[int]*pdcEstimator
	emittedSeqs map[int]struct{}
	emitRing    []int
	emitPos     int
	emitCount   int
	closed      bool
	done        chan struct{}
	wg          sync.WaitGroup
}

// CollectorStats counts the collector's emission outcomes — the
// observability hook the serving layer's dashboards read alongside the
// detection service's shard counters.
type CollectorStats struct {
	// Emitted counts samples delivered (on Samples or into the sink),
	// complete or not.
	Emitted uint64
	// Incomplete counts emitted samples that carried missing entries.
	Incomplete uint64
	// DroppedFull counts samples discarded because the consumer stalled
	// and the output channel was full.
	DroppedFull uint64
	// Evicted counts assemblies force-emitted early by the maxPending
	// memory bound (a subset of Emitted or DroppedFull).
	Evicted uint64
	// Late counts cluster frames that arrived after their sequence was
	// already emitted and were dropped instead of re-reporting it.
	Late uint64
	// Pending is the number of partially assembled time steps held now.
	Pending int
}

// Stats snapshots the collector's counters.
func (c *Collector) Stats() CollectorStats {
	pending := c.pendingNow()
	return CollectorStats{
		Emitted:     c.emitted.Load(),
		Incomplete:  c.incomplete.Load(),
		DroppedFull: c.droppedFull.Load(),
		Evicted:     c.evicted.Load(),
		Late:        c.late.Load(),
		Pending:     pending,
	}
}

// Register exports the collector's counters on r, next to whatever else
// the process serves at /metrics. The registry attaches to the
// collector's own cells — Stats and the exposition read the same
// atomics. Per-PDC deadline gauges appear as PDCs are first heard from.
// Call at most once per registry.
func (c *Collector) Register(r *obs.Registry) {
	r.AttachCounter(metricEmitted, "assembled samples delivered, complete or not", &c.emitted)
	r.AttachCounter(metricIncomplete, "emitted samples that carried missing entries", &c.incomplete)
	r.AttachCounter(metricDropped, "samples discarded because the consumer stalled", &c.droppedFull)
	r.AttachCounter(metricEvicted, "assemblies force-emitted by the memory bound", &c.evicted)
	r.AttachCounter(metricLate, "frames for already-emitted sequences, dropped", &c.late)
	r.GaugeFunc(metricPending, "partially assembled time steps held now", func() float64 {
		return float64(c.pendingNow())
	})
	// Gauges for PDCs heard from before Register; registered with no
	// collector lock held — the registry calls gauge closures during
	// exposition while holding its own mutex, so registering under c.mu
	// would invert that order.
	for id, e := range c.adoptRegistry(r) {
		c.registerPDCGauge(r, id, e)
	}
}

// adoptRegistry records the registry for later-arriving PDCs and
// snapshots the estimators already heard from.
func (c *Collector) adoptRegistry(r *obs.Registry) map[int]*pdcEstimator {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.reg = r
	ests := make(map[int]*pdcEstimator, len(c.pdcLat))
	for id, e := range c.pdcLat {
		ests[id] = e
	}
	return ests
}

// registerPDCGauge exports one PDC's adaptive deadline. The closure
// reads only the estimator's atomic cell — safe under the registry's
// exposition lock.
func (c *Collector) registerPDCGauge(r *obs.Registry, pdc int, e *pdcEstimator) {
	lo, hi := c.minDeadline, c.maxDeadline
	r.GaugeFunc(metricPDCDeadline, "adaptive per-PDC emission deadline", func() float64 {
		return deadlineFor(e.ewma(), lo, hi).Seconds()
	}, labelPDC, strconv.Itoa(pdc))
}

// pendingNow reads the size of the in-flight assembly table.
func (c *Collector) pendingNow() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.pending)
}

// AdaptiveDeadline reports the emission deadline currently in force:
// the worst per-PDC EWMA latency scaled by deadlineFactor, clamped into
// [maxDeadline/8, maxDeadline]. With no latency history it equals the
// configured deadline.
func (c *Collector) AdaptiveDeadline() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.adaptiveLocked()
}

func (c *Collector) adaptiveLocked() time.Duration {
	worst := 0.0
	for _, e := range c.pdcLat {
		if v := e.ewma(); v > worst {
			worst = v
		}
	}
	return deadlineFor(worst, c.minDeadline, c.maxDeadline)
}

// SetLogger attaches a structured logger for network events (evictions,
// drops, incomplete emissions). Call before traffic flows; nil (the
// default) disables logging.
func (c *Collector) SetLogger(lg *slog.Logger) {
	if lg != nil {
		lg = lg.With(slog.String(obs.AttrComponent, "comm"))
	}
	c.logger = lg
}

// SetSink routes assembled samples to fn instead of the Samples
// channel — the typed emission stream the detection service attaches
// via Service.CollectorSink. Set it before PDC traffic flows. fn is
// invoked one sample at a time (never concurrently) and must not
// block: the network readers and the deadline loop wait on it.
func (c *Collector) SetSink(fn func(Assembled)) {
	if fn == nil {
		c.sink.Store(nil)
		return
	}
	c.sink.Store(&fn)
}

type assembly struct {
	vm, va  []float64
	have    pmunet.Mask // true = received
	got     int         // buses received so far; == n means complete
	started time.Time
}

// emission is a retired assembly on its way out of the lock: built
// under c.mu (where it leaves the pending table and joins the emitted
// window), delivered after release so a slow consumer can never stall
// the network path.
type emission struct {
	seq    int
	sample dataset.Sample
}

// maxPending bounds the number of partially-assembled time steps the
// collector holds. A PDC that keeps opening new sequence numbers without
// ever completing them (clock skew, replay, a stuck upstream) would
// otherwise grow the pending map without limit faster than the deadline
// sweep can drain it. At the bound, the stalest assembly is force-emitted
// with its gaps as missing data — the same treatment the deadline gives
// stragglers, applied early under memory pressure.
const maxPending = 256

// NewCollector starts the control-center server for an n-bus grid on
// listenAddr ("127.0.0.1:0" for ephemeral). deadline is the longest a
// time step waits for stragglers before being emitted with missing
// entries (default 100ms); once PDC latencies have been observed the
// effective deadline adapts below it (see AdaptiveDeadline). Assembled
// samples arrive on Samples(), or in the SetSink callback.
func NewCollector(n int, listenAddr string, deadline time.Duration) (*Collector, error) {
	if n <= 0 {
		return nil, fmt.Errorf("comm: collector needs positive bus count, got %d", n)
	}
	if deadline <= 0 {
		deadline = 100 * time.Millisecond
	}
	minDeadline := deadline / 8
	if minDeadline < time.Millisecond {
		minDeadline = time.Millisecond
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("comm: collector listen: %w", err)
	}
	c := &Collector{
		n:           n,
		maxDeadline: deadline,
		minDeadline: minDeadline,
		out:         make(chan Assembled, 64),
		wake:        make(chan struct{}, 1),
		ln:          ln,
		conns:       map[net.Conn]struct{}{},
		pending:     map[int]*assembly{},
		pdcLat:      map[int]*pdcEstimator{},
		emittedSeqs: make(map[int]struct{}, emitWindow),
		emitRing:    make([]int, emitWindow),
		done:        make(chan struct{}),
	}
	c.wg.Add(2)
	//gridlint:ignore ctxflow server lifetime is bound by Close, not a per-call context
	go c.acceptLoop()
	go c.deadlineLoop()
	return c, nil
}

// Addr returns the address PDCs should dial.
func (c *Collector) Addr() string { return c.ln.Addr().String() }

// Samples returns the stream of assembled samples. The channel closes
// when the collector is closed. Unused when a sink is attached.
func (c *Collector) Samples() <-chan Assembled { return c.out }

func (c *Collector) acceptLoop() {
	defer c.wg.Done()
	for {
		conn, err := c.ln.Accept()
		if err != nil {
			return
		}
		if !c.track(conn) {
			_ = conn.Close() // accept raced with Close
			continue
		}
		c.wg.Add(1)
		go c.readPDC(conn)
	}
}

// track registers an accepted connection so Close can unblock its
// reader; it refuses connections that race with shutdown.
func (c *Collector) track(conn net.Conn) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return false
	}
	c.conns[conn] = struct{}{}
	return true
}

func (c *Collector) untrack(conn net.Conn) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.conns, conn)
}

func (c *Collector) readPDC(conn net.Conn) {
	defer c.wg.Done()
	defer c.untrack(conn)
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var cf ClusterFrame
		if err := json.Unmarshal(sc.Bytes(), &cf); err != nil {
			continue
		}
		c.ingest(cf)
	}
}

func (c *Collector) ingest(cf ClusterFrame) {
	ems, reg, est := c.ingestLocked(cf, time.Now())
	for _, em := range ems {
		c.deliver(em)
	}
	if reg != nil {
		// First frame from this PDC: export its deadline gauge, outside
		// c.mu for the same lock-order reason as in Register.
		c.registerPDCGauge(reg, cf.PDC, est)
	}
}

// ingestLocked merges one cluster frame under the lock and hands back
// whatever emissions it triggered (an eviction, a completed step) for
// out-of-lock delivery.
func (c *Collector) ingestLocked(cf ClusterFrame, now time.Time) (ems []emission, reg *obs.Registry, est *pdcEstimator) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, nil
	}
	if _, dup := c.emittedSeqs[cf.Seq]; dup {
		// The sequence was already emitted (deadline or eviction);
		// re-opening it would report the same time step twice.
		c.late.Inc()
		if lg := c.logger; lg != nil && lg.Enabled(context.Background(), slog.LevelDebug) {
			lg.LogAttrs(context.Background(), slog.LevelDebug, "late frame for emitted sequence dropped",
				slog.Int("seq", cf.Seq), slog.Int("pdc", cf.PDC))
		}
		return nil, nil, nil
	}
	e := c.pdcLat[cf.PDC]
	if e == nil {
		e = &pdcEstimator{}
		c.pdcLat[cf.PDC] = e
		reg, est = c.reg, e
	}
	a := c.pending[cf.Seq]
	if a == nil {
		if len(c.pending) >= maxPending {
			if em, ok := c.evictStalestLocked(); ok {
				ems = append(ems, em)
			}
		}
		a = &assembly{
			vm:      make([]float64, c.n),
			va:      make([]float64, c.n),
			have:    make(pmunet.Mask, c.n),
			started: now,
		}
		c.pending[cf.Seq] = a
		c.nudge()
	} else {
		// Latency relative to the step's first arrival feeds this PDC's
		// deadline estimate.
		e.observe(now.Sub(a.started))
	}
	for i, bus := range cf.Buses {
		if bus < 0 || bus >= c.n || i >= len(cf.Vm) || i >= len(cf.Va) {
			continue // malformed aggregate entry
		}
		a.vm[bus] = cf.Vm[i]
		a.va[bus] = cf.Va[i]
		if !a.have[bus] {
			a.have[bus] = true
			a.got++
		}
	}
	// Complete time steps are emitted immediately — no waiting when all
	// data arrived. (have is inverse-sense relative to Mask — true means
	// received — so count arrivals instead of calling MissingCount, whose
	// reading of this mask would be backwards.)
	if a.got == c.n {
		ems = append(ems, c.removeLocked(cf.Seq, a))
	}
	return ems, reg, est
}

// nudge wakes the deadline loop so a newly opened assembly is covered
// by a timer wake-up at its adaptive expiry; callers hold c.mu.
func (c *Collector) nudge() {
	select {
	case c.wake <- struct{}{}:
	default:
	}
}

// evictStalestLocked retires the oldest pending assembly to make room
// for a new sequence; callers hold c.mu.
func (c *Collector) evictStalestLocked() (emission, bool) {
	stalest := -1
	var oldest time.Time
	for seq, a := range c.pending {
		if stalest < 0 || a.started.Before(oldest) {
			stalest, oldest = seq, a.started
		}
	}
	if stalest < 0 {
		return emission{}, false
	}
	c.evicted.Inc()
	if lg := c.logger; lg != nil {
		lg.LogAttrs(context.Background(), slog.LevelWarn, "assembly evicted under memory pressure",
			slog.Int("seq", stalest), slog.Int("pending", len(c.pending)))
	}
	return c.removeLocked(stalest, c.pending[stalest]), true
}

// removeLocked retires an assembly: it leaves the pending table and
// joins the emitted-sequence window — so stragglers are dropped as late
// even while its delivery is still in flight — and becomes an emission
// for delivery once the lock is released. Callers hold c.mu.
func (c *Collector) removeLocked(seq int, a *assembly) emission {
	delete(c.pending, seq)
	c.markEmittedLocked(seq)
	missing := make(pmunet.Mask, c.n)
	for i, got := range a.have {
		missing[i] = !got
	}
	s := dataset.Sample{Vm: a.vm, Va: a.va}
	if missing.AnyMissing() {
		s.Mask = missing
	}
	return emission{seq: seq, sample: s}
}

// markEmittedLocked records seq in the bounded emitted window, aging
// out the oldest entry once emitWindow sequences have passed.
func (c *Collector) markEmittedLocked(seq int) {
	if c.emitCount >= emitWindow {
		delete(c.emittedSeqs, c.emitRing[c.emitPos])
	}
	c.emitRing[c.emitPos] = seq
	c.emittedSeqs[seq] = struct{}{}
	c.emitPos = (c.emitPos + 1) % emitWindow
	c.emitCount++
}

// deliver hands one emission to the consumer with no collector lock
// held, so a slow sink or a full channel can never stall the network
// path. Delivery happens before the triggering call (ingest, Flush,
// Close) returns.
func (c *Collector) deliver(em emission) {
	asm := Assembled{Seq: em.seq, Sample: em.sample}
	if p := c.sink.Load(); p != nil {
		c.callSink(*p, asm)
		c.noteEmitted(em)
		return
	}
	select {
	case c.out <- asm:
		c.noteEmitted(em)
	default:
		// A stalled consumer must not deadlock the network path; the
		// sample is dropped like any other late data.
		c.droppedFull.Inc()
		if lg := c.logger; lg != nil {
			lg.LogAttrs(context.Background(), slog.LevelWarn, "sample dropped: consumer stalled",
				slog.Int("seq", em.seq))
		}
	}
}

// callSink serializes sink invocations: emissions can originate from
// any PDC reader or the deadline loop concurrently, but the sink sees
// one sample at a time.
func (c *Collector) callSink(fn func(Assembled), a Assembled) {
	c.sinkMu.Lock()
	defer c.sinkMu.Unlock()
	fn(a)
}

func (c *Collector) noteEmitted(em emission) {
	c.emitted.Inc()
	if em.sample.Mask != nil {
		c.incomplete.Inc()
		if lg := c.logger; lg != nil && lg.Enabled(context.Background(), slog.LevelDebug) {
			lg.LogAttrs(context.Background(), slog.LevelDebug, "incomplete sample emitted",
				slog.Int("seq", em.seq), slog.Int("missing", em.sample.Mask.MissingCount()))
		}
	}
}

// deadlineLoop emits assemblies past the adaptive deadline. A timer —
// not a fixed tick — wakes at the earliest pending expiry, and
// new-assembly creation nudges it so a shortened deadline takes effect
// immediately rather than on the next quarter-deadline tick.
func (c *Collector) deadlineLoop() {
	defer c.wg.Done()
	timer := time.NewTimer(c.maxDeadline / 4)
	defer timer.Stop()
	for {
		select {
		case <-c.done:
			return
		case <-c.wake:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
		}
		ems, wait := c.takeExpired(time.Now())
		for _, em := range ems {
			c.deliver(em)
		}
		timer.Reset(wait)
	}
}

// takeExpired retires every assembly past the adaptive deadline and
// returns how long the loop may sleep before the next pending one
// expires.
func (c *Collector) takeExpired(now time.Time) ([]emission, time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	wait := c.maxDeadline / 4
	if c.closed {
		return nil, wait
	}
	d := c.adaptiveLocked()
	var ems []emission
	for seq, a := range c.pending {
		age := now.Sub(a.started)
		if age >= d {
			ems = append(ems, c.removeLocked(seq, a))
		} else if left := d - age; left < wait {
			wait = left
		}
	}
	if wait < time.Millisecond {
		wait = time.Millisecond
	}
	return ems, wait
}

// Flush force-emits every pending assembly (used at shutdown and by
// tests to avoid waiting for deadlines). Delivery completes before
// Flush returns. Do not race Flush with Close.
func (c *Collector) Flush() {
	for _, em := range c.takeAll() {
		c.deliver(em)
	}
}

// takeAll retires every pending assembly under the lock.
func (c *Collector) takeAll() []emission {
	c.mu.Lock()
	defer c.mu.Unlock()
	ems := make([]emission, 0, len(c.pending))
	for seq, a := range c.pending {
		ems = append(ems, c.removeLocked(seq, a))
	}
	return ems
}

// Close flushes, stops the server, and closes the Samples channel. It is
// idempotent, and it closes accepted PDC connections so reader
// goroutines parked in Scan cannot deadlock the final Wait.
func (c *Collector) Close() error {
	ems, conns, ok := c.shutdown()
	if !ok {
		return nil // already closed
	}
	for _, em := range ems {
		c.deliver(em)
	}
	err := c.ln.Close()
	for _, conn := range conns {
		_ = conn.Close() // unblocks the conn's readPDC goroutine
	}
	c.wg.Wait()
	close(c.out)
	return err
}

// shutdown retires the pending assemblies, marks the collector closed,
// and hands back the tracked connections; it reports false if Close
// already ran.
func (c *Collector) shutdown() ([]emission, []net.Conn, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil, nil, false
	}
	ems := make([]emission, 0, len(c.pending))
	for seq, a := range c.pending {
		ems = append(ems, c.removeLocked(seq, a))
	}
	c.closed = true
	close(c.done)
	conns := make([]net.Conn, 0, len(c.conns))
	for conn := range c.conns {
		conns = append(conns, conn)
	}
	return ems, conns, true
}
