package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func isOrthonormalCols(m *Dense, tol float64) bool {
	_, k := m.Dims()
	g := m.T().Mul(m)
	return g.Equalf(Identity(k), tol)
}

func TestSVDReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(10)
		c := 1 + rng.Intn(10)
		a := randDense(rng, r, c)
		s := FactorSVD(a)
		return s.Reconstruct().Equalf(a, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSVDOrthonormalFactors(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, dims := range [][2]int{{8, 5}, {5, 8}, {6, 6}, {1, 4}, {4, 1}} {
		a := randDense(rng, dims[0], dims[1])
		s := FactorSVD(a)
		if !isOrthonormalCols(s.U, 1e-10) {
			t.Errorf("%v: U columns not orthonormal", dims)
		}
		if !isOrthonormalCols(s.V, 1e-10) {
			t.Errorf("%v: V columns not orthonormal", dims)
		}
	}
}

func TestSVDSingularValuesSortedNonnegative(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 2+rng.Intn(8), 2+rng.Intn(8))
		s := FactorSVD(a)
		for i, v := range s.S {
			if v < 0 {
				return false
			}
			if i > 0 && s.S[i-1] < v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		3, 0, 0,
		0, 1, 0,
		0, 0, 2,
	})
	s := FactorSVD(a)
	want := []float64{3, 2, 1}
	for i, w := range want {
		if math.Abs(s.S[i]-w) > 1e-12 {
			t.Fatalf("S[%d] = %v, want %v", i, s.S[i], w)
		}
	}
}

func TestSVDRankDeficient(t *testing.T) {
	// Rank-1 outer product.
	u := []float64{1, 2, 3}
	v := []float64{4, 5}
	a := NewDense(3, 2)
	for i := range u {
		for j := range v {
			a.Set(i, j, u[i]*v[j])
		}
	}
	s := FactorSVD(a)
	if r := s.Rank(0); r != 1 {
		t.Fatalf("Rank = %d, want 1", r)
	}
	// Largest singular value = |u|*|v|.
	want := Norm2(u) * Norm2(v)
	if math.Abs(s.S[0]-want) > 1e-10 {
		t.Fatalf("S[0] = %v, want %v", s.S[0], want)
	}
}

func TestSVDFrobeniusInvariant(t *testing.T) {
	// ||A||_F^2 == sum of squared singular values.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randDense(rng, 3+rng.Intn(6), 3+rng.Intn(6))
		s := FactorSVD(a)
		var ss float64
		for _, v := range s.S {
			ss += v * v
		}
		fn := a.FrobeniusNorm()
		return math.Abs(fn*fn-ss) < 1e-9*(1+fn*fn)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSVDZeroMatrix(t *testing.T) {
	s := FactorSVD(NewDense(3, 2))
	for _, v := range s.S {
		if v != 0 {
			t.Fatalf("zero matrix has nonzero singular value %v", v)
		}
	}
	if s.Rank(0) != 0 {
		t.Fatalf("zero matrix Rank = %d, want 0", s.Rank(0))
	}
}

func TestSVDSmallestSingularDirectionIsNullspace(t *testing.T) {
	// Build a matrix with a known (approximate) null direction; the last
	// right singular vector must align with it. This is the property the
	// detector relies on (low singular directions encode topology).
	rng := rand.New(rand.NewSource(13))
	n := 6
	a := randDense(rng, 20, n)
	null := make([]float64, n)
	for i := range null {
		null[i] = rng.NormFloat64()
	}
	nn := Norm2(null)
	for i := range null {
		null[i] /= nn
	}
	// Project the null direction out of every row of a.
	for i := 0; i < 20; i++ {
		row := a.RawRow(i)
		c := Dot(row, null)
		for j := range row {
			row[j] -= c * null[j]
		}
	}
	s := FactorSVD(a)
	last := s.V.Col(n - 1)
	if got := math.Abs(Dot(last, null)); got < 1-1e-8 {
		t.Fatalf("|<v_min, null>| = %v, want ~1", got)
	}
}

func TestPseudoInversePenroseConditions(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(7)
		c := 1 + rng.Intn(7)
		a := randDense(rng, r, c)
		p := PseudoInverse(a)
		apa := a.Mul(p).Mul(a)
		pap := p.Mul(a).Mul(p)
		if !apa.Equalf(a, 1e-8) || !pap.Equalf(p, 1e-8) {
			return false
		}
		// Symmetry conditions.
		ap := a.Mul(p)
		pa := p.Mul(a)
		return ap.Equalf(ap.T(), 1e-8) && pa.Equalf(pa.T(), 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPseudoInverseOfInvertibleIsInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	n := 5
	a := randDense(rng, n, n)
	for i := 0; i < n; i++ {
		a.Add(i, i, 6)
	}
	p := PseudoInverse(a)
	if !a.Mul(p).Equalf(Identity(n), 1e-8) {
		t.Fatal("pinv of invertible matrix is not the inverse")
	}
}

func BenchmarkSVD50x50(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 50, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FactorSVD(a)
	}
}

func BenchmarkSVD118x40(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	a := randDense(rng, 118, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FactorSVD(a)
	}
}

// TestFactorSVDBlockedBitIdentical pins the cache-blocked tall path to
// the row-major reference: same rotations, same tolerances, so the
// factors must agree to the last bit, not just to a tolerance.
func TestFactorSVDBlockedBitIdentical(t *testing.T) {
	for _, dims := range [][2]int{{300, 8}, {512, 24}, {257, 3}, {300, 1}} {
		m, n := dims[0], dims[1]
		rng := rand.New(rand.NewSource(int64(m + n)))
		a := NewDense(m, n)
		for i := 0; i < m; i++ {
			for j := 0; j < n; j++ {
				a.Set(i, j, rng.NormFloat64())
			}
		}
		// Plant a few exactly-zero columns' worth of structure to hit the
		// null-column skip in both paths.
		if n > 2 {
			for i := 0; i < m; i++ {
				a.Set(i, n-1, 0)
			}
		}
		ref := factorSVDRef(a)
		blk := factorSVDBlocked(a)
		for k := range ref.S {
			if ref.S[k] != blk.S[k] {
				t.Fatalf("%dx%d: S[%d] %v != %v", m, n, k, ref.S[k], blk.S[k])
			}
		}
		if !ref.U.Equalf(blk.U, 0) || !ref.V.Equalf(blk.V, 0) {
			t.Fatalf("%dx%d: factors differ between reference and blocked path", m, n)
		}
		// And FactorSVD's dispatch picks the blocked path here.
		if got := FactorSVD(a); !got.U.Equalf(blk.U, 0) {
			t.Fatalf("%dx%d: dispatch did not match blocked path", m, n)
		}
	}
}

func BenchmarkFactorSVDTall(b *testing.B) {
	rng := rand.New(rand.NewSource(9))
	m, n := 2000, 24
	a := NewDense(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			a.Set(i, j, rng.NormFloat64())
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		FactorSVD(a)
	}
}
