// Package detect implements the paper's robust outage detector: per-node
// detection-capability learning from normal-operation ellipses
// (Eqs. 4–7), cluster-based detection groups with in- and out-of-cluster
// alternatives (Eq. 8), group selection under missing data (Eq. 10), and
// the proximity-rule decoder that turns scaled subspace proximities
// (Eq. 11) into a candidate outage set F̂.
package detect

import (
	"context"
	"fmt"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/ellipse"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/par"
)

// UnionProbIE computes the probability of the union of independent
// events with probabilities ps via the inclusion–exclusion expansion of
// Eq. (7). Exponential in len(ps); use UnionProb beyond ~20 events.
func UnionProbIE(ps []float64) float64 {
	n := len(ps)
	if n == 0 {
		return 0
	}
	if n > 24 {
		return UnionProb(ps)
	}
	var total float64
	for mask := 1; mask < 1<<uint(n); mask++ {
		prod := 1.0
		bits := 0
		for j := 0; j < n; j++ {
			if mask&(1<<uint(j)) != 0 {
				prod *= ps[j]
				bits++
			}
		}
		if bits%2 == 1 {
			total += prod
		} else {
			total -= prod
		}
	}
	return clamp01(total)
}

// UnionProb computes the same union probability in closed form,
// 1 − Π(1−p). For independent events it equals UnionProbIE exactly and
// costs O(n).
func UnionProb(ps []float64) float64 {
	q := 1.0
	for _, p := range ps {
		q *= 1 - clamp01(p)
	}
	return clamp01(1 - q)
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}

// Capabilities holds the learned per-node detection machinery: the
// normal-operation ellipse Ω_k of every node and the capability matrix
// P where P[i][k] = p_{i,k} of Eq. (6) — how reliably node k detects an
// outage of any line of node i.
type Capabilities struct {
	Ellipses []*ellipse.Ellipse
	P        [][]float64
	// Case holds the per-case capability rows of Eq. (5): Case[e][k] is
	// how reliably node k flags an outage of line e. P derives from these
	// rows by the Eq. (6)-(7) union over each node's incident lines; they
	// are kept so an incremental model patch can recompute the affected
	// union rows from refreshed case rows alone, without the outage data
	// of the untouched lines.
	Case map[grid.Line][]float64
}

// FitEllipses fits Ω_k for every node from the normal-operation
// training set (Eq. 4). useMVEE selects the minimum-volume enclosing
// ellipse instead of the default covariance-scaled fit.
func FitEllipses(normal *dataset.Set, margin float64, useMVEE bool) ([]*ellipse.Ellipse, error) {
	return FitEllipsesContext(context.Background(), normal, margin, useMVEE, 1)
}

// FitEllipsesContext is FitEllipses with cancellation and one fit per
// worker slot; each node's (vm, va) scratch is private to its item.
func FitEllipsesContext(ctx context.Context, normal *dataset.Set, margin float64, useMVEE bool, workers int) ([]*ellipse.Ellipse, error) {
	if normal.T() < 2 {
		return nil, fmt.Errorf("detect: need at least 2 normal samples, got %d", normal.T())
	}
	n := normal.Samples[0].N()
	return par.Map(ctx, workers, n, func(_ context.Context, k int) (*ellipse.Ellipse, error) {
		vm := make([]float64, normal.T())
		va := make([]float64, normal.T())
		for t, s := range normal.Samples {
			vm[t], va[t] = s.Phasor2D(k)
		}
		var e *ellipse.Ellipse
		var err error
		if useMVEE {
			e, err = ellipse.FitMVEE(vm, va, margin, 0)
		} else {
			e, err = ellipse.Fit(vm, va, margin)
		}
		if err != nil {
			return nil, fmt.Errorf("detect: ellipse for node %d: %w", k, err)
		}
		return e, nil
	})
}

// CaseCapability computes p_k(F | X_k^F) of Eq. (5): the count of outage
// samples falling outside Ω_k, normalised by the count of normal
// training samples inside Ω_k.
func CaseCapability(om *ellipse.Ellipse, outage, normal *dataset.Set, k int) float64 {
	if outage.T() == 0 || normal.T() == 0 {
		return 0
	}
	outside := 0
	for _, s := range outage.Samples {
		vm, va := s.Phasor2D(k)
		if !om.Contains(vm, va) {
			outside++
		}
	}
	inside := 0
	for _, s := range normal.Samples {
		vm, va := s.Phasor2D(k)
		if om.Contains(vm, va) {
			inside++
		}
	}
	if inside == 0 {
		return 0
	}
	return clamp01(float64(outside) / float64(inside))
}

// LearnCapabilities builds the full capability structure from training
// data: ellipses from the normal set, then for every node pair (i, k)
// the union capability p_{i,k} over all training cases involving node i
// (Eqs. 6–7).
func LearnCapabilities(d *dataset.Data, margin float64, useMVEE bool) (*Capabilities, error) {
	return LearnCapabilitiesContext(context.Background(), d, margin, useMVEE, 1)
}

// LearnCapabilitiesContext is LearnCapabilities with cancellation and
// bounded parallelism: the ellipse fits, the per-case capability rows of
// Eq. (5), and the per-node union rows of Eqs. (6)-(7) each fan out over
// workers. Every row is index-exclusive, so the table is byte-identical
// for any worker count.
func LearnCapabilitiesContext(ctx context.Context, d *dataset.Data, margin float64, useMVEE bool, workers int) (*Capabilities, error) {
	ells, err := FitEllipsesContext(ctx, d.Normal, margin, useMVEE, workers)
	if err != nil {
		return nil, err
	}
	n := d.G.N()
	// Pre-compute per-case capabilities: cap[e][k], one valid line per slot.
	caps, err := par.Map(ctx, workers, len(d.ValidLines), func(_ context.Context, j int) ([]float64, error) {
		e := d.ValidLines[j]
		cc := make([]float64, n)
		for k := 0; k < n; k++ {
			cc[k] = CaseCapability(ells[k], d.Outages[e], d.Normal, k)
		}
		return cc, nil
	})
	if err != nil {
		return nil, err
	}
	caseCap := map[grid.Line][]float64{}
	for j, e := range d.ValidLines {
		caseCap[e] = caps[j]
	}
	p := make([][]float64, n)
	err = par.ForEach(ctx, workers, n, func(_ context.Context, i int) error {
		p[i] = make([]float64, n)
		// F_i: all valid training cases involving node i.
		var cases []grid.Line
		for _, e := range d.ValidLines {
			a, b := d.G.Endpoints(e)
			if a == i || b == i {
				cases = append(cases, e)
			}
		}
		if len(cases) == 0 {
			return nil
		}
		ps := make([]float64, len(cases))
		for k := 0; k < n; k++ {
			for c, e := range cases {
				ps[c] = caseCap[e][k]
			}
			p[i][k] = UnionProb(ps)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Capabilities{Ellipses: ells, P: p, Case: caseCap}, nil
}
