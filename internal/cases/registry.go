package cases

import (
	"fmt"
	"sort"

	"pmuoutage/internal/grid"
)

// Builder constructs a test system.
type Builder func() *grid.Grid

var registry = map[string]Builder{
	"ieee14":    IEEE14,
	"ieee30":    IEEE30,
	"ieee57":    IEEE57,
	"ieee118":   IEEE118,
	"synth300":  Synth300,
	"synth1000": Synth1000,
}

// Names returns the registered case names in sorted order.
func Names() []string {
	out := make([]string, 0, len(registry))
	for k := range registry {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Load builds the named test system or returns an error listing the
// available names.
func Load(name string) (*grid.Grid, error) {
	b, ok := registry[name]
	if !ok {
		return nil, fmt.Errorf("cases: unknown system %q (available: %v)", name, Names())
	}
	return b(), nil
}

// All returns the paper's evaluation set — the four IEEE stand-ins,
// smallest first. The scale grids (synth300, synth1000) are loadable
// by name but deliberately excluded: experiment sweeps iterate this
// set, and the scale grids belong to the benchmark/scaling harness.
func All() []*grid.Grid {
	return []*grid.Grid{IEEE14(), IEEE30(), IEEE57(), IEEE118()}
}
