package ellipse

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMVEEValidation(t *testing.T) {
	if _, err := FitMVEE([]float64{1}, []float64{1}, 1, 0); err != ErrTooFewPoints {
		t.Fatalf("err = %v", err)
	}
	if _, err := FitMVEE([]float64{1, 2}, []float64{1}, 1, 0); err != ErrTooFewPoints {
		t.Fatalf("err = %v", err)
	}
}

func TestMVEEContainsAllPoints(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(60)
		vm := make([]float64, n)
		va := make([]float64, n)
		for i := range vm {
			vm[i] = 1 + 0.02*rng.NormFloat64()
			va[i] = -0.3 + 0.05*rng.NormFloat64()
		}
		e, err := FitMVEE(vm, va, 1.05, 0)
		if err != nil {
			return false
		}
		for i := range vm {
			if !e.Contains(vm[i], va[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMVEETighterThanCovarianceFit(t *testing.T) {
	// With a heavy outlier, the covariance fit inflates in every
	// direction while the MVEE hugs the hull: the MVEE area must not
	// exceed the covariance ellipse's.
	rng := rand.New(rand.NewSource(3))
	n := 120
	vm := make([]float64, n)
	va := make([]float64, n)
	for i := range vm {
		vm[i] = 0.003 * rng.NormFloat64()
		va[i] = 0.003 * rng.NormFloat64()
	}
	vm[0], va[0] = 0.05, 0.05 // outlier

	cov, err := Fit(vm, va, 1)
	if err != nil {
		t.Fatal(err)
	}
	mvee, err := FitMVEE(vm, va, 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	areaOf := func(e *Ellipse) float64 {
		maj, min := e.Axes()
		return math.Pi * maj * min
	}
	if areaOf(mvee) > areaOf(cov)*1.01 {
		t.Fatalf("MVEE area %.3g exceeds covariance fit %.3g", areaOf(mvee), areaOf(cov))
	}
}

func TestMVEEKnownSquare(t *testing.T) {
	// MVEE of the four corners of the unit square centered at origin:
	// the circle of radius sqrt(2)/... the enclosing ellipse is the
	// circle through the corners, x² + y² = 0.5.
	vm := []float64{0.5, -0.5, 0.5, -0.5}
	va := []float64{0.5, 0.5, -0.5, -0.5}
	e, err := FitMVEE(vm, va, 1, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(e.C[0]) > 1e-6 || math.Abs(e.C[1]) > 1e-6 {
		t.Fatalf("center = %v, want origin", e.C)
	}
	maj, min := e.Axes()
	want := math.Sqrt(0.5)
	if math.Abs(maj-want) > 1e-3 || math.Abs(min-want) > 1e-3 {
		t.Fatalf("axes = %v/%v, want %v", maj, min, want)
	}
	// Corners on the boundary (within tolerance + containment inflation).
	for i := range vm {
		if q := e.Quad(vm[i], va[i]); q < 0.99 || q > 1.0001 {
			t.Fatalf("corner %d quad = %v, want ~1", i, q)
		}
	}
}

func TestMVEEDegenerateLine(t *testing.T) {
	// Collinear points: floor regularisation must keep the fit usable.
	vm := []float64{0, 1, 2, 3}
	va := []float64{0, 0, 0, 0}
	e, err := FitMVEE(vm, va, 1.1, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := range vm {
		if !e.Contains(vm[i], va[i]) {
			t.Fatal("collinear point escaped MVEE")
		}
	}
	if e.Contains(1.5, 1) {
		t.Fatal("point far off the line must be outside")
	}
}

func TestInvert3RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m [3][3]float64
		for a := 0; a < 3; a++ {
			for b := a; b < 3; b++ {
				v := rng.NormFloat64()
				m[a][b], m[b][a] = v, v
			}
			m[a][a] += 4 // diagonally dominant => invertible
		}
		inv, ok := invert3(m)
		if !ok {
			return false
		}
		// m * inv ~ I
		for a := 0; a < 3; a++ {
			for b := 0; b < 3; b++ {
				var s float64
				for k := 0; k < 3; k++ {
					s += m[a][k] * inv[k][b]
				}
				want := 0.0
				if a == b {
					want = 1
				}
				if math.Abs(s-want) > 1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if _, ok := invert3([3][3]float64{}); ok {
		t.Fatal("zero matrix must not invert")
	}
}
