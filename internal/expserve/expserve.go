// Package expserve is the experiments fleet worker: the HTTP surface
// cmd/experiments exposes under -serve so a router can distribute
// figure jobs across processes. It lives apart from
// internal/experiments because the wire types (package api) depend on
// the root pmuoutage package, whose own tests import the experiments
// engine — the split keeps that edge acyclic.
package expserve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"

	"pmuoutage/api"
	"pmuoutage/internal/experiments"
)

// FromRequest maps the wire request onto an experiments Config;
// zero-valued fields keep the package defaults.
func FromRequest(req api.ExperimentRequest) experiments.Config {
	return experiments.Config{
		Systems:    req.Systems,
		TrainSteps: req.TrainSteps,
		TestSteps:  req.TestSteps,
		Seed:       req.Seed,
		UseDC:      req.UseDC,
		Clusters:   req.Clusters,
		Workers:    req.Workers,
	}
}

// Run executes one named figure over the request's scope and returns
// its rows as wire rows, in the figure's deterministic order.
func Run(ctx context.Context, req api.ExperimentRequest) ([]api.ExperimentRow, error) {
	fn, ok := experiments.Figures[req.Figure]
	if !ok {
		return nil, fmt.Errorf("%w: %q", experiments.ErrUnknownFigure, req.Figure)
	}
	rows, err := fn(ctx, FromRequest(req))
	if err != nil {
		return nil, err
	}
	out := make([]api.ExperimentRow, len(rows))
	for i, r := range rows {
		out[i] = api.ExperimentRow{
			Figure: r.Figure, System: r.System, Method: r.Method,
			X: r.X, IA: r.IA, FA: r.FA, N: r.N,
		}
	}
	return out, nil
}

// Handler is the worker HTTP surface: POST /v1/experiments runs one
// figure synchronously and returns its rows; GET /healthz and GET
// /v1/shards answer so the router's pool machinery can probe a worker
// like any other backend (a worker has no shards).
func Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	mux.HandleFunc("GET /v1/shards", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, []api.ShardStatus{})
	})
	mux.HandleFunc("POST /v1/experiments", func(w http.ResponseWriter, r *http.Request) {
		var req api.ExperimentRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, api.CodeBadRequest, err)
			return
		}
		rows, err := Run(r.Context(), req)
		switch {
		case errors.Is(err, experiments.ErrUnknownFigure):
			writeError(w, api.CodeBadRequest, err)
			return
		case err != nil:
			writeError(w, api.CodeInternal, err)
			return
		}
		writeJSON(w, http.StatusOK, api.ExperimentResponse{Rows: rows})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code api.Code, err error) {
	writeJSON(w, code.HTTPStatus(), api.ErrorEnvelope{
		Code:      code,
		Error:     err.Error(),
		Retryable: code.Retryable(),
	})
}
