// Package allocfree is the golden fixture for the allocfree analyzer.
// Inc and ZeroKey are pinned by an AllocsPerRun test (see
// allocfree_test.go) and use only allocation-free constructs, so they
// produce nothing; every other annotated function demonstrates one
// allocating construct plus the missing-pin finding.
package allocfree

import (
	"fmt"
	"sync/atomic"
)

// Counter mirrors the obs hot-path shape.
type Counter struct{ v atomic.Uint64 }

// Inc is pinned and clean: a nil check and one atomic add.
//
//gridlint:zeroalloc
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// key mirrors obs.traceCtxKey: boxing a zero-size value is free.
type key struct{}

//gridlint:zeroalloc
func ZeroKey() {
	sink(key{})
}

func sink(v any) { _ = v }

//gridlint:zeroalloc
func Format(x int) string { // want `function Format is marked zeroalloc but no AllocsPerRun test pins it`
	return fmt.Sprintf("%d", x) // want `zeroalloc function Format calls fmt.Sprintf, which allocates`
}

//gridlint:zeroalloc
func Concat(a, b string) string { // want `function Concat is marked zeroalloc but no AllocsPerRun test pins it`
	return a + b // want `zeroalloc function Concat concatenates strings, which allocates`
}

//gridlint:zeroalloc
func Grow(xs []int, x int) []int { // want `function Grow is marked zeroalloc but no AllocsPerRun test pins it`
	return append(xs, x) // want `zeroalloc function Grow calls append, which may grow its backing array`
}

//gridlint:zeroalloc
func Build() ([]int, map[string]int) { // want `function Build is marked zeroalloc but no AllocsPerRun test pins it`
	s := make([]int, 4)        // want `zeroalloc function Build calls make, which allocates`
	return s, map[string]int{} // want `zeroalloc function Build builds a map literal, which allocates`
}

//gridlint:zeroalloc
func Lit() []int { // want `function Lit is marked zeroalloc but no AllocsPerRun test pins it`
	return []int{1, 2} // want `zeroalloc function Lit builds a slice literal, which allocates`
}

//gridlint:zeroalloc
func Addr() *Counter { // want `function Addr is marked zeroalloc but no AllocsPerRun test pins it`
	return &Counter{} // want `zeroalloc function Addr takes the address of a composite literal, which escapes to the heap`
}

//gridlint:zeroalloc
func New() *Counter { // want `function New is marked zeroalloc but no AllocsPerRun test pins it`
	return new(Counter) // want `zeroalloc function New calls new, which allocates`
}

//gridlint:zeroalloc
func Bytes(s string) []byte { // want `function Bytes is marked zeroalloc but no AllocsPerRun test pins it`
	return []byte(s) // want `zeroalloc function Bytes converts between string and byte/rune slice, which copies and allocates`
}

//gridlint:zeroalloc
func Box(x int) { // want `function Box is marked zeroalloc but no AllocsPerRun test pins it`
	sink(x) // want `zeroalloc function Box boxes a value of type int into an interface argument, which allocates`
}

//gridlint:zeroalloc
func Closure(n int) func() int { // want `function Closure is marked zeroalloc but no AllocsPerRun test pins it`
	return func() int { return n } // want `zeroalloc function Closure creates a function literal, which may allocate a closure`
}

//gridlint:zeroalloc
func Spawn() { // want `function Spawn is marked zeroalloc but no AllocsPerRun test pins it`
	go run() // want `zeroalloc function Spawn starts a goroutine, which allocates`
}

func run() {}
