package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"sync/atomic"
	"time"
)

// TraceHeader is the HTTP header that carries a request's trace ID in
// both directions: accepted at ingress (a caller-supplied ID is kept so
// traces span services) and echoed on every response, success or error.
const TraceHeader = "X-Trace-Id"

// traceCtxKey keys the trace ID in a context.
type traceCtxKey struct{}

// WithTraceID returns ctx carrying id; an empty id returns ctx
// unchanged.
func WithTraceID(ctx context.Context, id string) context.Context {
	if id == "" {
		return ctx
	}
	return context.WithValue(ctx, traceCtxKey{}, id)
}

// TraceID returns the trace ID carried by ctx ("" if none). Reading is
// allocation-free — the lookup stops at the stored string.
//
//gridlint:zeroalloc
func TraceID(ctx context.Context) string {
	id, _ := ctx.Value(traceCtxKey{}).(string)
	return id
}

// traceSeq is the trace-ID state: seeded once from crypto/rand, then
// advanced by a large odd constant per ID (a Weyl sequence), so every
// process mints a distinct, never-repeating stream without syscalls or
// locks on the request path.
var traceSeq atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		traceSeq.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		// No entropy source: fall back to the clock. IDs stay unique
		// within the process, which is all tracing needs.
		traceSeq.Store(uint64(time.Now().UnixNano()))
	}
}

// NewTraceID mints a 16-hex-character trace ID: unique within the
// process, collision-resistant across processes via the random seed.
// One string allocation, minted only at request ingress — never on the
// per-sample hot path.
func NewTraceID() string {
	z := traceSeq.Add(0x9e3779b97f4a7c15) // golden-ratio Weyl increment
	// splitmix64 finalizer: consecutive sequence values become
	// well-distributed IDs.
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	const hexdigits = "0123456789abcdef"
	var buf [16]byte
	for i := 15; i >= 0; i-- {
		buf[i] = hexdigits[z&0xf]
		z >>= 4
	}
	return string(buf[:])
}
