// Package comm implements the measurement data network of the paper's
// Figure 1 as real TCP components: PMU senders stream per-bus phasor
// frames to their Phasor Data Concentrator (PDC), PDCs aggregate a
// cluster's frames per time step and relay them to the control-center
// Collector, and the Collector assembles full-grid samples — marking
// buses whose data never arrived as missing, exactly the unreliability
// model the detector is built for (lossy links, dead PMUs, dark PDCs).
//
// The wire format is newline-delimited JSON, one frame per line.
package comm

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"sync"
	"time"
)

// Frame is one PMU measurement: one bus, one time step.
type Frame struct {
	Bus int     `json:"bus"` // bus index
	Seq int     `json:"seq"` // time-step sequence number
	Vm  float64 `json:"vm"`  //gridlint:unit pu
	Va  float64 `json:"va"`  //gridlint:unit rad
}

// ClusterFrame is a PDC's aggregate for one time step: the frames it
// received from its cluster's PMUs (possibly a subset).
type ClusterFrame struct {
	PDC   int       `json:"pdc"`
	Seq   int       `json:"seq"`
	Buses []int     `json:"buses"`
	Vm    []float64 `json:"vm"` //gridlint:unit pu // parallel to Buses
	Va    []float64 `json:"va"` //gridlint:unit rad // parallel to Buses
}

// writeJSONLine marshals v and writes it as one line.
func writeJSONLine(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	_, err = w.Write(b)
	return err
}

// PMU streams frames for one bus to a PDC over TCP. Loss probability
// models an unreliable PMU→PDC channel; Down models a dead device.
type PMU struct {
	Bus  int
	Loss float64 // per-frame drop probability on the sending side

	mu   sync.Mutex
	down bool
	conn net.Conn
	rng  *rand.Rand
}

// NewPMU creates a PMU for a bus, connected to the PDC at addr.
func NewPMU(bus int, addr string, loss float64, seed int64) (*PMU, error) {
	if loss < 0 || loss >= 1 {
		return nil, fmt.Errorf("comm: loss probability %v outside [0,1)", loss)
	}
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("comm: PMU %d dial: %w", bus, err)
	}
	return &PMU{Bus: bus, Loss: loss, conn: conn, rng: rand.New(rand.NewSource(seed))}, nil
}

// SetDown marks the device dead (frames silently dropped) or alive.
func (p *PMU) SetDown(down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = down
}

// Send transmits one measurement; dead devices and lossy links drop it.
//
//gridlint:unit vm pu
//gridlint:unit va rad
func (p *PMU) Send(seq int, vm, va float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down || p.rng.Float64() < p.Loss {
		return nil
	}
	return writeJSONLine(p.conn, Frame{Bus: p.Bus, Seq: seq, Vm: vm, Va: va})
}

// Close shuts the connection.
func (p *PMU) Close() error { return p.conn.Close() }

// PDC aggregates a cluster's PMU frames per sequence number and relays
// cluster frames to the collector. A PDC taken down drops its whole
// cluster — the correlated-loss pattern of §III-B.
type PDC struct {
	ID int

	ln       net.Listener
	upstream net.Conn
	flushAge time.Duration

	mu      sync.Mutex
	down    bool
	closed  bool
	conns   map[net.Conn]struct{} // accepted PMU conns, so Close can unblock readers
	pending map[int]*ClusterFrame // seq -> partial aggregate
	stamps  map[int]time.Time
	done    chan struct{}
	wg      sync.WaitGroup
}

// NewPDC starts a PDC listening on listenAddr (use "127.0.0.1:0" for an
// ephemeral port) relaying to the collector at upstreamAddr. flushAge is
// how long a partial aggregate waits for stragglers before being
// forwarded (default 50ms).
func NewPDC(id int, listenAddr, upstreamAddr string, flushAge time.Duration) (*PDC, error) {
	if flushAge <= 0 {
		flushAge = 50 * time.Millisecond
	}
	ln, err := net.Listen("tcp", listenAddr)
	if err != nil {
		return nil, fmt.Errorf("comm: PDC %d listen: %w", id, err)
	}
	up, err := net.Dial("tcp", upstreamAddr)
	if err != nil {
		_ = ln.Close() // already failing; the dial error is the one to report
		return nil, fmt.Errorf("comm: PDC %d upstream dial: %w", id, err)
	}
	p := &PDC{
		ID: id, ln: ln, upstream: up, flushAge: flushAge,
		conns:   map[net.Conn]struct{}{},
		pending: map[int]*ClusterFrame{}, stamps: map[int]time.Time{},
		done: make(chan struct{}),
	}
	p.wg.Add(2)
	//gridlint:ignore ctxflow server lifetime is bound by Close, not a per-call context
	go p.acceptLoop()
	go p.flushLoop()
	return p, nil
}

// Addr returns the address PMUs should dial.
func (p *PDC) Addr() string { return p.ln.Addr().String() }

// SetDown simulates a PDC failure: aggregates are dropped, not relayed.
func (p *PDC) SetDown(down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.down = down
}

func (p *PDC) acceptLoop() {
	defer p.wg.Done()
	for {
		conn, err := p.ln.Accept()
		if err != nil {
			return // listener closed
		}
		if !p.track(conn) {
			_ = conn.Close() // accept raced with Close
			continue
		}
		p.wg.Add(1)
		go p.readPMU(conn)
	}
}

// track registers an accepted connection so Close can unblock its
// reader; it refuses connections that race with shutdown.
func (p *PDC) track(conn net.Conn) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return false
	}
	p.conns[conn] = struct{}{}
	return true
}

func (p *PDC) untrack(conn net.Conn) {
	p.mu.Lock()
	defer p.mu.Unlock()
	delete(p.conns, conn)
}

func (p *PDC) readPMU(conn net.Conn) {
	defer p.wg.Done()
	defer p.untrack(conn)
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		var f Frame
		if err := json.Unmarshal(sc.Bytes(), &f); err != nil {
			continue // corrupt frame: drop, keep the stream alive
		}
		p.ingest(f)
	}
}

func (p *PDC) ingest(f Frame) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.down {
		return
	}
	cf := p.pending[f.Seq]
	if cf == nil {
		cf = &ClusterFrame{PDC: p.ID, Seq: f.Seq}
		p.pending[f.Seq] = cf
		p.stamps[f.Seq] = time.Now()
	}
	cf.Buses = append(cf.Buses, f.Bus)
	cf.Vm = append(cf.Vm, f.Vm)
	cf.Va = append(cf.Va, f.Va)
}

func (p *PDC) flushLoop() {
	defer p.wg.Done()
	tick := time.NewTicker(p.flushAge / 2)
	defer tick.Stop()
	for {
		select {
		case <-p.done:
			return
		case <-tick.C:
			p.flush(false)
		}
	}
}

// flush forwards aggregates older than flushAge (or all, if force).
func (p *PDC) flush(force bool) {
	ready, down := p.takeReady(force)
	if down {
		return
	}
	for _, cf := range ready {
		// Write errors mean the collector is gone; nothing to do here.
		_ = writeJSONLine(p.upstream, cf)
	}
}

// takeReady removes and returns the aggregates due for forwarding,
// along with the down flag sampled under the same lock.
func (p *PDC) takeReady(force bool) (ready []*ClusterFrame, down bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	for seq, cf := range p.pending {
		if force || now.Sub(p.stamps[seq]) >= p.flushAge {
			ready = append(ready, cf)
			delete(p.pending, seq)
			delete(p.stamps, seq)
		}
	}
	return ready, p.down
}

// Close flushes pending aggregates and tears the PDC down. It is
// idempotent, and it closes accepted PMU connections so reader
// goroutines parked in Scan cannot deadlock the final Wait.
func (p *PDC) Close() error {
	p.flush(true)
	conns, ok := p.shutdown()
	if !ok {
		return nil // already closed
	}
	errLn := p.ln.Close()
	for _, c := range conns {
		_ = c.Close() // unblocks the conn's readPMU goroutine
	}
	errUp := p.upstream.Close()
	p.wg.Wait()
	return errors.Join(errLn, errUp)
}

// shutdown marks the PDC closed and hands back the tracked connections;
// it reports false if Close already ran.
func (p *PDC) shutdown() ([]net.Conn, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil, false
	}
	p.closed = true
	close(p.done)
	conns := make([]net.Conn, 0, len(p.conns))
	for c := range p.conns {
		conns = append(conns, c)
	}
	return conns, true
}
