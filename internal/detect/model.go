package detect

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"pmuoutage/internal/ellipse"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/mat"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/subspace"
)

// ModelVersion is the current artifact format version. Decoding rejects
// any other version with ErrModelVersion: the format has no migration
// story by design — a model is cheap to retrain, so version bumps are
// honest breaks rather than silent best-effort reads.
//
// Version history: 1 had no per-case capability rows; 2 added
// CaseCapability so incremental patches can rebuild node capability
// rows locally.
const ModelVersion = 2

// Sentinel errors of the model codec. Everything Encode/Decode/FromModel
// mint wraps one of these so callers branch with errors.Is.
var (
	// ErrModelVersion reports an artifact whose format version this
	// build does not read (or an attempt to encode a foreign version).
	ErrModelVersion = errors.New("detect: model format version mismatch")
	// ErrModelCorrupt reports an artifact that fails to parse, fails its
	// fingerprint check, or is structurally inconsistent (dimension or
	// index constraints violated).
	ErrModelCorrupt = errors.New("detect: corrupt model artifact")
)

// Basis is the wire form of a subspace basis: a Rows×Cols column basis
// stored row-major. Cols == 0 encodes the zero subspace.
type Basis struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data,omitempty"`
}

// ModelEllipse is the wire form of one normal-operation ellipse Ω_k
// (Eq. 4): center C and packed symmetric shape matrix A.
type ModelEllipse struct {
	C [2]float64 `json:"c"`
	A [3]float64 `json:"a"`
}

// Model is the immutable, self-contained artifact of one training run:
// everything Train produces — the grid it was trained on, the PDC
// partition, per-line signature subspaces (Eq. 2), node union and
// intersection subspaces (Eq. 3), normal-operation mean and S⁰,
// ellipses (Eq. 4), the capability table (Eqs. 5–7), detection groups
// (Eq. 8), and the calibrated no-outage threshold — plus a format
// version and a content fingerprint.
//
// A Model is a value to serve from, not to mutate: FromModel wraps it
// into a Detector without copying the numeric payload, and the
// round-trip guarantee is that Decode(Encode(m)) detects byte-
// identically to the in-memory model. Encoding is deterministic JSON
// (Go's float64 encoding is shortest-round-trip, so every coefficient
// survives exactly), and the fingerprint is the SHA-256 of the encoding
// with the fingerprint field blanked — recomputed and checked on
// decode, so a corrupted or hand-edited artifact fails loudly instead
// of serving subtly wrong scores.
type Model struct {
	// FormatVersion is ModelVersion at encode time.
	FormatVersion int `json:"format_version"`
	// Fingerprint is the hex SHA-256 over the canonical encoding of the
	// model with this field empty. It doubles as the training
	// fingerprint: two runs that learned identical state share it.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Extra carries embedding-layer metadata (the facade stores its
	// Options here) verbatim; it is covered by the fingerprint.
	Extra json.RawMessage `json:"extra,omitempty"`

	// Config is the detector configuration with defaults applied.
	Config Config `json:"config"`
	// Grid is the full power network the model was trained on.
	Grid *grid.Grid `json:"grid"`
	// Clusters is the PDC partition (bus indices per cluster).
	Clusters [][]int `json:"clusters"`
	// ValidLines are the lines with learned outage subspaces, in
	// training order (LineBases is indexed identically).
	ValidLines []grid.Line `json:"valid_lines"`

	// Mean is the normal-operation mean in channel space.
	Mean []float64 `json:"mean"`
	// NormalBasis is S⁰, the dominant load-variation directions.
	NormalBasis Basis `json:"normal_basis"`
	// LineBases are the per-line signature subspaces, one per ValidLines
	// entry.
	LineBases []Basis `json:"line_bases"`
	// UnionBases and InterBases are the per-node S_i^∪ and S_i^∩.
	UnionBases []Basis `json:"union_bases"`
	InterBases []Basis `json:"inter_bases"`
	// NodeLines lists each node's incident valid lines.
	NodeLines [][]grid.Line `json:"node_lines"`

	// Ellipses are the per-node normal-operation ellipses.
	Ellipses []ModelEllipse `json:"ellipses"`
	// Capability is the matrix P with P[i][k] = p_{i,k} of Eq. (6).
	Capability [][]float64 `json:"capability"`
	// CaseCapability holds the per-case rows of Eq. (5), one per
	// ValidLines entry, from which Capability's union rows derive. Stored
	// so a Patch can recompute the rows of the nodes it touches without
	// the training data of the untouched lines.
	CaseCapability [][]float64 `json:"case_capability"`
	// Groups are the per-cluster detection groups.
	Groups []Group `json:"groups"`

	// NoOutageThreshold is the calibrated deviation-energy threshold.
	NoOutageThreshold float64 `json:"no_outage_threshold"`
}

// Snapshot extracts the trained state of the detector as a sealed
// Model. The snapshot shares the detector's numeric payload (both are
// immutable after training); bases are copied into wire form.
func (det *Detector) Snapshot() (*Model, error) {
	n := det.g.N()
	m := &Model{
		FormatVersion:     ModelVersion,
		Config:            det.cfg,
		Grid:              det.g,
		Clusters:          det.nw.Clusters,
		ValidLines:        det.validLines,
		Mean:              det.mean,
		NormalBasis:       basisOf(det.normalSub),
		LineBases:         make([]Basis, len(det.validLines)),
		UnionBases:        make([]Basis, n),
		InterBases:        make([]Basis, n),
		NodeLines:         det.nodeLines,
		Ellipses:          make([]ModelEllipse, len(det.caps.Ellipses)),
		Capability:        det.caps.P,
		CaseCapability:    make([][]float64, len(det.validLines)),
		Groups:            det.groups,
		NoOutageThreshold: det.noOutageThresh,
	}
	for k, e := range det.validLines {
		m.CaseCapability[k] = det.caps.Case[e]
	}
	for k, e := range det.validLines {
		m.LineBases[k] = basisOf(det.lineSubs[e])
	}
	for i := 0; i < n; i++ {
		m.UnionBases[i] = basisOf(det.unionSubs[i])
		m.InterBases[i] = basisOf(det.interSubs[i])
	}
	for k, e := range det.caps.Ellipses {
		m.Ellipses[k] = ModelEllipse{C: e.C, A: e.A}
	}
	if err := m.Seal(); err != nil {
		return nil, err
	}
	return m, nil
}

// Seal stamps the model's fingerprint from its current content. Layers
// that attach Extra metadata after Snapshot must re-Seal.
func (m *Model) Seal() error {
	fp, err := m.ComputeFingerprint()
	if err != nil {
		return err
	}
	m.Fingerprint = fp
	return nil
}

// ComputeFingerprint returns the hex SHA-256 of the model's canonical
// encoding with the fingerprint field blanked.
func (m *Model) ComputeFingerprint() (string, error) {
	c := *m
	c.Fingerprint = ""
	b, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("%w: unencodable content: %v", ErrModelCorrupt, err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// Encode writes the model artifact to w: one JSON object, fingerprint
// recomputed from content so the written artifact is always
// self-consistent.
func (m *Model) Encode(w io.Writer) error {
	if m.FormatVersion != ModelVersion {
		return fmt.Errorf("%w: cannot encode version %d, this build writes %d",
			ErrModelVersion, m.FormatVersion, ModelVersion)
	}
	fp, err := m.ComputeFingerprint()
	if err != nil {
		return err
	}
	c := *m
	c.Fingerprint = fp
	if err := json.NewEncoder(w).Encode(&c); err != nil {
		return fmt.Errorf("detect: encode model: %w", err)
	}
	return nil
}

// DecodeModel reads one model artifact from r, rejecting foreign format
// versions with ErrModelVersion and unparseable, fingerprint-mismatched,
// or structurally invalid content with ErrModelCorrupt. The returned
// model has passed the same validation FromModel performs, so it is
// ready to serve.
func DecodeModel(r io.Reader) (*Model, error) {
	var m Model
	if err := json.NewDecoder(r).Decode(&m); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrModelCorrupt, err)
	}
	if m.FormatVersion != ModelVersion {
		return nil, fmt.Errorf("%w: artifact has format version %d, this build reads %d",
			ErrModelVersion, m.FormatVersion, ModelVersion)
	}
	fp, err := m.ComputeFingerprint()
	if err != nil {
		return nil, err
	}
	if m.Fingerprint != fp {
		return nil, fmt.Errorf("%w: fingerprint mismatch: artifact says %q, content hashes to %q",
			ErrModelCorrupt, m.Fingerprint, fp)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	return &m, nil
}

// validate checks the structural invariants FromModel relies on.
func (m *Model) validate() error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrModelCorrupt, fmt.Sprintf(format, args...))
	}
	if m.Grid == nil || m.Grid.N() == 0 {
		return bad("no grid")
	}
	n := m.Grid.N()
	dim := m.Config.Channel.Dim(n)
	if len(m.Mean) != dim {
		return bad("mean has %d entries, channel dimension is %d", len(m.Mean), dim)
	}
	if len(m.LineBases) != len(m.ValidLines) {
		return bad("%d line bases for %d valid lines", len(m.LineBases), len(m.ValidLines))
	}
	for _, e := range m.ValidLines {
		if int(e) < 0 || int(e) >= m.Grid.E() {
			return bad("valid line %d out of range %d", e, m.Grid.E())
		}
	}
	if len(m.UnionBases) != n || len(m.InterBases) != n || len(m.NodeLines) != n {
		return bad("per-node tables sized %d/%d/%d, grid has %d buses",
			len(m.UnionBases), len(m.InterBases), len(m.NodeLines), n)
	}
	if len(m.Ellipses) != n {
		return bad("%d ellipses for %d buses", len(m.Ellipses), n)
	}
	if len(m.Capability) != n {
		return bad("capability matrix has %d rows, grid has %d buses", len(m.Capability), n)
	}
	for i, row := range m.Capability {
		if len(row) != n {
			return bad("capability row %d has %d entries, grid has %d buses", i, len(row), n)
		}
	}
	if len(m.CaseCapability) != len(m.ValidLines) {
		return bad("%d case-capability rows for %d valid lines", len(m.CaseCapability), len(m.ValidLines))
	}
	for k, row := range m.CaseCapability {
		if len(row) != n {
			return bad("case-capability row %d has %d entries, grid has %d buses", k, len(row), n)
		}
	}
	if len(m.Groups) != len(m.Clusters) {
		return bad("%d detection groups for %d clusters", len(m.Groups), len(m.Clusters))
	}
	check := func(what string, b Basis) error {
		if b.Rows != dim {
			return bad("%s basis has %d rows, channel dimension is %d", what, b.Rows, dim)
		}
		if b.Cols < 0 || len(b.Data) != b.Rows*b.Cols {
			return bad("%s basis %dx%d carries %d values", what, b.Rows, b.Cols, len(b.Data))
		}
		return nil
	}
	if err := check("normal", m.NormalBasis); err != nil {
		return err
	}
	for k := range m.LineBases {
		if err := check(fmt.Sprintf("line %d", m.ValidLines[k]), m.LineBases[k]); err != nil {
			return err
		}
	}
	for i := 0; i < n; i++ {
		if err := check(fmt.Sprintf("node %d union", i), m.UnionBases[i]); err != nil {
			return err
		}
		if err := check(fmt.Sprintf("node %d intersection", i), m.InterBases[i]); err != nil {
			return err
		}
	}
	return nil
}

// FromModel wraps a model into a ready-to-serve Detector. No numeric
// work happens here — bases, tables, and thresholds are used as stored
// — which is what makes hot model swaps cheap. The detector behaves
// byte-identically to the one Train produced the model from.
func FromModel(m *Model) (*Detector, error) {
	if m.FormatVersion != ModelVersion {
		return nil, fmt.Errorf("%w: model has format version %d, this build reads %d",
			ErrModelVersion, m.FormatVersion, ModelVersion)
	}
	if err := m.validate(); err != nil {
		return nil, err
	}
	nw, err := pmunet.FromClusters(m.Grid, m.Clusters)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrModelCorrupt, err)
	}
	n := m.Grid.N()
	det := &Detector{
		cfg:            m.Config,
		g:              m.Grid,
		nw:             nw,
		mean:           m.Mean,
		lineSubs:       make(map[grid.Line]*subspace.Subspace, len(m.ValidLines)),
		unionSubs:      make([]*subspace.Subspace, n),
		interSubs:      make([]*subspace.Subspace, n),
		nodeLines:      m.NodeLines,
		normalSub:      m.NormalBasis.subspace(),
		noOutageThresh: m.NoOutageThreshold,
		validLines:     m.ValidLines,
		caps: &Capabilities{
			Ellipses: make([]*ellipse.Ellipse, n),
			P:        m.Capability,
			Case:     make(map[grid.Line][]float64, len(m.ValidLines)),
		},
		groups: m.Groups,
	}
	for k, e := range m.ValidLines {
		det.lineSubs[e] = m.LineBases[k].subspace()
		det.caps.Case[e] = m.CaseCapability[k]
	}
	for i := 0; i < n; i++ {
		det.unionSubs[i] = m.UnionBases[i].subspace()
		det.interSubs[i] = m.InterBases[i].subspace()
		det.caps.Ellipses[i] = &ellipse.Ellipse{C: m.Ellipses[i].C, A: m.Ellipses[i].A}
	}
	return det, nil
}

// basisOf converts a subspace to wire form, copying the coefficients.
func basisOf(s *subspace.Subspace) Basis {
	b := s.Basis()
	r, c := b.Dims()
	out := Basis{Rows: r, Cols: c}
	if r*c > 0 {
		out.Data = make([]float64, 0, r*c)
		for i := 0; i < r; i++ {
			for j := 0; j < c; j++ {
				out.Data = append(out.Data, b.At(i, j))
			}
		}
	}
	return out
}

// subspace rebuilds the in-memory subspace. Dimensions are validated by
// Model.validate before this runs.
func (b Basis) subspace() *subspace.Subspace {
	if b.Cols == 0 {
		return subspace.Zero(b.Rows)
	}
	return subspace.FromBasis(mat.NewDenseData(b.Rows, b.Cols, append([]float64(nil), b.Data...)))
}
