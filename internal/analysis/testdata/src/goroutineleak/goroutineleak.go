// Package goroutineleak is golden-test input for the goroutineleak
// analyzer.
package goroutineleak

import (
	"context"
	"sync"
)

func work() {}

func leak() {
	go work() // want `goroutine launched with no WaitGroup, channel operation, or context`
}

func waitGroupJoin() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

func channelJoin() {
	done := make(chan struct{})
	go func() {
		work()
		close(done)
	}()
	<-done
}

func contextBound(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}
