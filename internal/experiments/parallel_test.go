package experiments

import (
	"context"
	"reflect"
	"testing"
)

// TestFiguresWorkersEquivalence pins the determinism contract of the
// parallel row fan-out: every figure must produce identical rows — same
// values, same order — for any worker count, because each row derives
// its own seeds.
func TestFiguresWorkersEquivalence(t *testing.T) {
	ctx := context.Background()
	figures := map[string]func(context.Context, Config) ([]Row, error){
		"fig4":  Fig4,
		"fig5":  Fig5,
		"fig10": Fig10,
	}
	for name, fn := range figures {
		cfg := quickCfg()
		cfg.Workers = 1
		seq, err := fn(ctx, cfg)
		if err != nil {
			t.Fatalf("%s sequential: %v", name, err)
		}
		cfg.Workers = 8
		parl, err := fn(ctx, cfg)
		if err != nil {
			t.Fatalf("%s parallel: %v", name, err)
		}
		if !reflect.DeepEqual(seq, parl) {
			t.Errorf("%s: workers=8 rows differ from workers=1:\nseq:  %v\npar:  %v", name, seq, parl)
		}
	}
}

// TestFiguresContextCancelled checks a cancelled context aborts a run
// with the context error rather than partial rows.
func TestFiguresContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := quickCfg()
	cfg.Seed = 999 // private seed: don't poison the shared data cache
	rows, err := Fig5(ctx, cfg)
	if err == nil {
		t.Fatalf("cancelled context must fail, got %d rows", len(rows))
	}
}
