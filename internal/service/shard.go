package service

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"pmuoutage"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/wire"
)

// State is a shard's lifecycle position.
type State int

const (
	// StateTraining: the supervisor is building the shard's system.
	StateTraining State = iota
	// StateReady: the shard is serving.
	StateReady
	// StateFailed: training failed or the shard was killed; the
	// supervisor will rebuild it after its backoff.
	StateFailed
	// StateStopped: the service is closed.
	StateStopped
)

// String renders the state for status listings and JSON.
func (s State) String() string {
	switch s {
	case StateTraining:
		return "training"
	case StateReady:
		return "ready"
	case StateFailed:
		return "failed"
	default:
		return "stopped"
	}
}

// queueCap is the hard capacity of every per-replica request queue. The
// soft, sample-counted shed bound is Config.QueueDepth; this constant
// only backstops it so the channel's make site stays auditable.
const queueCap = 256

// request is one queued detect call.
type request struct {
	ctx      context.Context
	samples  []pmuoutage.Sample
	rep      *replica      // the replica the request was routed to
	done     chan response // buffered(1): the batcher never blocks on delivery
	enqueued time.Time     // admission instant; queue-wait = batch pop - enqueued
}

type response struct {
	reports []*pmuoutage.Report
	err     error
}

// replica is one serve loop of a shard. Replicas share the shard's
// current system (an immutable model behind an atomic pointer) but own
// independent queues and batch loops, so K replicas coalesce and score
// up to K batches of one shard's traffic concurrently. The inflight
// gauge drives least-loaded routing.
type replica struct {
	id       int
	reqs     chan *request
	inflight atomic.Int64 // samples routed here and not yet answered
}

// shard is one trained system plus its replicas, supervisor state, and
// hot-reload machinery.
type shard struct {
	svc    *Service
	spec   ShardSpec
	logger *slog.Logger // nil when Config.Logger is unset; spans/lifecycle off

	replicas []*replica
	depth    atomic.Int64 // samples admitted but not yet answered (all replicas)

	// streamq carries decoded wire frames from StreamIngest to the
	// shard's stream consumer. Enqueue transfers frame ownership; the
	// consumer recycles each frame after scoring it. Frames queued
	// across a reload or restart are scored by whichever monitor is
	// current when they are popped — same contract as detect requests.
	streamq chan *wire.Frame
	buses   atomic.Int32 // serving grid size; 0 until first activation
	missBuf []int        // stream-consumer-only scratch for missing indices

	// cur is the serving system, swapped atomically by activate, reload,
	// and kill. Batch loops load it exactly once per batch: every sample
	// of a batch is scored by one coherent model even while a reload
	// swaps the pointer mid-flight, and queued requests survive swaps —
	// they simply run on whichever model is current when their batch
	// executes.
	cur atomic.Pointer[pmuoutage.System]
	gen atomic.Uint64 // incarnation counter: bumped per activate and reload

	mu    sync.Mutex
	state State
	err   error // last failure while StateFailed
	sys   *pmuoutage.System
	mon   *pmuoutage.Monitor
	boot  *pmuoutage.Model // artifact to serve on (re)build; nil = retrain
	killc chan struct{}    // closed by kill to stop the current serve loops
}

func newShard(svc *Service, spec ShardSpec) *shard {
	sh := &shard{
		svc:     svc,
		spec:    spec,
		boot:    spec.Model,
		streamq: make(chan *wire.Frame, queueCap),
	}
	if lg := svc.cfg.Logger; lg != nil {
		sh.logger = lg.With(slog.String(obs.AttrComponent, "service"), slog.String(obs.AttrShard, spec.Name))
	}
	svc.stats.reg.GaugeFunc(metricQueueDepth, "samples admitted and not yet answered", func() float64 { return float64(sh.depth.Load()) }, labelShard, spec.Name)
	n := spec.Replicas
	if n <= 0 {
		n = 1
	}
	for i := 0; i < n; i++ {
		sh.replicas = append(sh.replicas, &replica{id: i, reqs: make(chan *request, queueCap)})
	}
	return sh
}

// supervise is the shard's lifecycle loop: train, serve until killed,
// back off, rebuild. Training failures retry with exponential backoff
// (reset after every healthy start); ctx cancellation stops everything.
func (sh *shard) supervise(ctx context.Context) {
	defer sh.svc.wg.Done()
	defer sh.stop()
	backoff := sh.svc.cfg.RestartBackoff
	for ctx.Err() == nil {
		sh.setTraining()
		sh.logState(ctx, slog.LevelInfo, "training", nil)
		sys, err := sh.buildSystem(ctx)
		if err == nil {
			var mon *pmuoutage.Monitor
			mon, err = sys.NewMonitor(sh.svc.cfg.Confirm, sh.svc.cfg.Cooldown)
			if err == nil {
				killc := make(chan struct{})
				sh.activate(sys, mon, killc)
				sh.logState(ctx, slog.LevelInfo, "ready", nil)
				backoff = sh.svc.cfg.RestartBackoff
				sh.serve(ctx, killc)
				if ctx.Err() != nil {
					return
				}
				// Killed: fall through to the backoff-and-rebuild path.
			}
		}
		if ctx.Err() != nil {
			return
		}
		if err != nil {
			sh.fail(fmt.Errorf("%w: %q training failed: %v", ErrUnavailable, sh.spec.Name, err))
		}
		sh.counters().Restarts.Add(1)
		sh.logState(ctx, slog.LevelWarn, "restarting", sh.availErr())
		if !sleep(ctx, backoff) {
			return
		}
		backoff = nextBackoff(backoff, sh.svc.cfg.MaxRestartBackoff)
	}
}

// logState emits one shard lifecycle line; a nil logger disables it.
// Called outside sh.mu — never log under the shard lock.
func (sh *shard) logState(ctx context.Context, level slog.Level, state string, cause error) {
	lg := sh.logger
	if lg == nil || !lg.Enabled(ctx, level) {
		return
	}
	msg := "shard " + state
	gen := slog.Uint64(obs.AttrGeneration, sh.gen.Load())
	if cause != nil {
		lg.LogAttrs(ctx, level, msg, gen, slog.String("cause", cause.Error()))
		return
	}
	lg.LogAttrs(ctx, level, msg, gen)
}

// buildSystem produces the shard's serving system: rewrap the boot
// artifact when one is pinned (ShardSpec.Model or a past reload),
// otherwise run the full training pipeline.
func (sh *shard) buildSystem(ctx context.Context) (*pmuoutage.System, error) {
	if m := sh.bootModel(); m != nil {
		return pmuoutage.NewSystemFromModel(m)
	}
	return pmuoutage.NewSystemContext(ctx, sh.spec.Opts)
}

// bootModel returns the artifact the next (re)build should serve.
func (sh *shard) bootModel() *pmuoutage.Model {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.boot
}

// serve runs one shard incarnation: one batch loop per replica, all
// sharing the current system, until the incarnation is killed or the
// service closes. Queued requests left behind by the exit are drained
// with a retryable error.
func (sh *shard) serve(ctx context.Context, killc chan struct{}) {
	var wg sync.WaitGroup
	for _, rep := range sh.replicas {
		wg.Add(1)
		go func(rep *replica) {
			defer wg.Done()
			sh.serveReplica(ctx, killc, rep)
		}(rep)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		sh.serveStream(ctx, killc)
	}()
	wg.Wait()
	if ctx.Err() == nil {
		sh.drainQueue(sh.availErr())
	}
}

// serveReplica is one replica's batch loop: pop the next request,
// coalesce whatever else is already queued behind it up to MaxBatch
// samples, run one detector batch, and deliver each request its slice.
func (sh *shard) serveReplica(ctx context.Context, killc chan struct{}, rep *replica) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-killc:
			return
		case req := <-rep.reqs:
			t0 := time.Now()
			batch := sh.coalesce(rep, req)
			popped := time.Now()
			sh.counters().StageSeconds(StageCoalesce).Observe(popped.Sub(t0))
			// The coalesce span is per batch; it hangs off the first
			// request's trace (the one that opened the batch window).
			sh.svc.cfg.Tracer.RecordSpan(req.ctx, stageNameCoalesce, t0, popped, nil)
			sh.runBatch(ctx, batch, popped)
		}
	}
}

// coalesce greedily drains already-queued requests behind first until
// the batch reaches MaxBatch samples. It never waits: latency of the
// first request is never spent fishing for company.
func (sh *shard) coalesce(rep *replica, first *request) []*request {
	batch := []*request{first}
	total := len(first.samples)
	for total < sh.svc.cfg.MaxBatch {
		select {
		case req := <-rep.reqs:
			batch = append(batch, req)
			total += len(req.samples)
		default:
			return batch
		}
	}
	return batch
}

// runBatch executes one coalesced batch. Requests whose deadline
// already expired are answered with their context error without
// spending detector time. The serving system is loaded exactly once —
// a concurrent reload cannot tear a batch across two models. If the
// combined batch fails (one request's malformed sample must not fail
// its neighbours), it falls back to one detector call per request so
// each gets exactly its own outcome. popped is the instant the batch
// left the queue — the end of every member's queue-wait span.
func (sh *shard) runBatch(ctx context.Context, batch []*request, popped time.Time) {
	var live []*request
	var samples []pmuoutage.Sample
	for _, req := range batch {
		if err := req.ctx.Err(); err != nil {
			sh.respond(req, response{err: err})
			continue
		}
		live = append(live, req)
		samples = append(samples, req.samples...)
	}
	if len(live) == 0 {
		return
	}
	sys := sh.cur.Load()
	if sys == nil { // killed between pop and run
		for _, req := range live {
			sh.respond(req, response{err: sh.availErr()})
		}
		return
	}
	if hook := sh.svc.cfg.batchHook; hook != nil {
		hook(sh.spec.Name, len(samples))
	}
	start := time.Now()
	reports, err := sys.DetectBatchContext(ctx, samples)
	detectDur := time.Since(start)
	sh.counters().observeBatch(len(samples), detectDur)
	sh.observeSpans(live, popped, start, detectDur, len(samples))
	if err != nil {
		for _, req := range live {
			r, rerr := sys.DetectBatchContext(req.ctx, req.samples)
			sh.respond(req, response{reports: r, err: rerr})
		}
		return
	}
	off := 0
	for _, req := range live {
		n := len(req.samples)
		sh.respond(req, response{reports: reports[off : off+n : off+n]})
		off += n
	}
}

// observeSpans records each batched request's queue-wait into the
// queue-stage histogram, files queue/detect child spans on the tracer
// (per request — a batch's detector call appears in every member's
// trace), and, when a logger is attached with debug enabled, emits one
// span line per request carrying its trace ID. Purely observational:
// with logging and tracing off it is two atomic adds plus two nil-
// receiver calls per request and allocates nothing (pinned by
// TestInstrumentationAllocs).
func (sh *shard) observeSpans(live []*request, popped, detectStart time.Time, detectDur time.Duration, batchSamples int) {
	st := sh.counters()
	queue := st.StageSeconds(StageQueue)
	tr := sh.svc.cfg.Tracer
	detectEnd := detectStart.Add(detectDur)
	for _, req := range live {
		queue.Observe(popped.Sub(req.enqueued))
		tr.RecordSpan(req.ctx, stageNameQueue, req.enqueued, popped, nil)
		tr.RecordSpan(req.ctx, stageNameDetect, detectStart, detectEnd, nil)
	}
	lg := sh.logger
	if lg == nil {
		return
	}
	for _, req := range live {
		if !lg.Enabled(req.ctx, slog.LevelDebug) {
			return
		}
		lg.LogAttrs(req.ctx, slog.LevelDebug, "detect span",
			slog.String(obs.AttrTraceID, obs.TraceID(req.ctx)),
			slog.Uint64(obs.AttrGeneration, sh.gen.Load()),
			slog.Int("request_samples", len(req.samples)),
			slog.Int("batch_samples", batchSamples),
			slog.Duration("queue_wait", popped.Sub(req.enqueued)),
			slog.Duration("detect", detectDur),
		)
	}
}

// detect admits one request: shed if over the queue bound, route to the
// least-loaded replica, then wait for the batcher's response or the
// caller's deadline.
func (sh *shard) detect(ctx context.Context, samples []pmuoutage.Sample) ([]*pmuoutage.Report, error) {
	st := sh.counters()
	st.Requests.Add(1)
	if err := sh.availErr(); err != nil {
		st.Unavailable.Add(1)
		return nil, err
	}
	n := int64(len(samples))
	if d := sh.depth.Add(n); d > int64(sh.svc.cfg.QueueDepth) {
		sh.depth.Add(-n)
		st.Shed.Add(1)
		return nil, fmt.Errorf("%w: shard %q has %d samples pending (bound %d); retry later",
			ErrOverloaded, sh.spec.Name, d-n, sh.svc.cfg.QueueDepth)
	}
	rep := sh.pickReplica()
	rep.inflight.Add(n)
	req := &request{ctx: ctx, samples: samples, rep: rep, done: make(chan response, 1), enqueued: time.Now()}
	select {
	case rep.reqs <- req:
	default:
		rep.inflight.Add(-n)
		sh.depth.Add(-n)
		st.Shed.Add(1)
		return nil, fmt.Errorf("%w: shard %q request queue is full; retry later", ErrOverloaded, sh.spec.Name)
	}
	select {
	case resp := <-req.done:
		return resp.reports, resp.err
	case <-ctx.Done():
		// The batcher still answers the buffered channel and settles the
		// depth accounting; only this caller stops waiting.
		return nil, ctx.Err()
	case <-sh.svc.ctx.Done():
		return nil, ErrClosed
	}
}

// ingest scores one sample on the shard's streaming monitor; the mutex
// serialises the monitor's streak state.
func (sh *shard) ingest(ctx context.Context, sample pmuoutage.Sample) (*pmuoutage.Event, error) {
	sh.counters().Ingests.Add(1)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state != StateReady {
		sh.counters().Unavailable.Add(1)
		return nil, sh.availErrLocked()
	}
	return sh.mon.Ingest(sample)
}

// serveStream is the shard's single stream consumer: it pops decoded
// wire frames off streamq and scores them on the shared monitor path.
// One consumer per incarnation keeps the emitted event order identical
// to the frame arrival order — the equivalence tests depend on that.
func (sh *shard) serveStream(ctx context.Context, killc chan struct{}) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-killc:
			return
		case f := <-sh.streamq:
			if hook := sh.svc.cfg.streamHook; hook != nil {
				// Test seam: the hook owns the frame (it is not recycled
				// here), so alloc-pin tests can reuse pre-built frames.
				hook(sh.spec.Name, f)
				continue
			}
			sh.streamFrame(ctx, f)
		}
	}
}

// streamFrame scores one decoded frame through the same ingest path the
// JSON transport uses — detection events are byte-identical across
// transports. The frame is recycled once ingest returns: the detector
// copies the channel vectors it needs, never retaining the pooled
// slices.
func (sh *shard) streamFrame(ctx context.Context, f *wire.Frame) {
	seq := f.Seq
	sample := pmuoutage.Sample{Vm: f.Vm, Va: f.Va, Missing: sh.frameMissing(f)}
	ev, err := sh.ingest(ctx, sample)
	wire.PutFrame(f)
	if err != nil {
		if lg := sh.logger; lg != nil {
			lg.LogAttrs(ctx, slog.LevelWarn, "stream sample rejected",
				slog.Uint64("seq", uint64(seq)), slog.String("cause", err.Error()))
		}
		return
	}
	if ev != nil {
		if cb := sh.svc.cfg.OnEvent; cb != nil {
			cb(sh.spec.Name, seq, ev)
		}
	}
}

// frameMissing converts a frame's missing bitmap into the facade's
// index form, reusing the consumer's scratch slice.
func (sh *shard) frameMissing(f *wire.Frame) []int {
	miss := sh.missBuf[:0]
	if f.Flags&wire.FlagMissing != 0 {
		for i := 0; i < f.N(); i++ {
			if f.IsMissing(i) {
				miss = append(miss, i)
			}
		}
	}
	sh.missBuf = miss
	return miss
}

// drainStream recycles every frame still queued on streamq; runs when
// the shard stops for good.
func (sh *shard) drainStream() {
	for {
		select {
		case f := <-sh.streamq:
			wire.PutFrame(f)
		default:
			return
		}
	}
}

// pickReplica returns the replica with the fewest inflight samples
// (ties break to the lowest id, so a single-replica shard routes
// exactly as before replicas existed).
func (sh *shard) pickReplica() *replica {
	best := sh.replicas[0]
	bestLoad := best.inflight.Load()
	for _, rep := range sh.replicas[1:] {
		if l := rep.inflight.Load(); l < bestLoad {
			best, bestLoad = rep, l
		}
	}
	return best
}

// respond delivers one response and settles the depth and inflight
// gauges.
func (sh *shard) respond(req *request, resp response) {
	req.done <- resp
	n := int64(len(req.samples))
	if req.rep != nil {
		req.rep.inflight.Add(-n)
	}
	sh.depth.Add(-n)
}

// drainQueue answers everything currently queued on any replica with
// err.
func (sh *shard) drainQueue(err error) {
	for _, rep := range sh.replicas {
	drain:
		for {
			select {
			case req := <-rep.reqs:
				sh.respond(req, response{err: err})
			default:
				break drain
			}
		}
	}
}

// kill fails the current incarnation: the serve loop exits, queued
// requests are answered with a retryable error, and the supervisor
// rebuilds the shard after its backoff. No-op unless the shard is
// ready.
func (sh *shard) kill(cause error) {
	if killc := sh.takeKill(cause); killc != nil {
		close(killc)
	}
}

func (sh *shard) takeKill(cause error) chan struct{} {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state != StateReady {
		return nil
	}
	sh.state = StateFailed
	sh.err = cause
	sh.sys, sh.mon = nil, nil
	sh.cur.Store(nil)
	killc := sh.killc
	sh.killc = nil
	return killc
}

// reload swaps the shard onto a new model without dropping queued
// requests: the serve loops keep running, and the atomic store below is
// the entire cutover — batches popped before it score on the old model,
// batches popped after it on the new one, never a mixture. The
// streaming monitor is rebuilt on the new system (its streak state does
// not transfer across models). The new model is pinned as the boot
// artifact so a later supervisor rebuild serves it rather than
// retraining. Reloading a shard that is not currently serving fails
// with its availability error.
func (sh *shard) reload(m *pmuoutage.Model) error {
	sys, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		return err
	}
	mon, err := sys.NewMonitor(sh.svc.cfg.Confirm, sh.svc.cfg.Cooldown)
	if err != nil {
		return err
	}
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state != StateReady {
		return sh.availErrLocked()
	}
	if cur := sh.sys; cur != nil && cur.Buses() != sys.Buses() {
		return fmt.Errorf("%w: shard %q serves %d buses, model %q has %d",
			ErrConfig, sh.spec.Name, cur.Buses(), m.Case(), sys.Buses())
	}
	sh.sys, sh.mon, sh.boot = sys, mon, m
	sh.cur.Store(sys)
	sh.buses.Store(int32(sys.Buses()))
	sh.gen.Add(1)
	sh.counters().Reloads.Add(1)
	return nil
}

func (sh *shard) setTraining() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateTraining
	sh.err = nil
}

func (sh *shard) activate(sys *pmuoutage.System, mon *pmuoutage.Monitor, killc chan struct{}) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateReady
	sh.err = nil
	sh.sys, sh.mon, sh.killc = sys, mon, killc
	sh.cur.Store(sys)
	sh.buses.Store(int32(sys.Buses()))
	sh.gen.Add(1)
}

func (sh *shard) fail(err error) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateFailed
	sh.err = err
	sh.sys, sh.mon = nil, nil
	sh.cur.Store(nil)
}

// stop marks the shard stopped and fails everything still queued; runs
// once, when the supervisor exits.
func (sh *shard) stop() {
	sh.setStopped()
	sh.drainQueue(ErrClosed)
	sh.drainStream()
}

func (sh *shard) setStopped() {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.state = StateStopped
	sh.sys, sh.mon, sh.killc = nil, nil, nil
	sh.cur.Store(nil)
}

// system returns the serving system, or nil while not ready.
func (sh *shard) system() *pmuoutage.System {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.sys
}

// availErr returns nil when the shard is serving, otherwise the typed
// reason it cannot answer.
func (sh *shard) availErr() error {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.state == StateReady {
		return nil
	}
	return sh.availErrLocked()
}

func (sh *shard) availErrLocked() error {
	switch sh.state {
	case StateReady:
		return nil
	case StateTraining:
		return fmt.Errorf("%w: shard %q is training; retry later", ErrUnavailable, sh.spec.Name)
	case StateFailed:
		if sh.err != nil {
			return sh.err
		}
		return fmt.Errorf("%w: shard %q failed; restarting", ErrUnavailable, sh.spec.Name)
	default:
		return ErrClosed
	}
}

// status snapshots the shard for listings.
func (sh *shard) status() ShardStatus {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := ShardStatus{
		Name:       sh.spec.Name,
		Case:       sh.spec.Opts.Case,
		State:      sh.state.String(),
		Restarts:   sh.counters().Restarts.Load(),
		QueueDepth: int(sh.depth.Load()),
		Replicas:   len(sh.replicas),
		Generation: sh.gen.Load(),
	}
	if st.Case == "" {
		st.Case = "ieee14" // the facade default
	}
	if sh.err != nil {
		st.Err = sh.err.Error()
	}
	if sh.sys != nil {
		st.Buses = sh.sys.Buses()
		st.Lines = len(sh.sys.Lines())
		if m := sh.sys.Model(); m != nil {
			st.Case = m.Case()
			st.Model = m.Fingerprint()
		}
	}
	return st
}

// counters returns the shard's stats cell.
func (sh *shard) counters() *ShardCounters {
	return sh.svc.stats.shard(sh.spec.Name)
}

// sleep waits d or until ctx cancels, reporting whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}

// nextBackoff doubles a delay up to the bound.
func nextBackoff(d, bound time.Duration) time.Duration {
	d *= 2
	if d > bound {
		d = bound
	}
	return d
}
