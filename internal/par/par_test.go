package par

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(3) != 3 {
		t.Fatal("positive worker count must pass through")
	}
	if Workers(0) != runtime.GOMAXPROCS(0) || Workers(-1) != runtime.GOMAXPROCS(0) {
		t.Fatal("non-positive worker count must resolve to GOMAXPROCS")
	}
}

func TestMapOrderPreserved(t *testing.T) {
	// Finish order is scrambled on purpose: early items sleep longest.
	const n = 64
	for _, workers := range []int{1, 2, 8} {
		out, err := Map(context.Background(), workers, n, func(_ context.Context, i int) (int, error) {
			time.Sleep(time.Duration(n-i) * 10 * time.Microsecond)
			return i * i, nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != i*i {
				t.Fatalf("workers=%d: out[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachFirstErrorWins(t *testing.T) {
	boom := errors.New("boom")
	for _, workers := range []int{1, 4} {
		var ran atomic.Int64
		err := ForEach(context.Background(), workers, 100, func(ctx context.Context, i int) error {
			ran.Add(1)
			switch {
			case i == 3:
				return boom
			case i < 3:
				return nil
			}
			// Items after the failure block until cancelled, so the real
			// error must win the race and the Canceled errors these items
			// return must not displace it.
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return fmt.Errorf("item %d never saw cancellation", i)
			}
		})
		if !errors.Is(err, boom) {
			t.Fatalf("workers=%d: err = %v, want %v", workers, err, boom)
		}
		if n := ran.Load(); n == 100 {
			t.Fatalf("workers=%d: scheduling did not stop after the error", workers)
		}
	}
}

func TestForEachCancellationStopsScheduling(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var started atomic.Int64
	release := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		err := ForEach(ctx, 2, 1000, func(ctx context.Context, i int) error {
			started.Add(1)
			<-release
			return nil
		})
		if !errors.Is(err, context.Canceled) {
			t.Errorf("err = %v, want context.Canceled", err)
		}
	}()
	// Wait for the pool to fill its two workers, cancel, then release.
	for started.Load() < 2 {
		time.Sleep(time.Millisecond)
	}
	cancel()
	close(release)
	wg.Wait()
	// 2 running + at most a handful handed to the channel before cancel
	// was observed; nothing close to all 1000.
	if n := started.Load(); n > 10 {
		t.Fatalf("%d items started after cancellation", n)
	}
}

func TestForEachPreCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 4, 50, func(context.Context, int) error {
		ran.Add(1)
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		// The sequential path runs zero items; the parallel path may
		// schedule none either because the feed checks wctx first.
		t.Fatalf("%d items ran under a pre-cancelled context", ran.Load())
	}
}

func TestPanicPropagated(t *testing.T) {
	for _, workers := range []int{1, 4} {
		func() {
			defer func() {
				r := recover()
				if r == nil {
					t.Fatalf("workers=%d: panic was swallowed", workers)
				}
				p, ok := r.(Panic)
				if !ok {
					t.Fatalf("workers=%d: recovered %T, want par.Panic", workers, r)
				}
				if p.Index != 7 || p.Value != "kaboom" {
					t.Fatalf("workers=%d: panic = %+v", workers, p)
				}
				if len(p.Stack) == 0 {
					t.Fatalf("workers=%d: panic lost its stack", workers)
				}
			}()
			_ = ForEach(context.Background(), workers, 20, func(_ context.Context, i int) error {
				if i == 7 {
					panic("kaboom")
				}
				return nil
			})
			t.Fatalf("workers=%d: ForEach returned instead of panicking", workers)
		}()
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	out, err := Map(context.Background(), 4, 10, func(_ context.Context, i int) (int, error) {
		if i == 5 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil || out != nil {
		t.Fatalf("Map = (%v, %v), want nil results with error", out, err)
	}
}

func TestZeroItems(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, nil); err != nil {
		t.Fatalf("n=0: err = %v", err)
	}
	out, err := Map(context.Background(), 4, 0, func(context.Context, int) (int, error) { return 0, nil })
	if err != nil || len(out) != 0 {
		t.Fatalf("n=0 Map = (%v, %v)", out, err)
	}
}

func TestPanicStringMentionsIndex(t *testing.T) {
	p := Panic{Index: 3, Value: "v", Stack: []byte("stack")}
	s := p.String()
	if s == "" || !contains(s, "item 3") || !contains(s, "v") {
		t.Fatalf("Panic.String() = %q", s)
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
