package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLeak flags `go` statements launched from functions with no
// visible join mechanism: no sync.WaitGroup in scope, no channel
// operation (send, receive, close, range, select), and no
// context.Context. The ingestion layer (comm, stream) and the experiment
// drivers spawn collectors and publishers; one forgotten join turns a
// fault-injection test into a goroutine leak that -race cannot see
// because the leaked goroutine never races — it just accumulates.
//
// The check is a per-function heuristic: evidence anywhere in the
// launching function (including the launched body) counts as a join.
var GoroutineLeak = &Analyzer{
	Name: "goroutineleak",
	Doc:  "flag go statements with no WaitGroup, channel join, or context in scope",
	Run:  runGoroutineLeak,
}

func runGoroutineLeak(pass *Pass) error {
	for _, f := range pass.Files {
		// Stack of enclosing function bodies; GoStmts are judged against
		// the innermost enclosing function.
		var stack []ast.Node
		var visit func(n ast.Node) bool
		visit = func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					stack = append(stack, n.Body)
					ast.Inspect(n.Body, visit)
					stack = stack[:len(stack)-1]
				}
				return false
			case *ast.FuncLit:
				stack = append(stack, n.Body)
				ast.Inspect(n.Body, visit)
				stack = stack[:len(stack)-1]
				return false
			case *ast.GoStmt:
				if len(stack) == 0 {
					return true
				}
				encl := stack[len(stack)-1]
				if !hasJoinEvidence(pass, encl) {
					pass.Report(n.Pos(), "goroutine launched with no WaitGroup, channel operation, or context in the enclosing function; it cannot be joined or cancelled")
				}
				return true
			}
			return true
		}
		ast.Inspect(f, visit)
	}
	return nil
}

// hasJoinEvidence scans a function body for anything that could join or
// bound a goroutine's lifetime.
func hasJoinEvidence(pass *Pass, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if isChan(pass.Info.TypeOf(n.X)) {
				found = true
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case ast.Expr:
			if t := pass.Info.TypeOf(n); isWaitGroup(t) || isContext(t) || isChan(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

func isWaitGroup(t types.Type) bool { return isNamedFrom(t, "sync", "WaitGroup") }
func isContext(t types.Type) bool   { return isNamedFrom(t, "context", "Context") }

// isNamedFrom reports whether t (or its pointee) is the named type
// pkg.Name.
func isNamedFrom(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}
