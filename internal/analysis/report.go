package analysis

import (
	"encoding/json"
	"path/filepath"
	"sort"
)

// Finding is one diagnostic in the machine-readable report. File paths
// are module-root-relative with forward slashes so reports are stable
// across machines and usable as CI artifacts.
type Finding struct {
	Analyzer   string `json:"analyzer"`
	Severity   string `json:"severity"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Col        int    `json:"col"`
	Message    string `json:"message"`
	Suppressed bool   `json:"suppressed"`
	// SuppressedBy is the ignore directive's reason when Suppressed.
	SuppressedBy string `json:"suppressed_by,omitempty"`
}

// AnalyzerInfo describes one analyzer in the report header and the
// gridlint -list output.
type AnalyzerInfo struct {
	Name     string `json:"name"`
	Severity string `json:"severity"`
	Doc      string `json:"doc"`
}

// Report is the complete machine-readable result of one gridlint run.
type Report struct {
	Module    string         `json:"module"`
	Analyzers []AnalyzerInfo `json:"analyzers"`
	Packages  int            `json:"packages"`
	// Findings holds every diagnostic, suppressed ones included, in
	// stable (file, line, col, analyzer) order.
	Findings []Finding `json:"findings"`
	// Errors counts unsuppressed error-severity findings — the number
	// that decides the exit status.
	Errors int `json:"errors"`
	// Warnings counts unsuppressed warn-severity findings.
	Warnings int `json:"warnings"`
	// CacheHits counts packages whose findings were served from the
	// file-hash result cache rather than re-analyzed.
	CacheHits int `json:"cache_hits"`
}

// Describe lists the given analyzers as report/-list metadata.
func Describe(analyzers []*Analyzer) []AnalyzerInfo {
	out := make([]AnalyzerInfo, 0, len(analyzers))
	for _, a := range analyzers {
		out = append(out, AnalyzerInfo{Name: a.Name, Severity: a.severity(), Doc: a.Doc})
	}
	return out
}

// findingOf converts one diagnostic, relativizing its path to root.
func findingOf(d Diagnostic, root string) Finding {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
	}
	return Finding{
		Analyzer:     d.Analyzer,
		Severity:     d.Severity,
		File:         filepath.ToSlash(file),
		Line:         d.Pos.Line,
		Col:          d.Pos.Column,
		Message:      d.Message,
		Suppressed:   d.Suppressed,
		SuppressedBy: d.SuppressedBy,
	}
}

// sortFindings orders findings the same way diagnostics are ordered.
func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
}

// tally recomputes the report's error/warning counts from its findings.
func (r *Report) tally() {
	r.Errors, r.Warnings = 0, 0
	for _, f := range r.Findings {
		if f.Suppressed {
			continue
		}
		if f.Severity == SeverityWarn {
			r.Warnings++
		} else {
			r.Errors++
		}
	}
}

// MarshalIndent renders the report as stable, human-diffable JSON.
func (r *Report) MarshalIndent() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}
