package pmuoutage

import (
	"testing"
)

func newQuickSystem(t *testing.T) *System {
	t.Helper()
	sys, err := NewSystem(Options{Case: "ieee14", TrainSteps: 20, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCasesList(t *testing.T) {
	cs := Cases()
	if len(cs) != 6 {
		t.Fatalf("Cases = %v", cs)
	}
	have := make(map[string]bool, len(cs))
	for _, c := range cs {
		have[c] = true
	}
	for _, want := range []string{"ieee14", "ieee118", "synth300", "synth1000"} {
		if !have[want] {
			t.Fatalf("Cases %v is missing %q", cs, want)
		}
	}
}

func TestNewSystemUnknownCase(t *testing.T) {
	if _, err := NewSystem(Options{Case: "bogus"}); err == nil {
		t.Fatal("expected error")
	}
}

func TestSystemAccessors(t *testing.T) {
	sys := newQuickSystem(t)
	if sys.Buses() != 14 {
		t.Fatalf("Buses = %d", sys.Buses())
	}
	lines := sys.Lines()
	if len(lines) != 20 {
		t.Fatalf("Lines = %d", len(lines))
	}
	if lines[0].FromBus != 1 || lines[0].ToBus != 2 {
		t.Fatalf("line 0 endpoints = %d-%d, want 1-2", lines[0].FromBus, lines[0].ToBus)
	}
	if len(sys.ValidLines()) != 19 {
		t.Fatalf("ValidLines = %d, want 19", len(sys.ValidLines()))
	}
	cl := sys.Clusters()
	if len(cl) != 3 {
		t.Fatalf("Clusters = %d", len(cl))
	}
	total := 0
	for _, c := range cl {
		total += len(c)
	}
	if total != 14 {
		t.Fatalf("cluster partition covers %d buses", total)
	}
}

func TestDetectRoundTrip(t *testing.T) {
	sys := newQuickSystem(t)
	// Normal samples stay quiet.
	normal, err := sys.SimulateOutage(nil, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, smp := range normal {
		rep, err := sys.Detect(smp)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Outage {
			t.Error("normal sample flagged as outage")
		}
	}
	// A strong outage is detected and localised.
	e := sys.ValidLines()[0]
	samples, err := sys.SimulateOutage([]int{e}, 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Detect(samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outage {
		t.Fatal("outage not flagged")
	}
	found := false
	for _, l := range rep.Lines {
		if l.Index == e {
			found = true
		}
	}
	if !found {
		t.Errorf("line %d not in detected set %v", e, rep.Lines)
	}
	if len(rep.NodeScores) != 14 {
		t.Fatal("node scores missing")
	}
}

func TestDetectWithMissing(t *testing.T) {
	sys := newQuickSystem(t)
	e := sys.ValidLines()[0]
	samples, err := sys.SimulateOutage([]int{e}, 1)
	if err != nil {
		t.Fatal(err)
	}
	lines := sys.Lines()
	smp := samples[0].WithMissing(lines[e].FromBus-1, lines[e].ToBus-1)
	rep, err := sys.Detect(smp)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Outage {
		t.Error("outage with masked endpoints not flagged")
	}
}

func TestDetectValidation(t *testing.T) {
	sys := newQuickSystem(t)
	if _, err := sys.Detect(Sample{Vm: []float64{1}, Va: []float64{0}}); err == nil {
		t.Fatal("expected size error")
	}
	samples, _ := sys.SimulateOutage(nil, 1)
	bad := samples[0].WithMissing(99)
	if _, err := sys.Detect(bad); err == nil {
		t.Fatal("expected missing-index error")
	}
}

func TestSimulateOutageValidation(t *testing.T) {
	sys := newQuickSystem(t)
	if _, err := sys.SimulateOutage([]int{999}, 1); err == nil {
		t.Fatal("expected range error")
	}
	// Islanding scenario must error.
	island := -1
	valid := map[int]bool{}
	for _, e := range sys.ValidLines() {
		valid[e] = true
	}
	for e := 0; e < len(sys.Lines()); e++ {
		if !valid[e] {
			island = e
		}
	}
	if island < 0 {
		t.Skip("no islanding line")
	}
	if _, err := sys.SimulateOutage([]int{island}, 1); err == nil {
		t.Fatal("expected islanding error")
	}
}

func TestEvaluate(t *testing.T) {
	sys := newQuickSystem(t)
	ia, fa, err := sys.Evaluate(2)
	if err != nil {
		t.Fatal(err)
	}
	if ia < 0.8 {
		t.Errorf("Evaluate IA = %.3f, want >= 0.8", ia)
	}
	if fa > 0.2 {
		t.Errorf("Evaluate FA = %.3f, want <= 0.2", fa)
	}
	t.Logf("Evaluate: IA=%.3f FA=%.3f", ia, fa)
}

func TestMonitorFacade(t *testing.T) {
	sys := newQuickSystem(t)
	mon, err := sys.NewMonitor(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	normal, err := sys.SimulateOutage(nil, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range normal {
		ev, err := mon.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatal("event on normal stream")
		}
	}
	e := sys.ValidLines()[0]
	outage, err := sys.SimulateOutage([]int{e}, 3)
	if err != nil {
		t.Fatal(err)
	}
	var confirmed *Event
	for _, s := range outage {
		ev, err := mon.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			confirmed = ev
			break
		}
	}
	if confirmed == nil {
		t.Fatal("persistent outage not confirmed")
	}
	if confirmed.Latency != 2 {
		t.Errorf("latency = %d, want 2", confirmed.Latency)
	}
	found := false
	for _, l := range confirmed.Lines {
		if l.Index == e {
			found = true
		}
	}
	if !found {
		t.Errorf("event lines %v missing true line %d", confirmed.Lines, e)
	}
	mon.Reset()
	// Bad missing index propagates.
	bad := outage[0].WithMissing(999)
	if _, err := mon.Ingest(bad); err == nil {
		t.Fatal("expected missing-index error")
	}
}

func TestDrawMissing(t *testing.T) {
	sys := newQuickSystem(t)
	if _, err := sys.DrawMissing(0, 1); err == nil {
		t.Fatal("expected error for r=0")
	}
	// Deterministic in seed.
	a, err := sys.DrawMissing(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.DrawMissing(0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatal("DrawMissing not deterministic")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("DrawMissing not deterministic")
		}
	}
	// Low reliability must eventually produce missing entries.
	total := 0
	for seed := int64(0); seed < 20; seed++ {
		m, err := sys.DrawMissing(0.2, seed)
		if err != nil {
			t.Fatal(err)
		}
		total += len(m)
	}
	if total == 0 {
		t.Fatal("r=0.2 never produced missing data in 20 draws")
	}
}
