package subspace

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"pmuoutage/internal/mat"
)

// dataAlong builds a d x t matrix whose columns are random multiples of
// the given directions plus tiny noise.
func dataAlong(rng *rand.Rand, t int, dirs ...[]float64) *mat.Dense {
	d := len(dirs[0])
	x := mat.NewDense(d, t)
	for c := 0; c < t; c++ {
		col := make([]float64, d)
		for _, dir := range dirs {
			a := 1 + rng.Float64()
			if rng.Intn(2) == 0 {
				a = -a
			}
			for i := range col {
				col[i] += a * dir[i]
			}
		}
		for i := range col {
			col[i] += 1e-6 * rng.NormFloat64()
		}
		x.SetCol(c, col)
	}
	return x
}

func unit(d, i int) []float64 {
	v := make([]float64, d)
	v[i] = 1
	return v
}

func TestLearnRecoversDirection(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	dir := []float64{3, 0, 4, 0, 0}
	x := dataAlong(rng, 30, dir)
	s, err := Learn(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 1 || s.Dim() != 5 {
		t.Fatalf("rank %d dim %d", s.Rank(), s.Dim())
	}
	b := s.Basis().Col(0)
	// Basis must align with dir/|dir| up to sign.
	cos := math.Abs(mat.Dot(b, dir)) / mat.Norm2(dir)
	if cos < 0.999 {
		t.Fatalf("recovered direction cos = %v", cos)
	}
}

func TestLearnClampsRank(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	// Exactly rank-1 data: repeated multiples of one direction, no noise.
	d := 4
	x := mat.NewDense(d, 20)
	dir := unit(d, 0)
	for c := 0; c < 20; c++ {
		x.SetCol(c, mat.ScaleVec(1+rng.Float64(), dir))
	}
	s, err := Learn(x, 3)
	if err != nil {
		t.Fatal(err)
	}
	if s.Rank() != 1 {
		t.Fatalf("rank = %d, want 1", s.Rank())
	}
}

func TestLearnErrors(t *testing.T) {
	if _, err := Learn(mat.NewDense(0, 0), 1); err != ErrNoData {
		t.Fatalf("err = %v", err)
	}
}

func TestZeroSubspace(t *testing.T) {
	z := Zero(6)
	if z.Rank() != 0 || z.Dim() != 6 {
		t.Fatal("zero subspace malformed")
	}
	p, err := z.Proximity([]float64{0, 3, 0, 4, 0, 0}, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p-25) > 1e-12 {
		t.Fatalf("zero-subspace proximity = %v, want 25", p)
	}
}

func TestProximityInsideAndOutside(t *testing.T) {
	// Subspace = span(e0). Points along e0 have ~zero residual; points
	// along e1 keep their full energy.
	rng := rand.New(rand.NewSource(3))
	x := dataAlong(rng, 25, unit(4, 0))
	s, err := Learn(x, 1)
	if err != nil {
		t.Fatal(err)
	}
	all := []int{0, 1, 2, 3}
	pin, err := s.Proximity([]float64{2, 0, 0, 0}, all)
	if err != nil {
		t.Fatal(err)
	}
	pout, err := s.Proximity([]float64{0, 2, 0, 0}, all)
	if err != nil {
		t.Fatal(err)
	}
	if pin > 1e-8 {
		t.Fatalf("in-subspace proximity = %v", pin)
	}
	if math.Abs(pout-4) > 1e-6 {
		t.Fatalf("out-of-subspace proximity = %v, want 4", pout)
	}
}

func TestProximityRestrictedRows(t *testing.T) {
	// With only rows {0,1} observed, a vector whose restriction lies in
	// the restricted span has zero proximity even if the hidden rows
	// disagree — that is exactly the detection-group mechanism.
	basis := mat.NewDense(3, 1)
	basis.SetCol(0, []float64{1 / math.Sqrt(2), 1 / math.Sqrt(2), 0})
	s := FromBasis(basis)
	p, err := s.Proximity([]float64{5, 5, 999}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-10 {
		t.Fatalf("restricted proximity = %v, want 0", p)
	}
	// Restriction that disagrees keeps residual.
	p, err = s.Proximity([]float64{5, -5, 0}, []int{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if p < 1 {
		t.Fatalf("orthogonal restricted proximity = %v", p)
	}
}

func TestProximityValidation(t *testing.T) {
	s := Zero(3)
	if _, err := s.Proximity([]float64{1, 2}, []int{0}); err == nil {
		t.Fatal("expected dim error")
	}
	if _, err := s.Proximity([]float64{1, 2, 3}, nil); err == nil {
		t.Fatal("expected empty-group error")
	}
	if _, err := s.Proximity([]float64{1, 2, 3}, []int{9}); err == nil {
		t.Fatal("expected range error")
	}
}

func TestProximityNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 3 + rng.Intn(6)
		x := dataAlong(rng, 15, unit(d, rng.Intn(d)), unit(d, rng.Intn(d)))
		s, err := Learn(x, 2)
		if err != nil {
			return false
		}
		v := make([]float64, d)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		group := []int{0, 1, 2}
		p, err := s.Proximity(v, group)
		if err != nil {
			return false
		}
		// Residual energy cannot exceed the restricted sample energy.
		var e float64
		for _, i := range group {
			e += v[i] * v[i]
		}
		return p >= -1e-12 && p <= e+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestUnionContainsParts(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := 6
	s1, _ := Learn(dataAlong(rng, 20, unit(d, 0)), 1)
	s2, _ := Learn(dataAlong(rng, 20, unit(d, 2)), 1)
	u, err := Union(s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if u.Rank() != 2 {
		t.Fatalf("union rank = %d, want 2", u.Rank())
	}
	all := []int{0, 1, 2, 3, 4, 5}
	for _, v := range [][]float64{unit(d, 0), unit(d, 2)} {
		p, err := u.Proximity(v, all)
		if err != nil {
			t.Fatal(err)
		}
		if p > 1e-8 {
			t.Fatalf("union must contain member direction, prox = %v", p)
		}
	}
	// Orthogonal direction stays out.
	p, _ := u.Proximity(unit(d, 4), all)
	if p < 0.9 {
		t.Fatalf("union unexpectedly contains e4: prox = %v", p)
	}
}

func TestUnionValidation(t *testing.T) {
	if _, err := Union(); err == nil {
		t.Fatal("expected error for empty union")
	}
	if _, err := Union(Zero(3), Zero(4)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
	u, err := Union(Zero(3), Zero(3))
	if err != nil || u.Rank() != 0 {
		t.Fatal("union of zeros must be zero")
	}
}

func TestIntersectionSharedDirection(t *testing.T) {
	// Two 2-D subspaces sharing exactly e0.
	rng := rand.New(rand.NewSource(5))
	d := 5
	s1, _ := Learn(dataAlong(rng, 30, unit(d, 0), unit(d, 1)), 2)
	s2, _ := Learn(dataAlong(rng, 30, unit(d, 0), unit(d, 3)), 2)
	inter, err := Intersection(0.9, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Rank() != 1 {
		t.Fatalf("intersection rank = %d, want 1", inter.Rank())
	}
	b := inter.Basis().Col(0)
	if math.Abs(b[0]) < 0.99 {
		t.Fatalf("intersection direction = %v, want ~e0", b)
	}
}

func TestIntersectionFallback(t *testing.T) {
	// Disjoint subspaces: exact intersection empty, fallback returns the
	// single most-shared direction.
	rng := rand.New(rand.NewSource(6))
	d := 4
	s1, _ := Learn(dataAlong(rng, 20, unit(d, 0)), 1)
	s2, _ := Learn(dataAlong(rng, 20, unit(d, 1)), 1)
	inter, err := Intersection(0.99, s1, s2)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Rank() != 1 {
		t.Fatalf("fallback rank = %d, want 1", inter.Rank())
	}
}

func TestIntersectionValidation(t *testing.T) {
	if _, err := Intersection(0.5); err == nil {
		t.Fatal("expected error for empty intersection")
	}
	if _, err := Intersection(0.5, Zero(2), Zero(3)); err == nil {
		t.Fatal("expected dimension mismatch")
	}
	z, err := Intersection(0.5, Zero(3), Zero(3))
	if err != nil || z.Rank() != 0 {
		t.Fatal("intersection of zero subspaces must be zero")
	}
}

func TestRegressorShapeAndProximity(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	d := 5
	x := dataAlong(rng, 30, unit(d, 0), unit(d, 1))
	s, _ := Learn(x, 2)
	group := []int{0, 1, 2}
	phi, err := s.Regressor(group)
	if err != nil {
		t.Fatal(err)
	}
	if r, c := phi.Dims(); r != 3 || c != 2 {
		t.Fatalf("regressor dims = %dx%d, want 3x2", r, c)
	}
	// A sample in the subspace has near-zero regressor proximity.
	v := mat.AddVec(mat.ScaleVec(2, unit(d, 0)), mat.ScaleVec(-1, unit(d, 1)))
	p, err := s.RegressorProximity(v, group)
	if err != nil {
		t.Fatal(err)
	}
	if p > 1e-6 {
		t.Fatalf("in-subspace regressor proximity = %v", p)
	}
	if _, err := Zero(d).Regressor(group); err == nil {
		t.Fatal("zero subspace must have no regressor")
	}
}

func TestRegressorProximityAgreesOnCompleteGroups(t *testing.T) {
	// When the detection group covers all rows, both proximity variants
	// coincide with the plain projection residual.
	rng := rand.New(rand.NewSource(8))
	d := 4
	x := dataAlong(rng, 25, unit(d, 0))
	s, _ := Learn(x, 1)
	all := []int{0, 1, 2, 3}
	v := []float64{1, 2, -1, 0.5}
	p1, err := s.Proximity(v, all)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := s.RegressorProximity(v, all)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-p2) > 1e-8 {
		t.Fatalf("variants disagree on complete group: %v vs %v", p1, p2)
	}
}

func TestScaledProximity(t *testing.T) {
	if got := ScaledProximity(2, 3, 4); math.Abs(got-1.5) > 1e-15 {
		t.Fatalf("ScaledProximity = %v", got)
	}
	// Zero normal proximity must not blow up to Inf/NaN.
	got := ScaledProximity(1, 1, 0)
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("ScaledProximity unguarded: %v", got)
	}
}

func TestUnionIntersectionRankAlgebra(t *testing.T) {
	// Union rank is bounded by the rank sum; intersection rank by the
	// smallest member rank (shared-direction reading).
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		d := 5 + rng.Intn(5)
		k := 2 + rng.Intn(3)
		var subs []*Subspace
		total := 0
		minRank := d
		for j := 0; j < k; j++ {
			r := 1 + rng.Intn(2)
			x := dataAlong(rng, 20, unit(d, rng.Intn(d)), unit(d, rng.Intn(d)))
			s, err := Learn(x, r)
			if err != nil {
				return false
			}
			subs = append(subs, s)
			total += s.Rank()
			if s.Rank() < minRank {
				minRank = s.Rank()
			}
		}
		u, err := Union(subs...)
		if err != nil {
			return false
		}
		if u.Rank() > total || u.Rank() > d {
			return false
		}
		in, err := Intersection(0.99, subs...)
		if err != nil {
			return false
		}
		// The fallback guarantees at least one direction; the shared set
		// never exceeds the smallest member.
		return in.Rank() >= 1 && in.Rank() <= minRank
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
