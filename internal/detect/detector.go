package detect

import (
	"context"
	"fmt"
	"math"
	"sort"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/mat"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/par"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/subspace"
)

// Config tunes the detector. The zero value selects the defaults used
// throughout the paper reproduction.
type Config struct {
	// Channel selects the phasor series for subspace learning. Angle is
	// the default: topology changes redistribute flows and therefore
	// angles, in both AC and DC data.
	Channel dataset.Channel `json:"channel"`
	// LineRank is the dimension kept per line-outage subspace (Eq. 2).
	LineRank int `json:"line_rank"`
	// S0Rank caps the dimension of the normal-operation subspace S⁰ —
	// the dominant correlated load-variation directions learned from
	// normal deviations. Directions below S0EnergyFrac of the top
	// singular value are dropped.
	S0Rank int `json:"s0_rank"`
	// S0EnergyFrac is the relative singular-value cutoff for S⁰.
	S0EnergyFrac float64 `json:"s0_energy_frac"`
	// InterShare is the shared-direction threshold for S_i^∩.
	InterShare float64 `json:"inter_share"`
	// EllipseMargin scales the normal-operation ellipses (Eq. 4).
	EllipseMargin float64 `json:"ellipse_margin"`
	// UseMVEE fits minimum-volume enclosing ellipses (Khachiyan) instead
	// of the covariance-scaled approximation — tighter around skewed
	// training clouds, a little slower to fit (ablation option).
	UseMVEE bool `json:"use_mvee"`
	// Groups configures detection-group formation.
	Groups GroupConfig `json:"groups"`
	// NoOutageSlack multiplies the calibrated normal-deviation energy
	// threshold; samples below it are declared outage-free.
	NoOutageSlack float64 `json:"no_outage_slack"`
	// GapFactor bounds the scaled-proximity spread of candidate nodes:
	// the sorted prefix ends at the first jump beyond this factor.
	GapFactor float64 `json:"gap_factor"`
	// LineKeepFactor keeps candidate lines whose per-line subspace
	// proximity is within this factor of the best line.
	LineKeepFactor float64 `json:"line_keep_factor"`
	// MaxCandidates caps the candidate node set of the proximity rule.
	MaxCandidates int `json:"max_candidates"`
	// MaxLines caps |F̂|: only the best-scoring lines survive. Real
	// events rarely outage more than a handful of lines at once, and an
	// ambiguous flat proximity spectrum must not flood the operator.
	MaxLines int `json:"max_lines"`
	// UseRegressorProximity switches Eq. (9) to the literal regressor
	// formulation (ablation; see DESIGN.md).
	UseRegressorProximity bool `json:"use_regressor_proximity"`
	// DisableScaling turns off the Eq. (11) ratio scaling (ablation).
	DisableScaling bool `json:"disable_scaling"`
	// Workers bounds the parallelism of training's per-line and per-node
	// stages (0 = GOMAXPROCS). The trained detector is byte-identical
	// for every worker count: each line/node computes from its own data
	// and lands at its own index.
	Workers int `json:"workers"`
}

func (c Config) withDefaults() Config {
	if c.LineRank <= 0 {
		c.LineRank = 1
	}
	if c.S0Rank <= 0 {
		c.S0Rank = 3
	}
	if c.S0EnergyFrac <= 0 || c.S0EnergyFrac >= 1 {
		c.S0EnergyFrac = 0.1
	}
	if c.InterShare <= 0 || c.InterShare > 1 {
		c.InterShare = 0.6
	}
	if c.EllipseMargin <= 0 {
		c.EllipseMargin = 1.1
	}
	if c.NoOutageSlack <= 0 {
		// 1.25 balances flagging weak-line outages (signatures close to
		// the load-noise floor) against false alarms from normal samples
		// drifting past the training window's maximum.
		c.NoOutageSlack = 1.25
	}
	if c.GapFactor <= 1 {
		c.GapFactor = 8
	}
	if c.LineKeepFactor <= 1 {
		c.LineKeepFactor = 2
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 6
	}
	if c.MaxLines <= 0 {
		c.MaxLines = 3
	}
	if c.Groups.Mix == 0 { //gridlint:ignore floatcmp zero-value config sentinel, never a computed float
		c.Groups.Mix = 1 // proposed robust group unless explicitly naive
	}
	return c
}

// Detector is a trained robust outage detector.
type Detector struct {
	cfg    Config
	g      *grid.Grid
	nw     *pmunet.Network
	caps   *Capabilities
	groups []Group

	mean      []float64 // normal-operation mean in channel space
	lineSubs  map[grid.Line]*subspace.Subspace
	unionSubs []*subspace.Subspace // span of S_i^∪ per node (Eq. 3)
	interSubs []*subspace.Subspace // S_i^∩ per node
	nodeLines [][]grid.Line        // valid lines incident to each node
	normalSub *subspace.Subspace   // S⁰: dominant load-variation directions

	// noOutageThresh is the calibrated per-feature deviation energy
	// above which a sample is treated as a potential outage.
	noOutageThresh float64

	validLines []grid.Line
}

// Train learns the detector from generated data and a PMU network.
func Train(d *dataset.Data, nw *pmunet.Network, cfg Config) (*Detector, error) {
	return TrainContext(context.Background(), d, nw, cfg)
}

// TrainContext is Train with cancellation and bounded parallelism: the
// per-line subspace SVDs, the per-node union/intersection subspaces, and
// the Eq. 5-7 capability tables each fan out over cfg.Workers workers.
func TrainContext(ctx context.Context, d *dataset.Data, nw *pmunet.Network, cfg Config) (*Detector, error) {
	cfg = cfg.withDefaults()
	if d.G != nw.G {
		if d.G.Name != nw.G.Name || d.G.N() != nw.G.N() {
			return nil, fmt.Errorf("detect: dataset grid %q and network grid %q differ", d.G.Name, nw.G.Name)
		}
	}
	if d.Normal.T() < 2 {
		return nil, fmt.Errorf("detect: need at least 2 normal training samples")
	}
	n := d.G.N()
	ch := cfg.Channel
	dim := ch.Dim(n)

	det := &Detector{
		cfg: cfg, g: d.G, nw: nw,
		lineSubs:   map[grid.Line]*subspace.Subspace{},
		normalSub:  subspace.Zero(dim),
		validLines: append([]grid.Line(nil), d.ValidLines...),
	}

	// Normal-operation mean in channel space. The channel vectors
	// materialise one per worker slot, then each feature accumulates
	// over them in time order — the identical per-feature operation
	// sequence as a sequential pass, so the mean is byte-for-byte the
	// same for every worker count.
	vecs, err := par.Map(ctx, cfg.Workers, d.Normal.T(), func(_ context.Context, t int) ([]float64, error) {
		return d.Normal.Samples[t].Vector(ch), nil
	})
	if err != nil {
		return nil, err
	}
	det.mean = make([]float64, dim)
	err = par.ForEach(ctx, cfg.Workers, dim, func(_ context.Context, i int) error {
		var sum float64
		for _, v := range vecs {
			sum += v[i]
		}
		det.mean[i] = sum / float64(d.Normal.T())
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Normal-operation subspace S⁰ (Eq. 2 on X⁰): the directions along
	// which correlated load variation moves the deviation vector. Without
	// it, ordinary load swings are indistinguishable from weak outages.
	{
		x0, err := det.deviationMatrixContext(ctx, cfg.Workers, d.Normal)
		if err != nil {
			return nil, err
		}
		svd := mat.FactorSVD(x0)
		k := 0
		for _, v := range svd.S {
			if k >= cfg.S0Rank || v < cfg.S0EnergyFrac*svd.S[0] {
				break
			}
			k++
		}
		if k > 0 {
			idx := make([]int, k)
			for i := range idx {
				idx[i] = i
			}
			det.normalSub = subspace.FromBasis(svd.U.SelectCols(idx))
		}
	}

	// Per-line signature subspaces from deviation data (Eq. 2), with the
	// load-variation component projected out so the learned direction is
	// the pure topology signature. One SVD per valid line, fanned out.
	lineSubs, err := par.Map(ctx, cfg.Workers, len(d.ValidLines),
		func(_ context.Context, k int) (*subspace.Subspace, error) {
			e := d.ValidLines[k]
			x := det.normalSub.ProjectOut(det.deviationMatrix(d.Outages[e]))
			s, err := subspace.Learn(x, cfg.LineRank)
			if err != nil {
				return nil, fmt.Errorf("detect: subspace for line %d: %w", e, err)
			}
			return s, nil
		})
	if err != nil {
		return nil, err
	}
	for k, e := range d.ValidLines {
		det.lineSubs[e] = lineSubs[k]
	}

	// Node union/intersection subspaces (Eq. 3), one node per slot.
	det.unionSubs = make([]*subspace.Subspace, n)
	det.interSubs = make([]*subspace.Subspace, n)
	det.nodeLines = make([][]grid.Line, n)
	err = par.ForEach(ctx, cfg.Workers, n, func(_ context.Context, i int) error {
		var subs []*subspace.Subspace
		for _, e := range d.ValidLines {
			a, b := d.G.Endpoints(e)
			if a == i || b == i {
				subs = append(subs, det.lineSubs[e])
				det.nodeLines[i] = append(det.nodeLines[i], e)
			}
		}
		if len(subs) == 0 {
			det.unionSubs[i] = subspace.Zero(dim)
			det.interSubs[i] = subspace.Zero(dim)
			return nil
		}
		u, err := subspace.Union(subs...)
		if err != nil {
			return err
		}
		in, err := subspace.Intersection(cfg.InterShare, subs...)
		if err != nil {
			return err
		}
		det.unionSubs[i] = u
		det.interSubs[i] = in
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Capabilities and detection groups.
	caps, err := LearnCapabilitiesContext(ctx, d, cfg.EllipseMargin, cfg.UseMVEE, cfg.Workers)
	if err != nil {
		return nil, err
	}
	det.caps = caps

	var loadings *mat.Dense
	gcfg := cfg.Groups
	gcfg.Channel = ch
	if gcfg.Mix < 1 {
		// Pool all outage deviations and take the dominant left singular
		// vectors as PCA loadings for the naive orthogonal choice. Column
		// offsets are fixed per line up front, so each line's deviation
		// block lands at its own columns regardless of worker count.
		offsets := make([]int, len(d.ValidLines))
		total := 0
		for k, e := range d.ValidLines {
			offsets[k] = total
			total += d.Outages[e].T()
		}
		pool := mat.NewDense(dim, total)
		err = par.ForEach(ctx, cfg.Workers, len(d.ValidLines), func(_ context.Context, k int) error {
			x := det.deviationMatrix(d.Outages[d.ValidLines[k]])
			for t := 0; t < x.Cols(); t++ {
				pool.SetCol(offsets[k]+t, x.Col(t))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		svd := mat.FactorSVD(pool)
		k := 5
		if r := svd.Rank(0); k > r {
			k = r
		}
		if k == 0 {
			k = 1
		}
		idx := make([]int, k)
		for i := range idx {
			idx[i] = i
		}
		loadings = svd.U.SelectCols(idx)
	}
	// Detection groups must out-dimension the subspaces they score
	// against: a group of g available features, minus the S⁰ rank, must
	// exceed the largest union-subspace rank or the restricted residual
	// degenerates to zero for hub nodes. Derive the floor from the grid.
	maxDeg := 0
	for i := 0; i < n; i++ {
		if deg := d.G.Degree(i); deg > maxDeg {
			maxDeg = deg
		}
	}
	minSize := maxDeg*cfg.LineRank + det.normalSub.Rank() + 4
	if minSize > n {
		minSize = n
	}
	if gcfg.Size < minSize {
		gcfg.Size = minSize
	}
	groups, err := BuildGroups(nw, caps, loadings, gcfg)
	if err != nil {
		return nil, err
	}
	det.groups = groups

	// Calibrate the no-outage threshold: the largest per-feature
	// deviation energy seen across normal training samples. Each
	// sample's energy is independent and the maximum is order-free, so
	// the fan-out cannot change the calibrated value.
	energies, err := par.Map(ctx, cfg.Workers, d.Normal.T(), func(_ context.Context, t int) (float64, error) {
		return det.deviationEnergy(d.Normal.Samples[t]), nil
	})
	if err != nil {
		return nil, err
	}
	var maxE float64
	for _, e := range energies {
		if e > maxE {
			maxE = e
		}
	}
	det.noOutageThresh = maxE * cfg.NoOutageSlack
	return det, nil
}

// deviationMatrixContext is deviationMatrix with the per-sample column
// construction fanned out over workers: each column is owned by exactly
// one item, so the matrix is identical for every worker count.
func (det *Detector) deviationMatrixContext(ctx context.Context, workers int, set *dataset.Set) (*mat.Dense, error) {
	dim := len(det.mean)
	x := mat.NewDense(dim, set.T())
	err := par.ForEach(ctx, workers, set.T(), func(_ context.Context, t int) error {
		v := set.Samples[t].Vector(det.cfg.Channel)
		for i := range v {
			v[i] -= det.mean[i]
		}
		x.SetCol(t, v)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return x, nil
}

// deviationMatrix converts a sample set into centered channel vectors.
func (det *Detector) deviationMatrix(set *dataset.Set) *mat.Dense {
	dim := len(det.mean)
	x := mat.NewDense(dim, set.T())
	for t, s := range set.Samples {
		v := s.Vector(det.cfg.Channel)
		for i := range v {
			v[i] -= det.mean[i]
		}
		x.SetCol(t, v)
	}
	return x
}

// deviation returns the centered channel vector of one sample plus the
// feature-level availability mask.
func (det *Detector) deviation(s dataset.Sample) ([]float64, pmunet.Mask) {
	v := s.Vector(det.cfg.Channel)
	for i := range v {
		v[i] -= det.mean[i]
	}
	return v, s.MaskFor(det.cfg.Channel)
}

// deviationEnergy is the mean squared S⁰-filtered deviation over the
// available features: the part of the deviation that ordinary load
// variation cannot explain.
func (det *Detector) deviationEnergy(s dataset.Sample) float64 {
	v, m := det.deviation(s)
	var avail []int
	for i := range v {
		if !m[i] {
			avail = append(avail, i)
		}
	}
	if len(avail) == 0 {
		return 0
	}
	xd := make([]float64, len(avail))
	for k, i := range avail {
		xd[k] = v[i]
	}
	r0, err := det.normalSub.ResidualD(xd, avail)
	if err != nil {
		return 0
	}
	var e float64
	for _, x := range r0 {
		e += x * x
	}
	return e / float64(len(avail))
}

// featureIndices maps bus members to channel feature indices, dropping
// buses whose measurements are missing in the mask.
func (det *Detector) featureIndices(members []int, m pmunet.Mask) []int {
	n := det.g.N()
	var out []int
	for _, b := range members {
		switch det.cfg.Channel {
		case dataset.Stacked:
			if !m[b] {
				out = append(out, b, b+n)
			}
		default:
			if !m[b] {
				out = append(out, b)
			}
		}
	}
	return out
}

// groupFor realises Eq. (10) for the cluster of node i. The detection
// group "can use data from nodes inside and outside the missing data
// cluster" (§IV-B, Fig. 2), so the working set is the union of the
// in-cluster members D_C(C) and the out-of-cluster alternates D_C(C̄),
// with masked members dropped. When the whole cluster is dark this
// leaves exactly D_C(C̄) — the literal Eq. (10) switch — while partial
// missing keeps every surviving member contributing. If the group still
// collapses, it falls back to every available bus.
func (det *Detector) groupFor(i int, busMask pmunet.Mask) []int {
	c := det.nw.ClusterOf(i)
	g := det.groups[c]
	members := make([]int, 0, len(g.InCluster)+len(g.OutCluster))
	seen := map[int]bool{}
	for _, lists := range [][]int{g.InCluster, g.OutCluster} {
		for _, b := range lists {
			if !seen[b] {
				seen[b] = true
				members = append(members, b)
			}
		}
	}
	feat := det.featureIndices(members, det.busMaskFor(busMask))
	if len(feat) >= 2 {
		return feat
	}
	return det.featureIndices(allBuses(det.g.N()), det.busMaskFor(busMask))
}

// busMaskFor normalises a possibly-nil bus mask.
func (det *Detector) busMaskFor(m pmunet.Mask) pmunet.Mask {
	if m != nil {
		return m
	}
	return pmunet.NoneMissing(det.g.N())
}

func allBuses(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// Result is the output of one detection.
type Result struct {
	// Outage reports whether the sample is classified as containing at
	// least one line outage.
	Outage bool
	// Lines is the identified outage set F̂ (empty when Outage is false).
	Lines []grid.Line
	// NodeScores holds the scaled proximity p̂rox of every node
	// (Eq. 11); lower means closer to that node's outage subspaces.
	NodeScores []float64
	// Candidates is the connected node prefix chosen by the proximity
	// rule.
	Candidates []int
	// DeviationEnergy is the per-feature deviation energy used for the
	// outage/no-outage decision.
	DeviationEnergy float64
}

// Detect runs the full pipeline of §IV-C on one sample, which may
// contain missing measurements (mask set).
func (det *Detector) Detect(s dataset.Sample) (*Result, error) {
	if s.N() != det.g.N() {
		return nil, fmt.Errorf("detect: sample has %d buses, grid %d", s.N(), det.g.N())
	}
	busMask := det.busMaskFor(s.Mask)
	dev, featMask := det.deviation(s)

	res := &Result{DeviationEnergy: det.deviationEnergy(s)}

	// Outage / no-outage gate: with only normal-level deviation energy
	// on the available features, declare normal operation. This is what
	// lets the detector tell missing data apart from physical failures
	// (Fig. 8): missing entries are excluded rather than imputed, so
	// they contribute no phantom deviation.
	if res.DeviationEnergy <= det.noOutageThresh {
		return res, nil
	}
	res.Outage = true

	n := det.g.N()
	res.NodeScores = make([]float64, n)
	for i := 0; i < n; i++ {
		group := det.groupFor(i, busMask)
		group = dropMasked(group, featMask)
		if len(group) == 0 {
			res.NodeScores[i] = math.Inf(1)
			continue
		}
		r0, p0, xe, err := det.normalResidual(dev, group)
		if err != nil {
			return nil, err
		}
		// Proximity to S_i^∪: Eq. (3) defines it as the set union of the
		// node's line subspaces, and the distance of a point to a union
		// of subspaces is the minimum of the member distances. Scoring
		// with the minimum (rather than the linear span) keeps every
		// node's fit at the same rank, so high-degree hubs cannot absorb
		// arbitrary deviations into a large spanning basis.
		pu := math.Inf(1)
		for _, e := range det.nodeLines[i] {
			p, err := det.subProx(det.lineSubs[e], r0, group)
			if err != nil {
				return nil, err
			}
			if p < pu {
				pu = p
			}
		}
		if math.IsInf(pu, 1) {
			res.NodeScores[i] = pu
			continue
		}
		if det.cfg.DisableScaling {
			res.NodeScores[i] = pu / xe
			continue
		}
		pi, err := det.subProx(det.interSubs[i], r0, group)
		if err != nil {
			return nil, err
		}
		// Normalising the three proximities by the restricted sample
		// energy makes the Eq. (11) score dimensionless, so rankings
		// stay comparable when Eq. (10) assigns different detection
		// groups to different nodes under missing data.
		res.NodeScores[i] = subspace.ScaledProximity(pu/xe, pi/xe, p0/xe)
	}

	res.Candidates = det.proximityRule(res.NodeScores)
	res.Lines = det.decodeLines(res.Candidates, dev, featMask, busMask)
	if len(res.Lines) == 0 {
		// The proximity rule found no line-consistent candidate set;
		// report the outage with the best-scoring node's incident lines
		// as a conservative fallback.
		best := argmin(res.NodeScores)
		if best >= 0 {
			res.Lines = det.bestIncidentLine(best, dev, featMask, busMask)
		}
	}
	return res, nil
}

// normalResidual extracts the group-restricted deviation, removes the
// S⁰ (load-variation) component, and returns the residual vector, its
// squared norm p0 = prox_{S⁰}, and the restricted sample energy ‖x_D‖²
// used to normalise proximities across detection groups.
func (det *Detector) normalResidual(dev []float64, group []int) ([]float64, float64, float64, error) {
	xd := make([]float64, len(group))
	for k, i := range group {
		xd[k] = dev[i]
	}
	xe := mat.Norm2(xd)
	xe = xe * xe
	xe = metrics.PositiveFloor(xe, math.SmallestNonzeroFloat64)
	r0, err := det.normalSub.ResidualD(xd, group)
	if err != nil {
		return nil, 0, 0, err
	}
	n := mat.Norm2(r0)
	return r0, n * n, xe, nil
}

// subProx measures the residual energy of the S⁰-filtered restricted
// deviation against a subspace's row-restricted basis.
func (det *Detector) subProx(s *subspace.Subspace, r0 []float64, group []int) (float64, error) {
	if det.cfg.UseRegressorProximity && s.Rank() > 0 {
		// Ablation: scatter the filtered residual back to full dimension
		// and use the literal Eq. (9) regressor formulation.
		full := make([]float64, s.Dim())
		for k, i := range group {
			full[i] = r0[k]
		}
		return s.RegressorProximity(full, group)
	}
	r, err := s.ResidualD(r0, group)
	if err != nil {
		return 0, err
	}
	n := mat.Norm2(r)
	return n * n, nil
}

func dropMasked(group []int, featMask pmunet.Mask) []int {
	var out []int
	for _, i := range group {
		if !featMask[i] {
			out = append(out, i)
		}
	}
	return out
}

// proximityRule implements the decoder of §IV-C: sort nodes by scaled
// proximity ascending and keep the prefix that (a) stays within
// GapFactor of the best score, (b) forms a connected subgraph, and (c)
// has at most MaxCandidates members.
func (det *Detector) proximityRule(scores []float64) []int {
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return scores[order[a]] < scores[order[b]] })
	if len(order) == 0 || math.IsInf(scores[order[0]], 1) {
		return nil
	}
	best := scores[order[0]]
	if best <= 0 {
		best = math.SmallestNonzeroFloat64
	}
	cand := []int{order[0]}
	for _, i := range order[1:] {
		if len(cand) >= det.cfg.MaxCandidates {
			break
		}
		if scores[i] > best*det.cfg.GapFactor {
			break
		}
		next := append(append([]int(nil), cand...), i)
		if det.g.SubgraphConnected(next) {
			cand = next
		}
		// Nodes that break connectivity are skipped but do not end the
		// scan: electrically-close, topologically-distant nodes can
		// interleave in the ranking.
	}
	sort.Ints(cand)
	return cand
}

// decodeLines turns the candidate node set into F̂: lines whose both
// endpoints are candidates, filtered by their per-line subspace
// proximity (only lines within LineKeepFactor of the best survive).
func (det *Detector) decodeLines(cand []int, dev []float64, featMask pmunet.Mask, busMask pmunet.Mask) []grid.Line {
	in := map[int]bool{}
	for _, v := range cand {
		in[v] = true
	}
	type scored struct {
		e grid.Line
		p float64
	}
	var ls []scored
	for _, e := range det.validLines {
		a, b := det.g.Endpoints(e)
		// The proximity rule's candidate prefix may drop one endpoint of
		// the true line — typically the masked one whose own cluster had
		// to fall back to a remote detection group — so lines with at
		// least one candidate endpoint stay in the running; the per-line
		// subspace filter below does the final discrimination.
		if !in[a] && !in[b] {
			continue
		}
		group := det.groupFor(a, busMask)
		group = dropMasked(group, featMask)
		if len(group) == 0 {
			continue
		}
		r0, _, xe, err := det.normalResidual(dev, group)
		if err != nil {
			continue
		}
		p, err := det.subProx(det.lineSubs[e], r0, group)
		if err != nil {
			continue
		}
		ls = append(ls, scored{e, p / xe})
	}
	if len(ls) == 0 {
		return nil
	}
	sort.SliceStable(ls, func(a, b int) bool { return ls[a].p < ls[b].p })
	best := ls[0].p
	if best <= 0 {
		best = math.SmallestNonzeroFloat64
	}
	var out []grid.Line
	for _, s := range ls {
		if len(out) >= det.cfg.MaxLines {
			break
		}
		if s.p <= best*det.cfg.LineKeepFactor {
			out = append(out, s.e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a] < out[b] })
	return out
}

// bestIncidentLine scores the valid lines of one node and returns the
// closest, as a last-resort localisation.
func (det *Detector) bestIncidentLine(node int, dev []float64, featMask, busMask pmunet.Mask) []grid.Line {
	bestLine := grid.Line(-1)
	bestP := math.Inf(1)
	for _, e := range det.validLines {
		a, b := det.g.Endpoints(e)
		if a != node && b != node {
			continue
		}
		group := dropMasked(det.groupFor(node, busMask), featMask)
		if len(group) == 0 {
			continue
		}
		r0, _, xe, err := det.normalResidual(dev, group)
		if err != nil {
			continue
		}
		p, err := det.subProx(det.lineSubs[e], r0, group)
		if err != nil {
			continue
		}
		if p/xe < bestP {
			bestP, bestLine = p/xe, e
		}
	}
	if bestLine < 0 {
		return nil
	}
	return []grid.Line{bestLine}
}

func argmin(v []float64) int {
	best := -1
	bestV := math.Inf(1)
	for i, x := range v {
		if x < bestV {
			bestV, best = x, i
		}
	}
	return best
}

// Grid returns the detector's grid.
func (det *Detector) Grid() *grid.Grid { return det.g }

// Network returns the detector's PMU network.
func (det *Detector) Network() *pmunet.Network { return det.nw }

// Capabilities exposes the learned capability matrix (read-only use).
func (det *Detector) Capabilities() *Capabilities { return det.caps }

// DetectionGroups exposes the per-cluster groups (read-only use).
func (det *Detector) DetectionGroups() []Group { return det.groups }

// ValidLines returns the lines with learned outage subspaces.
func (det *Detector) ValidLines() []grid.Line {
	return append([]grid.Line(nil), det.validLines...)
}

// NoOutageThreshold returns the calibrated deviation-energy threshold.
func (det *Detector) NoOutageThreshold() float64 { return det.noOutageThresh }
