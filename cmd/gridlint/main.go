// Command gridlint runs the repo's custom static-analysis passes (see
// internal/analysis) over the given packages. It is part of the tier-1
// verify gate:
//
//	go build ./... && go vet ./... && go run ./cmd/gridlint ./... && go test -race ./...
//
// Usage:
//
//	gridlint [-only a,b] [-list] [packages...]
//
// Packages default to ./... . A pattern is either a directory or a
// directory followed by /... for a recursive walk (testdata, hidden,
// and _-prefixed directories are skipped). Exit status is 1 when any
// diagnostic is reported, 2 on operational errors.
//
// Suppress a finding with an end-of-line or preceding-line comment:
//
//	//gridlint:ignore <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"pmuoutage/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	analyzers := analysis.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, err := analysis.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.RunDirs(loader, analyzers, dirs)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "gridlint: %d finding(s) in %d package(s)\n", len(diags), len(dirs))
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndex(dir, "/")+1]
		parent = strings.TrimSuffix(parent, "/")
		if parent == "" || parent == dir {
			return "", fmt.Errorf("gridlint: no go.mod found above working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridlint:", err)
	os.Exit(2)
}
