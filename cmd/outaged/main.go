// Command outaged serves power-line outage detection over JSON/HTTP.
//
// It fronts internal/service: a sharded pool of trained detection
// systems (one per grid case / region) with request coalescing, bounded
// queues with load-shedding, per-request deadlines, and per-shard
// supervisors that rebuild failed shards with exponential backoff.
//
// Endpoints:
//
//	POST /v1/detect  {"shard":"east","samples":[{"vm":[...],"va":[...]}]}
//	POST /v1/ingest  {"shard":"east","sample":{"vm":[...],"va":[...]}}
//	GET  /v1/shards  per-shard state (training/ready/failed), restarts
//	GET  /v1/stats   per-shard counters: requests, batches, shed, latency
//	GET  /healthz    200 once at least one shard serves, else 503
//
// Typed service errors map onto HTTP statuses (unknown shard 404, bad
// sample 400, overloaded 429, unavailable 503, deadline 504); retryable
// conditions carry a Retry-After header. Example:
//
//	outaged -addr :8080 -shards east=ieee14,west=ieee30 -dc
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"pmuoutage"
	"pmuoutage/client"
	"pmuoutage/internal/httpserve"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/registry"
	"pmuoutage/internal/service"
	"pmuoutage/internal/wire"
)

func main() {
	var (
		addr       = flag.String("addr", ":8080", "listen address")
		debugAddr  = flag.String("debug-addr", "", "optional listen address for pprof and expvar (e.g. localhost:6060); empty disables")
		logLevel   = flag.String("log-level", "info", "log verbosity: debug (per-request spans), info, warn, error")
		shards     = flag.String("shards", "main=ieee14", "comma-separated name=case shard list")
		models     = flag.String("models", "", "comma-separated name=ref list of model artifacts to boot shards from (skips training); a ref is a file path or, with -registry, a hex SHA-256 fingerprint")
		regURL     = flag.String("registry", "", "model registry base URL (e.g. http://localhost:8090); enables boot and hot reload by fingerprint")
		replicas   = flag.Int("replicas", 0, "serve loops per shard sharing one model (0 = 1)")
		trainSteps = flag.Int("train-steps", 0, "training window length per scenario (0 = library default)")
		seed       = flag.Int64("seed", 1, "base seed; shard i trains with seed+i")
		dc         = flag.Bool("dc", false, "use the linear DC power-flow substrate (faster training)")
		workers    = flag.Int("workers", 0, "worker pool size per shard (0 = GOMAXPROCS)")
		maxBatch   = flag.Int("max-batch", 0, "max samples per coalesced detector batch (0 = default)")
		queue      = flag.Int("queue", 0, "pending-sample bound per shard before load-shedding (0 = default)")
		timeout    = flag.Duration("timeout", 30*time.Second, "per-request deadline")
		confirm    = flag.Int("confirm", 0, "streaming confirmation streak (0 = default)")
		traceCap   = flag.Int("trace-capacity", 256, "retained-trace ring size for GET /debug/traces (0 disables tracing)")
		traceSlow  = flag.Duration("trace-slow", 100*time.Millisecond, "tail sampling keeps traces at least this slow (negative disables the latency rule)")
		traceEvery = flag.Int("trace-sample", 0, "tail sampling also keeps every Nth trace regardless of latency (0 disables)")
		smoke      = flag.Bool("smoke", false, "self-test: serve on an ephemeral port, round-trip one detect, exit")
		smokeCase  = flag.String("smoke-case", "ieee14", "grid case the -smoke shard trains on (e.g. synth300 for the scale smoke)")
		smokeSteps = flag.Int("smoke-steps", 12, "training window length of the -smoke shard")
	)
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		log.Fatal(err)
	}
	logger := obs.NewTextLogger(os.Stderr, level)

	if *smoke {
		if err := runSmoke(*smokeCase, *smokeSteps); err != nil {
			log.Fatalf("serve-smoke: %v", err)
		}
		fmt.Println("serve-smoke ok")
		return
	}

	cfg, err := buildConfig(*shards, *trainSteps, *seed, *dc, *workers, *maxBatch, *queue, *confirm)
	if err != nil {
		log.Fatal(err)
	}
	var reg *registry.Client
	if *regURL != "" {
		if reg, err = registry.NewClient(*regURL, nil); err != nil {
			log.Fatal(err)
		}
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := applyModels(ctx, &cfg, *models, reg); err != nil {
		log.Fatal(err)
	}
	for i := range cfg.Shards {
		cfg.Shards[i].Replicas = *replicas
	}
	cfg.Logger = logger
	if *traceCap > 0 {
		cfg.Tracer = obs.NewTracer(obs.TracerConfig{
			Capacity:      *traceCap,
			SlowThreshold: *traceSlow,
			SampleEvery:   *traceEvery,
		})
	}
	if err := run(ctx, *addr, *debugAddr, cfg, *timeout, logger, reg); err != nil {
		log.Fatal(err)
	}
}

// buildConfig parses the -shards flag ("east=ieee14,west=ieee30"; a bare
// name defaults its case) into a service configuration.
func buildConfig(shardFlag string, trainSteps int, seed int64, dc bool, workers, maxBatch, queue, confirm int) (service.Config, error) {
	cfg := service.Config{MaxBatch: maxBatch, QueueDepth: queue, Confirm: confirm}
	for i, spec := range strings.Split(shardFlag, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, caseName, _ := strings.Cut(spec, "=")
		cfg.Shards = append(cfg.Shards, service.ShardSpec{
			Name: name,
			Opts: pmuoutage.Options{
				Case:       caseName,
				TrainSteps: trainSteps,
				Seed:       seed + int64(i),
				UseDC:      dc,
				Workers:    workers,
			},
		})
	}
	if len(cfg.Shards) == 0 {
		return cfg, fmt.Errorf("%w: -shards is empty", service.ErrConfig)
	}
	return cfg, nil
}

// applyModels parses the -models flag ("east=/path/a.json,...") and
// pins each named shard to the decoded artifact, so the daemon boots
// serving without retraining. A value that is a hex SHA-256
// fingerprint is pulled from the registry (verified on receipt)
// instead of the filesystem.
func applyModels(ctx context.Context, cfg *service.Config, modelFlag string, reg *registry.Client) error {
	for _, spec := range strings.Split(modelFlag, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, ref, ok := strings.Cut(spec, "=")
		if !ok || ref == "" {
			return fmt.Errorf("%w: -models entry %q is not name=ref", service.ErrConfig, spec)
		}
		var m *pmuoutage.Model
		var err error
		if isFingerprint(ref) {
			if reg == nil {
				return fmt.Errorf("%w: -models entry %q names a fingerprint but no -registry is set", service.ErrConfig, spec)
			}
			m, err = reg.Model(ctx, ref)
		} else {
			m, err = httpserve.LoadModel(ref)
		}
		if err != nil {
			return fmt.Errorf("loading model for shard %q: %w", name, err)
		}
		found := false
		for i := range cfg.Shards {
			if cfg.Shards[i].Name == name {
				cfg.Shards[i].Model = m
				found = true
			}
		}
		if !found {
			return fmt.Errorf("%w: -models names unknown shard %q", service.ErrConfig, name)
		}
	}
	return nil
}

// isFingerprint reports whether ref looks like a hex SHA-256 content
// fingerprint (64 hex chars) rather than a file path.
func isFingerprint(ref string) bool {
	if len(ref) != 64 {
		return false
	}
	for _, c := range ref {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// shardGeneration reads one shard's incarnation counter (0 if absent).
func shardGeneration(svc *service.Service, name string) uint64 {
	for _, st := range svc.Shards() {
		if st.Name == name {
			return st.Generation
		}
	}
	return 0
}

// run starts the service, serves HTTP (plus the optional pprof/expvar
// debug listener) until ctx cancels, then shuts everything down
// gracefully.
func run(ctx context.Context, addr, debugAddr string, cfg service.Config, timeout time.Duration, logger *slog.Logger, reg *registry.Client) error {
	svc, err := service.New(ctx, cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	srv := httpserve.New(svc, timeout, logger)
	if reg != nil {
		srv.SetModelSource(reg)
	}
	httpSrv := &http.Server{Addr: addr, Handler: srv.Routes()}
	servers := []*http.Server{httpSrv}
	errc := make(chan error, 2)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Info("outaged listening", "addr", addr, "shards", len(cfg.Shards))
	if debugAddr != "" {
		dbgSrv := &http.Server{Addr: debugAddr, Handler: httpserve.DebugMux()}
		servers = append(servers, dbgSrv)
		go func() { errc <- dbgSrv.ListenAndServe() }()
		logger.Info("debug endpoints listening", "addr", debugAddr)
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	logger.Info("shutting down")
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for _, s := range servers {
		if err := s.Shutdown(sdCtx); err != nil {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	return nil
}

// runSmoke is the -smoke self-test wired to `make serve-smoke` (and,
// with -smoke-case synth300, `make smoke-scale`): bring a one-shard
// service up on an ephemeral port, round-trip one detect request over
// real HTTP, check it against the library answer, and shut down
// cleanly.
func runSmoke(caseName string, trainSteps int) error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	// Debug-level logging to a discard sink: the smoke run exercises the
	// full span/access-log path without polluting its own output.
	smokeLog := obs.NewTextLogger(io.Discard, slog.LevelDebug)
	cfg := service.Config{
		Shards: []service.ShardSpec{{Name: "smoke", Opts: pmuoutage.Options{
			Case: caseName, TrainSteps: trainSteps, UseDC: true, Seed: 7,
		}}},
		Logger: smokeLog,
	}
	svc, err := service.New(ctx, cfg)
	if err != nil {
		return err
	}
	defer svc.Close()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: httpserve.New(svc, 30*time.Second, smokeLog).Routes()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	// Wait for the shard to train, then build a known-outage sample.
	var sys *pmuoutage.System
	for sys == nil {
		if sys, err = svc.System("smoke"); err != nil {
			if !service.Retryable(err) {
				return err
			}
			if !sleepCtx(ctx, 20*time.Millisecond) {
				return ctx.Err()
			}
		}
	}
	line := sys.ValidLines()[0]
	samples, err := sys.SimulateOutageContext(ctx, []int{line}, 2)
	if err != nil {
		return err
	}
	want, err := sys.DetectBatchContext(ctx, samples)
	if err != nil {
		return err
	}

	cl, err := client.New(client.Config{BaseURL: base})
	if err != nil {
		return err
	}
	got, err := cl.Detect(ctx, "smoke", samples)
	if err != nil {
		return err
	}
	if err := httpserve.CompareReports(got, want); err != nil {
		return err
	}
	if !got[0].Outage {
		return fmt.Errorf("smoke detect on line %d reported no outage", line)
	}

	// Hot reload: retrain with the same options (yielding an identical
	// model), swap it in, and verify the daemon answers byte-identically
	// with a bumped generation — the train-once/serve-many path end to
	// end over real HTTP.
	genBefore := shardGeneration(svc, "smoke")
	res, err := cl.Reload(ctx, "smoke", "")
	if err != nil {
		return err
	}
	if res.Generation != genBefore+1 {
		return fmt.Errorf("reload generation = %d, want %d", res.Generation, genBefore+1)
	}
	if res.Model != sys.Model().Fingerprint() {
		return fmt.Errorf("reloaded model fingerprint %s differs from the original %s", res.Model, sys.Model().Fingerprint())
	}
	got2, err := cl.Detect(ctx, "smoke", samples)
	if err != nil {
		return err
	}
	if err := httpserve.CompareReports(got2, want); err != nil {
		return fmt.Errorf("after reload: %w", err)
	}

	// Binary ingest: one wire-frame round-trip over real HTTP must land
	// on the same monitor path and answer with the JSON response shape.
	if err := checkBinaryIngest(ctx, base, samples[0]); err != nil {
		return err
	}

	// Telemetry end-to-end: a caller-supplied trace ID must be echoed on
	// the response, and /metrics must show the traffic just served with
	// internally consistent histograms.
	if err := checkTraceEcho(ctx, base); err != nil {
		return err
	}
	if err := checkMetrics(ctx, base); err != nil {
		return err
	}

	sdCtx, sdCancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer sdCancel()
	if err := httpSrv.Shutdown(sdCtx); err != nil {
		return fmt.Errorf("shutdown: %w", err)
	}
	if err := <-errc; !errors.Is(err, http.ErrServerClosed) {
		return fmt.Errorf("serve: %w", err)
	}
	return nil
}

// checkBinaryIngest encodes one sample with the wire codec, posts it as
// application/x-pmu-frame, and asserts the daemon accepts and scores
// it.
func checkBinaryIngest(ctx context.Context, base string, sample pmuoutage.Sample) error {
	f := wire.GetFrame()
	defer wire.PutFrame(f)
	if err := f.Pack(1, sample.Vm, sample.Va, nil); err != nil {
		return err
	}
	enc, err := wire.AppendFrame(nil, f)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/ingest?shard=smoke", bytes.NewReader(enc))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", httpserve.FrameContentType)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("binary ingest: HTTP %d: %s", resp.StatusCode, body)
	}
	var out httpserve.IngestResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return fmt.Errorf("binary ingest response: %w", err)
	}
	if out.Shard != "smoke" {
		return fmt.Errorf("binary ingest answered for shard %q", out.Shard)
	}
	return nil
}

// checkTraceEcho round-trips a raw request with a caller-supplied
// X-Trace-Id and asserts the daemon echoes it back verbatim.
func checkTraceEcho(ctx context.Context, base string) error {
	const want = "feedfacecafe0001"
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/healthz", nil)
	if err != nil {
		return err
	}
	req.Header.Set(obs.TraceHeader, want)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	_, _ = io.Copy(io.Discard, resp.Body)
	if got := resp.Header.Get(obs.TraceHeader); got != want {
		return fmt.Errorf("trace echo: sent %q, got %q back", want, got)
	}
	return nil
}

// checkMetrics scrapes /metrics and asserts the smoke traffic is
// visible there: non-zero detect counters for the smoke shard and
// cumulative stage-histogram buckets that never decrease with le.
func checkMetrics(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/metrics", nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET /metrics: HTTP %d", resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	return verifyMetricsBody(string(body))
}

// verifyMetricsBody is the pure assertion half of checkMetrics.
func verifyMetricsBody(body string) error {
	counterAtLeast := func(series string, min float64) error {
		for _, line := range strings.Split(body, "\n") {
			if !strings.HasPrefix(line, series+" ") {
				continue
			}
			v, err := strconv.ParseFloat(strings.TrimSpace(line[len(series)+1:]), 64)
			if err != nil {
				return fmt.Errorf("parsing %q: %v", line, err)
			}
			if v < min {
				return fmt.Errorf("%s = %v, want at least %v", series, v, min)
			}
			return nil
		}
		return fmt.Errorf("/metrics lacks series %s", series)
	}
	for _, series := range []string{
		`pmu_requests_total{shard="smoke"}`,
		`pmu_batches_total{shard="smoke"}`,
		`pmu_samples_total{shard="smoke"}`,
		`pmu_reloads_total{shard="smoke"}`,
		`pmu_ingest_frames_total{shard="smoke",mode="binary"}`,
		`pmu_http_requests_total{path="/v1/detect"}`,
		`pmu_http_requests_total{path="/v1/ingest"}`,
	} {
		if err := counterAtLeast(series, 1); err != nil {
			return err
		}
	}
	// Rendered bucket counts are cumulative, so within one series (the
	// labels before the le pair) they must never decrease.
	last := map[string]float64{}
	found := false
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "pmu_stage_seconds_bucket{") &&
			!strings.HasPrefix(line, "pmu_http_seconds_bucket{") {
			continue
		}
		cut := strings.Index(line, `le="`)
		sp := strings.LastIndexByte(line, ' ')
		if cut < 0 || sp < cut {
			return fmt.Errorf("malformed bucket line %q", line)
		}
		key := line[:cut]
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return fmt.Errorf("parsing %q: %v", line, err)
		}
		if prev, ok := last[key]; ok && v < prev {
			return fmt.Errorf("bucket counts decreased within %s: %v after %v", key, v, prev)
		}
		last[key] = v
		found = true
	}
	if !found {
		return errors.New("/metrics has no stage histogram buckets")
	}
	return nil
}

// sleepCtx waits d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return false
	case <-t.C:
		return true
	}
}
