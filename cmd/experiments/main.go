// Command experiments regenerates the paper's evaluation figures as
// printed tables. Each sub-command corresponds to one figure of §V (see
// DESIGN.md for the index); "all" runs everything and "ablation" runs
// the extra design-choice studies.
//
// Usage:
//
//	experiments [flags] fig4|fig5|fig7|fig8|fig9|fig10|ablation|recovery|multi|all
//
// Full AC runs over all four systems take minutes; use -systems and -dc
// to scope things down, or -workers to bound the parallelism (0 uses
// every CPU; results are identical for any worker count). Ctrl-C
// cancels the run cleanly mid-figure.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pmuoutage/internal/experiments"
)

func main() {
	systems := flag.String("systems", "", "comma-separated systems (default all four)")
	trainSteps := flag.Int("train-steps", 40, "training samples per scenario")
	testSteps := flag.Int("test-steps", 20, "test realizations per outage case (paper: 100)")
	seed := flag.Int64("seed", 1, "random seed")
	useDC := flag.Bool("dc", false, "DC power-flow approximation (fast)")
	clusters := flag.Int("clusters", 0, "PDC clusters (default max(3, N/10))")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS; output is worker-count independent)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] fig4|fig5|fig7|fig8|fig9|fig10|ablation|recovery|multi|all")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{
		TrainSteps: *trainSteps,
		TestSteps:  *testSteps,
		Seed:       *seed,
		UseDC:      *useDC,
		Clusters:   *clusters,
		Workers:    *workers,
	}
	if *systems != "" {
		cfg.Systems = strings.Split(*systems, ",")
	}

	runs := map[string]func(context.Context, experiments.Config) ([]experiments.Row, error){
		"fig4":     experiments.Fig4,
		"fig5":     experiments.Fig5,
		"fig7":     experiments.Fig7,
		"fig8":     experiments.Fig8,
		"fig9":     experiments.Fig9,
		"fig10":    experiments.Fig10,
		"ablation": experiments.Ablation,
		"recovery": experiments.Recovery,
		"multi":    experiments.MultiOutage,
		"all":      experiments.All,
	}
	name := flag.Arg(0)
	fn, ok := runs[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", name)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	rows, err := fn(ctx, cfg)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Println(r.String())
	}
	fmt.Fprintf(os.Stderr, "experiments: %s done in %s (%d rows)\n", name, time.Since(start).Round(time.Millisecond), len(rows))
}
