package mat

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randSym(rng *rand.Rand, n int) *Dense {
	m := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			v := rng.NormFloat64()
			m.Set(i, j, v)
			m.Set(j, i, v)
		}
	}
	return m
}

func randSPD(rng *rand.Rand, n int) *Dense {
	a := randDense(rng, n, n)
	spd := a.Mul(a.T())
	for i := 0; i < n; i++ {
		spd.Add(i, i, float64(n))
	}
	return spd
}

func TestEigenReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		a := randSym(rng, n)
		e, err := FactorEigenSym(a, 0)
		if err != nil {
			return false
		}
		// V diag(vals) Vᵀ == A
		vd := NewDense(n, n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				vd.Set(i, j, e.V.At(i, j)*e.Values[j])
			}
		}
		return vd.Mul(e.V.T()).Equalf(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEigenOrthonormalSorted(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randSym(rng, 7)
	e, err := FactorEigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !isOrthonormalCols(e.V, 1e-9) {
		t.Fatal("eigenvectors not orthonormal")
	}
	for i := 1; i < len(e.Values); i++ {
		if e.Values[i-1] < e.Values[i] {
			t.Fatal("eigenvalues not sorted decreasing")
		}
	}
}

func TestEigenKnownDiagonal(t *testing.T) {
	a := NewDenseData(3, 3, []float64{
		2, 0, 0,
		0, -1, 0,
		0, 0, 5,
	})
	e, err := FactorEigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 2, -1}
	for i, w := range want {
		if math.Abs(e.Values[i]-w) > 1e-12 {
			t.Fatalf("Values = %v, want %v", e.Values, want)
		}
	}
}

func TestEigenTraceInvariant(t *testing.T) {
	// Sum of eigenvalues equals the trace.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(7)
		a := randSym(rng, n)
		e, err := FactorEigenSym(a, 0)
		if err != nil {
			return false
		}
		var tr, sum float64
		for i := 0; i < n; i++ {
			tr += a.At(i, i)
			sum += e.Values[i]
		}
		return math.Abs(tr-sum) < 1e-9*(1+math.Abs(tr))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestEigenRejectsAsymmetric(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 3, 4})
	if _, err := FactorEigenSym(a, 0); err == nil {
		t.Fatal("expected symmetry error")
	}
	if _, err := FactorEigenSym(NewDense(2, 3), 0); err == nil {
		t.Fatal("expected square error")
	}
}

func TestCholeskyReconstruction(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(8)
		a := randSPD(rng, n)
		c, err := FactorCholesky(a)
		if err != nil {
			return false
		}
		return c.L().Mul(c.L().T()).Equalf(a, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestCholeskySolve(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	n := 6
	a := randSPD(rng, n)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := c.Solve(b)
	if err != nil {
		t.Fatal(err)
	}
	r := a.MulVec(x)
	for i := range b {
		if math.Abs(r[i]-b[i]) > 1e-9 {
			t.Fatalf("residual at %d: %v vs %v", i, r[i], b[i])
		}
	}
	if _, err := c.Solve([]float64{1}); err == nil {
		t.Fatal("expected rhs length error")
	}
}

func TestCholeskyRejectsIndefinite(t *testing.T) {
	a := NewDenseData(2, 2, []float64{1, 2, 2, 1}) // eigenvalues 3, -1
	if _, err := FactorCholesky(a); err == nil {
		t.Fatal("expected positive-definite error")
	}
	if _, err := FactorCholesky(NewDense(2, 3)); err == nil {
		t.Fatal("expected square error")
	}
}

func TestCholeskyLogDet(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := randSPD(rng, 5)
	c, err := FactorCholesky(a)
	if err != nil {
		t.Fatal(err)
	}
	lu, err := FactorLU(a)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Log(lu.Det())
	if math.Abs(c.LogDet()-want) > 1e-9*(1+math.Abs(want)) {
		t.Fatalf("LogDet = %v, want %v", c.LogDet(), want)
	}
}

func TestEigenMatchesSVDForSPD(t *testing.T) {
	// For SPD matrices, eigenvalues equal singular values.
	rng := rand.New(rand.NewSource(11))
	a := randSPD(rng, 6)
	e, err := FactorEigenSym(a, 0)
	if err != nil {
		t.Fatal(err)
	}
	s := FactorSVD(a)
	for i := range e.Values {
		if math.Abs(e.Values[i]-s.S[i]) > 1e-8*(1+s.S[0]) {
			t.Fatalf("eigen %v vs singular %v at %d", e.Values[i], s.S[i], i)
		}
	}
}
