// Package suppress is golden-test input for //gridlint:ignore handling,
// run under the floatcmp analyzer: every comparison here would be a
// finding, and only the unannotated one may survive.
package suppress

func eq(a, b float64) bool {
	if a == b { //gridlint:ignore floatcmp same-line suppression under test
		return true
	}
	//gridlint:ignore floatcmp line-above suppression under test
	if a != b {
		return false
	}
	//gridlint:ignore all wildcard suppression under test
	ok := a == b
	_ = ok
	return a == b // want `floating-point == comparison`
}
