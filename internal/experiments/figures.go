package experiments

import (
	"context"
	"math/rand"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/pmunet"
)

// Every figure fans its rows — one job per (system, sweep point) — out
// over cfg.Workers via rowJobs. Each job seeds its own mask RNG exactly
// as the sequential loops did, and results concatenate in job order, so
// the printed tables are byte-identical to a Workers = 1 run.

// Fig4 reproduces Figure 4: the effect of detection-group formation.
// The x axis is the fraction of group members selected by learned
// detection capability (Eq. 8); x = 0 is the naive PCA-orthogonal
// choice, x = 1 the proposed robust group. Complete data, single-line
// outages, subspace method only.
func Fig4(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	mixes := []float64{0, 0.25, 0.5, 0.75, 1}
	return rowJobs(ctx, cfg, len(cfg.Systems)*len(mixes), func(ctx context.Context, i int) ([]Row, error) {
		system := cfg.Systems[i/len(mixes)]
		mix := mixes[i%len(mixes)]
		c := cfg
		c.Detect.Groups.Mix = mix
		if mix == 0 { //gridlint:ignore floatcmp compares against the exact literal 0 from the sweep list above
			// Mix = 0 (zero value) means "default" to detect.Train,
			// so the pure naive choice is requested with -1.
			c.Detect.Groups.Mix = -1
		}
		b, err := c.prepare(ctx, system, false)
		if err != nil {
			return nil, err
		}
		sub, _, err := b.evalOutages(ctx, nil, cfg.Seed+31)
		if err != nil {
			return nil, err
		}
		return []Row{{
			Figure: "fig4", System: system, Method: "subspace",
			X: mix, IA: sub.IA(), FA: sub.FA(), N: sub.N(),
		}}, nil
	})
}

// Fig5 reproduces Figure 5: the complete-data case, subspace vs MLR,
// over all systems.
func Fig5(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	return rowJobs(ctx, cfg, len(cfg.Systems), func(ctx context.Context, i int) ([]Row, error) {
		system := cfg.Systems[i]
		b, err := cfg.prepare(ctx, system, true)
		if err != nil {
			return nil, err
		}
		sub, base, err := b.evalOutages(ctx, nil, cfg.Seed+41)
		if err != nil {
			return nil, err
		}
		return []Row{
			{Figure: "fig5", System: system, Method: "subspace", IA: sub.IA(), FA: sub.FA(), N: sub.N()},
			{Figure: "fig5", System: system, Method: "mlr", IA: base.IA(), FA: base.FA(), N: base.N()},
		}, nil
	})
}

// Fig7 reproduces Figure 7: data from the outage endpoints are missing
// (Fig. 6 top pattern).
func Fig7(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	return rowJobs(ctx, cfg, len(cfg.Systems), func(ctx context.Context, i int) ([]Row, error) {
		system := cfg.Systems[i]
		b, err := cfg.prepare(ctx, system, true)
		if err != nil {
			return nil, err
		}
		mask := func(e grid.Line, _ *rand.Rand) pmunet.Mask {
			return b.nw.OutageLocationMask(e)
		}
		sub, base, err := b.evalOutages(ctx, mask, cfg.Seed+51)
		if err != nil {
			return nil, err
		}
		return []Row{
			{Figure: "fig7", System: system, Method: "subspace", IA: sub.IA(), FA: sub.FA(), N: sub.N()},
			{Figure: "fig7", System: system, Method: "mlr", IA: base.IA(), FA: base.FA(), N: base.N()},
		}, nil
	})
}

// Fig8 reproduces Figure 8: test samples are normal operation with a
// few random missing points (Fig. 6 middle pattern) — can the methods
// tell a data problem from a physical failure? |F| = 0 conventions of
// §V-C2 apply.
func Fig8(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	return rowJobs(ctx, cfg, len(cfg.Systems), func(ctx context.Context, i int) ([]Row, error) {
		system := cfg.Systems[i]
		b, err := cfg.prepare(ctx, system, true)
		if err != nil {
			return nil, err
		}
		var sub, base metrics.Accumulator
		// Several missing-point counts, several draws each.
		for _, k := range []int{1, 2, 3, 5} {
			mask := func(_ grid.Line, rng *rand.Rand) pmunet.Mask {
				return b.nw.RandomMask(k, nil, rng)
			}
			s, m, err := b.evalNormal(ctx, mask, cfg.Seed+61+int64(k))
			if err != nil {
				return nil, err
			}
			mergeInto(&sub, s)
			mergeInto(&base, m)
		}
		return []Row{
			{Figure: "fig8", System: system, Method: "subspace", IA: sub.IA(), FA: sub.FA(), N: sub.N()},
			{Figure: "fig8", System: system, Method: "mlr", IA: base.IA(), FA: base.FA(), N: base.N()},
		}, nil
	})
}

// Fig9 reproduces Figure 9: outage samples with random missing data NOT
// at the outage location (Fig. 6 bottom pattern) — missing data and
// outages uncorrelated.
func Fig9(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	return rowJobs(ctx, cfg, len(cfg.Systems), func(ctx context.Context, i int) ([]Row, error) {
		system := cfg.Systems[i]
		b, err := cfg.prepare(ctx, system, true)
		if err != nil {
			return nil, err
		}
		mask := func(e grid.Line, rng *rand.Rand) pmunet.Mask {
			a, bb := b.g.Endpoints(e)
			k := 1 + rng.Intn(3)
			return b.nw.RandomMask(k, []int{a, bb}, rng)
		}
		sub, base, err := b.evalOutages(ctx, mask, cfg.Seed+71)
		if err != nil {
			return nil, err
		}
		return []Row{
			{Figure: "fig9", System: system, Method: "subspace", IA: sub.IA(), FA: sub.FA(), N: sub.N()},
			{Figure: "fig9", System: system, Method: "mlr", IA: base.IA(), FA: base.FA(), N: base.N()},
		}, nil
	})
}

// Fig10 reproduces Figure 10: the effective false-alarm rate FA(r) of
// Eqs. (13)–(15) as a function of system-wide PMU network reliability.
// The 2^L pattern sum is estimated by Monte Carlo: each trial draws a
// missing-data pattern from the Eq. (15) device distribution, which
// weights patterns by exactly p_l(r). Outage and normal samples are both
// evaluated so FA captures false lines and phantom outages. Every
// (system, level) cell is one parallel job with its own seed-derived
// mask RNGs.
func Fig10(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	levels := []float64{0.80, 0.85, 0.90, 0.95, 0.99}
	return rowJobs(ctx, cfg, len(cfg.Systems)*len(levels), func(ctx context.Context, i int) ([]Row, error) {
		system := cfg.Systems[i/len(levels)]
		r := levels[i%len(levels)]
		b, err := cfg.prepare(ctx, system, false)
		if err != nil {
			return nil, err
		}
		rel, err := pmunet.FromSystemReliability(r, b.g.N())
		if err != nil {
			return nil, err
		}
		mask := func(_ grid.Line, rng *rand.Rand) pmunet.Mask {
			return b.nw.SampleMask(rel, rng)
		}
		sub, _, err := b.evalOutages(ctx, mask, cfg.Seed+81+int64(r*1000))
		if err != nil {
			return nil, err
		}
		subN, _, err := b.evalNormal(ctx, mask, cfg.Seed+91+int64(r*1000))
		if err != nil {
			return nil, err
		}
		mergeInto(&sub, subN)
		return []Row{{
			Figure: "fig10", System: system, Method: "subspace",
			X: r, IA: sub.IA(), FA: sub.FA(), N: sub.N(),
		}}, nil
	})
}

// Ablation compares the design choices DESIGN.md calls out: the literal
// Eq. (9) regressor vs the projection residual, Eq. (11) scaling on/off,
// and the measurement channel, on the Fig. 7 missing-outage-data
// scenario where the differences matter most.
func Ablation(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	variants := []struct {
		name string
		mod  func(*detect.Config)
	}{
		{"residual", func(*detect.Config) {}},
		{"regressor", func(c *detect.Config) { c.UseRegressorProximity = true }},
		{"unscaled", func(c *detect.Config) { c.DisableScaling = true }},
		{"magnitude", func(c *detect.Config) { c.Channel = dataset.Magnitude }},
		{"stacked", func(c *detect.Config) { c.Channel = dataset.Stacked }},
		{"mvee", func(c *detect.Config) { c.UseMVEE = true }},
	}
	return rowJobs(ctx, cfg, len(cfg.Systems)*len(variants), func(ctx context.Context, i int) ([]Row, error) {
		system := cfg.Systems[i/len(variants)]
		v := variants[i%len(variants)]
		c := cfg
		v.mod(&c.Detect)
		b, err := c.prepare(ctx, system, false)
		if err != nil {
			return nil, err
		}
		mask := func(e grid.Line, _ *rand.Rand) pmunet.Mask {
			return b.nw.OutageLocationMask(e)
		}
		sub, _, err := b.evalOutages(ctx, mask, cfg.Seed+101)
		if err != nil {
			return nil, err
		}
		return []Row{{
			Figure: "ablation", System: system, Method: v.name,
			IA: sub.IA(), FA: sub.FA(), N: sub.N(),
		}}, nil
	})
}

// mergeInto folds the counts of src into dst by re-adding its averages
// weighted by sample count.
func mergeInto(dst *metrics.Accumulator, src metrics.Accumulator) {
	for i := 0; i < src.N(); i++ {
		dst.AddScores(src.IA(), src.FA())
	}
}

// All runs every figure and returns the concatenated rows. Figures run
// in order (their rows must print in order); the parallelism lives
// inside each figure.
func All(ctx context.Context, cfg Config) ([]Row, error) {
	var rows []Row
	for _, fn := range []func(context.Context, Config) ([]Row, error){Fig4, Fig5, Fig7, Fig8, Fig9, Fig10} {
		r, err := fn(ctx, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, r...)
	}
	return rows, nil
}
