//go:build !race

package cases

// raceEnabled reports whether the race detector is compiled in; see
// race_on.go for why the scale tests consult it.
const raceEnabled = false
