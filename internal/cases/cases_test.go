package cases

import (
	"math"
	"reflect"
	"strings"
	"testing"

	"pmuoutage/internal/grid"
	"pmuoutage/internal/powerflow"
)

func TestAllCasesValidate(t *testing.T) {
	for _, g := range All() {
		if err := g.Validate(); err != nil {
			t.Errorf("%s: %v", g.Name, err)
		}
	}
}

func TestPaperLineCounts(t *testing.T) {
	// §V: "These systems have 20, 41, 80, and 186 power lines".
	want := map[string]struct{ buses, lines int }{
		"ieee14":  {14, 20},
		"ieee30":  {30, 41},
		"ieee57":  {57, 80},
		"ieee118": {118, 186},
	}
	for _, g := range All() {
		w := want[g.Name]
		if g.N() != w.buses || g.E() != w.lines {
			t.Errorf("%s: %d buses / %d lines, want %d / %d", g.Name, g.N(), g.E(), w.buses, w.lines)
		}
	}
}

func TestSyntheticSameSeedDeepEqual(t *testing.T) {
	cfg := SynthConfig{
		Name: "det", Buses: 20, Branches: 28,
		Regions: 3, Gens: 4, LoadMW: 400, Seed: 7,
	}
	a, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("identically-seeded synthetic grids differ; builder must not touch global rand")
	}
	c, err := Synthetic(SynthConfig{
		Name: "det", Buses: 20, Branches: 28,
		Regions: 3, Gens: 4, LoadMW: 400, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Branches, c.Branches) {
		t.Fatal("different seeds produced identical topologies; seed is not reaching the builder")
	}
}

func TestLoadRegistry(t *testing.T) {
	for _, name := range Names() {
		if raceEnabled && strings.HasPrefix(name, "synth") {
			// The scale builds are pure numeric loops that race
			// instrumentation slows ~100x; the scale tests and
			// `make smoke-scale` cover them uninstrumented.
			continue
		}
		g, err := Load(name)
		if err != nil {
			t.Fatal(err)
		}
		if g.Name != name {
			t.Errorf("Load(%q).Name = %q", name, g.Name)
		}
	}
	if _, err := Load("nope"); err == nil {
		t.Fatal("expected error for unknown case")
	}
}

func TestIEEE14SolvesNearPublishedVoltages(t *testing.T) {
	g := IEEE14()
	sol, err := powerflow.SolveAC(g, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	// The embedded Vm/Va are the published solved values; a correct
	// solver must land close to them (generator Q limits are ignored,
	// so allow a modest tolerance).
	for i := range g.Buses {
		if dv := math.Abs(sol.Vm[i] - g.Buses[i].Vm); dv > 0.02 {
			t.Errorf("bus %d Vm=%.4f, published %.4f", i+1, sol.Vm[i], g.Buses[i].Vm)
		}
		if da := math.Abs(sol.Va[i] - g.Buses[i].Va); da > 0.02 {
			t.Errorf("bus %d Va=%.4f rad, published %.4f", i+1, sol.Va[i], g.Buses[i].Va)
		}
	}
}

func TestIEEE30SolvesNearPublishedVoltages(t *testing.T) {
	g := IEEE30()
	sol, err := powerflow.SolveAC(g, powerflow.Options{FlatStart: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range g.Buses {
		if dv := math.Abs(sol.Vm[i] - g.Buses[i].Vm); dv > 0.02 {
			t.Errorf("bus %d Vm=%.4f, published %.4f", i+1, sol.Vm[i], g.Buses[i].Vm)
		}
		if da := math.Abs(sol.Va[i] - g.Buses[i].Va); da > 0.025 {
			t.Errorf("bus %d Va=%.4f rad, published %.4f", i+1, sol.Va[i], g.Buses[i].Va)
		}
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := IEEE57()
	b := IEEE57()
	if a.N() != b.N() || a.E() != b.E() {
		t.Fatal("synthetic build not deterministic in size")
	}
	for e := range a.Branches {
		if a.Branches[e] != b.Branches[e] {
			t.Fatalf("branch %d differs between identical builds", e)
		}
	}
	for i := range a.Buses {
		if a.Buses[i] != b.Buses[i] {
			t.Fatalf("bus %d differs between identical builds", i)
		}
	}
}

func TestSyntheticSolvable(t *testing.T) {
	for _, g := range []*grid.Grid{IEEE57(), IEEE118()} {
		sol, err := powerflow.SolveAC(g, powerflow.Options{})
		if err != nil {
			t.Errorf("%s: %v", g.Name, err)
			continue
		}
		for i, vm := range sol.Vm {
			if vm < 0.8 || vm > 1.2 {
				t.Errorf("%s bus %d: implausible Vm %.3f", g.Name, i, vm)
			}
		}
	}
}

func TestSyntheticRejectsBadConfig(t *testing.T) {
	if _, err := Synthetic(SynthConfig{Name: "x", Buses: 10, Branches: 5}); err == nil {
		t.Fatal("expected error: too few branches to connect")
	}
	if _, err := Synthetic(SynthConfig{Name: "x", Buses: 4, Branches: 10}); err == nil {
		t.Fatal("expected error: exceeds simple-graph limit")
	}
}

func TestSyntheticCustomConfig(t *testing.T) {
	g, err := Synthetic(SynthConfig{
		Name: "mini", Buses: 12, Branches: 18, Regions: 2, Gens: 2,
		LoadMW: 150, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 || g.E() != 18 {
		t.Fatalf("got %d buses / %d branches", g.N(), g.E())
	}
}

func TestMostSingleLineOutagesKeepConnectivity(t *testing.T) {
	// The evaluation needs a healthy population of valid outage cases
	// (E <= |E| in the paper). Require that well over half of single-line
	// removals keep each system connected.
	for _, g := range All() {
		ok := 0
		for e := 0; e < g.E(); e++ {
			if g.ConnectedWithout(grid.Line(e)) {
				ok++
			}
		}
		if ok*2 < g.E() {
			t.Errorf("%s: only %d/%d single-line outages keep connectivity", g.Name, ok, g.E())
		}
	}
}
