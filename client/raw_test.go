package client

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"pmuoutage/api"
)

// TestCodeDrivesRetry: the envelope's code — not the HTTP status —
// decides retryability when present. A 503 carrying code "closed"
// (terminal) must fail immediately; a 503 with code "unavailable"
// retries.
func TestCodeDrivesRetry(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeJSON(w, http.StatusServiceUnavailable,
			api.ErrorEnvelope{Code: api.CodeClosed, Error: "shutting down"})
	}))
	defer ts.Close()

	_, err := testClient(t, ts).Detect(context.Background(), "east", nil)
	if !errors.Is(err, ErrRequest) {
		t.Fatalf("got %v, want terminal ErrRequest", err)
	}
	var se *ServerError
	if !errors.As(err, &se) || se.Code != api.CodeClosed {
		t.Fatalf("ServerError.Code = %v, want %q", se, api.CodeClosed)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (code closed is terminal)", n)
	}
}

// TestServerErrorExposesCode: terminal coded responses surface the code
// through errors.As for machine branching.
func TestServerErrorExposesCode(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusNotFound,
			api.ErrorEnvelope{Code: api.CodeUnknownShard, Error: "unknown shard \"west\""})
	}))
	defer ts.Close()

	_, err := testClient(t, ts).Detect(context.Background(), "west", nil)
	var se *ServerError
	if !errors.As(err, &se) {
		t.Fatalf("not a ServerError: %v", err)
	}
	if se.Code != api.CodeUnknownShard || se.Status != http.StatusNotFound {
		t.Fatalf("ServerError = %+v", se)
	}
}

// TestShardsAndStatsTyped: the typed GET helpers decode the wire
// payloads the daemon serves.
func TestShardsAndStatsTyped(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/shards":
			writeJSON(w, http.StatusOK, []api.ShardStatus{
				{Name: "east", State: "serving", Model: "abc", Generation: 2, QueueDepth: 1},
			})
		case "/v1/stats":
			writeJSON(w, http.StatusOK, map[string]api.ShardSnapshot{
				"east": {Requests: 7, Shed: 1},
			})
		default:
			t.Errorf("unexpected path %s", r.URL.Path)
		}
	}))
	defer ts.Close()

	c := testClient(t, ts)
	shards, err := c.Shards(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 1 || shards[0].Name != "east" || shards[0].State != "serving" || shards[0].Generation != 2 {
		t.Fatalf("shards = %+v", shards)
	}
	stats, err := c.Stats(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if stats["east"].Requests != 7 || stats["east"].Shed != 1 {
		t.Fatalf("stats = %+v", stats)
	}
}

// TestHealthNoRetry: Health reports the current truth in one probe —
// a 503 comes back immediately as the typed error, no retries.
func TestHealthNoRetry(t *testing.T) {
	var calls atomic.Int64
	healthy := atomic.Bool{}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if healthy.Load() {
			writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
			return
		}
		writeJSON(w, http.StatusServiceUnavailable,
			api.ErrorEnvelope{Code: api.CodeUnavailable, Error: "no shard serving"})
	}))
	defer ts.Close()

	c := testClient(t, ts)
	err := c.Health(context.Background())
	var se *ServerError
	if err == nil || !errors.As(err, &se) || se.Code != api.CodeUnavailable {
		t.Fatalf("unhealthy probe: got %v", err)
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (health never retries)", n)
	}
	healthy.Store(true)
	if err := c.Health(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestPostRawReturnsEveryResponse: raw mode hands back HTTP failures as
// responses (for proxy relay / failover), retrying only transport
// errors.
func TestPostRawReturnsEveryResponse(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		if ct := r.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Content-Type = %q", ct)
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Retry-After", "7")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"code":"overloaded","error":"shed","retryable":true}`))
	}))
	defer ts.Close()

	raw, err := testClient(t, ts).PostRaw(context.Background(), "/v1/detect", "application/json", []byte(`{}`))
	if err != nil {
		t.Fatalf("raw mode must not error on HTTP failures: %v", err)
	}
	if raw.Status != http.StatusTooManyRequests || raw.RetryAfter != "7" || raw.ContentType != "application/json" {
		t.Fatalf("raw = %+v", raw)
	}
	if !raw.Retryable() {
		t.Fatal("overloaded response must classify retryable")
	}
	if n := calls.Load(); n != 1 {
		t.Fatalf("server saw %d calls, want 1 (no HTTP-level retries in raw mode)", n)
	}
}

// TestRawTransportErrorExhausts: with the backend gone, raw mode
// retries the transport error up to the budget then wraps ErrExhausted.
func TestRawTransportErrorExhausts(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
	ts.Close() // nothing listening

	c, err := New(Config{BaseURL: ts.URL, MaxRetries: 1, BaseBackoff: time.Millisecond, MaxBackoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PostRaw(context.Background(), "/v1/detect", "application/json", nil); !errors.Is(err, ErrExhausted) {
		t.Fatalf("got %v, want ErrExhausted", err)
	}
}
