package pmunet

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"pmuoutage/internal/par"
)

// Reliability describes the per-device availability of the measurement
// chain, following Eq. (14): each of the L PMUs and its PMU→PDC link
// fail independently; PDC→CC links are considered reliable.
//
// The per-device working probability is q = r_PMU * r_PMU→PDC, and the
// system-wide reliability level is r = q^L.
type Reliability struct {
	RPMU  float64 // availability of one PMU device
	RLink float64 // availability of its PMU→PDC link
}

// Validate checks both probabilities are in (0, 1].
func (r Reliability) Validate() error {
	if r.RPMU <= 0 || r.RPMU > 1 || r.RLink <= 0 || r.RLink > 1 {
		return fmt.Errorf("pmunet: reliability values must be in (0,1]: %+v", r)
	}
	return nil
}

// DeviceAvailability returns q = r_PMU * r_PMU→PDC.
func (r Reliability) DeviceAvailability() float64 { return r.RPMU * r.RLink }

// SystemReliability returns r = q^L per Eq. (14) for L devices.
func (r Reliability) SystemReliability(l int) float64 {
	return math.Pow(r.DeviceAvailability(), float64(l))
}

// FromSystemReliability inverts Eq. (14): given a target system-wide
// level r for L devices it returns the per-device availability q = r^(1/L)
// packed into a Reliability with the link folded into RPMU.
func FromSystemReliability(r float64, l int) (Reliability, error) {
	// The negated form rejects NaN too (NaN fails every comparison).
	if !(r > 0 && r <= 1) || l <= 0 {
		return Reliability{}, fmt.Errorf("pmunet: invalid system reliability %v for L=%d", r, l)
	}
	q := math.Pow(r, 1/float64(l))
	return Reliability{RPMU: q, RLink: 1}, nil
}

// SampleMask draws one missing-data pattern from the Eq. (15)
// distribution: each device is independently down with probability 1-q.
// This is the Monte Carlo view of the 2^L pattern sum in Eq. (13).
func (nw *Network) SampleMask(rel Reliability, rng *rand.Rand) Mask {
	q := rel.DeviceAvailability()
	m := NoneMissing(nw.G.N())
	for i := range m {
		if rng.Float64() >= q {
			m[i] = true
		}
	}
	return m
}

// PatternProbability returns p_l(r) of Eq. (15) for a specific pattern:
// the product over devices of q (working) or 1-q (missing).
func PatternProbability(m Mask, rel Reliability) float64 {
	q := rel.DeviceAvailability()
	p := 1.0
	for _, missing := range m {
		if missing {
			p *= 1 - q
		} else {
			p *= q
		}
	}
	return p
}

// MCStats is the outcome of a sharded Monte Carlo estimate of the
// Eq. (13)–(15) pattern distribution.
type MCStats struct {
	// Trials is the number of patterns drawn.
	Trials int
	// MeanMissing estimates E[#missing devices] under Eq. (15).
	MeanMissing float64
	// AnyMissing estimates P[at least one device missing] — the
	// complement of the system-wide reliability r of Eq. (14).
	AnyMissing float64
}

// mcShards fixes the shard count of the Monte Carlo estimators. The
// trial space is split into this many independently-seeded shards
// regardless of worker count, and shard results are reduced in shard
// order — so the estimate is byte-identical whether the shards run on
// one worker or sixteen.
const mcShards = 64

// splitSeed derives the RNG seed of one shard from the sweep seed with a
// splitmix64-style finalizer, so neighbouring shards get uncorrelated
// streams without sharing any state.
func splitSeed(seed int64, shard int) int64 {
	z := uint64(seed) + uint64(shard+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// ReliabilityMonteCarlo estimates the Eq. (13) pattern-sum statistics by
// drawing trials patterns from the Eq. (15) device distribution. Trials
// are split into fixed shards with per-shard RNGs derived from seed, and
// the shards fan out over workers (0 = GOMAXPROCS); the result is
// deterministic in (rel, trials, seed) and independent of workers.
func (nw *Network) ReliabilityMonteCarlo(ctx context.Context, rel Reliability, trials int, seed int64, workers int) (MCStats, error) {
	if err := rel.Validate(); err != nil {
		return MCStats{}, err
	}
	if trials <= 0 {
		return MCStats{}, fmt.Errorf("pmunet: Monte Carlo needs positive trials, got %d", trials)
	}
	shards := mcShards
	if shards > trials {
		shards = trials
	}
	type shardSum struct {
		missing float64
		any     int
	}
	sums, err := par.Map(ctx, workers, shards, func(_ context.Context, s int) (shardSum, error) {
		lo := s * trials / shards
		hi := (s + 1) * trials / shards
		rng := rand.New(rand.NewSource(splitSeed(seed, s)))
		var sum shardSum
		for t := lo; t < hi; t++ {
			m := nw.SampleMask(rel, rng)
			c := m.MissingCount()
			sum.missing += float64(c)
			if c > 0 {
				sum.any++
			}
		}
		return sum, nil
	})
	if err != nil {
		return MCStats{}, err
	}
	out := MCStats{Trials: trials}
	for _, s := range sums { // fixed shard order: deterministic float sum
		out.MeanMissing += s.missing
		out.AnyMissing += float64(s.any)
	}
	out.MeanMissing /= float64(trials)
	out.AnyMissing /= float64(trials)
	return out, nil
}

// EnumeratePatterns calls fn for every one of the 2^L missing-data
// patterns together with its Eq. (15) probability. It is only feasible
// for small L (the IEEE 14-bus system already needs 2^14 = 16384 calls);
// larger systems should use SampleMask Monte Carlo instead. fn returning
// false stops the enumeration early.
func (nw *Network) EnumeratePatterns(rel Reliability, fn func(m Mask, p float64) bool) error {
	l := nw.G.N()
	if l > 22 {
		return fmt.Errorf("pmunet: refusing to enumerate 2^%d patterns; use SampleMask", l)
	}
	q := rel.DeviceAvailability()
	m := NoneMissing(l)
	var rec func(i int, p float64) bool
	rec = func(i int, p float64) bool {
		if i == l {
			return fn(m.Clone(), p)
		}
		m[i] = false
		if !rec(i+1, p*q) {
			return false
		}
		m[i] = true
		defer func() { m[i] = false }()
		return rec(i+1, p*(1-q))
	}
	rec(0, 1)
	return nil
}
