// Command experiments regenerates the paper's evaluation figures as
// printed tables. Each sub-command corresponds to one figure of §V (see
// DESIGN.md for the index); "all" runs everything and "ablation" runs
// the extra design-choice studies.
//
// Usage:
//
//	experiments [flags] fig4|fig5|fig7|fig8|fig9|fig10|ablation|recovery|multi|all
//
// Full AC runs over all four systems take minutes; use -systems and -dc
// to scope things down, or -workers to bound the parallelism (0 uses
// every CPU; results are identical for any worker count). Ctrl-C
// cancels the run cleanly mid-figure.
//
// Runs also distribute across processes: `experiments -serve :9001`
// turns the binary into a fleet worker answering POST /v1/experiments,
// and `experiments -fleet http://host1:9001,http://host2:9001 fig5`
// splits the run into (figure, system) jobs, spreads them over the
// workers with the router's least-loaded fail-over machinery, and
// prints the same rows in the same order a local run would.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"pmuoutage/api"
	"pmuoutage/internal/experiments"
	"pmuoutage/internal/expserve"
	"pmuoutage/internal/router"
)

func main() {
	systems := flag.String("systems", "", "comma-separated systems (default all four)")
	trainSteps := flag.Int("train-steps", 40, "training samples per scenario")
	testSteps := flag.Int("test-steps", 20, "test realizations per outage case (paper: 100)")
	seed := flag.Int64("seed", 1, "random seed")
	useDC := flag.Bool("dc", false, "DC power-flow approximation (fast)")
	clusters := flag.Int("clusters", 0, "PDC clusters (default max(3, N/10))")
	workers := flag.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS; output is worker-count independent)")
	serveAddr := flag.String("serve", "", "run as a fleet worker: serve POST /v1/experiments on this address instead of running a figure")
	fleet := flag.String("fleet", "", "comma-separated worker base URLs: distribute the run across them instead of computing locally")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] fig4|fig5|fig7|fig8|fig9|fig10|ablation|recovery|multi|all")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *serveAddr != "" {
		if err := serveWorker(*serveAddr); err != nil {
			fmt.Fprintln(os.Stderr, "experiments:", err)
			os.Exit(1)
		}
		return
	}
	if flag.NArg() != 1 {
		flag.Usage()
		os.Exit(2)
	}

	cfg := experiments.Config{
		TrainSteps: *trainSteps,
		TestSteps:  *testSteps,
		Seed:       *seed,
		UseDC:      *useDC,
		Clusters:   *clusters,
		Workers:    *workers,
	}
	if *systems != "" {
		cfg.Systems = strings.Split(*systems, ",")
	}

	name := flag.Arg(0)
	fn, ok := experiments.Figures[name]
	if !ok {
		fmt.Fprintf(os.Stderr, "experiments: unknown figure %q\n", name)
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	var rows []experiments.Row
	var err error
	if *fleet != "" {
		rows, err = runFleet(ctx, strings.Split(*fleet, ","), name, cfg)
	} else {
		rows, err = fn(ctx, cfg)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "experiments: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
	for _, r := range rows {
		fmt.Println(r.String())
	}
	fmt.Fprintf(os.Stderr, "experiments: %s done in %s (%d rows)\n", name, time.Since(start).Round(time.Millisecond), len(rows))
}

// serveWorker runs the binary as a fleet worker until interrupted.
func serveWorker(addr string) error {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	httpSrv := &http.Server{Addr: addr, Handler: expserve.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "experiments: worker listening on %s\n", addr)
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	sdCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(sdCtx)
}

// runFleet distributes the figure over the worker URLs using the
// router's pool machinery and converts the wire rows back to table
// rows. Job order is deterministic, so the printed output matches a
// local run.
func runFleet(ctx context.Context, workerURLs []string, figure string, cfg experiments.Config) ([]experiments.Row, error) {
	rt, err := router.New(ctx, router.Config{Backends: workerURLs})
	if err != nil {
		return nil, err
	}
	defer rt.Close()
	wireRows, err := rt.Experiments(ctx, api.ExperimentRequest{
		Figure:     figure,
		Systems:    cfg.Systems,
		TrainSteps: cfg.TrainSteps,
		TestSteps:  cfg.TestSteps,
		Seed:       cfg.Seed,
		UseDC:      cfg.UseDC,
		Clusters:   cfg.Clusters,
		Workers:    cfg.Workers,
	})
	if err != nil {
		return nil, err
	}
	rows := make([]experiments.Row, len(wireRows))
	for i, r := range wireRows {
		rows[i] = experiments.Row{
			Figure: r.Figure, System: r.System, Method: r.Method,
			X: r.X, IA: r.IA, FA: r.FA, N: r.N,
		}
	}
	return rows, nil
}
