package pmuoutage_test

import (
	"fmt"
	"log"

	"pmuoutage"
)

// Example shows the complete round trip: build a system, simulate an
// outage, detect and localise it from one PMU sample.
func Example() {
	sys, err := pmuoutage.NewSystem(pmuoutage.Options{
		Case:       "ieee14",
		TrainSteps: 20,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	target := sys.ValidLines()[0]
	samples, err := sys.SimulateOutage([]int{target}, 1)
	if err != nil {
		log.Fatal(err)
	}
	report, err := sys.Detect(samples[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outage:", report.Outage)
	for _, l := range report.Lines {
		fmt.Printf("line %d (bus %d - bus %d)\n", l.Index, l.FromBus, l.ToBus)
	}
	// Output:
	// outage: true
	// line 0 (bus 1 - bus 2)
}

// ExampleSample_WithMissing demonstrates detection with the outage's own
// PMUs dark — the paper's hardest missing-data pattern.
func ExampleSample_WithMissing() {
	sys, err := pmuoutage.NewSystem(pmuoutage.Options{
		Case:       "ieee14",
		TrainSteps: 20,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	target := sys.ValidLines()[0]
	line := sys.Lines()[target]
	samples, err := sys.SimulateOutage([]int{target}, 1)
	if err != nil {
		log.Fatal(err)
	}
	// The failure silences both endpoint PMUs (bus numbers are 1-based,
	// sample indices 0-based).
	masked := samples[0].WithMissing(line.FromBus-1, line.ToBus-1)
	report, err := sys.Detect(masked)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("outage detected with endpoints dark:", report.Outage)
	// Output:
	// outage detected with endpoints dark: true
}

// ExampleSystem_NewMonitor shows online monitoring: the monitor confirms
// an outage only after it persists for several samples.
func ExampleSystem_NewMonitor() {
	sys, err := pmuoutage.NewSystem(pmuoutage.Options{
		Case:       "ieee14",
		TrainSteps: 20,
		Seed:       3,
	})
	if err != nil {
		log.Fatal(err)
	}
	mon, err := sys.NewMonitor(2, 10)
	if err != nil {
		log.Fatal(err)
	}
	target := sys.ValidLines()[0]
	stream, err := sys.SimulateOutage([]int{target}, 4)
	if err != nil {
		log.Fatal(err)
	}
	for _, s := range stream {
		ev, err := mon.Ingest(s)
		if err != nil {
			log.Fatal(err)
		}
		if ev != nil {
			fmt.Printf("confirmed at sample %d (latency %d)\n", ev.Seq, ev.Latency)
			break
		}
	}
	// Output:
	// confirmed at sample 2 (latency 2)
}
