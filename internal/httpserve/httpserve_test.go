package httpserve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/internal/comm"
	"pmuoutage/internal/service"
	"pmuoutage/internal/wire"
)

// trainOpts is the fast deterministic recipe every test model uses.
func trainOpts(seed int64) pmuoutage.Options {
	return pmuoutage.Options{Case: "ieee14", TrainSteps: 12, Seed: seed, UseDC: true, Workers: 2}
}

// newModelServer boots one single-shard service from a pre-trained
// artifact behind httptest, with optional config mutation.
func newModelServer(t *testing.T, m *pmuoutage.Model, mut func(*service.Config)) (*service.Service, *httptest.Server) {
	t.Helper()
	cfg := service.Config{
		Shards:         []service.ShardSpec{{Name: "east", Model: m}},
		RestartBackoff: time.Millisecond,
	}
	if mut != nil {
		mut(&cfg)
	}
	svc, err := service.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(New(svc, 30*time.Second, nil).Routes())
	t.Cleanup(ts.Close)
	waitShardReady(t, svc, "east")
	return svc, ts
}

func waitShardReady(t *testing.T, svc *service.Service, name string) *pmuoutage.System {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if sys, err := svc.System(name); err == nil {
			return sys
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shard %s never became ready", name)
	return nil
}

// outageTrace simulates n outage samples with missing measurements
// injected on every third one.
func outageTrace(t *testing.T, sys *pmuoutage.System, n int) []pmuoutage.Sample {
	t.Helper()
	samples, err := sys.SimulateOutage([]int{sys.ValidLines()[0]}, n)
	if err != nil {
		t.Fatal(err)
	}
	for i := range samples {
		if i%3 == 0 {
			samples[i] = samples[i].WithMissing(0, len(samples[i].Vm)-1)
		}
	}
	return samples
}

// postIngestJSON round-trips one sample as a JSON body and returns the
// raw response.
func postIngestJSON(t *testing.T, base, shard string, s pmuoutage.Sample) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(IngestRequest{Shard: shard, Sample: s})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// postIngestFrame round-trips one sample as a binary wire frame.
func postIngestFrame(t *testing.T, base, shard string, seq uint32, s pmuoutage.Sample) (int, []byte) {
	t.Helper()
	f := wire.GetFrame()
	defer wire.PutFrame(f)
	var mask []bool
	if len(s.Missing) > 0 {
		mask = make([]bool, len(s.Vm))
		for _, i := range s.Missing {
			mask[i] = true
		}
	}
	if err := f.Pack(seq, s.Vm, s.Va, mask); err != nil {
		t.Fatal(err)
	}
	enc, err := wire.AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	return postFrameBytes(t, base, shard, enc)
}

func postFrameBytes(t *testing.T, base, shard string, enc []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(base+"/v1/ingest?shard="+shard, FrameContentType, bytes.NewReader(enc))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = resp.Body.Close() }()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, out
}

// TestBinaryIngestMatchesJSON pins the transport-equivalence contract:
// the same outage trace pushed as JSON bodies to one service and as
// binary wire frames to a twin booted from the same artifact produces
// byte-identical response bodies — events included — and the per-mode
// admission counters record each transport.
func TestBinaryIngestMatchesJSON(t *testing.T) {
	m, err := pmuoutage.TrainModel(trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	svcJSON, tsJSON := newModelServer(t, m, nil)
	svcBin, tsBin := newModelServer(t, m, nil)
	sys := waitShardReady(t, svcJSON, "east")
	samples := outageTrace(t, sys, 12)

	events := 0
	for i, s := range samples {
		jsStatus, jsBody := postIngestJSON(t, tsJSON.URL, "east", s)
		binStatus, binBody := postIngestFrame(t, tsBin.URL, "east", uint32(i), s)
		if jsStatus != http.StatusOK || binStatus != http.StatusOK {
			t.Fatalf("sample %d: json %d, binary %d\njson: %s\nbinary: %s", i, jsStatus, binStatus, jsBody, binBody)
		}
		if !bytes.Equal(jsBody, binBody) {
			t.Fatalf("sample %d responses diverge:\njson:   %s\nbinary: %s", i, jsBody, binBody)
		}
		var out IngestResponse
		if err := json.Unmarshal(binBody, &out); err != nil {
			t.Fatal(err)
		}
		if out.Event != nil {
			events++
		}
	}
	if events == 0 {
		t.Fatal("outage trace confirmed no events; the equivalence check is vacuous")
	}
	if got := svcJSON.Stats()["east"].FramesJSON; got != uint64(len(samples)) {
		t.Fatalf("json admissions = %d, want %d", got, len(samples))
	}
	if got := svcBin.Stats()["east"].FramesBinary; got != uint64(len(samples)) {
		t.Fatalf("binary admissions = %d, want %d", got, len(samples))
	}
}

// TestBinaryIngestErrors maps corrupt frames and unknown shards onto
// the same status taxonomy the JSON mode uses.
func TestBinaryIngestErrors(t *testing.T) {
	m, err := pmuoutage.TrainModel(trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newModelServer(t, m, nil)
	sys := waitShardReady(t, svc, "east")
	samples := outageTrace(t, sys, 1)

	t.Run("corrupt frame 400", func(t *testing.T) {
		status, body := postFrameBytes(t, ts.URL, "east", []byte{0xAA, 0x31, 0x00})
		if status != http.StatusBadRequest {
			t.Fatalf("status = %d: %s", status, body)
		}
		var e ErrorResponse
		if err := json.Unmarshal(body, &e); err != nil {
			t.Fatal(err)
		}
		if e.Retryable {
			t.Fatalf("corrupt frame marked retryable: %+v", e)
		}
	})
	t.Run("bad crc 400", func(t *testing.T) {
		f := wire.GetFrame()
		defer wire.PutFrame(f)
		if err := f.Pack(1, samples[0].Vm, samples[0].Va, nil); err != nil {
			t.Fatal(err)
		}
		enc, err := wire.AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		enc[len(enc)-1] ^= 0xFF
		if status, body := postFrameBytes(t, ts.URL, "east", enc); status != http.StatusBadRequest {
			t.Fatalf("status = %d: %s", status, body)
		}
	})
	t.Run("unknown shard 404", func(t *testing.T) {
		if status, body := postIngestFrame(t, ts.URL, "nope", 1, samples[0]); status != http.StatusNotFound {
			t.Fatalf("status = %d: %s", status, body)
		}
	})
	if snap := svc.Stats()["east"]; snap.FramesBinary != 0 {
		t.Fatalf("failed requests counted as admissions: %+v", snap)
	}
}

// maskIndices converts an assembled sample's missing mask into the
// facade's index form.
func maskIndices(mask []bool) []int {
	var idx []int
	for i, m := range mask {
		if m {
			idx = append(idx, i)
		}
	}
	return idx
}

// seqEvent pairs an event with the wire sequence that confirmed it.
type seqEvent struct {
	Seq   uint32           `json:"seq"`
	Event *pmuoutage.Event `json:"event"`
}

// TestFleetToDetectorE2E wires the whole streaming pipeline: a PMU/PDC
// fleet over real TCP feeds a collector whose sink is the service's
// StreamIngest adapter; every confirmed event must be byte-identical to
// replaying the exact assembled samples — missing measurements included
// — through the JSON /v1/ingest endpoint of a twin service booted from
// the same artifact.
func TestFleetToDetectorE2E(t *testing.T) {
	m, err := pmuoutage.TrainModel(trainOpts(3))
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	var streamed []seqEvent
	svcStream, _ := newModelServer(t, m, func(cfg *service.Config) {
		cfg.OnEvent = func(shard string, seq uint32, ev *pmuoutage.Event) {
			mu.Lock()
			streamed = append(streamed, seqEvent{Seq: seq, Event: ev})
			mu.Unlock()
		}
	})
	_, tsReplay := newModelServer(t, m, nil)
	sys := waitShardReady(t, svcStream, "east")
	n := sys.Buses()
	samples, err := sys.SimulateOutage([]int{sys.ValidLines()[0]}, 10)
	if err != nil {
		t.Fatal(err)
	}

	// Collector → service: record every assembled sample in emission
	// order, then forward it down the stream-ingest path. The tee and
	// the sink run on the same goroutine, so the recorded order is
	// exactly what the detector saw.
	col, err := comm.NewCollector(n, "127.0.0.1:0", 400*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	var order []comm.Assembled
	sink := svcStream.CollectorSink("east")
	col.SetSink(func(a comm.Assembled) {
		mu.Lock()
		order = append(order, a)
		mu.Unlock()
		sink(a)
	})

	// Two PDCs splitting the grid, one PMU per bus, lossless transport;
	// bus 0's PMU goes silent on every third step so the deadline sweep
	// emits those assemblies with a missing-data mask.
	var pdcs []*comm.PDC
	pmus := make([]*comm.PMU, n)
	clusters := [][]int{{0, 1, 2, 3, 4, 5, 6}, {7, 8, 9, 10, 11, 12, 13}}
	for ci, members := range clusters {
		pdc, err := comm.NewPDC(ci, "127.0.0.1:0", col.Addr(), 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		pdcs = append(pdcs, pdc)
		for _, bus := range members {
			pmu, err := comm.NewPMU(bus, pdc.Addr(), 0, int64(bus)+1)
			if err != nil {
				t.Fatal(err)
			}
			pmus[bus] = pmu
		}
	}
	defer func() {
		for _, p := range pmus {
			_ = p.Close()
		}
		for _, p := range pdcs {
			_ = p.Close()
		}
	}()

	for seq, s := range samples {
		for bus, pmu := range pmus {
			if bus == 0 && seq%3 == 0 {
				continue // inject missing data
			}
			if err := pmu.Send(seq, s.Vm[bus], s.Va[bus]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// Every step is eventually emitted: complete ones on assembly,
	// partial ones by the deadline sweep.
	deadline := time.Now().Add(30 * time.Second)
	for {
		mu.Lock()
		got := len(order)
		mu.Unlock()
		if got >= len(samples) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector emitted %d of %d steps", got, len(samples))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := col.Close(); err != nil {
		t.Fatal(err)
	}

	// Wait for the stream consumer to drain, then replay the recorded
	// assemblies — same order, same masks — over JSON HTTP.
	for {
		if svcStream.Stats()["east"].Ingests >= uint64(len(order)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("stream path scored %d of %d samples", svcStream.Stats()["east"].Ingests, len(order))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if shed := svcStream.Stats()["east"].Shed; shed != 0 {
		t.Fatalf("stream path shed %d frames; equivalence would be vacuous", shed)
	}

	var replayed []seqEvent
	sawMissing := false
	for _, a := range order {
		miss := maskIndices(a.Sample.Mask)
		if len(miss) > 0 {
			sawMissing = true
		}
		status, body := postIngestJSON(t, tsReplay.URL, "east", pmuoutage.Sample{Vm: a.Sample.Vm, Va: a.Sample.Va, Missing: miss})
		if status != http.StatusOK {
			t.Fatalf("replaying seq %d: HTTP %d: %s", a.Seq, status, body)
		}
		var out IngestResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Event != nil {
			replayed = append(replayed, seqEvent{Seq: uint32(a.Seq), Event: out.Event})
		}
	}
	if len(replayed) == 0 {
		t.Fatal("replay confirmed no events; the equivalence check is vacuous")
	}
	if !sawMissing {
		t.Fatal("no assembled sample carried a missing-data mask; injection failed")
	}

	wantJSON, err := json.Marshal(replayed)
	if err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	gotJSON, err := json.Marshal(streamed)
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotJSON, wantJSON) {
		t.Fatalf("stream events diverge from JSON replay:\nstream: %s\nreplay: %s", gotJSON, wantJSON)
	}
	if got := svcStream.Stats()["east"].FramesStream; got != uint64(len(order)) {
		t.Fatalf("stream admissions = %d, want %d", got, len(order))
	}
}

// BenchmarkIngestJSON and BenchmarkIngestBinary measure the two HTTP
// transports end to end against a parked monitor path (handler decode +
// synchronous scoring), for the ingress section of cmd/benchserve.
func BenchmarkIngestJSON(b *testing.B) {
	base, sample := benchServer(b)
	body, err := json.Marshal(IngestRequest{Shard: "east", Sample: sample})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(base+"/v1/ingest", "application/json", bytes.NewReader(body))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
}

func BenchmarkIngestBinary(b *testing.B) {
	base, sample := benchServer(b)
	f := wire.GetFrame()
	defer wire.PutFrame(f)
	if err := f.Pack(1, sample.Vm, sample.Va, nil); err != nil {
		b.Fatal(err)
	}
	enc, err := wire.AppendFrame(nil, f)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		resp, err := http.Post(base+"/v1/ingest?shard=east", FrameContentType, bytes.NewReader(enc))
		if err != nil {
			b.Fatal(err)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		_ = resp.Body.Close()
	}
}

func benchServer(b *testing.B) (string, pmuoutage.Sample) {
	b.Helper()
	m, err := pmuoutage.TrainModel(trainOpts(3))
	if err != nil {
		b.Fatal(err)
	}
	svc, err := service.New(context.Background(), service.Config{
		Shards:         []service.ShardSpec{{Name: "east", Model: m}},
		RestartBackoff: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(svc.Close)
	ts := httptest.NewServer(New(svc, 30*time.Second, nil).Routes())
	b.Cleanup(ts.Close)
	deadline := time.Now().Add(time.Minute)
	for !svc.Ready() {
		if time.Now().After(deadline) {
			b.Fatal("shard never became ready")
		}
		time.Sleep(time.Millisecond)
	}
	sys, err := svc.System("east")
	if err != nil {
		b.Fatal(err)
	}
	samples, err := sys.SimulateOutage([]int{sys.ValidLines()[0]}, 1)
	if err != nil {
		b.Fatal(err)
	}
	return ts.URL, samples[0]
}
