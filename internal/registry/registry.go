// Package registry is the content-addressed model-artifact registry:
// a store keyed by the artifact's hex SHA-256 fingerprint, an HTTP
// server exposing it with ETag/If-None-Match conditional pulls, and a
// fetch client that caches by fingerprint and verifies every artifact
// on receipt.
//
// The fingerprint IS the address: an artifact under a given key can
// never change, so a client that holds a fingerprint's bytes never
// needs to transfer them again — a conditional GET answers 304 Not
// Modified from the ETag alone. outaged hot-reloads shards from a
// registry URL through this package (httpserve.ModelFetcher), and the
// router's canary promotion rides the same pull path.
package registry

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"pmuoutage"
	"pmuoutage/api"
)

// Typed errors of the registry. Everything the package returns wraps
// one of these.
var (
	// ErrConfig reports an invalid store directory or client base URL.
	ErrConfig = errors.New("registry: invalid config")
	// ErrUnknownModel reports a fingerprint the store has no artifact for.
	ErrUnknownModel = errors.New("registry: unknown model")
	// ErrBadArtifact reports bytes that do not decode as a valid,
	// self-consistent model artifact.
	ErrBadArtifact = errors.New("registry: bad artifact")
	// ErrMismatch reports an artifact whose content fingerprint differs
	// from the address it was fetched under — a corrupt or lying server.
	ErrMismatch = errors.New("registry: fingerprint mismatch")
	// ErrFetch reports a failed pull: transport error or a non-OK
	// registry response.
	ErrFetch = errors.New("registry: fetch failed")
)

// artifactSuffix names persisted artifacts: <fingerprint>.model.json.
const artifactSuffix = ".model.json"

// entry is one stored artifact: its exact encoded bytes and metadata.
type entry struct {
	data []byte
	info api.ModelInfo
}

// Store is the content-addressed artifact store. In-memory always;
// with a directory configured, every published artifact is also
// persisted (atomically, via rename) and reloaded on restart. Safe for
// concurrent use.
type Store struct {
	dir string

	mu        sync.RWMutex
	artifacts map[string]entry
	order     []string // publish order, oldest first
}

// NewStore opens a store. dir == "" keeps artifacts in memory only;
// otherwise the directory is created if needed and every existing
// *.model.json artifact in it is loaded and verified.
func NewStore(dir string) (*Store, error) {
	s := &Store{dir: dir, artifacts: map[string]entry{}}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	paths, err := filepath.Glob(filepath.Join(dir, "*"+artifactSuffix))
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	sort.Strings(paths)
	for _, p := range paths {
		data, err := os.ReadFile(p)
		if err != nil {
			return nil, fmt.Errorf("%w: reading %s: %v", ErrConfig, p, err)
		}
		info, err := s.add(data, false)
		if err != nil {
			return nil, fmt.Errorf("%w (from %s)", err, p)
		}
		if want := strings.TrimSuffix(filepath.Base(p), artifactSuffix); want != info.Fingerprint {
			return nil, fmt.Errorf("%w: %s holds artifact %s", ErrMismatch, p, info.Fingerprint)
		}
	}
	return s, nil
}

// Publish encodes the model and stores it under its content
// fingerprint. Publishing the same content twice is a no-op.
func (s *Store) Publish(m *pmuoutage.Model) (api.ModelInfo, error) {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return api.ModelInfo{}, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	return s.PublishBytes(buf.Bytes())
}

// PublishBytes stores one encoded artifact after full verification
// (decode, format version, embedded fingerprint, structural checks).
func (s *Store) PublishBytes(data []byte) (api.ModelInfo, error) {
	return s.add(data, true)
}

// add verifies and stores the artifact; persist also writes it to the
// store directory (used for live publishes, skipped on reload).
func (s *Store) add(data []byte, persist bool) (api.ModelInfo, error) {
	m, err := pmuoutage.DecodeModel(bytes.NewReader(data))
	if err != nil {
		return api.ModelInfo{}, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	info := api.ModelInfo{
		Fingerprint:   m.Fingerprint(),
		Case:          m.Case(),
		FormatVersion: m.FormatVersion(),
		Bytes:         int64(len(data)),
	}
	dup := s.insert(data, info)
	if dup || !persist || s.dir == "" {
		return info, nil
	}
	path := filepath.Join(s.dir, info.Fingerprint+artifactSuffix)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return info, fmt.Errorf("%w: persisting artifact: %v", ErrConfig, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return info, fmt.Errorf("%w: persisting artifact: %v", ErrConfig, err)
	}
	return info, nil
}

// insert books the artifact into memory, reporting whether it was
// already present.
func (s *Store) insert(data []byte, info api.ModelInfo) (dup bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup = s.artifacts[info.Fingerprint]; !dup {
		s.artifacts[info.Fingerprint] = entry{data: append([]byte(nil), data...), info: info}
		s.order = append(s.order, info.Fingerprint)
	}
	return dup
}

// Get returns the exact bytes and metadata of one artifact.
func (s *Store) Get(fingerprint string) ([]byte, api.ModelInfo, error) {
	e, ok := s.lookup(fingerprint)
	if !ok {
		return nil, api.ModelInfo{}, fmt.Errorf("%w: %q", ErrUnknownModel, fingerprint)
	}
	return e.data, e.info, nil
}

func (s *Store) lookup(fingerprint string) (entry, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	e, ok := s.artifacts[fingerprint]
	return e, ok
}

// List returns every artifact's metadata in publish order, oldest
// first — the last entry is the newest model.
func (s *Store) List() api.ModelList {
	s.mu.RLock()
	defer s.mu.RUnlock()
	out := api.ModelList{Models: make([]api.ModelInfo, 0, len(s.order))}
	for _, fp := range s.order {
		out.Models = append(out.Models, s.artifacts[fp].info)
	}
	return out
}

// Len reports how many distinct artifacts the store holds.
func (s *Store) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.artifacts)
}
