package mat

import (
	"fmt"
	"math"
)

// QR holds a Householder QR factorization A = Q*R for an m-by-n matrix
// with m >= n. Q is m-by-n with orthonormal columns (thin form), R is
// n-by-n upper triangular.
type QR struct {
	q *Dense
	r *Dense
}

// FactorQR computes the thin QR factorization of a (rows >= cols).
func FactorQR(a *Dense) (*QR, error) {
	m, n := a.rows, a.cols
	if m < n {
		return nil, fmt.Errorf("mat: FactorQR requires rows >= cols, got %dx%d", m, n)
	}
	r := a.Clone()
	// Accumulate Householder reflectors, then form thin Q explicitly.
	vs := make([][]float64, 0, n)
	for k := 0; k < n; k++ {
		// Householder vector for column k below the diagonal.
		col := make([]float64, m-k)
		for i := k; i < m; i++ {
			col[i-k] = r.data[i*n+k]
		}
		alpha := Norm2(col)
		if alpha == 0 { //gridlint:ignore floatcmp exactly-zero column needs no Householder reflector
			vs = append(vs, nil)
			continue
		}
		if col[0] > 0 {
			alpha = -alpha
		}
		v := col
		v[0] -= alpha
		vn := Norm2(v)
		if vn == 0 { //gridlint:ignore floatcmp exactly-zero reflector after shift is a no-op
			vs = append(vs, nil)
			continue
		}
		for i := range v {
			v[i] /= vn
		}
		// Apply reflector to R: R[k:,k:] -= 2 v (v^T R[k:,k:]).
		for j := k; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i-k] * r.data[i*n+j]
			}
			s *= 2
			for i := k; i < m; i++ {
				r.data[i*n+j] -= s * v[i-k]
			}
		}
		vs = append(vs, v)
	}
	// Thin Q = H_0 H_1 ... H_{n-1} * [I_n; 0].
	q := NewDense(m, n)
	for j := 0; j < n; j++ {
		q.data[j*n+j] = 1
	}
	for k := n - 1; k >= 0; k-- {
		v := vs[k]
		if v == nil {
			continue
		}
		for j := 0; j < n; j++ {
			var s float64
			for i := k; i < m; i++ {
				s += v[i-k] * q.data[i*n+j]
			}
			s *= 2
			for i := k; i < m; i++ {
				q.data[i*n+j] -= s * v[i-k]
			}
		}
	}
	// Zero the numerical junk below R's diagonal and truncate to n-by-n.
	rr := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			rr.data[i*n+j] = r.data[i*n+j]
		}
	}
	return &QR{q: q, r: rr}, nil
}

// Q returns the thin orthonormal factor.
func (f *QR) Q() *Dense { return f.q }

// R returns the upper-triangular factor.
func (f *QR) R() *Dense { return f.r }

// SolveLeastSquares returns the minimum-residual solution of A*x ~= b
// using the factorization (A must have full column rank).
func (f *QR) SolveLeastSquares(b []float64) ([]float64, error) {
	m, n := f.q.rows, f.q.cols
	if len(b) != m {
		return nil, fmt.Errorf("mat: SolveLeastSquares rhs length %d != %d", len(b), m)
	}
	// y = Q^T b
	y := make([]float64, n)
	for j := 0; j < n; j++ {
		var s float64
		for i := 0; i < m; i++ {
			s += f.q.data[i*n+j] * b[i]
		}
		y[j] = s
	}
	// Back-substitute R x = y.
	x := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		s := y[i]
		for j := i + 1; j < n; j++ {
			s -= f.r.data[i*n+j] * x[j]
		}
		d := f.r.data[i*n+i]
		if math.Abs(d) < 1e-300 {
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// Orthonormalize returns an orthonormal basis for the column space of a,
// dropping columns that are (numerically) linearly dependent. The result
// has the same number of rows as a and at most min(rows, cols) columns.
func Orthonormalize(a *Dense) *Dense {
	return ExtendOrthonormal(nil, a)
}

// ExtendOrthonormal grows an orthonormal basis q by the columns of a —
// the rank-one update behind incremental subspace maintenance. Each new
// column is orthogonalised against q's columns and the directions
// accepted so far with a two-pass modified Gram–Schmidt, dropped when
// numerically dependent, and normalised otherwise. q's columns pass
// through verbatim (never re-orthogonalised or re-normalised), so a
// chain of extensions from an empty basis reproduces Orthonormalize of
// the concatenation bit for bit. q may be nil for the empty basis;
// neither argument is mutated.
func ExtendOrthonormal(q, a *Dense) *Dense {
	m := a.rows
	nq := 0
	if q != nil {
		if q.rows != m {
			panic(fmt.Sprintf("mat: ExtendOrthonormal basis has %d rows, columns have %d", q.rows, m))
		}
		nq = q.cols
	}
	cols := make([][]float64, 0, nq+a.cols)
	for j := 0; j < nq; j++ {
		cols = append(cols, q.Col(j))
	}
	for j := 0; j < a.cols; j++ {
		v := a.Col(j)
		// Modified Gram–Schmidt with reorthogonalization pass.
		for pass := 0; pass < 2; pass++ {
			for _, u := range cols {
				c := Dot(u, v)
				for i := range v {
					v[i] -= c * u[i]
				}
			}
		}
		n := Norm2(v)
		if n <= 1e-10*math.Sqrt(float64(m)) {
			continue // dependent column
		}
		for i := range v {
			v[i] /= n
		}
		cols = append(cols, v)
	}
	out := NewDense(m, len(cols))
	for j, v := range cols {
		out.SetCol(j, v)
	}
	return out
}
