package pmuoutage

import (
	"bytes"
	"errors"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"pmuoutage/internal/detect"
)

// detectModelVersion pins the artifact format version the facade writes.
const detectModelVersion = detect.ModelVersion

// trainTestModel trains a small deterministic model for artifact tests.
func trainTestModel(t *testing.T) *Model {
	t.Helper()
	m, err := TrainModel(Options{Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// TestFacadeModelRoundTrip is the facade-level golden guarantee: a
// system served from Decode(Encode(model)) behaves byte-identically to
// one served from the in-memory model — Detect reports, Evaluate
// metrics, and a re-encode of the decoded artifact all match exactly.
func TestFacadeModelRoundTrip(t *testing.T) {
	m := trainTestModel(t)

	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	artifact := append([]byte(nil), buf.Bytes()...)

	m2, err := DecodeModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fingerprint changed over the wire: %s vs %s", m2.Fingerprint(), m.Fingerprint())
	}
	if !reflect.DeepEqual(m2.Options(), m.Options()) {
		t.Fatalf("options changed over the wire: %+v vs %+v", m2.Options(), m.Options())
	}

	sys, err := NewSystemFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	sys2, err := NewSystemFromModel(m2)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range sys.ValidLines()[:4] {
		samples, err := sys.SimulateOutage([]int{e}, 1)
		if err != nil {
			t.Fatal(err)
		}
		want, err := sys.Detect(samples[0])
		if err != nil {
			t.Fatal(err)
		}
		got, err := sys2.Detect(samples[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("line %d: decoded model detects differently", e)
		}
	}
	ia, fa, err := sys.Evaluate(1)
	if err != nil {
		t.Fatal(err)
	}
	ia2, fa2, err := sys2.Evaluate(1)
	if err != nil {
		t.Fatal(err)
	}
	if ia != ia2 || fa != fa2 { //gridlint:ignore floatcmp byte-identity is the contract under test
		t.Fatalf("decoded model evaluates differently: IA %v vs %v, FA %v vs %v", ia2, ia, fa2, fa)
	}

	var buf2 bytes.Buffer
	if err := m2.Encode(&buf2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2.Bytes(), artifact) {
		t.Fatal("re-encoding a decoded model does not reproduce the artifact bytes")
	}
}

// TestNewSystemMatchesModelPath: the legacy constructor is a thin
// wrapper over TrainModel + NewSystemFromModel and must produce the
// same trained state.
func TestNewSystemMatchesModelPath(t *testing.T) {
	opts := Options{Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true}
	sys, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Model() == nil {
		t.Fatal("NewSystem must expose its model")
	}
	m, err := TrainModel(opts)
	if err != nil {
		t.Fatal(err)
	}
	if sys.Model().Fingerprint() != m.Fingerprint() {
		t.Fatalf("NewSystem model fingerprint %s differs from TrainModel %s",
			sys.Model().Fingerprint(), m.Fingerprint())
	}
	if m.Case() != "ieee14" || m.FormatVersion() != detectModelVersion {
		t.Fatalf("model metadata wrong: case %q version %d", m.Case(), m.FormatVersion())
	}
}

// TestDecodeModelErrors covers the facade error surface of the codec:
// corruption maps to ErrBadModel, foreign versions to ErrModelVersion,
// and an artifact without facade metadata is rejected.
func TestDecodeModelErrors(t *testing.T) {
	m := trainTestModel(t)
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	artifact := buf.String()

	t.Run("garbage", func(t *testing.T) {
		if _, err := DecodeModel(strings.NewReader("not a model")); !errors.Is(err, ErrBadModel) {
			t.Fatalf("got %v, want ErrBadModel", err)
		}
	})
	t.Run("truncated", func(t *testing.T) {
		if _, err := DecodeModel(strings.NewReader(artifact[:len(artifact)/2])); !errors.Is(err, ErrBadModel) {
			t.Fatalf("got %v, want ErrBadModel", err)
		}
	})
	t.Run("version mismatch", func(t *testing.T) {
		tampered := strings.Replace(artifact,
			fmt.Sprintf(`"format_version":%d`, detectModelVersion), `"format_version":99`, 1)
		if tampered == artifact {
			t.Fatal("tamper target not found")
		}
		if _, err := DecodeModel(strings.NewReader(tampered)); !errors.Is(err, ErrModelVersion) {
			t.Fatalf("got %v, want ErrModelVersion", err)
		}
	})
	t.Run("missing options", func(t *testing.T) {
		bare := *m.dm
		bare.Extra = nil
		if err := bare.Seal(); err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := bare.Encode(&b); err != nil {
			t.Fatal(err)
		}
		if _, err := DecodeModel(&b); !errors.Is(err, ErrBadModel) {
			t.Fatalf("got %v, want ErrBadModel", err)
		}
	})
	t.Run("nil model", func(t *testing.T) {
		if _, err := NewSystemFromModel(nil); !errors.Is(err, ErrBadModel) {
			t.Fatalf("got %v, want ErrBadModel", err)
		}
		var nilModel *Model
		if err := nilModel.Encode(&bytes.Buffer{}); !errors.Is(err, ErrBadModel) {
			t.Fatalf("got %v, want ErrBadModel", err)
		}
	})
}
