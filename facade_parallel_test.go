package pmuoutage

import (
	"context"
	"encoding/json"
	"reflect"
	"testing"
)

// fingerprintIgnoringWorkers seals a copy of the system's model with
// the Workers knob (runtime configuration, not learned state) zeroed in
// both the detector config and the embedded facade options, and returns
// the resulting content fingerprint. Equal fingerprints mean the
// learned state is byte-identical.
func fingerprintIgnoringWorkers(t *testing.T, s *System) string {
	t.Helper()
	dm := *s.model.dm
	dm.Config.Workers = 0
	opts := s.model.opts
	opts.Workers = 0
	extra, err := json.Marshal(modelMeta{Options: opts})
	if err != nil {
		t.Fatal(err)
	}
	dm.Extra = extra
	if err := dm.Seal(); err != nil {
		t.Fatal(err)
	}
	return dm.Fingerprint
}

// TestNewSystemWorkersEquivalence pins the facade determinism contract:
// a system trained with Workers=8 is indistinguishable from Workers=1.
func TestNewSystemWorkersEquivalence(t *testing.T) {
	base := Options{Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true}
	seq := base
	seq.Workers = 1
	s1, err := NewSystem(seq)
	if err != nil {
		t.Fatal(err)
	}
	parl := base
	parl.Workers = 8
	s8, err := NewSystem(parl)
	if err != nil {
		t.Fatal(err)
	}
	// The learned state is compared at the artifact level: with the
	// Workers knob (the only intentional difference) masked out, the two
	// models must fingerprint identically.
	if f1, f8 := fingerprintIgnoringWorkers(t, s1), fingerprintIgnoringWorkers(t, s8); f1 != f8 {
		t.Fatalf("model trained with Workers=8 fingerprints %s, Workers=1 %s", f8, f1)
	}
	for _, e := range s1.ValidLines() {
		samples, err := s1.SimulateOutage([]int{e}, 1)
		if err != nil {
			t.Fatal(err)
		}
		r1, err := s1.Detect(samples[0])
		if err != nil {
			t.Fatal(err)
		}
		r8, err := s8.Detect(samples[0])
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(r1, r8) {
			t.Fatalf("line %d: detector trained with Workers=8 reports differently", e)
		}
	}
}

func TestNewSystemContextCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSystemContext(ctx, Options{Case: "ieee14", TrainSteps: 12, UseDC: true}); err == nil {
		t.Fatal("cancelled context must abort NewSystemContext")
	}
}

func TestDetectBatchMatchesLoop(t *testing.T) {
	sys, err := NewSystem(Options{Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	var samples []Sample
	for _, e := range sys.ValidLines()[:4] {
		s, err := sys.SimulateOutage([]int{e}, 2)
		if err != nil {
			t.Fatal(err)
		}
		samples = append(samples, s...)
	}
	batch, err := sys.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != len(samples) {
		t.Fatalf("batch returned %d reports for %d samples", len(batch), len(samples))
	}
	for i, smp := range samples {
		want, err := sys.Detect(smp)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(batch[i], want) {
			t.Fatalf("sample %d: batch report differs from sequential Detect", i)
		}
	}
}

func TestDetectBatchBadSample(t *testing.T) {
	sys, err := NewSystem(Options{Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	good, err := sys.SimulateOutage(nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.DetectBatch([]Sample{good[0], {Vm: []float64{1}, Va: []float64{0}}}); err == nil {
		t.Fatal("batch with a malformed sample must fail")
	}
}
