package stream

import (
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/pmunet"
)

func buildMonitor(t *testing.T, cfg Config) (*Monitor, *dataset.Data) {
	t.Helper()
	g := cases.IEEE14()
	train, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 11, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := pmunet.Build(g, 3)
	det, err := detect.Train(train, nw, detect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	m, err := NewMonitor(det, cfg)
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Generate(g, dataset.GenConfig{Steps: 12, Seed: 500, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	return m, test
}

func TestNewMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(nil, Config{}); err == nil {
		t.Fatal("expected error for nil detector")
	}
}

func TestQuietOnNormalStream(t *testing.T) {
	m, test := buildMonitor(t, Config{Confirm: 2})
	for _, s := range test.Normal.Samples {
		ev, err := m.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("event on normal stream at seq %d", ev.Seq)
		}
	}
	if m.Seq() != test.Normal.T() {
		t.Fatalf("Seq = %d, want %d", m.Seq(), test.Normal.T())
	}
}

func TestEventAfterConfirmSamples(t *testing.T) {
	m, test := buildMonitor(t, Config{Confirm: 3, Cooldown: 5})
	e := test.ValidLines[0]
	// Normal lead-in, then the outage persists.
	var events []Event
	feed := append([]dataset.Sample{}, test.Normal.Samples[:4]...)
	feed = append(feed, test.OutageSet(e).Samples...)
	onset := 4
	for _, s := range feed {
		ev, err := m.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			events = append(events, *ev)
		}
	}
	if len(events) == 0 {
		t.Fatal("no event for persistent outage")
	}
	first := events[0]
	if first.FirstSeq != onset+1 {
		t.Errorf("FirstSeq = %d, want %d", first.FirstSeq, onset+1)
	}
	if first.Latency() != 3 {
		t.Errorf("Latency = %d, want 3 (Confirm)", first.Latency())
	}
	found := false
	for _, l := range first.Lines {
		if l == e {
			found = true
		}
	}
	if !found {
		t.Errorf("event lines %v missing true line %d", first.Lines, e)
	}
	// Cooldown must prevent an event per sample.
	if len(events) > 2 {
		t.Errorf("cooldown failed: %d events from one outage", len(events))
	}
}

func TestGlitchDoesNotTrigger(t *testing.T) {
	m, test := buildMonitor(t, Config{Confirm: 3})
	e := test.ValidLines[0]
	// A single outage-looking sample sandwiched in normal data: no event.
	feed := []dataset.Sample{
		test.Normal.Samples[0],
		test.OutageSet(e).Samples[0],
		test.Normal.Samples[1],
		test.Normal.Samples[2],
		test.OutageSet(e).Samples[1],
		test.Normal.Samples[3],
	}
	for i, s := range feed {
		ev, err := m.Ingest(s)
		if err != nil {
			t.Fatal(err)
		}
		if ev != nil {
			t.Fatalf("glitch at %d produced an event", i)
		}
	}
	if m.Pending() != 0 {
		t.Fatalf("Pending = %d after normal tail", m.Pending())
	}
}

func TestReset(t *testing.T) {
	m, test := buildMonitor(t, Config{Confirm: 5})
	e := test.ValidLines[0]
	for _, s := range test.OutageSet(e).Samples[:3] {
		if _, err := m.Ingest(s); err != nil {
			t.Fatal(err)
		}
	}
	if m.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", m.Pending())
	}
	m.Reset()
	if m.Pending() != 0 {
		t.Fatal("Reset did not clear streak")
	}
}

func TestRunChannelPlumbing(t *testing.T) {
	m, test := buildMonitor(t, Config{Confirm: 2, Cooldown: 100})
	e := test.ValidLines[0]
	in := make(chan dataset.Sample)
	out := make(chan Event, 16)
	errc := make(chan error, 1)
	go func() { errc <- m.Run(in, out) }()
	for _, s := range test.Normal.Samples[:2] {
		in <- s
	}
	for _, s := range test.OutageSet(e).Samples {
		in <- s
	}
	close(in)
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	var events []Event
	for ev := range out {
		events = append(events, ev)
	}
	if len(events) != 1 {
		t.Fatalf("events = %d, want 1", len(events))
	}
}

func TestIngestErrorPropagates(t *testing.T) {
	m, _ := buildMonitor(t, Config{})
	if _, err := m.Ingest(dataset.Sample{Vm: []float64{1}, Va: []float64{0}}); err == nil {
		t.Fatal("expected size-mismatch error")
	}
}
