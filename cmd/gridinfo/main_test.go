package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadGridByName(t *testing.T) {
	g, err := loadGrid("ieee14")
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 14 {
		t.Fatalf("buses = %d", g.N())
	}
}

func TestLoadGridUnknown(t *testing.T) {
	if _, err := loadGrid("definitely-not-a-case-or-file"); err == nil {
		t.Fatal("expected error")
	}
}

func TestExportAndReloadCDF(t *testing.T) {
	path := filepath.Join(t.TempDir(), "out.cdf")
	if err := export("ieee30", path); err != nil {
		t.Fatal(err)
	}
	g, err := loadGrid(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 30 || g.E() != 41 {
		t.Fatalf("reloaded %d buses / %d lines", g.N(), g.E())
	}
}

func TestRunSmoke(t *testing.T) {
	// run prints to stdout; just check it succeeds for a case name and a
	// CDF file, with and without -lines.
	if err := run("ieee14", 3, true); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "x.cdf")
	if err := export("ieee14", path); err != nil {
		t.Fatal(err)
	}
	if err := run(path, 0, false); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
}
