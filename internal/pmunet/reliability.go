package pmunet

import (
	"fmt"
	"math"
	"math/rand"
)

// Reliability describes the per-device availability of the measurement
// chain, following Eq. (14): each of the L PMUs and its PMU→PDC link
// fail independently; PDC→CC links are considered reliable.
//
// The per-device working probability is q = r_PMU * r_PMU→PDC, and the
// system-wide reliability level is r = q^L.
type Reliability struct {
	RPMU  float64 // availability of one PMU device
	RLink float64 // availability of its PMU→PDC link
}

// Validate checks both probabilities are in (0, 1].
func (r Reliability) Validate() error {
	if r.RPMU <= 0 || r.RPMU > 1 || r.RLink <= 0 || r.RLink > 1 {
		return fmt.Errorf("pmunet: reliability values must be in (0,1]: %+v", r)
	}
	return nil
}

// DeviceAvailability returns q = r_PMU * r_PMU→PDC.
func (r Reliability) DeviceAvailability() float64 { return r.RPMU * r.RLink }

// SystemReliability returns r = q^L per Eq. (14) for L devices.
func (r Reliability) SystemReliability(l int) float64 {
	return math.Pow(r.DeviceAvailability(), float64(l))
}

// FromSystemReliability inverts Eq. (14): given a target system-wide
// level r for L devices it returns the per-device availability q = r^(1/L)
// packed into a Reliability with the link folded into RPMU.
func FromSystemReliability(r float64, l int) (Reliability, error) {
	if r <= 0 || r > 1 || l <= 0 {
		return Reliability{}, fmt.Errorf("pmunet: invalid system reliability %v for L=%d", r, l)
	}
	q := math.Pow(r, 1/float64(l))
	return Reliability{RPMU: q, RLink: 1}, nil
}

// SampleMask draws one missing-data pattern from the Eq. (15)
// distribution: each device is independently down with probability 1-q.
// This is the Monte Carlo view of the 2^L pattern sum in Eq. (13).
func (nw *Network) SampleMask(rel Reliability, rng *rand.Rand) Mask {
	q := rel.DeviceAvailability()
	m := NoneMissing(nw.G.N())
	for i := range m {
		if rng.Float64() >= q {
			m[i] = true
		}
	}
	return m
}

// PatternProbability returns p_l(r) of Eq. (15) for a specific pattern:
// the product over devices of q (working) or 1-q (missing).
func PatternProbability(m Mask, rel Reliability) float64 {
	q := rel.DeviceAvailability()
	p := 1.0
	for _, missing := range m {
		if missing {
			p *= 1 - q
		} else {
			p *= q
		}
	}
	return p
}

// EnumeratePatterns calls fn for every one of the 2^L missing-data
// patterns together with its Eq. (15) probability. It is only feasible
// for small L (the IEEE 14-bus system already needs 2^14 = 16384 calls);
// larger systems should use SampleMask Monte Carlo instead. fn returning
// false stops the enumeration early.
func (nw *Network) EnumeratePatterns(rel Reliability, fn func(m Mask, p float64) bool) error {
	l := nw.G.N()
	if l > 22 {
		return fmt.Errorf("pmunet: refusing to enumerate 2^%d patterns; use SampleMask", l)
	}
	q := rel.DeviceAvailability()
	m := NoneMissing(l)
	var rec func(i int, p float64) bool
	rec = func(i int, p float64) bool {
		if i == l {
			return fn(m.Clone(), p)
		}
		m[i] = false
		if !rec(i+1, p*q) {
			return false
		}
		m[i] = true
		defer func() { m[i] = false }()
		return rec(i+1, p*(1-q))
	}
	rec(0, 1)
	return nil
}
