package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/recovery"
)

// Recovery runs the extension study motivated by §II/[8]: instead of
// designing for missing data, recover the missing entries first (from
// the low-dimensional structure of historical data) and then run the
// complete-data MLR classifier. The scenario is Fig. 7 (data missing at
// the outage location — the hardest pattern, because the historical
// basis is learned from normal operation while the missing block is
// exactly where the outage signature lives). Three rows per system:
// plain MLR, recover-then-MLR, and the recovery-free subspace method.
// The Row.X of the recovery row carries the mean recovery time per
// sample in microseconds — the latency cost the paper cautions about.
func Recovery(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	return rowJobs(ctx, cfg, len(cfg.Systems), func(ctx context.Context, si int) ([]Row, error) {
		system := cfg.Systems[si]
		b, err := cfg.prepare(ctx, system, true)
		if err != nil {
			return nil, err
		}
		// Historical basis from normal-operation training data (what a
		// control center has before the outage).
		basis, err := recovery.Basis(b.train.Normal.Matrix(dataset.Angle), 6)
		if err != nil {
			return nil, err
		}
		basisVm, err := recovery.Basis(b.train.Normal.Matrix(dataset.Magnitude), 6)
		if err != nil {
			return nil, err
		}

		var sub, plain, rec metrics.Accumulator
		var recTime time.Duration
		recN := 0
		for _, e := range b.test.ValidLines {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			truth := []grid.Line{e}
			mask := b.nw.OutageLocationMask(e)
			for _, s := range b.test.OutageSet(e).Samples {
				masked := s.WithMask(mask)

				r, derr := b.det.Detect(masked)
				if derr != nil {
					return nil, derr
				}
				sub.Add(truth, r.Lines)
				plain.Add(truth, b.clf.Classify(masked))

				// Recover-then-classify: impute the missing buses from
				// the normal-operation basis, then hand the "complete"
				// sample to MLR.
				start := time.Now()
				va, rerr := recovery.SubspaceImpute(basis, masked.Va, mask)
				if rerr != nil {
					return nil, rerr
				}
				vm, rerr := recovery.SubspaceImpute(basisVm, masked.Vm, mask)
				if rerr != nil {
					return nil, rerr
				}
				recTime += time.Since(start)
				recN++
				rec.Add(truth, b.clf.Classify(dataset.Sample{Vm: vm, Va: va}))
			}
		}
		meanMicros := float64(recTime.Microseconds()) / float64(recN)
		return []Row{
			{Figure: "recovery", System: system, Method: "subspace", IA: sub.IA(), FA: sub.FA(), N: sub.N()},
			{Figure: "recovery", System: system, Method: "mlr", IA: plain.IA(), FA: plain.FA(), N: plain.N()},
			{Figure: "recovery", System: system, Method: "mlr+rec", X: meanMicros, IA: rec.IA(), FA: rec.FA(), N: rec.N()},
		}, nil
	})
}

// MultiOutage runs the severe-event extension: two lines of the same
// node out simultaneously (the scenario the intersection subspaces
// S_i^∩ target, §IV-C/Fig. 3), evaluated with complete data and with the
// shared node's PMU dark. Scenario generation happens on the fly since
// the training data only ever contain single-line outages — the point of
// the node-based design is exactly that multi-line events at a node are
// detectable without having been trained as scenarios.
func MultiOutage(ctx context.Context, cfg Config) ([]Row, error) {
	cfg = cfg.withDefaults()
	return rowJobs(ctx, cfg, len(cfg.Systems), func(ctx context.Context, si int) ([]Row, error) {
		system := cfg.Systems[si]
		b, err := cfg.prepare(ctx, system, false)
		if err != nil {
			return nil, err
		}
		pairs := multiOutagePairs(b, 10)
		if len(pairs) == 0 {
			return nil, fmt.Errorf("experiments: no multi-outage pairs on %s", system)
		}
		var complete, dark metrics.Accumulator
		for _, p := range pairs {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			sc := dataset.Scenario{p.e1, p.e2}
			set, err := dataset.GenerateScenario(b.g, sc, dataset.GenConfig{
				Steps: cfg.TestSteps / 4, Seed: cfg.Seed + 31337 + int64(p.e1)*997 + int64(p.e2),
				UseDC: cfg.UseDC,
			})
			if err != nil {
				continue // islanding double outage: skip like §V-A
			}
			truth := []grid.Line{p.e1, p.e2}
			mask := pmunet.NoneMissing(b.g.N())
			mask[p.node] = true
			for _, s := range set.Samples {
				r, derr := b.det.Detect(s)
				if derr != nil {
					return nil, derr
				}
				complete.Add(truth, r.Lines)
				r, derr = b.det.Detect(s.WithMask(mask))
				if derr != nil {
					return nil, derr
				}
				dark.Add(truth, r.Lines)
			}
		}
		return []Row{
			{Figure: "multi", System: system, Method: "complete", IA: complete.IA(), FA: complete.FA(), N: complete.N()},
			{Figure: "multi", System: system, Method: "node-dark", IA: dark.IA(), FA: dark.FA(), N: dark.N()},
		}, nil
	})
}

type outagePair struct {
	node   int
	e1, e2 grid.Line
}

// multiOutagePairs picks up to limit (node, line-pair) combinations
// where both lines are valid single-outage cases of the node and their
// joint removal keeps the grid connected.
func multiOutagePairs(b *bundle, limit int) []outagePair {
	valid := map[grid.Line]bool{}
	for _, e := range b.test.ValidLines {
		valid[e] = true
	}
	rng := rand.New(rand.NewSource(424242))
	var pairs []outagePair
	for node := 0; node < b.g.N() && len(pairs) < limit; node++ {
		lines := b.g.LinesOf(node)
		var ok []grid.Line
		for _, e := range lines {
			if valid[e] {
				ok = append(ok, e)
			}
		}
		if len(ok) < 3 {
			continue // removing 2 of 2 would island the node
		}
		// One random pair per eligible node keeps coverage broad.
		i := rng.Intn(len(ok))
		j := rng.Intn(len(ok) - 1)
		if j >= i {
			j++
		}
		e1, e2 := ok[i], ok[j]
		if !b.g.WithoutLines([]grid.Line{e1, e2}).Connected() {
			continue
		}
		pairs = append(pairs, outagePair{node: node, e1: e1, e2: e2})
	}
	return pairs
}
