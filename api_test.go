package pmuoutage

import (
	"context"
	"encoding/json"
	"errors"
	"math"
	"reflect"
	"testing"
)

// TestTypedErrors pins the sentinel taxonomy: every facade validation
// failure matches its sentinel through errors.Is, and Detect and
// Monitor.Ingest produce the identical error for the identical defect
// (they share one validation path).
func TestTypedErrors(t *testing.T) {
	if _, err := NewSystem(Options{Case: "bogus"}); !errors.Is(err, ErrUnknownCase) {
		t.Fatalf("unknown case error = %v", err)
	}

	sys := newQuickSystem(t)
	mon, err := sys.NewMonitor(1, 0)
	if err != nil {
		t.Fatal(err)
	}
	bad := []Sample{
		{Vm: []float64{1}, Va: []float64{0}},
		{Vm: make([]float64, 14), Va: make([]float64, 14), Missing: []int{14}},
		{Vm: make([]float64, 14), Va: make([]float64, 14), Missing: []int{-1}},
	}
	for i, smp := range bad {
		_, detErr := sys.Detect(smp)
		if !errors.Is(detErr, ErrBadSample) {
			t.Fatalf("bad sample %d: Detect error = %v", i, detErr)
		}
		_, ingErr := mon.Ingest(smp)
		if !errors.Is(ingErr, ErrBadSample) {
			t.Fatalf("bad sample %d: Ingest error = %v", i, ingErr)
		}
		if detErr.Error() != ingErr.Error() {
			t.Fatalf("bad sample %d: Detect says %q, Ingest says %q — validation paths diverged",
				i, detErr, ingErr)
		}
	}

	if _, err := sys.SimulateOutage([]int{sys.Buses() * 10}, 1); !errors.Is(err, ErrBadLine) {
		t.Fatalf("bad line error = %v", err)
	}
	if _, err := sys.SimulateOutage([]int{-1}, 1); !errors.Is(err, ErrBadLine) {
		t.Fatalf("negative line error = %v", err)
	}
}

// TestContextVariants: a cancelled context aborts every context-first
// entry point, and the context-free wrappers behave identically to a
// background context.
func TestContextVariants(t *testing.T) {
	sys := newQuickSystem(t)
	line := sys.ValidLines()[0]
	samples, err := sys.SimulateOutage([]int{line}, 2)
	if err != nil {
		t.Fatal(err)
	}

	cancelled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := NewSystemContext(cancelled, Options{TrainSteps: 12, UseDC: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("NewSystemContext on cancelled ctx = %v", err)
	}
	if _, err := sys.DetectContext(cancelled, samples[0]); !errors.Is(err, context.Canceled) {
		t.Fatalf("DetectContext on cancelled ctx = %v", err)
	}
	if _, err := sys.DetectBatchContext(cancelled, samples); !errors.Is(err, context.Canceled) {
		t.Fatalf("DetectBatchContext on cancelled ctx = %v", err)
	}
	if _, err := sys.SimulateOutageContext(cancelled, []int{line}, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("SimulateOutageContext on cancelled ctx = %v", err)
	}
	if _, _, err := sys.EvaluateContext(cancelled, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("EvaluateContext on cancelled ctx = %v", err)
	}

	got, err := sys.DetectContext(context.Background(), samples[0])
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.Detect(samples[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("DetectContext(Background) differs from Detect")
	}
}

// TestEvaluateWorkerInvariance: EvaluateContext's per-line accumulators
// merge in fixed line order, so the scores are identical for every
// worker count.
func TestEvaluateWorkerInvariance(t *testing.T) {
	opts := Options{TrainSteps: 12, UseDC: true, Seed: 9}
	opts.Workers = 1
	seq, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Workers = 4
	par4, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	ia1, fa1, err := seq.Evaluate(2)
	if err != nil {
		t.Fatal(err)
	}
	ia4, fa4, err := par4.EvaluateContext(context.Background(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if ia1 != ia4 || fa1 != fa4 {
		t.Fatalf("Evaluate depends on worker count: (%v,%v) vs (%v,%v)", ia1, fa1, ia4, fa4)
	}
}

// TestDrawMissingBoundaries pins the reliability model at its edges:
// r = 1 never drops a measurement, r → 0⁺ drops everything, and values
// outside (0, 1] are rejected.
func TestDrawMissingBoundaries(t *testing.T) {
	sys := newQuickSystem(t)
	for seed := int64(1); seed <= 5; seed++ {
		missing, err := sys.DrawMissing(1, seed)
		if err != nil {
			t.Fatal(err)
		}
		if len(missing) != 0 {
			t.Fatalf("r=1 seed=%d drew missing buses %v", seed, missing)
		}
	}
	missing, err := sys.DrawMissing(1e-300, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(missing) != sys.Buses() {
		t.Fatalf("r→0⁺ drew %d of %d buses missing", len(missing), sys.Buses())
	}
	for i := 1; i < len(missing); i++ {
		if missing[i] <= missing[i-1] {
			t.Fatalf("missing indices not strictly increasing: %v", missing)
		}
	}
	for _, r := range []float64{0, -0.5, 1.5, math.NaN()} {
		if _, err := sys.DrawMissing(r, 1); err == nil {
			t.Fatalf("reliability %v accepted", r)
		}
	}
	// Deterministic in seed.
	a, err := sys.DrawMissing(0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	b, err := sys.DrawMissing(0.5, 42)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("DrawMissing not deterministic: %v vs %v", a, b)
	}
}

// TestWithMissingDedup: WithMissing preserves existing indices in
// first-appearance order, collapses duplicates, and leaves the receiver
// untouched.
func TestWithMissingDedup(t *testing.T) {
	base := Sample{Vm: []float64{1, 2}, Va: []float64{3, 4}, Missing: []int{5, 2}}
	got := base.WithMissing(2, 7, 5, 7, 0)
	want := []int{5, 2, 7, 0}
	if !reflect.DeepEqual(got.Missing, want) {
		t.Fatalf("Missing = %v, want %v", got.Missing, want)
	}
	if !reflect.DeepEqual(base.Missing, []int{5, 2}) {
		t.Fatalf("receiver mutated: %v", base.Missing)
	}
	if &got.Vm[0] != &base.Vm[0] || &got.Va[0] != &base.Va[0] {
		t.Fatal("WithMissing must share the measurement slices, not copy them")
	}
	if out := (Sample{}).WithMissing(); out.Missing != nil {
		t.Fatalf("no-op WithMissing produced %v", out.Missing)
	}
}

// TestScoresJSONRoundTrip: non-finite node scores survive the JSON wire
// format losslessly (plain JSON has no Inf/NaN).
func TestScoresJSONRoundTrip(t *testing.T) {
	in := Scores{0.5, math.Inf(1), math.Inf(-1), math.NaN(), -3.25}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out Scores
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if len(out) != len(in) {
		t.Fatalf("round trip changed length: %v", out)
	}
	for i := range in {
		same := in[i] == out[i] || (math.IsNaN(in[i]) && math.IsNaN(out[i]))
		if !same {
			t.Fatalf("score %d: %v -> %v", i, in[i], out[i])
		}
	}
	for _, bad := range []string{`["+Infinity"]`, `[true]`, `{"x":1}`} {
		var s Scores
		if err := json.Unmarshal([]byte(bad), &s); err == nil {
			t.Fatalf("accepted %s", bad)
		}
	}
	if err := json.Unmarshal([]byte(`["what"]`), new(Scores)); !errors.Is(err, ErrBadScores) {
		t.Fatalf("unknown string error = %v", err)
	}
}
