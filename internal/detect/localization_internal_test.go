package detect

import (
	"sort"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/pmunet"
)

// TestLineSignatureDiscrimination asserts the core mechanism the decoder
// relies on: with the outage endpoints masked, the true line's subspace
// still ranks among the closest few when scored over all available rows.
func TestLineSignatureDiscrimination(t *testing.T) {
	g := cases.IEEE14()
	train, err := dataset.Generate(g, dataset.GenConfig{Steps: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := pmunet.Build(g, 3)
	det, err := Train(train, nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Generate(g, dataset.GenConfig{Steps: 5, Seed: 999})
	if err != nil {
		t.Fatal(err)
	}
	top1, top3, n := 0, 0, 0
	for _, e := range test.ValidLines {
		for _, smp := range test.OutageSet(e).Samples {
			s := smp.WithMask(nw.OutageLocationMask(e))
			dev, featMask := det.deviation(s)
			var avail []int
			for i := range dev {
				if !featMask[i] {
					avail = append(avail, i)
				}
			}
			r0, _, _, err := det.normalResidual(dev, avail)
			if err != nil {
				t.Fatal(err)
			}
			type ls struct {
				e grid.Line
				p float64
			}
			var scores []ls
			for _, f := range det.validLines {
				p, err := det.subProx(det.lineSubs[f], r0, avail)
				if err != nil {
					t.Fatal(err)
				}
				scores = append(scores, ls{f, p})
			}
			sort.Slice(scores, func(a, b int) bool { return scores[a].p < scores[b].p })
			n++
			if scores[0].e == e {
				top1++
			}
			for _, sc := range scores[:3] {
				if sc.e == e {
					top3++
				}
			}
		}
	}
	t1 := float64(top1) / float64(n)
	t3 := float64(top3) / float64(n)
	t.Logf("masked-endpoint line discrimination: top1=%.3f top3=%.3f (n=%d)", t1, t3, n)
	if t1 < 0.6 {
		t.Errorf("top-1 discrimination %.3f, want >= 0.6", t1)
	}
	if t3 < 0.75 {
		t.Errorf("top-3 discrimination %.3f, want >= 0.75", t3)
	}
}

// TestScoredNodesMatchOutageLocation asserts the proximity rule's input:
// for a complete-data outage sample, the two endpoint nodes carry the
// two lowest scaled proximities most of the time.
func TestScoredNodesMatchOutageLocation(t *testing.T) {
	g := cases.IEEE14()
	train, err := dataset.Generate(g, dataset.GenConfig{Steps: 30, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	nw, _ := pmunet.Build(g, 3)
	det, err := Train(train, nw, Config{})
	if err != nil {
		t.Fatal(err)
	}
	test, err := dataset.Generate(g, dataset.GenConfig{Steps: 4, Seed: 321})
	if err != nil {
		t.Fatal(err)
	}
	good, n := 0, 0
	for _, e := range test.ValidLines {
		a, b := g.Endpoints(e)
		for _, s := range test.OutageSet(e).Samples {
			r, err := det.Detect(s)
			if err != nil {
				t.Fatal(err)
			}
			if !r.Outage {
				continue
			}
			order := make([]int, len(r.NodeScores))
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(x, y int) bool { return r.NodeScores[order[x]] < r.NodeScores[order[y]] })
			n++
			hits := 0
			for _, top := range order[:3] {
				if top == a || top == b {
					hits++
				}
			}
			if hits >= 1 {
				good++
			}
		}
	}
	frac := float64(good) / float64(n)
	t.Logf("endpoint in top-3 node scores: %.3f (n=%d)", frac, n)
	if frac < 0.85 {
		t.Errorf("endpoint ranking %.3f, want >= 0.85", frac)
	}
}
