package detect

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"sort"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/ellipse"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/mat"
	"pmuoutage/internal/par"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/subspace"
)

// PatchVersion is the current patch artifact format version. Like the
// model format, it has no migration story: foreign versions are
// rejected outright.
const PatchVersion = 1

// Sentinel errors of the patch codec and applier.
var (
	// ErrPatchVersion reports a patch artifact of a foreign format
	// version.
	ErrPatchVersion = errors.New("detect: patch format version mismatch")
	// ErrPatchCorrupt reports a patch that fails to parse, fails its
	// fingerprint check, or is structurally inconsistent with the model
	// it is applied to.
	ErrPatchCorrupt = errors.New("detect: corrupt patch artifact")
	// ErrPatchBase reports a patch applied to a model other than the one
	// it was trained against.
	ErrPatchBase = errors.New("detect: patch base mismatch")
)

// Patch is the incremental counterpart of Model: the delta produced by
// re-learning a handful of lines' signatures from fresh outage data,
// sealed against the exact base model it was computed from. A patch
// carries only what those lines touch — their refreshed signature
// bases and Eq. (5) capability rows, the union/intersection bases and
// Eq. (6) capability rows of their endpoint nodes, and the rebuilt
// detection groups — so its size and the work of producing it scale
// with the lines refreshed, not the grid.
//
// Both ends of the application are pinned by fingerprint: Apply
// refuses a base whose fingerprint differs from BaseFingerprint, and
// verifies the patched model hashes to ResultFingerprint before
// returning it. A patched model is therefore indistinguishable from
// the full artifact the trainer would have produced — same codec, same
// validation, same fingerprint discipline.
type Patch struct {
	// FormatVersion is PatchVersion at encode time.
	FormatVersion int `json:"format_version"`
	// Fingerprint is the hex SHA-256 over the canonical encoding of the
	// patch with this field empty (the patch's own registry identity).
	Fingerprint string `json:"fingerprint,omitempty"`
	// BaseFingerprint is the fingerprint of the exact model this patch
	// was trained against; Apply refuses any other base.
	BaseFingerprint string `json:"base_fingerprint"`
	// ResultFingerprint is the fingerprint the patched model must hash
	// to — the post-apply integrity check.
	ResultFingerprint string `json:"result_fingerprint"`

	// Lines are the refreshed lines, in the base model's ValidLines
	// order; LineBases and CaseRows align with it.
	Lines     []grid.Line `json:"lines"`
	LineBases []Basis     `json:"line_bases"`
	// CaseRows are the refreshed Eq. (5) capability rows.
	CaseRows [][]float64 `json:"case_rows"`

	// Nodes are the endpoints of Lines (sorted, unique); UnionBases,
	// InterBases, and PRows align with it.
	Nodes      []int       `json:"nodes"`
	UnionBases []Basis     `json:"union_bases"`
	InterBases []Basis     `json:"inter_bases"`
	PRows      [][]float64 `json:"p_rows"`

	// Groups are the detection groups rebuilt from the patched
	// capability table (group membership depends on every node's rows,
	// so the full set rides along; it is small).
	Groups []Group `json:"groups"`
}

// TrainPatch re-learns the signature subspaces of the refreshed lines
// from fresh outage data and derives everything downstream of them,
// against the frozen remainder of the base model. normal must be the
// base model's normal-operation training set (the patch reuses the
// base mean, S⁰, and ellipses, so capability rows stay commensurable);
// refreshed maps each line to its new outage sample set. Every
// refreshed line must already be a valid line of the base model.
//
// The per-line SVD work — the expensive part of training — runs only
// for the refreshed lines; node subspaces are rebuilt by rank-one
// Extend updates over the incident line bases. Applying the returned
// patch to base reproduces, fingerprint for fingerprint, the model a
// full retrain on the swapped dataset would produce.
func TrainPatch(ctx context.Context, base *Model, normal *dataset.Set, refreshed map[grid.Line]*dataset.Set) (*Patch, error) {
	if base.FormatVersion != ModelVersion {
		return nil, fmt.Errorf("%w: base has format version %d, this build patches %d",
			ErrModelVersion, base.FormatVersion, ModelVersion)
	}
	if err := base.validate(); err != nil {
		return nil, err
	}
	cfg := base.Config
	if cfg.Groups.Mix < 1 {
		return nil, fmt.Errorf("detect: cannot patch a model with PCA-mixed detection groups (mix %g): the pooled loadings need every line's outage data",
			cfg.Groups.Mix)
	}
	if len(refreshed) == 0 {
		return nil, fmt.Errorf("detect: patch refreshes no lines")
	}
	n := base.Grid.N()
	if normal == nil || normal.T() < 2 {
		return nil, fmt.Errorf("detect: patch needs the base normal set (at least 2 samples)")
	}
	pos := make(map[grid.Line]int, len(base.ValidLines))
	for k, e := range base.ValidLines {
		pos[e] = k
	}
	p := &Patch{FormatVersion: PatchVersion, BaseFingerprint: base.Fingerprint}
	for _, e := range base.ValidLines { // ValidLines order, like Train
		if refreshed[e] != nil {
			p.Lines = append(p.Lines, e)
		}
	}
	if len(p.Lines) != len(refreshed) {
		for e := range refreshed {
			if _, ok := pos[e]; !ok {
				return nil, fmt.Errorf("detect: line %d is not a valid line of the base model", e)
			}
			if refreshed[e] == nil {
				return nil, fmt.Errorf("detect: refreshed set for line %d is nil", e)
			}
		}
	}
	for _, e := range p.Lines {
		set := refreshed[e]
		if set.T() == 0 || set.Samples[0].N() != n {
			return nil, fmt.Errorf("detect: refreshed set for line %d is empty or sized for the wrong grid", e)
		}
	}

	mean := base.Mean
	normalSub := base.NormalBasis.subspace()
	ells := make([]*ellipse.Ellipse, n)
	for i := range ells {
		ells[i] = &ellipse.Ellipse{C: base.Ellipses[i].C, A: base.Ellipses[i].A}
	}

	// Refreshed per-line signatures (Eq. 2) and capability rows (Eq. 5):
	// the same operations Train runs, restricted to the touched lines.
	type lineDelta struct {
		sub     *subspace.Subspace
		caseRow []float64
	}
	deltas, err := par.Map(ctx, cfg.Workers, len(p.Lines), func(_ context.Context, j int) (lineDelta, error) {
		e := p.Lines[j]
		set := refreshed[e]
		x := deviationMatrixOf(set, mean, cfg.Channel)
		s, err := subspace.Learn(normalSub.ProjectOut(x), cfg.LineRank)
		if err != nil {
			return lineDelta{}, fmt.Errorf("detect: subspace for line %d: %w", e, err)
		}
		row := make([]float64, n)
		for k := 0; k < n; k++ {
			row[k] = CaseCapability(ells[k], set, normal, k)
		}
		return lineDelta{sub: s, caseRow: row}, nil
	})
	if err != nil {
		return nil, err
	}
	newSubs := map[grid.Line]*subspace.Subspace{}
	newCase := map[grid.Line][]float64{}
	for j, e := range p.Lines {
		p.LineBases = append(p.LineBases, basisOf(deltas[j].sub))
		p.CaseRows = append(p.CaseRows, deltas[j].caseRow)
		newSubs[e] = deltas[j].sub
		newCase[e] = deltas[j].caseRow
	}

	// Touched nodes: endpoints of the refreshed lines.
	seen := map[int]bool{}
	for _, e := range p.Lines {
		a, b := base.Grid.Endpoints(e)
		for _, i := range []int{a, b} {
			if !seen[i] {
				seen[i] = true
				p.Nodes = append(p.Nodes, i)
			}
		}
	}
	sort.Ints(p.Nodes)

	lineSub := func(e grid.Line) *subspace.Subspace {
		if s, ok := newSubs[e]; ok {
			return s
		}
		return base.LineBases[pos[e]].subspace()
	}
	caseRow := func(e grid.Line) []float64 {
		if r, ok := newCase[e]; ok {
			return r
		}
		return base.CaseCapability[pos[e]]
	}
	type nodeDelta struct {
		union, inter Basis
		pRow         []float64
	}
	nodes, err := par.Map(ctx, cfg.Workers, len(p.Nodes), func(_ context.Context, j int) (nodeDelta, error) {
		i := p.Nodes[j]
		incident := base.NodeLines[i]
		subs := make([]*subspace.Subspace, len(incident))
		for k, e := range incident {
			subs[k] = lineSub(e)
		}
		var nd nodeDelta
		if len(subs) == 0 {
			z := basisOf(subspace.Zero(len(mean)))
			nd.union, nd.inter = z, z
		} else {
			u, err := subspace.Union(subs...)
			if err != nil {
				return nd, err
			}
			in, err := subspace.Intersection(cfg.InterShare, subs...)
			if err != nil {
				return nd, err
			}
			nd.union, nd.inter = basisOf(u), basisOf(in)
		}
		// Eq. (6)-(7) union row over the node's incident cases, with the
		// refreshed Eq. (5) rows swapped in — the same loop
		// LearnCapabilities runs.
		nd.pRow = make([]float64, n)
		if len(incident) > 0 {
			ps := make([]float64, len(incident))
			for k := 0; k < n; k++ {
				for c, e := range incident {
					ps[c] = caseRow(e)[k]
				}
				nd.pRow[k] = UnionProb(ps)
			}
		}
		return nd, nil
	})
	if err != nil {
		return nil, err
	}
	for _, nd := range nodes {
		p.UnionBases = append(p.UnionBases, nd.union)
		p.InterBases = append(p.InterBases, nd.inter)
		p.PRows = append(p.PRows, nd.pRow)
	}

	// Rebuild the detection groups from the patched capability table:
	// membership ranks nodes across the whole grid, so the full (small)
	// group set rides in the patch.
	nw, err := pmunet.FromClusters(base.Grid, base.Clusters)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrModelCorrupt, err)
	}
	caps := &Capabilities{Ellipses: ells, P: patchedMatrix(base.Capability, p.Nodes, p.PRows)}
	gcfg := cfg.Groups
	gcfg.Channel = cfg.Channel
	maxDeg := 0
	for i := 0; i < n; i++ {
		if deg := base.Grid.Degree(i); deg > maxDeg {
			maxDeg = deg
		}
	}
	minSize := maxDeg*cfg.LineRank + normalSub.Rank() + 4
	if minSize > n {
		minSize = n
	}
	if gcfg.Size < minSize {
		gcfg.Size = minSize
	}
	groups, err := BuildGroups(nw, caps, nil, gcfg)
	if err != nil {
		return nil, err
	}
	p.Groups = groups

	// Seal both ends: the patch's own fingerprint and the fingerprint
	// the patched model must land on.
	result, err := p.patchedModel(base)
	if err != nil {
		return nil, err
	}
	p.ResultFingerprint = result.Fingerprint
	fp, err := p.computeFingerprint()
	if err != nil {
		return nil, err
	}
	p.Fingerprint = fp
	return p, nil
}

// deviationMatrixOf centers a sample set's channel vectors on the given
// mean — Train's deviationMatrix, detached from the Detector.
func deviationMatrixOf(set *dataset.Set, mean []float64, ch dataset.Channel) *mat.Dense {
	x := mat.NewDense(len(mean), set.T())
	for t, s := range set.Samples {
		v := s.Vector(ch)
		for i := range v {
			v[i] -= mean[i]
		}
		x.SetCol(t, v)
	}
	return x
}

// patchedMatrix returns rows with the given replacements applied; the
// untouched rows are shared with the base.
func patchedMatrix(baseRows [][]float64, idx []int, repl [][]float64) [][]float64 {
	out := append([][]float64(nil), baseRows...)
	for j, i := range idx {
		out[i] = repl[j]
	}
	return out
}

// Apply produces the patched model: the base with the refreshed line
// signatures, node subspaces, capability rows, and detection groups
// swapped in, re-sealed and verified against ResultFingerprint. The
// base is not mutated; untouched payload is shared between the two
// models (both are immutable). A base whose fingerprint differs from
// BaseFingerprint fails with ErrPatchBase.
func (p *Patch) Apply(base *Model) (*Model, error) {
	if p.FormatVersion != PatchVersion {
		return nil, fmt.Errorf("%w: patch has format version %d, this build applies %d",
			ErrPatchVersion, p.FormatVersion, PatchVersion)
	}
	if base.FormatVersion != ModelVersion {
		return nil, fmt.Errorf("%w: base has format version %d, this build patches %d",
			ErrModelVersion, base.FormatVersion, ModelVersion)
	}
	if base.Fingerprint != p.BaseFingerprint {
		return nil, fmt.Errorf("%w: patch was trained against %.12s…, base is %.12s…",
			ErrPatchBase, p.BaseFingerprint, base.Fingerprint)
	}
	m, err := p.patchedModel(base)
	if err != nil {
		return nil, err
	}
	if m.Fingerprint != p.ResultFingerprint {
		return nil, fmt.Errorf("%w: patched model hashes to %.12s…, patch expects %.12s…",
			ErrPatchCorrupt, m.Fingerprint, p.ResultFingerprint)
	}
	return m, nil
}

// patchedModel splices the patch into a copy of base, revalidates, and
// re-seals. Shared by TrainPatch (to stamp ResultFingerprint) and
// Apply (to produce and verify the result).
func (p *Patch) patchedModel(base *Model) (*Model, error) {
	if err := p.checkShape(base); err != nil {
		return nil, err
	}
	pos := make(map[grid.Line]int, len(base.ValidLines))
	for k, e := range base.ValidLines {
		pos[e] = k
	}
	m := *base
	m.LineBases = append([]Basis(nil), base.LineBases...)
	m.CaseCapability = append([][]float64(nil), base.CaseCapability...)
	for j, e := range p.Lines {
		k, ok := pos[e]
		if !ok {
			return nil, fmt.Errorf("%w: patch refreshes line %d, not a valid line of the base", ErrPatchCorrupt, e)
		}
		m.LineBases[k] = p.LineBases[j]
		m.CaseCapability[k] = p.CaseRows[j]
	}
	m.UnionBases = append([]Basis(nil), base.UnionBases...)
	m.InterBases = append([]Basis(nil), base.InterBases...)
	m.Capability = append([][]float64(nil), base.Capability...)
	n := base.Grid.N()
	for j, i := range p.Nodes {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("%w: patch touches node %d, grid has %d buses", ErrPatchCorrupt, i, n)
		}
		m.UnionBases[i] = p.UnionBases[j]
		m.InterBases[i] = p.InterBases[j]
		m.Capability[i] = p.PRows[j]
	}
	m.Groups = p.Groups
	if err := m.validate(); err != nil {
		return nil, err
	}
	if err := m.Seal(); err != nil {
		return nil, err
	}
	return &m, nil
}

// checkShape verifies the patch's internal alignment against the base
// dimensions before any splicing.
func (p *Patch) checkShape(base *Model) error {
	bad := func(format string, args ...any) error {
		return fmt.Errorf("%w: %s", ErrPatchCorrupt, fmt.Sprintf(format, args...))
	}
	if len(p.LineBases) != len(p.Lines) || len(p.CaseRows) != len(p.Lines) {
		return bad("%d lines with %d bases and %d case rows", len(p.Lines), len(p.LineBases), len(p.CaseRows))
	}
	if len(p.UnionBases) != len(p.Nodes) || len(p.InterBases) != len(p.Nodes) || len(p.PRows) != len(p.Nodes) {
		return bad("%d nodes with %d/%d bases and %d capability rows",
			len(p.Nodes), len(p.UnionBases), len(p.InterBases), len(p.PRows))
	}
	n := base.Grid.N()
	for j := range p.CaseRows {
		if len(p.CaseRows[j]) != n {
			return bad("case row %d has %d entries, grid has %d buses", j, len(p.CaseRows[j]), n)
		}
	}
	for j := range p.PRows {
		if len(p.PRows[j]) != n {
			return bad("capability row %d has %d entries, grid has %d buses", j, len(p.PRows[j]), n)
		}
	}
	if len(p.Groups) != len(base.Clusters) {
		return bad("%d detection groups for %d clusters", len(p.Groups), len(base.Clusters))
	}
	return nil
}

// computeFingerprint hashes the canonical encoding with the
// fingerprint field blanked, mirroring the model codec.
func (p *Patch) computeFingerprint() (string, error) {
	c := *p
	c.Fingerprint = ""
	b, err := json.Marshal(&c)
	if err != nil {
		return "", fmt.Errorf("%w: unencodable content: %v", ErrPatchCorrupt, err)
	}
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:]), nil
}

// Encode writes the patch artifact to w, fingerprint recomputed from
// content so the written artifact is always self-consistent.
func (p *Patch) Encode(w io.Writer) error {
	if p.FormatVersion != PatchVersion {
		return fmt.Errorf("%w: cannot encode version %d, this build writes %d",
			ErrPatchVersion, p.FormatVersion, PatchVersion)
	}
	fp, err := p.computeFingerprint()
	if err != nil {
		return err
	}
	c := *p
	c.Fingerprint = fp
	if err := json.NewEncoder(w).Encode(&c); err != nil {
		return fmt.Errorf("detect: encode patch: %w", err)
	}
	return nil
}

// DecodePatch reads one patch artifact from r, rejecting foreign
// format versions with ErrPatchVersion and unparseable or
// fingerprint-mismatched content with ErrPatchCorrupt. Structural
// validation against the base model happens in Apply.
func DecodePatch(r io.Reader) (*Patch, error) {
	var p Patch
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrPatchCorrupt, err)
	}
	if p.FormatVersion != PatchVersion {
		return nil, fmt.Errorf("%w: artifact has format version %d, this build reads %d",
			ErrPatchVersion, p.FormatVersion, PatchVersion)
	}
	fp, err := p.computeFingerprint()
	if err != nil {
		return nil, err
	}
	if p.Fingerprint != fp {
		return nil, fmt.Errorf("%w: fingerprint mismatch: artifact says %q, content hashes to %q",
			ErrPatchCorrupt, p.Fingerprint, fp)
	}
	return &p, nil
}
