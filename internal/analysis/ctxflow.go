package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow enforces the cancellation contract of the parallel pipeline
// (see DESIGN.md "Deterministic parallel execution"): any exported
// function that fans work out — by launching goroutines or by calling
// into the internal/par worker pool — must accept a context.Context so
// callers can bound the work. It also flags channels allocated with a
// non-constant buffer capacity: queue bounds must be fixed at build
// time, or a config value silently becomes an unbounded (or zero,
// deadlocking) buffer.
//
// Thin compatibility wrappers that merely delegate to their Context
// variant don't trip the check, because the goroutines live in the
// callee, which takes a context.
var CtxFlow = &Analyzer{
	Name: "ctxflow",
	Doc:  "flag exported fan-out functions without a context.Context and channels with non-constant buffer capacity",
	Run:  runCtxFlow,
}

func runCtxFlow(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if fd.Name.IsExported() && !hasContextParam(pass, fd) {
				if site, kind := fanOutSite(pass, fd.Body); kind != "" {
					pass.Report(site.Pos(), "exported function %s %s but has no context.Context parameter; callers cannot bound or cancel the work", fd.Name.Name, kind)
				}
			}
		}
		// Non-constant channel buffers are a problem anywhere, exported
		// or not: the capacity must be auditable at the make site.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			id, ok := ast.Unparen(call.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				return true
			}
			if _, isBuiltin := pass.Info.Uses[id].(*types.Builtin); !isBuiltin {
				return true
			}
			if _, isChan := pass.Info.TypeOf(call.Args[0]).Underlying().(*types.Chan); !isChan {
				return true
			}
			if pass.Info.Types[call.Args[1]].Value == nil {
				pass.Report(call.Pos(), "channel buffer capacity is not a compile-time constant; bound the queue with a constant so backpressure is auditable")
			}
			return true
		})
	}
	return nil
}

// hasContextParam reports whether fd declares a context.Context
// parameter (receiver excluded — cancellation travels per call, not per
// object).
func hasContextParam(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		if isContext(pass.Info.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// fanOutSite scans a function body for the first goroutine launch or
// call into the internal/par worker pool. Function literals nested in
// the body count too: they share the enclosing scope, so their fan-out
// is the exported function's fan-out.
func fanOutSite(pass *Pass, body ast.Node) (site ast.Node, kind string) {
	var found ast.Node
	var what string
	ast.Inspect(body, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.GoStmt:
			found, what = n, "launches goroutines"
		case *ast.CallExpr:
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
				if obj, ok := pass.Info.Uses[sel.Sel].(*types.Func); ok && isParPackage(obj.Pkg()) {
					found, what = n, "fans out over the par worker pool"
				}
			}
		}
		return found == nil
	})
	if found == nil {
		return nil, ""
	}
	return found, what
}

// isParPackage matches the repo's worker-pool package by its import
// path tail, so the check works under any module name (golden tests
// load fixtures with Module unset).
func isParPackage(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "internal/par" || strings.HasSuffix(pkg.Path(), "/internal/par"))
}
