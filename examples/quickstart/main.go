// Quickstart: build a detection system on the IEEE 14-bus grid, simulate
// a line outage, and localise it from one PMU sample — using the
// context-first API (every operation below stops cleanly if ctx ends).
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"pmuoutage"
)

func main() {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	// NewSystemContext builds the grid, simulates a day of training data
	// with Ornstein-Uhlenbeck load variation and AC power flows, and
	// trains the subspace detector. Deterministic in Seed.
	sys, err := pmuoutage.NewSystemContext(ctx, pmuoutage.Options{
		Case:       "ieee14",
		TrainSteps: 40,
		Seed:       42,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained on %s: %d buses, %d lines (%d valid outage cases)\n",
		"ieee14", sys.Buses(), len(sys.Lines()), len(sys.ValidLines()))

	// Sanity check: a normal-operation sample raises no alarm.
	normal, err := sys.SimulateOutageContext(ctx, nil, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.DetectContext(ctx, normal[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("normal sample: outage=%v (deviation energy %.2e)\n", rep.Outage, rep.DeviationEnergy)

	// Take the first valid line out of service and detect it.
	target := sys.ValidLines()[0]
	line := sys.Lines()[target]
	samples, err := sys.SimulateOutageContext(ctx, []int{target}, 1)
	if err != nil {
		log.Fatal(err)
	}
	rep, err = sys.DetectContext(ctx, samples[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("outage of line %d (bus %d - bus %d):\n", target, line.FromBus, line.ToBus)
	fmt.Printf("  detected outage: %v\n", rep.Outage)
	for _, l := range rep.Lines {
		fmt.Printf("  identified line %d (bus %d - bus %d)\n", l.Index, l.FromBus, l.ToBus)
	}

	// Errors are typed: branch with errors.Is instead of matching
	// message strings.
	_, err = sys.DetectContext(ctx, pmuoutage.Sample{Vm: []float64{1}, Va: []float64{0}})
	fmt.Printf("malformed sample rejected: %v (errors.Is(ErrBadSample)=%v)\n",
		err, errors.Is(err, pmuoutage.ErrBadSample))

	// Aggregate accuracy over every valid line (Eq. 12 of the paper);
	// the outage cases fan out over the worker pool, identical results
	// for any worker count.
	ia, fa, err := sys.EvaluateContext(ctx, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("all single-line outages: IA=%.3f FA=%.3f\n", ia, fa)
}
