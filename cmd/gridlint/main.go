// Command gridlint runs the repo's custom static-analysis passes (see
// internal/analysis) over the given packages. It is part of the tier-1
// verify gate:
//
//	go build ./... && go vet ./... && go run ./cmd/gridlint ./... && go test -race ./...
//
// Usage:
//
//	gridlint [-only a,b] [-list] [-json] [-nocache] [-cache file] [packages...]
//
// Packages default to ./... . A pattern is either a directory or a
// directory followed by /... for a recursive walk (testdata, hidden,
// and _-prefixed directories are skipped). Exit status is 1 when any
// unsuppressed error-severity finding is reported, 2 on operational
// errors.
//
// -list prints the analyzer catalog (name, severity, one-line doc).
// -json writes the full machine-readable report to stdout instead of
// text: module, analyzer catalog, and every finding — suppressed ones
// included, with the suppressing directive's reason — with
// module-root-relative forward-slash paths, in stable order; CI
// archives it as an artifact (make lint-report). The exit status is
// the same in both modes.
//
// Results are cached per package in .gridlint-cache.json at the module
// root, keyed by a hash of the package's source files, its
// module-internal import closure, the analyzer sources, and the
// toolchain version — a package whose inputs are unchanged reports its
// previous findings without being re-analyzed. -nocache disables the
// cache; -cache moves the file.
//
// Suppress a finding with an end-of-line or preceding-line comment:
//
//	//gridlint:ignore <analyzer> <reason>
//
// The units and allocfree analyzers are driven by two further
// directives, //gridlint:unit and //gridlint:zeroalloc — see the
// internal/analysis package doc and DESIGN.md for the grammar.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"pmuoutage/internal/analysis"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	jsonOut := flag.Bool("json", false, "write the machine-readable report to stdout")
	nocache := flag.Bool("nocache", false, "disable the per-package result cache")
	cachePath := flag.String("cache", "", "result cache file (default <module>/.gridlint-cache.json)")
	flag.Parse()

	if *list {
		for _, a := range analysis.Describe(analysis.All()) {
			fmt.Printf("%-14s %-5s %s\n", a.Name, a.Severity, a.Doc)
		}
		return
	}
	analyzers := analysis.All()
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, err := analysis.ByName(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	root, err := findModuleRoot()
	if err != nil {
		fatal(err)
	}
	loader, err := analysis.NewLoader(root)
	if err != nil {
		fatal(err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatal(err)
	}
	cache := ""
	if !*nocache {
		cache = *cachePath
		if cache == "" {
			cache = filepath.Join(loader.ModuleRoot(), ".gridlint-cache.json")
		}
	}
	rep, err := analysis.RunDirsReport(loader, analyzers, dirs, cache)
	if err != nil {
		fatal(err)
	}
	if *jsonOut {
		data, err := rep.MarshalIndent()
		if err != nil {
			fatal(err)
		}
		fmt.Println(string(data))
	} else {
		for _, f := range rep.Findings {
			if f.Suppressed {
				continue
			}
			tag := f.Analyzer
			if f.Severity == analysis.SeverityWarn {
				tag += " warn"
			}
			fmt.Printf("%s:%d:%d: [%s] %s\n", f.File, f.Line, f.Col, tag, f.Message)
		}
		if rep.Errors+rep.Warnings > 0 {
			fmt.Fprintf(os.Stderr, "gridlint: %d error(s), %d warning(s) in %d package(s)\n",
				rep.Errors, rep.Warnings, rep.Packages)
		}
	}
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// findModuleRoot walks up from the working directory to the nearest
// go.mod.
func findModuleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(dir + "/go.mod"); err == nil {
			return dir, nil
		}
		parent := dir[:strings.LastIndex(dir, "/")+1]
		parent = strings.TrimSuffix(parent, "/")
		if parent == "" || parent == dir {
			return "", fmt.Errorf("gridlint: no go.mod found above working directory")
		}
		dir = parent
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gridlint:", err)
	os.Exit(2)
}
