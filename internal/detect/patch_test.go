package detect

import (
	"bytes"
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/grid"
	"pmuoutage/internal/pmunet"
)

// patchFixture trains the golden fixture, then regenerates two lines'
// outage sets with a different seed — the "fresh observations" a patch
// ingests — and returns everything both the patch path and the
// full-retrain reference need.
func patchFixture(t *testing.T) (base *Model, d *dataset.Data, refreshed map[grid.Line]*dataset.Set) {
	t.Helper()
	_, base, d = snapshotFixture(t)
	refreshed = map[grid.Line]*dataset.Set{}
	for _, e := range []grid.Line{d.ValidLines[1], d.ValidLines[4]} {
		set, err := dataset.GenerateScenario(d.G, dataset.Scenario{e},
			dataset.GenConfig{Steps: 20, Seed: 77, UseDC: true})
		if err != nil {
			t.Fatal(err)
		}
		refreshed[e] = set
	}
	return base, d, refreshed
}

// TestPatchEquivalentToFullRetrain is the patch guarantee: applying
// TrainPatch's artifact to the base model must reproduce the model a
// full retrain on the swapped dataset produces — same fingerprint, and
// detection outputs within a pinned tolerance of zero difference.
func TestPatchEquivalentToFullRetrain(t *testing.T) {
	base, d, refreshed := patchFixture(t)

	p, err := TrainPatch(context.Background(), base, d.Normal, refreshed)
	if err != nil {
		t.Fatal(err)
	}
	patched, err := p.Apply(base)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: retrain from scratch on the dataset with the two
	// refreshed sets swapped in.
	swapped := &dataset.Data{G: d.G, Normal: d.Normal, ValidLines: d.ValidLines,
		Outages: map[grid.Line]*dataset.Set{}}
	for e, set := range d.Outages {
		swapped.Outages[e] = set
	}
	for e, set := range refreshed {
		swapped.Outages[e] = set
	}
	nw, err := pmunet.FromClusters(d.G, base.Clusters)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Train(swapped, nw, base.Config)
	if err != nil {
		t.Fatal(err)
	}
	want, err := full.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	if patched.Fingerprint != want.Fingerprint {
		t.Errorf("patched model fingerprint %.12s differs from full retrain %.12s",
			patched.Fingerprint, want.Fingerprint)
	}

	// Decision-level equivalence, tolerance-pinned: every sample of the
	// swapped dataset must classify and localise identically, with node
	// scores agreeing to within 1e-12.
	pd, err := FromModel(patched)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range d.ValidLines {
		for _, s := range []dataset.Sample{swapped.Outages[e].Samples[0], d.Normal.Samples[0]} {
			rp, err := pd.Detect(s)
			if err != nil {
				t.Fatal(err)
			}
			rf, err := full.Detect(s)
			if err != nil {
				t.Fatal(err)
			}
			if rp.Outage != rf.Outage || len(rp.Lines) != len(rf.Lines) {
				t.Fatalf("line %d: patched decision (%v %v) != retrain (%v %v)",
					e, rp.Outage, rp.Lines, rf.Outage, rf.Lines)
			}
			for k := range rp.Lines {
				if rp.Lines[k] != rf.Lines[k] {
					t.Fatalf("line %d: localisation differs: %v vs %v", e, rp.Lines, rf.Lines)
				}
			}
			for i := range rp.NodeScores {
				dp, df := rp.NodeScores[i], rf.NodeScores[i]
				if math.IsInf(dp, 1) && math.IsInf(df, 1) {
					continue
				}
				if math.Abs(dp-df) > 1e-12 {
					t.Fatalf("line %d node %d: score %g vs %g", e, i, dp, df)
				}
			}
		}
	}
}

// TestPatchRoundTripAndGuards covers the patch codec and its refusal
// paths: round-trip through Encode/DecodePatch, wrong-base refusal,
// tampered-content refusal, and foreign-version refusal.
func TestPatchRoundTripAndGuards(t *testing.T) {
	base, d, refreshed := patchFixture(t)
	p, err := TrainPatch(context.Background(), base, d.Normal, refreshed)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	artifact := buf.String()
	p2, err := DecodePatch(strings.NewReader(artifact))
	if err != nil {
		t.Fatal(err)
	}
	m1, err := p.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := p2.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if m1.Fingerprint != m2.Fingerprint {
		t.Fatal("decoded patch applies differently from the in-memory patch")
	}

	t.Run("wrong base", func(t *testing.T) {
		other := *base
		other.NoOutageThreshold *= 2
		if err := other.Seal(); err != nil {
			t.Fatal(err)
		}
		if _, err := p.Apply(&other); !errors.Is(err, ErrPatchBase) {
			t.Fatalf("got %v, want ErrPatchBase", err)
		}
	})
	t.Run("tampered", func(t *testing.T) {
		bad := strings.Replace(artifact, `"nodes":[`, `"nodes":[0,`, 1)
		if bad == artifact {
			t.Fatal("tamper target not found")
		}
		if _, err := DecodePatch(strings.NewReader(bad)); !errors.Is(err, ErrPatchCorrupt) {
			t.Fatalf("got %v, want ErrPatchCorrupt", err)
		}
	})
	t.Run("foreign version", func(t *testing.T) {
		bad := strings.Replace(artifact, `"format_version":1`, `"format_version":9`, 1)
		if bad == artifact {
			t.Fatal("tamper target not found")
		}
		if _, err := DecodePatch(strings.NewReader(bad)); !errors.Is(err, ErrPatchVersion) {
			t.Fatalf("got %v, want ErrPatchVersion", err)
		}
	})
	t.Run("unknown line", func(t *testing.T) {
		badLine := map[grid.Line]*dataset.Set{grid.Line(d.G.E() + 3): refreshed[d.ValidLines[1]]}
		if _, err := TrainPatch(context.Background(), base, d.Normal, badLine); err == nil {
			t.Fatal("patching an unknown line must fail")
		}
	})
}
