package main

import (
	"os"
	"path/filepath"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
)

func TestRunWritesLoadableDataset(t *testing.T) {
	path := filepath.Join(t.TempDir(), "d.json")
	if err := run("ieee14", 4, 1, true, 0, 0, path); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	d, err := dataset.ReadJSON(f, cases.IEEE14())
	if err != nil {
		t.Fatal(err)
	}
	if d.Normal.T() != 4 || len(d.ValidLines) == 0 {
		t.Fatalf("dataset shape: normal %d, valid %d", d.Normal.T(), len(d.ValidLines))
	}
}

func TestRunUnknownCase(t *testing.T) {
	if err := run("nope", 2, 1, true, 0, 0, ""); err == nil {
		t.Fatal("expected error")
	}
}
