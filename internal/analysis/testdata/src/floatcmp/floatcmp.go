// Package floatcmp is golden-test input for the floatcmp analyzer: each
// `// want` comment carries a regexp that must match a diagnostic
// reported on that line.
package floatcmp

func cmp(a, b float64, i, j int) bool {
	if a == b { // want `floating-point == comparison`
		return true
	}
	if a != b { // want `floating-point != comparison`
		return false
	}
	if i == j { // ints are exact; not a finding
		return true
	}
	const half = 0.5
	if half == 0.5 { // both sides constant: compile-time identity
		return true
	}
	var f float32
	var z complex128
	return f == 0 || z == 0 // want `floating-point == comparison` `floating-point == comparison`
}
