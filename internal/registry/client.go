package registry

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"

	"pmuoutage"
	"pmuoutage/api"
)

// Client pulls artifacts from a registry server, caching decoded
// models by fingerprint. Because the address is the content hash, a
// cached model can never be stale — repeat pulls revalidate with
// If-None-Match and come back 304 with no body. Every artifact that
// does transfer is verified on receipt: decoded (which checks the
// embedded fingerprint against the content) and matched against the
// fingerprint it was requested under. Safe for concurrent use.
//
// Client implements httpserve.ModelFetcher, so outaged can hand it to
// its HTTP layer and reload shards by fingerprint.
type Client struct {
	base string
	hc   *http.Client

	mu    sync.Mutex
	cache map[string]*pmuoutage.Model

	pulls       atomic.Uint64 // GETs that transferred the artifact body
	notModified atomic.Uint64 // GETs answered 304 from the ETag
}

// NewClient validates the base URL and returns a client. A nil
// http.Client uses http.DefaultClient.
func NewClient(baseURL string, hc *http.Client) (*Client, error) {
	if strings.TrimSpace(baseURL) == "" {
		return nil, fmt.Errorf("%w: empty registry URL", ErrConfig)
	}
	if hc == nil {
		hc = http.DefaultClient
	}
	return &Client{
		base:  strings.TrimRight(baseURL, "/"),
		hc:    hc,
		cache: map[string]*pmuoutage.Model{},
	}, nil
}

// Model fetches the artifact with the given content fingerprint. With
// the model already cached, the pull is conditional: If-None-Match
// carries the fingerprint's ETag and a 304 reply returns the cached
// model without transferring a byte.
func (c *Client) Model(ctx context.Context, fingerprint string) (*pmuoutage.Model, error) {
	cached := c.cached(fingerprint)

	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/models/"+fingerprint, nil)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if cached != nil {
		req.Header.Set("If-None-Match", `"`+fingerprint+`"`)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFetch, err)
	}
	defer func() { _ = resp.Body.Close() }()

	switch {
	case resp.StatusCode == http.StatusNotModified && cached != nil:
		c.notModified.Add(1)
		return cached, nil
	case resp.StatusCode == http.StatusOK:
		data, err := io.ReadAll(io.LimitReader(resp.Body, maxArtifactBytes+1))
		if err != nil {
			return nil, fmt.Errorf("%w: reading artifact: %v", ErrFetch, err)
		}
		m, err := pmuoutage.DecodeModel(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadArtifact, err)
		}
		if m.Fingerprint() != fingerprint {
			return nil, fmt.Errorf("%w: requested %q, received %q", ErrMismatch, fingerprint, m.Fingerprint())
		}
		c.pulls.Add(1)
		c.store(fingerprint, m)
		return m, nil
	case resp.StatusCode == http.StatusNotFound:
		return nil, fmt.Errorf("%w: %q", ErrUnknownModel, fingerprint)
	default:
		return nil, fmt.Errorf("%w: registry answered HTTP %d", ErrFetch, resp.StatusCode)
	}
}

func (c *Client) cached(fingerprint string) *pmuoutage.Model {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cache[fingerprint]
}

func (c *Client) store(fingerprint string, m *pmuoutage.Model) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.cache[fingerprint] = m
}

// Publish uploads the model and returns the registry's metadata reply.
func (c *Client) Publish(ctx context.Context, m *pmuoutage.Model) (api.ModelInfo, error) {
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		return api.ModelInfo{}, fmt.Errorf("%w: %v", ErrBadArtifact, err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/models", &buf)
	if err != nil {
		return api.ModelInfo{}, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.hc.Do(req)
	if err != nil {
		return api.ModelInfo{}, fmt.Errorf("%w: %v", ErrFetch, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return api.ModelInfo{}, fmt.Errorf("%w: reading reply: %v", ErrFetch, err)
	}
	if resp.StatusCode != http.StatusCreated {
		return api.ModelInfo{}, fmt.Errorf("%w: publish answered HTTP %d: %s", ErrFetch, resp.StatusCode, strings.TrimSpace(string(body)))
	}
	var info api.ModelInfo
	if err := json.Unmarshal(body, &info); err != nil {
		return api.ModelInfo{}, fmt.Errorf("%w: decoding publish reply: %v", ErrFetch, err)
	}
	return info, nil
}

// List fetches every artifact's metadata, publish order, oldest first.
func (c *Client) List(ctx context.Context) (api.ModelList, error) {
	var out api.ModelList
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/models", nil)
	if err != nil {
		return out, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return out, fmt.Errorf("%w: %v", ErrFetch, err)
	}
	defer func() { _ = resp.Body.Close() }()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return out, fmt.Errorf("%w: reading reply: %v", ErrFetch, err)
	}
	if resp.StatusCode != http.StatusOK {
		return out, fmt.Errorf("%w: list answered HTTP %d", ErrFetch, resp.StatusCode)
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return out, fmt.Errorf("%w: decoding list: %v", ErrFetch, err)
	}
	return out, nil
}

// Stats reports how many pulls transferred the artifact body and how
// many revalidated 304 — the observable half of the conditional-pull
// contract.
func (c *Client) Stats() (pulls, notModified uint64) {
	return c.pulls.Load(), c.notModified.Load()
}
