package service

import (
	"sync"
	"sync/atomic"
	"time"

	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

// Metric and label names the service registers on its obs.Registry.
// Package-level snake_case consts with exactly one registration call
// site each — the gridlint `metricname` analyzer enforces this shape.
const (
	metricRequests     = "pmu_requests_total"
	metricIngests      = "pmu_ingests_total"
	metricSamples      = "pmu_samples_total"
	metricBatches      = "pmu_batches_total"
	metricShed         = "pmu_shed_total"
	metricUnavailable  = "pmu_unavailable_total"
	metricRestarts     = "pmu_restarts_total"
	metricReloads      = "pmu_reloads_total"
	metricQueueDepth   = "pmu_queue_depth"
	metricMaxBatch     = "pmu_max_batch"
	metricStageSeconds = "pmu_stage_seconds"
	metricIngestFrames = "pmu_ingest_frames_total"

	labelShard = "shard"
	labelStage = "stage"
	labelMode  = "mode"
)

// Stage identifies one instrumented span of a request's path through a
// shard; each stage gets its own latency histogram per shard
// (pmu_stage_seconds{shard,stage}).
type Stage int

const (
	// StageQueue is the per-request wait between admission and the
	// batcher popping it.
	StageQueue Stage = iota
	// StageCoalesce is the per-batch time spent draining companion
	// requests behind the first one.
	StageCoalesce
	// StageDetect is the per-batch detector call.
	StageDetect
	// StageEncode is the per-response JSON encoding, recorded by the
	// HTTP layer (cmd/outaged).
	StageEncode
	numStages
)

// Stage label values, shared by the pmu_stage_seconds histograms and
// the span stage labels (gridlint's metricname analyzer pins span
// stages to package-level consts, exactly like metric names).
const (
	stageNameQueue    = "queue"
	stageNameCoalesce = "coalesce"
	stageNameDetect   = "detect"
	stageNameEncode   = "encode"
)

// String renders the stage label value.
func (st Stage) String() string {
	switch st {
	case StageQueue:
		return stageNameQueue
	case StageCoalesce:
		return stageNameCoalesce
	case StageDetect:
		return stageNameDetect
	default:
		return stageNameEncode
	}
}

// IngestMode identifies which transport carried a streaming sample into
// the service; each mode gets its own admission counter per shard
// (pmu_ingest_frames_total{shard,mode}).
type IngestMode int

const (
	// IngestJSON: the sample arrived as a JSON body on /v1/ingest.
	IngestJSON IngestMode = iota
	// IngestBinary: the sample arrived as a binary wire frame on
	// /v1/ingest.
	IngestBinary
	// IngestStream: the sample arrived as a decoded frame through
	// StreamIngest (the collector path — no HTTP, no JSON).
	IngestStream
	numModes
)

// String renders the mode label value.
func (m IngestMode) String() string {
	switch m {
	case IngestJSON:
		return "json"
	case IngestBinary:
		return "binary"
	default:
		return "stream"
	}
}

// Stats owns the service's metrics: one cell set per shard, every cell
// registered on a single obs.Registry, so the JSON /v1/stats snapshot
// and the Prometheus /metrics exposition are two views of the same
// atomics and can never drift. Counters are observational only — they
// never influence routing or batching, so the detector output stays
// bit-identical to direct library calls.
type Stats struct {
	reg *obs.Registry

	mu     sync.Mutex
	shards map[string]*ShardCounters
}

func newStats(reg *obs.Registry) *Stats {
	return &Stats{reg: reg, shards: map[string]*ShardCounters{}}
}

// shard returns (creating and registering on first use) the named
// shard's counter cells.
func (s *Stats) shard(name string) *ShardCounters {
	s.mu.Lock()
	defer s.mu.Unlock()
	c := s.shards[name]
	if c == nil {
		c = &ShardCounters{
			Requests:    s.reg.Counter(metricRequests, "detect requests routed to the shard", labelShard, name),
			Ingests:     s.reg.Counter(metricIngests, "streaming samples routed to the shard", labelShard, name),
			Samples:     s.reg.Counter(metricSamples, "samples run through the detector", labelShard, name),
			Batches:     s.reg.Counter(metricBatches, "coalesced detector calls", labelShard, name),
			Shed:        s.reg.Counter(metricShed, "requests rejected by load-shedding", labelShard, name),
			Unavailable: s.reg.Counter(metricUnavailable, "requests refused while the shard was not ready", labelShard, name),
			Restarts:    s.reg.Counter(metricRestarts, "supervisor rebuilds (failures and kills)", labelShard, name),
			Reloads:     s.reg.Counter(metricReloads, "successful hot model swaps", labelShard, name),
		}
		for st := Stage(0); st < numStages; st++ {
			c.stage[st] = s.reg.Histogram(metricStageSeconds, "per-stage request latency", labelShard, name, labelStage, st.String())
		}
		for m := IngestMode(0); m < numModes; m++ {
			c.frames[m] = s.reg.Counter(metricIngestFrames, "samples admitted per ingest transport", labelShard, name, labelMode, m.String())
		}
		s.reg.GaugeFunc(metricMaxBatch, "largest coalesced batch seen", func() float64 { return float64(c.maxBatch.Load()) }, labelShard, name)
		s.shards[name] = c
	}
	return c
}

// snapshot copies every cell into plain values.
func (s *Stats) snapshot() map[string]ShardSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]ShardSnapshot, len(s.shards))
	for name, c := range s.shards {
		out[name] = c.snapshot()
	}
	return out
}

// ShardCounters are one shard's live cells, registered on the service
// registry. All fields are safe for concurrent update.
type ShardCounters struct {
	Requests    *obs.Counter // detect requests routed to the shard
	Ingests     *obs.Counter // streaming samples routed to the shard
	Samples     *obs.Counter // samples actually run through the detector
	Batches     *obs.Counter // coalesced detector calls
	Shed        *obs.Counter // requests rejected by load-shedding
	Unavailable *obs.Counter // requests refused while not ready
	Restarts    *obs.Counter // supervisor rebuilds (failures and kills)
	Reloads     *obs.Counter // successful hot model swaps

	stage    [numStages]*obs.Histogram
	frames   [numModes]*obs.Counter // admitted samples per ingest transport
	maxBatch atomic.Int64           // largest coalesced batch seen
}

// Frames returns the admission counter of one ingest transport — the
// HTTP layer counts its json and binary admissions through this.
func (c *ShardCounters) Frames(m IngestMode) *obs.Counter {
	if c == nil || m < 0 || m >= numModes {
		return nil
	}
	return c.frames[m]
}

// StageSeconds returns the latency histogram of one stage — the HTTP
// layer records the encode stage through this.
func (c *ShardCounters) StageSeconds(st Stage) *obs.Histogram {
	if c == nil || st < 0 || st >= numStages {
		return nil
	}
	return c.stage[st]
}

// observeBatch records one detector call.
//
//gridlint:zeroalloc
func (c *ShardCounters) observeBatch(samples int, d time.Duration) {
	c.Batches.Inc()
	c.Samples.Add(uint64(samples))
	c.stage[StageDetect].Observe(d)
	for {
		cur := c.maxBatch.Load()
		if int64(samples) <= cur || c.maxBatch.CompareAndSwap(cur, int64(samples)) {
			return
		}
	}
}

// ShardSnapshot is a point-in-time copy of one shard's counters, shaped
// for JSON. Latency fields derive from the detect-stage histogram —
// the same cells /metrics renders. The definition lives in the shared
// api package (it is the GET /v1/stats wire value); the alias keeps
// service-level callers working.
type ShardSnapshot = api.ShardSnapshot

func (c *ShardCounters) snapshot() ShardSnapshot {
	snap := ShardSnapshot{
		Requests:     c.Requests.Load(),
		Ingests:      c.Ingests.Load(),
		Samples:      c.Samples.Load(),
		Batches:      c.Batches.Load(),
		Shed:         c.Shed.Load(),
		Unavailable:  c.Unavailable.Load(),
		Restarts:     c.Restarts.Load(),
		Reloads:      c.Reloads.Load(),
		FramesJSON:   c.frames[IngestJSON].Load(),
		FramesBinary: c.frames[IngestBinary].Load(),
		FramesStream: c.frames[IngestStream].Load(),
		MaxBatch:     int(c.maxBatch.Load()),
	}
	det := c.stage[StageDetect]
	if n := det.Count(); n > 0 {
		snap.AvgBatch = float64(snap.Samples) / float64(n)
		snap.AvgLatencyMS = det.SumSeconds() / float64(n) * 1e3
		snap.P50LatencyMS = det.Quantile(0.50) * 1e3
		snap.P95LatencyMS = det.Quantile(0.95) * 1e3
		snap.P99LatencyMS = det.Quantile(0.99) * 1e3
	}
	// Full per-stage histograms ride along so the router's fleet
	// aggregator can merge them across backends (api.Hist.Merge needs
	// matching bounds, which every shard shares via LatencyBuckets).
	snap.Stages = make(map[string]api.Hist, int(numStages))
	for st := Stage(0); st < numStages; st++ {
		hs := c.stage[st].Snapshot()
		snap.Stages[st.String()] = api.Hist{
			Bounds: hs.Bounds,
			Counts: hs.Counts,
			Count:  hs.Count,
			Sum:    hs.Sum,
		}
	}
	return snap
}
