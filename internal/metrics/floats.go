package metrics

import "math"

// Float comparison helpers enforced by gridlint's floatcmp analyzer:
// decision code (proximity scores, deviation-energy thresholds,
// capability probabilities) must not use exact ==/!= on floats, because
// exact equality silently flips under expression reordering or FMA
// contraction. These helpers make the tolerance explicit and testable.

// DefaultEps is the tolerance used by the detector stack for scores and
// probabilities, which live on O(1) scales after normalisation.
const DefaultEps = 1e-12

// NearZero reports |x| <= eps. NaN is never near zero.
func NearZero(x, eps float64) bool {
	return math.Abs(x) <= eps
}

// NearEqual reports whether a and b agree to within eps, measured
// relative to the larger magnitude but never tighter than eps itself
// (hybrid absolute/relative: |a-b| <= eps * max(1, |a|, |b|)). NaN
// compares unequal to everything, matching IEEE semantics.
func NearEqual(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return false
	}
	if a == b { //gridlint:ignore floatcmp exact fast path incl. equal infinities; inexact cases fall through
		return true
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return false // distinct infinities; eps*Inf would swallow the difference
	}
	scale := math.Max(1, math.Max(math.Abs(a), math.Abs(b)))
	return math.Abs(a-b) <= eps*scale
}

// PositiveFloor clamps x up to floor, protecting denominators: ratios of
// residual energies stay finite when a restricted sample is (numerically)
// zero. NaN propagates unchanged so upstream bugs stay visible.
func PositiveFloor(x, floor float64) float64 {
	if x < floor {
		return floor
	}
	return x
}
