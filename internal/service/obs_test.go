package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"log/slog"
	"strings"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/internal/obs"
)

// TestStatsMetricsParity pins the one-source-of-truth satellite: after a
// traffic burst, every field of the JSON /v1/stats snapshot equals the
// corresponding series on the Prometheus registry — they are two views
// of the same atomic cells, so they can never drift.
func TestStatsMetricsParity(t *testing.T) {
	svc, err := New(context.Background(), Config{
		Shards:            []ShardSpec{{Name: "east", Opts: quickOpts(3)}},
		RestartBackoff:    time.Millisecond,
		MaxRestartBackoff: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	waitState(t, svc, "east", "ready")

	sys := mustSystem(t, svc, "east")
	samples := testSamples(t, sys, 3)
	for i := 0; i < 7; i++ {
		if _, err := svc.DetectBatch(context.Background(), "east", samples); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := svc.Ingest(context.Background(), "east", samples[0]); err != nil {
			t.Fatal(err)
		}
	}
	// One sample per ingest transport: a real frame through StreamIngest,
	// and the admission counters the HTTP layer would bump for its json
	// and binary bodies.
	if err := svc.StreamIngest("east", sampleFrame(t, 1, samples[0])); err != nil {
		t.Fatal(err)
	}
	svc.Counters("east").Frames(IngestJSON).Add(2)
	svc.Counters("east").Frames(IngestBinary).Inc()
	waitIngests(t, svc, "east", 5) // the streamed frame scores asynchronously

	snap := svc.Stats()["east"]
	reg := svc.Metrics()
	for _, tc := range []struct {
		metric string
		want   uint64
	}{
		{"pmu_requests_total", snap.Requests},
		{"pmu_ingests_total", snap.Ingests},
		{"pmu_samples_total", snap.Samples},
		{"pmu_batches_total", snap.Batches},
		{"pmu_shed_total", snap.Shed},
		{"pmu_unavailable_total", snap.Unavailable},
		{"pmu_restarts_total", snap.Restarts},
		{"pmu_reloads_total", snap.Reloads},
	} {
		if got := reg.CounterValue(tc.metric, "shard", "east"); got != tc.want {
			t.Errorf("%s = %d, registry says %d", tc.metric, tc.want, got)
		}
	}
	for _, tc := range []struct {
		mode string
		want uint64
	}{
		{"json", snap.FramesJSON},
		{"binary", snap.FramesBinary},
		{"stream", snap.FramesStream},
	} {
		if got := reg.CounterValue("pmu_ingest_frames_total", "shard", "east", "mode", tc.mode); got != tc.want {
			t.Errorf("pmu_ingest_frames_total{mode=%q} = %d, registry says %d", tc.mode, tc.want, got)
		}
	}
	if snap.Requests != 7 || snap.Ingests != 5 || snap.Samples != 21 {
		t.Fatalf("unexpected traffic totals: %+v", snap)
	}
	if snap.FramesJSON != 2 || snap.FramesBinary != 1 || snap.FramesStream != 1 {
		t.Fatalf("unexpected per-mode admissions: %+v", snap)
	}
	det, ok := reg.HistogramSnapshot("pmu_stage_seconds", "shard", "east", "stage", "detect")
	if !ok {
		t.Fatal("detect-stage histogram not registered")
	}
	if det.Count != snap.Batches {
		t.Fatalf("detect histogram count %d != batches %d", det.Count, snap.Batches)
	}
	if snap.AvgLatencyMS <= 0 || snap.P50LatencyMS <= 0 || snap.P99LatencyMS < snap.P50LatencyMS {
		t.Fatalf("latency fields not derived from the histogram: %+v", snap)
	}
	queue, ok := reg.HistogramSnapshot("pmu_stage_seconds", "shard", "east", "stage", "queue")
	if !ok || queue.Count != snap.Requests {
		t.Fatalf("queue-stage histogram count = %d (found=%v), want %d", queue.Count, ok, snap.Requests)
	}
	if got := reg.GaugeValue("pmu_queue_depth", "shard", "east"); got != float64(snap.QueueDepth) {
		t.Fatalf("queue depth gauge = %v, stats say %d", got, snap.QueueDepth)
	}

	// The same cells render on the exposition text.
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`pmu_requests_total{shard="east"} 7`,
		`pmu_ingests_total{shard="east"} 5`,
		`pmu_samples_total{shard="east"} 21`,
		`pmu_ingest_frames_total{shard="east",mode="json"} 2`,
		`pmu_ingest_frames_total{shard="east",mode="binary"} 1`,
		`pmu_ingest_frames_total{shard="east",mode="stream"} 1`,
	} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exposition missing %q:\n%s", want, buf.String())
		}
	}
}

// TestTelemetryEquivalence pins the instrumentation-is-observational
// guarantee: two services booted from the same model artifact — one
// silent, one with debug logging and traced contexts — produce byte-
// identical detection responses.
func TestTelemetryEquivalence(t *testing.T) {
	m, err := pmuoutage.TrainModel(quickOpts(11))
	if err != nil {
		t.Fatal(err)
	}
	var logBuf bytes.Buffer
	newSvc := func(lg *slog.Logger) *Service {
		svc, err := New(context.Background(), Config{
			Shards:            []ShardSpec{{Name: "east", Opts: quickOpts(11), Model: m}},
			RestartBackoff:    time.Millisecond,
			MaxRestartBackoff: 10 * time.Millisecond,
			Logger:            lg,
		})
		if err != nil {
			t.Fatal(err)
		}
		waitState(t, svc, "east", "ready")
		return svc
	}
	plain := newSvc(nil)
	defer plain.Close()
	traced := newSvc(obs.NewTextLogger(&logBuf, slog.LevelDebug))
	defer traced.Close()

	ref, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	samples := testSamples(t, ref, 4)
	ctx := obs.WithTraceID(context.Background(), "feedface12345678")

	a, err := plain.DetectBatch(context.Background(), "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	b, err := traced.DetectBatch(ctx, "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Fatalf("telemetry changed detector output:\nsilent: %s\ntraced: %s", aj, bj)
	}

	// The traced request's span line carries its trace ID, shard, and
	// stage durations.
	logs := logBuf.String()
	if !strings.Contains(logs, "detect span") ||
		!strings.Contains(logs, "trace_id=feedface12345678") ||
		!strings.Contains(logs, "shard=east") ||
		!strings.Contains(logs, "component=service") {
		t.Fatalf("span log missing fields:\n%s", logs)
	}
}

// TestInstrumentationAllocs pins the hot-path overhead of the service's
// telemetry: recording a batch's counters and spans allocates nothing
// with logging disabled, and only a bounded constant with debug logging
// enabled.
func TestInstrumentationAllocs(t *testing.T) {
	newTestShard := func(lg *slog.Logger) *shard {
		svc := &Service{cfg: Config{Logger: lg}.withDefaults(), stats: newStats(obs.NewRegistry())}
		return newShard(svc, ShardSpec{Name: "alloc"})
	}
	ctx := obs.WithTraceID(context.Background(), "deadbeef00000000")
	live := []*request{
		{ctx: ctx, samples: make([]pmuoutage.Sample, 2), enqueued: time.Now()},
		{ctx: ctx, samples: make([]pmuoutage.Sample, 1), enqueued: time.Now()},
	}
	popped := time.Now()

	silent := newTestShard(nil)
	counters := silent.counters()
	if got := testing.AllocsPerRun(200, func() {
		counters.observeBatch(3, time.Millisecond)
		silent.observeSpans(live, popped, popped, time.Millisecond, 3)
	}); got > 0 {
		t.Fatalf("disabled-telemetry batch instrumentation allocates %v per op, want 0", got)
	}

	noisy := newTestShard(obs.NewTextLogger(io.Discard, slog.LevelDebug))
	if got := testing.AllocsPerRun(200, func() {
		noisy.counters().observeBatch(3, time.Millisecond)
		noisy.observeSpans(live, popped, popped, time.Millisecond, 3)
	}); got > 64 {
		t.Fatalf("enabled-telemetry batch instrumentation allocates %v per op, want a bounded constant", got)
	}
}
