package main

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"pmuoutage"
)

// TestTrainSaveDescribeServe is the CLI round trip: train and save an
// artifact, describe it back (which fully decodes and verifies it), and
// serve it — byte-identical to a system trained directly.
func TestTrainSaveDescribeServe(t *testing.T) {
	opts := pmuoutage.Options{Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true, Workers: 2}
	path := filepath.Join(t.TempDir(), "m.json")

	var out bytes.Buffer
	if err := runTrain(context.Background(), &out, opts, path); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "saved    "+path) || !strings.Contains(out.String(), "case     ieee14") {
		t.Fatalf("train output:\n%s", out.String())
	}

	var desc bytes.Buffer
	if err := runDescribe(&desc, path); err != nil {
		t.Fatal(err)
	}
	ref, err := pmuoutage.TrainModel(opts)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(desc.String(), ref.Fingerprint()) {
		t.Fatalf("describe output lacks the expected fingerprint %s:\n%s", ref.Fingerprint(), desc.String())
	}

	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	m, err := pmuoutage.DecodeModel(f)
	if err != nil {
		t.Fatal(err)
	}
	if m.Fingerprint() != ref.Fingerprint() {
		t.Fatalf("saved model fingerprint %s, direct training %s", m.Fingerprint(), ref.Fingerprint())
	}
	if _, err := pmuoutage.NewSystemFromModel(m); err != nil {
		t.Fatal(err)
	}
}

// TestPatchApplyRoundTrip drives the CLI's incremental-update path:
// train a base artifact, emit a two-line patch against it, splice the
// patch back in offline, and check the output model carries exactly
// the fingerprint the patch promised.
func TestPatchApplyRoundTrip(t *testing.T) {
	opts := pmuoutage.Options{Case: "ieee14", TrainSteps: 12, Seed: 3, UseDC: true, Workers: 2}
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.model.json")
	patchPath := filepath.Join(dir, "delta.patch.json")
	outPath := filepath.Join(dir, "patched.model.json")

	var out bytes.Buffer
	if err := runTrain(context.Background(), &out, opts, basePath); err != nil {
		t.Fatal(err)
	}
	base, err := loadModel(basePath)
	if err != nil {
		t.Fatal(err)
	}
	sys, err := pmuoutage.NewSystemFromModel(base)
	if err != nil {
		t.Fatal(err)
	}
	valid := sys.ValidLines()
	lineList := fmt.Sprintf("%d,%d", valid[0], valid[2])

	out.Reset()
	if err := runPatch(context.Background(), &out, basePath, lineList, 77, 0, patchPath); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "base     "+base.Fingerprint()) {
		t.Fatalf("patch output lacks the base fingerprint:\n%s", out.String())
	}

	out.Reset()
	if err := runApply(&out, basePath, patchPath, outPath); err != nil {
		t.Fatal(err)
	}
	pf, err := os.Open(patchPath)
	if err != nil {
		t.Fatal(err)
	}
	p, err := pmuoutage.DecodePatch(pf)
	_ = pf.Close()
	if err != nil {
		t.Fatal(err)
	}
	patched, err := loadModel(outPath)
	if err != nil {
		t.Fatal(err)
	}
	if patched.Fingerprint() != p.ResultFingerprint() {
		t.Fatalf("patched artifact %s, patch promised %s", patched.Fingerprint(), p.ResultFingerprint())
	}
	if patched.Fingerprint() == base.Fingerprint() {
		t.Fatal("fresh-seed patch left the model unchanged")
	}
}

// TestDescribeRejectsCorruptArtifact: describe decodes strictly, so a
// tampered file fails rather than printing bogus metadata.
func TestDescribeRejectsCorruptArtifact(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(path, []byte(`{"format_version":1}`), 0o600); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if err := runDescribe(&out, path); err == nil {
		t.Fatal("describe accepted a corrupt artifact")
	}
}
