package mat

import (
	"math"
	"sort"
)

// SVD holds a thin singular value decomposition A = U * diag(S) * V^T,
// where A is m-by-n, U is m-by-k, V is n-by-k, k = min(m, n), and the
// singular values in S are sorted in decreasing order.
type SVD struct {
	U *Dense
	S []float64
	V *Dense
}

// FactorSVD computes the thin SVD of a using the one-sided Jacobi
// (Hestenes) method. For m < n the decomposition is computed on the
// transpose and the factors swapped, so the routine accepts any shape.
//
// One-sided Jacobi is chosen over Golub–Kahan bidiagonalization because it
// is simple, unconditionally convergent, and computes small singular
// values to high relative accuracy — which matters here because the
// detector keys off the *lowest* singular directions of the phasor data
// (they encode the grid topology, see DESIGN.md).
func FactorSVD(a *Dense) *SVD {
	m, n := a.rows, a.cols
	if m < n {
		s := FactorSVD(a.T())
		return &SVD{U: s.V, S: s.S, V: s.U}
	}
	if m >= svdBlockRows {
		return factorSVDBlocked(a)
	}
	return factorSVDRef(a)
}

// factorSVDRef is the row-major reference one-sided Jacobi sweep, used
// below svdBlockRows. factorSVDBlocked reproduces its results bit for
// bit in a column-contiguous layout.
func factorSVDRef(a *Dense) *SVD {
	m, n := a.rows, a.cols
	// Work on columns of a copy of A; rotate pairs of columns until all
	// are mutually orthogonal. Then column norms are singular values and
	// normalized columns are U; V accumulates the rotations.
	w := a.Clone()
	v := Identity(n)

	const maxSweeps = 60
	// Convergence threshold relative to the largest column norm product.
	eps := math.Nextafter(1, 2) - 1 // machine epsilon
	tol := math.Sqrt(float64(m)) * eps

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					alpha += wp * wp
					beta += wq * wq
					gamma += wp * wq
				}
				if alpha == 0 || beta == 0 { //gridlint:ignore floatcmp one-sided Jacobi skips exactly-null columns; tol handles near-zero below
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				off++
				// Jacobi rotation zeroing the (p,q) inner product.
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					wp := w.data[i*n+p]
					wq := w.data[i*n+q]
					w.data[i*n+p] = c*wp - s*wq
					w.data[i*n+q] = s*wp + c*wq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	// Extract singular values and left vectors.
	sv := make([]float64, n)
	u := NewDense(m, n)
	for j := 0; j < n; j++ {
		col := w.Col(j)
		sv[j] = Norm2(col)
		if sv[j] > 0 {
			inv := 1 / sv[j]
			for i := 0; i < m; i++ {
				u.data[i*n+j] = col[i] * inv
			}
		}
	}
	// Sort by decreasing singular value.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sv[order[a]] > sv[order[b]] })
	us := u.SelectCols(order)
	vs := v.SelectCols(order)
	ss := make([]float64, n)
	for k, j := range order {
		ss[k] = sv[j]
	}
	// Columns with zero singular value have undefined U columns; replace
	// them with zeros (already zero) — callers use Rank to ignore them.
	return &SVD{U: us, S: ss, V: vs}
}

// svdBlockRows is the row count above which FactorSVD switches to the
// cache-blocked column-contiguous layout. Small matrices stay on the
// row-major reference path, whose results the blocked path reproduces
// bit for bit (see TestFactorSVDBlockedBitIdentical).
const svdBlockRows = 256

// factorSVDBlocked is the one-sided Jacobi sweep of FactorSVD restaged
// for tall deviation matrices. The row-major reference walks columns p
// and q with stride n, touching m cache lines per column per rotation;
// here the working matrix is repacked so each column is one contiguous
// block, making every rotation two linear streams. The arithmetic —
// rotation order, tolerances, per-element operations, accumulation
// order over i — is exactly the reference's, so the factorization is
// bit-identical; only the memory layout changes.
func factorSVDBlocked(a *Dense) *SVD {
	m, n := a.rows, a.cols
	// Repack A column-contiguously: column j occupies w[j*m : (j+1)*m].
	w := make([]float64, m*n)
	for i := 0; i < m; i++ {
		row := a.data[i*n : (i+1)*n]
		for j, v := range row {
			w[j*m+i] = v
		}
	}
	v := Identity(n)

	const maxSweeps = 60
	eps := math.Nextafter(1, 2) - 1 // machine epsilon
	tol := math.Sqrt(float64(m)) * eps

	for sweep := 0; sweep < maxSweeps; sweep++ {
		off := 0
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				wp := w[p*m : (p+1)*m]
				wq := w[q*m : (q+1)*m]
				var alpha, beta, gamma float64
				for i := 0; i < m; i++ {
					alpha += wp[i] * wp[i]
					beta += wq[i] * wq[i]
					gamma += wp[i] * wq[i]
				}
				if alpha == 0 || beta == 0 { //gridlint:ignore floatcmp one-sided Jacobi skips exactly-null columns; tol handles near-zero below
					continue
				}
				if math.Abs(gamma) <= tol*math.Sqrt(alpha*beta) {
					continue
				}
				off++
				zeta := (beta - alpha) / (2 * gamma)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				s := c * t
				for i := 0; i < m; i++ {
					xp := wp[i]
					xq := wq[i]
					wp[i] = c*xp - s*xq
					wq[i] = s*xp + c*xq
				}
				for i := 0; i < n; i++ {
					vp := v.data[i*n+p]
					vq := v.data[i*n+q]
					v.data[i*n+p] = c*vp - s*vq
					v.data[i*n+q] = s*vp + c*vq
				}
			}
		}
		if off == 0 {
			break
		}
	}

	sv := make([]float64, n)
	u := NewDense(m, n)
	for j := 0; j < n; j++ {
		col := w[j*m : (j+1)*m]
		sv[j] = Norm2(col)
		if sv[j] > 0 {
			inv := 1 / sv[j]
			for i := 0; i < m; i++ {
				u.data[i*n+j] = col[i] * inv
			}
		}
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return sv[order[a]] > sv[order[b]] })
	us := u.SelectCols(order)
	vs := v.SelectCols(order)
	ss := make([]float64, n)
	for k, j := range order {
		ss[k] = sv[j]
	}
	return &SVD{U: us, S: ss, V: vs}
}

// Rank returns the numerical rank: the number of singular values above
// max(m,n) * eps * S[0]. A custom tolerance <= 0 selects this default.
func (s *SVD) Rank(tol float64) int {
	if len(s.S) == 0 {
		return 0
	}
	if tol <= 0 {
		m, _ := s.U.Dims()
		n, _ := s.V.Dims()
		d := m
		if n > d {
			d = n
		}
		eps := math.Nextafter(1, 2) - 1
		tol = float64(d) * eps * s.S[0]
	}
	r := 0
	for _, v := range s.S {
		if v > tol {
			r++
		}
	}
	return r
}

// Reconstruct returns U * diag(S) * V^T.
func (s *SVD) Reconstruct() *Dense {
	m, k := s.U.Dims()
	n, _ := s.V.Dims()
	us := NewDense(m, k)
	for i := 0; i < m; i++ {
		for j := 0; j < k; j++ {
			us.data[i*k+j] = s.U.data[i*k+j] * s.S[j]
		}
	}
	_ = n
	return us.Mul(s.V.T())
}

// PseudoInverse returns the Moore–Penrose pseudo-inverse of a, computed
// from the SVD with the default rank tolerance.
func PseudoInverse(a *Dense) *Dense {
	s := FactorSVD(a)
	r := s.Rank(0)
	m, k := s.U.Dims()
	n, _ := s.V.Dims()
	// pinv = V * diag(1/S_r) * U^T, using only the first r triples.
	out := NewDense(n, m)
	for t := 0; t < r; t++ {
		inv := 1 / s.S[t]
		for i := 0; i < n; i++ {
			vi := s.V.data[i*k+t] * inv
			if vi == 0 { //gridlint:ignore floatcmp sparse accumulate skips exact structural zeros only
				continue
			}
			orow := out.data[i*m : (i+1)*m]
			for j := 0; j < m; j++ {
				orow[j] += vi * s.U.data[j*k+t]
			}
		}
	}
	return out
}
