package obs

import (
	"context"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter", "shard", "east")
	c.Inc()
	c.Add(4)
	if got := c.Load(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	if got := r.CounterValue("test_total", "shard", "east"); got != 5 {
		t.Fatalf("CounterValue = %d, want 5", got)
	}
	if got := r.CounterValue("test_total", "shard", "west"); got != 0 {
		t.Fatalf("CounterValue for absent labels = %d, want 0", got)
	}

	g := r.Gauge("test_depth", "a gauge")
	g.Set(7)
	g.Add(-2)
	if got := g.Load(); got != 5 {
		t.Fatalf("gauge = %d, want 5", got)
	}
	r.GaugeFunc("test_fn", "a computed gauge", func() float64 { return 1.5 })
	if got := r.GaugeValue("test_fn"); got != 1.5 {
		t.Fatalf("GaugeValue = %v, want 1.5", got)
	}
}

// TestNilCellsAreInert: the disabled-telemetry path — every recording
// method on nil cells and a nil registry is a safe no-op.
func TestNilCellsAreInert(t *testing.T) {
	var r *Registry
	c := r.Counter("x_total", "nil registry returns nil cells")
	g := r.Gauge("x_depth", "")
	h := r.Histogram("x_seconds", "")
	c.Inc()
	c.Add(3)
	g.Set(1)
	g.Add(1)
	h.Observe(time.Millisecond)
	r.GaugeFunc("x_fn", "", func() float64 { return 1 })
	r.AttachCounter("x_attached", "", c)
	if c.Load() != 0 || g.Load() != 0 || h.Count() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("nil cells recorded something")
	}
	if r.Snapshot() != nil {
		t.Fatal("nil registry produced a snapshot")
	}
	if err := r.WritePrometheus(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
}

func TestHistogramBucketsAndQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency")
	// 100 observations at 2ms: every quantile lands in the (1ms, 2.5ms]
	// bucket.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	if h.Count() != 100 {
		t.Fatalf("count = %d", h.Count())
	}
	if got, want := h.SumSeconds(), 0.2; got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	for _, q := range []float64{0.5, 0.95, 0.99} {
		v := h.Quantile(q)
		if v <= 1e-3 || v > 2.5e-3 {
			t.Fatalf("Quantile(%v) = %v, want within (1ms, 2.5ms]", q, v)
		}
	}

	// A bimodal distribution: p50 in the low mode, p99 in the high mode.
	h2 := r.Histogram("lat2_seconds", "latency")
	for i := 0; i < 90; i++ {
		h2.Observe(20 * time.Microsecond)
	}
	for i := 0; i < 10; i++ {
		h2.Observe(2 * time.Second)
	}
	if p50 := h2.Quantile(0.5); p50 > 25e-6 {
		t.Fatalf("p50 = %v, want in the low mode", p50)
	}
	if p99 := h2.Quantile(0.99); p99 < 1 {
		t.Fatalf("p99 = %v, want in the high mode", p99)
	}

	// Overflow bucket observations clamp to the largest finite bound.
	h3 := r.Histogram("lat3_seconds", "latency")
	h3.Observe(time.Minute)
	if got := h3.Quantile(0.5); got != LatencyBuckets[len(LatencyBuckets)-1] {
		t.Fatalf("overflow quantile = %v", got)
	}

	// Negative durations clamp to zero instead of corrupting the sum.
	h4 := r.Histogram("lat4_seconds", "latency")
	h4.Observe(-time.Second)
	if h4.SumSeconds() != 0 || h4.Count() != 1 {
		t.Fatalf("negative observe: sum=%v count=%d", h4.SumSeconds(), h4.Count())
	}
}

// TestSnapshotMonotoneBuckets: cumulative bucket counts in a snapshot
// never decrease with increasing le, and count equals the +Inf bucket.
func TestSnapshotMonotoneBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("mono_seconds", "latency")
	for _, d := range []time.Duration{time.Microsecond, time.Millisecond, 10 * time.Millisecond, time.Second, time.Hour} {
		h.Observe(d)
	}
	snap, ok := r.HistogramSnapshot("mono_seconds")
	if !ok {
		t.Fatal("histogram not found")
	}
	var cum, total uint64
	for _, c := range snap.Counts {
		total += c
	}
	if total != snap.Count || snap.Count != 5 {
		t.Fatalf("bucket total = %d, count = %d, want 5", total, snap.Count)
	}
	prev := uint64(0)
	for i, c := range snap.Counts {
		cum += c
		if cum < prev {
			t.Fatalf("cumulative count decreased at bucket %d", i)
		}
		prev = cum
	}
	if snap.P50 > snap.P95 || snap.P95 > snap.P99 {
		t.Fatalf("quantiles out of order: p50=%v p95=%v p99=%v", snap.P50, snap.P95, snap.P99)
	}
}

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("req_total", "requests", "shard", "east")
	c.Add(3)
	r.Counter("req_total", "requests", "shard", "west").Inc()
	g := r.Gauge("depth", "queue \"depth\"\nwith newline")
	g.Set(2)
	h := r.Histogram("lat_seconds", "latency", "shard", "east", "stage", "detect")
	h.Observe(30 * time.Microsecond)
	h.Observe(30 * time.Microsecond)
	h.Observe(2 * time.Second)

	rec := httptest.NewRecorder()
	r.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"# HELP req_total requests\n",
		"# TYPE req_total counter\n",
		`req_total{shard="east"} 3`,
		`req_total{shard="west"} 1`,
		"# TYPE depth gauge\n",
		"depth 2",
		"# TYPE lat_seconds histogram\n",
		`lat_seconds_bucket{shard="east",stage="detect",le="5e-05"} 2`,
		`lat_seconds_bucket{shard="east",stage="detect",le="+Inf"} 3`,
		`lat_seconds_count{shard="east",stage="detect"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("exposition missing %q:\n%s", want, body)
		}
	}
	// Escaped HELP text survives.
	if !strings.Contains(body, `# HELP depth queue "depth"\nwith newline`) {
		t.Fatalf("HELP escaping wrong:\n%s", body)
	}
	// le buckets are cumulative and monotone in the rendered text too.
	var last int64 = -1
	for _, line := range strings.Split(body, "\n") {
		if !strings.HasPrefix(line, "lat_seconds_bucket") {
			continue
		}
		v, err := strconv.ParseInt(line[strings.LastIndexByte(line, ' ')+1:], 10, 64)
		if err != nil {
			t.Fatalf("parsing %q: %v", line, err)
		}
		if v < last {
			t.Fatalf("bucket counts not monotone at %q", line)
		}
		last = v
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Fatalf("%s did not panic", name)
			}
		}()
		fn()
	}
	r := NewRegistry()
	r.Counter("ok_total", "fine")
	mustPanic("duplicate registration", func() { r.Counter("ok_total", "fine") })
	mustPanic("kind mismatch", func() { r.Gauge("ok_total", "fine") })
	mustPanic("camelCase name", func() { r.Counter("badName", "x") })
	mustPanic("empty name", func() { r.Counter("", "x") })
	mustPanic("odd labels", func() { r.Counter("odd_total", "x", "shard") })
	mustPanic("bad label key", func() { r.Counter("lbl_total", "x", "Shard", "east") })
	// Same name, new label values: allowed (extends the family).
	r.Counter("ok2_total", "fine", "shard", "a")
	r.Counter("ok2_total", "fine", "shard", "b")
}

func TestTraceContext(t *testing.T) {
	ctx := context.Background()
	if TraceID(ctx) != "" {
		t.Fatal("empty context carries a trace ID")
	}
	ctx2 := WithTraceID(ctx, "abc123")
	if got := TraceID(ctx2); got != "abc123" {
		t.Fatalf("TraceID = %q", got)
	}
	if WithTraceID(ctx, "") != ctx {
		t.Fatal("empty id should not wrap the context")
	}

	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if len(id) != 16 {
			t.Fatalf("trace id %q is not 16 hex chars", id)
		}
		for _, c := range id {
			if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
				t.Fatalf("trace id %q has non-hex char %q", id, c)
			}
		}
		if seen[id] {
			t.Fatalf("trace id %q repeated", id)
		}
		seen[id] = true
	}
}

func TestParseLevel(t *testing.T) {
	for in, want := range map[string]string{
		"debug": "DEBUG", "INFO": "INFO", "Warn": "WARN", "error": "ERROR",
	} {
		l, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", in, err)
		}
		if l.String() != want {
			t.Fatalf("ParseLevel(%q) = %v", in, l)
		}
	}
	if _, err := ParseLevel("loud"); err == nil {
		t.Fatal("bad level accepted")
	}
}
