// Package metricname is golden-test input for the metricname analyzer.
// Registry here mimics the internal/obs surface: the analyzer keys on
// the receiver type name and method set, not the package path.
package metricname

type Counter struct{}

type Registry struct{}

func (r *Registry) Counter(name, help string, labels ...string) *Counter   { return nil }
func (r *Registry) Gauge(name, help string, labels ...string) *Counter     { return nil }
func (r *Registry) Histogram(name, help string, labels ...string) *Counter { return nil }
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {}
func (r *Registry) AttachCounter(name, help string, c *Counter, labels ...string)    {}

const (
	goodCounter = "pmu_good_total"
	goodGauge   = "pmu_queue_depth"
	goodHist    = "pmu_stage_seconds"
	goodFunc    = "pmu_largest_batch"
	badCase     = "PMU_Shouty_Total"
	dupName     = "pmu_dup_total"
	spreadName  = "pmu_spread_total"
	labelShard  = "shard"
	labelCamel  = "shardName"
)

func register(r *Registry, c *Counter, labels []string) {
	r.Counter(goodCounter, "fine: const snake_case name, const label key", labelShard, "east")
	r.Histogram(goodHist, "fine: labels fanned out per shard", labelShard, "west")
	r.GaugeFunc(goodFunc, "fine: callback is not mistaken for a label", func() float64 { return 0 }, labelShard, "east")
	r.AttachCounter(spreadName, "fine: spread labels are left to runtime", c, labels...)

	r.Counter("pmu_literal_total", "names must be consts") // want `metric name must be a package-level named constant, not a string literal`

	name := "pmu_var_total"
	r.Counter(name, "variables hide the catalog") // want `metric name must be a package-level named constant, not a variable`

	const local = "pmu_local_total"
	r.Counter(local, "local consts are invisible to grep at the top of the file") // want `metric name constant local must be declared at package level`

	r.Gauge(badCase, "names must be snake_case") // want `metric name "PMU_Shouty_Total" \(const badCase\) is not snake_case`

	r.Counter(dupName, "first registration is fine", labelShard, "east")
	r.Counter(dupName, "second call site is the smell") // want `metric "pmu_dup_total" is registered at more than one call site`

	r.Gauge(goodGauge, "label keys must be consts too", "shard", "east") // want `label key must be a package-level named constant, not a string literal`
	r.Histogram(goodHist2, "label keys must be snake_case", labelCamel, "east") // want `label key "shardName" \(const labelCamel\) is not snake_case`
}

const goodHist2 = "pmu_other_seconds"

// Tracer mimics the internal/obs span surface: stage names feed the
// per-stage SLO rows, so StartSpan/RecordSpan stage arguments get the
// same const + snake_case rules (but no single-call-site rule — a
// stage is started from wherever it runs).
type Tracer struct{}

func (t *Tracer) StartSpan(ctx any, stage string) (any, any)       { return ctx, nil }
func (t *Tracer) RecordSpan(ctx any, stage string, start, end int) {}

const (
	stageGood  = "detect"
	stageCamel = "proxyHop"
)

func spans(tr *Tracer, ctx any) {
	_, _ = tr.StartSpan(ctx, stageGood)
	tr.RecordSpan(ctx, stageGood, 0, 0) // fine: stages may repeat across call sites
	tr.RecordSpan(ctx, stageGood, 0, 0)

	_, _ = tr.StartSpan(ctx, "queue") // want `span stage must be a package-level named constant, not a string literal`
	tr.RecordSpan(ctx, stageCamel, 0, 0) // want `span stage "proxyHop" \(const stageCamel\) is not snake_case`
}

// notATracer proves the stage check keys on the receiver type too.
type notATracer struct{}

func (notATracer) StartSpan(ctx any, stage string) {}

func unrelatedSpan(n notATracer, ctx any) {
	n.StartSpan(ctx, "Whatever Goes")
}

// notARegistry proves the analyzer keys on the receiver type: same
// method names elsewhere are ignored.
type notARegistry struct{}

func (notARegistry) Counter(name, help string, labels ...string) {}

func unrelated(n notARegistry) {
	n.Counter("Whatever Goes", "not a Registry, not our business")
}
