package client

import (
	"bytes"
	"context"
	"errors"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

// TestTraceHeaderRoundTrip: a 429-then-200 sequence sends the same
// caller-supplied X-Trace-Id on every attempt, and the retry is logged
// with that ID.
func TestTraceHeaderRoundTrip(t *testing.T) {
	var calls atomic.Int64
	var seen [2]string
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		seen[n-1] = r.Header.Get(obs.TraceHeader)
		w.Header().Set(obs.TraceHeader, r.Header.Get(obs.TraceHeader))
		if n == 1 {
			w.Header().Set("Retry-After", "0")
			http.Error(w, "overloaded", http.StatusTooManyRequests)
			return
		}
		writeJSON(w, http.StatusOK, api.DetectResponse{Shard: "east"})
	}))
	defer ts.Close()

	var logBuf bytes.Buffer
	c, err := New(Config{
		BaseURL:     ts.URL,
		MaxRetries:  3,
		BaseBackoff: time.Millisecond,
		MaxBackoff:  4 * time.Millisecond,
		Logger:      obs.NewTextLogger(&logBuf, slog.LevelDebug),
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := obs.WithTraceID(context.Background(), "cafef00d00000001")
	if _, err := c.Detect(ctx, "east", []pmuoutage.Sample{{}}); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 2 {
		t.Fatalf("server saw %d calls, want 2", calls.Load())
	}
	if seen[0] != "cafef00d00000001" || seen[1] != "cafef00d00000001" {
		t.Fatalf("trace header not constant across retries: %q then %q", seen[0], seen[1])
	}
	logs := logBuf.String()
	if !strings.Contains(logs, "retrying request") ||
		!strings.Contains(logs, "trace_id=cafef00d00000001") ||
		!strings.Contains(logs, "component=client") {
		t.Fatalf("retry log missing fields:\n%s", logs)
	}
}

// TestTraceMintedWhenAbsent: with no caller trace ID the client mints
// one and still sends it on every attempt.
func TestTraceMintedWhenAbsent(t *testing.T) {
	var got atomic.Value
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		got.Store(r.Header.Get(obs.TraceHeader))
		writeJSON(w, http.StatusOK, api.DetectResponse{Shard: "east"})
	}))
	defer ts.Close()
	if _, err := testClient(t, ts).Detect(context.Background(), "east", []pmuoutage.Sample{{}}); err != nil {
		t.Fatal(err)
	}
	id, _ := got.Load().(string)
	if len(id) != 16 {
		t.Fatalf("minted trace id %q is not 16 hex chars", id)
	}
}

// TestServerErrorCarriesTrace: terminal and exhausted failures both
// surface the server-echoed trace ID through errors.As.
func TestServerErrorCarriesTrace(t *testing.T) {
	status := http.StatusBadRequest
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(obs.TraceHeader, r.Header.Get(obs.TraceHeader))
		http.Error(w, "nope", status)
	}))
	defer ts.Close()
	c := testClient(t, ts)
	ctx := obs.WithTraceID(context.Background(), "aaaabbbbccccdddd")

	_, err := c.Detect(ctx, "east", nil)
	var se *ServerError
	if !errors.Is(err, ErrRequest) || !errors.As(err, &se) {
		t.Fatalf("terminal failure not a ServerError: %v", err)
	}
	if se.Status != http.StatusBadRequest || se.TraceID != "aaaabbbbccccdddd" {
		t.Fatalf("ServerError = %+v", se)
	}
	if !strings.Contains(err.Error(), "trace aaaabbbbccccdddd") {
		t.Fatalf("error text lacks trace ID: %v", err)
	}

	// Exhausted retries keep the last attempt's ServerError reachable.
	status = http.StatusServiceUnavailable
	_, err = c.Detect(ctx, "east", nil)
	se = nil
	if !errors.Is(err, ErrExhausted) || !errors.As(err, &se) {
		t.Fatalf("exhausted failure not a wrapped ServerError: %v", err)
	}
	if se.Status != http.StatusServiceUnavailable || se.TraceID != "aaaabbbbccccdddd" {
		t.Fatalf("ServerError after exhaustion = %+v", se)
	}
}
