package analysis

import (
	"go/ast"
	"go/constant"
	"go/types"
	"strings"
)

// ApiErr enforces the facade's typed-error contract in the public API
// packages (the pmuoutage facade, the service layer, and the HTTP
// client): errors that
// cross the API boundary must wrap a package-level sentinel so callers
// can branch with errors.Is/errors.As and transports can map them to
// status codes. It flags, inside those packages only,
//
//   - fmt.Errorf calls in exported functions whose constant format
//     string has no %w verb (a bare string error no caller can match),
//     and
//   - errors.New calls inside any function body (a one-off dynamic
//     error; sentinels belong in package-level var declarations).
//
// Non-constant format strings are skipped — absence of %w cannot be
// proven. Unexported helpers may build bare fmt.Errorf detail freely.
var ApiErr = &Analyzer{
	Name: "apierr",
	Doc:  "flag un-wrapped error construction on the exported facade/service API",
	Run:  runApiErr,
}

// apiErrPackages are the package names whose exported surface carries
// the typed-error contract.
var apiErrPackages = map[string]bool{
	"pmuoutage": true,
	"service":   true,
	"client":    true,
	"api":       true,
	"registry":  true,
	"router":    true,
}

func runApiErr(pass *Pass) error {
	if !apiErrPackages[pass.Pkg.Name()] {
		return nil
	}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkAPIErrors(pass, fn)
		}
	}
	return nil
}

// checkAPIErrors inspects one function (or method) body. Function
// literals inherit the exportedness of their enclosing declaration: an
// error built inside a closure of an exported function still reaches
// that function's callers.
func checkAPIErrors(pass *Pass, fn *ast.FuncDecl) {
	exported := fn.Name.IsExported()
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch {
		case isPkgFunc(pass, call, "errors", "New"):
			pass.Report(call.Pos(), "errors.New inside function %s builds a one-off error no caller can match with errors.Is; declare a package-level sentinel and wrap it with %%w", fn.Name.Name)
		case exported && isPkgFunc(pass, call, "fmt", "Errorf") && len(call.Args) > 0:
			tv, ok := pass.Info.Types[call.Args[0]]
			if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
				return true // non-constant format: absence of %w is unprovable
			}
			if !strings.Contains(constant.StringVal(tv.Value), "%w") {
				pass.Report(call.Pos(), "exported function %s returns fmt.Errorf without wrapping a sentinel (no %%w); callers cannot branch with errors.Is", fn.Name.Name)
			}
		}
		return true
	})
}

// isPkgFunc reports whether call is pkg.name(...) where pkg resolves to
// the import with the given path.
func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pn, ok := pass.Info.Uses[id].(*types.PkgName)
	return ok && pn.Imported().Path() == pkgPath
}
