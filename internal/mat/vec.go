package mat

import (
	"fmt"
	"math"
)

// Vector helpers operate on plain []float64 slices; the detector passes
// phasor samples around as slices, so free functions avoid wrapper churn.

// Dot returns the inner product of a and b.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("mat: Dot length mismatch %d vs %d", len(a), len(b)))
	}
	var s float64
	for i, v := range a {
		s += v * b[i]
	}
	return s
}

// Norm2 returns the Euclidean norm of v.
func Norm2(v []float64) float64 {
	// Scaled accumulation avoids overflow/underflow for extreme values.
	var scale, ssq float64
	ssq = 1
	for _, x := range v {
		if x == 0 { //gridlint:ignore floatcmp scaled-norm accumulation skips exact zeros to keep scale well-defined
			continue
		}
		ax := math.Abs(x)
		if scale < ax {
			r := scale / ax
			ssq = 1 + ssq*r*r
			scale = ax
		} else {
			r := ax / scale
			ssq += r * r
		}
	}
	if scale == 0 { //gridlint:ignore floatcmp scale is exactly zero iff every element was exactly zero
		return 0
	}
	return scale * math.Sqrt(ssq)
}

// NormInf returns the max-abs norm of v.
func NormInf(v []float64) float64 {
	var mx float64
	for _, x := range v {
		if a := math.Abs(x); a > mx {
			mx = a
		}
	}
	return mx
}

// AxpyTo stores a*x + y into dst and returns it. dst may alias y.
func AxpyTo(dst []float64, a float64, x, y []float64) []float64 {
	if len(x) != len(y) || len(dst) != len(x) {
		panic("mat: AxpyTo length mismatch")
	}
	for i := range dst {
		dst[i] = a*x[i] + y[i]
	}
	return dst
}

// Sub returns a-b as a new slice.
func Sub(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: Sub length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] - b[i]
	}
	return out
}

// AddVec returns a+b as a new slice.
func AddVec(a, b []float64) []float64 {
	if len(a) != len(b) {
		panic("mat: AddVec length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		out[i] = a[i] + b[i]
	}
	return out
}

// ScaleVec returns s*v as a new slice.
func ScaleVec(s float64, v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = s * x
	}
	return out
}

// Mean returns the arithmetic mean of v, or 0 for an empty slice.
func Mean(v []float64) float64 {
	if len(v) == 0 {
		return 0
	}
	var s float64
	for _, x := range v {
		s += x
	}
	return s / float64(len(v))
}

// Variance returns the population variance of v, or 0 if len(v) < 2.
func Variance(v []float64) float64 {
	if len(v) < 2 {
		return 0
	}
	m := Mean(v)
	var s float64
	for _, x := range v {
		d := x - m
		s += d * d
	}
	return s / float64(len(v))
}
