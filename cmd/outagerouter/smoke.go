package main

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"strconv"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/internal/httpserve"
	"pmuoutage/internal/obs"
	"pmuoutage/internal/registry"
	"pmuoutage/internal/router"
	"pmuoutage/internal/service"
)

// runFleetSmoke is the -smoke self-test wired to `make
// serve-fleet-smoke`: an in-process fleet — registry, two primary
// backends booted by fingerprint, one canary backend, the router in
// full-shadow mode — driven over real HTTP. It asserts the acceptance
// path end to end: byte-identical proxying, fail-over with one backend
// killed mid-stream and zero dropped detects, shadow responses
// byte-identical to the primary's, conditional registry pulls
// answering 304 on the reload, and a gated canary promotion.
func runFleetSmoke() error {
	ctx, cancel := context.WithTimeout(context.Background(), 4*time.Minute)
	defer cancel()
	quiet := obs.NewTextLogger(io.Discard, slog.LevelDebug)

	// One trained artifact, published once: every backend boots from the
	// registry by fingerprint, and the same fingerprint is the promotion
	// candidate (a byte-identical candidate must always pass the gates).
	opts := pmuoutage.Options{Case: "ieee14", TrainSteps: 12, UseDC: true, Seed: 7, Workers: 2}
	model, err := pmuoutage.TrainModelContext(ctx, opts)
	if err != nil {
		return err
	}
	fp := model.Fingerprint()

	regDir, err := os.MkdirTemp("", "outagerouter-smoke-registry-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(regDir) }()
	store, err := registry.NewStore(regDir)
	if err != nil {
		return err
	}
	if _, err := store.Publish(model); err != nil {
		return err
	}
	regSrv, err := newSmokeServer(registry.NewServer(store, quiet).Routes())
	if err != nil {
		return err
	}
	defer regSrv.stop()

	// Three backends: two primaries and one canary, each with its own
	// registry client and its shard booted from the published artifact.
	var backends []*smokeBackend
	defer func() {
		for _, b := range backends {
			b.stop()
		}
	}()
	for i := 0; i < 3; i++ {
		b, err := newSmokeBackend(ctx, regSrv.base, fp, opts, quiet)
		if err != nil {
			return err
		}
		backends = append(backends, b)
	}
	primA, primB, canary := backends[0], backends[1], backends[2]

	rt, err := router.New(ctx, router.Config{
		Backends:       []string{primA.srv.base, primB.srv.base},
		CanaryBackends: []string{canary.srv.base},
		Candidate:      fp,
		CanaryPercent:  100, // full shadow: every detect is mirrored
		MinPairs:       1,
		ProbeEvery:     20 * time.Millisecond,
		Logger:         quiet,
	})
	if err != nil {
		return err
	}
	defer rt.Close()
	rtSrv, err := newSmokeServer(rt.Routes())
	if err != nil {
		return err
	}
	defer rtSrv.stop()

	// Known-truth traffic: an outage on the first valid line, with the
	// expected reports computed against the same model locally.
	sys, err := pmuoutage.NewSystemFromModel(model)
	if err != nil {
		return err
	}
	line := sys.ValidLines()[0]
	samples, err := sys.SimulateOutageContext(ctx, []int{line}, 2)
	if err != nil {
		return err
	}
	want, err := sys.DetectBatchContext(ctx, samples)
	if err != nil {
		return err
	}
	body, err := json.Marshal(api.DetectRequest{Shard: "smoke", Samples: samples})
	if err != nil {
		return err
	}

	detect := func() error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, rtSrv.base+"/v1/detect", bytes.NewReader(body))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/json")
		req.Header.Set(api.EvalScenarioHeader, "outage-line-"+strconv.Itoa(line))
		req.Header.Set(api.EvalTruthHeader, strconv.Itoa(line))
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			return err
		}
		defer func() { _ = resp.Body.Close() }()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("detect via router: HTTP %d: %s", resp.StatusCode, data)
		}
		var out api.DetectResponse
		if err := json.Unmarshal(data, &out); err != nil {
			return err
		}
		if err := httpserve.CompareReports(out.Reports, want); err != nil {
			return fmt.Errorf("routed reports differ from the library answer: %w", err)
		}
		return nil
	}

	// Phase 1: both primaries serving. Then kill one mid-stream and keep
	// going — every detect must still succeed (the router fails in-flight
	// requests over to the surviving backend) and keep answering
	// byte-identically.
	for i := 0; i < 10; i++ {
		if err := detect(); err != nil {
			return fmt.Errorf("fleet detect %d: %w", i, err)
		}
	}
	killed := make(chan error, 1)
	go func() { killed <- primA.kill() }()
	for i := 10; i < 30; i++ {
		if err := detect(); err != nil {
			return fmt.Errorf("detect %d after backend kill: %w", i, err)
		}
	}
	if err := <-killed; err != nil {
		return fmt.Errorf("killing backend: %w", err)
	}

	// The canary report: every pair must be byte-identical (same model on
	// both arms) and the gates must pass.
	var report api.CanaryReport
	if err := getJSON(ctx, rtSrv.base+"/v1/canary/report", &report); err != nil {
		return err
	}
	if report.Pairs == 0 {
		return errors.New("canary report has no shadow pairs")
	}
	if report.Identical != report.Pairs || report.Mismatched != 0 {
		return fmt.Errorf("shadow responses not byte-identical: %d/%d identical, %d mismatched",
			report.Identical, report.Pairs, report.Mismatched)
	}
	if !report.Promotable {
		return fmt.Errorf("canary report not promotable: %v", report.Reasons)
	}

	// Promotion: the surviving primary reloads onto the candidate by
	// fingerprint, which exercises the registry's conditional pull — the
	// artifact is already cached from boot, so the second fetch must be
	// answered 304 Not Modified.
	var promoted api.PromoteResponse
	if err := postJSON(ctx, rtSrv.base+"/v1/canary/promote", api.PromoteRequest{}, &promoted); err != nil {
		return err
	}
	// The killed primary cannot reload, so the promotion must flag itself
	// incomplete at the top level — a split fleet is never a silent 200.
	if !promoted.Failed {
		return errors.New("promotion with a dead backend did not set failed")
	}
	reloaded := 0
	for _, br := range promoted.Results {
		if br.Backend == primB.srv.base && br.Error == "" {
			for _, res := range br.Results {
				if res.Model != fp {
					return fmt.Errorf("promotion loaded model %s, want candidate %s", res.Model, fp)
				}
				reloaded++
			}
		}
	}
	if reloaded == 0 {
		return errors.New("promotion reloaded no shard on the surviving backend")
	}
	if pulls, notMod := primB.reg.Stats(); notMod == 0 {
		return fmt.Errorf("registry conditional pull not exercised: %d pulls, %d not-modified", pulls, notMod)
	}
	if err := detect(); err != nil {
		return fmt.Errorf("detect after promotion: %w", err)
	}
	return nil
}

// smokeBackend is one in-process outaged: a service booted from the
// registry by fingerprint behind a real HTTP listener.
type smokeBackend struct {
	svc *service.Service
	reg *registry.Client
	srv *smokeServer
}

func newSmokeBackend(ctx context.Context, regURL, fp string, opts pmuoutage.Options, logger *slog.Logger) (*smokeBackend, error) {
	reg, err := registry.NewClient(regURL, nil)
	if err != nil {
		return nil, err
	}
	model, err := reg.Model(ctx, fp)
	if err != nil {
		return nil, err
	}
	svc, err := service.New(ctx, service.Config{
		Shards: []service.ShardSpec{{Name: "smoke", Opts: opts, Model: model}},
		Logger: logger,
	})
	if err != nil {
		return nil, err
	}
	hs := httpserve.New(svc, 30*time.Second, logger)
	hs.SetModelSource(reg)
	srv, err := newSmokeServer(hs.Routes())
	if err != nil {
		svc.Close()
		return nil, err
	}
	return &smokeBackend{svc: svc, reg: reg, srv: srv}, nil
}

// kill tears the backend down abruptly — in-flight proxied requests see
// a transport error, which is exactly the fail-over case under test.
func (b *smokeBackend) kill() error {
	err := b.srv.httpSrv.Close()
	b.svc.Close()
	return err
}

func (b *smokeBackend) stop() {
	b.srv.stop()
	b.svc.Close()
}

// smokeServer serves a handler on an ephemeral localhost port.
type smokeServer struct {
	base    string
	httpSrv *http.Server
	done    chan error
}

func newSmokeServer(h http.Handler) (*smokeServer, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	s := &smokeServer{
		base:    "http://" + ln.Addr().String(),
		httpSrv: &http.Server{Handler: h},
		done:    make(chan error, 1),
	}
	go func() { s.done <- s.httpSrv.Serve(ln) }()
	return s, nil
}

func (s *smokeServer) stop() {
	_ = s.httpSrv.Close()
	<-s.done
}

func getJSON(ctx context.Context, url string, out any) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	return doJSON(req, out)
}

func postJSON(ctx context.Context, url string, in, out any) error {
	body, err := json.Marshal(in)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	return doJSON(req, out)
}

func doJSON(req *http.Request, out any) error {
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return err
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("%s %s: HTTP %d: %s", req.Method, req.URL.Path, resp.StatusCode, data)
	}
	return json.Unmarshal(data, out)
}
