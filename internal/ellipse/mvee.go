package ellipse

import (
	"math"
)

// FitMVEE computes the minimum-volume enclosing ellipse of the 2-D
// points by Khachiyan's algorithm — the tightest ellipse satisfying
// Eq. (4) exactly, as opposed to Fit's covariance-scaled approximation.
// margin > 1 inflates the result the same way Fit's margin does. tol
// controls the Khachiyan duality gap (default 1e-7).
//
// MVEE is the rigorous reading of "all PMU voltage phasor data are
// inside the ellipse": the covariance fit can be badly loose when the
// training cloud has outliers in one direction. The detect package
// exposes it as an alternative via Config.UseMVEE; the ablation bench
// compares the two.
func FitMVEE(vm, va []float64, margin, tol float64) (*Ellipse, error) {
	n := len(vm)
	if n < 2 || len(va) != n {
		return nil, ErrTooFewPoints
	}
	if margin <= 0 {
		margin = 1.1
	}
	if tol <= 0 {
		tol = 1e-7
	}
	// Degenerate clouds (collinear or constant) make the Khachiyan
	// system singular; jitter floor mirrors Fit's variance floor.
	const floor = 1e-10

	// Khachiyan's algorithm in d = 2: lift points to Q = [x; y; 1],
	// iterate weights u. M_j = q_jᵀ (Q diag(u) Qᵀ)⁻¹ q_j.
	u := make([]float64, n)
	for i := range u {
		u[i] = 1 / float64(n)
	}
	const d = 2
	maxIter := 2000
	for iter := 0; iter < maxIter; iter++ {
		// Build S = Σ u_j q_j q_jᵀ (3x3, symmetric).
		var s [3][3]float64
		for j := 0; j < n; j++ {
			q := [3]float64{vm[j], va[j], 1}
			for a := 0; a < 3; a++ {
				for b := 0; b < 3; b++ {
					s[a][b] += u[j] * q[a] * q[b]
				}
			}
		}
		s[0][0] += floor
		s[1][1] += floor
		inv, ok := invert3(s)
		if !ok {
			return nil, ErrTooFewPoints
		}
		// Find the point with maximum Mahalanobis value.
		maxM, maxJ := -1.0, 0
		for j := 0; j < n; j++ {
			q := [3]float64{vm[j], va[j], 1}
			var m float64
			for a := 0; a < 3; a++ {
				for b := 0; b < 3; b++ {
					m += q[a] * inv[a][b] * q[b]
				}
			}
			if m > maxM {
				maxM, maxJ = m, j
			}
		}
		// Convergence: maxM <= (d+1)(1+tol).
		if maxM <= float64(d+1)*(1+tol) {
			break
		}
		step := (maxM - float64(d+1)) / (float64(d+1) * (maxM - 1))
		for j := range u {
			u[j] *= 1 - step
		}
		u[maxJ] += step
	}

	// Center c = Σ u_j p_j; shape A = (1/d) (Σ u_j p_j p_jᵀ − c cᵀ)⁻¹.
	var cx, cy float64
	for j := 0; j < n; j++ {
		cx += u[j] * vm[j]
		cy += u[j] * va[j]
	}
	var pxx, pxy, pyy float64
	for j := 0; j < n; j++ {
		pxx += u[j] * vm[j] * vm[j]
		pxy += u[j] * vm[j] * va[j]
		pyy += u[j] * va[j] * va[j]
	}
	pxx -= cx * cx
	pxy -= cx * cy
	pyy -= cy * cy
	if pxx < floor {
		pxx = floor
	}
	if pyy < floor {
		pyy = floor
	}
	det := pxx*pyy - pxy*pxy
	if det <= 0 {
		maxCross := math.Sqrt(pxx*pyy) * 0.999
		if pxy > maxCross {
			pxy = maxCross
		}
		if pxy < -maxCross {
			pxy = -maxCross
		}
		det = pxx*pyy - pxy*pxy
	}
	inv11 := pyy / det
	inv12 := -pxy / det
	inv22 := pxx / det
	scale := 1 / (float64(d) * margin * margin)
	e := &Ellipse{
		C: [2]float64{cx, cy},
		A: [3]float64{inv11 * scale, inv12 * scale, inv22 * scale},
	}
	// Khachiyan converges to tolerance, not exactly; inflate minimally
	// so the Eq. (4) containment contract holds for every input point.
	var maxQ float64
	for j := 0; j < n; j++ {
		if q := e.Quad(vm[j], va[j]); q > maxQ {
			maxQ = q
		}
	}
	if maxQ > 1 {
		e.A[0] /= maxQ
		e.A[1] /= maxQ
		e.A[2] /= maxQ
	}
	return e, nil
}

// invert3 inverts a symmetric 3x3 matrix; ok is false when singular.
func invert3(m [3][3]float64) ([3][3]float64, bool) {
	a, b, c := m[0][0], m[0][1], m[0][2]
	d, e, f := m[1][0], m[1][1], m[1][2]
	g, h, i := m[2][0], m[2][1], m[2][2]
	det := a*(e*i-f*h) - b*(d*i-f*g) + c*(d*h-e*g)
	if det == 0 || math.IsNaN(det) || math.IsInf(det, 0) { //gridlint:ignore floatcmp exact-zero determinant means singular by construction; near-singular handled by caller's conditioning floor
		return [3][3]float64{}, false
	}
	inv := [3][3]float64{
		{(e*i - f*h) / det, (c*h - b*i) / det, (b*f - c*e) / det},
		{(f*g - d*i) / det, (a*i - c*g) / det, (c*d - a*f) / det},
		{(d*h - e*g) / det, (b*g - a*h) / det, (a*e - b*d) / det},
	}
	return inv, true
}
