// Package api holds the HTTP wire types of the outage-detection
// serving tier: the request/response bodies of every /v1 endpoint that
// cmd/outaged serves, the artifact payloads of the model registry, and
// the fleet-level types cmd/outagerouter adds on top. The client
// package, internal/httpserve, internal/registry, and internal/router
// all consume these definitions, so a field added or renamed here is
// the single source of truth for both sides of the wire — there are no
// private mirror structs to drift out of sync (round-trip tests pin the
// encoded field names).
//
// Every exported struct field carries an explicit json tag (enforced by
// the gridlint modelio analyzer): the wire name is pinned to the tag,
// never to the Go identifier, so renaming a field in code cannot
// silently break deployed clients.
package api

import "pmuoutage"

// DetectRequest is the body of POST /v1/detect.
type DetectRequest struct {
	Shard   string             `json:"shard"`
	Samples []pmuoutage.Sample `json:"samples"`
}

// DetectResponse is its reply: one report per sample, in order —
// exactly what the shard's System.DetectBatch returns.
type DetectResponse struct {
	Shard   string              `json:"shard"`
	Reports []*pmuoutage.Report `json:"reports"`
}

// IngestRequest is the JSON body of POST /v1/ingest. (Binary-mode
// ingest posts one encoded wire frame instead; see internal/httpserve.)
type IngestRequest struct {
	Shard  string           `json:"shard"`
	Sample pmuoutage.Sample `json:"sample"`
}

// IngestResponse carries the confirmed event, if the sample triggered
// one. Binary-mode ingest answers with the same shape.
type IngestResponse struct {
	Shard string           `json:"shard"`
	Event *pmuoutage.Event `json:"event"`
}

// ReloadRequest is the body of POST /v1/reload: swap the named shard
// onto a new model. Exactly one source may be set — Path names an
// artifact file on the daemon's filesystem, Fingerprint names an
// artifact in the daemon's configured model registry (pulled with a
// conditional GET and verified against the fingerprint on receipt),
// PatchPath names an incremental patch file applied to the model the
// shard is currently serving (the patch is fingerprint-pinned to
// exactly one base, so a shard on any other model rejects it) — or
// none of the three, which retrains from the shard's options.
type ReloadRequest struct {
	Shard       string `json:"shard"`
	Path        string `json:"path,omitempty"`
	Fingerprint string `json:"fingerprint,omitempty"`
	PatchPath   string `json:"patch_path,omitempty"`
}

// ReloadResult reports the shard's new incarnation after the swap: the
// bumped generation counter and the fingerprint of the model now
// serving.
type ReloadResult struct {
	Shard      string `json:"shard"`
	Generation uint64 `json:"generation"`
	Model      string `json:"model"`
}

// ShardStatus is one shard's public state snapshot — the element type
// of GET /v1/shards.
type ShardStatus struct {
	Name       string `json:"name"`
	Case       string `json:"case"`
	State      string `json:"state"`
	Err        string `json:"err,omitempty"`
	Buses      int    `json:"buses,omitempty"`
	Lines      int    `json:"lines,omitempty"`
	Restarts   uint64 `json:"restarts"`
	QueueDepth int    `json:"queue_depth"`
	// Replicas is the number of serve loops sharing the shard's model.
	Replicas int `json:"replicas"`
	// Generation counts model activations (initial training, rebuilds,
	// hot reloads); it bumps exactly when Model may have changed.
	Generation uint64 `json:"generation"`
	// Model is the serving model's content fingerprint.
	Model string `json:"model,omitempty"`
}

// ShardSnapshot is a point-in-time copy of one shard's counters — the
// value type of GET /v1/stats. Latency fields derive from the
// detect-stage histogram, the same cells GET /metrics renders.
type ShardSnapshot struct {
	Requests     uint64  `json:"requests"`
	Ingests      uint64  `json:"ingests"`
	Samples      uint64  `json:"samples"`
	Batches      uint64  `json:"batches"`
	Shed         uint64  `json:"shed"`
	Unavailable  uint64  `json:"unavailable"`
	Restarts     uint64  `json:"restarts"`
	Reloads      uint64  `json:"reloads"`
	FramesJSON   uint64  `json:"frames_json"`
	FramesBinary uint64  `json:"frames_binary"`
	FramesStream uint64  `json:"frames_stream"`
	MaxBatch     int     `json:"max_batch"`
	AvgBatch     float64 `json:"avg_batch"`
	AvgLatencyMS float64 `json:"avg_latency_ms"`
	P50LatencyMS float64 `json:"p50_latency_ms"`
	P95LatencyMS float64 `json:"p95_latency_ms"`
	P99LatencyMS float64 `json:"p99_latency_ms"`
	QueueDepth   int     `json:"queue_depth"`
	// Stages maps pipeline stage name (queue/coalesce/detect/encode)
	// to its cumulative latency histogram in seconds; the fleet
	// aggregator merges these across backends with Hist.Merge.
	Stages map[string]Hist `json:"stages,omitempty"`
}

// ErrorEnvelope is the uniform error body every daemon and the router
// answer with on a non-2xx status. Code is the stable machine-readable
// classification clients branch on (status text and Error are for
// humans and may change); Retryable mirrors the Retry-After header so
// non-HTTP-savvy clients can branch on the JSON; TraceID names the
// failing request in the server's structured logs.
type ErrorEnvelope struct {
	Code      Code   `json:"code,omitempty"`
	Error     string `json:"error"`
	Retryable bool   `json:"retryable"`
	TraceID   string `json:"trace_id,omitempty"`
}

// ModelInfo describes one artifact in the model registry.
type ModelInfo struct {
	// Fingerprint is the hex SHA-256 content fingerprint — the artifact's
	// registry key and its ETag on GET /v1/models/{fingerprint}.
	Fingerprint string `json:"fingerprint"`
	// Case is the grid case the model was trained on.
	Case string `json:"case"`
	// FormatVersion is the artifact format version the model carries.
	FormatVersion int `json:"format_version"`
	// Bytes is the encoded artifact size.
	Bytes int64 `json:"bytes"`
}

// ModelList is the reply of GET /v1/models.
type ModelList struct {
	Models []ModelInfo `json:"models"`
}

// BackendStatus is one backend's state as the router sees it — the
// element type of the router's GET /v1/backends pools.
type BackendStatus struct {
	URL string `json:"url"`
	// Healthy reports whether the backend is currently admitted to the
	// balancing rotation.
	Healthy bool `json:"healthy"`
	// Ejections counts how many times the backend has been ejected.
	Ejections uint64 `json:"ejections"`
	// InFlight is the number of proxied requests currently outstanding.
	InFlight int `json:"in_flight"`
	// QueueDepth is the backend's own queued-sample count from its last
	// /v1/stats probe (summed over shards).
	QueueDepth int `json:"queue_depth"`
	// LastError is the most recent probe or proxy failure ("" when the
	// backend is clean).
	LastError string `json:"last_error,omitempty"`
	// Shards is the backend's shard listing from its last successful
	// probe.
	Shards []ShardStatus `json:"shards,omitempty"`
}

// FleetStatus is the router's GET /v1/backends reply.
type FleetStatus struct {
	Primary []BackendStatus `json:"primary"`
	Canary  []BackendStatus `json:"canary,omitempty"`
}

// FleetReload is the router's POST /v1/reload reply: one entry per
// primary backend the reload was broadcast to. Failed is the top-level
// signal that at least one backend's reload errored — callers must not
// have to scan Results to notice a split fleet.
type FleetReload struct {
	Results []BackendReload `json:"results"`
	Failed  bool            `json:"failed,omitempty"`
}

// BackendReload is one backend's outcome within a fleet-wide reload or
// promotion.
type BackendReload struct {
	Backend string         `json:"backend"`
	Results []ReloadResult `json:"results,omitempty"`
	Error   string         `json:"error,omitempty"`
}

// ArmStats aggregates detection quality over one arm (primary or
// canary) of a canary evaluation. IA and FA follow the paper's Eq. (12)
// over the truth sets supplied with the evaluated traffic.
type ArmStats struct {
	// Detections is the number of reports scored into the averages.
	Detections int     `json:"detections"`
	Errors     uint64  `json:"errors"`
	IA         float64 `json:"ia"`
	FA         float64 `json:"fa"`
}

// ScenarioDiff compares the two arms over one labelled scenario (one
// X-Eval-Scenario key).
type ScenarioDiff struct {
	Scenario string `json:"scenario"`
	// Truth is the scenario's true outage line set (from X-Eval-Truth).
	Truth   []int    `json:"truth,omitempty"`
	Primary ArmStats `json:"primary"`
	Canary  ArmStats `json:"canary"`
	// DeltaIA and DeltaFA are canary minus primary: a promotable
	// candidate keeps DeltaIA from going negative and DeltaFA from going
	// positive beyond the gate tolerances.
	DeltaIA float64 `json:"delta_ia"`
	DeltaFA float64 `json:"delta_fa"`
}

// DivergenceSummary summarises the per-pair score divergence histogram:
// the largest absolute difference between the primary and canary
// reports' numeric outputs (deviation energy and node scores) across
// every shadow pair.
type DivergenceSummary struct {
	Count uint64  `json:"count"`
	Max   float64 `json:"max"`
	Mean  float64 `json:"mean"`
	P50   float64 `json:"p50"`
	P95   float64 `json:"p95"`
	P99   float64 `json:"p99"`
}

// CanaryReport is the router's structured canary evaluation — the GET
// /v1/canary/report reply and the evidence a promotion is gated on.
type CanaryReport struct {
	// Candidate is the fingerprint under evaluation ("" when the router
	// was started without one).
	Candidate string `json:"candidate,omitempty"`
	// Requests counts detect requests the router has routed while the
	// canary was configured.
	Requests uint64 `json:"requests"`
	// CanaryServed counts detect requests answered by the canary pool
	// (percent routing).
	CanaryServed uint64 `json:"canary_served"`
	// Pairs counts shadow copies compared against their primary answer.
	Pairs uint64 `json:"pairs"`
	// Identical counts pairs whose response bodies were byte-identical.
	Identical uint64 `json:"identical"`
	// Mismatched counts pairs that differed in any byte.
	Mismatched    uint64            `json:"mismatched"`
	PrimaryErrors uint64            `json:"primary_errors"`
	CanaryErrors  uint64            `json:"canary_errors"`
	Scenarios     []ScenarioDiff    `json:"scenarios,omitempty"`
	Divergence    DivergenceSummary `json:"divergence"`
	// Promotable reports whether every gate passed; Reasons lists the
	// gates that failed when it is false.
	Promotable bool     `json:"promotable"`
	Reasons    []string `json:"reasons,omitempty"`
}

// PromoteRequest is the body of the router's POST /v1/canary/promote:
// reload every primary backend onto the candidate artifact, provided
// the canary report's gates pass.
type PromoteRequest struct {
	// Fingerprint names the candidate artifact in the backends'
	// configured registry; empty defaults to the router's -candidate.
	Fingerprint string `json:"fingerprint,omitempty"`
	// Shards limits the promotion to the named shards; empty promotes
	// every ready shard on each backend.
	Shards []string `json:"shards,omitempty"`
	// Force skips the report gates (operator override).
	Force bool `json:"force,omitempty"`
}

// PromoteResponse carries the gating report alongside the per-backend
// reload outcomes. Failed reports that at least one backend's reload
// errored: the promotion is incomplete and the fleet may be split
// across models (the router also answers 502 when no backend
// succeeded at all).
type PromoteResponse struct {
	Report  CanaryReport    `json:"report"`
	Results []BackendReload `json:"results"`
	Failed  bool            `json:"failed,omitempty"`
}

// ExperimentRequest is the body of POST /v1/experiments on an
// experiments worker (cmd/experiments -serve): run one figure over the
// given scope and return its rows. The fields mirror cmd/experiments'
// flags; zero values take the package defaults.
type ExperimentRequest struct {
	Figure     string   `json:"figure"`
	Systems    []string `json:"systems,omitempty"`
	TrainSteps int      `json:"train_steps,omitempty"`
	TestSteps  int      `json:"test_steps,omitempty"`
	Seed       int64    `json:"seed,omitempty"`
	UseDC      bool     `json:"use_dc,omitempty"`
	Clusters   int      `json:"clusters,omitempty"`
	Workers    int      `json:"workers,omitempty"`
}

// ExperimentRow is one measured figure point, mirroring
// internal/experiments.Row.
type ExperimentRow struct {
	Figure string  `json:"figure"`
	System string  `json:"system"`
	Method string  `json:"method"`
	X      float64 `json:"x"`
	IA     float64 `json:"ia"`
	FA     float64 `json:"fa"`
	N      int     `json:"n"`
}

// ExperimentResponse is the worker's reply: rows in the figure's
// deterministic order.
type ExperimentResponse struct {
	Rows []ExperimentRow `json:"rows"`
}

// Evaluation headers: a caller driving labelled traffic through the
// router tags each request so the canary differ can attribute responses
// to scenarios and score IA/FA against the truth. Backends ignore both.
const (
	// EvalScenarioHeader names the scenario a request belongs to (any
	// stable string, e.g. "outage-line-5").
	EvalScenarioHeader = "X-Eval-Scenario"
	// EvalTruthHeader carries the scenario's true outage line indices as
	// comma-separated integers ("" or absent means unlabelled).
	EvalTruthHeader = "X-Eval-Truth"
)
