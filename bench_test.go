package pmuoutage

// Benchmarks mirror the paper's evaluation: one benchmark per figure of
// §V (see DESIGN.md for the index), plus ablation and substrate
// micro-benchmarks. Each figure benchmark runs the corresponding
// experiment harness and reports the measured identification accuracy
// and false-alarm rate as custom metrics (IA, FA), so
//
//	go test -bench=. -benchmem
//
// regenerates both the timings and the paper-shape numbers. The bench
// configuration uses the DC power-flow substrate and the two smaller
// systems to stay fast; cmd/experiments runs the full AC configuration
// over all four systems.

import (
	"context"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/experiments"
	"pmuoutage/internal/mat"
	"pmuoutage/internal/mlr"
	"pmuoutage/internal/pmunet"
	"pmuoutage/internal/powerflow"
)

func benchCfg(systems ...string) experiments.Config {
	if len(systems) == 0 {
		systems = []string{"ieee14", "ieee30"}
	}
	return experiments.Config{
		Systems:    systems,
		TrainSteps: 30,
		TestSteps:  8,
		Seed:       1,
		UseDC:      true,
	}
}

// reportRows attaches the aggregate IA/FA of the subspace method (and
// the MLR baseline when present) to the benchmark output.
func reportRows(b *testing.B, rows []experiments.Row) {
	b.Helper()
	var subIA, subFA, mlrIA, mlrFA float64
	var nSub, nMLR int
	for _, r := range rows {
		switch r.Method {
		case "mlr":
			mlrIA += r.IA
			mlrFA += r.FA
			nMLR++
		default:
			subIA += r.IA
			subFA += r.FA
			nSub++
		}
	}
	if nSub > 0 {
		b.ReportMetric(subIA/float64(nSub), "IA")
		b.ReportMetric(subFA/float64(nSub), "FA")
	}
	if nMLR > 0 {
		b.ReportMetric(mlrIA/float64(nMLR), "IA-mlr")
		b.ReportMetric(mlrFA/float64(nMLR), "FA-mlr")
	}
}

// BenchmarkFig4DetectionGroups regenerates Figure 4: IA/FA as the
// detection groups move from the naive PCA-orthogonal choice to the
// proposed capability-based formation.
func BenchmarkFig4DetectionGroups(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig4(context.Background(), benchCfg("ieee14"))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkFig5CompleteData regenerates Figure 5: the complete-data
// case, subspace vs MLR.
func BenchmarkFig5CompleteData(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig5(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkFig7MissingOutageData regenerates Figure 7: data missing at
// the outage location.
func BenchmarkFig7MissingOutageData(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig7(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkFig8RandomMissingNormal regenerates Figure 8: normal samples
// with random missing points — distinguishing data problems from
// physical failures.
func BenchmarkFig8RandomMissingNormal(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig8(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkFig9RandomMissingOutage regenerates Figure 9: outage samples
// with missing data uncorrelated with the outage location.
func BenchmarkFig9RandomMissingOutage(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig9(context.Background(), benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkFig10Reliability regenerates Figure 10: effective FA under
// the Eq. (13)-(15) PMU-network reliability model.
func BenchmarkFig10Reliability(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Fig10(context.Background(), benchCfg("ieee14"))
		if err != nil {
			b.Fatal(err)
		}
	}
	reportRows(b, rows)
}

// BenchmarkAblationProximity compares the projection-residual proximity
// against the literal Eq. (9) regressor, Eq. (11) scaling on/off, and
// the measurement channels (the DESIGN.md ablations).
func BenchmarkAblationProximity(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Ablation(context.Background(), benchCfg("ieee14"))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%s", r.String())
	}
	reportRows(b, rows)
}

// --- parallel-pipeline benchmarks ---
//
// These two run the worker-pooled stages with Workers = 0 (GOMAXPROCS),
// so `go test -bench=Pipeline -cpu 1,4` measures the sequential baseline
// and the 4-way speedup of the same byte-identical computation.
// cmd/benchpipeline runs the identical workloads standalone and writes
// BENCH_pipeline.json for `make bench`.

// BenchmarkPipelineTrainIEEE30 measures the parallel training path —
// per-line SVDs, per-node subspaces, Eq. 5–7 capability tables — at the
// current GOMAXPROCS.
func BenchmarkPipelineTrainIEEE30(b *testing.B) {
	g := cases.IEEE30()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.TrainContext(ctx, d, nw, detect.Config{Workers: 0}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipelineFig10MonteCarlo measures the sharded Fig. 10 Monte
// Carlo reliability estimator at the current GOMAXPROCS.
func BenchmarkPipelineFig10MonteCarlo(b *testing.B) {
	g := cases.IEEE30()
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	rel := pmunet.Reliability{RPMU: 0.97, RLink: 0.99}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.ReliabilityMonteCarlo(ctx, rel, 100000, 1, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---

// BenchmarkTrainDetectorIEEE30 measures end-to-end training (data
// generation excluded) on the 30-bus system.
func BenchmarkTrainDetectorIEEE30(b *testing.B) {
	g := cases.IEEE30()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true})
	if err != nil {
		b.Fatal(err)
	}
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := detect.Train(d, nw, detect.Config{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectSingleSample measures one online detection — the
// latency that matters for the paper's "timely detection" claim.
func BenchmarkDetectSingleSample(b *testing.B) {
	g := cases.IEEE30()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true})
	if err != nil {
		b.Fatal(err)
	}
	nw, _ := pmunet.Build(g, 3)
	det, err := detect.Train(d, nw, detect.Config{})
	if err != nil {
		b.Fatal(err)
	}
	sample := d.Outages[d.ValidLines[0]].Samples[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := det.Detect(sample); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMLRTrainIEEE14 measures baseline training.
func BenchmarkMLRTrainIEEE14(b *testing.B) {
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mlr.Train(d, mlr.Config{Epochs: 100}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkACPowerFlowIEEE118 measures one cold Newton-Raphson solve of
// the largest system — the inner loop of data generation.
func BenchmarkACPowerFlowIEEE118(b *testing.B) {
	g := cases.IEEE118()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := powerflow.SolveAC(g, powerflow.Options{FlatStart: true}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDatasetGenerateIEEE14AC measures the full AC data-generation
// pipeline for the smallest system.
func BenchmarkDatasetGenerateIEEE14AC(b *testing.B) {
	g := cases.IEEE14()
	for i := 0; i < b.N; i++ {
		if _, err := dataset.Generate(g, dataset.GenConfig{Steps: 10, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVDPhasorMatrix measures the SVD at the shape used by
// subspace learning on the largest system (118 features x 40 samples).
func BenchmarkSVDPhasorMatrix(b *testing.B) {
	x := mat.NewDense(118, 40)
	for i := 0; i < 118; i++ {
		for j := 0; j < 40; j++ {
			x.Set(i, j, float64((i*37+j*11)%100)/100)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mat.FactorSVD(x)
	}
}

// BenchmarkExtensionRecovery runs the recover-then-classify extension
// study: plain MLR vs MLR with [8]-style subspace imputation vs the
// recovery-free subspace method on the Fig. 7 scenario.
func BenchmarkExtensionRecovery(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Recovery(context.Background(), benchCfg("ieee14"))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%s", r.String())
	}
	reportRows(b, rows)
}

// BenchmarkExtensionMultiOutage runs the severe-event extension: two
// lines of one node out simultaneously, with and without that node's
// PMU.
func BenchmarkExtensionMultiOutage(b *testing.B) {
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.MultiOutage(context.Background(), benchCfg("ieee14"))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.Logf("%s", r.String())
	}
	reportRows(b, rows)
}
