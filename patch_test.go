package pmuoutage

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
)

// patchTestLines picks two learnable lines of the model to refresh.
func patchTestLines(t *testing.T, m *Model) []int {
	t.Helper()
	sys, err := NewSystemFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	valid := sys.ValidLines()
	if len(valid) < 2 {
		t.Fatalf("fixture has only %d valid lines", len(valid))
	}
	return []int{valid[1], valid[4]}
}

// TestPatchIdentity is the strongest possible patch invariant: a patch
// trained under the base model's own seed regenerates exactly the data
// the base was trained on, so applying it must reproduce the base
// model bit for bit — same fingerprint, same encoded artifact.
func TestPatchIdentity(t *testing.T) {
	m := trainTestModel(t)
	p, err := TrainModelPatch(m, PatchSpec{Lines: patchTestLines(t, m), Seed: m.Options().Seed})
	if err != nil {
		t.Fatal(err)
	}
	if p.ResultFingerprint() != m.Fingerprint() {
		t.Fatalf("same-seed patch promises result %s, want base %s",
			p.ResultFingerprint(), m.Fingerprint())
	}
	got, err := p.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := m.Encode(&a); err != nil {
		t.Fatal(err)
	}
	if err := got.Encode(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("same-seed patch does not reproduce the base artifact bytes")
	}
}

// TestPatchRoundTripServes: a fresh-seed patch round-trips through the
// codec, applies to a new model that serves, and keeps the base
// options; the sealed result fingerprint matches what Apply produces.
func TestPatchRoundTripServes(t *testing.T) {
	m := trainTestModel(t)
	lines := patchTestLines(t, m)
	p, err := TrainModelPatch(m, PatchSpec{Lines: lines, Seed: 99})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Lines(); !reflect.DeepEqual(got, lines) {
		t.Fatalf("patch lines %v, want %v", got, lines)
	}
	if p.BaseFingerprint() != m.Fingerprint() {
		t.Fatalf("patch pins base %s, want %s", p.BaseFingerprint(), m.Fingerprint())
	}

	var buf bytes.Buffer
	if err := p.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	p2, err := DecodePatch(&buf)
	if err != nil {
		t.Fatal(err)
	}
	next, err := p2.Apply(m)
	if err != nil {
		t.Fatal(err)
	}
	if next.Fingerprint() != p.ResultFingerprint() {
		t.Fatalf("applied model %s, patch promised %s", next.Fingerprint(), p.ResultFingerprint())
	}
	if next.Fingerprint() == m.Fingerprint() {
		t.Fatal("fresh-seed patch left the model unchanged")
	}
	if !reflect.DeepEqual(next.Options(), m.Options()) {
		t.Fatal("patch changed the facade options")
	}
	sys, err := NewSystemFromModel(next)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := sys.SimulateOutage([]int{lines[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Detect(samples[0]); err != nil {
		t.Fatal(err)
	}
}

// TestPatchErrors covers the facade patch error surface: empty specs,
// bad line indices, wrong bases, and nil receivers all answer the
// typed sentinels.
func TestPatchErrors(t *testing.T) {
	m := trainTestModel(t)
	lines := patchTestLines(t, m)

	t.Run("no lines", func(t *testing.T) {
		if _, err := TrainModelPatch(m, PatchSpec{Seed: 9}); !errors.Is(err, ErrBadPatch) {
			t.Fatalf("got %v, want ErrBadPatch", err)
		}
	})
	t.Run("bad line", func(t *testing.T) {
		if _, err := TrainModelPatch(m, PatchSpec{Lines: []int{-1}, Seed: 9}); !errors.Is(err, ErrBadLine) {
			t.Fatalf("got %v, want ErrBadLine", err)
		}
	})
	t.Run("wrong base", func(t *testing.T) {
		p, err := TrainModelPatch(m, PatchSpec{Lines: lines, Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		other, err := TrainModel(Options{Case: "ieee14", TrainSteps: 12, Seed: 8, UseDC: true, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := p.Apply(other); !errors.Is(err, ErrPatchBase) {
			t.Fatalf("got %v, want ErrPatchBase", err)
		}
	})
	t.Run("nil", func(t *testing.T) {
		var p *Patch
		if _, err := p.Apply(m); !errors.Is(err, ErrBadPatch) {
			t.Fatalf("got %v, want ErrBadPatch", err)
		}
		if err := p.Encode(&bytes.Buffer{}); !errors.Is(err, ErrBadPatch) {
			t.Fatalf("got %v, want ErrBadPatch", err)
		}
		if _, err := TrainModelPatch(nil, PatchSpec{Lines: lines}); !errors.Is(err, ErrBadModel) {
			t.Fatalf("got %v, want ErrBadModel", err)
		}
	})
}
