package mat

import (
	"errors"
	"fmt"
	"math"
)

// ErrSingular is returned when a factorization or solve encounters a
// (numerically) singular matrix.
var ErrSingular = errors.New("mat: matrix is singular")

// LU holds an LU factorization with partial pivoting: P*A = L*U.
type LU struct {
	lu   *Dense // combined L (unit lower) and U storage
	piv  []int  // row permutation
	sign int    // determinant sign of the permutation
}

// FactorLU computes the LU factorization of the square matrix a with
// partial pivoting. It returns ErrSingular when a pivot underflows.
func FactorLU(a *Dense) (*LU, error) {
	n := a.rows
	if a.cols != n {
		return nil, fmt.Errorf("mat: FactorLU requires square matrix, got %dx%d", a.rows, a.cols)
	}
	lu := a.Clone()
	piv := make([]int, n)
	for i := range piv {
		piv[i] = i
	}
	sign := 1
	for k := 0; k < n; k++ {
		// Pivot: largest |value| in column k at or below the diagonal.
		p := k
		mx := math.Abs(lu.data[k*n+k])
		for i := k + 1; i < n; i++ {
			if a := math.Abs(lu.data[i*n+k]); a > mx {
				mx, p = a, i
			}
		}
		if mx == 0 || math.IsNaN(mx) { //gridlint:ignore floatcmp LAPACK-style exact-zero pivot column means structurally singular
			return nil, ErrSingular
		}
		if p != k {
			rk := lu.data[k*n : (k+1)*n]
			rp := lu.data[p*n : (p+1)*n]
			for j := range rk {
				rk[j], rp[j] = rp[j], rk[j]
			}
			piv[k], piv[p] = piv[p], piv[k]
			sign = -sign
		}
		pivVal := lu.data[k*n+k]
		for i := k + 1; i < n; i++ {
			m := lu.data[i*n+k] / pivVal
			lu.data[i*n+k] = m
			if m == 0 { //gridlint:ignore floatcmp exact-zero multiplier skip; near-zero still eliminates correctly
				continue
			}
			ri := lu.data[i*n : (i+1)*n]
			rk := lu.data[k*n : (k+1)*n]
			for j := k + 1; j < n; j++ {
				ri[j] -= m * rk[j]
			}
		}
	}
	return &LU{lu: lu, piv: piv, sign: sign}, nil
}

// Solve solves A*x = b for a single right-hand side.
func (f *LU) Solve(b []float64) ([]float64, error) {
	n := f.lu.rows
	if len(b) != n {
		return nil, fmt.Errorf("mat: LU.Solve rhs length %d != %d", len(b), n)
	}
	x := make([]float64, n)
	// Apply permutation.
	for i, p := range f.piv {
		x[i] = b[p]
	}
	// Forward substitution with unit lower triangle.
	for i := 1; i < n; i++ {
		row := f.lu.data[i*n : (i+1)*n]
		var s float64
		for j := 0; j < i; j++ {
			s += row[j] * x[j]
		}
		x[i] -= s
	}
	// Back substitution with upper triangle.
	for i := n - 1; i >= 0; i-- {
		row := f.lu.data[i*n : (i+1)*n]
		s := x[i]
		for j := i + 1; j < n; j++ {
			s -= row[j] * x[j]
		}
		d := row[i]
		if d == 0 { //gridlint:ignore floatcmp LAPACK-style exact-zero diagonal means singular back-substitution
			return nil, ErrSingular
		}
		x[i] = s / d
	}
	return x, nil
}

// SolveMat solves A*X = B column by column.
func (f *LU) SolveMat(b *Dense) (*Dense, error) {
	n := f.lu.rows
	if b.rows != n {
		return nil, fmt.Errorf("mat: LU.SolveMat rhs rows %d != %d", b.rows, n)
	}
	out := NewDense(n, b.cols)
	for j := 0; j < b.cols; j++ {
		x, err := f.Solve(b.Col(j))
		if err != nil {
			return nil, err
		}
		out.SetCol(j, x)
	}
	return out, nil
}

// Det returns the determinant of the factored matrix.
func (f *LU) Det() float64 {
	n := f.lu.rows
	d := float64(f.sign)
	for i := 0; i < n; i++ {
		d *= f.lu.data[i*n+i]
	}
	return d
}

// Solve solves the square system a*x = b using LU with partial pivoting.
func Solve(a *Dense, b []float64) ([]float64, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.Solve(b)
}

// Inverse returns the inverse of a square matrix, or ErrSingular.
func Inverse(a *Dense) (*Dense, error) {
	f, err := FactorLU(a)
	if err != nil {
		return nil, err
	}
	return f.SolveMat(Identity(a.rows))
}
