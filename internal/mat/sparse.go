package mat

import (
	"fmt"
	"sort"
)

// Op is a matrix-free linear operator: anything that can multiply a
// vector. Dense and Sparse both satisfy it, as do the powerflow
// Jacobian wrappers, so iterative solvers (SolveCGOp) never need the
// explicit matrix. MulVecTo writes A*x into dst; dst and x must not
// alias and len(dst), len(x) must match Dims.
type Op interface {
	Dims() (rows, cols int)
	MulVecTo(dst, x []float64)
}

// Diagonal is implemented by operators that can expose their diagonal
// cheaply; SolveCGOp uses it to build the Jacobi preconditioner. The
// returned slice must not be mutated by the caller.
type Diagonal interface {
	Diag() []float64
}

// Triplet is one coordinate-format entry used to assemble sparse
// matrices. Duplicate (Row, Col) entries are summed on assembly, which
// matches how powerflow stamps branch contributions into Y-bus-like
// matrices.
type Triplet struct {
	Row, Col int
	Val      float64
}

// Sparse is a compressed sparse row (CSR) matrix. Row i's entries are
// cols[rowPtr[i]:rowPtr[i+1]] / vals[rowPtr[i]:rowPtr[i+1]], with
// column indices strictly increasing within each row. The layout keeps
// each row contiguous, so mat-vec streams memory linearly — the shape
// powerflow Jacobian products want.
type Sparse struct {
	rows, cols int
	rowPtr     []int
	colIdx     []int
	vals       []float64
}

// NewSparse assembles an r-by-c CSR matrix from triplets. The input
// order is irrelevant: entries are sorted by (row, col) and duplicates
// are summed. Entries that sum to exactly zero are kept — structure is
// decided by the triplets, not their values — so the pattern of an
// assembled Jacobian is stable across Newton iterations.
func NewSparse(r, c int, trips []Triplet) *Sparse {
	if r < 0 || c < 0 {
		panic(fmt.Sprintf("mat: negative dimension %dx%d", r, c))
	}
	for _, t := range trips {
		if t.Row < 0 || t.Row >= r || t.Col < 0 || t.Col >= c {
			panic(fmt.Sprintf("mat: triplet (%d,%d) out of range %dx%d", t.Row, t.Col, r, c))
		}
	}
	ts := make([]Triplet, len(trips))
	copy(ts, trips)
	sort.Slice(ts, func(i, j int) bool {
		if ts[i].Row != ts[j].Row {
			return ts[i].Row < ts[j].Row
		}
		return ts[i].Col < ts[j].Col
	})
	s := &Sparse{
		rows:   r,
		cols:   c,
		rowPtr: make([]int, r+1),
		colIdx: make([]int, 0, len(ts)),
		vals:   make([]float64, 0, len(ts)),
	}
	for i := 0; i < len(ts); {
		j := i + 1
		v := ts[i].Val
		for j < len(ts) && ts[j].Row == ts[i].Row && ts[j].Col == ts[i].Col {
			v += ts[j].Val
			j++
		}
		s.colIdx = append(s.colIdx, ts[i].Col)
		s.vals = append(s.vals, v)
		s.rowPtr[ts[i].Row+1]++
		i = j
	}
	for i := 0; i < r; i++ {
		s.rowPtr[i+1] += s.rowPtr[i]
	}
	return s
}

// SparseFromDense converts a dense matrix to CSR, keeping only the
// exactly nonzero entries.
func SparseFromDense(a *Dense) *Sparse {
	s := &Sparse{
		rows:   a.rows,
		cols:   a.cols,
		rowPtr: make([]int, a.rows+1),
	}
	for i := 0; i < a.rows; i++ {
		row := a.RawRow(i)
		for j, v := range row {
			if v != 0 { //gridlint:ignore floatcmp CSR keeps exactly-nonzero structure only
				s.colIdx = append(s.colIdx, j)
				s.vals = append(s.vals, v)
			}
		}
		s.rowPtr[i+1] = len(s.colIdx)
	}
	return s
}

// Rows returns the number of rows.
func (s *Sparse) Rows() int { return s.rows }

// Cols returns the number of columns.
func (s *Sparse) Cols() int { return s.cols }

// Dims returns (rows, cols).
func (s *Sparse) Dims() (int, int) { return s.rows, s.cols }

// NNZ returns the number of stored entries.
func (s *Sparse) NNZ() int { return len(s.vals) }

// At returns the element at row i, column j (zero when not stored).
func (s *Sparse) At(i, j int) float64 {
	if i < 0 || i >= s.rows || j < 0 || j >= s.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, s.rows, s.cols))
	}
	lo, hi := s.rowPtr[i], s.rowPtr[i+1]
	k := lo + sort.SearchInts(s.colIdx[lo:hi], j)
	if k < hi && s.colIdx[k] == j {
		return s.vals[k]
	}
	return 0
}

// MulVecTo writes s*x into dst. This is the powerflow inner-solve hot
// path: one contiguous pass over the CSR arrays, no allocation.
//
//gridlint:zeroalloc
func (s *Sparse) MulVecTo(dst, x []float64) {
	if len(x) != s.cols || len(dst) != s.rows {
		panic("mat: Sparse MulVecTo dimension mismatch")
	}
	for i := 0; i < s.rows; i++ {
		var sum float64
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			sum += s.vals[k] * x[s.colIdx[k]]
		}
		dst[i] = sum
	}
}

// MulVec returns s*x as a new vector.
func (s *Sparse) MulVec(x []float64) []float64 {
	dst := make([]float64, s.rows)
	s.MulVecTo(dst, x)
	return dst
}

// MulVecTTo writes sᵀ*x into dst without materializing the transpose:
// a scatter pass over the same CSR arrays. Used by the CGNR normal
// equations (JᵀJ) in sparse powerflow.
//
//gridlint:zeroalloc
func (s *Sparse) MulVecTTo(dst, x []float64) {
	if len(x) != s.rows || len(dst) != s.cols {
		panic("mat: Sparse MulVecTTo dimension mismatch")
	}
	for j := range dst {
		dst[j] = 0
	}
	for i := 0; i < s.rows; i++ {
		xi := x[i]
		if xi == 0 { //gridlint:ignore floatcmp scatter skips exact-zero multipliers only
			continue
		}
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			dst[s.colIdx[k]] += s.vals[k] * xi
		}
	}
}

// MulVecT returns sᵀ*x as a new vector.
func (s *Sparse) MulVecT(x []float64) []float64 {
	dst := make([]float64, s.cols)
	s.MulVecTTo(dst, x)
	return dst
}

// Diag returns the main diagonal as a fresh slice (zeros where no
// entry is stored), so *Sparse satisfies Diagonal for Jacobi
// preconditioning.
func (s *Sparse) Diag() []float64 {
	n := s.rows
	if s.cols < n {
		n = s.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = s.At(i, i)
	}
	return d
}

// VisitNonzero calls fn for every stored entry in row-major order.
// Assembly-time helper (preconditioner diagonals, pattern audits) —
// not for hot loops.
func (s *Sparse) VisitNonzero(fn func(i, j int, v float64)) {
	for i := 0; i < s.rows; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			fn(i, s.colIdx[k], s.vals[k])
		}
	}
}

// T returns the transpose as a new CSR matrix (equivalently, the CSC
// view of s re-expressed as CSR). Column indices stay sorted because
// rows are visited in order.
func (s *Sparse) T() *Sparse {
	t := &Sparse{
		rows:   s.cols,
		cols:   s.rows,
		rowPtr: make([]int, s.cols+1),
		colIdx: make([]int, len(s.colIdx)),
		vals:   make([]float64, len(s.vals)),
	}
	for _, j := range s.colIdx {
		t.rowPtr[j+1]++
	}
	for i := 0; i < t.rows; i++ {
		t.rowPtr[i+1] += t.rowPtr[i]
	}
	next := make([]int, t.rows)
	copy(next, t.rowPtr[:t.rows])
	for i := 0; i < s.rows; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			j := s.colIdx[k]
			p := next[j]
			t.colIdx[p] = i
			t.vals[p] = s.vals[k]
			next[j]++
		}
	}
	return t
}

// PermuteSym returns P A Pᵀ for the permutation that maps old index i
// to new index perm[i]: out[perm[i], perm[j]] = s[i, j]. perm must be
// a permutation of 0..n-1 on a square matrix. Symmetric permutations
// reorder buses without touching values — the hook for bandwidth- or
// locality-improving orderings.
func (s *Sparse) PermuteSym(perm []int) *Sparse {
	if s.rows != s.cols {
		panic(fmt.Sprintf("mat: PermuteSym requires square matrix, got %dx%d", s.rows, s.cols))
	}
	if len(perm) != s.rows {
		panic(fmt.Sprintf("mat: PermuteSym permutation length %d != %d", len(perm), s.rows))
	}
	seen := make([]bool, s.rows)
	for _, p := range perm {
		if p < 0 || p >= s.rows || seen[p] {
			panic(fmt.Sprintf("mat: PermuteSym invalid permutation entry %d", p))
		}
		seen[p] = true
	}
	trips := make([]Triplet, 0, len(s.vals))
	for i := 0; i < s.rows; i++ {
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			trips = append(trips, Triplet{Row: perm[i], Col: perm[s.colIdx[k]], Val: s.vals[k]})
		}
	}
	return NewSparse(s.rows, s.cols, trips)
}

// ToDense expands the matrix to dense form.
func (s *Sparse) ToDense() *Dense {
	d := NewDense(s.rows, s.cols)
	for i := 0; i < s.rows; i++ {
		row := d.RawRow(i)
		for k := s.rowPtr[i]; k < s.rowPtr[i+1]; k++ {
			row[s.colIdx[k]] = s.vals[k]
		}
	}
	return d
}

// ToCSC converts to compressed sparse column form.
func (s *Sparse) ToCSC() *CSC {
	t := s.T()
	return &CSC{rows: s.rows, cols: s.cols, colPtr: t.rowPtr, rowIdx: t.colIdx, vals: t.vals}
}

// CSC is a compressed sparse column matrix: column j's entries are
// rowIdx[colPtr[j]:colPtr[j+1]] / vals[colPtr[j]:colPtr[j+1]] with row
// indices strictly increasing within each column. It is the transpose
// layout of Sparse: column slices are contiguous, so transpose-mat-vec
// streams linearly — the complement of CSR for JᵀJ-style products.
type CSC struct {
	rows, cols int
	colPtr     []int
	rowIdx     []int
	vals       []float64
}

// NewCSC assembles an r-by-c CSC matrix from triplets (duplicates
// summed, any input order).
func NewCSC(r, c int, trips []Triplet) *CSC {
	return NewSparse(r, c, trips).ToCSC()
}

// Rows returns the number of rows.
func (c *CSC) Rows() int { return c.rows }

// Cols returns the number of columns.
func (c *CSC) Cols() int { return c.cols }

// Dims returns (rows, cols).
func (c *CSC) Dims() (int, int) { return c.rows, c.cols }

// NNZ returns the number of stored entries.
func (c *CSC) NNZ() int { return len(c.vals) }

// MulVecTo writes c*x into dst: a scatter pass over columns.
//
//gridlint:zeroalloc
func (c *CSC) MulVecTo(dst, x []float64) {
	if len(x) != c.cols || len(dst) != c.rows {
		panic("mat: CSC MulVecTo dimension mismatch")
	}
	for i := range dst {
		dst[i] = 0
	}
	for j := 0; j < c.cols; j++ {
		xj := x[j]
		if xj == 0 { //gridlint:ignore floatcmp scatter skips exact-zero multipliers only
			continue
		}
		for k := c.colPtr[j]; k < c.colPtr[j+1]; k++ {
			dst[c.rowIdx[k]] += c.vals[k] * xj
		}
	}
}

// MulVecTTo writes cᵀ*x into dst: one contiguous gather per column.
//
//gridlint:zeroalloc
func (c *CSC) MulVecTTo(dst, x []float64) {
	if len(x) != c.rows || len(dst) != c.cols {
		panic("mat: CSC MulVecTTo dimension mismatch")
	}
	for j := 0; j < c.cols; j++ {
		var sum float64
		for k := c.colPtr[j]; k < c.colPtr[j+1]; k++ {
			sum += c.vals[k] * x[c.rowIdx[k]]
		}
		dst[j] = sum
	}
}

// ToCSR converts back to compressed sparse row form.
func (c *CSC) ToCSR() *Sparse {
	t := &Sparse{rows: c.cols, cols: c.rows, rowPtr: c.colPtr, colIdx: c.rowIdx, vals: c.vals}
	return t.T()
}

// MulVecTo writes m*x into dst, skipping exactly-zero entries the same
// way SolveCG's historical in-loop mat-vec did, so dense CG results
// stay bit-identical through the Op interface.
func (m *Dense) MulVecTo(dst, x []float64) {
	if len(x) != m.cols || len(dst) != m.rows {
		panic(fmt.Sprintf("mat: MulVecTo dimension mismatch %dx%d * %d -> %d", m.rows, m.cols, len(x), len(dst)))
	}
	for i := 0; i < m.rows; i++ {
		row := m.data[i*m.cols : (i+1)*m.cols]
		var s float64
		for j, v := range row {
			if v != 0 { //gridlint:ignore floatcmp sparse accumulate skips exact structural zeros only
				s += v * x[j]
			}
		}
		dst[i] = s
	}
}

// Diag returns the main diagonal of m as a fresh slice, satisfying
// Diagonal.
func (m *Dense) Diag() []float64 {
	n := m.rows
	if m.cols < n {
		n = m.cols
	}
	d := make([]float64, n)
	for i := 0; i < n; i++ {
		d[i] = m.data[i*m.cols+i]
	}
	return d
}
