package api

import (
	"errors"
	"fmt"
	"sort"
)

// ErrHistMismatch is returned by Hist.Merge when the operands have
// different bucket layouts; merging them would corrupt both.
var ErrHistMismatch = errors.New("histogram bucket layout mismatch")

// Fleet wire types: GET /v1/fleet on the router. The router scrapes
// each backend's /v1/stats, merges the per-shard stage histograms with
// Hist.Merge, and reports rolling-window SLOs.

// Hist is a fixed-bucket histogram snapshot on the wire: cumulative
// counters (never reset), upper bucket bounds in ascending order, and
// one overflow bucket (len(Counts) == len(Bounds)+1). It is the
// exchange format that lets the router merge per-backend stage
// histograms into fleet-level quantiles.
type Hist struct {
	Bounds []float64 `json:"bounds,omitempty"`
	Counts []uint64  `json:"counts,omitempty"`
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
}

// Merge folds o into h. Merging is commutative and associative as long
// as every operand shares the same bucket bounds — the property the
// fleet aggregator relies on when backends are scraped in arbitrary
// order. An empty h adopts o's bounds wholesale.
func (h *Hist) Merge(o Hist) error {
	if o.Count == 0 && len(o.Counts) == 0 {
		return nil
	}
	if len(h.Bounds) == 0 && len(h.Counts) == 0 {
		h.Bounds = append([]float64(nil), o.Bounds...)
		h.Counts = append([]uint64(nil), o.Counts...)
		h.Count += o.Count
		h.Sum += o.Sum
		return nil
	}
	if len(h.Bounds) != len(o.Bounds) {
		return fmt.Errorf("%w: bucket count %d vs %d", ErrHistMismatch, len(h.Bounds), len(o.Bounds))
	}
	for i, b := range h.Bounds {
		//gridlint:ignore floatcmp bounds are copied verbatim from one bucket layout, never computed; any inexact difference IS a mismatch
		if o.Bounds[i] != b {
			return fmt.Errorf("%w: bound %d is %g vs %g", ErrHistMismatch, i, b, o.Bounds[i])
		}
	}
	if len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("%w: counts length %d vs %d", ErrHistMismatch, len(h.Counts), len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.Count += o.Count
	h.Sum += o.Sum
	return nil
}

// Delta returns the histogram of observations that happened after prev
// was captured: h - prev, bucket by bucket. If the counters went
// backwards (the backend restarted and its cumulative counts reset),
// the full current histogram is returned — everything in it is new.
func (h Hist) Delta(prev Hist) Hist {
	if len(prev.Counts) != len(h.Counts) || prev.Count > h.Count {
		return h.clone()
	}
	d := Hist{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: make([]uint64, len(h.Counts)),
		Count:  h.Count - prev.Count,
		Sum:    h.Sum - prev.Sum,
	}
	for i := range h.Counts {
		if prev.Counts[i] > h.Counts[i] {
			return h.clone()
		}
		d.Counts[i] = h.Counts[i] - prev.Counts[i]
	}
	return d
}

func (h Hist) clone() Hist {
	return Hist{
		Bounds: append([]float64(nil), h.Bounds...),
		Counts: append([]uint64(nil), h.Counts...),
		Count:  h.Count,
		Sum:    h.Sum,
	}
}

// Quantile estimates the q-th quantile (0 ≤ q ≤ 1) by linear
// interpolation within the bucket that crosses the target rank,
// mirroring internal/obs. Observations in the overflow bucket clamp to
// the largest finite bound. Returns 0 for an empty histogram.
func (h Hist) Quantile(q float64) float64 {
	if h.Count == 0 || len(h.Bounds) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(h.Count)
	var cum float64
	lower := 0.0
	for i, c := range h.Counts {
		if c == 0 {
			if i < len(h.Bounds) {
				lower = h.Bounds[i]
			}
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			if i >= len(h.Bounds) {
				return h.Bounds[len(h.Bounds)-1]
			}
			upper := h.Bounds[i]
			frac := (rank - cum) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lower + (upper-lower)*frac
		}
		cum = next
		if i < len(h.Bounds) {
			lower = h.Bounds[i]
		}
	}
	return h.Bounds[len(h.Bounds)-1]
}

// FleetBackend is one backend's slice of the fleet health report.
// Counter fields are cumulative as reported by the backend; the
// rolling-window rates live at the fleet level.
type FleetBackend struct {
	URL     string `json:"url"`
	Pool    string `json:"pool"` // "primary" or "canary"
	Healthy bool   `json:"healthy"`

	Requests    uint64 `json:"requests"`
	Samples     uint64 `json:"samples"`
	Shed        uint64 `json:"shed"`
	Unavailable uint64 `json:"unavailable"`

	Ejections      uint64 `json:"ejections"`
	Readmissions   uint64 `json:"readmissions"`
	LastEjectionMS int64  `json:"last_ejection_ms,omitempty"` // unix ms; 0 = never ejected

	P99DetectMS  float64 `json:"p99_detect_ms"`
	LastScrapeMS int64   `json:"last_scrape_ms,omitempty"` // unix ms of the last stats scrape
	ScrapeError  string  `json:"scrape_error,omitempty"`
}

// FleetHealth is the rolling-window fleet SLO report at GET /v1/fleet.
// Rates and quantiles cover roughly the trailing WindowMS; counters are
// fleet-cumulative sums over all primary and canary backends.
type FleetHealth struct {
	WindowMS int64 `json:"window_ms"`

	// SLO signals, computed over the window and primary pool only:
	// Availability is the healthy fraction of backend scrape points,
	// P99DetectMS the merged detect-stage p99, ShedRate the shed
	// fraction of requests.
	Availability float64 `json:"availability"`
	P99DetectMS  float64 `json:"p99_detect_ms"`
	ShedRate     float64 `json:"shed_rate"`

	Requests      uint64 `json:"requests"`
	Samples       uint64 `json:"samples"`
	Shed          uint64 `json:"shed"`
	Errors        uint64 `json:"errors"`
	DesperateUses uint64 `json:"desperate_uses"`

	// Stages maps stage name → merged histogram across every backend
	// and shard, windowed (only observations inside the window).
	Stages map[string]Hist `json:"stages,omitempty"`

	Backends []FleetBackend `json:"backends"`
}

// SortBackends orders the report's backends deterministically
// (pool, then URL) so repeated fetches diff cleanly.
func (f *FleetHealth) SortBackends() {
	sort.Slice(f.Backends, func(i, j int) bool {
		if f.Backends[i].Pool != f.Backends[j].Pool {
			return f.Backends[i].Pool < f.Backends[j].Pool
		}
		return f.Backends[i].URL < f.Backends[j].URL
	})
}
