// Package framewire exercises the framewire analyzer.
package framewire

// Frame is the well-formed case: fixed-width fields, wire tags in
// declaration order, flat slice/array payloads.
//
//gridlint:wireframe
type Frame struct {
	Seq   uint32    `wire:"0"`
	Buses uint16    `wire:"1"`
	Flags uint8     `wire:"2"`
	Vm    []float64 `wire:"3"`
	Crc   [2]uint8  `wire:"4"`
}

// Hertz is a named fixed-width scalar; allowed as a field type.
type Hertz float64

// Nested shows the closure rule's good side: a wireframe struct may
// contain another wireframe struct from the same package.
//
//gridlint:wireframe
type Nested struct {
	Rate Hertz `wire:"0"`
	Sub  Frame `wire:"1"`
}

// Plain is not annotated, so it may not appear inside a wireframe
// struct.
type Plain struct {
	X uint8
}

//gridlint:wireframe
type Bad struct {
	Count   int           `wire:"0"` // want `no fixed wire width`
	Name    string        `wire:"1"` // want `no fixed wire width`
	Up      bool          `wire:"2"` // want `no fixed wire width`
	ByBus   map[int]uint8 `wire:"3"` // want `map type`
	Deep    [][]float64   `wire:"4"` // want `nests a slice`
	Ptr     *Frame        `wire:"5"` // want `pointer type`
	Any     interface{}   `wire:"6"` // want `interface type`
	Sub     Plain         `wire:"7"` // want `not wireframe-annotated`
	NoTag   uint8         // want `no wire order tag`
	Shuffle uint8         `wire:"0"` // want `declared at position`
}

//gridlint:wireframe
type Embedded struct {
	Frame `wire:"0"` // want `embeds`
}

//gridlint:wireframe
type NotAStruct int8 // want `not a struct`
