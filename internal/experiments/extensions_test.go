package experiments

import (
	"context"
	"testing"
)

func TestRecoveryExperimentShape(t *testing.T) {
	rows, err := Recovery(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	byMethod := map[string]Row{}
	for _, r := range rows {
		byMethod[r.Method] = r
		if r.N == 0 {
			t.Fatalf("row %v has no samples", r)
		}
	}
	sub, ok1 := byMethod["subspace"]
	rec, ok2 := byMethod["mlr+rec"]
	if !ok1 || !ok2 {
		t.Fatalf("missing methods in %v", byMethod)
	}
	// The paper's argument: recovery from normal-operation structure
	// cannot reconstruct the outage signature at the outage location, so
	// recover-then-classify stays well below the recovery-free subspace
	// method.
	if rec.IA >= sub.IA {
		t.Errorf("recover-then-classify IA %.3f should trail subspace IA %.3f", rec.IA, sub.IA)
	}
	if rec.X <= 0 {
		t.Errorf("recovery row must report positive mean latency, got %v", rec.X)
	}
}

func TestMultiOutageExperimentShape(t *testing.T) {
	cfg := quickCfg()
	cfg.TestSteps = 8 // 2 samples per pair
	rows, err := MultiOutage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	for _, r := range rows {
		if r.N == 0 {
			t.Fatalf("row %v evaluated nothing", r)
		}
		// Multi-line events must be at least partially localised: IA of
		// Eq. 12 gives 0.5 for one of the two lines found.
		if r.IA < 0.4 {
			t.Errorf("%s IA = %.3f, want >= 0.4", r.Method, r.IA)
		}
		// Everything reported should overwhelmingly be a true line.
		if r.FA > 0.3 {
			t.Errorf("%s FA = %.3f, want <= 0.3", r.Method, r.FA)
		}
	}
}
