package obs

import (
	"context"
	"testing"
	"time"
)

// TestHotPathAllocations pins the allocation budget of every obs
// primitive that sits on the serving hot path: recording into enabled
// cells and recording into disabled (nil) cells are both allocation-
// free, and trace-ID context reads allocate nothing. Only minting a new
// trace ID — once per request, at ingress — pays its single string
// allocation.
func TestHotPathAllocations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("alloc_total", "x")
	g := r.Gauge("alloc_depth", "x")
	h := r.Histogram("alloc_seconds", "x")
	var nilC *Counter
	var nilG *Gauge
	var nilH *Histogram
	var nilT *Tracer
	var nilSpan *Span
	tr := NewTracer(TracerConfig{})
	now := time.Now()
	ctx := WithTraceID(context.Background(), "deadbeef00000000")

	cases := []struct {
		name string
		max  float64
		fn   func()
	}{
		{"counter inc enabled", 0, func() { c.Inc() }},
		{"counter inc disabled", 0, func() { nilC.Inc() }},
		{"counter add enabled", 0, func() { c.Add(2) }},
		{"counter add disabled", 0, func() { nilC.Add(2) }},
		{"gauge set enabled", 0, func() { g.Set(3) }},
		{"gauge set disabled", 0, func() { nilG.Set(3) }},
		{"gauge add enabled", 0, func() { g.Add(-1) }},
		{"gauge add disabled", 0, func() { nilG.Add(-1) }},
		{"histogram observe enabled", 0, func() { h.Observe(123 * time.Microsecond) }},
		{"histogram observe disabled", 0, func() { nilH.Observe(123 * time.Microsecond) }},
		{"histogram observe value enabled", 0, func() { h.ObserveValue(0.5) }},
		{"histogram observe value disabled", 0, func() { nilH.ObserveValue(0.5) }},
		{"trace id read", 0, func() { _ = TraceID(ctx) }},
		{"trace id mint", 1, func() { _ = NewTraceID() }},
		{"span start disabled", 0, func() { _, sp := nilT.StartSpan(ctx, "stage"); sp.End() }},
		{"span end disabled", 0, func() { nilSpan.End() }},
		{"span attr disabled", 0, func() { nilSpan.SetAttr("k", "v") }},
		{"span error string disabled", 0, func() { nilSpan.SetErrorString("boom") }},
		{"record span disabled", 0, func() { nilT.RecordSpan(ctx, "stage", now, now, nil) }},
		{"record span untraced", 0, func() { tr.RecordSpan(context.Background(), "stage", now, now, nil) }},
		{"span from context", 0, func() { _ = SpanFromContext(ctx) }},
		{"parent span id read", 0, func() { _ = ParentSpanID(ctx) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := testing.AllocsPerRun(200, tc.fn); got > tc.max {
				t.Fatalf("%s allocates %v per op, budget %v", tc.name, got, tc.max)
			}
		})
	}
}

// BenchmarkHistogramObserve is the histogram micro-benchmark `make
// bench` surfaces: one Observe is a bucket scan plus three atomic adds.
func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(250 * time.Microsecond)
	}
}

// BenchmarkHistogramObserveDisabled measures the disabled-telemetry
// path: a nil histogram is one branch.
func BenchmarkHistogramObserveDisabled(b *testing.B) {
	var h *Histogram
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(250 * time.Microsecond)
	}
}

// BenchmarkCounterInc measures the counter hot path.
func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkNewTraceID measures trace-ID minting (ingress only).
func BenchmarkNewTraceID(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = NewTraceID()
	}
}
