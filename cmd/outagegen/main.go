// Command outagegen generates a synthetic PMU phasor dataset for a test
// system — the §V-A pipeline: Ornstein–Uhlenbeck load variations, AC (or
// DC) power flows per time step, Gaussian measurement noise, one sample
// set for normal operation plus each valid single-line outage — and
// writes it as JSON for later use by outagedetect.
//
// Usage:
//
//	outagegen -case ieee14 -steps 40 -seed 1 -o ieee14.json
package main

import (
	"flag"
	"fmt"
	"os"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
)

func main() {
	caseName := flag.String("case", "ieee14", "test system (see gridinfo -list)")
	steps := flag.Int("steps", 40, "samples per scenario (time window length)")
	seed := flag.Int64("seed", 1, "random seed (pipeline is deterministic in it)")
	useDC := flag.Bool("dc", false, "use the DC power-flow approximation (fast)")
	sigmaVm := flag.Float64("noise-vm", 0, "magnitude noise sigma p.u. (0 = default 1e-3)")
	sigmaVa := flag.Float64("noise-va", 0, "angle noise sigma rad (0 = default 1e-3)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	if err := run(*caseName, *steps, *seed, *useDC, *sigmaVm, *sigmaVa, *out); err != nil {
		fmt.Fprintln(os.Stderr, "outagegen:", err)
		os.Exit(1)
	}
}

func run(caseName string, steps int, seed int64, useDC bool, sigmaVm, sigmaVa float64, out string) error {
	g, err := cases.Load(caseName)
	if err != nil {
		return err
	}
	d, err := dataset.Generate(g, dataset.GenConfig{
		Steps: steps, Seed: seed, UseDC: useDC,
		SigmaVm: sigmaVm, SigmaVa: sigmaVa,
	})
	if err != nil {
		return err
	}
	w := os.Stdout
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteJSON(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "outagegen: %s: %d normal samples, %d outage cases x %d samples\n",
		g.Name, d.Normal.T(), len(d.ValidLines), steps)
	return nil
}
