// Package cases provides the power-system test cases used in the paper's
// evaluation: the IEEE 14- and 30-bus systems embedded from the standard
// archive data, and deterministic synthetic stand-ins for the 57- and
// 118-bus systems (see DESIGN.md for the substitution rationale). All
// systems are returned as grid.Grid values with per-unit parameters on a
// 100 MVA base.
package cases

import (
	"math"

	"pmuoutage/internal/grid"
)

const baseMVA = 100.0

func deg(d float64) float64 { return d * math.Pi / 180 }

// busSpec is the compact embedded form of one bus record. Power values
// are in MW/MVAr as published and converted to per unit on load.
type busSpec struct {
	typ    grid.BusType
	pd, qd float64
	gs, bs float64
	vm, va float64 // published solved voltage, used as warm start
	pg, qg float64
}

type branchSpec struct {
	from, to int // 1-based external bus numbers
	r, x, b  float64
	tap      float64
}

func build(name string, buses []busSpec, branches []branchSpec) *grid.Grid {
	g := &grid.Grid{Name: name, BaseMVA: baseMVA}
	for i, b := range buses {
		g.Buses = append(g.Buses, grid.Bus{
			ID:   i + 1,
			Type: b.typ,
			Pd:   b.pd / baseMVA, Qd: b.qd / baseMVA,
			Gs: b.gs / baseMVA, Bs: b.bs / baseMVA,
			Vm: b.vm, Va: deg(b.va),
			Pg: b.pg / baseMVA, Qg: b.qg / baseMVA,
		})
	}
	for _, br := range branches {
		g.Branches = append(g.Branches, grid.Branch{
			From: br.from - 1, To: br.to - 1,
			R: br.r, X: br.x, B: br.b,
			Tap: br.tap, Status: true,
		})
	}
	return g
}

// IEEE14 returns the IEEE 14-bus test system (20 lines), the smallest
// system in the paper's evaluation. Data follow the standard archive
// values (MATPOWER case14).
func IEEE14() *grid.Grid {
	buses := []busSpec{
		{typ: grid.Slack, vm: 1.060, va: 0, pg: 232.4, qg: -16.9},
		{typ: grid.PV, pd: 21.7, qd: 12.7, vm: 1.045, va: -4.98, pg: 40, qg: 42.4},
		{typ: grid.PV, pd: 94.2, qd: 19.0, vm: 1.010, va: -12.72, qg: 23.4},
		{typ: grid.PQ, pd: 47.8, qd: -3.9, vm: 1.019, va: -10.33},
		{typ: grid.PQ, pd: 7.6, qd: 1.6, vm: 1.020, va: -8.78},
		{typ: grid.PV, pd: 11.2, qd: 7.5, vm: 1.070, va: -14.22, qg: 12.2},
		{typ: grid.PQ, vm: 1.062, va: -13.37},
		{typ: grid.PV, vm: 1.090, va: -13.36, qg: 17.4},
		{typ: grid.PQ, pd: 29.5, qd: 16.6, bs: 19, vm: 1.056, va: -14.94},
		{typ: grid.PQ, pd: 9.0, qd: 5.8, vm: 1.051, va: -15.10},
		{typ: grid.PQ, pd: 3.5, qd: 1.8, vm: 1.057, va: -14.79},
		{typ: grid.PQ, pd: 6.1, qd: 1.6, vm: 1.055, va: -15.07},
		{typ: grid.PQ, pd: 13.5, qd: 5.8, vm: 1.050, va: -15.16},
		{typ: grid.PQ, pd: 14.9, qd: 5.0, vm: 1.036, va: -16.04},
	}
	branches := []branchSpec{
		{1, 2, 0.01938, 0.05917, 0.0528, 0},
		{1, 5, 0.05403, 0.22304, 0.0492, 0},
		{2, 3, 0.04699, 0.19797, 0.0438, 0},
		{2, 4, 0.05811, 0.17632, 0.0340, 0},
		{2, 5, 0.05695, 0.17388, 0.0346, 0},
		{3, 4, 0.06701, 0.17103, 0.0128, 0},
		{4, 5, 0.01335, 0.04211, 0.0000, 0},
		{4, 7, 0.00000, 0.20912, 0.0000, 0.978},
		{4, 9, 0.00000, 0.55618, 0.0000, 0.969},
		{5, 6, 0.00000, 0.25202, 0.0000, 0.932},
		{6, 11, 0.09498, 0.19890, 0.0000, 0},
		{6, 12, 0.12291, 0.25581, 0.0000, 0},
		{6, 13, 0.06615, 0.13027, 0.0000, 0},
		{7, 8, 0.00000, 0.17615, 0.0000, 0},
		{7, 9, 0.00000, 0.11001, 0.0000, 0},
		{9, 10, 0.03181, 0.08450, 0.0000, 0},
		{9, 14, 0.12711, 0.27038, 0.0000, 0},
		{10, 11, 0.08205, 0.19207, 0.0000, 0},
		{12, 13, 0.22092, 0.19988, 0.0000, 0},
		{13, 14, 0.17093, 0.34802, 0.0000, 0},
	}
	return build("ieee14", buses, branches)
}
