package api

import (
	"encoding/json"
	"net/http"
	"strings"
	"testing"

	"pmuoutage"
)

// TestWireFieldNames pins the encoded JSON of every wire type: the
// field names are the client↔server contract, so a rename here must
// show up as a golden diff, never as a silent incompatibility.
func TestWireFieldNames(t *testing.T) {
	cases := []struct {
		name string
		v    any
		want string
	}{
		{
			"DetectRequest",
			DetectRequest{Shard: "east", Samples: []pmuoutage.Sample{{Vm: []float64{1}, Va: []float64{0}}}},
			`{"shard":"east","samples":[{"vm":[1],"va":[0]}]}`,
		},
		{
			"DetectResponse",
			DetectResponse{Shard: "east", Reports: []*pmuoutage.Report{{Outage: true, DeviationEnergy: 2}}},
			`{"shard":"east","reports":[{"outage":true,"deviation_energy":2}]}`,
		},
		{
			"IngestRequest",
			IngestRequest{Shard: "east", Sample: pmuoutage.Sample{Vm: []float64{1}, Va: []float64{0}}},
			`{"shard":"east","sample":{"vm":[1],"va":[0]}}`,
		},
		{
			"IngestResponse",
			IngestResponse{Shard: "east"},
			`{"shard":"east","event":null}`,
		},
		{
			"ReloadRequest",
			ReloadRequest{Shard: "east", Fingerprint: "abc"},
			`{"shard":"east","fingerprint":"abc"}`,
		},
		{
			"ReloadResult",
			ReloadResult{Shard: "east", Generation: 3, Model: "abc"},
			`{"shard":"east","generation":3,"model":"abc"}`,
		},
		{
			"ErrorEnvelope",
			ErrorEnvelope{Code: CodeOverloaded, Error: "shed", Retryable: true, TraceID: "t1"},
			`{"code":"overloaded","error":"shed","retryable":true,"trace_id":"t1"}`,
		},
		{
			"ShardStatus",
			ShardStatus{Name: "east", Case: "ieee14", State: "ready", Restarts: 1, Replicas: 2, Generation: 3, Model: "abc"},
			`{"name":"east","case":"ieee14","state":"ready","restarts":1,"queue_depth":0,"replicas":2,"generation":3,"model":"abc"}`,
		},
		{
			"ModelInfo",
			ModelInfo{Fingerprint: "abc", Case: "ieee14", FormatVersion: 1, Bytes: 42},
			`{"fingerprint":"abc","case":"ieee14","format_version":1,"bytes":42}`,
		},
		{
			"ExperimentRequest",
			ExperimentRequest{Figure: "fig5", Systems: []string{"ieee14"}, TestSteps: 2, Seed: 1, UseDC: true},
			`{"figure":"fig5","systems":["ieee14"],"test_steps":2,"seed":1,"use_dc":true}`,
		},
		{
			"ExperimentRow",
			ExperimentRow{Figure: "fig5", System: "ieee14", Method: "subspace", X: 0.5, IA: 1, FA: 0, N: 3},
			`{"figure":"fig5","system":"ieee14","method":"subspace","x":0.5,"ia":1,"fa":0,"n":3}`,
		},
	}
	for _, c := range cases {
		got, err := json.Marshal(c.v)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if string(got) != c.want {
			t.Errorf("%s wire form drifted:\n got  %s\n want %s", c.name, got, c.want)
		}
	}
}

// TestShardSnapshotFields pins the stats payload's field set (values
// are uninteresting; the keys are the contract).
func TestShardSnapshotFields(t *testing.T) {
	b, err := json.Marshal(ShardSnapshot{})
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{
		"requests", "ingests", "samples", "batches", "shed", "unavailable",
		"restarts", "reloads", "frames_json", "frames_binary", "frames_stream",
		"max_batch", "avg_batch", "avg_latency_ms", "p50_latency_ms",
		"p95_latency_ms", "p99_latency_ms", "queue_depth",
	} {
		if !strings.Contains(string(b), `"`+key+`"`) {
			t.Errorf("ShardSnapshot lost wire field %q: %s", key, b)
		}
	}
}

// TestLegacyEnvelopeDecodes: pre-code servers answer envelopes without
// the code field; decoding must still succeed and fall back to status
// classification.
func TestLegacyEnvelopeDecodes(t *testing.T) {
	env, ok := DecodeError([]byte(`{"error":"shard training","retryable":true}`))
	if !ok {
		t.Fatal("legacy envelope did not decode")
	}
	if env.Code != "" || env.Error != "shard training" || !env.Retryable {
		t.Fatalf("legacy envelope = %+v", env)
	}
	if !RetryableResponse(http.StatusServiceUnavailable, []byte(`{"error":"x"}`)) {
		t.Error("codeless 503 must classify retryable by status")
	}
	if RetryableResponse(http.StatusServiceUnavailable, []byte(`{"code":"closed","error":"x"}`)) {
		t.Error("code closed must override the 503 status fallback")
	}
	if !RetryableResponse(http.StatusTooManyRequests, []byte("not json")) {
		t.Error("unparseable 429 body must classify retryable by status")
	}
}

// TestCodeStatusTable pins every code's canonical status and
// retryability.
func TestCodeStatusTable(t *testing.T) {
	cases := []struct {
		code   Code
		status int
		retry  bool
	}{
		{CodeBadRequest, 400, false},
		{CodeTooLarge, 413, false},
		{CodeBadSample, 400, false},
		{CodeBadLine, 400, false},
		{CodeUnknownCase, 400, false},
		{CodeBadModel, 400, false},
		{CodeModelVersion, 400, false},
		{CodeConfig, 400, false},
		{CodeUnknownShard, 404, false},
		{CodeUnknownModel, 404, false},
		{CodePromotionBlocked, 409, false},
		{CodeOverloaded, 429, true},
		{CodeUnavailable, 503, true},
		{CodeClosed, 503, false},
		{CodeDeadline, 504, false},
		{CodeInternal, 500, false},
		{Code(""), 500, false},
	}
	for _, c := range cases {
		if got := c.code.HTTPStatus(); got != c.status {
			t.Errorf("%q.HTTPStatus() = %d, want %d", c.code, got, c.status)
		}
		if got := c.code.Retryable(); got != c.retry {
			t.Errorf("%q.Retryable() = %v, want %v", c.code, got, c.retry)
		}
	}
}
