package analysis

import "fmt"

// All returns every registered analyzer, in stable output order.
func All() []*Analyzer {
	return []*Analyzer{
		AllocFree,
		ApiErr,
		CtxFlow,
		DimCheck,
		ErrCheck,
		FloatCmp,
		FrameWire,
		GlobalRand,
		GoroutineLeak,
		IgnoreAudit,
		LockSmell,
		MetricName,
		ModelIO,
		Units,
	}
}

// ByName resolves a comma-separated-friendly analyzer name.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
}

// KnownAnalyzer reports whether name is a registered analyzer or the
// "all" wildcard — the validity check ignoreaudit applies to ignore
// directives.
func KnownAnalyzer(name string) bool {
	if name == "all" {
		return true
	}
	_, err := ByName(name)
	return err == nil
}
