package mat

import (
	"errors"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// randSparseTrips draws a random r-by-c pattern with about density*r*c
// entries, including some deliberate duplicates to exercise summing.
func randSparseTrips(rng *rand.Rand, r, c int, density float64) []Triplet {
	var trips []Triplet
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if rng.Float64() < density {
				trips = append(trips, Triplet{Row: i, Col: j, Val: rng.NormFloat64()})
				if rng.Float64() < 0.2 {
					trips = append(trips, Triplet{Row: i, Col: j, Val: rng.NormFloat64()})
				}
			}
		}
	}
	return trips
}

func TestNewSparseAssembly(t *testing.T) {
	// Unsorted input with duplicates: values sum, indices sort.
	s := NewSparse(3, 3, []Triplet{
		{2, 1, 4},
		{0, 2, 1},
		{0, 0, 2},
		{0, 2, 0.5},
		{2, 0, -1},
	})
	if s.NNZ() != 4 {
		t.Fatalf("nnz = %d, want 4", s.NNZ())
	}
	want := NewDenseData(3, 3, []float64{
		2, 0, 1.5,
		0, 0, 0,
		-1, 4, 0,
	})
	if !s.ToDense().Equalf(want, 0) {
		t.Fatalf("assembled %v, want %v", s.ToDense(), want)
	}
	if got := s.At(0, 2); got != 1.5 {
		t.Fatalf("At(0,2) = %v, want 1.5", got)
	}
	if got := s.At(1, 1); got != 0 {
		t.Fatalf("At(1,1) = %v, want 0", got)
	}
	// Entries summing to exactly zero keep their structural slot.
	z := NewSparse(1, 1, []Triplet{{0, 0, 1}, {0, 0, -1}})
	if z.NNZ() != 1 {
		t.Fatalf("zero-sum entry dropped: nnz = %d", z.NNZ())
	}
}

func TestSparseRoundTripsAndOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		r := 1 + rng.Intn(12)
		c := 1 + rng.Intn(12)
		trips := randSparseTrips(rng, r, c, 0.3)
		s := NewSparse(r, c, trips)
		d := s.ToDense()
		// Dense round trip.
		if !SparseFromDense(d).ToDense().Equalf(d, 0) {
			return false
		}
		// CSC round trip.
		if !s.ToCSC().ToCSR().ToDense().Equalf(d, 0) {
			return false
		}
		// Transpose.
		if !s.T().ToDense().Equalf(d.T(), 0) {
			return false
		}
		x := make([]float64, c)
		for i := range x {
			x[i] = rng.NormFloat64()
		}
		y := make([]float64, r)
		for i := range y {
			y[i] = rng.NormFloat64()
		}
		// Mat-vec and transpose-mat-vec against dense, CSR and CSC.
		tol := 1e-12
		dx := d.MulVec(x)
		dty := d.T().MulVec(y)
		csc := s.ToCSC()
		cx := make([]float64, r)
		csc.MulVecTo(cx, x)
		cty := make([]float64, c)
		csc.MulVecTTo(cty, y)
		for i := range dx {
			if math.Abs(s.MulVec(x)[i]-dx[i]) > tol || math.Abs(cx[i]-dx[i]) > tol {
				return false
			}
		}
		for j := range dty {
			if math.Abs(s.MulVecT(y)[j]-dty[j]) > tol || math.Abs(cty[j]-dty[j]) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSparsePermuteSym(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	n := 9
	s := NewSparse(n, n, randSparseTrips(rng, n, n, 0.3))
	perm := rng.Perm(n)
	p := s.PermuteSym(perm)
	d := s.ToDense()
	pd := p.ToDense()
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if pd.At(perm[i], perm[j]) != d.At(i, j) {
				t.Fatalf("permuted (%d,%d) = %v, want %v", perm[i], perm[j], pd.At(perm[i], perm[j]), d.At(i, j))
			}
		}
	}
	// Round trip through the inverse permutation.
	inv := make([]int, n)
	for i, pi := range perm {
		inv[pi] = i
	}
	if !p.PermuteSym(inv).ToDense().Equalf(d, 0) {
		t.Fatal("inverse permutation does not round-trip")
	}
}

func TestSparseDiag(t *testing.T) {
	s := NewSparse(3, 3, []Triplet{{0, 0, 2}, {1, 1, -3}, {2, 0, 1}})
	want := []float64{2, -3, 0}
	for i, v := range s.Diag() {
		if v != want[i] {
			t.Fatalf("diag[%d] = %v, want %v", i, v, want[i])
		}
	}
}

// randSPDSparse builds an SPD matrix with a sparse pattern: a random
// weighted graph Laplacian plus a positive diagonal shift — the same
// structure reduced grid B-matrices have.
func randSPDSparse(rng *rand.Rand, n int) *Sparse {
	var trips []Triplet
	for i := 0; i < n; i++ {
		trips = append(trips, Triplet{Row: i, Col: i, Val: 1 + rng.Float64()})
	}
	edges := 2 * n
	for e := 0; e < edges; e++ {
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			continue
		}
		w := 0.5 + 2*rng.Float64()
		trips = append(trips,
			Triplet{Row: i, Col: j, Val: -w},
			Triplet{Row: j, Col: i, Val: -w},
			Triplet{Row: i, Col: i, Val: w},
			Triplet{Row: j, Col: j, Val: w},
		)
	}
	return NewSparse(n, n, trips)
}

// TestSolveCGSparseDenseParity is the sparse-vs-dense property test:
// over random SPD systems, CG through the sparse operator must produce
// the exact bits the dense path does — both walk the same nonzeros in
// the same order, so this is equality, not tolerance.
func TestSolveCGSparseDenseParity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(40)
		s := randSPDSparse(rng, n)
		d := s.ToDense()
		b := make([]float64, n)
		for i := range b {
			b[i] = rng.NormFloat64()
		}
		xs, errS := SolveCGOp(s, b, CGOptions{})
		xd, errD := SolveCG(d, b, CGOptions{})
		if (errS == nil) != (errD == nil) {
			return false
		}
		if errS != nil {
			return true
		}
		for i := range xs {
			if xs[i] != xd[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSolveCGOpNonSPDSparse(t *testing.T) {
	// Negative diagonal through the sparse Diagonal path.
	s := NewSparse(2, 2, []Triplet{{0, 0, -1}, {1, 1, 1}})
	if _, err := SolveCGOp(s, []float64{1, 1}, CGOptions{}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular for negative diagonal, got %v", err)
	}
	// Indefinite with positive diagonal trips the curvature check.
	ind := NewSparse(2, 2, []Triplet{{0, 0, 1}, {0, 1, 2}, {1, 0, 2}, {1, 1, 1}})
	if _, err := SolveCGOp(ind, []float64{1, -1}, CGOptions{}); !errors.Is(err, ErrSingular) {
		t.Fatalf("want ErrSingular for indefinite matrix, got %v", err)
	}
}

func TestSolveCGMaxIterExhaustion(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	n := 30
	s := randSPDSparse(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	_, err := SolveCGOp(s, b, CGOptions{MaxIter: 1, Tol: 1e-14})
	if err == nil {
		t.Fatal("want convergence failure at MaxIter 1")
	}
	if !strings.Contains(err.Error(), "did not converge in 1 iterations") {
		t.Fatalf("unexpected error: %v", err)
	}
	if errors.Is(err, ErrSingular) {
		t.Fatalf("exhaustion must not read as singularity: %v", err)
	}
}

func TestSolveCGIllConditioned(t *testing.T) {
	// Diagonal matrix with condition number 1e12: CG converges (diagonal
	// preconditioning makes it one effective iteration class) and the
	// solution must still be accurate in the relative sense.
	n := 8
	var trips []Triplet
	for i := 0; i < n; i++ {
		trips = append(trips, Triplet{Row: i, Col: i, Val: math.Pow(10, -float64(i)*12/float64(n-1))})
	}
	s := NewSparse(n, n, trips)
	b := make([]float64, n)
	for i := range b {
		b[i] = 1
	}
	x, err := SolveCGOp(s, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		want := 1 / s.At(i, i)
		if math.Abs(x[i]-want) > 1e-6*want {
			t.Fatalf("x[%d] = %v, want %v", i, x[i], want)
		}
	}
	// A genuinely near-singular Hilbert matrix must either converge to a
	// small residual or report failure — never return silently wrong.
	h := NewDense(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			h.Set(i, j, 1/float64(i+j+1))
		}
	}
	if x, err := SolveCG(h, b, CGOptions{MaxIter: 10000}); err == nil {
		r := Sub(b, h.MulVec(x))
		if Norm2(r) > 1e-6*Norm2(b) {
			t.Fatalf("claimed convergence with residual %v", Norm2(r)/Norm2(b))
		}
	}
}

// TestSolveCGOpIdentityPreconditioner covers the Op-without-Diagonal
// path.
type opOnly struct{ s *Sparse }

func (o opOnly) Dims() (int, int)          { return o.s.Dims() }
func (o opOnly) MulVecTo(dst, x []float64) { o.s.MulVecTo(dst, x) }

func TestSolveCGOpIdentityPreconditioner(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	n := 20
	s := randSPDSparse(rng, n)
	b := make([]float64, n)
	for i := range b {
		b[i] = rng.NormFloat64()
	}
	x, err := SolveCGOp(opOnly{s}, b, CGOptions{})
	if err != nil {
		t.Fatal(err)
	}
	r := Sub(b, s.MulVec(x))
	if Norm2(r) > 1e-8*Norm2(b) {
		t.Fatalf("relative residual %v", Norm2(r)/Norm2(b))
	}
}

// TestSparseMulVecAllocs pins the //gridlint:zeroalloc annotations on
// Sparse.MulVecTo, Sparse.MulVecTTo, CSC.MulVecTo, and CSC.MulVecTTo:
// the hot sparse products must not allocate.
func TestSparseMulVecAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	n := 60
	s := randSPDSparse(rng, n)
	csc := s.ToCSC()
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	allocs := testing.AllocsPerRun(200, func() {
		s.MulVecTo(dst, x)
		s.MulVecTTo(dst, x)
		csc.MulVecTo(dst, x)
		csc.MulVecTTo(dst, x)
	})
	if allocs != 0 {
		t.Fatalf("sparse mat-vec allocated %v times per run", allocs)
	}
}

func BenchmarkSparseMulVec1000(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	n := 1000
	s := randSPDSparse(rng, n)
	x := make([]float64, n)
	for i := range x {
		x[i] = rng.NormFloat64()
	}
	dst := make([]float64, n)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.MulVecTo(dst, x)
	}
}
