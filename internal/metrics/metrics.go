// Package metrics implements the evaluation metrics of Eq. (12):
// identification accuracy (IA) and false-alarm rate (FA), including the
// |F| = 0 conventions of §V-C2 for normal-operation samples.
package metrics

import (
	"fmt"

	"pmuoutage/internal/grid"
)

// Eval scores one detection: F is the true outage set, Fhat the
// detected set. Per Eq. (12),
//
//	IA = |F̂ ∩ F| / |F|,   FA = 1 − |F̂ ∩ F| / |F̂|,
//
// and per §V-C2, when |F| = 0: IA = 1 and FA = 0 iff |F̂| = 0, else
// IA = 0 and FA = 1.
func Eval(f, fhat []grid.Line) (ia, fa float64) {
	inter := intersect(f, fhat)
	switch {
	case len(f) == 0 && len(fhat) == 0:
		return 1, 0
	case len(f) == 0:
		return 0, 1
	case len(fhat) == 0:
		return 0, 0
	default:
		return float64(inter) / float64(len(f)), 1 - float64(inter)/float64(len(fhat))
	}
}

// Correct reports the paper's §V-B correctness criterion for one outage
// sample: the detection is correct if F̂ is a non-empty subset of F.
func Correct(f, fhat []grid.Line) bool {
	if len(fhat) == 0 {
		return false
	}
	return intersect(f, fhat) == len(fhat)
}

func intersect(a, b []grid.Line) int {
	in := map[grid.Line]bool{}
	for _, e := range a {
		in[e] = true
	}
	n := 0
	seen := map[grid.Line]bool{}
	for _, e := range b {
		if in[e] && !seen[e] {
			n++
			seen[e] = true
		}
	}
	return n
}

// Accumulator averages IA/FA over many detections.
type Accumulator struct {
	sumIA, sumFA float64
	n            int
}

// Add scores one detection into the running averages.
func (a *Accumulator) Add(f, fhat []grid.Line) {
	ia, fa := Eval(f, fhat)
	a.AddScores(ia, fa)
}

// AddScores accumulates precomputed scores (used by the reliability
// study, which weights patterns by probability before averaging).
func (a *Accumulator) AddScores(ia, fa float64) {
	a.sumIA += ia
	a.sumFA += fa
	a.n++
}

// Merge folds another accumulator's scores into a. Partial
// accumulators built per work item and merged in a fixed order give the
// same result on every worker count — the reduction seam EvaluateContext
// uses over the par pool.
func (a *Accumulator) Merge(b Accumulator) {
	a.sumIA += b.sumIA
	a.sumFA += b.sumFA
	a.n += b.n
}

// N returns the number of accumulated detections.
func (a *Accumulator) N() int { return a.n }

// IA returns the mean identification accuracy, or 0 with no samples.
func (a *Accumulator) IA() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumIA / float64(a.n)
}

// FA returns the mean false-alarm rate, or 0 with no samples.
func (a *Accumulator) FA() float64 {
	if a.n == 0 {
		return 0
	}
	return a.sumFA / float64(a.n)
}

// String summarises the accumulator for logs and harness output.
func (a *Accumulator) String() string {
	return fmt.Sprintf("IA=%.4f FA=%.4f (n=%d)", a.IA(), a.FA(), a.n)
}
