//go:build race

package cases

// raceEnabled reports whether the race detector is compiled in. The
// 1000-bus scale test skips under it: the feasibility loop inside the
// builder solves dozens of AC power flows, and instrumentation turns a
// ~30 s build into minutes, blowing the verify budget for no extra
// coverage (the numerics are identical either way).
const raceEnabled = true
