// Package ignoreaudit is the golden fixture for the ignoreaudit
// analyzer, run together with floatcmp so directives have real findings
// to match (or fail to match).
package ignoreaudit

// live: the directive suppresses a real floatcmp finding — not stale.
func live(a, b float64) bool {
	return a == b //gridlint:ignore floatcmp exact equality intended in this fixture
}

// typo: the named analyzer does not exist, so the directive can never
// match anything.
func typo(a, b float64) bool {
	//gridlint:ignore floatcomp misspelled analyzer name // want `ignore directive names unknown analyzer "floatcomp"`
	return a == b // want `floating-point == comparison`
}

// stale: the code below no longer trips floatcmp (integers), so the
// directive suppresses nothing on the current tree.
func stale(a, b int) bool {
	//gridlint:ignore floatcmp nothing left to suppress // want `stale ignore directive: no floatcmp finding here to suppress on the current tree`
	return a == b
}

// kept: a deliberately retained directive, excused from the audit with
// an ignoreaudit directive — the annotate-don't-delete escape hatch.
func kept(a, b int) bool {
	//gridlint:ignore ignoreaudit retained as a documented example
	//gridlint:ignore floatcmp kept deliberately for the example above
	return a == b
}
