// Package units is the golden fixture for the units analyzer: every
// line with a `// want` comment must produce exactly the matching
// diagnostics, and no other line may produce any.
package units

import "math"

// Bus mirrors the annotation style used in internal/grid.
type Bus struct {
	Va float64 //gridlint:unit rad
	Vd float64 //gridlint:unit deg
	Vm float64 //gridlint:unit pu
	KV float64 //gridlint:unit si
	F  float64 //gridlint:unit hz

	Raw float64 // magnitude in p.u., undeclared // want `field Bus.Raw is documented in physical units .* but has no .* directive`

	X float64 //gridlint:unit parsec // want `unknown unit "parsec" in unit directive`
	Y float64 //gridlint:unit va rad // want `unit directive on a struct field takes exactly one argument`
}

// AngleDiff subtracts two angles in the same frame — no mixing.
//
//gridlint:unit a rad
//gridlint:unit b rad
//gridlint:unit return rad
func AngleDiff(a, b float64) float64 {
	return a - b
}

// BadTrig feeds degrees into the radian-only stdlib trigonometry.
//
//gridlint:unit d deg
func BadTrig(d float64) float64 {
	return math.Sin(d) // want `passing deg value as parameter x, declared rad`
}

// Mix exercises the frame-group rules.
//
//gridlint:unit a rad
//gridlint:unit d deg
//gridlint:unit vm pu
//gridlint:unit kv si
func Mix(a, d, vm, kv float64) {
	_ = a + d   // want `unit mismatch: rad \+ deg mixes two encodings of the same quantity`
	_ = a * d   // want `unit mismatch: rad \* deg mixes two encodings of the same quantity`
	_ = vm * kv // want `unit mismatch: pu \* si mixes two encodings of the same quantity`
	_ = a + vm  // want `unit mismatch: rad \+ pu combines different physical frames`
	_ = a < vm  // want `unit mismatch: rad < pu combines different physical frames`
	_ = a * vm  // cross-group product builds a new quantity: allowed
	_ = a - a   // same frame: fine
}

// Convert rebinds a local after an explicit frame conversion.
//
//gridlint:unit va rad
//gridlint:unit return deg
func Convert(va float64) float64 {
	deg := va * 180 / math.Pi //gridlint:unit deg
	return deg
}

// Store exercises annotated-field sinks.
//
//gridlint:unit d deg
func Store(b *Bus, d float64) {
	b.Va = d // want `assigning deg value to a field declared rad`
	b.Vd = d
}

// Elems exercises slice-element frame tracking.
//
//gridlint:unit d deg
func Elems(d float64, buf []float64, b *Bus) {
	buf[0] = b.Va
	buf[1] = d // want `storing deg value into buf, whose elements carry rad`
}

// Lit exercises composite-literal field checks.
//
//gridlint:unit d deg
func Lit(d float64) Bus {
	return Bus{Va: d} // want `field Bus.Va is declared rad but receives a deg value`
}

// BadReturn violates its own declared result frame.
//
//gridlint:unit d deg
//gridlint:unit return rad
func BadReturn(d float64) float64 {
	return d // want `returning deg value where the result is declared rad`
}

// UseDiff exercises annotated-call results and argument checks.
func UseDiff(b *Bus) {
	r := AngleDiff(b.Va, b.Va)
	_ = r + b.Vd              // want `unit mismatch: rad \+ deg mixes two encodings of the same quantity`
	_ = AngleDiff(b.Vd, b.Va) // want `passing deg value as parameter a, declared rad`
}

// FromAtan exercises stdlib result frames.
func FromAtan(b *Bus) {
	r := math.Atan2(1, 2)
	b.Vd = r // want `assigning rad value to a field declared deg`
}

// Loops exercises range binding.
func Loops(b *Bus, angles []float64) {
	for i := range angles {
		angles[i] = b.Va
	}
	for _, a := range angles {
		_ = a + b.Vd // want `unit mismatch: rad \+ deg mixes two encodings of the same quantity`
	}
}
