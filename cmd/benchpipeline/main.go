// Command benchpipeline measures the worker-pooled pipeline stages —
// dataset generation, detector training, the Fig. 10 Monte Carlo — with
// one worker and with all CPUs, and writes the timings as JSON. The two
// configurations compute byte-identical results (see internal/par), so
// the ratio is pure scheduling overhead vs speedup.
//
// Usage:
//
//	benchpipeline [-o BENCH_pipeline.json] [-reps 3]
//
// The JSON has one entry per (stage, workers) pair with the best-of-reps
// wall time in nanoseconds, plus the machine's GOMAXPROCS so single-CPU
// results are readable for what they are.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/detect"
	"pmuoutage/internal/pmunet"
)

type result struct {
	Stage   string `json:"stage"`
	Workers int    `json:"workers"` // 0 was resolved to GOMAXPROCS
	NsOp    int64  `json:"ns_op"`   // best of -reps runs
}

type report struct {
	GOMAXPROCS int      `json:"gomaxprocs"`
	Reps       int      `json:"reps"`
	Results    []result `json:"results"`
}

func main() {
	out := flag.String("o", "BENCH_pipeline.json", "output file")
	reps := flag.Int("reps", 3, "repetitions per stage (best run wins)")
	flag.Parse()

	if err := run(*out, *reps); err != nil {
		fmt.Fprintln(os.Stderr, "benchpipeline:", err)
		os.Exit(1)
	}
}

func run(out string, reps int) error {
	if reps <= 0 {
		reps = 1
	}
	ctx := context.Background()
	g := cases.IEEE30()
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		return err
	}
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true})
	if err != nil {
		return err
	}

	stages := []struct {
		name string
		fn   func(workers int) error
	}{
		{"dataset/generate-ieee30-dc", func(workers int) error {
			_, err := dataset.GenerateContext(ctx, g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true, Workers: workers})
			return err
		}},
		{"detect/train-ieee30", func(workers int) error {
			_, err := detect.TrainContext(ctx, d, nw, detect.Config{Workers: workers})
			return err
		}},
		{"pmunet/montecarlo-100k", func(workers int) error {
			_, err := nw.ReliabilityMonteCarlo(ctx, pmunet.Reliability{RPMU: 0.97, RLink: 0.99}, 100000, 1, workers)
			return err
		}},
	}

	rep := report{GOMAXPROCS: runtime.GOMAXPROCS(0), Reps: reps}
	workerSet := []int{1}
	if rep.GOMAXPROCS > 1 {
		workerSet = append(workerSet, rep.GOMAXPROCS)
	}
	for _, st := range stages {
		for _, workers := range workerSet {
			best := time.Duration(-1)
			for r := 0; r < reps; r++ {
				start := time.Now()
				if err := st.fn(workers); err != nil {
					return fmt.Errorf("%s workers=%d: %w", st.name, workers, err)
				}
				if el := time.Since(start); best < 0 || el < best {
					best = el
				}
			}
			rep.Results = append(rep.Results, result{Stage: st.name, Workers: workers, NsOp: best.Nanoseconds()})
			fmt.Printf("%-28s workers=%-2d %12s\n", st.name, workers, best.Round(time.Microsecond))
		}
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(out, append(data, '\n'), 0o644)
}
