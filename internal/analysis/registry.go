package analysis

import "fmt"

// All returns every registered analyzer, in stable output order.
func All() []*Analyzer {
	return []*Analyzer{
		ApiErr,
		CtxFlow,
		DimCheck,
		ErrCheck,
		FloatCmp,
		GlobalRand,
		GoroutineLeak,
		LockSmell,
		MetricName,
		ModelIO,
	}
}

// ByName resolves a comma-separated-friendly analyzer name.
func ByName(name string) (*Analyzer, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("analysis: unknown analyzer %q", name)
}
