package pmunet

import (
	"context"
	"math"
	"testing"
)

func TestReliabilityMonteCarloWorkersEquivalence(t *testing.T) {
	g := miniGrid(12)
	nw, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := Reliability{RPMU: 0.95, RLink: 0.99}
	ctx := context.Background()
	seq, err := nw.ReliabilityMonteCarlo(ctx, rel, 5000, 7, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{0, 2, 8} {
		parl, err := nw.ReliabilityMonteCarlo(ctx, rel, 5000, 7, workers)
		if err != nil {
			t.Fatal(err)
		}
		// Byte-identical, not approximately equal: fixed shards, fixed
		// per-shard seeds, fixed reduction order.
		if seq != parl {
			t.Fatalf("workers=%d: stats %+v differ from sequential %+v", workers, parl, seq)
		}
	}
}

func TestReliabilityMonteCarloMatchesAnalytic(t *testing.T) {
	l := 12
	g := miniGrid(l)
	nw, err := Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	rel := Reliability{RPMU: 0.92, RLink: 0.98}
	st, err := nw.ReliabilityMonteCarlo(context.Background(), rel, 200000, 17, 0)
	if err != nil {
		t.Fatal(err)
	}
	q := rel.DeviceAvailability()
	wantMean := float64(l) * (1 - q)
	wantAny := 1 - math.Pow(q, float64(l))
	if math.Abs(st.MeanMissing-wantMean) > 0.02*wantMean+0.005 {
		t.Fatalf("MeanMissing %v vs analytic %v", st.MeanMissing, wantMean)
	}
	if math.Abs(st.AnyMissing-wantAny) > 0.02 {
		t.Fatalf("AnyMissing %v vs analytic %v", st.AnyMissing, wantAny)
	}
	if st.Trials != 200000 {
		t.Fatalf("Trials = %d", st.Trials)
	}
}

func TestReliabilityMonteCarloValidation(t *testing.T) {
	nw, err := Build(miniGrid(6), 2)
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := nw.ReliabilityMonteCarlo(ctx, Reliability{RPMU: 0, RLink: 1}, 100, 1, 1); err == nil {
		t.Fatal("invalid reliability must fail")
	}
	if _, err := nw.ReliabilityMonteCarlo(ctx, Reliability{RPMU: 0.9, RLink: 1}, 0, 1, 1); err == nil {
		t.Fatal("non-positive trials must fail")
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, err := nw.ReliabilityMonteCarlo(cctx, Reliability{RPMU: 0.9, RLink: 1}, 100, 1, 4); err == nil {
		t.Fatal("cancelled context must fail")
	}
}

func TestSplitSeedSpreads(t *testing.T) {
	seen := map[int64]bool{}
	for s := 0; s < 256; s++ {
		seen[splitSeed(1, s)] = true
	}
	if len(seen) != 256 {
		t.Fatalf("splitSeed collided: %d distinct of 256", len(seen))
	}
	if splitSeed(1, 0) == splitSeed(2, 0) {
		t.Fatal("splitSeed must depend on the sweep seed")
	}
}
