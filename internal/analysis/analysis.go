// Package analysis is gridlint's multichecker framework: a small,
// stdlib-only (go/ast, go/parser, go/types, go/token) static-analysis
// harness plus the repo-tailored analyzers that gate every PR (see
// DESIGN.md "Static analysis & race gate").
//
// The framework mirrors the shape of golang.org/x/tools/go/analysis
// without the dependency: an Analyzer inspects one type-checked package
// through a Pass and reports Diagnostics; the Runner loads packages,
// applies //gridlint:ignore suppressions, and aggregates results.
//
// Suppression: a diagnostic is silenced by a comment of the form
//
//	//gridlint:ignore <analyzer> <reason...>
//
// placed either on the same line as the offending code or on the line
// directly above it. The analyzer name "all" silences every analyzer.
// A reason is mandatory — ignore directives without one are themselves
// reported as diagnostics, so suppressions stay auditable.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// and a human-readable message.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String formats the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static-analysis pass.
type Analyzer struct {
	// Name identifies the analyzer in output and ignore directives.
	Name string
	// Doc is a one-line description shown by gridlint -list.
	Doc string
	// Run inspects the package behind pass and reports findings through
	// pass.Report. Returning an error aborts the whole run (reserved for
	// internal failures, not findings).
	Run func(pass *Pass) error
}

// Pass carries one type-checked package to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info
	// Module is the module path of the repo under analysis; analyzers
	// use it to classify callees as repo-internal. Empty disables the
	// classification (golden tests).
	Module string

	diags *[]Diagnostic
}

// Report records a finding at pos.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// IgnorePrefix is the comment directive that suppresses a diagnostic.
const IgnorePrefix = "//gridlint:ignore"

// ignoreDirective is one parsed //gridlint:ignore comment.
type ignoreDirective struct {
	line     int
	analyzer string
	reason   string
}

// parseIgnores extracts the ignore directives of a file and reports
// malformed ones (missing analyzer or reason) as diagnostics.
func parseIgnores(fset *token.FileSet, f *ast.File, diags *[]Diagnostic) []ignoreDirective {
	var out []ignoreDirective
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, IgnorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimSpace(strings.TrimPrefix(c.Text, IgnorePrefix))
			name, reason, _ := strings.Cut(rest, " ")
			reason = strings.TrimSpace(reason)
			if name == "" || reason == "" {
				*diags = append(*diags, Diagnostic{
					Pos:      pos,
					Analyzer: "gridlint",
					Message:  "malformed ignore directive: want //gridlint:ignore <analyzer> <reason>",
				})
				continue
			}
			out = append(out, ignoreDirective{line: pos.Line, analyzer: name, reason: reason})
		}
	}
	return out
}

// suppress drops diagnostics covered by an ignore directive on the same
// line or the line directly above. Directives are matched per file.
func suppress(diags []Diagnostic, ignores map[string][]ignoreDirective) []Diagnostic {
	out := diags[:0]
	for _, d := range diags {
		if d.Analyzer == "gridlint" || !suppressed(d, ignores[d.Pos.Filename]) {
			out = append(out, d)
		}
	}
	return out
}

func suppressed(d Diagnostic, dirs []ignoreDirective) bool {
	for _, dir := range dirs {
		if dir.analyzer != d.Analyzer && dir.analyzer != "all" {
			continue
		}
		if dir.line == d.Pos.Line || dir.line == d.Pos.Line-1 {
			return true
		}
	}
	return false
}

// sortDiagnostics orders findings by file, line, column, analyzer for
// stable output.
func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
