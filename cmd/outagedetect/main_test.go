package main

import (
	"path/filepath"
	"testing"

	"os"
	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
)

func writeDataset(t *testing.T) string {
	t.Helper()
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 10, Seed: 2, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "d.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := d.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunPatterns(t *testing.T) {
	path := writeDataset(t)
	for _, pattern := range []string{"none", "outage", "random", "cluster"} {
		if err := run(path, pattern, 2, 3, 0.7, 1, false); err != nil {
			t.Fatalf("pattern %s: %v", pattern, err)
		}
	}
}

func TestRunBadInputs(t *testing.T) {
	path := writeDataset(t)
	if err := run(path, "bogus", 2, 3, 0.7, 1, false); err == nil {
		t.Fatal("expected unknown-pattern error")
	}
	if err := run("/does/not/exist.json", "none", 2, 3, 0.7, 1, false); err == nil {
		t.Fatal("expected open error")
	}
}
