package loadgen

import (
	"fmt"

	"pmuoutage/internal/wire"
)

// FrameSource emits a deterministic stream of encoded PMU wire frames:
// an OU load process modulates a nominal flat-voltage profile, the
// noise model perturbs it like a real PMU, and each step is packed with
// the internal/wire codec into a reused buffer. Load generators
// (cmd/benchserve) drive HTTP ingest from this without touching JSON.
// A FrameSource is not safe for concurrent use.
type FrameSource struct {
	proc  *Process
	noise *NoiseModel
	frame *wire.Frame
	buf   []byte
	vm    []float64 //gridlint:unit pu
	va    []float64 //gridlint:unit rad
	miss  []bool
	seq   uint32
	// missEvery marks bus 0 missing on every missEvery-th frame
	// (0 disables), exercising the bitmap path under load.
	missEvery int
}

// NewFrameSource builds a source for n buses. steps sizes the OU
// discretisation (one synthetic day); missEvery > 0 injects a missing
// measurement on every missEvery-th frame.
func NewFrameSource(n, steps int, seed int64, missEvery int) (*FrameSource, error) {
	if missEvery < 0 {
		return nil, fmt.Errorf("loadgen: negative missEvery %d", missEvery)
	}
	proc, err := NewProcess(n, DefaultOU(steps), seed)
	if err != nil {
		return nil, err
	}
	return &FrameSource{
		proc:      proc,
		noise:     NewNoiseModel(0, 0, seed+1),
		frame:     wire.GetFrame(),
		vm:        make([]float64, n),
		va:        make([]float64, n),
		miss:      make([]bool, n),
		missEvery: missEvery,
	}, nil
}

// Next advances one step and returns the encoded frame. The returned
// bytes are valid until the next call — copy them to retain.
func (fs *FrameSource) Next() ([]byte, error) {
	mult := fs.proc.Step()
	for i, m := range mult {
		fs.vm[i] = m
		fs.va[i] = -0.02 * float64(i) * m
	}
	vm, va := fs.noise.Perturb(fs.vm, fs.va)
	copy(fs.vm, vm)
	copy(fs.va, va)
	fs.seq++
	var miss []bool
	if fs.missEvery > 0 && fs.seq%uint32(fs.missEvery) == 0 {
		fs.miss[0] = true
		miss = fs.miss
	}
	if err := fs.frame.Pack(fs.seq, fs.vm, fs.va, miss); err != nil {
		return nil, err
	}
	fs.miss[0] = false
	out, err := wire.AppendFrame(fs.buf[:0], fs.frame)
	if err != nil {
		return nil, err
	}
	fs.buf = out
	return out, nil
}

// Sample returns the measurement vectors behind the last Next frame —
// the JSON-mode body for the same step. The slices are reused across
// calls.
func (fs *FrameSource) Sample() (vm, va []float64, missing []int) {
	if fs.missEvery > 0 && fs.seq%uint32(fs.missEvery) == 0 {
		missing = []int{0}
	}
	return fs.vm, fs.va, missing
}

// Seq returns the sequence number of the last emitted frame.
func (fs *FrameSource) Seq() uint32 { return fs.seq }

// Close recycles the source's pooled frame.
func (fs *FrameSource) Close() {
	if fs.frame != nil {
		wire.PutFrame(fs.frame)
		fs.frame = nil
	}
}
