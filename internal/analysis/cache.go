package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// cacheSchema versions the cache file layout; bump on incompatible
// changes so stale files are discarded, never misread.
const cacheSchema = "gridlint-cache-1"

// cacheFile is the on-disk result cache: one entry per analyzed package
// directory, keyed by a hash of everything that can change its findings.
type cacheFile struct {
	Schema string `json:"schema"`
	// Base fingerprints run-wide inputs: the Go toolchain, the analyzer
	// set, and the analyzer implementation sources themselves — editing
	// an analyzer invalidates every entry.
	Base    string                `json:"base"`
	Entries map[string]cacheEntry `json:"entries"`
}

type cacheEntry struct {
	Key      string    `json:"key"`
	Findings []Finding `json:"findings"`
}

// hasher memoizes file-content hashes for one run.
type hasher struct{ files map[string]string }

func (h *hasher) file(path string) (string, error) {
	if v, ok := h.files[path]; ok {
		return v, nil
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(data)
	v := hex.EncodeToString(sum[:])
	h.files[path] = v
	return v, nil
}

// goFilesIn lists the .go files of dir (sorted); test files included
// only when withTests is set.
func goFilesIn(dir string, withTests bool) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") {
			continue
		}
		if !withTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, name)
	}
	sort.Strings(out)
	return out, nil
}

// dirFor maps a module-internal import path to its directory.
func (l *Loader) dirFor(path string) (string, bool) {
	if path == l.modPath {
		return l.modRoot, true
	}
	if rest, ok := strings.CutPrefix(path, l.modPath+"/"); ok {
		return filepath.Join(l.modRoot, filepath.FromSlash(rest)), true
	}
	return "", false
}

// pkgKey hashes everything package-local that can change dir's
// findings: the contents of its .go files (tests included — allocfree
// reads them) plus, transitively, the non-test sources of every
// module-internal package it imports (unit annotations and type changes
// in dependencies flow into this package's results). Stdlib drift is
// covered by the toolchain version in the base key.
func (l *Loader) pkgKey(dir string, h *hasher) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	visited := map[string]bool{}
	queue := []string{abs}
	roots := map[string]bool{abs: true}
	var lines []string
	fset := token.NewFileSet()
	for len(queue) > 0 {
		d := queue[0]
		queue = queue[1:]
		if visited[d] {
			continue
		}
		visited[d] = true
		names, err := goFilesIn(d, roots[d])
		if err != nil {
			return "", err
		}
		for _, name := range names {
			full := filepath.Join(d, name)
			sum, err := h.file(full)
			if err != nil {
				return "", err
			}
			rel, err := filepath.Rel(l.modRoot, full)
			if err != nil {
				rel = full
			}
			lines = append(lines, filepath.ToSlash(rel)+"\x00"+sum)
			if strings.HasSuffix(name, "_test.go") {
				continue // test-only imports don't affect findings
			}
			f, err := parser.ParseFile(fset, full, nil, parser.ImportsOnly)
			if err != nil {
				return "", err
			}
			for _, imp := range f.Imports {
				path := strings.Trim(imp.Path.Value, `"`)
				if depDir, ok := l.dirFor(path); ok && !visited[depDir] {
					queue = append(queue, depDir)
				}
			}
		}
	}
	sort.Strings(lines)
	sum := sha256.Sum256([]byte(strings.Join(lines, "\n")))
	return hex.EncodeToString(sum[:]), nil
}

// baseKey hashes run-wide inputs: toolchain version, the selected
// analyzer set, and the sources of the analysis framework itself (when
// the analyzed module contains them — analyzer edits must invalidate
// results).
func (l *Loader) baseKey(analyzers []*Analyzer, h *hasher) string {
	var b strings.Builder
	b.WriteString(cacheSchema + "\n" + runtime.Version() + "\n")
	for _, a := range analyzers {
		fmt.Fprintf(&b, "%s|%s\n", a.Name, a.severity())
	}
	for _, sub := range []string{"internal/analysis", "cmd/gridlint"} {
		dir := filepath.Join(l.modRoot, filepath.FromSlash(sub))
		names, err := goFilesIn(dir, false)
		if err != nil {
			continue // module without gridlint sources: toolchain+set suffice
		}
		for _, name := range names {
			if sum, err := h.file(filepath.Join(dir, name)); err == nil {
				b.WriteString(name + "\x00" + sum + "\n")
			}
		}
	}
	sum := sha256.Sum256([]byte(b.String()))
	return hex.EncodeToString(sum[:])
}

// loadCache reads the cache file; any problem (missing, corrupt, wrong
// schema or base) yields a fresh cache — caching must never change
// results, only skip work.
func loadCache(path, base string) *cacheFile {
	fresh := &cacheFile{Schema: cacheSchema, Base: base, Entries: map[string]cacheEntry{}}
	if path == "" {
		return fresh
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return fresh
	}
	var c cacheFile
	if json.Unmarshal(data, &c) != nil || c.Schema != cacheSchema || c.Base != base || c.Entries == nil {
		return fresh
	}
	return &c
}

// save writes the cache file; failures are non-fatal (the next run just
// re-analyzes).
func (c *cacheFile) save(path string) {
	if path == "" {
		return
	}
	data, err := json.MarshalIndent(c, "", "  ")
	if err != nil {
		return
	}
	_ = os.WriteFile(path, append(data, '\n'), 0o644)
}

// RunDirsReport loads and analyzes every directory and assembles the
// machine-readable Report, suppressed findings included. When cachePath
// is non-empty, per-package results are served from and stored into the
// file-hash cache there: a package whose source closure is unchanged is
// not re-loaded or re-analyzed, and reports its previous findings
// verbatim.
func RunDirsReport(l *Loader, analyzers []*Analyzer, dirs []string, cachePath string) (*Report, error) {
	rep := &Report{Module: l.modPath, Analyzers: Describe(analyzers), Packages: len(dirs)}
	h := &hasher{files: map[string]string{}}
	base := l.baseKey(analyzers, h)
	cache := loadCache(cachePath, base)
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(l.modRoot, abs)
		if err != nil {
			rel = abs
		}
		rel = filepath.ToSlash(rel)
		key, err := l.pkgKey(dir, h)
		if err != nil {
			return nil, fmt.Errorf("analysis: hashing %s: %w", dir, err)
		}
		if ent, ok := cache.Entries[rel]; ok && ent.Key == key {
			rep.Findings = append(rep.Findings, ent.Findings...)
			rep.CacheHits++
			continue
		}
		pkg, err := l.LoadDir(dir)
		if err != nil {
			return nil, err
		}
		diags, err := RunPackageAll(analyzers, pkg, l.modPath)
		if err != nil {
			return nil, err
		}
		fs := make([]Finding, 0, len(diags))
		for _, d := range diags {
			fs = append(fs, findingOf(d, l.modRoot))
		}
		sortFindings(fs)
		cache.Entries[rel] = cacheEntry{Key: key, Findings: fs}
		rep.Findings = append(rep.Findings, fs...)
	}
	sortFindings(rep.Findings)
	rep.tally()
	cache.save(cachePath)
	return rep, nil
}
