package detect

import (
	"fmt"
	"math"
	"sort"

	"pmuoutage/internal/dataset"
	"pmuoutage/internal/mat"
	"pmuoutage/internal/metrics"
	"pmuoutage/internal/pmunet"
)

// Group is one cluster's detection group: the in-cluster members
// D_C(C) used when the cluster's data are intact, and the out-of-cluster
// alternative D_C(C̄) used when any cluster measurement is missing
// (Eqs. 8 and 10). Members are bus indices.
type Group struct {
	InCluster  []int `json:"in_cluster"`
	OutCluster []int `json:"out_cluster"`
}

// Select implements Eq. (10): pick the out-of-cluster members when any
// in-cluster measurement is missing, otherwise the in-cluster members.
func (g *Group) Select(clusterMissing bool) []int {
	if clusterMissing {
		return g.OutCluster
	}
	return g.InCluster
}

// GroupConfig tunes detection-group formation.
type GroupConfig struct {
	// Size is the target member count per group side; 0 derives it from
	// the grid size (at least 4, roughly N/6).
	Size int `json:"size"`
	// Mix is the fraction of members chosen by learned capability
	// (Eq. 8); the rest come from the naive PCA-orthogonality choice.
	// Mix = 1 is the paper's proposed group (Fig. 4's x-axis). Through
	// detect.Config the zero value selects the default of 1; pass a
	// negative Mix to request the pure naive (orthogonal-only) group.
	Mix float64 `json:"mix"`
	// Channel maps buses to feature rows for the PCA loadings.
	Channel dataset.Channel `json:"channel"`
}

func (c GroupConfig) withDefaults(n int) GroupConfig {
	if c.Size <= 0 {
		// Groups must stay comfortably larger than the union-subspace
		// ranks they discriminate (max node degree + S⁰ rank), or the
		// restricted residuals degenerate to zero.
		c.Size = n / 3
		if c.Size < 8 {
			c.Size = 8
		}
	}
	if c.Mix < 0 {
		c.Mix = 0
	}
	if c.Mix > 1 {
		c.Mix = 1
	}
	return c
}

// BuildGroups forms one detection group per PDC cluster from the
// capability matrix and the PCA loadings of the pooled outage-deviation
// data. loadings has one row per feature (dev-data left singular
// vectors); it may be nil when Mix = 1.
func BuildGroups(nw *pmunet.Network, caps *Capabilities, loadings *mat.Dense, cfg GroupConfig) ([]Group, error) {
	n := nw.G.N()
	cfg = cfg.withDefaults(n)
	groups := make([]Group, nw.NumClusters())
	for c := range groups {
		cluster := nw.Clusters[c]
		inPool := cluster
		outPool := complement(n, cluster)

		capIn := capabilityMembers(caps, cluster, inPool)
		capOut := capabilityMembers(caps, cluster, outPool)

		nCap := int(math.Round(cfg.Mix * float64(cfg.Size)))
		nOrth := cfg.Size - nCap

		var orthIn, orthOut []int
		if nOrth > 0 {
			if loadings == nil {
				return nil, fmt.Errorf("detect: group mix %.2f needs PCA loadings", cfg.Mix)
			}
			orthIn = orthogonalMembers(loadings, inPool, cfg.Channel, n, nOrth+len(inPool))
			orthOut = orthogonalMembers(loadings, outPool, cfg.Channel, n, nOrth+len(outPool))
		}
		// The intact-cluster group D_C(C) leads with in-cluster members
		// but is topped up from outside so it always has "a sufficient
		// number of nodes from separated sensing regions" (§IV-B) — a
		// PDC cluster alone is far smaller than a useful group. The
		// alternate D_C(C̄) must work when the whole cluster is dark, so
		// it draws exclusively from outside.
		groups[c] = Group{
			InCluster:  mixMembers(append(capIn, capOut...), append(orthIn, orthOut...), nCap, cfg.Size),
			OutCluster: mixMembers(capOut, orthOut, nCap, cfg.Size),
		}
		if len(groups[c].InCluster) == 0 {
			groups[c].InCluster = cluster // degenerate fallback
		}
		if len(groups[c].OutCluster) == 0 {
			groups[c].OutCluster = outPool
		}
	}
	return groups, nil
}

// capabilityMembers implements Eq. (8) for one pool (inside or outside
// the cluster): pool nodes ranked by their worst-case capability over
// the cluster, min_{k∈C} p_{k,i}, best first. Nodes with p ≈ 1 for every
// cluster member — the literal Eq. (8) set — sort to the front; the
// ranked tail lets groups fill to the size detection requires.
func capabilityMembers(caps *Capabilities, cluster, pool []int) []int {
	type scored struct {
		node  int
		worst float64
	}
	var all []scored
	for _, i := range pool {
		worst := 1.0
		for _, k := range cluster {
			if p := caps.P[k][i]; p < worst {
				worst = p
			}
		}
		all = append(all, scored{i, worst})
	}
	sort.SliceStable(all, func(a, b int) bool { return all[a].worst > all[b].worst })
	// Qualified nodes (p ≈ 1) lead; the rest follow in capability order
	// so groups can always be filled to their target size — the Eq. (8)
	// threshold is a preference, and starving a group below the size
	// needed to out-dimension the subspaces would break detection.
	out := make([]int, 0, len(all))
	for _, s := range all {
		out = append(out, s.node)
	}
	return out
}

// orthogonalMembers is the naive PCA choice of §IV-B: greedily pick pool
// nodes whose loading vectors are most mutually orthogonal.
func orthogonalMembers(loadings *mat.Dense, pool []int, ch dataset.Channel, n, want int) []int {
	var cands []loadingCand
	for _, i := range pool {
		var v []float64
		switch ch {
		case dataset.Stacked:
			v = append(loadings.Row(i), loadings.Row(i+n)...)
		default:
			v = loadings.Row(i)
		}
		nrm := mat.Norm2(v)
		if metrics.NearZero(nrm, metrics.DefaultEps) {
			continue // numerically dead loading row; dividing by it would amplify noise
		}
		cands = append(cands, loadingCand{i, v, nrm})
	}
	if len(cands) == 0 {
		return nil
	}
	// Start from the strongest loading.
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].nrm > cands[b].nrm })
	sel := []loadingCand{cands[0]}
	for len(sel) < want {
		best := -1
		bestCos := math.Inf(1)
		for ci, c := range cands {
			if ci == 0 || containsNode(sel, c.node) {
				continue
			}
			worst := 0.0
			for _, s := range sel {
				cos := math.Abs(mat.Dot(c.vec, s.vec)) / (c.nrm * s.nrm)
				if cos > worst {
					worst = cos
				}
			}
			if worst < bestCos {
				bestCos, best = worst, ci
			}
		}
		if best < 0 || bestCos > 0.7 {
			break // no sufficiently orthogonal candidate left
		}
		sel = append(sel, cands[best])
	}
	out := make([]int, len(sel))
	for i, s := range sel {
		out[i] = s.node
	}
	sort.Ints(out)
	return out
}

// loadingCand pairs a bus with its PCA loading vector.
type loadingCand struct {
	node int
	vec  []float64
	nrm  float64
}

func containsNode(sel []loadingCand, node int) bool {
	for _, s := range sel {
		if s.node == node {
			return true
		}
	}
	return false
}

// mixMembers combines nCap capability members with orthogonal members up
// to the target size, deduplicated, capability members first.
func mixMembers(capM, orthM []int, nCap, size int) []int {
	seen := map[int]bool{}
	var out []int
	add := func(v int) {
		if !seen[v] && len(out) < size {
			seen[v] = true
			out = append(out, v)
		}
	}
	for _, v := range capM {
		if len(out) >= nCap {
			break
		}
		add(v)
	}
	for _, v := range orthM {
		add(v)
	}
	// Deliberately no capability top-up: when the orthogonal selection
	// comes up short the group stays small — that scarcity is the
	// weakness of the naive choice that Fig. 4 demonstrates.
	sort.Ints(out)
	return out
}

func complement(n int, set []int) []int {
	in := make([]bool, n)
	for _, v := range set {
		in[v] = true
	}
	var out []int
	for i := 0; i < n; i++ {
		if !in[i] {
			out = append(out, i)
		}
	}
	return out
}
