package detect

import (
	"context"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
	"reflect"
	"testing"

	"pmuoutage/internal/cases"
	"pmuoutage/internal/dataset"
	"pmuoutage/internal/pmunet"
)

// trainFixture regenerates the exact configuration the pre-refactor
// golden values below were captured on: IEEE-14, DC, 20 steps, seed 1,
// 3 PDC clusters, default detector config.
func trainFixture(t *testing.T, workers int) (*Detector, *dataset.Data) {
	t.Helper()
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 20, Seed: 1, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Train(d, nw, Config{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return det, d
}

func TestTrainWorkersEquivalence(t *testing.T) {
	seq, _ := trainFixture(t, 1)
	for _, workers := range []int{0, 8} {
		parl, _ := trainFixture(t, workers)
		// Worker count is config, not learned state; align it before the
		// deep compare so only the learned fields are under test.
		parl.cfg.Workers = seq.cfg.Workers
		if !reflect.DeepEqual(seq, parl) {
			t.Fatalf("workers=%d: trained detector differs from sequential", workers)
		}
	}
}

// TestTrainGoldenFingerprint pins training and detection to the
// pre-parallel (PR 1) outputs: the calibrated threshold bit pattern and
// a hash over the detection results of every valid line's first sample.
func TestTrainGoldenFingerprint(t *testing.T) {
	for _, workers := range []int{1, 8} {
		det, d := trainFixture(t, workers)
		if got := fmt.Sprintf("%x", math.Float64bits(det.NoOutageThreshold())); got != "3ec54314c9b68569" {
			t.Errorf("workers=%d: threshold bits %s, want pre-refactor 3ec54314c9b68569", workers, got)
		}
		h := sha256.New()
		for _, e := range d.ValidLines {
			r, err := det.Detect(d.Outages[e].Samples[0])
			if err != nil {
				t.Fatal(err)
			}
			for _, l := range r.Lines {
				binary.Write(h, binary.LittleEndian, int64(l))
			}
			for _, s := range r.NodeScores {
				binary.Write(h, binary.LittleEndian, math.Float64bits(s))
			}
			binary.Write(h, binary.LittleEndian, math.Float64bits(r.DeviationEnergy))
		}
		if got := fmt.Sprintf("%x", h.Sum(nil)[:8]); got != "59484bc947acc56a" {
			t.Errorf("workers=%d: detection fingerprint %s, want pre-refactor 59484bc947acc56a", workers, got)
		}
	}
}

func TestTrainContextCancelled(t *testing.T) {
	g := cases.IEEE14()
	d, err := dataset.Generate(g, dataset.GenConfig{Steps: 8, Seed: 1, UseDC: true})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := pmunet.Build(g, 3)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := TrainContext(ctx, d, nw, Config{}); err == nil {
		t.Fatal("cancelled context must abort training")
	}
}
