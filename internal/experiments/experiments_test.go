package experiments

import (
	"context"
	"strings"
	"testing"
)

// quickCfg keeps experiment tests fast: smallest system, DC power flow,
// short windows.
func quickCfg() Config {
	return Config{
		Systems:    []string{"ieee14"},
		TrainSteps: 20,
		TestSteps:  4,
		Seed:       5,
		UseDC:      true,
	}
}

func TestRowString(t *testing.T) {
	r := Row{Figure: "fig5", System: "ieee14", Method: "subspace", IA: 0.9, FA: 0.1, N: 3}
	s := r.String()
	for _, want := range []string{"fig5", "ieee14", "subspace", "IA=0.9", "FA=0.1"} {
		if !strings.Contains(s, want) {
			t.Fatalf("Row.String() = %q missing %q", s, want)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	rows, err := Fig5(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
	var sub, mlrIA float64
	for _, r := range rows {
		if r.N == 0 {
			t.Fatalf("row %v has no samples", r)
		}
		switch r.Method {
		case "subspace":
			sub = r.IA
		case "mlr":
			mlrIA = r.IA
		}
	}
	// Paper shape: comparable performance with complete data. Both
	// should be clearly better than chance.
	if sub < 0.6 || mlrIA < 0.6 {
		t.Errorf("complete data IA too low: subspace %.3f, mlr %.3f", sub, mlrIA)
	}
}

func TestFig7Shape(t *testing.T) {
	rows, err := Fig7(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sub, base Row
	for _, r := range rows {
		if r.Method == "subspace" {
			sub = r
		} else {
			base = r
		}
	}
	// Paper shape: the subspace method clearly beats MLR when outage
	// data are missing.
	if sub.IA <= base.IA {
		t.Errorf("subspace IA %.3f must exceed MLR IA %.3f with missing outage data", sub.IA, base.IA)
	}
}

func TestFig8Shape(t *testing.T) {
	rows, err := Fig8(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sub, base Row
	for _, r := range rows {
		if r.Method == "subspace" {
			sub = r
		} else {
			base = r
		}
	}
	// Paper shape: the subspace method rarely confuses missing data for
	// outages; MLR's false-alarm rate is much higher.
	if sub.FA > 0.2 {
		t.Errorf("subspace FA on missing-normal = %.3f, want near 0", sub.FA)
	}
	if base.FA < sub.FA {
		t.Errorf("MLR FA %.3f should exceed subspace FA %.3f", base.FA, sub.FA)
	}
}

func TestFig9Shape(t *testing.T) {
	rows, err := Fig9(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	var sub, base Row
	for _, r := range rows {
		if r.Method == "subspace" {
			sub = r
		} else {
			base = r
		}
	}
	if sub.IA < base.IA {
		t.Errorf("subspace IA %.3f should be at least MLR IA %.3f under uncorrelated missing data", sub.IA, base.IA)
	}
}

func TestFig4Shape(t *testing.T) {
	cfg := quickCfg()
	rows, err := Fig4(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 mix points", len(rows))
	}
	// Paper shape: the proposed group (x=1) beats the naive group (x=0).
	var at0, at1 Row
	for _, r := range rows {
		if r.X == 0 {
			at0 = r
		}
		if r.X == 1 {
			at1 = r
		}
	}
	if at1.IA < at0.IA {
		t.Errorf("proposed group IA %.3f should be >= naive group IA %.3f", at1.IA, at0.IA)
	}
}

func TestFig10Shape(t *testing.T) {
	cfg := quickCfg()
	rows, err := Fig10(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 5 reliability levels", len(rows))
	}
	for _, r := range rows {
		if r.FA > 0.5 {
			t.Errorf("effective FA at r=%.2f is %.3f — should stay moderate", r.X, r.FA)
		}
	}
}

func TestAblationRuns(t *testing.T) {
	rows, err := Ablation(context.Background(), quickCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6 variants", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Method] = true
		if r.N == 0 {
			t.Errorf("variant %s evaluated nothing", r.Method)
		}
	}
	for _, want := range []string{"residual", "regressor", "unscaled", "magnitude", "stacked", "mvee"} {
		if !names[want] {
			t.Errorf("missing variant %s", want)
		}
	}
}

func TestUnknownSystemFails(t *testing.T) {
	cfg := quickCfg()
	cfg.Systems = []string{"nope"}
	if _, err := Fig5(context.Background(), cfg); err == nil {
		t.Fatal("expected error for unknown system")
	}
}
