package metrics

import (
	"math"
	"testing"
)

func TestNearZeroBoundary(t *testing.T) {
	eps := 1e-9
	cases := []struct {
		x    float64
		want bool
	}{
		{0, true},
		{eps, true},          // boundary is inclusive
		{-eps, true},         // symmetric
		{math.Nextafter(eps, 1), false},
		{-math.Nextafter(eps, 1), false},
		{1e-12, true},
		{1, false},
		{math.NaN(), false},
		{math.Inf(1), false},
	}
	for _, c := range cases {
		if got := NearZero(c.x, eps); got != c.want {
			t.Errorf("NearZero(%v, %v) = %v, want %v", c.x, eps, got, c.want)
		}
	}
}

func TestNearEqual(t *testing.T) {
	eps := 1e-9
	cases := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + eps/2, true},
		{1, 1 + 3*eps, false},
		{0, eps, true}, // absolute regime near zero
		{0, 2 * eps, false},
		{1e12, 1e12 * (1 + eps/2), true}, // relative regime at scale
		{1e12, 1e12 + 1, true},
		{1e12, 1e12 * (1 + 1e-6), false},
		{math.Inf(1), math.Inf(1), true},
		{math.Inf(1), math.Inf(-1), false},
		{math.NaN(), math.NaN(), false},
		{math.NaN(), 1, false},
	}
	for _, c := range cases {
		if got := NearEqual(c.a, c.b, eps); got != c.want {
			t.Errorf("NearEqual(%v, %v, %v) = %v, want %v", c.a, c.b, eps, got, c.want)
		}
		if got := NearEqual(c.b, c.a, eps); got != c.want {
			t.Errorf("NearEqual(%v, %v, %v) = %v, want %v (asymmetric!)", c.b, c.a, eps, got, c.want)
		}
	}
}

func TestPositiveFloor(t *testing.T) {
	if got := PositiveFloor(0, 1e-18); got != 1e-18 {
		t.Errorf("PositiveFloor(0) = %v", got)
	}
	if got := PositiveFloor(1e-30, 1e-18); got != 1e-18 {
		t.Errorf("PositiveFloor(1e-30) = %v", got)
	}
	if got := PositiveFloor(2.5, 1e-18); got != 2.5 {
		t.Errorf("PositiveFloor(2.5) = %v", got)
	}
	if got := PositiveFloor(-1, 1e-18); got != 1e-18 {
		t.Errorf("PositiveFloor(-1) = %v; negative energies are numeric noise and must clamp", got)
	}
	if got := PositiveFloor(math.NaN(), 1e-18); !math.IsNaN(got) {
		t.Errorf("PositiveFloor(NaN) = %v, want NaN to propagate", got)
	}
}
