package api

import "encoding/json"

// Code is the stable machine-readable classification of a serving-tier
// error. Codes are part of the wire contract: clients and the router
// branch on them (never on status text or error prose), so a code, once
// shipped, keeps its meaning. Each code has one canonical HTTP status,
// and a code is either retryable (transient — back off and resend) or
// terminal.
type Code string

const (
	// CodeBadRequest: the request body could not be parsed (malformed
	// JSON, corrupt wire frame, conflicting fields).
	CodeBadRequest Code = "bad_request"
	// CodeTooLarge: the request body exceeds the server's size bound;
	// the request was rejected whole, never truncated.
	CodeTooLarge Code = "too_large"
	// CodeBadSample: a sample failed facade validation
	// (pmuoutage.ErrBadSample).
	CodeBadSample Code = "bad_sample"
	// CodeBadLine: a line index out of range (pmuoutage.ErrBadLine).
	CodeBadLine Code = "bad_line"
	// CodeUnknownCase: Options.Case names no built-in test system
	// (pmuoutage.ErrUnknownCase).
	CodeUnknownCase Code = "unknown_case"
	// CodeBadModel: a model artifact failed decoding, fingerprint
	// verification, or structural checks (pmuoutage.ErrBadModel).
	CodeBadModel Code = "bad_model"
	// CodeModelVersion: an artifact written under a different format
	// version (pmuoutage.ErrModelVersion).
	CodeModelVersion Code = "model_version"
	// CodeBadPatch: a model patch failed decoding, fingerprint
	// verification, or carried a foreign format version
	// (pmuoutage.ErrBadPatch, pmuoutage.ErrPatchVersion).
	CodeBadPatch Code = "bad_patch"
	// CodePatchBase: a patch was applied to a shard serving a model
	// other than the patch's pinned base (pmuoutage.ErrPatchBase).
	// Terminal for this request; reload the base first, then re-apply.
	CodePatchBase Code = "patch_base"
	// CodeConfig: an invalid service or client configuration reached a
	// handler (service.ErrConfig).
	CodeConfig Code = "config"
	// CodeUnknownShard: the request routed to a shard name the daemon
	// does not own (service.ErrUnknownShard).
	CodeUnknownShard Code = "unknown_shard"
	// CodeUnknownModel: the registry holds no artifact under the
	// requested fingerprint.
	CodeUnknownModel Code = "unknown_model"
	// CodeNotFound: a debug lookup (e.g. a trace ID at /debug/traces)
	// matched nothing. Terminal; tail sampling may simply have dropped
	// the trace.
	CodeNotFound Code = "not_found"
	// CodeOverloaded: load-shedding — a bounded queue is full
	// (service.ErrOverloaded). Retryable after backoff.
	CodeOverloaded Code = "overloaded"
	// CodeUnavailable: the shard or backend exists but cannot answer
	// right now (training, restarting, ejected). Retryable.
	CodeUnavailable Code = "unavailable"
	// CodeClosed: the process is shutting down (service.ErrClosed).
	// Terminal against this process; a router fails the request over.
	CodeClosed Code = "closed"
	// CodeDeadline: the per-request deadline expired server-side.
	CodeDeadline Code = "deadline"
	// CodePromotionBlocked: a canary promotion was requested while the
	// report's gates fail.
	CodePromotionBlocked Code = "promotion_blocked"
	// CodeInternal: an unclassified server-side failure.
	CodeInternal Code = "internal"
)

// Retryable reports whether the code names a transient condition worth
// retrying against the same server after a short backoff. This is the
// branch the client takes when an error envelope carries a code;
// HTTP-status classification is only the fallback for responses from
// non-envelope-speaking servers.
func (c Code) Retryable() bool {
	return c == CodeOverloaded || c == CodeUnavailable
}

// HTTPStatus returns the code's canonical HTTP status. The mapping is
// total: unknown or empty codes answer 500.
func (c Code) HTTPStatus() int {
	switch c {
	case CodeBadRequest, CodeBadSample, CodeBadLine, CodeUnknownCase,
		CodeBadModel, CodeModelVersion, CodeBadPatch, CodeConfig:
		return 400
	case CodeUnknownShard, CodeUnknownModel, CodeNotFound:
		return 404
	case CodePromotionBlocked, CodePatchBase:
		return 409
	case CodeTooLarge:
		return 413
	case CodeOverloaded:
		return 429
	case CodeUnavailable, CodeClosed:
		return 503
	case CodeDeadline:
		return 504
	default:
		return 500
	}
}

// DecodeError parses an error envelope from a non-2xx response body.
// ok reports whether the body was a well-formed envelope with a
// non-empty error or code — the signal that the server speaks this
// package's contract and the caller may branch on Code.
func DecodeError(body []byte) (env ErrorEnvelope, ok bool) {
	if err := json.Unmarshal(body, &env); err != nil {
		return ErrorEnvelope{}, false
	}
	return env, env.Error != "" || env.Code != ""
}

// RetryableResponse classifies one non-2xx response: when the body is
// an error envelope carrying a code, the code decides; otherwise the
// HTTP status does (429 and 503 are the transient statuses). Client and
// router share this one classification so they can never disagree about
// what deserves a retry.
func RetryableResponse(status int, body []byte) bool {
	if env, ok := DecodeError(body); ok && env.Code != "" {
		return env.Code.Retryable()
	}
	return status == 429 || status == 503
}
