package router

import (
	"context"
	"encoding/json"
	"fmt"

	"pmuoutage/api"
	"pmuoutage/internal/cases"
	"pmuoutage/internal/par"
)

// fleetFigures is the deterministic expansion order of "all" when a
// run is distributed: the same figures cmd/experiments runs locally, in
// the paper's presentation order.
var fleetFigures = []string{"fig4", "fig5", "fig7", "fig8", "fig9", "fig10", "ablation", "recovery", "multi"}

// Experiments distributes one figure request across the primary pool's
// workers: the run is split into (figure, system) jobs, each job is
// forwarded to the least-loaded worker with the same failover loop the
// data plane uses, and the rows come back concatenated in job order —
// byte-identical to a local run, because every row derives its own
// seeds from (figure, system, seed) and job order is fixed.
func (r *Router) Experiments(ctx context.Context, req api.ExperimentRequest) ([]api.ExperimentRow, error) {
	figures := []string{req.Figure}
	if req.Figure == "all" {
		figures = fleetFigures
	}
	systems := req.Systems
	if len(systems) == 0 {
		systems = cases.Names()
	}
	type job struct {
		figure, system string
	}
	var jobs []job
	for _, f := range figures {
		for _, s := range systems {
			jobs = append(jobs, job{figure: f, system: s})
		}
	}

	workers := len(r.primary.backends) * 2
	results, err := par.Map(ctx, workers, len(jobs), func(ctx context.Context, i int) ([]api.ExperimentRow, error) {
		jreq := req
		jreq.Figure = jobs[i].figure
		jreq.Systems = []string{jobs[i].system}
		body, err := json.Marshal(jreq)
		if err != nil {
			return nil, err
		}
		raw, _, err := r.forward(ctx, r.primary, "/v1/experiments", "application/json", body)
		if err != nil {
			return nil, fmt.Errorf("job %s/%s: %w", jobs[i].figure, jobs[i].system, err)
		}
		if raw.Status != 200 {
			env, _ := api.DecodeError(raw.Body)
			return nil, fmt.Errorf("%w: job %s/%s: status %d code %s: %s",
				ErrWorker, jobs[i].figure, jobs[i].system, raw.Status, env.Code, env.Error)
		}
		var resp api.ExperimentResponse
		if err := json.Unmarshal(raw.Body, &resp); err != nil {
			return nil, fmt.Errorf("%w: job %s/%s: decoding rows: %v", ErrWorker, jobs[i].figure, jobs[i].system, err)
		}
		return resp.Rows, nil
	})
	if err != nil {
		return nil, err
	}
	var rows []api.ExperimentRow
	for _, rs := range results {
		rows = append(rows, rs...)
	}
	return rows, nil
}
