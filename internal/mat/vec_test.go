package mat

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDotKnown(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("Dot = %v, want 32", got)
	}
}

func TestDotMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Dot([]float64{1}, []float64{1, 2})
}

func TestNorm2(t *testing.T) {
	if got := Norm2([]float64{3, 4}); math.Abs(got-5) > 1e-15 {
		t.Fatalf("Norm2 = %v, want 5", got)
	}
	if Norm2(nil) != 0 {
		t.Fatal("Norm2(nil) != 0")
	}
	if Norm2([]float64{0, 0}) != 0 {
		t.Fatal("Norm2(zeros) != 0")
	}
}

func TestNorm2Overflow(t *testing.T) {
	// Naive sum of squares would overflow here.
	big := math.MaxFloat64 / 2
	got := Norm2([]float64{big, big})
	want := big * math.Sqrt2
	if math.IsInf(got, 0) || math.Abs(got-want)/want > 1e-14 {
		t.Fatalf("Norm2 overflow handling: got %v, want %v", got, want)
	}
}

func TestNormInf(t *testing.T) {
	if got := NormInf([]float64{1, -9, 3}); got != 9 {
		t.Fatalf("NormInf = %v, want 9", got)
	}
}

func TestVecArithmetic(t *testing.T) {
	a := []float64{1, 2}
	b := []float64{3, 5}
	if s := AddVec(a, b); s[0] != 4 || s[1] != 7 {
		t.Fatalf("AddVec = %v", s)
	}
	if d := Sub(b, a); d[0] != 2 || d[1] != 3 {
		t.Fatalf("Sub = %v", d)
	}
	if s := ScaleVec(2, a); s[0] != 2 || s[1] != 4 {
		t.Fatalf("ScaleVec = %v", s)
	}
	dst := make([]float64, 2)
	AxpyTo(dst, 2, a, b) // 2a + b
	if dst[0] != 5 || dst[1] != 9 {
		t.Fatalf("AxpyTo = %v", dst)
	}
}

func TestMeanVariance(t *testing.T) {
	v := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if m := Mean(v); math.Abs(m-5) > 1e-15 {
		t.Fatalf("Mean = %v, want 5", m)
	}
	if vr := Variance(v); math.Abs(vr-4) > 1e-15 {
		t.Fatalf("Variance = %v, want 4", vr)
	}
	if Mean(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Fatal("degenerate Mean/Variance not zero")
	}
}

func TestCauchySchwarzProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true // skip pathological inputs
			}
		}
		lhs := math.Abs(Dot(a, b))
		rhs := Norm2(a) * Norm2(b)
		return lhs <= rhs*(1+1e-12)+1e-300
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	f := func(a, b []float64) bool {
		n := len(a)
		if len(b) < n {
			n = len(b)
		}
		a, b = a[:n], b[:n]
		for _, x := range append(append([]float64{}, a...), b...) {
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e100 {
				return true
			}
		}
		return Norm2(AddVec(a, b)) <= Norm2(a)+Norm2(b)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
