package loadgen

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewProcessValidation(t *testing.T) {
	if _, err := NewProcess(0, DefaultOU(10), 1); err == nil {
		t.Fatal("expected error for zero buses")
	}
	if _, err := NewProcess(3, OUParams{Theta: -1, Sigma: 0.1, DtH: 1}, 1); err == nil {
		t.Fatal("expected error for negative theta")
	}
	if _, err := NewProcess(3, OUParams{Theta: 1, Sigma: 0.1, DtH: 0}, 1); err == nil {
		t.Fatal("expected error for zero dt")
	}
}

func TestProcessDeterministic(t *testing.T) {
	a, _ := NewProcess(4, DefaultOU(24), 42)
	b, _ := NewProcess(4, DefaultOU(24), 42)
	ma := a.Multipliers(10)
	mb := b.Multipliers(10)
	for k := range ma {
		for i := range ma[k] {
			if ma[k][i] != mb[k][i] {
				t.Fatal("same seed must give identical trajectories")
			}
		}
	}
}

func TestProcessMeanReversion(t *testing.T) {
	// Long-run mean of the multipliers must be close to 1 and the
	// stationary standard deviation close to sigma/sqrt(2 theta).
	p := OUParams{Theta: 2, Sigma: 0.05, DtH: 0.1}
	pr, err := NewProcess(1, p, 7)
	if err != nil {
		t.Fatal(err)
	}
	var sum, sumsq float64
	n := 200000
	for k := 0; k < n; k++ {
		x := pr.Step()[0]
		sum += x
		sumsq += x * x
	}
	mean := sum / float64(n)
	std := math.Sqrt(sumsq/float64(n) - mean*mean)
	if math.Abs(mean-1) > 0.01 {
		t.Errorf("stationary mean = %.4f, want ~1", mean)
	}
	wantStd := p.Sigma / math.Sqrt(2*p.Theta)
	if math.Abs(std-wantStd) > 0.2*wantStd {
		t.Errorf("stationary std = %.4f, want ~%.4f", std, wantStd)
	}
}

func TestProcessStaysPositive(t *testing.T) {
	// Even with violent volatility the multipliers must stay positive.
	pr, err := NewProcess(2, OUParams{Theta: 0.1, Sigma: 3, DtH: 1}, 3)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 5000; k++ {
		for _, x := range pr.Step() {
			if x <= 0 {
				t.Fatalf("multiplier %v <= 0 at step %d", x, k)
			}
		}
	}
}

func TestMultipliersShape(t *testing.T) {
	pr, _ := NewProcess(5, DefaultOU(24), 1)
	m := pr.Multipliers(24)
	if len(m) != 24 || len(m[0]) != 5 {
		t.Fatalf("Multipliers shape = %dx%d", len(m), len(m[0]))
	}
}

func TestStepReturnsCopy(t *testing.T) {
	pr, _ := NewProcess(2, DefaultOU(24), 1)
	a := pr.Step()
	a[0] = 999
	b := pr.Step()
	if b[0] > 100 {
		t.Fatal("Step must return a defensive copy")
	}
}

func TestDefaultOUSane(t *testing.T) {
	p := DefaultOU(288)
	if p.DtH <= 0 || math.Abs(p.DtH*288-24) > 1e-12 {
		t.Fatalf("DefaultOU dt = %v", p.DtH)
	}
	if DefaultOU(0).DtH != 24 {
		t.Fatal("DefaultOU must clamp zero steps")
	}
}

func TestNoiseModelPerturb(t *testing.T) {
	nm := NewNoiseModel(1e-3, 2e-3, 5)
	vm := []float64{1, 1.02, 0.98}
	va := []float64{0, -0.1, 0.2}
	ovm, ova := nm.Perturb(vm, va)
	if len(ovm) != 3 || len(ova) != 3 {
		t.Fatal("shape mismatch")
	}
	// Inputs untouched.
	if vm[0] != 1 || va[0] != 0 {
		t.Fatal("Perturb mutated inputs")
	}
	// Empirical noise std must match the configured sigmas.
	n := 50000
	var sm, sa float64
	for k := 0; k < n; k++ {
		pm, pa := nm.Perturb(vm, va)
		d := pm[0] - vm[0]
		sm += d * d
		d = pa[0] - va[0]
		sa += d * d
	}
	stdM := math.Sqrt(sm / float64(n))
	stdA := math.Sqrt(sa / float64(n))
	if math.Abs(stdM-1e-3) > 2e-4 {
		t.Errorf("magnitude noise std = %v, want 1e-3", stdM)
	}
	if math.Abs(stdA-2e-3) > 4e-4 {
		t.Errorf("angle noise std = %v, want 2e-3", stdA)
	}
}

func TestNoiseModelDefaults(t *testing.T) {
	nm := NewNoiseModel(0, -1, 1)
	if nm.SigmaVm != 1e-3 || nm.SigmaVa != 1e-3 {
		t.Fatalf("defaults = %v/%v", nm.SigmaVm, nm.SigmaVa)
	}
}

func TestDayProfileProperties(t *testing.T) {
	f := func(seed int64) bool {
		steps := 24 + int(seed%72+72)%72
		p := DayProfile(steps, 0.7)
		if len(p) != steps {
			return false
		}
		for _, v := range p {
			if v < 0.7-1e-12 || v > 1+1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
	// Bad minFrac falls back to the default.
	p := DayProfile(24, -1)
	for _, v := range p {
		if v < 0.7-1e-12 {
			t.Fatalf("fallback minFrac violated: %v", v)
		}
	}
}

func TestDayProfileHasEveningPeak(t *testing.T) {
	p := DayProfile(240, 0.5)
	// Peak should land in the afternoon/evening half of the day.
	best, bestK := 0.0, 0
	for k, v := range p {
		if v > best {
			best, bestK = v, k
		}
	}
	hour := 24 * float64(bestK) / 240
	if hour < 10 || hour > 22 {
		t.Fatalf("peak at hour %.1f, want daytime/evening", hour)
	}
}
