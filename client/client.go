// Package client is the Go client for the outaged detection daemon
// (cmd/outaged) and the outagerouter front-end: JSON over HTTP with
// bounded, deterministic retries.
//
// Transient conditions — transport errors and responses whose error
// envelope carries a retryable code (overloaded, unavailable; for
// servers that predate the code field, HTTP 429/503) — are retried up
// to Config.MaxRetries times with exponential backoff, honouring the
// server's Retry-After header when present. Terminal responses (bad
// request, unknown shard, ...) fail immediately with ErrRequest.
// Every wait is context-aware: a cancelled context stops the retry
// loop mid-backoff.
//
// All request and response bodies are the shared wire types of the api
// package — the same structs the server encodes, so the two sides
// cannot drift.
package client

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"pmuoutage"
	"pmuoutage/api"
	"pmuoutage/internal/obs"
)

// Typed errors of the client. Everything the client itself mints wraps
// one of these, so callers branch with errors.Is.
var (
	// ErrConfig reports an invalid Config passed to New.
	ErrConfig = errors.New("client: invalid config")
	// ErrRequest reports a terminal server response — a non-retryable
	// error code (or HTTP status, for code-less servers). The wrapped
	// detail carries the code, status, and the server's error body.
	ErrRequest = errors.New("client: request failed")
	// ErrExhausted reports that every attempt hit a retryable condition
	// (transport error, overloaded, unavailable). The wrapped detail
	// carries the last failure.
	ErrExhausted = errors.New("client: retries exhausted")
)

// Config configures New.
type Config struct {
	// BaseURL is the daemon's root, e.g. "http://localhost:8080".
	BaseURL string
	// HTTPClient overrides the transport (default http.DefaultClient).
	HTTPClient *http.Client
	// MaxRetries is how many times a retryable failure is retried after
	// the first attempt (default 3; negative disables retries).
	MaxRetries int
	// BaseBackoff is the delay before the first retry; it doubles per
	// attempt up to MaxBackoff. A Retry-After header on a retryable
	// response overrides the computed delay for that attempt. Defaults
	// 100ms and 2s.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Logger, when non-nil, receives a structured line per retry (warn)
	// carrying the request's trace ID, attempt number, and backoff. Nil
	// disables logging; requests behave identically either way.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	}
	if c.BaseBackoff <= 0 {
		c.BaseBackoff = 100 * time.Millisecond
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 2 * time.Second
	}
	return c
}

// Client talks to one outaged daemon (or router). It is safe for
// concurrent use.
type Client struct {
	cfg Config
}

// New validates cfg and returns a client.
func New(cfg Config) (*Client, error) {
	if strings.TrimSpace(cfg.BaseURL) == "" {
		return nil, fmt.Errorf("%w: empty BaseURL", ErrConfig)
	}
	cfg.BaseURL = strings.TrimRight(cfg.BaseURL, "/")
	return &Client{cfg: cfg.withDefaults()}, nil
}

// BaseURL returns the normalised server root the client talks to.
func (c *Client) BaseURL() string { return c.cfg.BaseURL }

// ReloadResult is the daemon's reply to a reload: the shard's new
// incarnation counter and the fingerprint of the model now serving.
type ReloadResult = api.ReloadResult

// Detect classifies samples on the named shard and returns one report
// per sample, in order — exactly what the shard's System.DetectBatch
// returns. Overload and not-ready conditions are retried.
func (c *Client) Detect(ctx context.Context, shard string, samples []pmuoutage.Sample) ([]*pmuoutage.Report, error) {
	var out api.DetectResponse
	if err := c.postJSON(ctx, "/v1/detect", api.DetectRequest{Shard: shard, Samples: samples}, &out); err != nil {
		return nil, err
	}
	return out.Reports, nil
}

// Reload hot-swaps the named shard's model: onto the artifact at path
// (a file on the daemon's filesystem) or, with an empty path, onto a
// freshly retrained model. The shard keeps serving throughout.
func (c *Client) Reload(ctx context.Context, shard, path string) (*ReloadResult, error) {
	return c.reload(ctx, api.ReloadRequest{Shard: shard, Path: path})
}

// ReloadModel hot-swaps the named shard onto the registry artifact with
// the given content fingerprint — the daemon pulls it from its
// configured registry and verifies the fingerprint on receipt.
func (c *Client) ReloadModel(ctx context.Context, shard, fingerprint string) (*ReloadResult, error) {
	return c.reload(ctx, api.ReloadRequest{Shard: shard, Fingerprint: fingerprint})
}

// ReloadPatch applies the incremental patch artifact at patchPath (a
// file on the daemon's filesystem) to the model the shard is serving
// right now. The patch is fingerprint-pinned to one base model: a
// shard on any other model rejects the request (code patch_base) and
// keeps serving unchanged.
func (c *Client) ReloadPatch(ctx context.Context, shard, patchPath string) (*ReloadResult, error) {
	return c.reload(ctx, api.ReloadRequest{Shard: shard, PatchPath: patchPath})
}

func (c *Client) reload(ctx context.Context, req api.ReloadRequest) (*ReloadResult, error) {
	var out ReloadResult
	if err := c.postJSON(ctx, "/v1/reload", req, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Shards lists the daemon's shards with their serving state, model
// fingerprint, and generation — GET /v1/shards, typed.
func (c *Client) Shards(ctx context.Context) ([]api.ShardStatus, error) {
	var out []api.ShardStatus
	if err := c.getJSON(ctx, "/v1/shards", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Stats snapshots the daemon's per-shard counters — GET /v1/stats,
// typed. The router's health prober reads queue depths from this.
func (c *Client) Stats(ctx context.Context) (map[string]api.ShardSnapshot, error) {
	var out map[string]api.ShardSnapshot
	if err := c.getJSON(ctx, "/v1/stats", &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Health probes GET /healthz: nil when the daemon reports at least one
// shard serving, the typed server error otherwise. Health never
// retries — a prober wants the current truth, not eventual success.
func (c *Client) Health(ctx context.Context) error {
	raw, err := c.roundTrip(ctx, http.MethodGet, "/healthz", "", nil)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrExhausted, err)
	}
	if raw.Status != http.StatusOK {
		return raw.serverError()
	}
	return nil
}

// postJSON marshals the body once and runs the retry loop over a JSON
// round trip.
func (c *Client) postJSON(ctx context.Context, path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("%w: encoding body: %v", ErrConfig, err)
	}
	raw, err := c.do(ctx, http.MethodPost, path, "application/json", payload)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw.Body, out); err != nil {
		return fmt.Errorf("%w: decoding %s response: %v", ErrRequest, path, err)
	}
	return nil
}

// getJSON runs the retry loop over a bodyless GET.
func (c *Client) getJSON(ctx context.Context, path string, out any) error {
	raw, err := c.do(ctx, http.MethodGet, path, "", nil)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(raw.Body, out); err != nil {
		return fmt.Errorf("%w: decoding %s response: %v", ErrRequest, path, err)
	}
	return nil
}

// RawResponse is one complete HTTP response as PostRaw captured it —
// everything a proxy needs to relay the answer byte-identically.
type RawResponse struct {
	// Status is the HTTP status code.
	Status int
	// ContentType is the response Content-Type header ("" if none).
	ContentType string
	// RetryAfter is the response Retry-After header ("" if none).
	RetryAfter string
	// TraceID is the X-Trace-Id the server echoed ("" if none).
	TraceID string
	// SpanID is the X-Span-Id of the span that served the request
	// ("" when the server traces nothing) — the handle that finds this
	// exact exchange inside the server's retained trace.
	SpanID string
	// Body is the full response body.
	Body []byte
}

// Retryable classifies the response by its error envelope's code
// (falling back to HTTP status for code-less servers): true for
// transient conditions another attempt — or another backend — might
// clear.
func (r *RawResponse) Retryable() bool {
	if r.Status == http.StatusOK {
		return false
	}
	return api.RetryableResponse(r.Status, r.Body)
}

// serverError builds the typed failure for a non-OK raw response.
func (r *RawResponse) serverError() *ServerError {
	env, _ := api.DecodeError(r.Body)
	body := r.Body
	if len(body) > maxErrBody {
		body = body[:maxErrBody]
	}
	return &ServerError{
		Status:    r.Status,
		Code:      env.Code,
		Body:      strings.TrimSpace(string(body)),
		TraceID:   r.TraceID,
		retryable: r.Retryable(),
	}
}

// PostRaw posts body to pathAndQuery and returns the server's complete
// response, whatever its status — the proxy primitive the router's
// data plane is built on. Only transport errors (no HTTP response at
// all) enter the retry loop; HTTP-level failures come back as a
// RawResponse so the caller can fail over to another backend or relay
// the bytes verbatim. A transport failure after every retry wraps
// ErrExhausted.
func (c *Client) PostRaw(ctx context.Context, pathAndQuery, contentType string, body []byte) (*RawResponse, error) {
	return c.raw(ctx, http.MethodPost, pathAndQuery, contentType, body)
}

// GetRaw is PostRaw for bodyless GETs.
func (c *Client) GetRaw(ctx context.Context, pathAndQuery string) (*RawResponse, error) {
	return c.raw(ctx, http.MethodGet, pathAndQuery, "", nil)
}

func (c *Client) raw(ctx context.Context, method, pathAndQuery, contentType string, body []byte) (*RawResponse, error) {
	ctx, traceID := c.ensureTrace(ctx)
	backoff := c.cfg.BaseBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			backoff = nextBackoff(backoff, c.cfg.MaxBackoff)
		}
		raw, err := c.roundTrip(ctx, method, pathAndQuery, contentType, body)
		if err == nil {
			return raw, nil
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		c.logRetry(ctx, traceID, pathAndQuery, attempt, backoff, err)
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, c.cfg.MaxRetries+1, lastErr)
}

// do runs the full JSON retry loop: attempt, classify, wait
// (server-directed or exponential), repeat. One trace ID spans every
// attempt of a request: the caller's, when the context carries one,
// otherwise minted here — so the daemon's logs show all retries of one
// call under one ID. It returns the 200 response; every other outcome
// is an error.
func (c *Client) do(ctx context.Context, method, path, contentType string, payload []byte) (*RawResponse, error) {
	ctx, traceID := c.ensureTrace(ctx)
	backoff := c.cfg.BaseBackoff
	var lastErr error
	for attempt := 0; attempt <= c.cfg.MaxRetries; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, backoff); err != nil {
				return nil, err
			}
			backoff = nextBackoff(backoff, c.cfg.MaxBackoff)
		}
		raw, err := c.roundTrip(ctx, method, path, contentType, payload)
		if err == nil {
			if raw.Status == http.StatusOK {
				return raw, nil
			}
			serr := raw.serverError()
			if !serr.retryable {
				return nil, serr
			}
			err = serr
			if d := parseRetryAfter(raw.RetryAfter); d > 0 {
				backoff = d
			}
		}
		if ctx.Err() != nil {
			return nil, ctx.Err()
		}
		lastErr = err
		c.logRetry(ctx, traceID, path, attempt, backoff, err)
	}
	return nil, fmt.Errorf("%w after %d attempts: %w", ErrExhausted, c.cfg.MaxRetries+1, lastErr)
}

// ensureTrace resolves the request's trace ID: the caller's, when the
// context carries one, otherwise minted here.
func (c *Client) ensureTrace(ctx context.Context) (context.Context, string) {
	traceID := obs.TraceID(ctx)
	if traceID == "" {
		traceID = obs.NewTraceID()
		ctx = obs.WithTraceID(ctx, traceID)
	}
	return ctx, traceID
}

func (c *Client) logRetry(ctx context.Context, traceID, path string, attempt int, backoff time.Duration, cause error) {
	lg := c.cfg.Logger
	if lg == nil || attempt >= c.cfg.MaxRetries {
		return
	}
	lg.LogAttrs(ctx, slog.LevelWarn, "retrying request",
		slog.String(obs.AttrComponent, "client"),
		slog.String(obs.AttrTraceID, traceID),
		slog.String("path", path),
		slog.Int("attempt", attempt+1),
		slog.Duration("backoff", backoff),
		slog.String("cause", cause.Error()))
}

func nextBackoff(cur, max time.Duration) time.Duration {
	cur *= 2
	if cur > max {
		cur = max
	}
	return cur
}

// maxErrBody bounds the error text a ServerError carries (full bodies
// still flow through RawResponse for proxying).
const maxErrBody = 4096

// ServerError is the typed detail behind every non-OK daemon response:
// the machine-readable error code, the HTTP status, the server's error
// body, and the trace ID the daemon echoed — the handle that finds
// this exact failed request in the server's structured logs. It
// unwraps to ErrRequest (terminal) or to the internal retryable
// marker, so errors.Is keeps working; reach it with errors.As.
type ServerError struct {
	// Status is the HTTP status code the daemon answered with.
	Status int
	// Code is the stable classification from the error envelope ("" when
	// the server sent none). Branch on this, not on Body's prose.
	Code api.Code
	// Body is the server's error text (truncated to 4 KiB).
	Body string
	// TraceID is the X-Trace-Id the server echoed ("" if none).
	TraceID string

	retryable bool
}

// Error renders the status, code, body, and trace ID.
func (e *ServerError) Error() string {
	var b strings.Builder
	fmt.Fprintf(&b, "HTTP %d", e.Status)
	if e.Code != "" {
		fmt.Fprintf(&b, " [%s]", e.Code)
	}
	if e.TraceID != "" {
		fmt.Fprintf(&b, " (trace %s)", e.TraceID)
	}
	b.WriteString(": ")
	b.WriteString(e.Body)
	return b.String()
}

// Unwrap ties the error into the package's sentinel taxonomy.
func (e *ServerError) Unwrap() error {
	if e.retryable {
		return errRetryable
	}
	return ErrRequest
}

// errRetryable marks transient attempt failures internally; callers of
// the package only ever see it wrapped inside ErrExhausted.
var errRetryable = errors.New("retryable")

// roundTrip performs one HTTP exchange and captures the complete
// response. The context's trace ID rides the X-Trace-Id request
// header; the error return is non-nil only for transport failures
// (wrapping the internal retryable marker) or an unbuildable request
// (ErrConfig).
func (c *Client) roundTrip(ctx context.Context, method, pathAndQuery, contentType string, body []byte) (*RawResponse, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.cfg.BaseURL+pathAndQuery, rd)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConfig, err)
	}
	if contentType != "" {
		req.Header.Set("Content-Type", contentType)
	}
	if id := obs.TraceID(ctx); id != "" {
		req.Header.Set(obs.TraceHeader, id)
		// Traceparent adds the parent span ID (the caller's active
		// span, or one relayed from its own ingress) so the server's
		// root span links into the distributed trace.
		req.Header.Set(obs.TraceParentHeader, obs.FormatTraceParent(id, obs.ParentSpanID(ctx)))
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", errRetryable, err)
	}
	defer func() { _ = resp.Body.Close() }()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("%w: reading response: %v", errRetryable, err)
	}
	return &RawResponse{
		Status:      resp.StatusCode,
		ContentType: resp.Header.Get("Content-Type"),
		RetryAfter:  resp.Header.Get("Retry-After"),
		TraceID:     resp.Header.Get(obs.TraceHeader),
		SpanID:      resp.Header.Get(obs.SpanHeader),
		Body:        data,
	}, nil
}

// parseRetryAfter reads the delay-seconds form of Retry-After (the only
// form the daemon emits); anything else yields 0 (use own backoff).
func parseRetryAfter(v string) time.Duration {
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(strings.TrimSpace(v))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// sleepCtx waits d unless ctx ends first.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
