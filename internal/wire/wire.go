// Package wire is the compact binary frame codec of the streaming
// ingest path (DESIGN.md "Streaming ingest"): one frame carries one
// grid-wide phasor snapshot — sequence number, bus count, an optional
// missing-data bitmap, and the per-bus voltage phasors — in a
// fixed-layout, CRC-guarded encoding flavored after IEEE C37.118 data
// frames. It replaces per-sample JSON on the device→detector path: a
// 118-bus frame is ~1.9 KiB instead of ~5 KiB of JSON, and decoding is
// a bounds-checked copy instead of reflection.
//
// Layout (big-endian):
//
//	offset          size  field
//	0               1     sync byte 0xAA
//	1               1     frame type/version tag 0x31
//	2               2     total frame size in bytes
//	4               1     codec version (Version)
//	5               4     sequence number
//	9               2     bus count n
//	11              1     flags (bit0: missing bitmap present)
//	12              m     missing bitmap, m = ceil(n/8), iff flag bit0
//	12+m            8n    Vm, float64 bits per bus (p.u.)
//	12+m+8n         8n    Va, float64 bits per bus (rad)
//	size-2          2     CRC-CCITT (poly 0x1021, init 0xFFFF) over [0, size-2)
//
// The Frame struct declares its fields in exactly this payload order —
// the gridlint framewire analyzer enforces fixed-width field types and
// that the declared order stays the wire order. Encoding is canonical:
// a decoded frame re-encodes to the identical bytes, which the fuzz
// test pins.
//
// Frames and scratch buffers are pooled (GetFrame/PutFrame,
// GetBuffer/PutBuffer), and DecodeFrame reuses the destination frame's
// slices, so the steady-state decode path allocates nothing — pinned by
// an AllocsPerRun test and screened by gridlint's allocfree analyzer.
package wire

import (
	"encoding/binary"
	"errors"
	"io"
	"math"
	"sync"
)

// Codec constants. MaxBuses bounds the bus count a frame may claim so a
// corrupt size field cannot make a reader allocate unbounded memory;
// the largest test grids are a few hundred buses.
const (
	sync0 = 0xAA
	sync1 = 0x31

	// Version is the codec version byte; decoders reject anything else.
	Version = 1

	// FlagMissing marks the presence of the missing-data bitmap.
	FlagMissing = 0x01

	headerSize = 12
	crcSize    = 2

	// MaxBuses bounds the per-frame bus count.
	MaxBuses = 4096
)

// MaxFrameBytes is the size of the largest well-formed frame — the read
// bound transports apply before decoding.
var MaxFrameBytes = EncodedSize(MaxBuses, true)

// Codec errors. DecodeFrame wraps nothing: these are terminal verdicts
// on a byte buffer, matched with errors.Is by transports that map them
// to protocol errors.
var (
	// ErrShort reports a buffer shorter than the frame it claims to hold.
	ErrShort = errors.New("wire: short frame")
	// ErrMagic reports a buffer that does not start with the sync bytes.
	ErrMagic = errors.New("wire: bad sync bytes")
	// ErrVersion reports an unsupported codec version byte.
	ErrVersion = errors.New("wire: unsupported frame version")
	// ErrCRC reports a checksum mismatch.
	ErrCRC = errors.New("wire: frame CRC mismatch")
	// ErrFrame reports a structurally invalid frame: zero or oversized
	// bus count, a size field that disagrees with the bus count and
	// flags, unknown flag bits, or mismatched Vm/Va lengths on encode.
	ErrFrame = errors.New("wire: malformed frame")
)

// Frame is one decoded phasor frame. Field declaration order is the
// payload wire order (after the fixed header), pinned by the wire tags
// and the gridlint framewire analyzer.
//
//gridlint:wireframe
type Frame struct {
	// Seq is the device time-step sequence number.
	Seq uint32 `wire:"0"`
	// Buses is the bus count n; Vm, Va, and the bitmap size follow it.
	Buses uint16 `wire:"1"`
	// Flags carries FlagMissing; all other bits must be zero.
	Flags uint8 `wire:"2"`
	// Missing is the ceil(n/8)-byte missing-data bitmap (bit i of byte
	// i/8 set = bus i missing), present on the wire iff FlagMissing.
	Missing []uint8 `wire:"3"`
	// Vm holds the per-bus voltage magnitudes.
	Vm []float64 `wire:"4"` //gridlint:unit pu
	// Va holds the per-bus voltage angles.
	Va []float64 `wire:"5"` //gridlint:unit rad
}

// N returns the frame's bus count as an int.
func (f *Frame) N() int { return int(f.Buses) }

// Reset sizes the frame for n buses and clears the sequence number,
// flags, and missing bitmap. It reuses the frame's slices once they
// have grown to n, so pooled frames reset allocation-free.
func (f *Frame) Reset(n int) {
	f.Seq = 0
	f.Buses = uint16(n)
	f.Flags = 0
	f.Vm = growFloats(f.Vm, n)
	f.Va = growFloats(f.Va, n)
	f.Missing = growBytes(f.Missing, bitmapLen(n))
	for i := range f.Missing {
		f.Missing[i] = 0
	}
}

// MarkMissing flags bus i as missing and sets FlagMissing. Out-of-range
// indices are ignored (the caller validated the bus count via Reset).
func (f *Frame) MarkMissing(i int) {
	if i < 0 || i >= f.N() {
		return
	}
	f.Missing[i>>3] |= 1 << uint(i&7)
	f.Flags |= FlagMissing
}

// IsMissing reports whether bus i is flagged missing.
func (f *Frame) IsMissing(i int) bool {
	if f.Flags&FlagMissing == 0 || i < 0 || i>>3 >= len(f.Missing) {
		return false
	}
	return f.Missing[i>>3]&(1<<uint(i&7)) != 0
}

// Pack fills the frame with one assembled sample: seq, the phasor
// vectors, and an optional missing mask (true = missing; nil or
// all-false means complete). The vectors are copied, so the caller
// keeps ownership of its slices.
//
//gridlint:zeroalloc
func (f *Frame) Pack(seq uint32, vm, va []float64, missing []bool) error {
	n := len(vm)
	if n == 0 || n > MaxBuses || len(va) != n || (missing != nil && len(missing) != n) {
		return ErrFrame
	}
	f.Reset(n)
	f.Seq = seq
	copy(f.Vm, vm)
	copy(f.Va, va)
	for i, miss := range missing {
		if miss {
			f.MarkMissing(i)
		}
	}
	return nil
}

// EncodedSize returns the byte length of a frame with n buses, with or
// without the missing bitmap.
func EncodedSize(n int, withBitmap bool) int {
	size := headerSize + 16*n + crcSize
	if withBitmap {
		size += bitmapLen(n)
	}
	return size
}

func bitmapLen(n int) int { return (n + 7) / 8 }

// AppendFrame appends f's canonical encoding to dst and returns the
// extended slice. With enough capacity in dst it does not allocate —
// pooled Buffers make repeated encoding allocation-free after warmup.
func AppendFrame(dst []byte, f *Frame) ([]byte, error) {
	n := f.N()
	if n == 0 || n > MaxBuses || len(f.Vm) != n || len(f.Va) != n || f.Flags&^FlagMissing != 0 {
		return dst, ErrFrame
	}
	withBitmap := f.Flags&FlagMissing != 0
	if withBitmap && len(f.Missing) != bitmapLen(n) {
		return dst, ErrFrame
	}
	start := len(dst)
	size := EncodedSize(n, withBitmap)
	dst = growBytesBy(dst, size)
	b := dst[start:]
	b[0], b[1] = sync0, sync1
	binary.BigEndian.PutUint16(b[2:], uint16(size))
	b[4] = Version
	binary.BigEndian.PutUint32(b[5:], f.Seq)
	binary.BigEndian.PutUint16(b[9:], f.Buses)
	b[11] = f.Flags
	off := headerSize
	if withBitmap {
		off += copy(b[off:], f.Missing)
	}
	for _, v := range f.Vm {
		binary.BigEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	for _, v := range f.Va {
		binary.BigEndian.PutUint64(b[off:], math.Float64bits(v))
		off += 8
	}
	binary.BigEndian.PutUint16(b[off:], crc16(b[:off]))
	return dst, nil
}

// FrameSize peeks a buffered stream prefix (at least 4 bytes) and
// returns the total byte length of the frame that starts there, so
// stream readers know how much to buffer before DecodeFrame.
func FrameSize(buf []byte) (int, error) {
	if len(buf) < 4 {
		return 0, ErrShort
	}
	if buf[0] != sync0 || buf[1] != sync1 {
		return 0, ErrMagic
	}
	size := int(binary.BigEndian.Uint16(buf[2:]))
	if size < headerSize+crcSize {
		return 0, ErrFrame
	}
	return size, nil
}

// DecodeFrame decodes one frame from the start of buf into f, reusing
// f's slices, and returns the number of bytes consumed. Trailing bytes
// beyond the frame's size field are ignored (stream framing). The
// steady-state path allocates nothing once f's slices have grown.
//
//gridlint:zeroalloc
func DecodeFrame(buf []byte, f *Frame) (int, error) {
	if len(buf) < headerSize+crcSize {
		return 0, ErrShort
	}
	if buf[0] != sync0 || buf[1] != sync1 {
		return 0, ErrMagic
	}
	if buf[4] != Version {
		return 0, ErrVersion
	}
	size := int(binary.BigEndian.Uint16(buf[2:]))
	n := int(binary.BigEndian.Uint16(buf[9:]))
	flags := buf[11]
	if n == 0 || n > MaxBuses || flags&^FlagMissing != 0 {
		return 0, ErrFrame
	}
	withBitmap := flags&FlagMissing != 0
	if size != EncodedSize(n, withBitmap) {
		return 0, ErrFrame
	}
	if len(buf) < size {
		return 0, ErrShort
	}
	body := buf[:size-crcSize]
	if crc16(body) != binary.BigEndian.Uint16(buf[size-crcSize:]) {
		return 0, ErrCRC
	}
	f.Seq = binary.BigEndian.Uint32(buf[5:])
	f.Buses = uint16(n)
	f.Flags = flags
	f.Vm = growFloats(f.Vm, n)
	f.Va = growFloats(f.Va, n)
	f.Missing = growBytes(f.Missing, bitmapLen(n))
	off := headerSize
	if withBitmap {
		off += copy(f.Missing, buf[off:off+bitmapLen(n)])
	} else {
		for i := range f.Missing {
			f.Missing[i] = 0
		}
	}
	for i := 0; i < n; i++ {
		f.Vm[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	for i := 0; i < n; i++ {
		f.Va[i] = math.Float64frombits(binary.BigEndian.Uint64(buf[off:]))
		off += 8
	}
	return size, nil
}

// growFloats resizes s to length n, reusing its backing array when the
// capacity allows. Kept out of the zeroalloc-annotated codec bodies so
// the one legitimately allocating branch (first growth) is isolated.
func growFloats(s []float64, n int) []float64 {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]float64, n)
}

func growBytes(s []byte, n int) []byte {
	if cap(s) >= n {
		return s[:n]
	}
	return make([]byte, n)
}

// growBytesBy extends s by n bytes (contents undefined), reusing
// capacity when available.
func growBytesBy(s []byte, n int) []byte {
	if cap(s)-len(s) >= n {
		return s[:len(s)+n]
	}
	out := make([]byte, len(s)+n, 2*(len(s)+n))
	copy(out, s)
	return out
}

// crcTable is the CRC-CCITT (poly X^16+X^12+X^5+1) lookup table the
// C37.118 checksum uses.
var crcTable = makeCRCTable()

func makeCRCTable() [256]uint16 {
	var t [256]uint16
	for i := range t {
		crc := uint16(i) << 8
		for b := 0; b < 8; b++ {
			if crc&0x8000 != 0 {
				crc = crc<<1 ^ 0x1021
			} else {
				crc <<= 1
			}
		}
		t[i] = crc
	}
	return t
}

// crc16 is CRC-CCITT with init 0xFFFF, as C37.118 frames use.
func crc16(b []byte) uint16 {
	crc := uint16(0xFFFF)
	for _, x := range b {
		crc = crc<<8 ^ crcTable[byte(crc>>8)^x]
	}
	return crc
}

// framePool recycles decoded frames across the ingest hot path; a
// warmed pool makes GetFrame+DecodeFrame+PutFrame allocation-free.
var framePool = sync.Pool{New: func() any { return new(Frame) }}

// GetFrame returns a pooled frame. Contents are undefined until Reset,
// Pack, or DecodeFrame fills it.
func GetFrame() *Frame {
	return framePool.Get().(*Frame)
}

// PutFrame recycles a frame obtained from GetFrame. The caller must not
// touch f (or slices aliasing its fields) afterwards.
func PutFrame(f *Frame) {
	if f != nil {
		framePool.Put(f)
	}
}

// Buffer is a pooled byte buffer for encoded frames.
type Buffer struct{ B []byte }

// ReadFrom appends r's bytes to B until EOF, implementing
// io.ReaderFrom so transports can slurp request bodies into pooled
// storage.
func (b *Buffer) ReadFrom(r io.Reader) (int64, error) {
	var total int64
	for {
		if len(b.B) == cap(b.B) {
			b.B = append(b.B, 0)[:len(b.B)]
		}
		n, err := r.Read(b.B[len(b.B):cap(b.B)])
		b.B = b.B[:len(b.B)+n]
		total += int64(n)
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

var bufPool = sync.Pool{New: func() any { return &Buffer{B: make([]byte, 0, 4096)} }}

// GetBuffer returns a pooled buffer with length-zero contents.
func GetBuffer() *Buffer {
	b := bufPool.Get().(*Buffer)
	b.B = b.B[:0]
	return b
}

// PutBuffer recycles a buffer obtained from GetBuffer.
func PutBuffer(b *Buffer) {
	if b != nil {
		bufPool.Put(b)
	}
}
