package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"strings"
)

// AllocFree screens functions annotated //gridlint:zeroalloc for
// constructs that force (or routinely cause) heap allocation. The
// serving hot path — obs.Counter/Gauge/Histogram recording, trace-ID
// reads, per-batch shard accounting — promises zero allocations per
// operation, and PR 5 pinned that promise with testing.AllocsPerRun.
// Those runtime pins only fire when the benchmark runs; this analyzer
// catches the regression at lint time, before any test executes:
//
//	//gridlint:zeroalloc
//	func (c *Counter) Inc() { ... }
//
// flags fmt calls, non-constant string concatenation, append, make and
// new, slice/map literals, address-taken composite literals,
// string↔[]byte conversions, interface boxing of non-pointer values
// (zero-size keys and constants are exempt — they don't allocate), and
// function literals and go statements. It also cross-checks the pin:
// every annotated function must be exercised by an AllocsPerRun test in
// the same package, so the static promise and the runtime proof cannot
// drift apart.
var AllocFree = &Analyzer{
	Name: "allocfree",
	Doc:  "screen //gridlint:zeroalloc functions for allocating constructs and require an AllocsPerRun pin",
	Run:  runAllocFree,
}

// ZeroallocPrefix marks a function allocation-free.
const ZeroallocPrefix = "//gridlint:zeroalloc"

func hasZeroalloc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, ZeroallocPrefix) {
			return true
		}
	}
	return false
}

func runAllocFree(pass *Pass) error {
	pinned := allocPinnedNames(pass.TestFiles)
	sizes := types.SizesFor("gc", runtime.GOARCH)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || !hasZeroalloc(fd.Doc) {
				continue
			}
			name := fnKey(fd)
			if !pinned[fd.Name.Name] {
				pass.Report(fd.Pos(), "function %s is marked zeroalloc but no AllocsPerRun test pins it", name)
			}
			if fd.Body != nil {
				(&allocChecker{pass: pass, sizes: sizes, fn: name}).check(fd.Body)
			}
		}
	}
	return nil
}

// allocPinnedNames collects every identifier mentioned inside a test
// function that calls testing.AllocsPerRun. The measured code is named
// somewhere in that body — directly (c.Inc()) or through a table entry
// (tc.fn) whose construction names the method — so an annotated
// function whose name never appears near an AllocsPerRun call has no
// runtime pin.
func allocPinnedNames(testFiles []*ast.File) map[string]bool {
	pinned := map[string]bool{}
	for _, f := range testFiles {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			uses := false
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok && id.Name == "AllocsPerRun" {
					uses = true
				}
				return true
			})
			if !uses {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if id, ok := n.(*ast.Ident); ok {
					pinned[id.Name] = true
				}
				return true
			})
		}
	}
	return pinned
}

// allocChecker walks one zeroalloc body reporting allocating constructs.
type allocChecker struct {
	pass  *Pass
	sizes types.Sizes
	fn    string
}

func (c *allocChecker) check(body ast.Node) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			c.pass.Report(n.Pos(), "zeroalloc function %s creates a function literal, which may allocate a closure", c.fn)
			return false
		case *ast.GoStmt:
			c.pass.Report(n.Pos(), "zeroalloc function %s starts a goroutine, which allocates", c.fn)
		case *ast.BinaryExpr:
			c.binary(n)
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if _, ok := n.X.(*ast.CompositeLit); ok {
					c.pass.Report(n.Pos(), "zeroalloc function %s takes the address of a composite literal, which escapes to the heap", c.fn)
					return false
				}
			}
		case *ast.CompositeLit:
			switch c.pass.Info.TypeOf(n).Underlying().(type) {
			case *types.Slice:
				c.pass.Report(n.Pos(), "zeroalloc function %s builds a slice literal, which allocates", c.fn)
			case *types.Map:
				c.pass.Report(n.Pos(), "zeroalloc function %s builds a map literal, which allocates", c.fn)
			}
		case *ast.CallExpr:
			c.call(n)
		}
		return true
	})
}

// binary flags non-constant string concatenation.
func (c *allocChecker) binary(e *ast.BinaryExpr) {
	if e.Op != token.ADD {
		return
	}
	tv, ok := c.pass.Info.Types[e]
	if !ok || tv.Value != nil { // constant concatenation folds at compile time
		return
	}
	if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
		c.pass.Report(e.OpPos, "zeroalloc function %s concatenates strings, which allocates", c.fn)
	}
}

func (c *allocChecker) call(call *ast.CallExpr) {
	// Conversions: only the string↔[]byte/[]rune pair allocates.
	if tv, ok := c.pass.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && c.stringBytesConv(tv.Type, c.pass.Info.TypeOf(call.Args[0])) {
			if av, ok := c.pass.Info.Types[call.Args[0]]; !ok || av.Value == nil {
				c.pass.Report(call.Pos(), "zeroalloc function %s converts between string and byte/rune slice, which copies and allocates", c.fn)
			}
		}
		return
	}
	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := c.pass.Info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch id.Name {
			case "append":
				c.pass.Report(call.Pos(), "zeroalloc function %s calls append, which may grow its backing array", c.fn)
			case "make", "new":
				c.pass.Report(call.Pos(), "zeroalloc function %s calls %s, which allocates", c.fn, id.Name)
			}
			return
		}
	}
	// fmt: every entry point formats through reflection and allocates.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if f, ok := c.pass.Info.ObjectOf(sel.Sel).(*types.Func); ok && f.Pkg() != nil && f.Pkg().Path() == "fmt" {
			c.pass.Report(call.Pos(), "zeroalloc function %s calls fmt.%s, which allocates", c.fn, f.Name())
			return
		}
	}
	c.boxing(call)
}

// stringBytesConv reports whether a conversion between to and from
// crosses the string/byte-slice boundary.
func (c *allocChecker) stringBytesConv(to, from types.Type) bool {
	if from == nil {
		return false
	}
	return (isStringType(to) && isByteOrRuneSlice(from)) || (isByteOrRuneSlice(to) && isStringType(from))
}

func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteOrRuneSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := s.Elem().Underlying().(*types.Basic)
	return ok && (b.Kind() == types.Byte || b.Kind() == types.Rune ||
		b.Kind() == types.Uint8 || b.Kind() == types.Int32)
}

// boxing flags arguments whose concrete, non-pointer, non-zero-size
// values convert to interface parameters — each such conversion heap-
// allocates a copy. Constants and untyped nil are exempt.
func (c *allocChecker) boxing(call *ast.CallExpr) {
	sig, ok := c.pass.Info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig == nil {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // f(xs...): the slice passes through unboxed
			}
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = s.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		tv, ok := c.pass.Info.Types[arg]
		if !ok || tv.Type == nil || tv.Value != nil {
			continue // constants don't force a fresh allocation we can see statically
		}
		at := tv.Type
		if types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		switch at.Underlying().(type) {
		case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
			continue // pointer-shaped: stored directly in the interface word
		}
		if c.sizes != nil && c.sizes.Sizeof(at) == 0 {
			continue // zero-size values (context keys) share a static cell
		}
		c.pass.Report(arg.Pos(), "zeroalloc function %s boxes a value of type %s into an interface argument, which allocates", c.fn, at.String())
	}
}
