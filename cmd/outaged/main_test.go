package main

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"pmuoutage"
	"pmuoutage/client"
	"pmuoutage/internal/httpserve"
	"pmuoutage/internal/service"
)

// newTestServer builds a two-shard service behind httptest.
func newTestServer(t *testing.T) (*service.Service, *httptest.Server) {
	t.Helper()
	cfg, err := buildConfig("east=ieee14,west=ieee14", 12, 3, true, 2, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg.RestartBackoff = time.Millisecond
	svc, err := service.New(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(svc.Close)
	ts := httptest.NewServer(httpserve.New(svc, 30*time.Second, nil).Routes())
	t.Cleanup(ts.Close)
	return svc, ts
}

// waitReady polls until the shard serves or the test deadline hits.
func waitReady(t *testing.T, svc *service.Service, name string) *pmuoutage.System {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		if sys, err := svc.System(name); err == nil {
			return sys
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("shard %s never became ready", name)
	return nil
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

// TestDetectEndpointMatchesDirect: a served detect response is
// byte-identical (as JSON) to System.DetectBatch on the same samples.
func TestDetectEndpointMatchesDirect(t *testing.T) {
	svc, ts := newTestServer(t)
	sys := waitReady(t, svc, "east")
	line := sys.ValidLines()[0]
	samples, err := sys.SimulateOutage([]int{line}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := sys.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}

	cl, err := client.New(client.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Detect(context.Background(), "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := httpserve.CompareReports(got, want); err != nil {
		t.Fatal(err)
	}
	if !got[0].Outage {
		t.Fatal("served report missed the simulated outage")
	}
}

// TestErrorMapping pins the error taxonomy → HTTP status contract.
func TestErrorMapping(t *testing.T) {
	svc, ts := newTestServer(t)
	sys := waitReady(t, svc, "east")
	waitReady(t, svc, "west")
	good, err := sys.SimulateOutage([]int{sys.ValidLines()[0]}, 1)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("unknown shard 404", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/detect", httpserve.DetectRequest{Shard: "nope", Samples: good})
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d", resp.StatusCode)
		}
		var e httpserve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if e.Retryable || !strings.Contains(e.Error, "unknown shard") {
			t.Fatalf("error body = %+v", e)
		}
	})
	t.Run("bad sample 400", func(t *testing.T) {
		bad := []pmuoutage.Sample{{Vm: []float64{1}, Va: []float64{0}}}
		resp := postJSON(t, ts.URL+"/v1/detect", httpserve.DetectRequest{Shard: "east", Samples: bad})
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
	t.Run("malformed body 400", func(t *testing.T) {
		resp, err := http.Post(ts.URL+"/v1/detect", "application/json", strings.NewReader("{not json"))
		if err != nil {
			t.Fatal(err)
		}
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
	t.Run("killed shard 503 with Retry-After, sibling keeps serving", func(t *testing.T) {
		if err := svc.Kill("west"); err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/detect", httpserve.DetectRequest{Shard: "west", Samples: good})
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Fatalf("killed shard status = %d", resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Fatal("retryable 503 without Retry-After header")
		}
		var e httpserve.ErrorResponse
		if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
			t.Fatal(err)
		}
		if !e.Retryable {
			t.Fatalf("error body = %+v", e)
		}
		resp2 := postJSON(t, ts.URL+"/v1/detect", httpserve.DetectRequest{Shard: "east", Samples: good})
		defer func() { _ = resp2.Body.Close() }()
		if resp2.StatusCode != http.StatusOK {
			t.Fatalf("surviving shard status = %d", resp2.StatusCode)
		}
	})
}

// TestIngestShardsStatsHealth covers the remaining endpoints.
func TestIngestShardsStatsHealth(t *testing.T) {
	svc, ts := newTestServer(t)
	sys := waitReady(t, svc, "east")
	waitReady(t, svc, "west")
	samples, err := sys.SimulateOutage([]int{sys.ValidLines()[0]}, 3)
	if err != nil {
		t.Fatal(err)
	}

	var confirmed *pmuoutage.Event
	for _, smp := range samples {
		resp := postJSON(t, ts.URL+"/v1/ingest", httpserve.IngestRequest{Shard: "east", Sample: smp})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("ingest status = %d", resp.StatusCode)
		}
		var out httpserve.IngestResponse
		err := json.NewDecoder(resp.Body).Decode(&out)
		_ = resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if out.Event != nil {
			confirmed = out.Event
			break
		}
	}
	if confirmed == nil {
		t.Fatal("persistent outage never confirmed over /v1/ingest")
	}

	resp, err := http.Get(ts.URL + "/v1/shards")
	if err != nil {
		t.Fatal(err)
	}
	var shards []service.ShardStatus
	err = json.NewDecoder(resp.Body).Decode(&shards)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if len(shards) != 2 || shards[0].Name != "east" || shards[0].State != "ready" {
		t.Fatalf("shards = %+v", shards)
	}

	resp, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats map[string]service.ShardSnapshot
	err = json.NewDecoder(resp.Body).Decode(&stats)
	_ = resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if stats["east"].Ingests == 0 {
		t.Fatalf("stats = %+v", stats)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
}

// TestReloadEndpoint exercises POST /v1/reload over real HTTP: load an
// artifact written by the facade codec from disk, swap a serving shard
// onto it, and verify the daemon then answers with exactly that model's
// reports. Error paths (missing file, unknown shard) map to 400/404.
func TestReloadEndpoint(t *testing.T) {
	svc, ts := newTestServer(t)
	waitReady(t, svc, "east")
	cl, err := client.New(client.Config{BaseURL: ts.URL})
	if err != nil {
		t.Fatal(err)
	}

	// Train a different-seed model and save it the way outagetrain does.
	m, err := pmuoutage.TrainModel(pmuoutage.Options{Case: "ieee14", TrainSteps: 12, Seed: 42, UseDC: true, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "east.model.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Encode(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	res, err := cl.Reload(context.Background(), "east", path)
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != m.Fingerprint() {
		t.Fatalf("reload serves %s, want %s", res.Model, m.Fingerprint())
	}
	if res.Generation < 2 {
		t.Fatalf("generation = %d after reload", res.Generation)
	}

	ref, err := pmuoutage.NewSystemFromModel(m)
	if err != nil {
		t.Fatal(err)
	}
	samples, err := ref.SimulateOutage([]int{ref.ValidLines()[0]}, 2)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.DetectBatch(samples)
	if err != nil {
		t.Fatal(err)
	}
	got, err := cl.Detect(context.Background(), "east", samples)
	if err != nil {
		t.Fatal(err)
	}
	if err := httpserve.CompareReports(got, want); err != nil {
		t.Fatal(err)
	}

	t.Run("missing artifact 400", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/reload", httpserve.ReloadRequest{Shard: "east", Path: filepath.Join(t.TempDir(), "nope.json")})
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
	t.Run("corrupt artifact 400", func(t *testing.T) {
		bad := filepath.Join(t.TempDir(), "bad.json")
		if err := os.WriteFile(bad, []byte("not a model"), 0o600); err != nil {
			t.Fatal(err)
		}
		resp := postJSON(t, ts.URL+"/v1/reload", httpserve.ReloadRequest{Shard: "east", Path: bad})
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
	t.Run("unknown shard 404", func(t *testing.T) {
		resp := postJSON(t, ts.URL+"/v1/reload", httpserve.ReloadRequest{Shard: "nope"})
		defer func() { _ = resp.Body.Close() }()
		if resp.StatusCode != http.StatusNotFound {
			t.Fatalf("status = %d", resp.StatusCode)
		}
	})
}

func TestBuildConfig(t *testing.T) {
	cfg, err := buildConfig("east=ieee14, west=ieee30 ,bare", 20, 5, true, 0, 0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Shards) != 3 {
		t.Fatalf("shards = %+v", cfg.Shards)
	}
	if cfg.Shards[1].Name != "west" || cfg.Shards[1].Opts.Case != "ieee30" {
		t.Fatalf("shard 1 = %+v", cfg.Shards[1])
	}
	if cfg.Shards[2].Name != "bare" || cfg.Shards[2].Opts.Case != "" {
		t.Fatalf("bare shard = %+v", cfg.Shards[2])
	}
	if cfg.Shards[0].Opts.Seed != 5 || cfg.Shards[1].Opts.Seed != 6 {
		t.Fatal("per-shard seed offset not applied")
	}
	if _, err := buildConfig(" , ", 0, 1, false, 0, 0, 0, 0); err == nil {
		t.Fatal("empty shard list accepted")
	}
}

// TestServeSmoke runs the -smoke self-test end to end: real listener,
// real HTTP round trip, graceful shutdown.
func TestServeSmoke(t *testing.T) {
	if err := runSmoke("ieee14", 12); err != nil {
		t.Fatal(err)
	}
}
